
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/base/test_rng.cc" "tests/CMakeFiles/hawksim_tests.dir/base/test_rng.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/base/test_rng.cc.o.d"
  "/root/repo/tests/base/test_stats.cc" "tests/CMakeFiles/hawksim_tests.dir/base/test_stats.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/base/test_stats.cc.o.d"
  "/root/repo/tests/cache/test_cache.cc" "tests/CMakeFiles/hawksim_tests.dir/cache/test_cache.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/cache/test_cache.cc.o.d"
  "/root/repo/tests/core/test_access_map.cc" "tests/CMakeFiles/hawksim_tests.dir/core/test_access_map.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/core/test_access_map.cc.o.d"
  "/root/repo/tests/core/test_access_tracker.cc" "tests/CMakeFiles/hawksim_tests.dir/core/test_access_tracker.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/core/test_access_tracker.cc.o.d"
  "/root/repo/tests/core/test_bloat_recovery.cc" "tests/CMakeFiles/hawksim_tests.dir/core/test_bloat_recovery.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/core/test_bloat_recovery.cc.o.d"
  "/root/repo/tests/core/test_hawkeye.cc" "tests/CMakeFiles/hawksim_tests.dir/core/test_hawkeye.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/core/test_hawkeye.cc.o.d"
  "/root/repo/tests/core/test_hawkeye_accessors.cc" "tests/CMakeFiles/hawksim_tests.dir/core/test_hawkeye_accessors.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/core/test_hawkeye_accessors.cc.o.d"
  "/root/repo/tests/core/test_prezero.cc" "tests/CMakeFiles/hawksim_tests.dir/core/test_prezero.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/core/test_prezero.cc.o.d"
  "/root/repo/tests/integration/test_conservation.cc" "tests/CMakeFiles/hawksim_tests.dir/integration/test_conservation.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/integration/test_conservation.cc.o.d"
  "/root/repo/tests/integration/test_determinism.cc" "tests/CMakeFiles/hawksim_tests.dir/integration/test_determinism.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/integration/test_determinism.cc.o.d"
  "/root/repo/tests/integration/test_smoke.cc" "tests/CMakeFiles/hawksim_tests.dir/integration/test_smoke.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/integration/test_smoke.cc.o.d"
  "/root/repo/tests/ksm/test_ksm.cc" "tests/CMakeFiles/hawksim_tests.dir/ksm/test_ksm.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/ksm/test_ksm.cc.o.d"
  "/root/repo/tests/mem/test_buddy.cc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_buddy.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_buddy.cc.o.d"
  "/root/repo/tests/mem/test_compaction.cc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_compaction.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_compaction.cc.o.d"
  "/root/repo/tests/mem/test_content.cc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_content.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_content.cc.o.d"
  "/root/repo/tests/mem/test_fragment_movable.cc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_fragment_movable.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_fragment_movable.cc.o.d"
  "/root/repo/tests/mem/test_phys.cc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_phys.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_phys.cc.o.d"
  "/root/repo/tests/mem/test_swap.cc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_swap.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/mem/test_swap.cc.o.d"
  "/root/repo/tests/policy/test_freebsd.cc" "tests/CMakeFiles/hawksim_tests.dir/policy/test_freebsd.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/policy/test_freebsd.cc.o.d"
  "/root/repo/tests/policy/test_ingens.cc" "tests/CMakeFiles/hawksim_tests.dir/policy/test_ingens.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/policy/test_ingens.cc.o.d"
  "/root/repo/tests/policy/test_linux.cc" "tests/CMakeFiles/hawksim_tests.dir/policy/test_linux.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/policy/test_linux.cc.o.d"
  "/root/repo/tests/policy/test_policy_interactions.cc" "tests/CMakeFiles/hawksim_tests.dir/policy/test_policy_interactions.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/policy/test_policy_interactions.cc.o.d"
  "/root/repo/tests/sim/test_metrics.cc" "tests/CMakeFiles/hawksim_tests.dir/sim/test_metrics.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/sim/test_metrics.cc.o.d"
  "/root/repo/tests/sim/test_system.cc" "tests/CMakeFiles/hawksim_tests.dir/sim/test_system.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/sim/test_system.cc.o.d"
  "/root/repo/tests/tlb/test_tlb.cc" "tests/CMakeFiles/hawksim_tests.dir/tlb/test_tlb.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/tlb/test_tlb.cc.o.d"
  "/root/repo/tests/tlb/test_tlb_properties.cc" "tests/CMakeFiles/hawksim_tests.dir/tlb/test_tlb_properties.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/tlb/test_tlb_properties.cc.o.d"
  "/root/repo/tests/virt/test_virt.cc" "tests/CMakeFiles/hawksim_tests.dir/virt/test_virt.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/virt/test_virt.cc.o.d"
  "/root/repo/tests/vm/test_address_space.cc" "tests/CMakeFiles/hawksim_tests.dir/vm/test_address_space.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/vm/test_address_space.cc.o.d"
  "/root/repo/tests/vm/test_page_table.cc" "tests/CMakeFiles/hawksim_tests.dir/vm/test_page_table.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/vm/test_page_table.cc.o.d"
  "/root/repo/tests/vm/test_pte.cc" "tests/CMakeFiles/hawksim_tests.dir/vm/test_pte.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/vm/test_pte.cc.o.d"
  "/root/repo/tests/workload/test_suite.cc" "tests/CMakeFiles/hawksim_tests.dir/workload/test_suite.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/workload/test_suite.cc.o.d"
  "/root/repo/tests/workload/test_trace.cc" "tests/CMakeFiles/hawksim_tests.dir/workload/test_trace.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/workload/test_trace.cc.o.d"
  "/root/repo/tests/workload/test_workloads.cc" "tests/CMakeFiles/hawksim_tests.dir/workload/test_workloads.cc.o" "gcc" "tests/CMakeFiles/hawksim_tests.dir/workload/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hawksim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
