# Empty compiler generated dependencies file for hawksim_tests.
# This may be replaced when dependencies are built.
