file(REMOVE_RECURSE
  "CMakeFiles/access_map_demo.dir/access_map_demo.cpp.o"
  "CMakeFiles/access_map_demo.dir/access_map_demo.cpp.o.d"
  "access_map_demo"
  "access_map_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_map_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
