# Empty compiler generated dependencies file for access_map_demo.
# This may be replaced when dependencies are built.
