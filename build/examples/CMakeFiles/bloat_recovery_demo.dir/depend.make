# Empty dependencies file for bloat_recovery_demo.
# This may be replaced when dependencies are built.
