file(REMOVE_RECURSE
  "CMakeFiles/bloat_recovery_demo.dir/bloat_recovery_demo.cpp.o"
  "CMakeFiles/bloat_recovery_demo.dir/bloat_recovery_demo.cpp.o.d"
  "bloat_recovery_demo"
  "bloat_recovery_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloat_recovery_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
