# Empty compiler generated dependencies file for fragmentation_explorer.
# This may be replaced when dependencies are built.
