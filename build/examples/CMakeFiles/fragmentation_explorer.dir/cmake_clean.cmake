file(REMOVE_RECURSE
  "CMakeFiles/fragmentation_explorer.dir/fragmentation_explorer.cpp.o"
  "CMakeFiles/fragmentation_explorer.dir/fragmentation_explorer.cpp.o.d"
  "fragmentation_explorer"
  "fragmentation_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragmentation_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
