# Empty dependencies file for fig7_table5_identical.
# This may be replaced when dependencies are built.
