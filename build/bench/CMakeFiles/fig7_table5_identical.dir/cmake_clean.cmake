file(REMOVE_RECURSE
  "CMakeFiles/fig7_table5_identical.dir/fig7_table5_identical.cc.o"
  "CMakeFiles/fig7_table5_identical.dir/fig7_table5_identical.cc.o.d"
  "fig7_table5_identical"
  "fig7_table5_identical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_table5_identical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
