# Empty dependencies file for table2_tlb_sensitivity.
# This may be replaced when dependencies are built.
