file(REMOVE_RECURSE
  "CMakeFiles/table2_tlb_sensitivity.dir/table2_tlb_sensitivity.cc.o"
  "CMakeFiles/table2_tlb_sensitivity.dir/table2_tlb_sensitivity.cc.o.d"
  "table2_tlb_sensitivity"
  "table2_tlb_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tlb_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
