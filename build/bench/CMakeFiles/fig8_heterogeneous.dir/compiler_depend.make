# Empty compiler generated dependencies file for fig8_heterogeneous.
# This may be replaced when dependencies are built.
