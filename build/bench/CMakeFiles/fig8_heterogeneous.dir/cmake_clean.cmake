file(REMOVE_RECURSE
  "CMakeFiles/fig8_heterogeneous.dir/fig8_heterogeneous.cc.o"
  "CMakeFiles/fig8_heterogeneous.dir/fig8_heterogeneous.cc.o.d"
  "fig8_heterogeneous"
  "fig8_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
