file(REMOVE_RECURSE
  "CMakeFiles/table9_pmu_vs_g.dir/table9_pmu_vs_g.cc.o"
  "CMakeFiles/table9_pmu_vs_g.dir/table9_pmu_vs_g.cc.o.d"
  "table9_pmu_vs_g"
  "table9_pmu_vs_g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_pmu_vs_g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
