# Empty compiler generated dependencies file for table9_pmu_vs_g.
# This may be replaced when dependencies are built.
