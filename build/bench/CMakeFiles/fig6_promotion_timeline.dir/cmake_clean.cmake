file(REMOVE_RECURSE
  "CMakeFiles/fig6_promotion_timeline.dir/fig6_promotion_timeline.cc.o"
  "CMakeFiles/fig6_promotion_timeline.dir/fig6_promotion_timeline.cc.o.d"
  "fig6_promotion_timeline"
  "fig6_promotion_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_promotion_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
