# Empty compiler generated dependencies file for fig6_promotion_timeline.
# This may be replaced when dependencies are built.
