file(REMOVE_RECURSE
  "CMakeFiles/table3_npb.dir/table3_npb.cc.o"
  "CMakeFiles/table3_npb.dir/table3_npb.cc.o.d"
  "table3_npb"
  "table3_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
