file(REMOVE_RECURSE
  "CMakeFiles/fig5_promotion_efficiency.dir/fig5_promotion_efficiency.cc.o"
  "CMakeFiles/fig5_promotion_efficiency.dir/fig5_promotion_efficiency.cc.o.d"
  "fig5_promotion_efficiency"
  "fig5_promotion_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_promotion_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
