# Empty compiler generated dependencies file for fig11_overcommit.
# This may be replaced when dependencies are built.
