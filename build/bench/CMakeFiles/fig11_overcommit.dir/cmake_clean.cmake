file(REMOVE_RECURSE
  "CMakeFiles/fig11_overcommit.dir/fig11_overcommit.cc.o"
  "CMakeFiles/fig11_overcommit.dir/fig11_overcommit.cc.o.d"
  "fig11_overcommit"
  "fig11_overcommit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_overcommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
