# Empty compiler generated dependencies file for ablation_hawkeye.
# This may be replaced when dependencies are built.
