file(REMOVE_RECURSE
  "CMakeFiles/ablation_hawkeye.dir/ablation_hawkeye.cc.o"
  "CMakeFiles/ablation_hawkeye.dir/ablation_hawkeye.cc.o.d"
  "ablation_hawkeye"
  "ablation_hawkeye.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hawkeye.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
