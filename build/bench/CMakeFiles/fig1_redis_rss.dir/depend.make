# Empty dependencies file for fig1_redis_rss.
# This may be replaced when dependencies are built.
