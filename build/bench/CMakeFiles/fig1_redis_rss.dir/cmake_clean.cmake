file(REMOVE_RECURSE
  "CMakeFiles/fig1_redis_rss.dir/fig1_redis_rss.cc.o"
  "CMakeFiles/fig1_redis_rss.dir/fig1_redis_rss.cc.o.d"
  "fig1_redis_rss"
  "fig1_redis_rss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_redis_rss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
