file(REMOVE_RECURSE
  "CMakeFiles/fig9_virtualization.dir/fig9_virtualization.cc.o"
  "CMakeFiles/fig9_virtualization.dir/fig9_virtualization.cc.o.d"
  "fig9_virtualization"
  "fig9_virtualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_virtualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
