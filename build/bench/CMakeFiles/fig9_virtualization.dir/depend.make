# Empty dependencies file for fig9_virtualization.
# This may be replaced when dependencies are built.
