# Empty compiler generated dependencies file for fig10_prezero_interference.
# This may be replaced when dependencies are built.
