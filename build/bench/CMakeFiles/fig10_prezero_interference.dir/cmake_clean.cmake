file(REMOVE_RECURSE
  "CMakeFiles/fig10_prezero_interference.dir/fig10_prezero_interference.cc.o"
  "CMakeFiles/fig10_prezero_interference.dir/fig10_prezero_interference.cc.o.d"
  "fig10_prezero_interference"
  "fig10_prezero_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_prezero_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
