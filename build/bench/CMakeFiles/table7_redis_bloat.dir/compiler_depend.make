# Empty compiler generated dependencies file for table7_redis_bloat.
# This may be replaced when dependencies are built.
