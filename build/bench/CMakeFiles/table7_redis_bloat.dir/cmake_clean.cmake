file(REMOVE_RECURSE
  "CMakeFiles/table7_redis_bloat.dir/table7_redis_bloat.cc.o"
  "CMakeFiles/table7_redis_bloat.dir/table7_redis_bloat.cc.o.d"
  "table7_redis_bloat"
  "table7_redis_bloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_redis_bloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
