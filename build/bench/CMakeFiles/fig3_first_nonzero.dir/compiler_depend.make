# Empty compiler generated dependencies file for fig3_first_nonzero.
# This may be replaced when dependencies are built.
