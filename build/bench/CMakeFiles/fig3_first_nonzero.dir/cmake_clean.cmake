file(REMOVE_RECURSE
  "CMakeFiles/fig3_first_nonzero.dir/fig3_first_nonzero.cc.o"
  "CMakeFiles/fig3_first_nonzero.dir/fig3_first_nonzero.cc.o.d"
  "fig3_first_nonzero"
  "fig3_first_nonzero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_first_nonzero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
