file(REMOVE_RECURSE
  "CMakeFiles/table8_fast_faults.dir/table8_fast_faults.cc.o"
  "CMakeFiles/table8_fast_faults.dir/table8_fast_faults.cc.o.d"
  "table8_fast_faults"
  "table8_fast_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_fast_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
