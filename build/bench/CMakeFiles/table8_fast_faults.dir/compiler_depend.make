# Empty compiler generated dependencies file for table8_fast_faults.
# This may be replaced when dependencies are built.
