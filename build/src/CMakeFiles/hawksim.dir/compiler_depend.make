# Empty compiler generated dependencies file for hawksim.
# This may be replaced when dependencies are built.
