file(REMOVE_RECURSE
  "libhawksim.a"
)
