
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/hawksim.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/base/logging.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/hawksim.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/cache/cache.cc.o.d"
  "/root/repo/src/core/access_map.cc" "src/CMakeFiles/hawksim.dir/core/access_map.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/core/access_map.cc.o.d"
  "/root/repo/src/core/access_tracker.cc" "src/CMakeFiles/hawksim.dir/core/access_tracker.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/core/access_tracker.cc.o.d"
  "/root/repo/src/core/bloat_recovery.cc" "src/CMakeFiles/hawksim.dir/core/bloat_recovery.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/core/bloat_recovery.cc.o.d"
  "/root/repo/src/core/hawkeye.cc" "src/CMakeFiles/hawksim.dir/core/hawkeye.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/core/hawkeye.cc.o.d"
  "/root/repo/src/core/prezero.cc" "src/CMakeFiles/hawksim.dir/core/prezero.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/core/prezero.cc.o.d"
  "/root/repo/src/ksm/ksm.cc" "src/CMakeFiles/hawksim.dir/ksm/ksm.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/ksm/ksm.cc.o.d"
  "/root/repo/src/mem/buddy.cc" "src/CMakeFiles/hawksim.dir/mem/buddy.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/mem/buddy.cc.o.d"
  "/root/repo/src/mem/compaction.cc" "src/CMakeFiles/hawksim.dir/mem/compaction.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/mem/compaction.cc.o.d"
  "/root/repo/src/mem/phys.cc" "src/CMakeFiles/hawksim.dir/mem/phys.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/mem/phys.cc.o.d"
  "/root/repo/src/policy/common.cc" "src/CMakeFiles/hawksim.dir/policy/common.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/policy/common.cc.o.d"
  "/root/repo/src/policy/freebsd.cc" "src/CMakeFiles/hawksim.dir/policy/freebsd.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/policy/freebsd.cc.o.d"
  "/root/repo/src/policy/ingens.cc" "src/CMakeFiles/hawksim.dir/policy/ingens.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/policy/ingens.cc.o.d"
  "/root/repo/src/policy/linux_thp.cc" "src/CMakeFiles/hawksim.dir/policy/linux_thp.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/policy/linux_thp.cc.o.d"
  "/root/repo/src/policy/policy.cc" "src/CMakeFiles/hawksim.dir/policy/policy.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/policy/policy.cc.o.d"
  "/root/repo/src/sim/process.cc" "src/CMakeFiles/hawksim.dir/sim/process.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/sim/process.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/hawksim.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/sim/system.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/CMakeFiles/hawksim.dir/tlb/tlb.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/tlb/tlb.cc.o.d"
  "/root/repo/src/virt/vm.cc" "src/CMakeFiles/hawksim.dir/virt/vm.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/virt/vm.cc.o.d"
  "/root/repo/src/vm/address_space.cc" "src/CMakeFiles/hawksim.dir/vm/address_space.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/vm/address_space.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/CMakeFiles/hawksim.dir/vm/page_table.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/vm/page_table.cc.o.d"
  "/root/repo/src/workload/kvstore.cc" "src/CMakeFiles/hawksim.dir/workload/kvstore.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/workload/kvstore.cc.o.d"
  "/root/repo/src/workload/linear_touch.cc" "src/CMakeFiles/hawksim.dir/workload/linear_touch.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/workload/linear_touch.cc.o.d"
  "/root/repo/src/workload/presets.cc" "src/CMakeFiles/hawksim.dir/workload/presets.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/workload/presets.cc.o.d"
  "/root/repo/src/workload/stream.cc" "src/CMakeFiles/hawksim.dir/workload/stream.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/workload/stream.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/CMakeFiles/hawksim.dir/workload/suite.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/workload/suite.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/hawksim.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/hawksim.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
