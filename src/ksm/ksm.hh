/**
 * @file
 * Kernel same-page merging (KSM) daemon.
 *
 * Content-based page sharing in the tradition of VMware ESX [67] and
 * Linux's ksmd: a rate-limited scanner that merges identical pages
 * behind COW mappings. Two merge classes:
 *
 *   - zero pages merge against the canonical zero page — in a host
 *     running HawkEye guests this is the mechanism that returns
 *     guest-freed (pre-zeroed) memory to the host, giving the
 *     balloon-like behaviour of Fig. 11;
 *   - duplicate (equal-content) pages merge against the first copy
 *     seen (the "stable tree" in real ksmd, a hash map here).
 *
 * Huge-mapped regions are only broken when they contain at least
 * `demoteThreshold` mergeable pages — the coordination between ksm
 * and huge pages that Ingens/SmartMD argue for (§3.2).
 */

#ifndef HAWKSIM_KSM_KSM_HH
#define HAWKSIM_KSM_KSM_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "mem/content.hh"

namespace hawksim::sim {
class Process;
class System;
} // namespace hawksim::sim

namespace hawksim::ksm {

class KsmDaemon
{
  public:
    struct Stats
    {
        std::uint64_t pagesScanned = 0;
        std::uint64_t zeroMerged = 0;
        std::uint64_t dupMerged = 0;
        std::uint64_t hugeDemoted = 0;
    };

    /**
     * Content override: returns the logical content of a mapped page
     * (the virtualization layer supplies guest-frame contents).
     * Returning nullptr means "use the host frame's content".
     */
    using ContentProvider = std::function<const mem::PageContent *(
        sim::Process &, Vpn)>;

    explicit KsmDaemon(double pages_per_sec = 25'000.0,
                       unsigned demote_threshold = 256)
        : rate_(pages_per_sec), demote_threshold_(demote_threshold)
    {}

    /** Restrict scanning to these pids (empty = scan everything). */
    void trackProcess(std::int32_t pid) { tracked_.push_back(pid); }
    void setContentProvider(ContentProvider p)
    {
        provider_ = std::move(p);
    }
    /** Enable merging of equal non-zero pages (zero merge is always
     *  on). */
    void setMergeDuplicates(bool on) { merge_dups_ = on; }

    void periodic(sim::System &sys, TimeNs dt);

    const Stats &stats() const { return stats_; }

  private:
    void scanProcess(sim::System &sys, sim::Process &proc);
    const mem::PageContent &contentOf(sim::System &sys,
                                      sim::Process &proc, Vpn vpn);

    double rate_;
    unsigned demote_threshold_;
    bool merge_dups_ = true;
    double budget_ = 0.0;
    std::vector<std::int32_t> tracked_;
    ContentProvider provider_;
    /** Stable tree: content hash -> canonical frame. */
    std::unordered_map<std::uint64_t, Pfn> stable_;
    /** Per-process scan cursor (region list index). */
    std::unordered_map<std::int32_t, std::uint64_t> cursor_;
    std::size_t rr_ = 0;
    Stats stats_;
};

} // namespace hawksim::ksm

#endif // HAWKSIM_KSM_KSM_HH
