#include "ksm/ksm.hh"

#include <algorithm>

#include "sim/process.hh"
#include "sim/system.hh"

namespace hawksim::ksm {

const mem::PageContent &
KsmDaemon::contentOf(sim::System &sys, sim::Process &proc, Vpn vpn)
{
    if (provider_) {
        if (const mem::PageContent *c = provider_(proc, vpn))
            return *c;
    }
    vm::Translation t = proc.space().pageTable().lookup(vpn);
    return sys.phys().frame(t.pfn).content;
}

void
KsmDaemon::periodic(sim::System &sys, TimeNs dt)
{
    budget_ += rate_ * static_cast<double>(dt) / 1e9;
    if (budget_ < 512.0)
        return;
    // Round-robin over tracked processes.
    std::vector<sim::Process *> procs;
    for (auto &p : sys.processes()) {
        if (p->finished())
            continue;
        if (tracked_.empty() ||
            std::find(tracked_.begin(), tracked_.end(), p->pid()) !=
                tracked_.end()) {
            procs.push_back(p.get());
        }
    }
    if (procs.empty()) {
        budget_ = 0.0;
        return;
    }
    for (std::size_t visited = 0;
         visited < procs.size() && budget_ >= 512.0; visited++) {
        scanProcess(sys, *procs[rr_++ % procs.size()]);
    }
}

void
KsmDaemon::scanProcess(sim::System &sys, sim::Process &proc)
{
    auto &space = proc.space();
    auto &pt = space.pageTable();
    std::vector<std::uint64_t> regions;
    space.forEachEligibleRegion(
        [&](std::uint64_t r) { regions.push_back(r); });
    if (regions.empty())
        return;
    std::uint64_t &hand = cursor_[proc.pid()];

    for (std::size_t step = 0;
         step < regions.size() && budget_ >= 512.0; step++) {
        const std::uint64_t region = regions[hand % regions.size()];
        hand++;
        if (pt.population(region) == 0)
            continue;
        const Vpn base = region << 9;
        budget_ -= 512.0;
        stats_.pagesScanned += 512;

        if (pt.isHuge(region)) {
            // Coordinated demotion: only split the huge page if it is
            // worth it (enough mergeable content inside).
            unsigned mergeable = 0;
            for (unsigned i = 0; i < kPagesPerHuge; i++) {
                if (contentOf(sys, proc, base + i).isZero())
                    mergeable++;
            }
            if (mergeable < demote_threshold_)
                continue;
            space.demoteRegion(region);
            stats_.hugeDemoted++;
        }

        for (unsigned i = 0; i < kPagesPerHuge; i++) {
            const Vpn vpn = base + i;
            vm::Translation t = pt.lookup(vpn);
            if (!t.present || t.huge || t.entry.zeroPage() ||
                t.entry.cow()) {
                continue;
            }
            const mem::ConstFrameRef frame = sys.phys().frame(t.pfn);
            if (frame.isShared() || frame.mapCount != 1)
                continue; // already merged elsewhere
            const mem::PageContent content = contentOf(sys, proc, vpn);
            if (content.isZero()) {
                // The host copy may be stale; the logical content is
                // zero, so normalize before the zero-dedup.
                sys.phys().zeroFrame(t.pfn);
                space.dedupZeroPage(vpn);
                stats_.zeroMerged++;
                continue;
            }
            if (!merge_dups_)
                continue;
            auto [it, inserted] =
                stable_.emplace(content.hash, t.pfn);
            if (inserted)
                continue; // first copy becomes the canonical page
            const Pfn canonical = it->second;
            if (canonical == t.pfn)
                continue;
            // The canonical frame may have been freed since; verify.
            const mem::ConstFrameRef cf = sys.phys().frame(canonical);
            if (cf.isFree() || !(cf.content == content)) {
                it->second = t.pfn; // refresh the stable entry
                continue;
            }
            space.sharePage(vpn, canonical);
            stats_.dupMerged++;
        }
    }
}

} // namespace hawksim::ksm
