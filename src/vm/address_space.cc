#include "vm/address_space.hh"

#include "base/logging.hh"
#include "snap/snap.hh"

namespace hawksim::vm {

AddressSpace::AddressSpace(std::int32_t pid, mem::PhysicalMemory &phys)
    : pid_(pid), phys_(phys)
{}

Addr
AddressSpace::mmapAnon(std::uint64_t bytes, const std::string &name,
                       bool huge_eligible)
{
    HS_ASSERT(bytes > 0, "empty mmap");
    const Addr start = next_mmap_;
    const Addr end = start + hugeAlignUp(bytes);
    next_mmap_ = end + kHugePageSize; // guard gap keeps regions distinct
    Vma vma;
    vma.start = start;
    vma.end = end;
    vma.anon = true;
    vma.hugeEligible = huge_eligible;
    vma.name = name;
    vmas_.emplace(start, vma);
    return start;
}

void
AddressSpace::munmap(Addr start)
{
    auto it = vmas_.find(start);
    HS_ASSERT(it != vmas_.end(), "munmap of unknown VMA at ", start);
    madviseDontneed(it->second.start, it->second.bytes());
    vmas_.erase(it);
}

const Vma *
AddressSpace::findVma(Addr a) const
{
    auto it = vmas_.upper_bound(a);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    return it->second.contains(a) ? &it->second : nullptr;
}

void
AddressSpace::mapBasePage(Vpn vpn, Pfn pfn, std::uint64_t extra_flags)
{
    pt_.mapBase(vpn, pfn, kPtePresent | extra_flags);
    phys_.onMap(pfn, pid_, vpn);
    owned_frames_++;
}

void
AddressSpace::mapHugeRegion(std::uint64_t region, Pfn block_pfn,
                            std::uint64_t extra_flags)
{
    const Vpn base = region << 9;
    pt_.mapHuge(base, block_pfn, kPtePresent | extra_flags);
    for (unsigned i = 0; i < kPagesPerHuge; i++)
        phys_.onMap(block_pfn + i, pid_, base + i);
    owned_frames_ += kPagesPerHuge;
}

void
AddressSpace::mapZeroCow(Vpn vpn)
{
    const Pfn zp = phys_.zeroPagePfn();
    pt_.mapBase(vpn, zp, kPtePresent | kPteCow | kPteZero);
    phys_.onMap(zp, pid_, vpn);
}

bool
AddressSpace::breakCow(Vpn vpn)
{
    Translation t = pt_.lookup(vpn);
    HS_ASSERT(t.present && t.entry.cow(), "breakCow on non-COW vpn ", vpn);
    HS_ASSERT(!t.huge, "COW huge pages unsupported");
    auto blk = phys_.allocBlock(0, pid_, mem::ZeroPref::kPreferZero);
    HS_ASSERT(blk.has_value(), "OOM during COW break");
    const bool needed_zeroing = !blk->zeroed;
    if (needed_zeroing)
        phys_.zeroFrame(blk->pfn);
    phys_.onUnmap(t.pfn); // drop the shared-page reference
    mem::FrameRef old = phys_.frame(t.pfn);
    if (!t.entry.zeroPage() && old.isShared() && old.mapCount == 0) {
        // Last reference to a KSM dup-canonical frame.
        old.clear(mem::kFrameShared);
        old.clear(mem::kFrameUnmovable);
        phys_.freeBlock(t.pfn, 0);
    }
    pt_.unmapBase(vpn);
    mapBasePage(vpn, blk->pfn, kPteDirty | kPteAccessed);
    return needed_zeroing;
}

void
AddressSpace::unmapAndFreeBase(Vpn vpn)
{
    Translation t = pt_.lookup(vpn);
    HS_ASSERT(t.present && !t.huge, "unmapAndFreeBase bad vpn ", vpn);
    pt_.unmapBase(vpn);
    phys_.onUnmap(t.pfn);
    if (t.entry.zeroPage())
        return; // shared canonical zero page: nothing to free
    mem::FrameRef f = phys_.frame(t.pfn);
    if (f.isShared()) {
        // KSM canonical frame: the last unmapper releases it; it was
        // never part of this process's owned frames.
        if (f.mapCount == 0) {
            f.clear(mem::kFrameShared);
            f.clear(mem::kFrameUnmovable);
            phys_.freeBlock(t.pfn, 0);
        }
        return;
    }
    if (f.mapCount == 0) {
        phys_.freeBlock(t.pfn, 0);
        owned_frames_--;
    }
}

void
AddressSpace::unmapAndFreeHuge(std::uint64_t region)
{
    const Vpn base = region << 9;
    Pte old = pt_.unmapHuge(base);
    const Pfn block = old.pfn();
    for (unsigned i = 0; i < kPagesPerHuge; i++)
        phys_.onUnmap(block + i);
    phys_.freeBlock(block, kHugePageOrder);
    owned_frames_ -= kPagesPerHuge;
}

void
AddressSpace::madviseDontneed(Addr start, std::uint64_t bytes)
{
    const Vpn first = addrToVpn(pageAlignDown(start));
    const Vpn last = addrToVpn(pageAlignUp(start + bytes)); // exclusive
    Vpn vpn = first;
    while (vpn < last) {
        Translation t = pt_.lookup(vpn);
        if (!t.present) {
            vpn++;
            continue;
        }
        if (t.huge) {
            const std::uint64_t region = vpnToHugeRegion(vpn);
            const Vpn region_base = region << 9;
            if (region_base >= first && region_base + 512 <= last) {
                // Fully covered: drop the whole huge page.
                unmapAndFreeHuge(region);
                vpn = region_base + 512;
                continue;
            }
            // Partially covered: the kernel splits the huge mapping,
            // then frees only the covered base pages.
            demoteRegion(region);
            // fall through to base-page handling of this vpn
        }
        unmapAndFreeBase(vpn);
        vpn++;
    }
}

std::uint64_t
AddressSpace::promoteRegion(std::uint64_t region, Pfn block_pfn)
{
    const Vpn base = region << 9;
    auto old = pt_.promote(base, block_pfn);
    // Copy old contents into the new block; free old frames.
    std::uint64_t copied = 0;
    std::array<bool, 512> backed{};
    for (const auto &[vpn, pte] : old) {
        const unsigned slot = vpn & 511;
        backed[slot] = true;
        mem::FrameRef dst = phys_.frame(block_pfn + slot);
        if (pte.zeroPage()) {
            dst.content = mem::PageContent::zero();
            dst.set(mem::kFrameZeroed);
            phys_.onUnmap(pte.pfn());
        } else {
            const mem::ConstFrameRef src = phys_.frame(pte.pfn());
            dst.content = src.content;
            if (src.content.isZero())
                dst.set(mem::kFrameZeroed);
            else
                dst.clear(mem::kFrameZeroed);
            copied++;
            phys_.onUnmap(pte.pfn());
            mem::FrameRef old = phys_.frame(pte.pfn());
            if (old.isShared()) {
                // KSM-merged frame: other mappings may remain; only
                // the last unmapper releases it. It never counted
                // toward this process's owned frames.
                if (old.mapCount == 0) {
                    old.clear(mem::kFrameShared);
                    old.clear(mem::kFrameUnmovable);
                    phys_.freeBlock(pte.pfn(), 0);
                }
            } else {
                phys_.freeBlock(pte.pfn(), 0);
                owned_frames_--;
            }
        }
    }
    // Unbacked slots must read as zero after promotion.
    for (unsigned i = 0; i < kPagesPerHuge; i++) {
        if (!backed[i])
            phys_.zeroFrame(block_pfn + i);
        phys_.onMap(block_pfn + i, pid_, base + i);
    }
    owned_frames_ += kPagesPerHuge;
    return copied;
}

void
AddressSpace::demoteRegion(std::uint64_t region)
{
    pt_.demote(region << 9);
    // Frames, map counts and ownership are unchanged: the base PTEs
    // point into the same physical block.
}

void
AddressSpace::sharePage(Vpn vpn, Pfn canonical)
{
    vm::Translation t = pt_.lookup(vpn);
    HS_ASSERT(t.present && !t.huge, "sharePage bad vpn ", vpn);
    mem::FrameRef cf = phys_.frame(canonical);
    HS_ASSERT(!cf.isFree(), "sharePage to free canonical frame");
    if (t.pfn == canonical)
        return;
    const Pfn old = t.pfn;
    pt_.unmapBase(vpn);
    phys_.onUnmap(old);
    if (phys_.frame(old).mapCount == 0 && !phys_.frame(old).isShared()) {
        phys_.freeBlock(old, 0);
        owned_frames_--;
    }
    cf.set(mem::kFrameShared);
    cf.set(mem::kFrameUnmovable);
    pt_.mapBase(vpn, canonical, kPtePresent | kPteCow);
    phys_.onMap(canonical, pid_, vpn);
}

void
AddressSpace::promoteInPlace(std::uint64_t region)
{
    const Vpn base = region << 9;
    HS_ASSERT(pt_.population(region) == kPagesPerHuge,
              "promoteInPlace on non-full region ", region);
    vm::Translation first = pt_.lookup(base);
    const Pfn block = first.pfn;
    HS_ASSERT((block & (kPagesPerHuge - 1)) == 0,
              "promoteInPlace on unaligned block");
    // Verify contiguity: each page must sit at its natural offset.
    for (unsigned i = 0; i < kPagesPerHuge; i++) {
        vm::Translation t = pt_.lookup(base + i);
        HS_ASSERT(t.present && t.pfn == block + i,
                  "promoteInPlace on non-contiguous region ", region);
    }
    // No frames change hands: map counts, ownership and RSS are
    // already correct; only the page-table shape changes.
    pt_.promote(base, block);
}

void
AddressSpace::dedupZeroPage(Vpn vpn)
{
    vm::Translation t = pt_.lookup(vpn);
    HS_ASSERT(t.present && !t.huge, "dedupZeroPage bad vpn ", vpn);
    HS_ASSERT(!t.entry.zeroPage(), "dedupZeroPage on dedup'd page");
    const Pfn old = t.pfn;
    HS_ASSERT(phys_.frame(old).content.isZero(),
              "dedupZeroPage on non-zero page ", vpn);
    pt_.unmapBase(vpn);
    phys_.onUnmap(old);
    phys_.freeBlock(old, 0);
    owned_frames_--;
    mapZeroCow(vpn);
}

void
AddressSpace::forEachEligibleRegion(
    const std::function<void(std::uint64_t)> &fn) const
{
    for (const auto &[start, vma] : vmas_) {
        if (!vma.anon || !vma.hugeEligible)
            continue;
        for (std::uint64_t r = vma.firstFullRegion();
             r < vma.endFullRegion(); r++) {
            fn(r);
        }
    }
}

void
AddressSpace::save(snap::Writer &w) const
{
    w.u64(vmas_.size());
    for (const auto &[start, vma] : vmas_) { // std::map: sorted
        w.u64(start);
        w.u64(vma.start);
        w.u64(vma.end);
        w.b(vma.anon);
        w.b(vma.hugeEligible);
        w.str(vma.name);
    }
    w.u64(next_mmap_);
    w.u64(owned_frames_);
    pt_.save(w);
}

void
AddressSpace::load(snap::Reader &r)
{
    vmas_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; i++) {
        const Addr key = r.u64();
        Vma vma;
        vma.start = r.u64();
        vma.end = r.u64();
        vma.anon = r.b();
        vma.hugeEligible = r.b();
        vma.name = r.str();
        vmas_.emplace(key, std::move(vma));
    }
    next_mmap_ = r.u64();
    owned_frames_ = r.u64();
    pt_.load(r);
}

} // namespace hawksim::vm
