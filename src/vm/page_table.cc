#include "vm/page_table.hh"

#include "base/logging.hh"
#include "snap/snap.hh"

namespace hawksim::vm {

bool PageTable::tcache_runtime_enabled_ = true;

PageTable::Node *
PageTable::pdNode(Vpn vpn, bool create)
{
    Node *l3 = &root_;
    const unsigned i3 = idxL3(vpn);
    if (!l3->children[i3]) {
        if (!create)
            return nullptr;
        l3->children[i3] = std::make_unique<Node>();
        l3->used++;
    }
    Node *l2 = l3->children[i3].get();
    const unsigned i2 = idxL2(vpn);
    if (!l2->children[i2]) {
        if (!create)
            return nullptr;
        l2->children[i2] = std::make_unique<Node>();
        l2->used++;
    }
    return l2->children[i2].get();
}

const PageTable::Node *
PageTable::pdNodeConst(Vpn vpn) const
{
    return walkPd(vpn);
}

PageTable::Node *
PageTable::walkPd(Vpn vpn) const
{
    auto *self = const_cast<PageTable *>(this);
    Node *l2 = self->root_.children[idxL3(vpn)].get();
    if (!l2)
        return nullptr;
    return l2->children[idxL2(vpn)].get();
}

PageTable::Node *
PageTable::pdFast(Vpn vpn) const
{
#ifndef HAWKSIM_NO_TCACHE
    if (tcache_runtime_enabled_) {
        const std::uint64_t pd_key = (vpn >> 18) + 1;
        if (last_pd_.tag == pd_key && last_pd_.epoch == epoch_)
            return last_pd_.pd;
        const std::uint64_t region = vpn >> 9;
        CacheSlot &slot = tcache_[region & (kTCacheSlots - 1)];
        if (slot.tag == region + 1 && slot.epoch == epoch_) {
            last_pd_ = {pd_key, epoch_, slot.pd};
            return slot.pd;
        }
        Node *pd = walkPd(vpn);
        if (pd) {
            slot = {region + 1, epoch_, pd};
            last_pd_ = {pd_key, epoch_, pd};
        }
        return pd;
    }
#endif
    return walkPd(vpn);
}

void
PageTable::mapBase(Vpn vpn, Pfn pfn, std::uint64_t flags)
{
    Node *pd = pdNode(vpn, true);
    const unsigned i1 = idxL1(vpn);
    Pte pd_entry(pd->entries[i1]);
    HS_ASSERT(!pd_entry.huge(), "mapBase under a huge mapping, vpn ", vpn);
    if (!pd->children[i1]) {
        pd->children[i1] = std::make_unique<Node>();
        pd->used++;
    }
    Node *pt = pd->children[i1].get();
    const unsigned i0 = idxL0(vpn);
    HS_ASSERT(!Pte(pt->entries[i0]).present(),
              "double map of vpn ", vpn);
    pt->entries[i0] = Pte::make(pfn, flags | kPtePresent).raw();
    pt->used++;
    base_pages_++;
    bumpEpoch();
}

void
PageTable::mapHuge(Vpn vpn, Pfn block_pfn, std::uint64_t flags)
{
    Node *pd = pdNode(vpn, true);
    const unsigned i1 = idxL1(vpn);
    HS_ASSERT(!pd->children[i1],
              "mapHuge over populated PT, region ", vpnToHugeRegion(vpn));
    HS_ASSERT(!Pte(pd->entries[i1]).present(),
              "double huge map, region ", vpnToHugeRegion(vpn));
    pd->entries[i1] =
        Pte::make(block_pfn, flags | kPtePresent | kPteHuge).raw();
    pd->used++;
    huge_pages_++;
    bumpEpoch();
}

Pte
PageTable::unmapBase(Vpn vpn)
{
    Node *pd = pdNode(vpn, false);
    HS_ASSERT(pd, "unmapBase of unmapped vpn ", vpn);
    const unsigned i1 = idxL1(vpn);
    Node *pt = pd->children[i1].get();
    HS_ASSERT(pt, "unmapBase of unmapped vpn ", vpn);
    const unsigned i0 = idxL0(vpn);
    Pte old(pt->entries[i0]);
    HS_ASSERT(old.present() && !old.huge(),
              "unmapBase of non-present vpn ", vpn);
    pt->entries[i0] = 0;
    pt->used--;
    base_pages_--;
    if (pt->used == 0) {
        pd->children[i1].reset();
        pd->used--;
    }
    bumpEpoch();
    return old;
}

Pte
PageTable::unmapHuge(Vpn vpn)
{
    Node *pd = pdNode(vpn, false);
    HS_ASSERT(pd, "unmapHuge of unmapped region");
    const unsigned i1 = idxL1(vpn);
    Pte old(pd->entries[i1]);
    HS_ASSERT(old.present() && old.huge(),
              "unmapHuge of non-huge region ", vpnToHugeRegion(vpn));
    pd->entries[i1] = 0;
    pd->used--;
    huge_pages_--;
    bumpEpoch();
    return old;
}

void
PageTable::remapBase(Vpn vpn, Pfn new_pfn)
{
    bool is_huge = false;
    Pte *e = leafEntry(vpn, &is_huge);
    HS_ASSERT(e && !is_huge, "remapBase of unmapped/huge vpn ", vpn);
    const std::uint64_t flags = e->raw() & 0xfff;
    *e = Pte::make(new_pfn, flags);
    bumpEpoch();
}

std::vector<std::pair<Vpn, Pte>>
PageTable::promote(Vpn vpn, Pfn block_pfn)
{
    Node *pd = pdNode(vpn, true);
    const unsigned i1 = idxL1(vpn);
    std::vector<std::pair<Vpn, Pte>> old;
    std::uint64_t agg_flags = 0;
    if (Node *pt = pd->children[i1].get()) {
        const Vpn region_base = (vpn >> 9) << 9;
        for (unsigned i = 0; i < 512; i++) {
            Pte e(pt->entries[i]);
            if (!e.present())
                continue;
            agg_flags |= e.raw() & (kPteAccessed | kPteDirty);
            old.emplace_back(region_base + i, e);
        }
        base_pages_ -= old.size();
        pd->children[i1].reset();
        pd->used--;
    }
    pd->entries[i1] = Pte::make(block_pfn, kPtePresent | kPteHuge |
                                               agg_flags)
                          .raw();
    pd->used++;
    huge_pages_++;
    bumpEpoch();
    return old;
}

Pte
PageTable::demote(Vpn vpn)
{
    Node *pd = pdNode(vpn, false);
    HS_ASSERT(pd, "demote of unmapped region");
    const unsigned i1 = idxL1(vpn);
    Pte old(pd->entries[i1]);
    HS_ASSERT(old.present() && old.huge(),
              "demote of non-huge region ", vpnToHugeRegion(vpn));
    pd->entries[i1] = 0;
    huge_pages_--;
    // pd->used stays: the slot now holds a PT instead of a leaf.
    pd->children[i1] = std::make_unique<Node>();
    Node *pt = pd->children[i1].get();
    const std::uint64_t inherit =
        old.raw() & (kPteAccessed | kPteDirty | kPteCow);
    for (unsigned i = 0; i < 512; i++) {
        pt->entries[i] =
            Pte::make(old.pfn() + i, kPtePresent | inherit).raw();
    }
    pt->used = 512;
    base_pages_ += 512;
    bumpEpoch();
    return old;
}

Translation
PageTable::lookup(Vpn vpn) const
{
    Translation t;
    const Node *pd = pdFast(vpn);
    if (!pd)
        return t;
    const unsigned i1 = idxL1(vpn);
    Pte pd_entry(pd->entries[i1]);
    if (pd_entry.present() && pd_entry.huge()) {
        t.present = true;
        t.huge = true;
        t.pfn = pd_entry.pfn() + idxL0(vpn);
        t.entry = pd_entry;
        return t;
    }
    const Node *pt = pd->children[i1].get();
    if (!pt)
        return t;
    Pte e(pt->entries[idxL0(vpn)]);
    if (!e.present())
        return t;
    t.present = true;
    t.huge = false;
    t.pfn = e.pfn();
    t.entry = e;
    return t;
}

bool
PageTable::touch(Vpn vpn, bool write)
{
    bool is_huge = false;
    Pte *e = leafEntry(vpn, &is_huge);
    if (!e)
        return false;
    e->setFlag(write ? (kPteAccessed | kPteDirty)
                     : std::uint64_t{kPteAccessed});
    return true;
}

Translation
PageTable::lookupAndTouch(Vpn vpn, bool write)
{
    if (!translationCacheEnabled()) {
        // Reference path: the seed's exact two-walk sequence. The CI
        // bit-identity check compares this against the fused walk.
        Translation t = lookup(vpn);
        if (t.present)
            touch(vpn, write);
        return t;
    }
    const std::uint64_t touch_flags =
        write ? (kPteAccessed | kPteDirty)
              : std::uint64_t{kPteAccessed};
    Translation t;
    Node *pd = pdFast(vpn);
    if (!pd)
        return t;
    const unsigned i1 = idxL1(vpn);
    Pte pd_entry(pd->entries[i1]);
    if (pd_entry.present() && pd_entry.huge()) {
        t.present = true;
        t.huge = true;
        t.pfn = pd_entry.pfn() + idxL0(vpn);
        t.entry = pd_entry; // pre-touch snapshot
        pd->entries[i1] = pd_entry.raw() | touch_flags;
        return t;
    }
    Node *pt = pd->children[i1].get();
    if (!pt)
        return t;
    std::uint64_t &raw = pt->entries[idxL0(vpn)];
    Pte e(raw);
    if (!e.present())
        return t;
    t.present = true;
    t.huge = false;
    t.pfn = e.pfn();
    t.entry = e; // pre-touch snapshot
    raw |= touch_flags;
    return t;
}

void
PageTable::clearAccessed(std::uint64_t region)
{
    const Vpn base = region << 9;
    Node *pd = pdFast(base);
    if (!pd)
        return;
    const unsigned i1 = idxL1(base);
    Pte pd_entry(pd->entries[i1]);
    if (pd_entry.present() && pd_entry.huge()) {
        Pte cleared = pd_entry;
        cleared.clearFlag(kPteAccessed);
        pd->entries[i1] = cleared.raw();
        return;
    }
    if (Node *pt = pd->children[i1].get()) {
        for (auto &raw : pt->entries) {
            Pte e(raw);
            if (e.present()) {
                e.clearFlag(kPteAccessed);
                raw = e.raw();
            }
        }
    }
}

unsigned
PageTable::accessedCount(std::uint64_t region) const
{
    const Vpn base = region << 9;
    const Node *pd = pdFast(base);
    if (!pd)
        return 0;
    const unsigned i1 = idxL1(base);
    Pte pd_entry(pd->entries[i1]);
    if (pd_entry.present() && pd_entry.huge())
        return pd_entry.accessed() ? 512 : 0;
    const Node *pt = pd->children[i1].get();
    if (!pt)
        return 0;
    unsigned n = 0;
    for (auto raw : pt->entries) {
        Pte e(raw);
        if (e.present() && e.accessed())
            n++;
    }
    return n;
}

unsigned
PageTable::population(std::uint64_t region) const
{
    const Vpn base = region << 9;
    const Node *pd = pdFast(base);
    if (!pd)
        return 0;
    const unsigned i1 = idxL1(base);
    Pte pd_entry(pd->entries[i1]);
    if (pd_entry.present() && pd_entry.huge())
        return 512;
    const Node *pt = pd->children[i1].get();
    return pt ? pt->used : 0;
}

bool
PageTable::isHuge(std::uint64_t region) const
{
    const Vpn base = region << 9;
    const Node *pd = pdFast(base);
    if (!pd)
        return false;
    Pte e(pd->entries[idxL1(base)]);
    return e.present() && e.huge();
}

PageTable::RegionView
PageTable::regionView(std::uint64_t region) const
{
    RegionView view;
    const Vpn base = region << 9;
    const Node *pd = pdFast(base);
    if (!pd)
        return view;
    const unsigned i1 = idxL1(base);
    Pte pd_entry(pd->entries[i1]);
    if (pd_entry.present() && pd_entry.huge()) {
        view.population = 512;
        view.accessed = pd_entry.accessed() ? 512 : 0;
        view.huge = true;
        return view;
    }
    const Node *pt = pd->children[i1].get();
    if (!pt)
        return view;
    view.population = pt->used;
    for (auto raw : pt->entries) {
        Pte e(raw);
        if (e.present() && e.accessed())
            view.accessed++;
    }
    return view;
}

void
PageTable::forEachLeaf(
    const std::function<void(Vpn, const Pte &, bool)> &fn) const
{
    for (unsigned i3 = 0; i3 < 512; i3++) {
        const Node *l2 = root_.children[i3].get();
        if (!l2)
            continue;
        for (unsigned i2 = 0; i2 < 512; i2++) {
            const Node *pd = l2->children[i2].get();
            if (!pd)
                continue;
            for (unsigned i1 = 0; i1 < 512; i1++) {
                const Vpn base =
                    (static_cast<Vpn>(i3) << 27) |
                    (static_cast<Vpn>(i2) << 18) |
                    (static_cast<Vpn>(i1) << 9);
                Pte pd_entry(pd->entries[i1]);
                if (pd_entry.present() && pd_entry.huge()) {
                    fn(base, pd_entry, true);
                    continue;
                }
                const Node *pt = pd->children[i1].get();
                if (!pt)
                    continue;
                for (unsigned i0 = 0; i0 < 512; i0++) {
                    Pte e(pt->entries[i0]);
                    if (e.present())
                        fn(base + i0, e, false);
                }
            }
        }
    }
}

void
PageTable::auditStructure(
    const std::function<void(const char *, Vpn, std::uint64_t)> &fn)
    const
{
    std::uint64_t base_count = 0;
    std::uint64_t huge_count = 0;
    for (unsigned i3 = 0; i3 < 512; i3++) {
        const Node *l2 = root_.children[i3].get();
        if (!l2)
            continue;
        for (unsigned i2 = 0; i2 < 512; i2++) {
            const Node *pd = l2->children[i2].get();
            if (!pd)
                continue;
            unsigned pd_used = 0;
            for (unsigned i1 = 0; i1 < 512; i1++) {
                const Vpn base =
                    (static_cast<Vpn>(i3) << 27) |
                    (static_cast<Vpn>(i2) << 18) |
                    (static_cast<Vpn>(i1) << 9);
                const Pte pd_entry(pd->entries[i1]);
                const Node *pt = pd->children[i1].get();
                const bool is_huge =
                    pd_entry.present() && pd_entry.huge();
                if (is_huge || pt)
                    pd_used++;
                if (is_huge) {
                    huge_count++;
                    if ((pd_entry.pfn() % kPagesPerHuge) != 0)
                        fn("huge-misaligned", base, pd_entry.pfn());
                    if (pt) {
                        unsigned shadows = 0;
                        for (unsigned i0 = 0; i0 < 512; i0++)
                            if (Pte(pt->entries[i0]).present())
                                shadows++;
                        fn("huge-shadow", base, shadows);
                    }
                }
                if (!pt)
                    continue;
                unsigned present = 0;
                for (unsigned i0 = 0; i0 < 512; i0++)
                    if (Pte(pt->entries[i0]).present())
                        present++;
                if (!is_huge)
                    base_count += present;
                if (present != pt->used)
                    fn("node-used-drift", base, present);
            }
            if (pd_used != pd->used)
                fn("node-used-drift",
                   (static_cast<Vpn>(i3) << 27) |
                       (static_cast<Vpn>(i2) << 18),
                   pd_used);
        }
    }
    if (base_count != base_pages_)
        fn("counter-drift", 0, base_count);
    if (huge_count != huge_pages_)
        fn("counter-drift", 0, huge_count);
}

Pte *
PageTable::leafEntry(Vpn vpn, bool *is_huge)
{
    Node *pd = pdFast(vpn);
    if (!pd)
        return nullptr;
    const unsigned i1 = idxL1(vpn);
    Pte pd_entry(pd->entries[i1]);
    if (pd_entry.present() && pd_entry.huge()) {
        if (is_huge)
            *is_huge = true;
        return reinterpret_cast<Pte *>(&pd->entries[i1]);
    }
    Node *pt = pd->children[i1].get();
    if (!pt)
        return nullptr;
    Pte *e = reinterpret_cast<Pte *>(&pt->entries[idxL0(vpn)]);
    if (!e->present())
        return nullptr;
    if (is_huge)
        *is_huge = false;
    return e;
}

void
PageTable::save(snap::Writer &w) const
{
    w.u64(base_pages_);
    w.u64(huge_pages_);
    w.u64(epoch_);
    // forEachLeaf walks the radix tree in ascending vpn order, so the
    // leaf list is canonical.
    std::uint64_t leaves = 0;
    forEachLeaf([&](Vpn, const Pte &, bool) { leaves++; });
    w.u64(leaves);
    forEachLeaf([&](Vpn vpn, const Pte &pte, bool is_huge) {
        w.u64(vpn);
        w.u64(pte.raw());
        w.b(is_huge);
    });
}

void
PageTable::load(snap::Reader &r)
{
    const std::uint64_t base_pages = r.u64();
    const std::uint64_t huge_pages = r.u64();
    const std::uint64_t epoch = r.u64();
    const std::uint64_t leaves = r.u64();

    root_ = Node{};
    base_pages_ = 0;
    huge_pages_ = 0;
    for (std::uint64_t i = 0; i < leaves; i++) {
        const Vpn vpn = r.u64();
        const std::uint64_t raw = r.u64();
        const bool is_huge = r.b();
        // mapBase/mapHuge rebuild the exact entry word: the saved
        // flag bits already include present (and huge), which the
        // mapping primitives OR in idempotently.
        const Pfn pfn = Pte(raw).pfn();
        const std::uint64_t flags = raw & 0xfffull;
        if (is_huge)
            mapHuge(vpn, pfn, flags);
        else
            mapBase(vpn, pfn, flags);
    }
    HS_ASSERT(base_pages_ == base_pages && huge_pages_ == huge_pages,
              "snapshot: page-table leaf counters drifted on load");

    // The rebuild bumped the epoch per mapping; restore the saved
    // value so audit logs keyed by epoch still line up, and drop all
    // cached walk results — their Node pointers died with the old
    // tree, and their epoch tags are meaningless under the restored
    // counter.
    epoch_ = epoch;
#ifndef HAWKSIM_NO_TCACHE
    tcache_.fill(CacheSlot{});
    last_pd_ = CacheSlot{};
#endif
}

} // namespace hawksim::vm
