/**
 * @file
 * Per-process virtual address space: VMAs plus the page table, with
 * the mapping/unmapping, promotion/demotion, COW and madvise
 * primitives that huge-page policies are built from.
 */

#ifndef HAWKSIM_VM_ADDRESS_SPACE_HH
#define HAWKSIM_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "base/types.hh"
#include "mem/phys.hh"
#include "vm/page_table.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::vm {

/** A virtual memory area (anonymous unless noted). */
struct Vma
{
    Addr start = 0;
    Addr end = 0; //!< exclusive
    bool anon = true;
    /** Eligible for transparent huge pages (anon only, like Linux). */
    bool hugeEligible = true;
    std::string name;

    std::uint64_t bytes() const { return end - start; }
    std::uint64_t pages() const { return bytes() / kPageSize; }
    bool contains(Addr a) const { return a >= start && a < end; }
    /** First and one-past-last huge-region index fully inside. */
    std::uint64_t firstFullRegion() const
    {
        return hugeAlignUp(start) / kHugePageSize;
    }
    std::uint64_t endFullRegion() const
    {
        return hugeAlignDown(end) / kHugePageSize;
    }
};

class AddressSpace
{
  public:
    AddressSpace(std::int32_t pid, mem::PhysicalMemory &phys);

    /** @name VMA management */
    /// @{
    /**
     * Create an anonymous mapping of @p bytes (rounded up to huge
     * alignment so regions are well-defined) and return its start.
     */
    Addr mmapAnon(std::uint64_t bytes, const std::string &name,
                  bool huge_eligible = true);
    /** Unmap a whole VMA, freeing all frames. */
    void munmap(Addr start);
    const Vma *findVma(Addr a) const;
    const std::map<Addr, Vma> &vmas() const { return vmas_; }
    /// @}

    /** @name Page mapping primitives (used by fault handlers) */
    /// @{
    /** Map one base page to an exclusively owned frame. */
    void mapBasePage(Vpn vpn, Pfn pfn, std::uint64_t extra_flags = 0);
    /** Map a whole region to an order-9 block. */
    void mapHugeRegion(std::uint64_t region, Pfn block_pfn,
                       std::uint64_t extra_flags = 0);
    /** Map one base page COW to the canonical zero page. */
    void mapZeroCow(Vpn vpn);
    /**
     * Resolve a COW fault on a zero-dedup page: allocate a private
     * frame and retarget the mapping. Returns true if the new frame
     * required synchronous zeroing (cost signal for the caller).
     */
    bool breakCow(Vpn vpn);
    /// @}

    /** @name Unmapping / freeing */
    /// @{
    void unmapAndFreeBase(Vpn vpn);
    void unmapAndFreeHuge(std::uint64_t region);
    /**
     * MADV_DONTNEED over [start, start+bytes): frees base pages and
     * breaks (demotes, then partially frees) huge mappings that the
     * range only partially covers — matching kernel behaviour the
     * paper's Redis experiment depends on (§2.1).
     */
    void madviseDontneed(Addr start, std::uint64_t bytes);
    /// @}

    /** @name Promotion / demotion */
    /// @{
    /**
     * Promote @p region onto @p block_pfn (an order-9 block already
     * allocated to this process). Copies old frame contents, frees
     * old frames, zero-fills unbacked tail pages. Returns the number
     * of base pages that were copied (cost driver).
     */
    std::uint64_t promoteRegion(std::uint64_t region, Pfn block_pfn);
    /** In-place demotion: split the huge mapping into base pages. */
    void demoteRegion(std::uint64_t region);
    /**
     * Promote a region whose present base pages already sit at their
     * natural offsets of one aligned order-9 block (FreeBSD-style
     * reservations): no copying, just page-table surgery. The region
     * must be fully populated.
     */
    void promoteInPlace(std::uint64_t region);
    /**
     * Replace an exclusively-owned, zero-filled base page with a COW
     * mapping of the canonical zero page, freeing the frame (the
     * dedup step of HawkEye's bloat recovery).
     */
    void dedupZeroPage(Vpn vpn);
    /**
     * KSM-style sharing: retarget @p vpn to @p canonical (COW),
     * freeing its old frame. The canonical frame is pinned shared +
     * unmovable, as Linux does for KSM pages.
     */
    void sharePage(Vpn vpn, Pfn canonical);
    /// @}

    /** @name Introspection */
    /// @{
    std::int32_t pid() const { return pid_; }
    PageTable &pageTable() { return pt_; }
    const PageTable &pageTable() const { return pt_; }
    mem::PhysicalMemory &phys() { return phys_; }
    /** Physical frames owned exclusively by this process. */
    std::uint64_t rssPages() const { return owned_frames_; }
    /** Mapped (virtual) pages, including zero-dedup'd ones. */
    std::uint64_t mappedPages() const { return pt_.mappedPages(); }
    /** Run a callback over every huge region of huge-eligible VMAs. */
    void forEachEligibleRegion(
        const std::function<void(std::uint64_t)> &fn) const;
    /// @}

    /** VMAs, VA cursor, RSS counter and the page table. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    std::int32_t pid_;
    mem::PhysicalMemory &phys_;
    PageTable pt_;
    std::map<Addr, Vma> vmas_;
    Addr next_mmap_ = GiB(4); //!< VA allocation cursor
    std::uint64_t owned_frames_ = 0;
};

} // namespace hawksim::vm

#endif // HAWKSIM_VM_ADDRESS_SPACE_HH
