/**
 * @file
 * Four-level radix page table (x86-64 layout: PML4/PDPT/PD/PT).
 *
 * Huge (2MB) mappings are leaves at the PD level; base (4KB) mappings
 * are leaves at the PT level, exactly like hardware. The table
 * maintains population counts per 2MB region so huge-page policies can
 * query utilization in O(1), and supports the promotion/demotion
 * primitives (replace a PT with a huge leaf and vice versa).
 */

#ifndef HAWKSIM_VM_PAGE_TABLE_HH
#define HAWKSIM_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/types.hh"
#include "vm/pte.hh"

namespace hawksim::vm {

class PageTable
{
  public:
    PageTable() = default;

    /** @name Mapping primitives */
    /// @{
    /** Install a 4KB mapping. Panics if the vpn is already mapped. */
    void mapBase(Vpn vpn, Pfn pfn, std::uint64_t flags = kPtePresent);
    /**
     * Install a 2MB mapping for the region containing @p vpn. The
     * region must be empty (no PT and no huge leaf). @p block_pfn is
     * the first of 512 contiguous frames.
     */
    void mapHuge(Vpn vpn, Pfn block_pfn,
                 std::uint64_t flags = kPtePresent);
    /** Remove a 4KB mapping; returns the old entry. */
    Pte unmapBase(Vpn vpn);
    /** Remove a 2MB mapping; returns the old entry. */
    Pte unmapHuge(Vpn vpn);
    /** Replace the frame of an existing base mapping (migration). */
    void remapBase(Vpn vpn, Pfn new_pfn);
    /// @}

    /** @name Promotion / demotion */
    /// @{
    /**
     * Promote a fully- or partially-populated region to a huge
     * mapping backed by @p block_pfn. Returns the old base PTEs
     * (present entries only, with their vpn) so the caller can free
     * or copy the old frames. Aggregates accessed/dirty bits.
     */
    std::vector<std::pair<Vpn, Pte>> promote(Vpn vpn, Pfn block_pfn);
    /**
     * Demote the huge mapping covering @p vpn into 512 base mappings
     * pointing into the same physical block. Returns the old huge
     * entry.
     */
    Pte demote(Vpn vpn);
    /// @}

    /** @name Lookup and access bits */
    /// @{
    Translation lookup(Vpn vpn) const;
    /**
     * MMU access simulation: set accessed (and dirty for writes) on
     * the leaf entry mapping @p vpn. Returns false if unmapped.
     */
    bool touch(Vpn vpn, bool write);
    /** Clear accessed bits for every leaf entry in a 2MB region. */
    void clearAccessed(std::uint64_t region);
    /**
     * Count base pages in the region with the accessed bit set. A
     * huge mapping counts as its full population if accessed.
     */
    unsigned accessedCount(std::uint64_t region) const;
    /// @}

    /** @name Region queries */
    /// @{
    /** Present 4KB pages in a 2MB region (512 if huge-mapped). */
    unsigned population(std::uint64_t region) const;
    /** True if the region is covered by a huge leaf. */
    bool isHuge(std::uint64_t region) const;
    /// @}

    /** @name Aggregate counters */
    /// @{
    std::uint64_t mappedBasePages() const { return base_pages_; }
    std::uint64_t mappedHugePages() const { return huge_pages_; }
    /** Total mapped 4KB-equivalents. */
    std::uint64_t
    mappedPages() const
    {
        return base_pages_ + huge_pages_ * kPagesPerHuge;
    }
    /// @}

    /**
     * Iterate every leaf mapping: callback(vpn, entry, is_huge). For
     * huge leaves the vpn is the region's first page.
     */
    void forEachLeaf(
        const std::function<void(Vpn, const Pte &, bool)> &fn) const;

    /** Mutable leaf entry access for in-place flag edits (OS use). */
    Pte *leafEntry(Vpn vpn, bool *is_huge = nullptr);

  private:
    struct Node
    {
        std::array<std::uint64_t, 512> entries{};
        std::array<std::unique_ptr<Node>, 512> children;
        /** Present leaf/child count, for reclaiming empty nodes. */
        unsigned used = 0;
    };

    static unsigned idxL3(Vpn v) { return (v >> 27) & 511; }
    static unsigned idxL2(Vpn v) { return (v >> 18) & 511; }
    static unsigned idxL1(Vpn v) { return (v >> 9) & 511; }
    static unsigned idxL0(Vpn v) { return v & 511; }

    /** Walk to the PD node covering vpn, optionally creating it. */
    Node *pdNode(Vpn vpn, bool create);
    const Node *pdNodeConst(Vpn vpn) const;

    Node root_;
    std::uint64_t base_pages_ = 0;
    std::uint64_t huge_pages_ = 0;
};

} // namespace hawksim::vm

#endif // HAWKSIM_VM_PAGE_TABLE_HH
