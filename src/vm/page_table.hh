/**
 * @file
 * Four-level radix page table (x86-64 layout: PML4/PDPT/PD/PT).
 *
 * Huge (2MB) mappings are leaves at the PD level; base (4KB) mappings
 * are leaves at the PT level, exactly like hardware. The table
 * maintains population counts per 2MB region so huge-page policies can
 * query utilization in O(1), and supports the promotion/demotion
 * primitives (replace a PT with a huge leaf and vice versa).
 *
 * Simulator-side translation cache
 * --------------------------------
 * Every sampled access costs a software radix walk, and the hot paths
 * (TLB simulation, content writes, access-bit sampling) walk the same
 * handful of PD nodes over and over. The table therefore keeps a
 * behavior-invisible cache of walk results:
 *
 *   - a structural *epoch* counter, bumped by every mutation that
 *     creates, destroys or retargets leaf entries (mapBase/mapHuge/
 *     unmapBase/unmapHuge/remapBase/promote/demote — madvise unmaps
 *     go through these);
 *   - a flat direct-mapped `region -> PD node` cache plus a one-entry
 *     last-PD slot, each tagged with the epoch at fill time.
 *
 * A stale entry is detected by epoch compare and simply re-walked, so
 * cached and uncached execution are bit-identical: the cache stores
 * only node *handles*; entry words (present/huge/accessed/dirty bits)
 * are always read live through them. `lookup`, `touch`,
 * `clearAccessed`, `accessedCount`, `population`, `isHuge`,
 * `regionView` and `leafEntry` all consult the cache before walking.
 *
 * Compile with -DHAWKSIM_NO_TCACHE to remove the cache entirely (CI
 * compares reports of both builds byte-for-byte), or flip the
 * process-wide runtime switch (used by `hawksim_bench --wallclock` to
 * measure both variants in one process).
 */

#ifndef HAWKSIM_VM_PAGE_TABLE_HH
#define HAWKSIM_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/aligned.hh"
#include "base/types.hh"
#include "vm/pte.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::vm {

class PageTable
{
  public:
    PageTable() = default;

    /** @name Mapping primitives */
    /// @{
    /** Install a 4KB mapping. Panics if the vpn is already mapped. */
    void mapBase(Vpn vpn, Pfn pfn, std::uint64_t flags = kPtePresent);
    /**
     * Install a 2MB mapping for the region containing @p vpn. The
     * region must be empty (no PT and no huge leaf). @p block_pfn is
     * the first of 512 contiguous frames.
     */
    void mapHuge(Vpn vpn, Pfn block_pfn,
                 std::uint64_t flags = kPtePresent);
    /** Remove a 4KB mapping; returns the old entry. */
    Pte unmapBase(Vpn vpn);
    /** Remove a 2MB mapping; returns the old entry. */
    Pte unmapHuge(Vpn vpn);
    /** Replace the frame of an existing base mapping (migration). */
    void remapBase(Vpn vpn, Pfn new_pfn);
    /// @}

    /** @name Promotion / demotion */
    /// @{
    /**
     * Promote a fully- or partially-populated region to a huge
     * mapping backed by @p block_pfn. Returns the old base PTEs
     * (present entries only, with their vpn) so the caller can free
     * or copy the old frames. Aggregates accessed/dirty bits.
     */
    std::vector<std::pair<Vpn, Pte>> promote(Vpn vpn, Pfn block_pfn);
    /**
     * Demote the huge mapping covering @p vpn into 512 base mappings
     * pointing into the same physical block. Returns the old huge
     * entry.
     */
    Pte demote(Vpn vpn);
    /// @}

    /** @name Lookup and access bits */
    /// @{
    Translation lookup(Vpn vpn) const;
    /**
     * MMU access simulation: set accessed (and dirty for writes) on
     * the leaf entry mapping @p vpn. Returns false if unmapped.
     */
    bool touch(Vpn vpn, bool write);
    /**
     * Fused lookup + touch in a single walk: translate @p vpn and, if
     * present, set accessed (and dirty for writes) on the leaf entry.
     * The returned Translation snapshots the entry *before* the touch,
     * exactly as a `lookup()` followed by `touch()` would observe it.
     * With the translation cache disabled this decays to that
     * two-walk reference sequence.
     */
    Translation lookupAndTouch(Vpn vpn, bool write);
    /** Clear accessed bits for every leaf entry in a 2MB region. */
    void clearAccessed(std::uint64_t region);
    /**
     * Count base pages in the region with the accessed bit set. A
     * huge mapping counts as its full population if accessed.
     */
    unsigned accessedCount(std::uint64_t region) const;
    /// @}

    /** @name Region queries */
    /// @{
    /** Present 4KB pages in a 2MB region (512 if huge-mapped). */
    unsigned population(std::uint64_t region) const;
    /** True if the region is covered by a huge leaf. */
    bool isHuge(std::uint64_t region) const;
    /** Population, accessed count and hugeness of one region. */
    struct RegionView
    {
        unsigned population = 0;
        unsigned accessed = 0;
        bool huge = false;
    };
    /**
     * All three region statistics from a single walk + PT scan —
     * what the access-bit tracker reads every sample window.
     */
    RegionView regionView(std::uint64_t region) const;
    /// @}

    /** @name Aggregate counters */
    /// @{
    std::uint64_t mappedBasePages() const { return base_pages_; }
    std::uint64_t mappedHugePages() const { return huge_pages_; }
    /** Total mapped 4KB-equivalents. */
    std::uint64_t
    mappedPages() const
    {
        return base_pages_ + huge_pages_ * kPagesPerHuge;
    }
    /// @}

    /**
     * Iterate every leaf mapping: callback(vpn, entry, is_huge). For
     * huge leaves the vpn is the region's first page.
     */
    void forEachLeaf(
        const std::function<void(Vpn, const Pte &, bool)> &fn) const;

    /** Mutable leaf entry access for in-place flag edits (OS use). */
    Pte *leafEntry(Vpn vpn, bool *is_huge = nullptr);

    /**
     * Leaf entries + the structural epoch. Load rebuilds the radix
     * tree from scratch, restores the epoch, and drops every
     * translation-cache slot (cached Node pointers would dangle).
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

    /**
     * Structural self-audit for the fault::Auditor. Walks the raw
     * tree (not forEachLeaf — shadows would be invisible there) and
     * reports each defect as callback(tag, vpn, value):
     *   - "huge-shadow": a huge PD leaf whose slot also holds a live
     *     PT node with present 4K entries underneath the 2MB mapping
     *   - "huge-misaligned": a huge leaf whose block pfn is not
     *     512-aligned (value = the pfn)
     *   - "node-used-drift": a node's `used` count disagrees with its
     *     present entries/children (value = recount)
     *   - "counter-drift": base_pages_/huge_pages_ disagree with the
     *     tree (vpn = 0, value = recount)
     */
    void auditStructure(
        const std::function<void(const char *, Vpn, std::uint64_t)>
            &fn) const;

    /** @name Translation-cache introspection and control */
    /// @{
    /**
     * Structural mutation epoch; cache entries tagged with an older
     * epoch are ignored. Exposed for tests and diagnostics.
     */
    std::uint64_t translationEpoch() const { return epoch_; }
    /** True unless compiled with -DHAWKSIM_NO_TCACHE. */
    static constexpr bool
    translationCacheCompiledIn()
    {
#ifdef HAWKSIM_NO_TCACHE
        return false;
#else
        return true;
#endif
    }
    /**
     * Process-wide runtime switch (default on). Only flipped between
     * measurement phases by the wall-clock harness; never toggle it
     * while simulations are running on other threads.
     */
    static void
    setTranslationCacheEnabled(bool on)
    {
        tcache_runtime_enabled_ = on;
    }
    static bool
    translationCacheEnabled()
    {
        return translationCacheCompiledIn() && tcache_runtime_enabled_;
    }

    /**
     * Pull the translation-cache slot — and, on a current-epoch hit,
     * the PD entry word — for @p vpn towards the caches, ahead of an
     * upcoming `lookupAndTouch`. Pure prefetch: never changes
     * behavior, and a no-op when the cache is compiled out.
     */
    void
    prefetchTranslation(Vpn vpn) const
    {
#ifndef HAWKSIM_NO_TCACHE
        const std::uint64_t region = vpn >> 9;
        const CacheSlot &slot = tcache_[region & (kTCacheSlots - 1)];
        if (slot.tag == region + 1 && slot.epoch == epoch_ && slot.pd) {
            prefetchRead(&slot.pd->entries[idxL1(vpn)]);
            prefetchRead(&slot.pd->children[idxL1(vpn)]);
        }
#else
        (void)vpn;
#endif
    }
    /// @}

  private:
    struct Node
    {
        std::array<std::uint64_t, 512> entries{};
        std::array<std::unique_ptr<Node>, 512> children;
        /** Present leaf/child count, for reclaiming empty nodes. */
        unsigned used = 0;
    };

    static unsigned idxL3(Vpn v) { return (v >> 27) & 511; }
    static unsigned idxL2(Vpn v) { return (v >> 18) & 511; }
    static unsigned idxL1(Vpn v) { return (v >> 9) & 511; }
    static unsigned idxL0(Vpn v) { return v & 511; }

    /** Walk to the PD node covering vpn, optionally creating it. */
    Node *pdNode(Vpn vpn, bool create);
    const Node *pdNodeConst(Vpn vpn) const;

    /**
     * Read-only walk to the PD node. The const_cast is sound: the
     * walk itself never mutates, and callers that write through the
     * returned node are non-const methods of this table.
     */
    Node *walkPd(Vpn vpn) const;
    /** walkPd through the translation cache (when enabled). */
    Node *pdFast(Vpn vpn) const;
    /** Record a structural mutation: invalidates all cached slots. */
    void bumpEpoch() { epoch_++; }

    Node root_;
    std::uint64_t base_pages_ = 0;
    std::uint64_t huge_pages_ = 0;

    /** Structural epoch; starts at 1 so a zero tag is never valid. */
    std::uint64_t epoch_ = 1;
    static bool tcache_runtime_enabled_;

#ifndef HAWKSIM_NO_TCACHE
    struct CacheSlot
    {
        std::uint64_t tag = 0; //!< key + 1; 0 = empty
        std::uint64_t epoch = 0;
        Node *pd = nullptr;
    };
    static constexpr std::uint64_t kTCacheSlots = 1024; // power of 2
    /** Direct-mapped region -> PD node cache, epoch-validated. */
    mutable std::array<CacheSlot, kTCacheSlots> tcache_{};
    /** Last PD node seen, keyed by vpn >> 18 (one PD = 1GB of VA). */
    mutable CacheSlot last_pd_{};
#endif
};

} // namespace hawksim::vm

#endif // HAWKSIM_VM_PAGE_TABLE_HH
