/**
 * @file
 * Hardware-format page table entries.
 *
 * Entries pack a frame number and flag bits into a single 64-bit word,
 * mirroring x86-64 so that access/dirty-bit tracking, COW and the
 * huge-page bit behave like the real structures HawkEye manipulates.
 */

#ifndef HAWKSIM_VM_PTE_HH
#define HAWKSIM_VM_PTE_HH

#include <cstdint>

#include "base/types.hh"

namespace hawksim::vm {

/** PTE flag bits (low 12 bits of the entry). */
enum PteFlags : std::uint64_t
{
    kPtePresent  = 1ull << 0,
    kPteHuge     = 1ull << 1, //!< PD-level 2MB leaf mapping
    kPteAccessed = 1ull << 2, //!< set by the (simulated) MMU on access
    kPteDirty    = 1ull << 3, //!< set by the MMU on write
    kPteCow      = 1ull << 4, //!< write triggers copy-on-write fault
    kPteZero     = 1ull << 5, //!< maps the canonical zero page (dedup)
    kPteReserv   = 1ull << 6, //!< FreeBSD-style reservation member
};

/** A 64-bit page-table entry: pfn << 12 | flags. */
class Pte
{
  public:
    constexpr Pte() = default;
    constexpr explicit Pte(std::uint64_t raw) : raw_(raw) {}

    static Pte
    make(Pfn pfn, std::uint64_t flags)
    {
        return Pte((pfn << kPageShift) | (flags & 0xfff));
    }

    std::uint64_t raw() const { return raw_; }
    Pfn pfn() const { return raw_ >> kPageShift; }

    bool present() const { return raw_ & kPtePresent; }
    bool huge() const { return raw_ & kPteHuge; }
    bool accessed() const { return raw_ & kPteAccessed; }
    bool dirty() const { return raw_ & kPteDirty; }
    bool cow() const { return raw_ & kPteCow; }
    bool zeroPage() const { return raw_ & kPteZero; }

    void setFlag(std::uint64_t f) { raw_ |= f; }
    void clearFlag(std::uint64_t f) { raw_ &= ~f; }

    bool operator==(const Pte &o) const { return raw_ == o.raw_; }

  private:
    std::uint64_t raw_ = 0;
};

/** Result of a page-table lookup for one virtual page. */
struct Translation
{
    bool present = false;
    bool huge = false;
    /** Frame of the 4KB page (for huge mappings: block pfn + offset). */
    Pfn pfn = kInvalidPfn;
    /** Entry flags as stored. */
    Pte entry;
};

} // namespace hawksim::vm

#endif // HAWKSIM_VM_PTE_HH
