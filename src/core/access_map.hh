/**
 * @file
 * HawkEye's access_map (§3.3, Figure 4).
 *
 * A per-process array of buckets indexing huge-page regions by their
 * EMA access coverage (0–512 base pages split across ten buckets).
 * Regions whose coverage rises are inserted at the *head* of their new
 * bucket; regions whose coverage falls are inserted at the *tail* —
 * so within a bucket, promotion order (head to tail) favours recency.
 * Promotion proceeds from the highest bucket index downward, which
 * captures both frequency (coverage) and recency.
 */

#ifndef HAWKSIM_CORE_ACCESS_MAP_HH
#define HAWKSIM_CORE_ACCESS_MAP_HH

#include <algorithm>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "base/types.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::core {

class AccessMap
{
  public:
    static constexpr unsigned kBuckets = 10;

    /**
     * Bucket index for an access-coverage value in [0, 512]. The
     * clamp is a min (a conditional move, not a branch): coverage
     * values cluster around bucket boundaries, so a compare-and-jump
     * here is data-dependent and mispredicts in the sorted-update
     * loops that call this per region.
     */
    static unsigned
    bucketFor(double coverage)
    {
        const auto b = static_cast<unsigned>(coverage /
                                             (512.0 / kBuckets));
        return std::min(b, kBuckets - 1);
    }

    /**
     * Record a new coverage sample for @p region: moves it between
     * buckets with head/tail placement by direction of change.
     */
    void update(std::uint64_t region, double coverage);

    /** Remove a region (promoted or unmapped). */
    void remove(std::uint64_t region);

    /** Head region of the highest non-empty bucket. */
    std::optional<std::uint64_t> peekTop() const;
    /** Index of the highest non-empty bucket, or -1. */
    int topBucket() const;
    /** Head region of a specific bucket. */
    std::optional<std::uint64_t> peekBucket(unsigned bucket) const;

    /** Pop the head region of the highest non-empty bucket. */
    std::optional<std::uint64_t> popTop();

    bool contains(std::uint64_t region) const
    {
        return where_.count(region) != 0;
    }
    /** Bucket currently holding @p region, or -1 when absent. */
    int
    bucketOf(std::uint64_t region) const
    {
        auto it = where_.find(region);
        return it == where_.end()
                   ? -1
                   : static_cast<int>(it->second.bucket);
    }
    std::size_t size() const { return where_.size(); }
    std::size_t bucketSize(unsigned b) const
    {
        return buckets_[b].size();
    }
    bool empty() const { return where_.empty(); }

    /** Bucket lists in LRU order; where_ is rebuilt on load. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    struct Location
    {
        unsigned bucket;
        std::list<std::uint64_t>::iterator it;
    };

    std::list<std::uint64_t> buckets_[kBuckets];
    std::unordered_map<std::uint64_t, Location> where_;
};

} // namespace hawksim::core

#endif // HAWKSIM_CORE_ACCESS_MAP_HH
