/**
 * @file
 * The HawkEye huge-page policy (§3) — the paper's core contribution.
 *
 * Components:
 *   - huge pages at first fault, preferentially from pre-zeroed free
 *     lists (low latency *and* few faults, resolving Table 1's
 *     trade-off);
 *   - a rate-limited async pre-zeroing thread feeding those lists;
 *   - fine-grained promotion driven by per-region access coverage:
 *     the per-process access_map buckets regions by EMA coverage, and
 *     the promotion daemon promotes from the globally highest bucket
 *     (HawkEye-G) or from the process with the highest *measured* MMU
 *     overhead (HawkEye-PMU, which also stops below a 2% threshold);
 *   - bloat recovery under memory pressure via zero-page dedup.
 *
 * The two variants differ only in how they rank processes: estimated
 * (access coverage) vs measured (performance counters, Table 4).
 */

#ifndef HAWKSIM_CORE_HAWKEYE_HH
#define HAWKSIM_CORE_HAWKEYE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/access_map.hh"
#include "core/access_tracker.hh"
#include "core/bloat_recovery.hh"
#include "core/prezero.hh"
#include "policy/common.hh"
#include "policy/policy.hh"
#include "tlb/perf_counters.hh"

namespace hawksim::core {

struct HawkEyeConfig
{
    /** Use hardware performance counters (HawkEye-PMU) instead of
     *  access-coverage estimation (HawkEye-G). */
    bool usePmu = false;
    /** PMU variant stops promoting a process below this overhead. */
    double pmuStopPct = 2.0;
    /** Allocate huge pages directly at first fault. */
    bool faultHuge = true;
    /** Run the async pre-zeroing thread. */
    bool enablePrezero = true;
    /** Run bloat recovery under memory pressure. */
    bool enableBloatRecovery = true;
    /** Zero base pages per huge page that trigger demotion+dedup. */
    unsigned dedupThreshold = 128;
    /** Access-bit sampling period (§3.3: 30s) and window (1s). */
    TimeNs samplePeriod = sec(30);
    TimeNs sampleWindow = sec(1);
    /** PMU read period for per-process overhead windows. */
    TimeNs pmuPeriod = sec(1);
    policy::ZeroMode zero = policy::ZeroMode::kUseZeroLists;
};

class HawkEyePolicy : public policy::HugePagePolicy
{
  public:
    explicit HawkEyePolicy(HawkEyeConfig cfg = HawkEyeConfig{});

    std::string
    name() const override
    {
        return cfg_.usePmu ? "HawkEye-PMU" : "HawkEye-G";
    }

    policy::FaultOutcome onFault(sim::System &sys, sim::Process &proc,
                                 Vpn vpn) override;
    void periodic(sim::System &sys) override;
    void attach(sim::System &sys) override;
    void onProcessStart(sim::System &sys, sim::Process &proc) override;
    void onProcessExit(sim::System &sys, sim::Process &proc) override;

    /** @name Introspection for experiments */
    /// @{
    std::uint64_t promotions() const { return promotions_; }
    const AsyncZeroDaemon &zeroDaemon() const { return prezero_; }
    const BloatRecovery &bloatRecovery() const { return bloat_; }
    const AccessMap *accessMap(std::int32_t pid) const;
    const AccessTracker *tracker(std::int32_t pid) const;
    /** Last measured/estimated overhead used for ranking. */
    double processScore(std::int32_t pid) const;
    const HawkEyeConfig &config() const { return cfg_; }
    /// @}

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    struct ProcState
    {
        std::unique_ptr<AccessTracker> tracker;
        AccessMap map;
        tlb::PerfCounters pmuSnapshot;
        double pmuOverheadPct = 0.0;
    };

    /** Process selection + one promotion; false when nothing to do. */
    bool promoteNext(sim::System &sys);
    /** Refresh per-process PMU overhead windows. */
    void samplePmu(sim::System &sys);
    /** Overhead score used for bloat-recovery ordering. */
    double bloatScore(sim::Process &proc);

    HawkEyeConfig cfg_;
    std::unordered_map<std::int32_t, ProcState> state_;
    AsyncZeroDaemon prezero_;
    BloatRecovery bloat_;
    double promote_budget_ = 0.0;
    std::uint64_t promotions_ = 0;
    TimeNs next_pmu_ = 0;
    /** Round-robin cursor over pids for tie-breaking. */
    std::uint64_t rr_ = 0;
};

} // namespace hawksim::core

#endif // HAWKSIM_CORE_HAWKEYE_HH
