/**
 * @file
 * Periodic page-table access-bit sampling (HawkEye §3.3).
 *
 * Every sampling period (30s by default) the tracker clears the
 * accessed bits of every eligible region of its process, waits one
 * simulated second, then reads back how many base pages were touched —
 * the region's *access coverage* — and feeds it into a per-region EMA.
 * Ingens uses the same machinery for its idleness tracking; HawkEye's
 * access_map consumes the EMA samples.
 */

#ifndef HAWKSIM_CORE_ACCESS_TRACKER_HH
#define HAWKSIM_CORE_ACCESS_TRACKER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/aligned.hh"
#include "base/stats.hh"
#include "base/types.hh"

namespace hawksim::sim {
class Process;
} // namespace hawksim::sim

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::core {

class AccessTracker
{
  public:
    struct RegionStat
    {
        Ema ema{0.4};
        unsigned lastSample = 0;
        bool isHuge = false;
    };

    /** Called after each completed sample of a region. */
    using SampleHook = std::function<void(std::uint64_t region,
                                          double ema, unsigned raw,
                                          bool is_huge)>;

    explicit AccessTracker(TimeNs period = sec(30),
                           TimeNs window = sec(1))
        : period_(period), window_(window)
    {}

    /** Drive the clear/read state machine. */
    void periodic(sim::Process &proc, TimeNs now);

    /** Force an immediate full sample cycle (tests/experiments). */
    void sampleNow(sim::Process &proc, TimeNs now);

    const std::unordered_map<std::uint64_t, RegionStat> &
    regions() const
    {
        return regions_;
    }

    double
    emaCoverage(std::uint64_t region) const
    {
        auto it = regions_.find(region);
        return it == regions_.end() ? 0.0 : it->second.ema.value();
    }

    /** Forget a region (e.g. after unmap). */
    void forget(std::uint64_t region) { regions_.erase(region); }

    /** Sum of EMA coverage over all non-huge regions — HawkEye-G's
     *  estimate of how much promotion would help this process. */
    double pendingCoverageScore() const;

    /** Sum of EMA coverage over everything (huge included) — the
     *  process's overall estimated TLB footprint. */
    double totalCoverageScore() const;

    void setHook(SampleHook hook) { hook_ = std::move(hook); }
    TimeNs period() const { return period_; }

    /** Sampling state machine + per-region EMAs (hook preserved). */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    void clearPhase(sim::Process &proc);
    void readPhase(sim::Process &proc);

    /**
     * One region staged by readPhase's walk pass for the column EMA
     * kernel and the deferred hook pass. Holds a stable pointer into
     * `regions_` (unordered_map never moves values on insert).
     */
    struct StagedSample
    {
        std::uint64_t region;
        RegionStat *stat;
        double sample;
    };

    TimeNs period_;
    TimeNs window_;
    TimeNs next_clear_ = 0;
    TimeNs read_at_ = 0;
    bool armed_ = false;
    std::unordered_map<std::uint64_t, RegionStat> regions_;
    SampleHook hook_;

    /** @name readPhase scratch, reused across sampling periods */
    /// @{
    std::vector<StagedSample> staged_;
    AlignedVec<double> ema_vals_;
    AlignedVec<double> ema_alphas_;
    AlignedVec<double> ema_samples_;
    std::vector<Ema *> ema_dst_;
    /// @}
};

} // namespace hawksim::core

#endif // HAWKSIM_CORE_ACCESS_TRACKER_HH
