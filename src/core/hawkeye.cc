#include "core/hawkeye.hh"

#include <algorithm>
#include <vector>

#include "sim/process.hh"
#include "sim/system.hh"
#include "snap/snap.hh"

namespace hawksim::core {

HawkEyePolicy::HawkEyePolicy(HawkEyeConfig cfg)
    : cfg_(cfg), prezero_(10'000.0),
      bloat_(0.85, 0.70, 400.0 * 1024 * 1024, cfg.dedupThreshold)
{
    bloat_.setDemoteHook([this](sim::Process &proc,
                                std::uint64_t region) {
        // A demoted region becomes a promotion candidate again; it
        // re-enters the access_map at its next coverage sample.
        auto it = state_.find(proc.pid());
        if (it != state_.end())
            it->second.map.remove(region);
    });
}

void
HawkEyePolicy::attach(sim::System &sys)
{
    prezero_.setRate(sys.costs().zeroDaemonPagesPerSec);
    bloat_ = BloatRecovery(sys.costs().bloatHighWatermark,
                           sys.costs().bloatLowWatermark,
                           sys.costs().bloatScanBytesPerSec,
                           cfg_.dedupThreshold);
    bloat_.setDemoteHook([this](sim::Process &proc,
                                std::uint64_t region) {
        auto it = state_.find(proc.pid());
        if (it != state_.end())
            it->second.map.remove(region);
    });
}

policy::FaultOutcome
HawkEyePolicy::onFault(sim::System &sys, sim::Process &proc, Vpn vpn)
{
    const bool pressure =
        sys.phys().usedFraction() > sys.costs().bloatHighWatermark;
    if (cfg_.faultHuge && !pressure &&
        policy::regionEmptyAndEligible(proc, vpn)) {
        // No compaction in the fault path: HawkEye keeps fault
        // latency low; contiguity comes from background work.
        return policy::faultHuge(sys, proc, vpn, cfg_.zero,
                                 /*allow_compact=*/false);
    }
    return policy::faultBase(sys, proc, vpn, cfg_.zero);
}

void
HawkEyePolicy::onProcessStart(sim::System &sys, sim::Process &proc)
{
    (void)sys;
    ProcState &st = state_[proc.pid()];
    st.tracker = std::make_unique<AccessTracker>(cfg_.samplePeriod,
                                                 cfg_.sampleWindow);
    AccessMap *map = &st.map;
    sim::Process *p = &proc;
    auto &pt = proc.space().pageTable();
    st.tracker->setHook([map, p, &pt](std::uint64_t region, double ema,
                                      unsigned raw, bool is_huge) {
        (void)raw;
        (void)p;
        if (is_huge || pt.isHuge(region)) {
            map->remove(region);
            return;
        }
        map->update(region, ema);
    });
}

void
HawkEyePolicy::onProcessExit(sim::System &sys, sim::Process &proc)
{
    (void)sys;
    state_.erase(proc.pid());
}

void
HawkEyePolicy::samplePmu(sim::System &sys)
{
    for (auto &proc : sys.processes()) {
        auto it = state_.find(proc->pid());
        if (it == state_.end())
            continue;
        const tlb::PerfCounters now = proc->counters();
        const tlb::PerfCounters delta =
            now.since(it->second.pmuSnapshot);
        it->second.pmuSnapshot = now;
        if (delta.cpuClkUnhalted > 0)
            it->second.pmuOverheadPct = delta.mmuOverheadPct();
    }
}

double
HawkEyePolicy::bloatScore(sim::Process &proc)
{
    auto it = state_.find(proc.pid());
    if (it == state_.end())
        return 0.0;
    if (cfg_.usePmu)
        return it->second.pmuOverheadPct;
    return it->second.tracker->totalCoverageScore();
}

bool
HawkEyePolicy::promoteNext(sim::System &sys)
{
    // Build the list of live candidate processes.
    std::vector<sim::Process *> procs;
    for (auto &proc : sys.processes()) {
        if (!proc->finished() && state_.count(proc->pid()))
            procs.push_back(proc.get());
    }
    if (procs.empty())
        return false;

    sim::Process *victim = nullptr;
    if (cfg_.usePmu) {
        // HawkEye-PMU: the process with the highest *measured* MMU
        // overhead that still has candidates; stop below threshold.
        double best = cfg_.pmuStopPct;
        for (sim::Process *p : procs) {
            ProcState &st = state_[p->pid()];
            if (st.map.empty())
                continue;
            if (st.pmuOverheadPct > best) {
                best = st.pmuOverheadPct;
                victim = p;
            }
        }
    } else {
        // HawkEye-G: globally highest access-coverage bucket;
        // round-robin among processes tied at that index.
        int top = -1;
        for (sim::Process *p : procs)
            top = std::max(top, state_[p->pid()].map.topBucket());
        if (top < 0)
            return false;
        std::vector<sim::Process *> tied;
        for (sim::Process *p : procs) {
            if (state_[p->pid()].map.topBucket() == top)
                tied.push_back(p);
        }
        victim = tied[rr_++ % tied.size()];
    }
    if (!victim)
        return false;

    ProcState &st = state_[victim->pid()];
    auto region = st.map.popTop();
    if (!region)
        return false;
    const auto &pt = victim->space().pageTable();
    if (pt.isHuge(*region) || pt.population(*region) == 0)
        return true; // stale entry consumed; try again next round
    if (!policy::promoteOne(sys, *victim, *region,
                            /*prefer_zero=*/false)
             .has_value()) {
        st.map.update(*region, 0.0); // put back; retry later
        sys.tracer().instant(
            obs::Cat::kPromote, "promote_defer", victim->pid(),
            sys.now(),
            {{"region", static_cast<std::int64_t>(*region)}});
        return false;
    }
    promotions_++;
    return true;
}

void
HawkEyePolicy::periodic(sim::System &sys)
{
    const TimeNs dt = sys.config().tickQuantum;

    // Access-bit sampling feeds the access_maps.
    for (auto &proc : sys.processes()) {
        if (proc->finished())
            continue;
        auto it = state_.find(proc->pid());
        if (it != state_.end())
            it->second.tracker->periodic(*proc, sys.now());
    }

    // PMU windows (PMU variant only, but cheap either way).
    if (sys.now() >= next_pmu_) {
        samplePmu(sys);
        next_pmu_ = sys.now() + cfg_.pmuPeriod;
    }

    // Async pre-zeroing.
    if (cfg_.enablePrezero)
        prezero_.periodic(sys, dt);

    // Fine-grained promotion.
    promote_budget_ += sys.costs().promotionsPerSec *
                       static_cast<double>(dt) / 1e9;
    while (promote_budget_ >= 1.0) {
        if (!promoteNext(sys))
            break;
        promote_budget_ -= 1.0;
    }

    // Bloat recovery under memory pressure.
    if (cfg_.enableBloatRecovery) {
        bloat_.periodic(sys, dt, [this](sim::Process &p) {
            return bloatScore(p);
        });
    }
}

const AccessMap *
HawkEyePolicy::accessMap(std::int32_t pid) const
{
    auto it = state_.find(pid);
    return it == state_.end() ? nullptr : &it->second.map;
}

const AccessTracker *
HawkEyePolicy::tracker(std::int32_t pid) const
{
    auto it = state_.find(pid);
    return it == state_.end() ? nullptr : it->second.tracker.get();
}

double
HawkEyePolicy::processScore(std::int32_t pid) const
{
    auto it = state_.find(pid);
    if (it == state_.end())
        return 0.0;
    return cfg_.usePmu ? it->second.pmuOverheadPct
                       : it->second.tracker->totalCoverageScore();
}

void
HawkEyePolicy::save(snap::Writer &w) const
{
    std::vector<std::int32_t> pids;
    pids.reserve(state_.size());
    for (const auto &[pid, st] : state_)
        pids.push_back(pid);
    std::sort(pids.begin(), pids.end());
    w.u64(pids.size());
    for (std::int32_t pid : pids) {
        const ProcState &st = state_.at(pid);
        w.i32(pid);
        st.tracker->save(w);
        st.map.save(w);
        st.pmuSnapshot.save(w);
        w.f64(st.pmuOverheadPct);
    }
    prezero_.save(w);
    bloat_.save(w);
    w.f64(promote_budget_);
    w.u64(promotions_);
    w.i64(next_pmu_);
    w.u64(rr_);
}

void
HawkEyePolicy::load(snap::Reader &r)
{
    // onProcessStart already recreated state_ for every live process
    // during the rebuild, including the trackers with their sample
    // hooks wired to the AccessMap; load into those objects so the
    // hooks survive.
    const std::uint64_t n = r.u64();
    HS_ASSERT(n == state_.size(),
              "snapshot has ", n, " HawkEye processes, system has ",
              state_.size());
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::int32_t pid = r.i32();
        auto it = state_.find(pid);
        HS_ASSERT(it != state_.end(),
                  "snapshot HawkEye state for unknown pid ", pid);
        ProcState &st = it->second;
        st.tracker->load(r);
        st.map.load(r);
        st.pmuSnapshot.load(r);
        st.pmuOverheadPct = r.f64();
    }
    prezero_.load(r);
    bloat_.load(r);
    promote_budget_ = r.f64();
    promotions_ = r.u64();
    next_pmu_ = r.i64();
    rr_ = r.u64();
}

} // namespace hawksim::core
