#include "core/access_tracker.hh"

#include <algorithm>
#include <vector>

#include "base/simd.hh"
#include "sim/process.hh"
#include "snap/state.hh"

namespace hawksim::core {

namespace {

/**
 * Column EMA step: out[i] = alphas[i] * samples[i] +
 * (1 - alphas[i]) * vals[i], two lanes per SSE2 op. Each lane
 * performs exactly the scalar expression's operation sequence (one
 * rounding per multiply/subtract/add, no FMA contraction), so the
 * results are bit-for-bit the same doubles the member-wise
 * `Ema::update` produces — reports stay canonical either way.
 */
void
emaKernel(double *vals, const double *alphas, const double *samples,
          std::size_t n)
{
    std::size_t i = 0;
#if HAWKSIM_SIMD_SSE2
    const __m128d one = _mm_set1_pd(1.0);
    for (; i + 2 <= n; i += 2) {
        const __m128d a = _mm_load_pd(alphas + i);
        const __m128d s = _mm_load_pd(samples + i);
        const __m128d v = _mm_load_pd(vals + i);
        const __m128d next = _mm_add_pd(
            _mm_mul_pd(a, s), _mm_mul_pd(_mm_sub_pd(one, a), v));
        _mm_store_pd(vals + i, next);
    }
#endif
    for (; i < n; i++)
        vals[i] = alphas[i] * samples[i] + (1.0 - alphas[i]) * vals[i];
}

} // namespace

void
AccessTracker::periodic(sim::Process &proc, TimeNs now)
{
    if (!armed_ && now >= next_clear_) {
        clearPhase(proc);
        armed_ = true;
        read_at_ = now + window_;
        next_clear_ = now + period_;
    }
    if (armed_ && now >= read_at_) {
        readPhase(proc);
        armed_ = false;
    }
}

void
AccessTracker::sampleNow(sim::Process &proc, TimeNs now)
{
    clearPhase(proc);
    (void)now;
    // Caller is expected to run the workload before reading; for
    // tests that want an immediate snapshot, read right away.
    readPhase(proc);
}

void
AccessTracker::clearPhase(sim::Process &proc)
{
    auto &pt = proc.space().pageTable();
    proc.space().forEachEligibleRegion(
        [&](std::uint64_t region) { pt.clearAccessed(region); });
}

void
AccessTracker::readPhase(sim::Process &proc)
{
    // Data-oriented sampling pass, three phases over the eligible
    // regions instead of one fused loop:
    //
    //   1. walk: one PT scan per region; erase emptied regions and
    //      create/update RegionStats in the original region order
    //      (the map's create/erase interleaving is exactly the fused
    //      loop's), staging each surviving region's stat pointer and
    //      coverage sample.
    //   2. EMA: gather the already-seeded stats into value/alpha
    //      columns, run the vectorized kernel, scatter back. First
    //      samples seed directly (value := sample), as in
    //      Ema::update.
    //   3. hooks: deliver the per-region callback in original order.
    //
    // The split is observationally identical to the fused loop: the
    // EMA math is independent per region, and the hook only mutates
    // policy-side structures (it must not mutate this tracker or the
    // page table — nothing readPhase stages is re-read after phase 1).
    auto &pt = proc.space().pageTable();
    staged_.clear();
    proc.space().forEachEligibleRegion([&](std::uint64_t region) {
        // One walk + one PT scan per region (population, accessed
        // count and huge-ness all come from the same leaf node).
        const vm::PageTable::RegionView rv = pt.regionView(region);
        if (rv.population == 0) {
            regions_.erase(region);
            return;
        }
        RegionStat &st = regions_[region];
        st.lastSample = rv.accessed;
        st.isHuge = rv.huge;
        staged_.push_back(StagedSample{
            region, &st, static_cast<double>(rv.accessed)});
    });

    ema_vals_.clear();
    ema_alphas_.clear();
    ema_samples_.clear();
    ema_dst_.clear();
    for (const StagedSample &s : staged_) {
        Ema &ema = s.stat->ema;
        if (!ema.seeded()) {
            ema.store(s.sample);
            continue;
        }
        ema_vals_.push_back(ema.valueRaw());
        ema_alphas_.push_back(ema.alpha());
        ema_samples_.push_back(s.sample);
        ema_dst_.push_back(&ema);
    }
    emaKernel(ema_vals_.data(), ema_alphas_.data(),
              ema_samples_.data(), ema_vals_.size());
    for (std::size_t i = 0; i < ema_dst_.size(); i++)
        ema_dst_[i]->store(ema_vals_[i]);

    if (hook_) {
        for (const StagedSample &s : staged_)
            hook_(s.region, s.stat->ema.value(), s.stat->lastSample,
                  s.stat->isHuge);
    }
}

double
AccessTracker::pendingCoverageScore() const
{
    double score = 0.0;
    for (const auto &[region, st] : regions_) {
        if (!st.isHuge)
            score += st.ema.value();
    }
    return score;
}

double
AccessTracker::totalCoverageScore() const
{
    double score = 0.0;
    for (const auto &[region, st] : regions_)
        score += st.ema.value();
    return score;
}

void
AccessTracker::save(snap::Writer &w) const
{
    w.i64(next_clear_);
    w.i64(read_at_);
    w.b(armed_);
    std::vector<std::uint64_t> keys;
    keys.reserve(regions_.size());
    for (const auto &[region, stat] : regions_)
        keys.push_back(region);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (std::uint64_t region : keys) {
        const RegionStat &st = regions_.at(region);
        w.u64(region);
        snap::saveEma(w, st.ema);
        w.u32(st.lastSample);
        w.b(st.isHuge);
    }
}

void
AccessTracker::load(snap::Reader &r)
{
    next_clear_ = r.i64();
    read_at_ = r.i64();
    armed_ = r.b();
    regions_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t region = r.u64();
        RegionStat &st = regions_[region];
        snap::loadEma(r, st.ema);
        st.lastSample = r.u32();
        st.isHuge = r.b();
    }
}

} // namespace hawksim::core
