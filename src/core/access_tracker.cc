#include "core/access_tracker.hh"

#include <algorithm>
#include <vector>

#include "sim/process.hh"
#include "snap/state.hh"

namespace hawksim::core {

void
AccessTracker::periodic(sim::Process &proc, TimeNs now)
{
    if (!armed_ && now >= next_clear_) {
        clearPhase(proc);
        armed_ = true;
        read_at_ = now + window_;
        next_clear_ = now + period_;
    }
    if (armed_ && now >= read_at_) {
        readPhase(proc);
        armed_ = false;
    }
}

void
AccessTracker::sampleNow(sim::Process &proc, TimeNs now)
{
    clearPhase(proc);
    (void)now;
    // Caller is expected to run the workload before reading; for
    // tests that want an immediate snapshot, read right away.
    readPhase(proc);
}

void
AccessTracker::clearPhase(sim::Process &proc)
{
    auto &pt = proc.space().pageTable();
    proc.space().forEachEligibleRegion(
        [&](std::uint64_t region) { pt.clearAccessed(region); });
}

void
AccessTracker::readPhase(sim::Process &proc)
{
    auto &pt = proc.space().pageTable();
    proc.space().forEachEligibleRegion([&](std::uint64_t region) {
        // One walk + one PT scan per region (population, accessed
        // count and huge-ness all come from the same leaf node).
        const vm::PageTable::RegionView rv = pt.regionView(region);
        if (rv.population == 0) {
            regions_.erase(region);
            return;
        }
        RegionStat &st = regions_[region];
        st.lastSample = rv.accessed;
        st.isHuge = rv.huge;
        st.ema.update(static_cast<double>(st.lastSample));
        if (hook_)
            hook_(region, st.ema.value(), st.lastSample, st.isHuge);
    });
}

double
AccessTracker::pendingCoverageScore() const
{
    double score = 0.0;
    for (const auto &[region, st] : regions_) {
        if (!st.isHuge)
            score += st.ema.value();
    }
    return score;
}

double
AccessTracker::totalCoverageScore() const
{
    double score = 0.0;
    for (const auto &[region, st] : regions_)
        score += st.ema.value();
    return score;
}

void
AccessTracker::save(snap::Writer &w) const
{
    w.i64(next_clear_);
    w.i64(read_at_);
    w.b(armed_);
    std::vector<std::uint64_t> keys;
    keys.reserve(regions_.size());
    for (const auto &[region, stat] : regions_)
        keys.push_back(region);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (std::uint64_t region : keys) {
        const RegionStat &st = regions_.at(region);
        w.u64(region);
        snap::saveEma(w, st.ema);
        w.u32(st.lastSample);
        w.b(st.isHuge);
    }
}

void
AccessTracker::load(snap::Reader &r)
{
    next_clear_ = r.i64();
    read_at_ = r.i64();
    armed_ = r.b();
    regions_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t region = r.u64();
        RegionStat &st = regions_[region];
        snap::loadEma(r, st.ema);
        st.lastSample = r.u32();
        st.isHuge = r.b();
    }
}

} // namespace hawksim::core
