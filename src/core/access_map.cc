#include "core/access_map.hh"

#include <iterator>

#include "snap/snap.hh"

namespace hawksim::core {

void
AccessMap::update(std::uint64_t region, double coverage)
{
    const unsigned target = bucketFor(coverage);
    auto it = where_.find(region);
    if (it == where_.end()) {
        // New regions enter at the head (they were just observed).
        buckets_[target].push_front(region);
        where_[region] = {target, buckets_[target].begin()};
        return;
    }
    const unsigned cur = it->second.bucket;
    if (cur == target)
        return; // bucket unchanged; keep position
    buckets_[cur].erase(it->second.it);
    if (target > cur) {
        // Moving up: recently hot, insert at head.
        buckets_[target].push_front(region);
        it->second = {target, buckets_[target].begin()};
    } else {
        // Moving down: cooling off, insert at tail.
        buckets_[target].push_back(region);
        it->second = {target, std::prev(buckets_[target].end())};
    }
}

void
AccessMap::remove(std::uint64_t region)
{
    auto it = where_.find(region);
    if (it == where_.end())
        return;
    buckets_[it->second.bucket].erase(it->second.it);
    where_.erase(it);
}

int
AccessMap::topBucket() const
{
    for (int b = kBuckets - 1; b >= 0; b--) {
        if (!buckets_[b].empty())
            return b;
    }
    return -1;
}

std::optional<std::uint64_t>
AccessMap::peekTop() const
{
    const int b = topBucket();
    if (b < 0)
        return std::nullopt;
    return buckets_[b].front();
}

std::optional<std::uint64_t>
AccessMap::peekBucket(unsigned bucket) const
{
    if (bucket >= kBuckets || buckets_[bucket].empty())
        return std::nullopt;
    return buckets_[bucket].front();
}

std::optional<std::uint64_t>
AccessMap::popTop()
{
    const int b = topBucket();
    if (b < 0)
        return std::nullopt;
    const std::uint64_t region = buckets_[b].front();
    buckets_[b].pop_front();
    where_.erase(region);
    return region;
}

void
AccessMap::save(snap::Writer &w) const
{
    for (const auto &bucket : buckets_) {
        w.u64(bucket.size());
        for (std::uint64_t region : bucket)
            w.u64(region);
    }
}

void
AccessMap::load(snap::Reader &r)
{
    where_.clear();
    for (unsigned b = 0; b < kBuckets; ++b) {
        auto &bucket = buckets_[b];
        bucket.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            bucket.push_back(r.u64());
            where_[bucket.back()] =
                Location{b, std::prev(bucket.end())};
        }
    }
}

} // namespace hawksim::core
