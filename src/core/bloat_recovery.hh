/**
 * @file
 * Memory-bloat recovery (HawkEye §3.2).
 *
 * When allocated memory crosses the high watermark, a rate-limited
 * thread scans huge pages of the process with the *lowest* MMU
 * overhead (it needs its huge pages least), identifies zero-filled
 * baseline pages inside them, and — when enough of a huge page is
 * zero — demotes it and deduplicates the zero pages against the
 * canonical zero page via COW. Scanning an in-use page costs only the
 * distance to its first non-zero byte (~10 bytes on average, Fig. 3),
 * so the thread's cost scales with the amount of bloat, not with the
 * size of memory.
 */

#ifndef HAWKSIM_CORE_BLOAT_RECOVERY_HH
#define HAWKSIM_CORE_BLOAT_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <unordered_set>

#include "base/types.hh"

namespace hawksim::sim {
class Process;
class System;
} // namespace hawksim::sim

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::core {

class BloatRecovery
{
  public:
    struct Stats
    {
        std::uint64_t bytesScanned = 0;
        std::uint64_t regionsScanned = 0;
        std::uint64_t hugeDemoted = 0;
        std::uint64_t pagesDeduped = 0;
        std::uint64_t activations = 0;
    };

    /** Score function: estimated/measured MMU overhead per process. */
    using ScoreFn = std::function<double(sim::Process &)>;
    /** Hook called after a region is demoted (policy bookkeeping). */
    using DemoteHook =
        std::function<void(sim::Process &, std::uint64_t region)>;

    /**
     * @param high activate above this used fraction (default 0.85)
     * @param low deactivate below this used fraction (default 0.70)
     * @param bytes_per_sec scan-rate limit
     * @param zero_threshold zero-filled base pages per huge page
     *        needed to trigger demotion + dedup
     */
    BloatRecovery(double high = 0.85, double low = 0.70,
                  double bytes_per_sec = 400.0 * 1024 * 1024,
                  unsigned zero_threshold = 128)
        : high_(high), low_(low), rate_(bytes_per_sec),
          zero_threshold_(zero_threshold)
    {}

    /** Run one tick of the recovery thread. */
    void periodic(sim::System &sys, TimeNs dt, const ScoreFn &score);

    bool active() const { return active_; }
    const Stats &stats() const { return stats_; }
    void setDemoteHook(DemoteHook hook) { on_demote_ = std::move(hook); }

    /** Activation state, budget, scanned set and lifetime stats. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    /** Scan one huge region; demote + dedup if bloated enough. */
    void scanRegion(sim::System &sys, sim::Process &proc,
                    std::uint64_t region);

    double high_;
    double low_;
    double rate_;
    unsigned zero_threshold_;
    bool active_ = false;
    double scan_budget_ = 0.0;
    /** Regions already scanned during this activation. */
    std::unordered_set<std::uint64_t> scanned_;
    Stats stats_;
    DemoteHook on_demote_;
};

} // namespace hawksim::core

#endif // HAWKSIM_CORE_BLOAT_RECOVERY_HH
