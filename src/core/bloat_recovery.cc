#include "core/bloat_recovery.hh"

#include <algorithm>
#include <vector>

#include "base/page_key.hh"
#include "mem/content.hh"
#include "sim/process.hh"
#include "sim/system.hh"
#include "snap/snap.hh"

namespace hawksim::core {

void
BloatRecovery::periodic(sim::System &sys, TimeNs dt,
                        const ScoreFn &score)
{
    const double used = sys.phys().usedFraction();
    if (!active_) {
        if (used < high_)
            return;
        active_ = true;
        stats_.activations++;
        scanned_.clear();
        sys.metrics().event(sys.now(), "bloat-recovery activated");
        sys.tracer().instant(obs::Cat::kBloat, "activate", -1,
                             sys.now());
    }
    if (used < low_) {
        active_ = false;
        sys.metrics().event(sys.now(), "bloat-recovery deactivated");
        sys.tracer().instant(obs::Cat::kBloat, "deactivate", -1,
                             sys.now());
        return;
    }

    scan_budget_ += rate_ * static_cast<double>(dt) / 1e9;
    if (scan_budget_ < static_cast<double>(kPageSize))
        return;

    // Scan the least-TLB-hungry process first: it needs its huge
    // pages least, so demoting there costs the least performance.
    std::vector<std::pair<double, sim::Process *>> order;
    for (auto &proc : sys.processes()) {
        if (proc->finished())
            continue;
        order.emplace_back(score(*proc), proc.get());
    }
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    for (auto &[s, proc] : order) {
        (void)s;
        // Collect this process's unscanned huge regions.
        std::vector<std::uint64_t> targets;
        proc->space().forEachEligibleRegion([&](std::uint64_t r) {
            if (proc->space().pageTable().isHuge(r) &&
                !scanned_.count(pageKey(proc->pid(), r))) {
                targets.push_back(r);
            }
        });
        for (std::uint64_t region : targets) {
            if (scan_budget_ <= 0.0)
                return;
            scanned_.insert(pageKey(proc->pid(), region));
            scanRegion(sys, *proc, region);
            if (sys.phys().usedFraction() < low_) {
                active_ = false;
                sys.metrics().event(sys.now(),
                                    "bloat-recovery deactivated");
                sys.tracer().instant(obs::Cat::kBloat, "deactivate",
                                     -1, sys.now());
                return;
            }
        }
    }
}

void
BloatRecovery::scanRegion(sim::System &sys, sim::Process &proc,
                          std::uint64_t region)
{
    auto &space = proc.space();
    const Vpn base = region << 9;
    stats_.regionsScanned++;
    obs::TraceScope scope(sys.tracer(), obs::Cat::kBloat,
                          "scan_region", proc.pid(), sys.now());

    // First pass: count zero-filled base pages, paying the scan cost.
    unsigned zero_pages = 0;
    std::uint64_t bytes = 0;
    for (unsigned i = 0; i < kPagesPerHuge; i++) {
        vm::Translation t = space.pageTable().lookup(base + i);
        const mem::PageContent &c = sys.phys().frame(t.pfn).content;
        const std::uint64_t cost = mem::zeroScanCostBytes(c);
        stats_.bytesScanned += cost;
        bytes += cost;
        scan_budget_ -= static_cast<double>(cost);
        if (c.isZero())
            zero_pages++;
    }
    // Daemon time: bytes scanned at the configured scan bandwidth.
    const auto scan_ns = static_cast<TimeNs>(
        static_cast<double>(bytes) / rate_ * 1e9);
    sys.cost().charge(obs::Subsys::kBloatDaemon, scan_ns);
    scope.arg("region", static_cast<std::int64_t>(region));
    scope.arg("zero_pages", zero_pages);
    scope.dur(scan_ns);
    if (zero_pages < zero_threshold_)
        return;

    // Demote and deduplicate the zero pages to the canonical zero
    // page; in-use zero pages may be dedup'd too (correct under COW).
    space.demoteRegion(region);
    stats_.hugeDemoted++;
    sys.cost().count(obs::Counter::kSplits);
    std::uint64_t deduped = 0;
    for (unsigned i = 0; i < kPagesPerHuge; i++) {
        vm::Translation t = space.pageTable().lookup(base + i);
        const mem::ConstFrameRef f = sys.phys().frame(t.pfn);
        if (f.isShared() || f.mapCount != 1)
            continue; // KSM already owns this frame
        if (f.content.isZero()) {
            space.dedupZeroPage(base + i);
            stats_.pagesDeduped++;
            deduped++;
        }
    }
    sys.cost().count(obs::Counter::kDedupedPages, deduped);
    scope.arg("deduped", static_cast<std::int64_t>(deduped));
    if (on_demote_)
        on_demote_(proc, region);
}

void
BloatRecovery::save(snap::Writer &w) const
{
    w.b(active_);
    w.f64(scan_budget_);
    std::vector<std::uint64_t> keys(scanned_.begin(), scanned_.end());
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (std::uint64_t k : keys)
        w.u64(k);
    w.u64(stats_.bytesScanned);
    w.u64(stats_.regionsScanned);
    w.u64(stats_.hugeDemoted);
    w.u64(stats_.pagesDeduped);
    w.u64(stats_.activations);
}

void
BloatRecovery::load(snap::Reader &r)
{
    active_ = r.b();
    scan_budget_ = r.f64();
    scanned_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        scanned_.insert(r.u64());
    stats_.bytesScanned = r.u64();
    stats_.regionsScanned = r.u64();
    stats_.hugeDemoted = r.u64();
    stats_.pagesDeduped = r.u64();
    stats_.activations = r.u64();
}

} // namespace hawksim::core
