/**
 * @file
 * Rate-limited asynchronous page pre-zeroing (HawkEye §3.1).
 *
 * A background kernel thread drains the buddy allocator's non-zero
 * free lists, zero-fills blocks with non-temporal stores (no cache
 * pollution — the Fig. 10 study quantifies the alternative) and
 * re-inserts them into the zero lists, where anonymous page faults
 * pick them up without paying synchronous zeroing latency.
 */

#ifndef HAWKSIM_CORE_PREZERO_HH
#define HAWKSIM_CORE_PREZERO_HH

#include <cstdint>

#include "base/types.hh"

namespace hawksim::sim {
class System;
} // namespace hawksim::sim

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::core {

class AsyncZeroDaemon
{
  public:
    struct Stats
    {
        std::uint64_t pagesZeroed = 0;
        std::uint64_t blocksZeroed = 0;
    };

    /** @param pages_per_sec rate limit (4KB pages per second). */
    explicit AsyncZeroDaemon(double pages_per_sec = 10'000.0)
        : rate_(pages_per_sec)
    {}

    /** Zero as many free pages as this tick's budget allows. */
    void periodic(sim::System &sys, TimeNs dt);

    const Stats &stats() const { return stats_; }
    void setRate(double pages_per_sec) { rate_ = pages_per_sec; }
    double rate() const { return rate_; }

    /** Budget carry + lifetime stats; the rate is configuration. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    double rate_;
    double budget_ = 0.0;
    Stats stats_;
};

} // namespace hawksim::core

#endif // HAWKSIM_CORE_PREZERO_HH
