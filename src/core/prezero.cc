#include "core/prezero.hh"

#include "mem/phys.hh"
#include "sim/system.hh"

namespace hawksim::core {

void
AsyncZeroDaemon::periodic(sim::System &sys, TimeNs dt)
{
    budget_ += rate_ * static_cast<double>(dt) / 1e9;
    auto &buddy = sys.phys().buddy();
    while (budget_ >= 1.0) {
        auto blk = buddy.takeNonZeroBlock(mem::BuddyAllocator::kMaxOrder);
        if (!blk)
            return; // nothing dirty left
        for (Pfn p = blk->pfn; p < blk->pfn + blk->pages(); p++) {
            mem::Frame &f = sys.phys().frame(p);
            f.content = mem::PageContent::zero();
            f.set(mem::kFrameZeroed);
        }
        buddy.free(blk->pfn, blk->order, /*zeroed=*/true);
        // Whole blocks are zeroed atomically; overdraft is repaid by
        // the accumulating budget, keeping the long-run rate honest.
        budget_ -= static_cast<double>(blk->pages());
        stats_.pagesZeroed += blk->pages();
        stats_.blocksZeroed++;
    }
}

} // namespace hawksim::core
