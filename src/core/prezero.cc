#include "core/prezero.hh"

#include "mem/phys.hh"
#include "sim/system.hh"
#include "snap/snap.hh"

namespace hawksim::core {

void
AsyncZeroDaemon::periodic(sim::System &sys, TimeNs dt)
{
    budget_ += rate_ * static_cast<double>(dt) / 1e9;
    auto &buddy = sys.phys().buddy();
    std::uint64_t pages = 0, blocks = 0;
    while (budget_ >= 1.0) {
        auto blk = buddy.takeNonZeroBlock(mem::BuddyAllocator::kMaxOrder);
        if (!blk)
            break; // nothing dirty left
        // Chaos: the zeroing pass over this block fails — put it
        // back un-zeroed. The budget is still consumed (the daemon
        // spent its time), which also guarantees the loop advances.
        if (fault::faultAt(sys.faultInjector(),
                           fault::Site::kPrezero)) {
            buddy.free(blk->pfn, blk->order, /*zeroed=*/false);
            budget_ -= static_cast<double>(blk->pages());
            continue;
        }
        for (Pfn p = blk->pfn; p < blk->pfn + blk->pages(); p++) {
            mem::FrameRef f = sys.phys().frame(p);
            f.content = mem::PageContent::zero();
            f.set(mem::kFrameZeroed);
        }
        buddy.free(blk->pfn, blk->order, /*zeroed=*/true);
        // Whole blocks are zeroed atomically; overdraft is repaid by
        // the accumulating budget, keeping the long-run rate honest.
        budget_ -= static_cast<double>(blk->pages());
        stats_.pagesZeroed += blk->pages();
        stats_.blocksZeroed++;
        pages += blk->pages();
        blocks++;
    }
    if (pages == 0)
        return;
    // Daemon time spent: pages / rate seconds of the zeroing thread.
    const auto work_ns = static_cast<TimeNs>(
        static_cast<double>(pages) / rate_ * 1e9);
    sys.cost().count(obs::Counter::kZeroedPages, pages);
    sys.cost().charge(obs::Subsys::kZeroDaemon, work_ns);
    sys.tracer().complete(
        obs::Cat::kZero, "prezero_batch", -1, sys.now(), work_ns,
        {{"pages", static_cast<std::int64_t>(pages)},
         {"blocks", static_cast<std::int64_t>(blocks)}});
}

void
AsyncZeroDaemon::save(snap::Writer &w) const
{
    w.f64(budget_);
    w.u64(stats_.pagesZeroed);
    w.u64(stats_.blocksZeroed);
}

void
AsyncZeroDaemon::load(snap::Reader &r)
{
    budget_ = r.f64();
    stats_.pagesZeroed = r.u64();
    stats_.blocksZeroed = r.u64();
}

} // namespace hawksim::core
