#include "policy/common.hh"

#include "mem/phys.hh"
#include "sim/process.hh"
#include "sim/system.hh"

namespace hawksim::policy {

namespace {

mem::ZeroPref
prefFor(ZeroMode mode)
{
    return mode == ZeroMode::kUseZeroLists
               ? mem::ZeroPref::kPreferZero
               : mem::ZeroPref::kAny;
}

/** Zeroing cost for a freshly allocated block under a mode. */
TimeNs
zeroCost(const sim::CostParams &costs, ZeroMode mode, bool block_zeroed,
         bool huge)
{
    switch (mode) {
      case ZeroMode::kSyncAlways:
        return huge ? costs.zero2m : costs.zero4k;
      case ZeroMode::kNone:
        return 0;
      case ZeroMode::kUseZeroLists:
        if (block_zeroed)
            return 0;
        return huge ? costs.zero2m : costs.zero4k;
    }
    return 0;
}

} // namespace

FaultOutcome
faultBase(sim::System &sys, sim::Process &proc, Vpn vpn, ZeroMode mode)
{
    FaultOutcome out;
    out.latency += sys.swapInIfNeeded(proc.pid(), vpn);
    auto blk = sys.phys().allocBlock(0, proc.pid(), prefFor(mode));
    if (!blk && sys.swapEnabled()) {
        // Direct reclaim: evict cold pages to swap and retry.
        sys.reclaimPages(64, &out.latency);
        blk = sys.phys().allocBlock(0, proc.pid(), prefFor(mode));
    }
    if (!blk && sys.oomKillerEnabled()) {
        // Sustained reclaim failure: kill the largest-RSS process
        // (the kernel's ladder) instead of the faulting one — unless
        // the faulting process *is* the largest consumer, in which
        // case the historical self-OOM below is the right outcome.
        const std::int32_t victim = sys.oomKillVictim(proc.pid());
        if (victim >= 0 && victim != proc.pid())
            blk = sys.phys().allocBlock(0, proc.pid(), prefFor(mode));
    }
    if (!blk) {
        out.oom = true;
        return out;
    }
    out.latency += sys.costs().faultBase4k +
                   zeroCost(sys.costs(), mode, blk->zeroed, false);
    if (mode != ZeroMode::kNone)
        sys.phys().zeroFrame(blk->pfn);
    proc.space().mapBasePage(vpn, blk->pfn,
                             vm::kPteAccessed | vm::kPteDirty);
    out.pagesMapped = 1;
    return out;
}

FaultOutcome
faultHuge(sim::System &sys, sim::Process &proc, Vpn vpn, ZeroMode mode,
          bool allow_compact)
{
    TimeNs compact_cost = 0;
    // Direct compaction in the fault path is bounded: against real
    // page-cache fragmentation it gives up quickly (max_migrate 16),
    // matching the kernel behaviour the paper observes.
    auto blk = sys.allocHugeBlock(proc.pid(), prefFor(mode),
                                  allow_compact, &compact_cost,
                                  /*max_migrate=*/16);
    if (!blk) {
        // Graceful degradation: a huge fault that cannot get a 2MB
        // block (including an injected allocation failure) falls
        // back to mapping one 4KB page, like the paper's allocator.
        if (fault::FaultInjector *fi = sys.faultInjector())
            fi->degradation().hugeFallbacks++;
        FaultOutcome out = faultBase(sys, proc, vpn, mode);
        out.latency += compact_cost;
        return out;
    }
    FaultOutcome out;
    out.latency = compact_cost + sys.costs().faultBase2m +
                  zeroCost(sys.costs(), mode, blk->zeroed, true) +
                  sys.swapInIfNeeded(proc.pid(), vpn);
    if (mode != ZeroMode::kNone) {
        for (Pfn p = blk->pfn; p < blk->pfn + blk->pages(); p++)
            sys.phys().zeroFrame(p);
    }
    proc.space().mapHugeRegion(vpnToHugeRegion(vpn), blk->pfn,
                               vm::kPteAccessed | vm::kPteDirty);
    out.pagesMapped = kPagesPerHuge;
    out.huge = true;
    return out;
}

bool
regionEligible(sim::Process &proc, std::uint64_t region)
{
    const Addr start = region * kHugePageSize;
    const vm::Vma *vma = proc.space().findVma(start);
    return vma && vma->anon && vma->hugeEligible &&
           vma->contains(start + kHugePageSize - 1);
}

bool
regionEmptyAndEligible(sim::Process &proc, Vpn vpn)
{
    const std::uint64_t region = vpnToHugeRegion(vpn);
    return regionEligible(proc, region) &&
           proc.space().pageTable().population(region) == 0;
}

std::optional<TimeNs>
promoteOne(sim::System &sys, sim::Process &proc, std::uint64_t region,
           bool prefer_zero)
{
    TimeNs cost = 0;
    auto blk = sys.allocHugeBlock(proc.pid(),
                                  prefer_zero
                                      ? mem::ZeroPref::kPreferZero
                                      : mem::ZeroPref::kPreferNonZero,
                                  /*allow_compact=*/true, &cost);
    if (!blk)
        return std::nullopt;
    // Chaos: a failed promotion copy releases the block and defers
    // the promotion; the region stays 4K-mapped and the daemon will
    // retry on a later pass.
    if (fault::FaultInjector *fi = sys.faultInjector();
        fault::faultAt(fi, fault::Site::kPromoteCopy)) {
        sys.phys().freeBlock(blk->pfn, kHugePageOrder);
        fi->degradation().deferredPromotions++;
        sys.tracer().instant(
            obs::Cat::kPromote, "promote_deferred", proc.pid(),
            sys.now(),
            {{"region", static_cast<std::int64_t>(region)}});
        return std::nullopt;
    }
    // Tail pages that had no prior mapping must read as zero; if the
    // block came pre-zeroed they already do, otherwise the daemon
    // zeroes them (cheap relative to the copy, charged via zero2m
    // scaled by the unbacked fraction).
    const unsigned pop = proc.space().pageTable().population(region);
    const std::uint64_t copied = proc.space().promoteRegion(region,
                                                            blk->pfn);
    cost += sys.costs().promoteFixed +
            static_cast<TimeNs>(copied) * sys.costs().promoteCopyPerPage;
    if (!blk->zeroed && pop < kPagesPerHuge) {
        cost += sys.costs().zero2m *
                static_cast<TimeNs>(kPagesPerHuge - pop) /
                static_cast<TimeNs>(kPagesPerHuge);
    }
    // No full TLB shootdown is modelled: the simulator's TLB keys
    // are virtual page numbers, and lookups re-resolve page size
    // through the page table, so stale base-page entries simply age
    // out (hardware uses targeted invlpg, not a full flush).
    sys.cost().count(obs::Counter::kPromotions);
    sys.cost().charge(obs::Subsys::kPromoteDaemon, cost);
    sys.tracer().complete(
        obs::Cat::kPromote, "promote", proc.pid(), sys.now(), cost,
        {{"region", static_cast<std::int64_t>(region)},
         {"copied", static_cast<std::int64_t>(copied)},
         {"pop", static_cast<std::int64_t>(pop)}});
    return cost;
}

} // namespace hawksim::policy
