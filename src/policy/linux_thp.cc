#include "policy/linux_thp.hh"

#include <algorithm>
#include <vector>

#include "sim/process.hh"
#include "sim/system.hh"
#include "snap/snap.hh"

namespace hawksim::policy {

FaultOutcome
LinuxThpPolicy::onFault(sim::System &sys, sim::Process &proc, Vpn vpn)
{
    if (cfg_.thp && cfg_.faultHuge &&
        regionEmptyAndEligible(proc, vpn)) {
        // Synchronous huge allocation with direct compaction: low MMU
        // overhead, but the zeroing + compaction latency is charged
        // to the faulting thread (the problem §2.2 quantifies).
        return faultHuge(sys, proc, vpn, cfg_.zero,
                         /*allow_compact=*/true);
    }
    return faultBase(sys, proc, vpn, cfg_.zero);
}

void
LinuxThpPolicy::onProcessStart(sim::System &sys, sim::Process &proc)
{
    (void)sys;
    fcfs_.push_back(proc.pid());
    cursor_[proc.pid()] = 0;
}

void
LinuxThpPolicy::onProcessExit(sim::System &sys, sim::Process &proc)
{
    (void)sys;
    auto it = std::find(fcfs_.begin(), fcfs_.end(), proc.pid());
    if (it != fcfs_.end()) {
        const auto idx = static_cast<std::size_t>(it - fcfs_.begin());
        fcfs_.erase(it);
        if (scan_idx_ > idx)
            scan_idx_--;
    }
    cursor_.erase(proc.pid());
    if (!fcfs_.empty())
        scan_idx_ %= fcfs_.size();
}

bool
LinuxThpPolicy::nextCandidate(sim::Process &proc,
                              std::uint64_t &region_out)
{
    std::uint64_t &cur = cursor_[proc.pid()];
    const unsigned need =
        kPagesPerHuge - std::min<unsigned>(cfg_.maxPtesNone, 511);
    for (const auto &[start, vma] : proc.space().vmas()) {
        if (!vma.anon || !vma.hugeEligible)
            continue;
        const std::uint64_t first =
            std::max(vma.firstFullRegion(), cur);
        for (std::uint64_t r = first; r < vma.endFullRegion(); r++) {
            const auto &pt = proc.space().pageTable();
            if (pt.isHuge(r))
                continue;
            if (pt.population(r) >= need) {
                region_out = r;
                cur = r + 1;
                return true;
            }
        }
    }
    cur = 0; // full pass complete; restart next round
    return false;
}

void
LinuxThpPolicy::periodic(sim::System &sys)
{
    if (!cfg_.thp || !cfg_.khugepaged || fcfs_.empty())
        return;
    promote_budget_ += sys.costs().promotionsPerSec *
                       static_cast<double>(sys.config().tickQuantum) /
                       1e9;
    // khugepaged: FCFS across processes; finish one process's scan
    // before moving to the next.
    std::size_t exhausted = 0;
    while (promote_budget_ >= 1.0 && exhausted < fcfs_.size()) {
        sim::Process *proc = sys.findProcess(fcfs_[scan_idx_]);
        if (!proc || proc->finished()) {
            scan_idx_ = (scan_idx_ + 1) % fcfs_.size();
            exhausted++;
            continue;
        }
        std::uint64_t region = 0;
        if (!nextCandidate(*proc, region)) {
            scan_idx_ = (scan_idx_ + 1) % fcfs_.size();
            exhausted++;
            continue;
        }
        if (promoteOne(sys, *proc, region).has_value()) {
            promotions_++;
            promote_budget_ -= 1.0;
        } else {
            // No contiguity even after compaction: back off this
            // round.
            sys.tracer().instant(obs::Cat::kPromote,
                                 "khugepaged_backoff", proc->pid(),
                                 sys.now());
            break;
        }
    }
}

void
LinuxThpPolicy::save(snap::Writer &w) const
{
    w.u64(fcfs_.size());
    for (std::int32_t pid : fcfs_)
        w.i32(pid);
    std::vector<std::int32_t> pids;
    pids.reserve(cursor_.size());
    for (const auto &[pid, cur] : cursor_)
        pids.push_back(pid);
    std::sort(pids.begin(), pids.end());
    w.u64(pids.size());
    for (std::int32_t pid : pids) {
        w.i32(pid);
        w.u64(cursor_.at(pid));
    }
    w.u64(scan_idx_);
    w.f64(promote_budget_);
    w.u64(promotions_);
}

void
LinuxThpPolicy::load(snap::Reader &r)
{
    fcfs_.assign(r.u64(), 0);
    for (std::int32_t &pid : fcfs_)
        pid = r.i32();
    cursor_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::int32_t pid = r.i32();
        cursor_[pid] = r.u64();
    }
    scan_idx_ = r.u64();
    promote_budget_ = r.f64();
    promotions_ = r.u64();
}

} // namespace hawksim::policy
