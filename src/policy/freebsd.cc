#include "policy/freebsd.hh"

#include <algorithm>
#include <vector>

#include "sim/process.hh"
#include "sim/system.hh"
#include "snap/snap.hh"

namespace hawksim::policy {

FaultOutcome
FreeBsdPolicy::onFault(sim::System &sys, sim::Process &proc, Vpn vpn)
{
    const std::uint64_t region = vpnToHugeRegion(vpn);
    if (cfg_.reservations && regionEligible(proc, region)) {
        const std::uint64_t k = key(proc.pid(), region);
        auto it = resv_.find(k);
        if (it == resv_.end() &&
            proc.space().pageTable().population(region) == 0) {
            // Opportunistic reservation: take an order-9 block if one
            // is free right now (no compaction in the fault path).
            auto blk = sys.phys().allocBlock(kHugePageOrder,
                                             proc.pid(),
                                             mem::ZeroPref::kAny);
            if (blk) {
                for (Pfn p = blk->pfn; p < blk->pfn + blk->pages();
                     p++) {
                    sys.phys().frame(p).set(mem::kFrameReserved);
                }
                it = resv_.emplace(k, Reservation{blk->pfn,
                                                  proc.pid()})
                         .first;
            }
        }
        if (it != resv_.end()) {
            // Fill the faulting page's natural slot in the block.
            const unsigned slot = vpn & (kPagesPerHuge - 1);
            const Pfn pfn = it->second.block + slot;
            FaultOutcome out;
            out.latency = sys.costs().faultBase4k;
            if (cfg_.zero != ZeroMode::kNone) {
                out.latency += sys.costs().zero4k;
                sys.phys().zeroFrame(pfn);
            }
            sys.phys().frame(pfn).clear(mem::kFrameReserved);
            proc.space().mapBasePage(vpn, pfn, vm::kPteAccessed |
                                                   vm::kPteDirty |
                                                   vm::kPteReserv);
            out.pagesMapped = 1;
            if (proc.space().pageTable().population(region) ==
                kPagesPerHuge) {
                proc.space().promoteInPlace(region);
                resv_.erase(it);
                promotions_++;
                out.huge = true;
                sys.cost().count(obs::Counter::kPromotions);
                sys.tracer().instant(
                    obs::Cat::kPromote, "promote_inplace",
                    proc.pid(), sys.now(),
                    {{"region",
                      static_cast<std::int64_t>(region)}});
            }
            return out;
        }
    }
    FaultOutcome out = faultBase(sys, proc, vpn, cfg_.zero);
    if (out.oom && !resv_.empty()) {
        // Memory pressure: break partial reservations and retry.
        breakAll(sys);
        out = faultBase(sys, proc, vpn, cfg_.zero);
    }
    return out;
}

void
FreeBsdPolicy::breakReservation(sim::System &sys, std::uint64_t k)
{
    auto it = resv_.find(k);
    if (it == resv_.end())
        return;
    sys.cost().count(obs::Counter::kResvBroken);
    sys.tracer().instant(obs::Cat::kPromote, "resv_break",
                         it->second.pid, sys.now());
    const Pfn block = it->second.block;
    for (Pfn p = block; p < block + kPagesPerHuge; p++) {
        mem::FrameRef f = sys.phys().frame(p);
        if (!f.isReserved())
            continue; // slot was mapped (or already released)
        f.clear(mem::kFrameReserved);
        if (!f.isFree() && f.mapCount == 0)
            sys.phys().freeBlock(p, 0);
    }
    resv_.erase(it);
    broken_++;
}

void
FreeBsdPolicy::breakAll(sim::System &sys)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(resv_.size());
    for (const auto &[k, r] : resv_)
        keys.push_back(k);
    for (std::uint64_t k : keys)
        breakReservation(sys, k);
}

void
FreeBsdPolicy::onMadviseFree(sim::System &sys, sim::Process &proc,
                             Addr start, std::uint64_t bytes)
{
    // Any reservation overlapping the freed range is no longer
    // fillable: its mapped slots were just freed out from under it.
    const std::uint64_t first = start / kHugePageSize;
    const std::uint64_t last =
        (start + bytes + kHugePageSize - 1) / kHugePageSize;
    for (std::uint64_t region = first; region < last; region++)
        breakReservation(sys, key(proc.pid(), region));
}

void
FreeBsdPolicy::onProcessExit(sim::System &sys, sim::Process &proc)
{
    std::vector<std::uint64_t> keys;
    for (const auto &[k, r] : resv_) {
        if (r.pid == proc.pid())
            keys.push_back(k);
    }
    for (std::uint64_t k : keys)
        breakReservation(sys, k);
}

void
FreeBsdPolicy::save(snap::Writer &w) const
{
    std::vector<std::uint64_t> keys;
    keys.reserve(resv_.size());
    for (const auto &[k, resv] : resv_)
        keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (std::uint64_t k : keys) {
        const Reservation &resv = resv_.at(k);
        w.u64(k);
        w.u64(resv.block);
        w.i32(resv.pid);
    }
    w.u64(promotions_);
    w.u64(broken_);
}

void
FreeBsdPolicy::load(snap::Reader &r)
{
    resv_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t k = r.u64();
        Reservation &resv = resv_[k];
        resv.block = r.u64();
        resv.pid = r.i32();
    }
    promotions_ = r.u64();
    broken_ = r.u64();
}

} // namespace hawksim::policy
