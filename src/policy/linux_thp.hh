/**
 * @file
 * Linux transparent-huge-page policy.
 *
 * Faithful to the behaviour the paper critiques (§1, §2):
 *   - huge pages are allocated synchronously at first fault in an
 *     empty, eligible region (with direct compaction in the fault
 *     path when contiguity is missing);
 *   - pages are zeroed synchronously before being mapped;
 *   - khugepaged promotes in the background, picking processes in
 *     FCFS order and scanning each from low to high virtual
 *     addresses, promoting any region with at least one present page
 *     (max_ptes_none = 511 by default).
 *
 * With `thp = false` this is the Linux-4KB baseline.
 */

#ifndef HAWKSIM_POLICY_LINUX_THP_HH
#define HAWKSIM_POLICY_LINUX_THP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "policy/common.hh"
#include "policy/policy.hh"

namespace hawksim::policy {

struct LinuxConfig
{
    /** Transparent huge pages enabled. */
    bool thp = true;
    /** Allocate huge pages directly in the fault path. */
    bool faultHuge = true;
    /** khugepaged enabled. */
    bool khugepaged = true;
    /**
     * Promote a region if at least (512 - maxPtesNone) pages are
     * present. Linux's default of 511 promotes nearly-empty regions —
     * the source of the bloat in Figure 1.
     */
    unsigned maxPtesNone = 511;
    ZeroMode zero = ZeroMode::kSyncAlways;
};

class LinuxThpPolicy : public HugePagePolicy
{
  public:
    explicit LinuxThpPolicy(LinuxConfig cfg = LinuxConfig{})
        : cfg_(cfg)
    {}

    std::string
    name() const override
    {
        return cfg_.thp ? "Linux-2MB" : "Linux-4KB";
    }

    FaultOutcome onFault(sim::System &sys, sim::Process &proc,
                         Vpn vpn) override;
    void periodic(sim::System &sys) override;
    void onProcessStart(sim::System &sys, sim::Process &proc) override;
    void onProcessExit(sim::System &sys, sim::Process &proc) override;

    std::uint64_t promotions() const { return promotions_; }
    const LinuxConfig &config() const { return cfg_; }

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    /**
     * Find the next promotable region of @p proc at or after the
     * process's scan cursor; advances the cursor. Returns false when
     * the scan reached the end of the address space (cursor resets).
     */
    bool nextCandidate(sim::Process &proc, std::uint64_t &region_out);

    LinuxConfig cfg_;
    /** FCFS list of pids as khugepaged sees them. */
    std::vector<std::int32_t> fcfs_;
    /** Per-process VA scan cursor (huge-region index). */
    std::unordered_map<std::int32_t, std::uint64_t> cursor_;
    /** Index into fcfs_ of the process being scanned. */
    std::size_t scan_idx_ = 0;
    double promote_budget_ = 0.0;
    std::uint64_t promotions_ = 0;
};

} // namespace hawksim::policy

#endif // HAWKSIM_POLICY_LINUX_THP_HH
