/**
 * @file
 * The OS huge-page policy interface.
 *
 * A policy decides what happens on an anonymous page fault (base vs
 * huge allocation, synchronous zeroing), runs its background work
 * (khugepaged-style promotion, zeroing, bloat recovery) from
 * periodic(), and reacts to madvise frees and process exit. All four
 * systems from the paper — Linux, FreeBSD, Ingens and HawkEye — are
 * implementations of this interface.
 */

#ifndef HAWKSIM_POLICY_POLICY_HH
#define HAWKSIM_POLICY_POLICY_HH

#include <cstdint>
#include <string>

#include "base/logging.hh"
#include "base/types.hh"

namespace hawksim::sim {
class Process;
class System;
} // namespace hawksim::sim

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::policy {

/** Result of servicing one page fault. */
struct FaultOutcome
{
    /** Latency charged to the faulting process. */
    TimeNs latency = 0;
    /** 4KB pages mapped by this fault (1 or 512). */
    std::uint64_t pagesMapped = 0;
    /** The fault was served with a huge page. */
    bool huge = false;
    /** No memory available; the process sees an OOM kill. */
    bool oom = false;
};

class HugePagePolicy
{
  public:
    virtual ~HugePagePolicy() = default;

    virtual std::string name() const = 0;

    /** Called once when the policy is installed into a system. */
    virtual void attach(sim::System &sys) { (void)sys; }

    /** Per-process lifecycle hooks. */
    virtual void
    onProcessStart(sim::System &sys, sim::Process &proc)
    {
        (void)sys;
        (void)proc;
    }
    virtual void
    onProcessExit(sim::System &sys, sim::Process &proc)
    {
        (void)sys;
        (void)proc;
    }

    /** Service an anonymous page fault at @p vpn. */
    virtual FaultOutcome onFault(sim::System &sys, sim::Process &proc,
                                 Vpn vpn) = 0;

    /**
     * Service a write fault on a COW (zero-dedup) mapping. The
     * default breaks the COW and charges the copy cost.
     */
    virtual TimeNs onCowFault(sim::System &sys, sim::Process &proc,
                              Vpn vpn);

    /** Background work; called once per simulation tick. */
    virtual void periodic(sim::System &sys) { (void)sys; }

    /** Total huge-page promotions performed by background work. */
    virtual std::uint64_t promotions() const { return 0; }

    /** Notification after a process released a VA range. */
    virtual void
    onMadviseFree(sim::System &sys, sim::Process &proc, Addr start,
                  std::uint64_t bytes)
    {
        (void)sys;
        (void)proc;
        (void)start;
        (void)bytes;
    }

    /**
     * @name Checkpoint support
     *
     * Serialize/restore the policy's daemon state (khugepaged queues,
     * trackers, budgets). Restore happens on a freshly attached
     * policy that has already seen onProcessStart for every live
     * process, so load() fills in state those hooks created. The
     * defaults are fatal: a policy without serialization must fail at
     * checkpoint time, not diverge silently after restore.
     */
    /// @{
    virtual void
    save(snap::Writer &) const
    {
        HS_FATAL("policy \"", name(),
                 "\" does not support checkpointing");
    }
    virtual void
    load(snap::Reader &)
    {
        HS_FATAL("policy \"", name(),
                 "\" does not support checkpointing");
    }
    /// @}
};

} // namespace hawksim::policy

#endif // HAWKSIM_POLICY_POLICY_HH
