/**
 * @file
 * Fault-path building blocks shared by all huge-page policies.
 */

#ifndef HAWKSIM_POLICY_COMMON_HH
#define HAWKSIM_POLICY_COMMON_HH

#include <cstdint>
#include <optional>

#include "base/types.hh"
#include "policy/policy.hh"

namespace hawksim::sim {
class Process;
class System;
} // namespace hawksim::sim

namespace hawksim::policy {

/** How a policy obtains zeroed memory for anonymous faults. */
enum class ZeroMode
{
    /** Zero synchronously in the fault path (Linux/Ingens). */
    kSyncAlways,
    /** Skip zeroing entirely (insecure; Table 1's hypothetical). */
    kNone,
    /**
     * Prefer pre-zeroed free lists; zero synchronously only when the
     * allocator hands back a dirty block (HawkEye §3.1).
     */
    kUseZeroLists,
};

/** Map one base page at @p vpn, charging the policy's zeroing cost. */
FaultOutcome faultBase(sim::System &sys, sim::Process &proc, Vpn vpn,
                       ZeroMode mode);

/**
 * Map the whole region containing @p vpn with a huge page, charging
 * the policy's zeroing cost. Falls back to a base-page fault when no
 * order-9 block can be produced.
 *
 * @param allow_compact run direct compaction in the fault path (the
 *        latency of which is charged to the faulting process)
 */
FaultOutcome faultHuge(sim::System &sys, sim::Process &proc, Vpn vpn,
                       ZeroMode mode, bool allow_compact);

/**
 * True when the 2MB region containing @p vpn lies fully inside a
 * huge-eligible anonymous VMA and currently has no mappings — the
 * precondition for allocating a huge page at first fault.
 */
bool regionEmptyAndEligible(sim::Process &proc, Vpn vpn);

/** True when the region lies fully inside a huge-eligible VMA. */
bool regionEligible(sim::Process &proc, std::uint64_t region);

/**
 * khugepaged-style promotion of one region: allocate an order-9 block
 * (compacting if needed), copy, remap. Returns the daemon time spent,
 * or std::nullopt if allocation failed.
 */
std::optional<TimeNs> promoteOne(sim::System &sys, sim::Process &proc,
                                 std::uint64_t region,
                                 bool prefer_zero = false);

} // namespace hawksim::policy

#endif // HAWKSIM_POLICY_COMMON_HH
