/**
 * @file
 * Ingens huge-page policy [Kwon et al., OSDI 2016], as characterized
 * by the HawkEye paper:
 *
 *   - base pages only in the fault path (low latency), with async
 *     promotion by a khugepaged-like thread that prioritizes recently
 *     faulted regions;
 *   - adaptive utilization threshold: aggressive (promote at >=1
 *     present page) while FMFI < 0.5, conservative (promote at the
 *     configured utilization, default 90%) when fragmentation is
 *     high;
 *   - fairness via proportional promotion: memory contiguity is
 *     treated as a resource, and processes with many idle (cold) huge
 *     pages are penalized through an idleness penalty factor.
 */

#ifndef HAWKSIM_POLICY_INGENS_HH
#define HAWKSIM_POLICY_INGENS_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/access_tracker.hh"
#include "policy/common.hh"
#include "policy/policy.hh"

namespace hawksim::policy {

struct IngensConfig
{
    /** Utilization threshold in conservative mode (fraction). */
    double utilThreshold = 0.90;
    /** FMFI above which the policy turns conservative. */
    double fmfiThreshold = 0.5;
    /** Penalty weight for idle huge pages in the fairness metric. */
    double idlePenalty = 0.5;
    /** Force conservative mode regardless of FMFI. */
    bool alwaysConservative = false;
    ZeroMode zero = ZeroMode::kSyncAlways;
};

class IngensPolicy : public HugePagePolicy
{
  public:
    explicit IngensPolicy(IngensConfig cfg = IngensConfig{})
        : cfg_(cfg)
    {}

    std::string
    name() const override
    {
        return "Ingens-" +
               std::to_string(
                   static_cast<int>(cfg_.utilThreshold * 100)) +
               "%";
    }

    FaultOutcome onFault(sim::System &sys, sim::Process &proc,
                         Vpn vpn) override;
    void periodic(sim::System &sys) override;
    void onProcessStart(sim::System &sys, sim::Process &proc) override;
    void onProcessExit(sim::System &sys, sim::Process &proc) override;

    std::uint64_t promotions() const { return promotions_; }
    /** True when currently promoting conservatively. */
    bool conservative(sim::System &sys) const;

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    struct ProcState
    {
        /** Recently faulted regions, oldest first (promotion prio). */
        std::deque<std::uint64_t> recentRegions;
        std::unordered_set<std::uint64_t> recentSet;
        /** Sequential scan cursor for non-recent candidates. */
        std::uint64_t cursor = 0;
        /** Access-bit sampler for idleness accounting. */
        std::unique_ptr<core::AccessTracker> tracker;
        std::uint64_t promoted = 0;
    };

    /** Fairness metric: lower means more deserving of promotion. */
    double promotionMetric(sim::Process &proc, ProcState &st) const;
    /** Find this process's best candidate region, if any. */
    bool pickCandidate(sim::Process &proc, ProcState &st,
                       unsigned min_pop, std::uint64_t &region_out);

    IngensConfig cfg_;
    std::unordered_map<std::int32_t, ProcState> state_;
    double promote_budget_ = 0.0;
    std::uint64_t promotions_ = 0;
};

} // namespace hawksim::policy

#endif // HAWKSIM_POLICY_INGENS_HH
