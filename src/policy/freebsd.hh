/**
 * @file
 * FreeBSD-style reservation-based huge-page policy [Navarro 2002].
 *
 * On the first fault in an eligible region the policy *reserves* a
 * contiguous order-9 block but maps only the faulted base page;
 * subsequent faults fill their natural slots of the reserved block.
 * Only when every base page is populated is the region promoted —
 * in place, with no copying. Under memory pressure, the unused tails
 * of partial reservations are broken and returned to the allocator.
 *
 * Conservative by design: no bloat, but delayed promotion and a full
 * complement of base-page faults (§2.1, §2.2).
 */

#ifndef HAWKSIM_POLICY_FREEBSD_HH
#define HAWKSIM_POLICY_FREEBSD_HH

#include <cstdint>
#include <unordered_map>

#include "base/page_key.hh"
#include "policy/common.hh"
#include "policy/policy.hh"

namespace hawksim::policy {

struct FreeBsdConfig
{
    bool reservations = true;
    ZeroMode zero = ZeroMode::kSyncAlways;
};

class FreeBsdPolicy : public HugePagePolicy
{
  public:
    explicit FreeBsdPolicy(FreeBsdConfig cfg = FreeBsdConfig{})
        : cfg_(cfg)
    {}

    std::string name() const override { return "FreeBSD"; }

    FaultOutcome onFault(sim::System &sys, sim::Process &proc,
                         Vpn vpn) override;
    void onMadviseFree(sim::System &sys, sim::Process &proc,
                       Addr start, std::uint64_t bytes) override;
    void onProcessExit(sim::System &sys, sim::Process &proc) override;

    std::uint64_t promotions() const { return promotions_; }
    std::uint64_t reservationsBroken() const { return broken_; }
    std::size_t activeReservations() const { return resv_.size(); }

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    struct Reservation
    {
        Pfn block;
        std::int32_t pid;
    };

    static std::uint64_t
    key(std::int32_t pid, std::uint64_t region)
    {
        return pageKey(pid, region);
    }

    /** Free the unmapped frames of a reservation and drop it. */
    void breakReservation(sim::System &sys, std::uint64_t k);
    /** Break every partial reservation (memory pressure). */
    void breakAll(sim::System &sys);

    FreeBsdConfig cfg_;
    std::unordered_map<std::uint64_t, Reservation> resv_;
    std::uint64_t promotions_ = 0;
    std::uint64_t broken_ = 0;
};

} // namespace hawksim::policy

#endif // HAWKSIM_POLICY_FREEBSD_HH
