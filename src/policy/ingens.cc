#include "policy/ingens.hh"

#include <algorithm>
#include <limits>

#include "sim/process.hh"
#include "sim/system.hh"
#include "snap/snap.hh"

namespace hawksim::policy {

bool
IngensPolicy::conservative(sim::System &sys) const
{
    if (cfg_.alwaysConservative)
        return true;
    return sys.phys().buddy().fragIndex(kHugePageOrder) >
           cfg_.fmfiThreshold;
}

FaultOutcome
IngensPolicy::onFault(sim::System &sys, sim::Process &proc, Vpn vpn)
{
    // Ingens never allocates huge pages synchronously: base pages
    // keep fault latency low; promotion is asynchronous.
    FaultOutcome out = faultBase(sys, proc, vpn, cfg_.zero);
    if (!out.oom) {
        const std::uint64_t region = vpnToHugeRegion(vpn);
        if (regionEligible(proc, region)) {
            ProcState &st = state_[proc.pid()];
            if (st.recentSet.insert(region).second)
                st.recentRegions.push_back(region);
        }
    }
    return out;
}

void
IngensPolicy::onProcessStart(sim::System &sys, sim::Process &proc)
{
    (void)sys;
    ProcState &st = state_[proc.pid()];
    st.tracker = std::make_unique<core::AccessTracker>();
}

void
IngensPolicy::onProcessExit(sim::System &sys, sim::Process &proc)
{
    (void)sys;
    state_.erase(proc.pid());
}

double
IngensPolicy::promotionMetric(sim::Process &proc, ProcState &st) const
{
    // "Memory contiguity as a resource": charge each process for the
    // huge pages it holds, with idle (cold) huge pages weighing
    // extra; normalize by footprint so small and large processes
    // compete fairly for contiguity.
    double idle = 0.0;
    for (const auto &[region, stat] : st.tracker->regions()) {
        if (stat.isHuge && stat.lastSample == 0)
            idle += 1.0;
    }
    const double huge = static_cast<double>(
        proc.space().pageTable().mappedHugePages());
    const double footprint_regions = std::max<double>(
        1.0, static_cast<double>(proc.space().mappedPages()) /
                 static_cast<double>(kPagesPerHuge));
    return (huge + cfg_.idlePenalty * idle) / footprint_regions;
}

bool
IngensPolicy::pickCandidate(sim::Process &proc, ProcState &st,
                            unsigned min_pop,
                            std::uint64_t &region_out)
{
    const auto &pt = proc.space().pageTable();
    // Recently faulted regions first (oldest outstanding fault wins).
    while (!st.recentRegions.empty()) {
        const std::uint64_t region = st.recentRegions.front();
        if (pt.isHuge(region) || pt.population(region) == 0) {
            st.recentRegions.pop_front();
            st.recentSet.erase(region);
            continue;
        }
        if (pt.population(region) >= min_pop) {
            st.recentRegions.pop_front();
            st.recentSet.erase(region);
            region_out = region;
            return true;
        }
        break; // head not ready yet; keep waiting for its faults
    }
    // Fallback: sequential low-to-high VA scan (the behaviour §2.3
    // criticizes as unfair to high-VA hot spots).
    for (const auto &[start, vma] : proc.space().vmas()) {
        if (!vma.anon || !vma.hugeEligible)
            continue;
        const std::uint64_t first =
            std::max(vma.firstFullRegion(), st.cursor);
        for (std::uint64_t r = first; r < vma.endFullRegion(); r++) {
            if (pt.isHuge(r))
                continue;
            if (pt.population(r) >= min_pop) {
                region_out = r;
                st.cursor = r + 1;
                return true;
            }
        }
    }
    st.cursor = 0;
    return false;
}

void
IngensPolicy::periodic(sim::System &sys)
{
    // Idleness sampling for the fairness metric.
    for (auto &proc : sys.processes()) {
        if (proc->finished())
            continue;
        auto it = state_.find(proc->pid());
        if (it != state_.end() && it->second.tracker)
            it->second.tracker->periodic(*proc, sys.now());
    }

    promote_budget_ += sys.costs().promotionsPerSec *
                       static_cast<double>(sys.config().tickQuantum) /
                       1e9;
    if (promote_budget_ < 1.0)
        return;

    const unsigned min_pop =
        conservative(sys)
            ? static_cast<unsigned>(cfg_.utilThreshold *
                                    kPagesPerHuge)
            : 1;

    while (promote_budget_ >= 1.0) {
        // Proportional-share selection: rank processes by promotion
        // metric (lowest = most deserving), then promote the first
        // ranked process that has a ready candidate.
        std::vector<std::pair<double, sim::Process *>> order;
        for (auto &proc : sys.processes()) {
            if (proc->finished() || !state_.count(proc->pid()))
                continue;
            order.emplace_back(
                promotionMetric(*proc, state_[proc->pid()]),
                proc.get());
        }
        std::sort(order.begin(), order.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        bool promoted = false;
        for (auto &[metric, proc] : order) {
            (void)metric;
            std::uint64_t region = 0;
            if (!pickCandidate(*proc, state_[proc->pid()], min_pop,
                               region)) {
                continue;
            }
            if (!promoteOne(sys, *proc, region).has_value()) {
                // No contiguity available this round.
                sys.tracer().instant(obs::Cat::kPromote,
                                     "promote_stall", proc->pid(),
                                     sys.now());
                return;
            }
            promotions_++;
            state_[proc->pid()].promoted++;
            promote_budget_ -= 1.0;
            promoted = true;
            break;
        }
        if (!promoted)
            return;
    }
}

void
IngensPolicy::save(snap::Writer &w) const
{
    std::vector<std::int32_t> pids;
    pids.reserve(state_.size());
    for (const auto &[pid, st] : state_)
        pids.push_back(pid);
    std::sort(pids.begin(), pids.end());
    w.u64(pids.size());
    for (std::int32_t pid : pids) {
        const ProcState &st = state_.at(pid);
        w.i32(pid);
        w.u64(st.recentRegions.size());
        for (std::uint64_t region : st.recentRegions)
            w.u64(region);
        w.u64(st.cursor);
        w.u64(st.promoted);
        st.tracker->save(w);
    }
    w.f64(promote_budget_);
    w.u64(promotions_);
}

void
IngensPolicy::load(snap::Reader &r)
{
    // onProcessStart already recreated state_ (with trackers) for
    // every live process during the rebuild; fill their state in
    // place so the tracker objects survive.
    const std::uint64_t n = r.u64();
    HS_ASSERT(n == state_.size(),
              "snapshot has ", n, " Ingens processes, system has ",
              state_.size());
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::int32_t pid = r.i32();
        auto it = state_.find(pid);
        HS_ASSERT(it != state_.end(),
                  "snapshot Ingens state for unknown pid ", pid);
        ProcState &st = it->second;
        st.recentRegions.clear();
        st.recentSet.clear();
        const std::uint64_t recent = r.u64();
        for (std::uint64_t j = 0; j < recent; ++j) {
            st.recentRegions.push_back(r.u64());
            st.recentSet.insert(st.recentRegions.back());
        }
        st.cursor = r.u64();
        st.promoted = r.u64();
        st.tracker->load(r);
    }
    promote_budget_ = r.f64();
    promotions_ = r.u64();
}

} // namespace hawksim::policy
