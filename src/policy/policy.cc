#include "policy/policy.hh"

#include "sim/process.hh"
#include "sim/system.hh"

namespace hawksim::policy {

TimeNs
HugePagePolicy::onCowFault(sim::System &sys, sim::Process &proc,
                           Vpn vpn)
{
    // Break the COW: allocate a private frame and retarget. The extra
    // zeroing cost (when the frame wasn't pre-zeroed) mirrors the
    // base-page fault path.
    const bool zeroed_sync = proc.space().breakCow(vpn);
    TimeNs cost = sys.costs().cowBreak;
    if (zeroed_sync)
        cost += sys.costs().zero4k;
    return cost;
}

} // namespace hawksim::policy
