/**
 * @file
 * TLB hierarchy and page-walk model.
 *
 * Models the paper's experimental platform (Intel Haswell-EP):
 *   - L1 DTLB: 64 entries for 4KB pages, 8 entries for 2MB pages
 *   - L2 STLB: 1024 entries shared between both page sizes
 *   - page-walk caches for the upper levels of the radix table
 *
 * The model consumes *sampled* access streams: the engine passes a
 * seeded sample of page-granularity accesses per tick plus the true
 * total access count; miss counts and walk cycles are extrapolated by
 * the caller via the sampling factor.
 *
 * Sequential access patterns hide part of the TLB-miss latency behind
 * prefetching and out-of-order overlap (§2.4 — the reason WSS is a
 * poor predictor of MMU overhead, and the mechanism behind Table 9's
 * HawkEye-G mispredictions). This is modelled as an overlap factor
 * that discounts walk cycles as a function of the batch's measured
 * sequentiality.
 */

#ifndef HAWKSIM_TLB_TLB_HH
#define HAWKSIM_TLB_TLB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "tlb/perf_counters.hh"
#include "vm/page_table.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::tlb {

/** One sampled memory access at page granularity. */
struct AccessSample
{
    Vpn vpn;
    bool write = false;
};

/** A set-associative translation cache with LRU replacement. */
class SetAssocTlb
{
  public:
    SetAssocTlb(unsigned entries, unsigned ways);

    /** True on hit; refreshes LRU state. */
    bool lookup(std::uint64_t key);
    void insert(std::uint64_t key);
    void flush();
    unsigned entries() const { return sets_ * ways_; }

    /** Currently-valid entries (occupancy introspection). */
    unsigned
    validEntries() const
    {
        unsigned n = 0;
        for (const Way &w : ways_storage_)
            n += w.valid ? 1 : 0;
        return n;
    }

    /** LRU clock + every way; geometry is construction-checked. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    struct Way
    {
        std::uint64_t key = ~0ull;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    /**
     * Set index for @p key. All standard geometries have
     * power-of-two set counts, where `h % sets == h & (sets - 1)`
     * bit-for-bit; the mask form avoids a hardware divide on the
     * simulator's hottest path. Odd set counts fall back to the
     * division, so the mapping is identical either way.
     */
    unsigned
    setOf(std::uint64_t hash) const
    {
        if (mask_ != 0 || sets_ == 1)
            return static_cast<unsigned>(hash & mask_);
        return static_cast<unsigned>(hash % sets_);
    }

    unsigned sets_;
    unsigned ways_;
    std::uint64_t mask_ = 0; //!< sets_ - 1 when sets_ is a power of 2
    std::uint64_t tick_ = 0;
    std::vector<Way> ways_storage_;
};

/** Hardware geometry and latency parameters. */
struct TlbConfig
{
    unsigned l1Entries4k = 64;
    unsigned l1Ways4k = 4;
    unsigned l1Entries2m = 8;
    unsigned l1Ways2m = 8; // fully associative
    unsigned l2Entries = 1024;
    unsigned l2Ways = 8;
    /** Page-walk cache: PDE entries (each covers 2MB of VA). */
    unsigned pwcPdeEntries = 32;
    /** Page-walk cache: PDPTE entries (each covers 1GB of VA). */
    unsigned pwcPdpteEntries = 4;

    Cycles l2HitCycles = 7;
    /** Latency of one page-table load that hits in the data caches. */
    Cycles ptCachedLoadCycles = 30;
    /** Latency of one page-table load from DRAM. */
    Cycles ptMemoryLoadCycles = 170;
    /**
     * Cache lines of page-table data assumed resident in the data
     * caches (~256KB worth). Small page-table working sets (the PDs
     * backing huge mappings) fit and walk cheaply; the PTE arrays of
     * large 4KB-mapped footprints thrash it and walk from memory.
     */
    unsigned ptResidencyEntries = 4096;
    /** Fraction of walk latency hidden under sequential access. */
    double sequentialOverlap = 0.85;
    /**
     * Virtualized (2-D/EPT) translation: every guest page-table load
     * itself requires a nested walk, turning a 4-load walk into up to
     * 24 loads. This factor scales walk latencies when enabled.
     */
    bool nested = false;
    double nestedWalkFactor = 3.6;

    static TlbConfig haswell() { return TlbConfig{}; }

    static TlbConfig
    haswellVirtualized()
    {
        TlbConfig c;
        c.nested = true;
        return c;
    }
};

/** Result of simulating one access batch. */
struct TlbBatchResult
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    Cycles walkCycles = 0;
};

class TlbModel
{
  public:
    explicit TlbModel(TlbConfig cfg = TlbConfig::haswell());

    /**
     * Run a sampled access stream against the TLB hierarchy,
     * resolving page sizes through @p pt and setting PTE
     * accessed/dirty bits on the way (this is what the OS access-bit
     * samplers observe).
     *
     * @param sequentiality in [0,1]: fraction of the stream that is
     *        next-page sequential (drives latency overlap)
     * @param scale each sampled access stands for @p scale real ones;
     *        counters are scaled accordingly
     */
    TlbBatchResult simulate(vm::PageTable &pt,
                            const std::vector<AccessSample> &batch,
                            double sequentiality, double scale = 1.0);

    /** Flush translations (context switch / TLB shootdown). */
    void flush();

    /**
     * Update the nested-walk amplification dynamically (the
     * virtualization layer lowers it as the host promotes more of the
     * guest's backing to huge EPT mappings).
     */
    void setNestedFactor(double f) { cfg_.nestedWalkFactor = f; }

    PerfCounters &counters() { return counters_; }
    const PerfCounters &counters() const { return counters_; }
    const TlbConfig &config() const { return cfg_; }

    /** Valid-entry counts per structure (obs snapshot view). */
    struct Occupancy
    {
        unsigned l14kUsed = 0, l14kSize = 0;
        unsigned l12mUsed = 0, l12mSize = 0;
        unsigned l2Used = 0, l2Size = 0;
        unsigned pwcPdeUsed = 0, pwcPdeSize = 0;
        unsigned pwcPdpteUsed = 0, pwcPdpteSize = 0;
    };

    /** Read-only occupancy of every translation structure. */
    Occupancy
    occupancy() const
    {
        Occupancy o;
        o.l14kUsed = l1_4k_.validEntries();
        o.l14kSize = l1_4k_.entries();
        o.l12mUsed = l1_2m_.validEntries();
        o.l12mSize = l1_2m_.entries();
        o.l2Used = l2_.validEntries();
        o.l2Size = l2_.entries();
        o.pwcPdeUsed = pwc_pde_.validEntries();
        o.pwcPdeSize = pwc_pde_.entries();
        o.pwcPdpteUsed = pwc_pdpte_.validEntries();
        o.pwcPdpteSize = pwc_pdpte_.entries();
        return o;
    }

    /**
     * @name Coherence audit log (fault::Auditor support)
     *
     * When enabled, every TLB insert also records the translation's
     * page size, keyed by the page table's structural epoch at insert
     * time. The auditor cross-checks entries recorded at the *current*
     * epoch against the live page table; entries from older epochs are
     * benignly stale (this TLB model ages entries out rather than
     * modelling shootdowns). Off by default: the hot path only pays
     * one predictable branch per insert.
     */
    /// @{
    void
    setAuditLog(bool on)
    {
        audit_log_on_ = on;
        if (!on) {
            audit_2m_.clear();
            audit_4k_.clear();
        }
    }
    bool auditLogEnabled() const { return audit_log_on_; }
    /** region -> PT epoch at insert time. */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    auditLog2m() const
    {
        return audit_2m_;
    }
    /** vpn -> PT epoch at insert time. */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    auditLog4k() const
    {
        return audit_4k_;
    }
    /** Test hook: forge an audit-log entry (seeded corruption). */
    void
    injectAuditEntry(bool huge, std::uint64_t key, std::uint64_t epoch)
    {
        (huge ? audit_2m_ : audit_4k_)[key] = epoch;
    }
    /// @}

    /**
     * Every translation structure, the counters, the (mutable)
     * nested-walk factor and the audit log. The audit-log *switch* is
     * re-derived by the owning System, not serialized.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    /** Cycles for a full walk of @p levels page-table loads. */
    Cycles walkLatency(Vpn vpn, bool huge);

    TlbConfig cfg_;
    SetAssocTlb l1_4k_;
    SetAssocTlb l1_2m_;
    SetAssocTlb l2_;
    SetAssocTlb pwc_pde_;
    SetAssocTlb pwc_pdpte_;
    /** Approximates which PT pages are hot in the data caches. */
    SetAssocTlb pt_residency_;
    PerfCounters counters_;

    bool audit_log_on_ = false;
    std::unordered_map<std::uint64_t, std::uint64_t> audit_2m_;
    std::unordered_map<std::uint64_t, std::uint64_t> audit_4k_;
};

} // namespace hawksim::tlb

#endif // HAWKSIM_TLB_TLB_HH
