/**
 * @file
 * TLB hierarchy and page-walk model.
 *
 * Models the paper's experimental platform (Intel Haswell-EP):
 *   - L1 DTLB: 64 entries for 4KB pages, 8 entries for 2MB pages
 *   - L2 STLB: 1024 entries shared between both page sizes
 *   - page-walk caches for the upper levels of the radix table
 *
 * The model consumes *sampled* access streams: the engine passes a
 * seeded sample of page-granularity accesses per tick plus the true
 * total access count; miss counts and walk cycles are extrapolated by
 * the caller via the sampling factor.
 *
 * Sequential access patterns hide part of the TLB-miss latency behind
 * prefetching and out-of-order overlap (§2.4 — the reason WSS is a
 * poor predictor of MMU overhead, and the mechanism behind Table 9's
 * HawkEye-G mispredictions). This is modelled as an overlap factor
 * that discounts walk cycles as a function of the batch's measured
 * sequentiality.
 */

#ifndef HAWKSIM_TLB_TLB_HH
#define HAWKSIM_TLB_TLB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/aligned.hh"
#include "base/simd.hh"
#include "base/types.hh"
#include "tlb/perf_counters.hh"
#include "vm/page_table.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::tlb {

/** One sampled memory access at page granularity. */
struct AccessSample
{
    Vpn vpn;
    bool write = false;
};

/**
 * A set-associative translation cache with LRU replacement.
 *
 * Stored as struct-of-arrays: one cache-aligned key column and one
 * LRU column, so a whole 8-way set's tags fit in a single cache line
 * (the AoS {key, lru, valid} layout spanned three). Both columns are
 * densely packed — a set-major key+LRU interleaving was tried and
 * measured *worse*: the 128-byte set stride parks key lines on
 * even-numbered cache lines only, halving the effective L1d capacity
 * for the large structures and turning the miss-heavy grid points
 * pathological. Validity is folded into the key column via a
 * sentinel — every real key the model produces has its top bits
 * clear (vpns are <= 2^36 and walk line ids carry a level tag in
 * bits 60..62), so `~0ull` can never collide with a live entry and
 * the per-way `valid` bool disappears from the probe loop.
 */
class SetAssocTlb
{
  public:
    /** Key column sentinel marking an empty/invalid way. */
    static constexpr std::uint64_t kInvalidKey = ~0ull;

    SetAssocTlb(unsigned entries, unsigned ways);

    /** Cheap key mixer so strided keys spread across sets. */
    static std::uint64_t
    mixKey(std::uint64_t key)
    {
        key ^= key >> 33;
        key *= 0xff51afd7ed558ccdull;
        key ^= key >> 33;
        return key;
    }

    /** True on hit; refreshes LRU state. */
    bool
    lookup(std::uint64_t key)
    {
        return lookupAt(baseOf(key), key);
    }

    void
    insert(std::uint64_t key)
    {
        insertAt(baseOf(key), key);
    }

    /**
     * Fused lookup + fill-on-miss: one set resolution and one pass
     * over the ways serve both operations. Returns true on hit,
     * refreshing LRU exactly like `lookup`; on miss the key is
     * inserted with `insert`'s victim choice before returning false.
     * State-equivalent to `lookup(k) || (insert(k), false)` — the
     * batched simulate loop uses this, the scalar reference loop
     * keeps the discrete calls.
     */
    bool
    lookupOrInsert(std::uint64_t key)
    {
        // Dispatch on the two real geometries so the scans unroll
        // with a compile-time trip count (and stay branch-free).
        return lookupOrInsertAt(baseOf(key), key);
    }

    /**
     * Resolve @p key to its set's base way index. Pairs with
     * `lookupOrInsertAt`: the batched simulate loop precomputes bases
     * for a whole chunk in one ILP-friendly pre-pass, lifting the
     * serial mix/mask chain off each probe's critical path.
     */
    std::size_t
    baseOf(std::uint64_t key) const
    {
        return static_cast<std::size_t>(setOf(mixKey(key))) * ways_;
    }

    /**
     * `lookupOrInsert` with the set base already resolved.
     *
     * Fronted by a one-entry MRU memo: if @p key is the key this
     * structure probed last time, it is still resident at the
     * memoized way and the probe collapses to the LRU refresh. The
     * shortcut is exact, not approximate:
     *   - a key maps to one set and sets hold no duplicates, so a
     *     full scan would find precisely the memoized way;
     *   - no intervening fused probe can have evicted it — the memoed
     *     way carries the structure-wide maximum LRU stamp (it was
     *     the last op), and fills pick an empty way or the set
     *     minimum, never the maximum (ways >= 2);
     *   - anything else that writes the key column (`insert`, `load`,
     *     `flush`) drops the memo.
     * Repeats dominate real probe streams here: every 4K walk in a
     * batch hits the PWC-PDPTE with the same vpn>>18, huge-page runs
     * re-probe one region key, and sequential pages share PTE lines.
     */
    HAWKSIM_ALWAYS_INLINE bool
    lookupOrInsertAt(std::size_t base, std::uint64_t key)
    {
        if (key == memo_key_) {
            lru_[memo_idx_] = ++tick_;
            return true;
        }
        switch (ways_) {
          case 4:
            return probeOrFill<4>(base, key);
          case 8:
            return probeOrFill<8>(base, key);
          default:
            return lookupMemo(base, key) ||
                   (insertMemo(base, key), false);
        }
    }

    void flush();
    unsigned entries() const { return sets_ * ways_; }

    /** Pull the set that @p key maps to into cache ahead of a probe. */
    void
    prefetchSet(std::uint64_t key) const
    {
        prefetchBase(baseOf(key));
    }

    /**
     * Prefetch a set by precomputed base (see `baseOf`). Pulls both
     * columns: a miss needs the LRU line for the victim scan and then
     * writes both, so fetching only the tag line hides half the
     * stall.
     */
    void
    prefetchBase(std::size_t base) const
    {
        prefetchWrite(keys_.data() + base);
        prefetchWrite(lru_.data() + base);
    }

    /** Currently-valid entries (occupancy introspection), one pass. */
    unsigned
    validEntries() const
    {
        unsigned n = 0;
        for (std::uint64_t k : keys_)
            n += k != kInvalidKey ? 1 : 0;
        return n;
    }

    /** LRU clock + every way; geometry is construction-checked. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    /** `lookup` body for a precomputed set base index. */
    bool
    lookupAt(std::size_t base, std::uint64_t key)
    {
        const std::uint64_t *keys = keys_.data() + base;
        for (unsigned w = 0; w < ways_; w++) {
            if (keys[w] == key) {
                lru_[base + w] = ++tick_;
                return true;
            }
        }
        return false;
    }

    /** `insert` body for a precomputed set base index. */
    void
    insertAt(std::size_t base, std::uint64_t key)
    {
        std::uint64_t *keys = keys_.data() + base;
        std::uint64_t *lru = lru_.data() + base;
        // First empty way wins, else the least-recently-used one —
        // identical victim choice to the AoS first-!valid/min-lru scan.
        unsigned victim = 0;
        for (unsigned w = 0; w < ways_; w++) {
            if (keys[w] == kInvalidKey) {
                victim = w;
                break;
            }
            if (lru[w] < lru[victim])
                victim = w;
        }
        keys[victim] = key;
        lru[victim] = ++tick_;
        // A discrete insert rewrites the key column outside the fused
        // probe's eviction reasoning: drop the memo.
        memo_key_ = kInvalidKey;
    }

    /** `lookupAt` that also sets the memo (odd-geometry fallback). */
    bool
    lookupMemo(std::size_t base, std::uint64_t key)
    {
        const std::uint64_t *keys = keys_.data() + base;
        for (unsigned w = 0; w < ways_; w++) {
            if (keys[w] == key) {
                lru_[base + w] = ++tick_;
                memo_key_ = key;
                memo_idx_ = static_cast<std::uint32_t>(base + w);
                return true;
            }
        }
        return false;
    }

    /** `insertAt` that also sets the memo (odd-geometry fallback). */
    void
    insertMemo(std::size_t base, std::uint64_t key)
    {
        std::uint64_t *keys = keys_.data() + base;
        std::uint64_t *lru = lru_.data() + base;
        unsigned victim = 0;
        for (unsigned w = 0; w < ways_; w++) {
            if (keys[w] == kInvalidKey) {
                victim = w;
                break;
            }
            if (lru[w] < lru[victim])
                victim = w;
        }
        keys[victim] = key;
        lru[victim] = ++tick_;
        memo_key_ = key;
        memo_idx_ = static_cast<std::uint32_t>(base + victim);
    }

    /**
     * Fused probe over a fixed way count. The hit scan visits every
     * way with conditional moves (one branch on the outcome instead
     * of one per way); the victim scan runs only on a miss and maps
     * empty ways to an effective LRU of 0 — valid stamps start at 1
     * (`++tick_` from 0) — so a strict-< minimum picks the first
     * empty way, else the first least-recently-used way, exactly like
     * `insertAt`'s early-exit loop.
     */
    template <unsigned N>
    HAWKSIM_ALWAYS_INLINE bool
    probeOrFill(std::size_t base, std::uint64_t key)
    {
        std::uint64_t *keys = keys_.data() + base;
        std::uint64_t *lru = lru_.data() + base;
#if HAWKSIM_SIMD_SSE2
        // Parallel hit scan: compare all N ways at once and reduce to
        // a match bitmask. SSE2 has no 64-bit compare, so equality is
        // two 32-bit lane compares ANDed with each other; the 64-bit
        // sign bits then drop out of movemask_pd. Bit-identical to
        // the scalar scan — exact integer equality either way.
        static_assert(N == 4 || N == 8, "probe geometry");
        const __m128i bk = _mm_set1_epi64x(
            static_cast<long long>(key));
        unsigned match = 0;
        for (unsigned v = 0; v < N; v += 2) {
            const __m128i k2 = _mm_load_si128(
                reinterpret_cast<const __m128i *>(keys + v));
            const __m128i eq32 = _mm_cmpeq_epi32(k2, bk);
            const __m128i eq64 = _mm_and_si128(
                eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
            match |= static_cast<unsigned>(_mm_movemask_pd(
                         _mm_castsi128_pd(eq64)))
                     << v;
        }
        if (match) {
            const unsigned hit_way = __builtin_ctz(match);
            lru[hit_way] = ++tick_;
            memo_key_ = key;
            memo_idx_ = static_cast<std::uint32_t>(base + hit_way);
            return true;
        }
#else
        unsigned hit_way = N;
        for (unsigned w = 0; w < N; w++)
            hit_way = keys[w] == key ? w : hit_way;
        if (hit_way != N) {
            lru[hit_way] = ++tick_;
            memo_key_ = key;
            memo_idx_ = static_cast<std::uint32_t>(base + hit_way);
            return true;
        }
#endif
        // Victim scan as a tree-min over `(effectiveLru << 3) | way`
        // — way indices break ties (only empties can tie, at 0), so
        // the minimum is the first empty way, else the first
        // least-recently-used way: `insertAt`'s exact choice, but in
        // log-depth selects instead of a serial compare chain.
        std::uint64_t packed[N];
        for (unsigned w = 0; w < N; w++) {
            const std::uint64_t eff =
                keys[w] == kInvalidKey ? 0 : lru[w];
            packed[w] = (eff << 3) | w;
        }
        std::uint64_t best = std::min(packed[0], packed[1]);
        if constexpr (N >= 4) {
            best = std::min(best, std::min(packed[2], packed[3]));
        }
        if constexpr (N == 8) {
            const std::uint64_t hi =
                std::min(std::min(packed[4], packed[5]),
                         std::min(packed[6], packed[7]));
            best = std::min(best, hi);
        }
        const unsigned victim = static_cast<unsigned>(best & 7);
        keys[victim] = key;
        lru[victim] = ++tick_;
        memo_key_ = key;
        memo_idx_ = static_cast<std::uint32_t>(base + victim);
        return false;
    }

    /**
     * Set index for @p key. All standard geometries have
     * power-of-two set counts, where `h % sets == h & (sets - 1)`
     * bit-for-bit; the mask form avoids a hardware divide on the
     * simulator's hottest path. Odd set counts fall back to the
     * division, so the mapping is identical either way.
     */
    unsigned
    setOf(std::uint64_t hash) const
    {
        if (mask_ != 0 || sets_ == 1)
            return static_cast<unsigned>(hash & mask_);
        return static_cast<unsigned>(hash % sets_);
    }

    unsigned sets_;
    unsigned ways_;
    std::uint64_t mask_ = 0; //!< sets_ - 1 when sets_ is a power of 2
    std::uint64_t tick_ = 0;
    AlignedVec<std::uint64_t> keys_; //!< kInvalidKey = empty way
    AlignedVec<std::uint64_t> lru_;
    /**
     * One-entry MRU memo (see `lookupOrInsertAt`): the key the last
     * fused probe hit or filled, and the flat way index holding it.
     * Pure accelerator state — never serialized, never observable.
     */
    std::uint64_t memo_key_ = kInvalidKey;
    std::uint32_t memo_idx_ = 0;
};

/** Hardware geometry and latency parameters. */
struct TlbConfig
{
    unsigned l1Entries4k = 64;
    unsigned l1Ways4k = 4;
    unsigned l1Entries2m = 8;
    unsigned l1Ways2m = 8; // fully associative
    unsigned l2Entries = 1024;
    unsigned l2Ways = 8;
    /** Page-walk cache: PDE entries (each covers 2MB of VA). */
    unsigned pwcPdeEntries = 32;
    /** Page-walk cache: PDPTE entries (each covers 1GB of VA). */
    unsigned pwcPdpteEntries = 4;

    Cycles l2HitCycles = 7;
    /** Latency of one page-table load that hits in the data caches. */
    Cycles ptCachedLoadCycles = 30;
    /** Latency of one page-table load from DRAM. */
    Cycles ptMemoryLoadCycles = 170;
    /**
     * Cache lines of page-table data assumed resident in the data
     * caches (~256KB worth). Small page-table working sets (the PDs
     * backing huge mappings) fit and walk cheaply; the PTE arrays of
     * large 4KB-mapped footprints thrash it and walk from memory.
     */
    unsigned ptResidencyEntries = 4096;
    /** Fraction of walk latency hidden under sequential access. */
    double sequentialOverlap = 0.85;
    /**
     * Virtualized (2-D/EPT) translation: every guest page-table load
     * itself requires a nested walk, turning a 4-load walk into up to
     * 24 loads. This factor scales walk latencies when enabled.
     */
    bool nested = false;
    double nestedWalkFactor = 3.6;

    static TlbConfig haswell() { return TlbConfig{}; }

    static TlbConfig
    haswellVirtualized()
    {
        TlbConfig c;
        c.nested = true;
        return c;
    }
};

/** Result of simulating one access batch. */
struct TlbBatchResult
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    Cycles walkCycles = 0;
};

class TlbModel
{
  public:
    explicit TlbModel(TlbConfig cfg = TlbConfig::haswell());

    /**
     * Run a sampled access stream against the TLB hierarchy,
     * resolving page sizes through @p pt and setting PTE
     * accessed/dirty bits on the way (this is what the OS access-bit
     * samplers observe).
     *
     * @param sequentiality in [0,1]: fraction of the stream that is
     *        next-page sequential (drives latency overlap)
     * @param scale each sampled access stands for @p scale real ones;
     *        counters are scaled accordingly
     */
    TlbBatchResult simulate(vm::PageTable &pt,
                            const std::vector<AccessSample> &batch,
                            double sequentiality, double scale = 1.0);

    /**
     * @name Batched-loop control
     *
     * `simulate` normally runs as two batched phases (translate every
     * sample, then probe every staged translation) with column
     * prefetch between iterations. The phases commute — translations
     * never read TLB state and probes never read PTEs — so results,
     * counters and reports are bit-identical to the scalar
     * per-access loop, which is kept for A/B timing and the
     * equivalence test suite. Process-wide switch, same contract as
     * `PageTable::setTranslationCacheEnabled`: only flip between
     * measurement phases, never while simulations run elsewhere.
     */
    /// @{
    static void setBatchingEnabled(bool on) { batching_enabled_ = on; }
    static bool batchingEnabled() { return batching_enabled_; }
    /// @}

    /** Flush translations (context switch / TLB shootdown). */
    void flush();

    /**
     * Update the nested-walk amplification dynamically (the
     * virtualization layer lowers it as the host promotes more of the
     * guest's backing to huge EPT mappings).
     */
    void setNestedFactor(double f) { cfg_.nestedWalkFactor = f; }

    PerfCounters &counters() { return counters_; }
    const PerfCounters &counters() const { return counters_; }
    const TlbConfig &config() const { return cfg_; }

    /** Valid-entry counts per structure (obs snapshot view). */
    struct Occupancy
    {
        unsigned l14kUsed = 0, l14kSize = 0;
        unsigned l12mUsed = 0, l12mSize = 0;
        unsigned l2Used = 0, l2Size = 0;
        unsigned pwcPdeUsed = 0, pwcPdeSize = 0;
        unsigned pwcPdpteUsed = 0, pwcPdpteSize = 0;
    };

    /** Read-only occupancy of every translation structure. */
    Occupancy
    occupancy() const
    {
        Occupancy o;
        o.l14kUsed = l1_4k_.validEntries();
        o.l14kSize = l1_4k_.entries();
        o.l12mUsed = l1_2m_.validEntries();
        o.l12mSize = l1_2m_.entries();
        o.l2Used = l2_.validEntries();
        o.l2Size = l2_.entries();
        o.pwcPdeUsed = pwc_pde_.validEntries();
        o.pwcPdeSize = pwc_pde_.entries();
        o.pwcPdpteUsed = pwc_pdpte_.validEntries();
        o.pwcPdpteSize = pwc_pdpte_.entries();
        return o;
    }

    /**
     * @name Coherence audit log (fault::Auditor support)
     *
     * When enabled, every TLB insert also records the translation's
     * page size, keyed by the page table's structural epoch at insert
     * time. The auditor cross-checks entries recorded at the *current*
     * epoch against the live page table; entries from older epochs are
     * benignly stale (this TLB model ages entries out rather than
     * modelling shootdowns). Off by default: the hot path only pays
     * one predictable branch per insert.
     */
    /// @{
    void
    setAuditLog(bool on)
    {
        audit_log_on_ = on;
        if (!on) {
            audit_2m_.clear();
            audit_4k_.clear();
        }
    }
    bool auditLogEnabled() const { return audit_log_on_; }
    /** region -> PT epoch at insert time. */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    auditLog2m() const
    {
        return audit_2m_;
    }
    /** vpn -> PT epoch at insert time. */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    auditLog4k() const
    {
        return audit_4k_;
    }
    /** Test hook: forge an audit-log entry (seeded corruption). */
    void
    injectAuditEntry(bool huge, std::uint64_t key, std::uint64_t epoch)
    {
        (huge ? audit_2m_ : audit_4k_)[key] = epoch;
    }
    /// @}

    /**
     * Every translation structure, the counters, the (mutable)
     * nested-walk factor and the audit log. The audit-log *switch* is
     * re-derived by the owning System, not serialized.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    /** Cycles for a full walk of @p levels page-table loads. */
    Cycles walkLatency(Vpn vpn, bool huge);
    /** Same walk-cost model via fused probes (batched loop). */
    Cycles walkLatencyFused(Vpn vpn, bool huge);

    /** Reference per-access loop (batching disabled). */
    TlbBatchResult simulateScalar(vm::PageTable &pt,
                                  const std::vector<AccessSample> &batch,
                                  double sequentiality, double scale);
    /** Phase-split loop: translate all, then probe all. */
    TlbBatchResult simulateBatched(vm::PageTable &pt,
                                   const std::vector<AccessSample> &batch,
                                   double sequentiality, double scale);
    /** Scale/round the batch tallies and charge the counters. */
    TlbBatchResult finishBatch(std::uint64_t accesses,
                               std::uint64_t misses, double load_walk,
                               double store_walk, double scale);

    /** One present translation staged by the translate phase. */
    struct BatchSlot
    {
        Vpn vpn;
        std::uint32_t write; //!< 0/1: indexes the walk-accumulator pair
        std::uint32_t huge;
    };
    /** Reused across batches; grown to the next power of two. */
    std::vector<BatchSlot> slots_;
    /**
     * Per-slot L1/L2 set bases, precomputed in the translate phase so
     * the probe loop never waits on the serial key-mix chain. Parallel
     * to `slots_`.
     */
    AlignedVec<std::uint32_t> l1_base_;
    AlignedVec<std::uint32_t> l2_base_;
    /**
     * Per-slot pt-residency set base for the walk's *leaf* line (the
     * PTE line for 4K, the PDE line for huge) — the one walk-structure
     * set that is both large enough to miss the data caches and
     * computable before the probe decides whether to walk. The probe
     * loop prefetches it one slot ahead; a prefetch of a set the walk
     * never touches is harmless.
     */
    AlignedVec<std::uint32_t> walk_base_;

    static bool batching_enabled_;

    TlbConfig cfg_;
    SetAssocTlb l1_4k_;
    SetAssocTlb l1_2m_;
    SetAssocTlb l2_;
    SetAssocTlb pwc_pde_;
    SetAssocTlb pwc_pdpte_;
    /** Approximates which PT pages are hot in the data caches. */
    SetAssocTlb pt_residency_;
    PerfCounters counters_;

    bool audit_log_on_ = false;
    std::unordered_map<std::uint64_t, std::uint64_t> audit_2m_;
    std::unordered_map<std::uint64_t, std::uint64_t> audit_4k_;
};

} // namespace hawksim::tlb

#endif // HAWKSIM_TLB_TLB_HH
