#include "tlb/tlb.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/logging.hh"
#include "snap/snap.hh"

namespace hawksim::tlb {

namespace {

/** Cheap key mixer so strided keys spread across sets. */
std::uint64_t
mix(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return key;
}

} // namespace

SetAssocTlb::SetAssocTlb(unsigned entries, unsigned ways)
    : sets_(entries / ways), ways_(ways),
      ways_storage_(static_cast<std::size_t>(entries))
{
    HS_ASSERT(entries > 0 && ways > 0 && entries % ways == 0,
              "bad TLB geometry: ", entries, "/", ways);
    if ((sets_ & (sets_ - 1)) == 0)
        mask_ = sets_ - 1;
}

bool
SetAssocTlb::lookup(std::uint64_t key)
{
    const unsigned set = setOf(mix(key));
    Way *base = &ways_storage_[static_cast<std::size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; w++) {
        if (base[w].valid && base[w].key == key) {
            base[w].lru = ++tick_;
            return true;
        }
    }
    return false;
}

void
SetAssocTlb::insert(std::uint64_t key)
{
    const unsigned set = setOf(mix(key));
    Way *base = &ways_storage_[static_cast<std::size_t>(set) * ways_];
    Way *victim = &base[0];
    for (unsigned w = 0; w < ways_; w++) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->key = key;
    victim->valid = true;
    victim->lru = ++tick_;
}

void
SetAssocTlb::flush()
{
    for (auto &w : ways_storage_)
        w.valid = false;
}

TlbModel::TlbModel(TlbConfig cfg)
    : cfg_(cfg), l1_4k_(cfg.l1Entries4k, cfg.l1Ways4k),
      l1_2m_(cfg.l1Entries2m, cfg.l1Ways2m),
      l2_(cfg.l2Entries, cfg.l2Ways), pwc_pde_(cfg.pwcPdeEntries, 4),
      pwc_pdpte_(cfg.pwcPdpteEntries, cfg.pwcPdpteEntries),
      pt_residency_(cfg.ptResidencyEntries, 8)
{}

Cycles
TlbModel::walkLatency(Vpn vpn, bool huge)
{
    Cycles cost = 0;
    // A page-table load hits in the data caches if its cache line was
    // walked recently; otherwise it goes to memory. Tags separate the
    // levels; PTEs/PDEs are cached at 64-byte (8-entry) granularity.
    auto load = [&](std::uint64_t line_id) {
        if (pt_residency_.lookup(line_id)) {
            cost += cfg_.ptCachedLoadCycles;
        } else {
            cost += cfg_.ptMemoryLoadCycles;
            pt_residency_.insert(line_id);
        }
    };
    // The PML4 is a handful of hot lines; treat as always cached.
    cost += 4;
    if (!pwc_pdpte_.lookup(vpn >> 18)) {
        load((vpn >> 21) | (1ull << 60)); // PDPTE line
        pwc_pdpte_.insert(vpn >> 18);
    }
    if (huge) {
        // Walk terminates at the PD level: the PDE is the leaf.
        load((vpn >> 12) | (2ull << 60));
    } else {
        if (!pwc_pde_.lookup(vpn >> 9)) {
            load((vpn >> 12) | (2ull << 60)); // PDE line
            pwc_pde_.insert(vpn >> 9);
        }
        load((vpn >> 3) | (3ull << 60)); // PTE line
    }
    if (cfg_.nested)
        cost = static_cast<Cycles>(static_cast<double>(cost) *
                                   cfg_.nestedWalkFactor);
    return cost;
}

TlbBatchResult
TlbModel::simulate(vm::PageTable &pt,
                   const std::vector<AccessSample> &batch,
                   double sequentiality, double scale)
{
    double load_walk = 0.0;
    double store_walk = 0.0;
    std::uint64_t misses = 0;
    std::uint64_t accesses = 0;
    const double overlap =
        1.0 - cfg_.sequentialOverlap * sequentiality;

    for (const auto &a : batch) {
        vm::Translation t = pt.lookupAndTouch(a.vpn, a.write);
        if (!t.present)
            continue; // engine faults first; stale samples are skipped
        accesses++;
        double walk = 0.0;
        if (t.huge) {
            const std::uint64_t region = a.vpn >> 9;
            const std::uint64_t l2key = (region << 1) | 1;
            if (audit_log_on_)
                audit_2m_[region] = pt.translationEpoch();
            if (l1_2m_.lookup(region)) {
                // L1 hit: free
            } else if (l2_.lookup(l2key)) {
                walk = static_cast<double>(cfg_.l2HitCycles);
                l1_2m_.insert(region);
            } else {
                misses++;
                walk = static_cast<double>(walkLatency(a.vpn, true)) *
                       overlap;
                l1_2m_.insert(region);
                l2_.insert(l2key);
            }
        } else {
            const std::uint64_t l2key = a.vpn << 1;
            if (audit_log_on_)
                audit_4k_[a.vpn] = pt.translationEpoch();
            if (l1_4k_.lookup(a.vpn)) {
                // L1 hit: free
            } else if (l2_.lookup(l2key)) {
                walk = static_cast<double>(cfg_.l2HitCycles);
                l1_4k_.insert(a.vpn);
            } else {
                misses++;
                walk = static_cast<double>(walkLatency(a.vpn, false)) *
                       overlap;
                l1_4k_.insert(a.vpn);
                l2_.insert(l2key);
            }
        }
        if (a.write)
            store_walk += walk;
        else
            load_walk += walk;
    }

    TlbBatchResult res;
    res.accesses = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(accesses) * scale));
    res.misses = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(misses) * scale));
    // Round the load and store walk cycles separately and derive the
    // batch total from the same split, so the per-batch result always
    // equals exactly what lands in the counters (rounding the sum
    // instead can drift +/-1 cycle from the counter deltas).
    const auto load_cycles = static_cast<std::uint64_t>(
        std::llround(load_walk * scale));
    const auto store_cycles = static_cast<std::uint64_t>(
        std::llround(store_walk * scale));
    res.walkCycles = static_cast<Cycles>(load_cycles + store_cycles);

    counters_.tlbAccesses += res.accesses;
    counters_.tlbMisses += res.misses;
    counters_.dtlbLoadWalkCycles += load_cycles;
    counters_.dtlbStoreWalkCycles += store_cycles;
    return res;
}

void
TlbModel::flush()
{
    l1_4k_.flush();
    l1_2m_.flush();
    l2_.flush();
    pwc_pde_.flush();
    pwc_pdpte_.flush();
    pt_residency_.flush();
}

void
PerfCounters::save(snap::Writer &w) const
{
    w.u64(dtlbLoadWalkCycles);
    w.u64(dtlbStoreWalkCycles);
    w.u64(cpuClkUnhalted);
    w.u64(tlbAccesses);
    w.u64(tlbMisses);
}

void
PerfCounters::load(snap::Reader &r)
{
    dtlbLoadWalkCycles = r.u64();
    dtlbStoreWalkCycles = r.u64();
    cpuClkUnhalted = r.u64();
    tlbAccesses = r.u64();
    tlbMisses = r.u64();
}

void
SetAssocTlb::save(snap::Writer &w) const
{
    w.u64(tick_);
    w.u64(ways_storage_.size());
    for (const Way &way : ways_storage_) {
        w.u64(way.key);
        w.u64(way.lru);
        w.b(way.valid);
    }
}

void
SetAssocTlb::load(snap::Reader &r)
{
    tick_ = r.u64();
    const std::uint64_t n = r.u64();
    HS_ASSERT(n == ways_storage_.size(),
              "snapshot: TLB geometry mismatch (", n, " ways vs ",
              ways_storage_.size(), ")");
    for (Way &way : ways_storage_) {
        way.key = r.u64();
        way.lru = r.u64();
        way.valid = r.b();
    }
}

namespace {

/** Serialize an audit log (unordered) in sorted key order. */
void
saveAuditLog(snap::Writer &w,
             const std::unordered_map<std::uint64_t, std::uint64_t> &m)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries(
        m.begin(), m.end());
    std::sort(entries.begin(), entries.end());
    w.u64(entries.size());
    for (const auto &[key, epoch] : entries) {
        w.u64(key);
        w.u64(epoch);
    }
}

void
loadAuditLog(snap::Reader &r,
             std::unordered_map<std::uint64_t, std::uint64_t> &m)
{
    m.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t key = r.u64();
        m[key] = r.u64();
    }
}

} // namespace

void
TlbModel::save(snap::Writer &w) const
{
    w.f64(cfg_.nestedWalkFactor);
    l1_4k_.save(w);
    l1_2m_.save(w);
    l2_.save(w);
    pwc_pde_.save(w);
    pwc_pdpte_.save(w);
    pt_residency_.save(w);
    counters_.save(w);
    saveAuditLog(w, audit_2m_);
    saveAuditLog(w, audit_4k_);
}

void
TlbModel::load(snap::Reader &r)
{
    cfg_.nestedWalkFactor = r.f64();
    l1_4k_.load(r);
    l1_2m_.load(r);
    l2_.load(r);
    pwc_pde_.load(r);
    pwc_pdpte_.load(r);
    pt_residency_.load(r);
    counters_.load(r);
    loadAuditLog(r, audit_2m_);
    loadAuditLog(r, audit_4k_);
}

} // namespace hawksim::tlb
