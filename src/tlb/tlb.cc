#include "tlb/tlb.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "base/logging.hh"
#include "snap/snap.hh"

namespace hawksim::tlb {

SetAssocTlb::SetAssocTlb(unsigned entries, unsigned ways)
    : sets_(entries / ways), ways_(ways),
      keys_(static_cast<std::size_t>(entries), kInvalidKey),
      lru_(static_cast<std::size_t>(entries), 0)
{
    HS_ASSERT(entries > 0 && ways > 0 && entries % ways == 0,
              "bad TLB geometry: ", entries, "/", ways);
    if ((sets_ & (sets_ - 1)) == 0)
        mask_ = sets_ - 1;
}

void
SetAssocTlb::flush()
{
    std::fill(keys_.begin(), keys_.end(), kInvalidKey);
    memo_key_ = kInvalidKey;
}

TlbModel::TlbModel(TlbConfig cfg)
    : cfg_(cfg), l1_4k_(cfg.l1Entries4k, cfg.l1Ways4k),
      l1_2m_(cfg.l1Entries2m, cfg.l1Ways2m),
      l2_(cfg.l2Entries, cfg.l2Ways), pwc_pde_(cfg.pwcPdeEntries, 4),
      pwc_pdpte_(cfg.pwcPdpteEntries, cfg.pwcPdpteEntries),
      pt_residency_(cfg.ptResidencyEntries, 8)
{}

Cycles
TlbModel::walkLatency(Vpn vpn, bool huge)
{
    Cycles cost = 0;
    // A page-table load hits in the data caches if its cache line was
    // walked recently; otherwise it goes to memory. Tags separate the
    // levels; PTEs/PDEs are cached at 64-byte (8-entry) granularity.
    auto load = [&](std::uint64_t line_id) {
        if (pt_residency_.lookup(line_id)) {
            cost += cfg_.ptCachedLoadCycles;
        } else {
            cost += cfg_.ptMemoryLoadCycles;
            pt_residency_.insert(line_id);
        }
    };
    // The PML4 is a handful of hot lines; treat as always cached.
    cost += 4;
    if (!pwc_pdpte_.lookup(vpn >> 18)) {
        load((vpn >> 21) | (1ull << 60)); // PDPTE line
        pwc_pdpte_.insert(vpn >> 18);
    }
    if (huge) {
        // Walk terminates at the PD level: the PDE is the leaf.
        load((vpn >> 12) | (2ull << 60));
    } else {
        if (!pwc_pde_.lookup(vpn >> 9)) {
            load((vpn >> 12) | (2ull << 60)); // PDE line
            pwc_pde_.insert(vpn >> 9);
        }
        load((vpn >> 3) | (3ull << 60)); // PTE line
    }
    if (cfg_.nested)
        cost = static_cast<Cycles>(static_cast<double>(cost) *
                                   cfg_.nestedWalkFactor);
    return cost;
}

HAWKSIM_NOINLINE Cycles
TlbModel::walkLatencyFused(Vpn vpn, bool huge)
{
    // Identical cost model to walkLatency, but every
    // lookup-then-insert-on-miss pair collapses into one fused probe.
    // The only reordering is a PWC fill moving ahead of the
    // corresponding pt-residency load — a different structure, so each
    // structure still sees exactly the walkLatency op sequence.
    //
    // Kept out-of-line on purpose: flattening these three probes into
    // simulateBatched's loop body (alongside the L1/L2 probes) was
    // measured slower across the board — the loop body outgrows the
    // decoded-uop cache. Compact front-probe loop + one call on the
    // miss path beats a fully fused body.
    Cycles cost = 4;
    auto load = [&](std::uint64_t line_id) {
        cost += pt_residency_.lookupOrInsertAt(
                    pt_residency_.baseOf(line_id), line_id)
                    ? cfg_.ptCachedLoadCycles
                    : cfg_.ptMemoryLoadCycles;
    };
    const std::uint64_t pdpte_key = vpn >> 18;
    if (!pwc_pdpte_.lookupOrInsertAt(pwc_pdpte_.baseOf(pdpte_key),
                                     pdpte_key))
        load((vpn >> 21) | (1ull << 60)); // PDPTE line
    if (huge) {
        // Walk terminates at the PD level: the PDE is the leaf.
        load((vpn >> 12) | (2ull << 60));
    } else {
        const std::uint64_t pde_key = vpn >> 9;
        if (!pwc_pde_.lookupOrInsertAt(pwc_pde_.baseOf(pde_key),
                                       pde_key))
            load((vpn >> 12) | (2ull << 60)); // PDE line
        load((vpn >> 3) | (3ull << 60)); // PTE line
    }
    if (cfg_.nested)
        cost = static_cast<Cycles>(static_cast<double>(cost) *
                                   cfg_.nestedWalkFactor);
    return cost;
}

bool TlbModel::batching_enabled_ = true;

TlbBatchResult
TlbModel::simulate(vm::PageTable &pt,
                   const std::vector<AccessSample> &batch,
                   double sequentiality, double scale)
{
    return batching_enabled_
               ? simulateBatched(pt, batch, sequentiality, scale)
               : simulateScalar(pt, batch, sequentiality, scale);
}

TlbBatchResult
TlbModel::simulateScalar(vm::PageTable &pt,
                         const std::vector<AccessSample> &batch,
                         double sequentiality, double scale)
{
    double load_walk = 0.0;
    double store_walk = 0.0;
    std::uint64_t misses = 0;
    std::uint64_t accesses = 0;
    const double overlap =
        1.0 - cfg_.sequentialOverlap * sequentiality;

    for (const auto &a : batch) {
        vm::Translation t = pt.lookupAndTouch(a.vpn, a.write);
        if (!t.present)
            continue; // engine faults first; stale samples are skipped
        accesses++;
        double walk = 0.0;
        if (t.huge) {
            const std::uint64_t region = a.vpn >> 9;
            const std::uint64_t l2key = (region << 1) | 1;
            if (audit_log_on_)
                audit_2m_[region] = pt.translationEpoch();
            if (l1_2m_.lookup(region)) {
                // L1 hit: free
            } else if (l2_.lookup(l2key)) {
                walk = static_cast<double>(cfg_.l2HitCycles);
                l1_2m_.insert(region);
            } else {
                misses++;
                walk = static_cast<double>(walkLatency(a.vpn, true)) *
                       overlap;
                l1_2m_.insert(region);
                l2_.insert(l2key);
            }
        } else {
            const std::uint64_t l2key = a.vpn << 1;
            if (audit_log_on_)
                audit_4k_[a.vpn] = pt.translationEpoch();
            if (l1_4k_.lookup(a.vpn)) {
                // L1 hit: free
            } else if (l2_.lookup(l2key)) {
                walk = static_cast<double>(cfg_.l2HitCycles);
                l1_4k_.insert(a.vpn);
            } else {
                misses++;
                walk = static_cast<double>(walkLatency(a.vpn, false)) *
                       overlap;
                l1_4k_.insert(a.vpn);
                l2_.insert(l2key);
            }
        }
        if (a.write)
            store_walk += walk;
        else
            load_walk += walk;
    }

    return finishBatch(accesses, misses, load_walk, store_walk, scale);
}

TlbBatchResult
TlbModel::simulateBatched(vm::PageTable &pt,
                          const std::vector<AccessSample> &batch,
                          double sequentiality, double scale)
{
    // Phase 1: translate every sample through the fused walk + tcache,
    // staging the present ones as columns. Translations never consult
    // TLB state and probes never read PTEs (lookupAndTouch only sets
    // accessed/dirty bits), so splitting the per-access loop into
    // translate-all / probe-all phases is observationally identical to
    // the scalar interleaving. The slot's L1/L2 set bases are resolved
    // here too: the key-mix chain is serial per probe but independent
    // across slots, so it overlaps the pointer-chasing walk stalls
    // instead of serializing the probe loop.
    if (slots_.capacity() < batch.size()) {
        const std::size_t cap = std::bit_ceil(batch.size());
        slots_.reserve(cap);
        l1_base_.reserve(cap);
        l2_base_.reserve(cap);
        walk_base_.reserve(cap);
    }
    slots_.clear();
    l1_base_.clear();
    l2_base_.clear();
    walk_base_.clear();
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; i++) {
        if (i + 1 < n)
            pt.prefetchTranslation(batch[i + 1].vpn);
        const AccessSample &a = batch[i];
        const vm::Translation t = pt.lookupAndTouch(a.vpn, a.write);
        if (!t.present)
            continue;
        slots_.push_back(
            BatchSlot{a.vpn, a.write ? 1u : 0u, t.huge ? 1u : 0u});
        const std::uint64_t region = a.vpn >> 9;
        if (t.huge) {
            l1_base_.push_back(
                static_cast<std::uint32_t>(l1_2m_.baseOf(region)));
            l2_base_.push_back(static_cast<std::uint32_t>(
                l2_.baseOf((region << 1) | 1)));
            walk_base_.push_back(
                static_cast<std::uint32_t>(pt_residency_.baseOf(
                    (a.vpn >> 12) | (2ull << 60))));
        } else {
            l1_base_.push_back(
                static_cast<std::uint32_t>(l1_4k_.baseOf(a.vpn)));
            l2_base_.push_back(static_cast<std::uint32_t>(
                l2_.baseOf(a.vpn << 1)));
            walk_base_.push_back(
                static_cast<std::uint32_t>(pt_residency_.baseOf(
                    (a.vpn >> 3) | (3ull << 60))));
        }
    }

    // Phase 2: probe the hierarchy for every staged translation at its
    // precomputed set base. Every lookup-then-insert-on-miss pair runs
    // as one fused probe (`lookupOrInsertAt`) — same per-structure op
    // sequence, half the set resolutions and no key mixing on the
    // critical path. The write/load walk split is accumulated
    // branch-free by indexing with the staged write bit; the
    // per-accumulator addition order matches the scalar loop exactly,
    // so the doubles are bit-identical. One slot ahead, the loop
    // prefetches the two sets the next probe is likely to stall on:
    // the L2 set (64KB of tags — misses L1d on every random probe)
    // and the pt-residency set of the next walk's leaf line (512KB —
    // misses even L2 on the walk-heavy grid points).
    double walk_acc[2] = {0.0, 0.0}; // [0] = loads, [1] = stores
    std::uint64_t misses = 0;
    const double overlap =
        1.0 - cfg_.sequentialOverlap * sequentiality;
    const std::size_t m = slots_.size();
    for (std::size_t i = 0; i < m; i++) {
        if (i + 1 < m) {
            l2_.prefetchBase(l2_base_[i + 1]);
            pt_residency_.prefetchBase(walk_base_[i + 1]);
        }
        const BatchSlot &s = slots_[i];
        double walk = 0.0;
        if (s.huge) {
            const std::uint64_t region = s.vpn >> 9;
            if (audit_log_on_)
                audit_2m_[region] = pt.translationEpoch();
            if (l1_2m_.lookupOrInsertAt(l1_base_[i], region)) {
                // L1 hit: free
            } else if (l2_.lookupOrInsertAt(l2_base_[i],
                                            (region << 1) | 1)) {
                walk = static_cast<double>(cfg_.l2HitCycles);
            } else {
                misses++;
                walk = static_cast<double>(
                           walkLatencyFused(s.vpn, true)) *
                       overlap;
            }
        } else {
            if (audit_log_on_)
                audit_4k_[s.vpn] = pt.translationEpoch();
            if (l1_4k_.lookupOrInsertAt(l1_base_[i], s.vpn)) {
                // L1 hit: free
            } else if (l2_.lookupOrInsertAt(l2_base_[i], s.vpn << 1)) {
                walk = static_cast<double>(cfg_.l2HitCycles);
            } else {
                misses++;
                walk = static_cast<double>(
                           walkLatencyFused(s.vpn, false)) *
                       overlap;
            }
        }
        walk_acc[s.write] += walk;
    }

    return finishBatch(m, misses, walk_acc[0], walk_acc[1], scale);
}

TlbBatchResult
TlbModel::finishBatch(std::uint64_t accesses, std::uint64_t misses,
                      double load_walk, double store_walk, double scale)
{
    TlbBatchResult res;
    res.accesses = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(accesses) * scale));
    res.misses = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(misses) * scale));
    // Round the load and store walk cycles separately and derive the
    // batch total from the same split, so the per-batch result always
    // equals exactly what lands in the counters (rounding the sum
    // instead can drift +/-1 cycle from the counter deltas).
    const auto load_cycles = static_cast<std::uint64_t>(
        std::llround(load_walk * scale));
    const auto store_cycles = static_cast<std::uint64_t>(
        std::llround(store_walk * scale));
    res.walkCycles = static_cast<Cycles>(load_cycles + store_cycles);

    counters_.tlbAccesses += res.accesses;
    counters_.tlbMisses += res.misses;
    counters_.dtlbLoadWalkCycles += load_cycles;
    counters_.dtlbStoreWalkCycles += store_cycles;
    return res;
}

void
TlbModel::flush()
{
    l1_4k_.flush();
    l1_2m_.flush();
    l2_.flush();
    pwc_pde_.flush();
    pwc_pdpte_.flush();
    pt_residency_.flush();
}

void
PerfCounters::save(snap::Writer &w) const
{
    w.u64(dtlbLoadWalkCycles);
    w.u64(dtlbStoreWalkCycles);
    w.u64(cpuClkUnhalted);
    w.u64(tlbAccesses);
    w.u64(tlbMisses);
}

void
PerfCounters::load(snap::Reader &r)
{
    dtlbLoadWalkCycles = r.u64();
    dtlbStoreWalkCycles = r.u64();
    cpuClkUnhalted = r.u64();
    tlbAccesses = r.u64();
    tlbMisses = r.u64();
}

void
SetAssocTlb::save(snap::Writer &w) const
{
    w.u64(tick_);
    w.u64(keys_.size());
    // Same per-way record shape as the AoS layout ({key, lru, valid});
    // validity is derived from the key sentinel.
    for (std::size_t i = 0; i < keys_.size(); i++) {
        w.u64(keys_[i]);
        w.u64(lru_[i]);
        w.b(keys_[i] != kInvalidKey);
    }
}

void
SetAssocTlb::load(snap::Reader &r)
{
    tick_ = r.u64();
    const std::uint64_t n = r.u64();
    HS_ASSERT(n == keys_.size(),
              "snapshot: TLB geometry mismatch (", n, " ways vs ",
              keys_.size(), ")");
    for (std::size_t i = 0; i < keys_.size(); i++) {
        const std::uint64_t key = r.u64();
        lru_[i] = r.u64();
        // Normalize: an invalid way always stores the sentinel, so a
        // save -> load -> save round trip is bit-stable.
        keys_[i] = r.b() ? key : kInvalidKey;
    }
    memo_key_ = kInvalidKey;
}

namespace {

/** Serialize an audit log (unordered) in sorted key order. */
void
saveAuditLog(snap::Writer &w,
             const std::unordered_map<std::uint64_t, std::uint64_t> &m)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries(
        m.begin(), m.end());
    std::sort(entries.begin(), entries.end());
    w.u64(entries.size());
    for (const auto &[key, epoch] : entries) {
        w.u64(key);
        w.u64(epoch);
    }
}

void
loadAuditLog(snap::Reader &r,
             std::unordered_map<std::uint64_t, std::uint64_t> &m)
{
    m.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t key = r.u64();
        m[key] = r.u64();
    }
}

} // namespace

void
TlbModel::save(snap::Writer &w) const
{
    w.f64(cfg_.nestedWalkFactor);
    l1_4k_.save(w);
    l1_2m_.save(w);
    l2_.save(w);
    pwc_pde_.save(w);
    pwc_pdpte_.save(w);
    pt_residency_.save(w);
    counters_.save(w);
    saveAuditLog(w, audit_2m_);
    saveAuditLog(w, audit_4k_);
}

void
TlbModel::load(snap::Reader &r)
{
    cfg_.nestedWalkFactor = r.f64();
    l1_4k_.load(r);
    l1_2m_.load(r);
    l2_.load(r);
    pwc_pde_.load(r);
    pwc_pdpte_.load(r);
    pt_residency_.load(r);
    counters_.load(r);
    loadAuditLog(r, audit_2m_);
    loadAuditLog(r, audit_4k_);
}

} // namespace hawksim::tlb
