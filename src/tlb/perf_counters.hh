/**
 * @file
 * Simulated hardware performance counters.
 *
 * Implements the measurement methodology of the paper's Table 4:
 *
 *   C1 = DTLB_LOAD_MISSES_WALK_DURATION
 *   C2 = DTLB_STORE_MISSES_WALK_DURATION
 *   C3 = CPU_CLK_UNHALTED
 *   MMU overhead (%) = (C1 + C2) * 100 / C3
 *
 * HawkEye-PMU reads these counters per process; HawkEye-G must do
 * without them (§2.4).
 */

#ifndef HAWKSIM_TLB_PERF_COUNTERS_HH
#define HAWKSIM_TLB_PERF_COUNTERS_HH

#include <cstdint>

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::tlb {

struct PerfCounters
{
    /** C1: cycles spent in page walks triggered by load misses. */
    std::uint64_t dtlbLoadWalkCycles = 0;
    /** C2: cycles spent in page walks triggered by store misses. */
    std::uint64_t dtlbStoreWalkCycles = 0;
    /** C3: unhalted CPU cycles. */
    std::uint64_t cpuClkUnhalted = 0;
    /** Auxiliary (not part of the Table 4 formula). */
    std::uint64_t tlbAccesses = 0;
    std::uint64_t tlbMisses = 0;

    std::uint64_t
    walkCycles() const
    {
        return dtlbLoadWalkCycles + dtlbStoreWalkCycles;
    }

    /** The Table 4 formula. Returns percent in [0, 100]. */
    double
    mmuOverheadPct() const
    {
        if (cpuClkUnhalted == 0)
            return 0.0;
        double pct = 100.0 * static_cast<double>(walkCycles()) /
                     static_cast<double>(cpuClkUnhalted);
        return pct > 100.0 ? 100.0 : pct;
    }

    double
    missRate() const
    {
        return tlbAccesses
                   ? static_cast<double>(tlbMisses) / tlbAccesses
                   : 0.0;
    }

    /** Counter values accumulated since @p prev (window sampling). */
    PerfCounters
    since(const PerfCounters &prev) const
    {
        PerfCounters d;
        d.dtlbLoadWalkCycles = dtlbLoadWalkCycles - prev.dtlbLoadWalkCycles;
        d.dtlbStoreWalkCycles =
            dtlbStoreWalkCycles - prev.dtlbStoreWalkCycles;
        d.cpuClkUnhalted = cpuClkUnhalted - prev.cpuClkUnhalted;
        d.tlbAccesses = tlbAccesses - prev.tlbAccesses;
        d.tlbMisses = tlbMisses - prev.tlbMisses;
        return d;
    }

    void
    reset()
    {
        *this = PerfCounters{};
    }

    void save(snap::Writer &w) const; //!< defined in tlb.cc
    void load(snap::Reader &r);
};

} // namespace hawksim::tlb

#endif // HAWKSIM_TLB_PERF_COUNTERS_HH
