#include "base/logging.hh"

#include <exception>

namespace hawksim {

namespace {
bool quiet_flag = false;
} // namespace

void setLogQuiet(bool quiet) { quiet_flag = quiet; }
bool logQuiet() { return quiet_flag; }

namespace detail {

/**
 * Exception thrown by panic so that death tests and callers that want
 * to recover (none in-tree) see a typed failure before abort.
 */
void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet_flag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet_flag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace hawksim
