/**
 * @file
 * Collision-free packing of a (pid, page/region index) pair into one
 * 64-bit map key.
 *
 * Several subsystems index per-process page state in flat hash maps
 * (swap marks, FreeBSD reservations, bloat-recovery scan sets). The
 * historical idiom `(uint64(pid) << 40) ^ vpn` let a large index
 * alias another pid's entry: any vpn with bits above bit 39 XORs
 * into the pid field. pageKey() packs instead of mixing — pid in the
 * high 16 bits, the 48-bit index below it — so distinct inputs can
 * never collide.
 */

#ifndef HAWKSIM_BASE_PAGE_KEY_HH
#define HAWKSIM_BASE_PAGE_KEY_HH

#include <cstdint>

#include "base/logging.hh"

namespace hawksim {

/** Number of low bits reserved for the page/region index. */
constexpr unsigned kPageKeyIndexBits = 48;
/** Mask of the index field. */
constexpr std::uint64_t kPageKeyIndexMask =
    (1ull << kPageKeyIndexBits) - 1;

/**
 * Pack @p pid and a page or huge-region index @p vpn into a unique
 * 64-bit key. x86-64 canonical user VAs give 48-bit vpns at most
 * (36 bits of page number + slack), and simulated pids are small
 * positive integers, so both asserts are invariants, not limits.
 */
inline std::uint64_t
pageKey(std::int32_t pid, std::uint64_t vpn)
{
    HS_ASSERT(pid >= 0 && pid < (1 << 16),
              "pageKey pid out of range: ", pid);
    HS_ASSERT((vpn & ~kPageKeyIndexMask) == 0,
              "pageKey index wider than 48 bits: ", vpn);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid))
            << kPageKeyIndexBits) |
           (vpn & kPageKeyIndexMask);
}

} // namespace hawksim

#endif // HAWKSIM_BASE_PAGE_KEY_HH
