/**
 * @file
 * Deterministic random-number utilities.
 *
 * All stochastic behaviour in the simulator flows through seeded Rng
 * instances so that every experiment is reproducible bit-for-bit.
 * The core generator is SplitMix64 feeding xoshiro256**, both public
 * domain algorithms, re-implemented here to avoid libstdc++
 * distribution variance across versions.
 */

#ifndef HAWKSIM_BASE_RNG_HH
#define HAWKSIM_BASE_RNG_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "base/logging.hh"

namespace hawksim {

/** A small, fast, seedable PRNG with convenience draws. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to fill the xoshiro state.
        std::uint64_t x = seed;
        for (auto &s : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value (xoshiro256**). */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        HS_ASSERT(bound > 0, "Rng::below(0)");
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        HS_ASSERT(lo <= hi, "Rng::range lo>hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Approximately Zipfian rank draw in [0, n) with exponent s,
     * using the inverse-CDF of a continuous power law. Good enough to
     * model skewed hot/cold page popularity.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s)
    {
        HS_ASSERT(n > 0, "Rng::zipf(0)");
        if (s <= 0.0)
            return below(n);
        const double u = uniform();
        const double one_minus_s = 1.0 - s;
        double v;
        if (std::fabs(one_minus_s) < 1e-9) {
            v = std::pow(static_cast<double>(n), u);
        } else {
            const double max_term =
                std::pow(static_cast<double>(n), one_minus_s);
            v = std::pow(u * (max_term - 1.0) + 1.0, 1.0 / one_minus_s);
        }
        auto idx = static_cast<std::uint64_t>(v) - 0;
        if (idx >= n)
            idx = n - 1;
        return idx;
    }

    /** Fork a child generator with a decorrelated seed. */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd2b74407b1ce6e93ull);
    }

    /**
     * @name Serialization (snapshot support)
     *
     * The full generator state, exposed explicitly so the snapshot
     * layer never has to poke at internals. A generator restored via
     * setState() continues the exact draw sequence of the source,
     * forks included.
     */
    /// @{
    std::array<std::uint64_t, 4>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; i++)
            state_[i] = s[i];
    }
    /// @}

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace hawksim

#endif // HAWKSIM_BASE_RNG_HH
