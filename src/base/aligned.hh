/**
 * @file
 * Cache-line-aligned storage for the data-oriented hot paths.
 *
 * The SoA frame table and TLB way arrays are scanned in tight loops;
 * aligning each column to a cache-line boundary keeps a way-group or
 * a run of per-frame bytes from straddling lines and lets the batched
 * loops prefetch whole lines meaningfully.
 */

#ifndef HAWKSIM_BASE_ALIGNED_HH
#define HAWKSIM_BASE_ALIGNED_HH

#include <cstddef>
#include <new>
#include <vector>

/**
 * Force-inline for the probe helpers that must flatten into their
 * caller's loop body — the optimizer's size heuristics give up
 * exactly where cursor state needs to stay in registers.
 */
#if defined(__GNUC__) || defined(__clang__)
#define HAWKSIM_ALWAYS_INLINE inline __attribute__((always_inline))
#define HAWKSIM_NOINLINE __attribute__((noinline))
#else
#define HAWKSIM_ALWAYS_INLINE inline
#define HAWKSIM_NOINLINE
#endif

namespace hawksim {

/** Size of one cache line; columns are aligned to this. */
inline constexpr std::size_t kCacheLineBytes = 64;

/** Minimal std::allocator substitute with cache-line alignment. */
template <class T>
struct CacheAlignedAllocator
{
    using value_type = T;

    CacheAlignedAllocator() = default;
    template <class U>
    CacheAlignedAllocator(const CacheAlignedAllocator<U> &)
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{kCacheLineBytes}));
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, std::align_val_t{kCacheLineBytes});
    }

    template <class U>
    bool
    operator==(const CacheAlignedAllocator<U> &) const
    {
        return true;
    }
    template <class U>
    bool
    operator!=(const CacheAlignedAllocator<U> &) const
    {
        return false;
    }
};

/** A std::vector whose storage starts on a cache-line boundary. */
template <class T>
using AlignedVec = std::vector<T, CacheAlignedAllocator<T>>;

/** Hint the hardware prefetcher at @p p (no-op where unsupported). */
inline void
prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
#endif
}

inline void
prefetchWrite(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
    (void)p;
#endif
}

} // namespace hawksim

#endif // HAWKSIM_BASE_ALIGNED_HH
