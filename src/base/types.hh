/**
 * @file
 * Fundamental integer types and page-size constants used across HawkSim.
 *
 * The simulator models an x86-64-like machine with 4KB base pages and
 * 2MB huge pages. Physical memory is addressed in 4KB frame numbers
 * (Pfn); virtual memory in byte addresses (Addr) or 4KB page numbers
 * (Vpn). Simulated time is kept in integer nanoseconds.
 */

#ifndef HAWKSIM_BASE_TYPES_HH
#define HAWKSIM_BASE_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace hawksim {

/** A virtual byte address. */
using Addr = std::uint64_t;
/** A virtual page number (Addr >> 12). */
using Vpn = std::uint64_t;
/** A physical frame number (4KB granularity). */
using Pfn = std::uint64_t;
/** CPU cycles. */
using Cycles = std::uint64_t;
/** Simulated time in nanoseconds. */
using TimeNs = std::int64_t;

/** Base (4KB) page geometry. */
constexpr std::uint64_t kPageShift = 12;
constexpr std::uint64_t kPageSize = 1ull << kPageShift;
/** Huge (2MB) page geometry. */
constexpr std::uint64_t kHugePageShift = 21;
constexpr std::uint64_t kHugePageSize = 1ull << kHugePageShift;
/** Number of base pages per huge page. */
constexpr std::uint64_t kPagesPerHuge = kHugePageSize / kPageSize;
/** Buddy order of a huge page (2^9 base pages). */
constexpr unsigned kHugePageOrder = 9;

/** Time unit helpers (all return nanoseconds). */
constexpr TimeNs nsec(std::int64_t v) { return v; }
constexpr TimeNs usec(std::int64_t v) { return v * 1000; }
constexpr TimeNs msec(std::int64_t v) { return v * 1000 * 1000; }
constexpr TimeNs sec(std::int64_t v) { return v * 1000 * 1000 * 1000; }

/** Size helpers. */
constexpr std::uint64_t KiB(std::uint64_t v) { return v << 10; }
constexpr std::uint64_t MiB(std::uint64_t v) { return v << 20; }
constexpr std::uint64_t GiB(std::uint64_t v) { return v << 30; }

/** Round an address down/up to a base-page boundary. */
constexpr Addr pageAlignDown(Addr a) { return a & ~(kPageSize - 1); }
constexpr Addr pageAlignUp(Addr a) { return pageAlignDown(a + kPageSize - 1); }
/** Round an address down/up to a huge-page boundary. */
constexpr Addr hugeAlignDown(Addr a) { return a & ~(kHugePageSize - 1); }
constexpr Addr
hugeAlignUp(Addr a)
{
    return hugeAlignDown(a + kHugePageSize - 1);
}

/** Convert between byte addresses and page numbers. */
constexpr Vpn addrToVpn(Addr a) { return a >> kPageShift; }
constexpr Addr vpnToAddr(Vpn v) { return v << kPageShift; }
/** Huge-page-region index of a virtual page. */
constexpr std::uint64_t vpnToHugeRegion(Vpn v) { return v >> 9; }

/** An invalid frame number sentinel. */
constexpr Pfn kInvalidPfn = ~0ull;

} // namespace hawksim

#endif // HAWKSIM_BASE_TYPES_HH
