/**
 * @file
 * Lightweight statistics primitives: exponential moving averages,
 * running summaries, fixed-bucket histograms and named time series.
 *
 * These are deliberately simple value types; daemons and models embed
 * them directly and experiments snapshot them into Metrics (sim/).
 */

#ifndef HAWKSIM_BASE_STATS_HH
#define HAWKSIM_BASE_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace hawksim {

/**
 * Exponential moving average. HawkEye uses EMAs of access coverage
 * samples (§3.3); alpha is the weight of the newest sample.
 */
class Ema
{
  public:
    explicit Ema(double alpha = 0.4) : alpha_(alpha) {}

    /** Feed one sample; returns the updated average. */
    double
    update(double sample)
    {
        if (!seeded_) {
            value_ = sample;
            seeded_ = true;
        } else {
            value_ = alpha_ * sample + (1.0 - alpha_) * value_;
        }
        return value_;
    }

    double value() const { return seeded_ ? value_ : 0.0; }
    bool seeded() const { return seeded_; }
    void reset() { seeded_ = false; value_ = 0.0; }

    /**
     * @name Batched-kernel access
     *
     * A column-oriented update loop (core/access_tracker's read
     * phase) gathers many EMAs into parallel value/alpha columns,
     * runs `alpha * sample + (1 - alpha) * value` across lanes, and
     * scatters the results back. These accessors expose exactly the
     * state that kernel needs; `store` is `update`'s post-state for
     * both the seeded and the seeding case (value assigned, seeded
     * set), so kernel and member update are state-identical.
     */
    /// @{
    double alpha() const { return alpha_; }
    /** `value_` regardless of seeding (the kernel's gather source). */
    double valueRaw() const { return value_; }
    void
    store(double v)
    {
        value_ = v;
        seeded_ = true;
    }
    /// @}

  private:
    double alpha_;
    double value_ = 0.0;
    bool seeded_ = false;
};

/** Running min/max/mean/count summary of a stream of doubles. */
class Summary
{
  public:
    void
    add(double v)
    {
        count_++;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minimum() const { return count_ ? min_ : 0.0; }
    double maximum() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width bucket histogram over [lo, hi); out-of-range clamps. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
        HS_ASSERT(hi > lo && buckets > 0, "bad histogram bounds");
    }

    void
    add(double v, std::uint64_t weight = 1)
    {
        double clamped = std::clamp(v, lo_, std::nextafter(hi_, lo_));
        auto idx = static_cast<std::size_t>((clamped - lo_) / (hi_ - lo_) *
                                            counts_.size());
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        counts_[idx] += weight;
        total_ += weight;
    }

    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t total() const { return total_; }

    /** Value below which fraction q of the weight lies (approximate). */
    double
    quantile(double q) const
    {
        if (total_ == 0)
            return lo_;
        const double target = q * static_cast<double>(total_);
        double cum = 0.0;
        for (std::size_t i = 0; i < counts_.size(); i++) {
            cum += static_cast<double>(counts_[i]);
            if (cum >= target) {
                const double width = (hi_ - lo_) / counts_.size();
                return lo_ + width * (static_cast<double>(i) + 0.5);
            }
        }
        return hi_;
    }

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** One (time, value) sample of a recorded series. */
struct SeriesPoint
{
    TimeNs time;
    double value;
};

/** A named time series of simulation samples. */
class TimeSeries
{
  public:
    explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

    void record(TimeNs t, double v) { points_.push_back({t, v}); }
    const std::vector<SeriesPoint> &points() const { return points_; }
    const std::string &name() const { return name_; }
    bool empty() const { return points_.empty(); }

    double
    last() const
    {
        return points_.empty() ? 0.0 : points_.back().value;
    }

    /** Maximum recorded value (0 when empty). */
    double
    peak() const
    {
        double m = 0.0;
        for (const auto &p : points_)
            m = std::max(m, p.value);
        return m;
    }

  private:
    std::string name_;
    std::vector<SeriesPoint> points_;
};

} // namespace hawksim

#endif // HAWKSIM_BASE_STATS_HH
