/**
 * @file
 * SIMD feature gate for the data-oriented hot paths.
 *
 * `HAWKSIM_SIMD_SSE2` is 1 when explicit SSE2 kernels should be used
 * and 0 otherwise. Every SIMD kernel in the tree has a scalar
 * fallback that produces bit-identical results — integer kernels
 * trivially, floating-point kernels because the build uses no FMA
 * contraction (no -march flags) and SSE2 mul/add are the same IEEE
 * ops as their scalar forms. CI builds both variants and compares
 * reports byte-for-byte.
 *
 * The `HAWKSIM_NO_SIMD` CMake option (-DHAWKSIM_NO_SIMD) forces the
 * scalar fallbacks everywhere.
 */

#ifndef HAWKSIM_BASE_SIMD_HH
#define HAWKSIM_BASE_SIMD_HH

#if defined(__SSE2__) && !defined(HAWKSIM_NO_SIMD)
#define HAWKSIM_SIMD_SSE2 1
#include <emmintrin.h>
#else
#define HAWKSIM_SIMD_SSE2 0
#endif

#endif // HAWKSIM_BASE_SIMD_HH
