/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the simulation cannot continue due to a user/config error;
 *            exits with status 1.
 * warn()   — something questionable happened but simulation continues.
 * inform() — status message for the user.
 */

#ifndef HAWKSIM_BASE_LOGGING_HH
#define HAWKSIM_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace hawksim {

namespace detail {

/** Build a message string from any streamable parts. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Toggle for warn()/inform() output (tests silence it). */
void setLogQuiet(bool quiet);
bool logQuiet();

#define HS_PANIC(...)                                                        \
    ::hawksim::detail::panicImpl(__FILE__, __LINE__,                         \
                                 ::hawksim::detail::concat(__VA_ARGS__))

#define HS_FATAL(...)                                                        \
    ::hawksim::detail::fatalImpl(__FILE__, __LINE__,                         \
                                 ::hawksim::detail::concat(__VA_ARGS__))

#define HS_WARN(...)                                                         \
    ::hawksim::detail::warnImpl(::hawksim::detail::concat(__VA_ARGS__))

#define HS_INFORM(...)                                                       \
    ::hawksim::detail::informImpl(::hawksim::detail::concat(__VA_ARGS__))

/** Panic unless a simulator invariant holds. */
#define HS_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            HS_PANIC("assertion failed: " #cond " ",                        \
                     ::hawksim::detail::concat(__VA_ARGS__));                \
        }                                                                    \
    } while (0)

} // namespace hawksim

#endif // HAWKSIM_BASE_LOGGING_HH
