/**
 * @file
 * Umbrella header: the HawkSim public API.
 *
 * Typical use:
 * @code
 *   using namespace hawksim;
 *   sim::SystemConfig cfg;
 *   cfg.memoryBytes = GiB(4);
 *   sim::System sys(cfg);
 *   sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
 *   auto &p = sys.addProcess("graph",
 *       workload::makeGraph500(sys.rng().fork()));
 *   sys.runUntilAllDone(sec(600));
 *   std::cout << p.mmuOverheadPct() << "\n";
 * @endcode
 */

#ifndef HAWKSIM_HAWKSIM_HH
#define HAWKSIM_HAWKSIM_HH

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "core/access_map.hh"
#include "core/access_tracker.hh"
#include "core/bloat_recovery.hh"
#include "core/hawkeye.hh"
#include "core/prezero.hh"
#include "fault/audit.hh"
#include "fault/fault.hh"
#include "mem/buddy.hh"
#include "mem/compaction.hh"
#include "mem/phys.hh"
#include "mem/swap.hh"
#include "obs/cost_account.hh"
#include "obs/introspect.hh"
#include "obs/perfetto.hh"
#include "obs/probe.hh"
#include "obs/trace.hh"
#include "obs/vmstat.hh"
#include "policy/common.hh"
#include "policy/freebsd.hh"
#include "policy/ingens.hh"
#include "policy/linux_thp.hh"
#include "policy/policy.hh"
#include "sim/metrics.hh"
#include "sim/process.hh"
#include "sim/system.hh"
#include "tlb/tlb.hh"
#include "vm/address_space.hh"
#include "workload/kvstore.hh"
#include "workload/linear_touch.hh"
#include "workload/presets.hh"
#include "workload/stream.hh"

#endif // HAWKSIM_HAWKSIM_HH
