/**
 * @file
 * Serialization helpers for base-layer value types that appear in
 * many snapshot sections (RNG streams, EMAs). Class-specific state
 * lives in each class's own `save(snap::Writer&)/load(snap::Reader&)`
 * pair; these helpers only cover the shared leaves.
 */

#ifndef HAWKSIM_SNAP_STATE_HH
#define HAWKSIM_SNAP_STATE_HH

#include <array>

#include "base/rng.hh"
#include "base/stats.hh"
#include "snap/snap.hh"

namespace hawksim::snap {

inline void
saveRng(Writer &w, const Rng &rng)
{
    for (std::uint64_t word : rng.state())
        w.u64(word);
}

inline void
loadRng(Reader &r, Rng &rng)
{
    std::array<std::uint64_t, 4> s;
    for (std::uint64_t &word : s)
        word = r.u64();
    rng.setState(s);
}

/**
 * An Ema round-trips through its public interface: an unseeded EMA
 * always holds value 0, and update() on an unseeded EMA adopts the
 * sample verbatim, so (seeded, value) reproduces the exact state.
 */
inline void
saveEma(Writer &w, const Ema &e)
{
    w.b(e.seeded());
    w.f64(e.value());
}

inline void
loadEma(Reader &r, Ema &e)
{
    const bool seeded = r.b();
    const double value = r.f64();
    e.reset();
    if (seeded)
        e.update(value);
}

} // namespace hawksim::snap

#endif // HAWKSIM_SNAP_STATE_HH
