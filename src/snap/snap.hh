/**
 * @file
 * `hawksim-snap/v1`: versioned, canonical, endian-stable binary
 * snapshots of a running simulation.
 *
 * A snapshot is a byte string with this layout:
 *
 *   magic   8 bytes    "HWKSNAP1"
 *   version u32        format version (1)
 *   schema  string     "hawksim-snap/v1"
 *   sections ...       framed sections until end of buffer
 *
 * Each section is framed as
 *
 *   tag     4 bytes    ASCII section identifier (e.g. "SYS ")
 *   length  u64        payload byte count
 *   crc     u32        CRC-32 (IEEE) of the payload bytes
 *   payload length bytes
 *
 * so a reader can verify, skip or apply any section independently.
 * "Fork where legal" restores (e.g. warm-starting a different policy
 * from a checkpointed image) skip the sections that no longer apply;
 * resume restores consume every section.
 *
 * Canonical encoding rules — these are what make save -> load -> save
 * bit-equal, which `fault::Auditor` enforces as the
 * `snapshot-roundtrip` violation class:
 *
 *   - every multi-byte integer is little-endian, written bytewise
 *     (host endianness never leaks into the image);
 *   - doubles are bit-cast to u64 (exact bits, no text round-trip);
 *   - bools are one byte, 0 or 1;
 *   - strings are u64 length + raw bytes;
 *   - unordered containers are serialized in sorted key order;
 *   - ordered containers keep their iteration order.
 *
 * Version rules: the schema string and `kSnapVersion` move together.
 * Additive evolution appends new sections (old readers must treat an
 * unknown trailing section as fatal, not silently skip it — snapshots
 * are exact-state carriers, not best-effort hints); any change to an
 * existing section's payload is a new major version with a new magic
 * suffix.
 */

#ifndef HAWKSIM_SNAP_SNAP_HH
#define HAWKSIM_SNAP_SNAP_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace hawksim::snap {

inline constexpr const char *kSnapMagic = "HWKSNAP1"; //!< 8 bytes
inline constexpr const char *kSnapSchema = "hawksim-snap/v1";
inline constexpr std::uint32_t kSnapVersion = 1;

/** CRC-32 (IEEE 802.3, reflected) over @p n bytes. */
std::uint32_t crc32(const void *data, std::size_t n);

/** Harness/CLI knobs for checkpoint, restore and replay. */
struct SnapConfig
{
    /** Emit a checkpoint every N ticks (0 = off). */
    std::uint64_t checkpointEvery = 0;
    /**
     * Checkpoint path prefix; files are written as
     * `<prefix>-tick<N>.snap`. The runner derives a per-grid-point
     * prefix from `--checkpoint-out DIR`.
     */
    std::string checkpointPrefix;
    /** Snapshot file applied at the start of the first tick. */
    std::string restorePath;
    /** Stop run loops once this tick is reached (0 = run to end). */
    std::uint64_t replayToTick = 0;

    bool
    checkpointing() const
    {
        return checkpointEvery > 0 && !checkpointPrefix.empty();
    }
    bool restoring() const { return !restorePath.empty(); }
    bool
    any() const
    {
        return checkpointing() || restoring() || replayToTick > 0;
    }
};

/**
 * Serializer producing canonical `hawksim-snap/v1` bytes. The header
 * is emitted on construction; every value must be written inside a
 * beginSection()/endSection() pair.
 */
class Writer
{
  public:
    Writer();

    /** Open a section; @p tag must be exactly 4 ASCII bytes. */
    void beginSection(const char *tag);
    /** Close the open section: frames and CRCs the payload. */
    void endSection();

    void
    u8(std::uint8_t v)
    {
        cur_.push_back(static_cast<char>(v));
    }
    void b(bool v) { u8(v ? 1 : 0); }
    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }
    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }
    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void str(const std::string &s);

    /** Finished image; fatal if a section is still open. */
    const std::string &bytes() const;

  private:
    std::string out_;
    std::string cur_; //!< payload of the open section
    char tag_[4] = {};
    bool in_section_ = false;
};

/**
 * Deserializer for `hawksim-snap/v1` bytes. Verifies the header on
 * construction and each section's tag + CRC on open. Any structural
 * problem (bad magic, wrong schema, CRC mismatch, truncated payload,
 * over-read, unconsumed payload at endSection) is fatal: a snapshot
 * is an exact-state carrier and partial application would silently
 * diverge from the checkpointed run.
 */
class Reader
{
  public:
    explicit Reader(std::string bytes);

    /** Tag of the next section, or "" at end of image. */
    std::string peekTag() const;
    bool atEnd() const { return pos_ >= buf_.size() && !in_section_; }

    /** Open the next section; fatal unless its tag is @p tag. */
    void openSection(const char *tag);
    /** Open the next section iff its tag matches; else leave it. */
    bool tryOpenSection(const char *tag);
    /** Skip the next section wholesale (still CRC-verified). */
    void skipSection();
    /** Close the open section; fatal if payload bytes remain. */
    void endSection();

    std::uint8_t u8();
    bool
    b()
    {
        const std::uint8_t v = u8();
        return v != 0;
    }
    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo |
                                          (std::uint16_t{u8()} << 8));
    }
    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (std::uint32_t{u16()} << 16);
    }
    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (std::uint64_t{u32()} << 32);
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }
    std::string str();

  private:
    /** Verify the frame at pos_; returns payload offset + length. */
    void frameAt(std::size_t pos, std::size_t *payload,
                 std::size_t *len) const;

    std::string buf_;
    std::size_t pos_ = 0;     //!< next unread byte
    std::size_t sec_end_ = 0; //!< one past the open section's payload
    bool in_section_ = false;
};

/** Write @p bytes to @p path, creating parent directories. Fatal on
 *  I/O failure. */
void writeFileOrDie(const std::string &path, const std::string &bytes);
/** Read a whole file; fatal if it cannot be opened or read. */
std::string readFileOrDie(const std::string &path);

} // namespace hawksim::snap

#endif // HAWKSIM_SNAP_SNAP_HH
