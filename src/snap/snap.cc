#include "snap/snap.hh"

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "base/logging.hh"

namespace hawksim::snap {

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; i++) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; i++)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------- Writer

Writer::Writer()
{
    out_.append(kSnapMagic, 8);
    // Header integers share the canonical little-endian encoding but
    // live outside any section; emit them via a scratch swap.
    std::string scratch;
    cur_.swap(scratch);
    u32(kSnapVersion);
    str(kSnapSchema);
    out_.append(cur_);
    cur_.swap(scratch);
    cur_.clear();
}

void
Writer::beginSection(const char *tag)
{
    HS_ASSERT(!in_section_, "snap::Writer: nested section ", tag);
    HS_ASSERT(tag != nullptr && std::strlen(tag) == 4,
              "snap::Writer: section tags are exactly 4 bytes");
    std::memcpy(tag_, tag, 4);
    cur_.clear();
    in_section_ = true;
}

void
Writer::endSection()
{
    HS_ASSERT(in_section_, "snap::Writer: endSection with none open");
    in_section_ = false;
    std::string payload;
    payload.swap(cur_);
    out_.append(tag_, 4);
    u64(payload.size());
    u32(crc32(payload.data(), payload.size()));
    out_.append(cur_);
    cur_.clear();
    out_.append(payload);
}

void
Writer::str(const std::string &s)
{
    u64(s.size());
    cur_.append(s);
}

const std::string &
Writer::bytes() const
{
    HS_ASSERT(!in_section_,
              "snap::Writer: bytes() with an open section");
    return out_;
}

// ---------------------------------------------------------------- Reader

Reader::Reader(std::string bytes) : buf_(std::move(bytes))
{
    HS_ASSERT(buf_.size() >= 8 &&
                  std::memcmp(buf_.data(), kSnapMagic, 8) == 0,
              "snapshot: bad magic (not a hawksim-snap file)");
    pos_ = 8;
    // Header fields are read with the section readers; fake an open
    // "section" spanning the whole buffer so bounds checks work.
    in_section_ = true;
    sec_end_ = buf_.size();
    const std::uint32_t version = u32();
    HS_ASSERT(version == kSnapVersion, "snapshot: format version ",
              version, ", this build reads ", kSnapVersion);
    const std::string schema = str();
    HS_ASSERT(schema == kSnapSchema, "snapshot: schema \"", schema,
              "\", this build reads \"", kSnapSchema, "\"");
    in_section_ = false;
    sec_end_ = 0;
}

void
Reader::frameAt(std::size_t pos, std::size_t *payload,
                std::size_t *len) const
{
    HS_ASSERT(pos + 16 <= buf_.size(),
              "snapshot: truncated section frame");
    std::uint64_t n = 0;
    for (int i = 0; i < 8; i++)
        n |= std::uint64_t{
                 static_cast<unsigned char>(buf_[pos + 4 + i])}
             << (8 * i);
    std::uint32_t crc = 0;
    for (int i = 0; i < 4; i++)
        crc |= std::uint32_t{
                   static_cast<unsigned char>(buf_[pos + 12 + i])}
               << (8 * i);
    HS_ASSERT(pos + 16 + n <= buf_.size(),
              "snapshot: truncated section payload");
    HS_ASSERT(crc32(buf_.data() + pos + 16, n) == crc,
              "snapshot: CRC mismatch in section \"",
              buf_.substr(pos, 4), "\"");
    *payload = pos + 16;
    *len = n;
}

std::string
Reader::peekTag() const
{
    HS_ASSERT(!in_section_, "snap::Reader: peekTag inside a section");
    if (pos_ >= buf_.size())
        return "";
    HS_ASSERT(pos_ + 4 <= buf_.size(),
              "snapshot: truncated section tag");
    return buf_.substr(pos_, 4);
}

void
Reader::openSection(const char *tag)
{
    const std::string next = peekTag();
    HS_ASSERT(next == tag, "snapshot: expected section \"", tag,
              "\", found \"", next, "\"");
    std::size_t payload = 0, len = 0;
    frameAt(pos_, &payload, &len);
    pos_ = payload;
    sec_end_ = payload + len;
    in_section_ = true;
}

bool
Reader::tryOpenSection(const char *tag)
{
    if (peekTag() != tag)
        return false;
    openSection(tag);
    return true;
}

void
Reader::skipSection()
{
    HS_ASSERT(!in_section_,
              "snap::Reader: skipSection inside a section");
    HS_ASSERT(pos_ < buf_.size(), "snapshot: skip past end");
    std::size_t payload = 0, len = 0;
    frameAt(pos_, &payload, &len);
    pos_ = payload + len;
}

void
Reader::endSection()
{
    HS_ASSERT(in_section_,
              "snap::Reader: endSection with none open");
    HS_ASSERT(pos_ == sec_end_, "snapshot: ", sec_end_ - pos_,
              " unconsumed payload bytes at endSection");
    in_section_ = false;
    sec_end_ = 0;
}

std::uint8_t
Reader::u8()
{
    HS_ASSERT(in_section_ && pos_ < sec_end_,
              "snapshot: read past section payload");
    return static_cast<unsigned char>(buf_[pos_++]);
}

std::string
Reader::str()
{
    const std::uint64_t n = u64();
    HS_ASSERT(pos_ + n <= sec_end_,
              "snapshot: string exceeds section payload");
    std::string s = buf_.substr(pos_, n);
    pos_ += n;
    return s;
}

// ------------------------------------------------------------------ I/O

void
writeFileOrDie(const std::string &path, const std::string &bytes)
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    HS_ASSERT(out.good(), "snapshot: cannot open ", path,
              " for writing");
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    HS_ASSERT(out.good(), "snapshot: short write to ", path);
}

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    HS_ASSERT(in.good(), "snapshot: cannot open ", path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    HS_ASSERT(!in.bad(), "snapshot: read error on ", path);
    return bytes;
}

} // namespace hawksim::snap
