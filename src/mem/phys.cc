#include "mem/phys.hh"

#include "base/logging.hh"
#include "snap/snap.hh"

namespace hawksim::mem {

PhysicalMemory::PhysicalMemory(std::uint64_t bytes, bool initially_zeroed)
    : frames_(bytes / kPageSize), buddy_(bytes / kPageSize,
                                         initially_zeroed)
{
    HS_ASSERT(bytes >= kHugePageSize,
              "physical memory too small: ", bytes);
    if (initially_zeroed) {
        for (auto &f : frames_)
            f.set(kFrameZeroed);
    }
    // Reserve the canonical zero page: a shared, unmovable, zero-filled
    // frame that zero-dedup points page tables at.
    auto blk = allocBlock(0, kKernelOwner, ZeroPref::kPreferZero);
    HS_ASSERT(blk.has_value(), "cannot reserve canonical zero page");
    zero_page_pfn_ = blk->pfn;
    Frame &zf = frame(zero_page_pfn_);
    zf.set(kFrameUnmovable);
    zf.set(kFrameShared);
    zf.set(kFrameZeroed);
    zf.content = PageContent::zero();
}

std::optional<BuddyBlock>
PhysicalMemory::allocBlock(unsigned order, std::int32_t owner,
                           ZeroPref pref)
{
    auto blk = buddy_.alloc(order, pref);
    if (!blk)
        return std::nullopt;
    for (Pfn p = blk->pfn; p < blk->pfn + blk->pages(); p++) {
        Frame &f = frames_[p];
        f.flags = blk->zeroed ? kFrameZeroed : 0;
        f.ownerPid = owner;
        f.mapCount = 0;
        f.content = blk->zeroed ? PageContent::zero() : f.content;
        f.rmapVpn = 0;
    }
    if (observer_)
        observer_(blk->pfn, blk->order, true);
    return blk;
}

std::optional<BuddyBlock>
PhysicalMemory::allocSpecificFrame(Pfn pfn, std::int32_t owner)
{
    auto blk = buddy_.allocSpecific(pfn);
    if (!blk)
        return std::nullopt;
    Frame &f = frames_[pfn];
    f.flags = blk->zeroed ? kFrameZeroed : 0;
    f.ownerPid = owner;
    f.mapCount = 0;
    f.rmapVpn = 0;
    if (observer_)
        observer_(blk->pfn, blk->order, true);
    return blk;
}

void
PhysicalMemory::freeBlock(Pfn pfn, unsigned order)
{
    const Pfn end = pfn + (1ull << order);
    HS_ASSERT(end <= totalFrames(), "freeBlock out of range");
    if (observer_)
        observer_(pfn, order, false);
    // Return maximal runs of same zero-ness; the buddy re-coalesces.
    Pfn run_start = pfn;
    bool run_zero = frames_[pfn].isZeroed() && frames_[pfn].content.isZero();
    for (Pfn p = pfn; p < end; p++) {
        Frame &f = frames_[p];
        HS_ASSERT(!f.isFree(), "double free of frame ", p);
        HS_ASSERT(f.mapCount == 0, "freeing mapped frame ", p,
                  " owner=", f.ownerPid, " mapCount=", f.mapCount,
                  " flags=", static_cast<int>(f.flags),
                  " rmapVpn=", f.rmapVpn, " blockStart=", pfn,
                  " order=", order);
        const bool z = f.isZeroed() && f.content.isZero();
        if (z != run_zero) {
            for (Pfn q = run_start; q < p; q++) {
                frames_[q].flags = kFrameFree;
                frames_[q].ownerPid = -1;
            }
            // Free the finished run frame-by-frame; buddy coalesces.
            for (Pfn q = run_start; q < p; q++)
                buddy_.free(q, 0, run_zero);
            run_start = p;
            run_zero = z;
        }
    }
    for (Pfn q = run_start; q < end; q++) {
        frames_[q].flags = kFrameFree;
        frames_[q].ownerPid = -1;
    }
    if (run_start == pfn) {
        // Homogeneous block: free it whole (fast path).
        buddy_.free(pfn, order, run_zero);
    } else {
        for (Pfn q = run_start; q < end; q++)
            buddy_.free(q, 0, run_zero);
    }
}

void
PhysicalMemory::writeFrame(Pfn pfn, const PageContent &content)
{
    Frame &f = frames_.at(pfn);
    HS_ASSERT(!f.isFree(), "write to free frame ", pfn);
    f.content = content;
    if (!content.isZero())
        f.clear(kFrameZeroed);
    else
        f.set(kFrameZeroed);
}

void
PhysicalMemory::zeroFrame(Pfn pfn)
{
    Frame &f = frames_.at(pfn);
    f.content = PageContent::zero();
    f.set(kFrameZeroed);
}

void
PhysicalMemory::onMap(Pfn pfn, std::int32_t pid, Vpn vpn)
{
    Frame &f = frames_.at(pfn);
    HS_ASSERT(!f.isFree(), "mapping free frame ", pfn);
    f.mapCount++;
    if (f.mapCount == 1 && !f.isShared()) {
        f.ownerPid = pid;
        f.rmapVpn = vpn;
    }
}

void
PhysicalMemory::onUnmap(Pfn pfn)
{
    Frame &f = frames_.at(pfn);
    HS_ASSERT(f.mapCount > 0, "unmap of unmapped frame ", pfn);
    f.mapCount--;
}

namespace {

bool
sameFrame(const Frame &a, const Frame &b)
{
    return a.flags == b.flags && a.ownerPid == b.ownerPid &&
           a.mapCount == b.mapCount && a.content == b.content &&
           a.rmapVpn == b.rmapVpn;
}

} // namespace

void
PhysicalMemory::save(snap::Writer &w) const
{
    w.u64(frames_.size());
    w.u64(zero_page_pfn_);
    // Greedy maximal runs: deterministic, and collapses the huge
    // stretches of identical free/boot frames.
    std::uint64_t runs = 0;
    for (std::size_t i = 0; i < frames_.size();) {
        std::size_t j = i + 1;
        while (j < frames_.size() && sameFrame(frames_[j], frames_[i]))
            j++;
        runs++;
        i = j;
    }
    w.u64(runs);
    for (std::size_t i = 0; i < frames_.size();) {
        std::size_t j = i + 1;
        while (j < frames_.size() && sameFrame(frames_[j], frames_[i]))
            j++;
        const Frame &f = frames_[i];
        w.u64(j - i);
        w.u8(f.flags);
        w.i32(f.ownerPid);
        w.u64(f.mapCount);
        f.content.save(w);
        w.u64(f.rmapVpn);
        i = j;
    }
}

void
PhysicalMemory::load(snap::Reader &r)
{
    const std::uint64_t total = r.u64();
    HS_ASSERT(total == frames_.size(),
              "snapshot: frame count ", total, " != configured ",
              frames_.size());
    const Pfn zp = r.u64();
    HS_ASSERT(zp == zero_page_pfn_,
              "snapshot: zero-page pfn mismatch");
    const std::uint64_t runs = r.u64();
    std::size_t at = 0;
    for (std::uint64_t run = 0; run < runs; run++) {
        const std::uint64_t count = r.u64();
        Frame f;
        f.flags = r.u8();
        f.ownerPid = r.i32();
        f.mapCount = r.u64();
        f.content.load(r);
        f.rmapVpn = r.u64();
        HS_ASSERT(at + count <= frames_.size(),
                  "snapshot: frame runs exceed frame table");
        for (std::uint64_t k = 0; k < count; k++)
            frames_[at++] = f;
    }
    HS_ASSERT(at == frames_.size(),
              "snapshot: frame runs cover ", at, " of ",
              frames_.size(), " frames");
}

} // namespace hawksim::mem
