#include "mem/phys.hh"

#include "base/logging.hh"
#include "snap/snap.hh"

namespace hawksim::mem {

PhysicalMemory::PhysicalMemory(std::uint64_t bytes, bool initially_zeroed)
    : frameCount_(bytes / kPageSize),
      flags_(frameCount_, initially_zeroed
                              ? static_cast<std::uint8_t>(kFrameFree |
                                                          kFrameZeroed)
                              : static_cast<std::uint8_t>(kFrameFree)),
      owner_(frameCount_, -1), map_count_(frameCount_, 0),
      content_(frameCount_, PageContent::zero()),
      rmap_vpn_(frameCount_, 0),
      buddy_(bytes / kPageSize, initially_zeroed)
{
    HS_ASSERT(bytes >= kHugePageSize,
              "physical memory too small: ", bytes);
    // Reserve the canonical zero page: a shared, unmovable, zero-filled
    // frame that zero-dedup points page tables at.
    auto blk = allocBlock(0, kKernelOwner, ZeroPref::kPreferZero);
    HS_ASSERT(blk.has_value(), "cannot reserve canonical zero page");
    zero_page_pfn_ = blk->pfn;
    FrameRef zf = frame(zero_page_pfn_);
    zf.set(kFrameUnmovable);
    zf.set(kFrameShared);
    zf.set(kFrameZeroed);
    zf.content = PageContent::zero();
}

std::optional<BuddyBlock>
PhysicalMemory::allocBlock(unsigned order, std::int32_t owner,
                           ZeroPref pref)
{
    auto blk = buddy_.alloc(order, pref);
    if (!blk)
        return std::nullopt;
    const std::uint8_t fl = blk->zeroed ? kFrameZeroed : 0;
    for (Pfn p = blk->pfn; p < blk->pfn + blk->pages(); p++) {
        flags_[p] = fl;
        owner_[p] = owner;
        map_count_[p] = 0;
        if (blk->zeroed)
            content_[p] = PageContent::zero();
        rmap_vpn_[p] = 0;
    }
    if (observer_)
        observer_(blk->pfn, blk->order, true);
    return blk;
}

std::optional<BuddyBlock>
PhysicalMemory::allocSpecificFrame(Pfn pfn, std::int32_t owner)
{
    auto blk = buddy_.allocSpecific(pfn);
    if (!blk)
        return std::nullopt;
    flags_[pfn] = blk->zeroed ? kFrameZeroed : 0;
    owner_[pfn] = owner;
    map_count_[pfn] = 0;
    rmap_vpn_[pfn] = 0;
    if (observer_)
        observer_(blk->pfn, blk->order, true);
    return blk;
}

void
PhysicalMemory::freeBlock(Pfn pfn, unsigned order)
{
    const Pfn end = pfn + (1ull << order);
    HS_ASSERT(end <= totalFrames(), "freeBlock out of range");
    if (observer_)
        observer_(pfn, order, false);
    // Return maximal runs of same zero-ness; the buddy re-coalesces.
    Pfn run_start = pfn;
    bool run_zero =
        (flags_[pfn] & kFrameZeroed) && content_[pfn].isZero();
    for (Pfn p = pfn; p < end; p++) {
        HS_ASSERT(!(flags_[p] & kFrameFree), "double free of frame ", p);
        HS_ASSERT(map_count_[p] == 0, "freeing mapped frame ", p,
                  " owner=", owner_[p], " mapCount=", map_count_[p],
                  " flags=", static_cast<int>(flags_[p]),
                  " rmapVpn=", rmap_vpn_[p], " blockStart=", pfn,
                  " order=", order);
        const bool z =
            (flags_[p] & kFrameZeroed) && content_[p].isZero();
        if (z != run_zero) {
            for (Pfn q = run_start; q < p; q++) {
                flags_[q] = kFrameFree;
                owner_[q] = -1;
            }
            // Free the finished run frame-by-frame; buddy coalesces.
            for (Pfn q = run_start; q < p; q++)
                buddy_.free(q, 0, run_zero);
            run_start = p;
            run_zero = z;
        }
    }
    for (Pfn q = run_start; q < end; q++) {
        flags_[q] = kFrameFree;
        owner_[q] = -1;
    }
    if (run_start == pfn) {
        // Homogeneous block: free it whole (fast path).
        buddy_.free(pfn, order, run_zero);
    } else {
        for (Pfn q = run_start; q < end; q++)
            buddy_.free(q, 0, run_zero);
    }
}

void
PhysicalMemory::writeFrame(Pfn pfn, const PageContent &content)
{
    HS_ASSERT(pfn < frameCount_, "write to pfn out of range: ", pfn);
    HS_ASSERT(!(flags_[pfn] & kFrameFree), "write to free frame ", pfn);
    content_[pfn] = content;
    if (!content.isZero())
        flags_[pfn] &= static_cast<std::uint8_t>(~kFrameZeroed);
    else
        flags_[pfn] |= kFrameZeroed;
}

void
PhysicalMemory::zeroFrame(Pfn pfn)
{
    HS_ASSERT(pfn < frameCount_, "zero of pfn out of range: ", pfn);
    content_[pfn] = PageContent::zero();
    flags_[pfn] |= kFrameZeroed;
}

void
PhysicalMemory::onMap(Pfn pfn, std::int32_t pid, Vpn vpn)
{
    HS_ASSERT(pfn < frameCount_, "map of pfn out of range: ", pfn);
    HS_ASSERT(!(flags_[pfn] & kFrameFree), "mapping free frame ", pfn);
    map_count_[pfn]++;
    if (map_count_[pfn] == 1 && !(flags_[pfn] & kFrameShared)) {
        owner_[pfn] = pid;
        rmap_vpn_[pfn] = vpn;
    }
}

void
PhysicalMemory::onUnmap(Pfn pfn)
{
    HS_ASSERT(pfn < frameCount_, "unmap of pfn out of range: ", pfn);
    HS_ASSERT(map_count_[pfn] > 0, "unmap of unmapped frame ", pfn);
    map_count_[pfn]--;
}

std::uint64_t
PhysicalMemory::countZeroBacked(Pfn pfn, std::uint64_t n) const
{
    HS_ASSERT(pfn + n <= frameCount_, "countZeroBacked out of range");
    std::uint64_t zero = 0;
    const PageContent *col = content_.data() + pfn;
    for (std::uint64_t i = 0; i < n; i++)
        zero += col[i].isZero() ? 1u : 0u;
    return zero;
}

void
PhysicalMemory::save(snap::Writer &w) const
{
    w.u64(frameCount_);
    w.u64(zero_page_pfn_);
    // Greedy maximal runs over the columns: deterministic, and
    // collapses the huge stretches of identical free/boot frames.
    std::uint64_t runs = 0;
    for (std::size_t i = 0; i < frameCount_;) {
        std::size_t j = i + 1;
        while (j < frameCount_ && sameRow(j, i))
            j++;
        runs++;
        i = j;
    }
    w.u64(runs);
    for (std::size_t i = 0; i < frameCount_;) {
        std::size_t j = i + 1;
        while (j < frameCount_ && sameRow(j, i))
            j++;
        w.u64(j - i);
        w.u8(flags_[i]);
        w.i32(owner_[i]);
        w.u64(map_count_[i]);
        content_[i].save(w);
        w.u64(rmap_vpn_[i]);
        i = j;
    }
}

void
PhysicalMemory::load(snap::Reader &r)
{
    const std::uint64_t total = r.u64();
    HS_ASSERT(total == frameCount_,
              "snapshot: frame count ", total, " != configured ",
              frameCount_);
    const Pfn zp = r.u64();
    HS_ASSERT(zp == zero_page_pfn_,
              "snapshot: zero-page pfn mismatch");
    const std::uint64_t runs = r.u64();
    std::size_t at = 0;
    for (std::uint64_t run = 0; run < runs; run++) {
        const std::uint64_t count = r.u64();
        Frame f;
        f.flags = r.u8();
        f.ownerPid = r.i32();
        f.mapCount = r.u64();
        f.content.load(r);
        f.rmapVpn = r.u64();
        HS_ASSERT(at + count <= frameCount_,
                  "snapshot: frame runs exceed frame table");
        for (std::uint64_t k = 0; k < count; k++) {
            flags_[at] = f.flags;
            owner_[at] = f.ownerPid;
            map_count_[at] = f.mapCount;
            content_[at] = f.content;
            rmap_vpn_[at] = f.rmapVpn;
            at++;
        }
    }
    HS_ASSERT(at == frameCount_,
              "snapshot: frame runs cover ", at, " of ",
              frameCount_, " frames");
}

} // namespace hawksim::mem
