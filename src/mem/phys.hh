/**
 * @file
 * Physical memory: the frame table plus the buddy allocator, with
 * ownership/reverse-map bookkeeping and the canonical zero page used
 * for zero-page deduplication (HawkEye §3.2).
 *
 * The frame table is stored as cache-aligned struct-of-arrays columns
 * (flags / ownerPid / mapCount / content / rmapVpn). Hot loops that
 * only need one attribute — the auditor's refcount sweep, the
 * introspection zero-backed counts, the snapshot RLE — iterate a
 * single column instead of striding over ~40-byte Frame records;
 * call sites that want the whole row go through the FrameRef facade.
 */

#ifndef HAWKSIM_MEM_PHYS_HH
#define HAWKSIM_MEM_PHYS_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "base/aligned.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "mem/buddy.hh"
#include "mem/frame.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::mem {

/** Owner id used for kernel-internal (fragmenter) allocations. */
constexpr std::int32_t kKernelOwner = -2;

class PhysicalMemory
{
  public:
    /**
     * @param bytes size of simulated physical memory (multiple of 4KB)
     * @param initially_zeroed whether boot memory starts pre-zeroed
     */
    explicit PhysicalMemory(std::uint64_t bytes,
                            bool initially_zeroed = true);

    /** @name Allocation */
    /// @{
    /**
     * Allocate 2^order frames for @p owner. Frame metadata is
     * initialized (owner set, free flag cleared). The returned block's
     * `zeroed` flag tells the caller whether a synchronous zeroing
     * cost must be charged.
     */
    std::optional<BuddyBlock> allocBlock(unsigned order,
                                         std::int32_t owner,
                                         ZeroPref pref);

    /** Allocate one specific frame (fragmenter support). */
    std::optional<BuddyBlock> allocSpecificFrame(Pfn pfn,
                                                 std::int32_t owner);

    /**
     * Free 2^order frames. Each frame's content decides which list it
     * returns to: never-written (still zero) frames go back to the
     * zero lists, dirtied frames to the non-zero lists. Blocks whose
     * frames disagree are split into maximal same-kind runs.
     */
    void freeBlock(Pfn pfn, unsigned order);
    /// @}

    /** @name Frame metadata */
    /// @{
    FrameRef
    frame(Pfn pfn)
    {
        HS_ASSERT(pfn < frameCount_, "frame pfn out of range: ", pfn);
        return FrameRef{flags_[pfn], owner_[pfn], map_count_[pfn],
                        content_[pfn], rmap_vpn_[pfn]};
    }
    ConstFrameRef
    frame(Pfn pfn) const
    {
        HS_ASSERT(pfn < frameCount_, "frame pfn out of range: ", pfn);
        return ConstFrameRef{flags_[pfn], owner_[pfn], map_count_[pfn],
                             content_[pfn], rmap_vpn_[pfn]};
    }

    /**
     * Record an application write to a frame: updates the content
     * descriptor and drops the zeroed flag when content is non-zero.
     */
    void writeFrame(Pfn pfn, const PageContent &content);

    /** Record the OS zero-filling a frame (content becomes zero). */
    void zeroFrame(Pfn pfn);

    /** Map/unmap bookkeeping (reverse map + map counts). */
    void onMap(Pfn pfn, std::int32_t pid, Vpn vpn);
    void onUnmap(Pfn pfn);
    /// @}

    /** @name Column access (audit/snapshot/introspection sweeps) */
    /// @{
    const std::uint8_t *flagsColumn() const { return flags_.data(); }
    const std::int32_t *ownerColumn() const { return owner_.data(); }
    const std::uint64_t *mapCountColumn() const
    {
        return map_count_.data();
    }
    const PageContent *contentColumn() const { return content_.data(); }
    const Vpn *rmapVpnColumn() const { return rmap_vpn_.data(); }

    /** Count zero-content frames in [pfn, pfn + n). */
    std::uint64_t countZeroBacked(Pfn pfn, std::uint64_t n) const;

    /** Prefetch the hot columns (flags + content) for @p pfn. */
    void
    prefetchFrame(Pfn pfn) const
    {
        if (pfn < frameCount_) {
            prefetchRead(&flags_[pfn]);
            prefetchWrite(&content_[pfn]);
        }
    }
    /// @}

    /** @name Introspection */
    /// @{
    std::uint64_t totalFrames() const { return frameCount_; }
    std::uint64_t freeFrames() const { return buddy_.freePages(); }
    std::uint64_t usedFrames() const
    {
        return totalFrames() - freeFrames();
    }
    /** Fraction of physical memory allocated, in [0, 1]. */
    double
    usedFraction() const
    {
        return static_cast<double>(usedFrames()) /
               static_cast<double>(totalFrames());
    }
    BuddyAllocator &buddy() { return buddy_; }
    const BuddyAllocator &buddy() const { return buddy_; }

    /** The canonical all-zero frame used by COW dedup. */
    Pfn zeroPagePfn() const { return zero_page_pfn_; }
    /// @}

    /**
     * Observer invoked on every allocation (alloc=true) and free
     * (alloc=false) with the block's start and order. Used by the
     * virtualization layer to mirror guest-physical allocations into
     * the host.
     */
    using AllocObserver =
        std::function<void(Pfn, unsigned order, bool alloc)>;
    void setAllocObserver(AllocObserver obs)
    {
        observer_ = std::move(obs);
    }

    /**
     * Frame table (run-length encoded — boot memory is massively
     * repetitive) and the zero-page pfn. The buddy allocator has its
     * own save/load pair; the observer is not serialized.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    /** True when rows @p a and @p b hold identical metadata. */
    bool
    sameRow(std::size_t a, std::size_t b) const
    {
        return flags_[a] == flags_[b] && owner_[a] == owner_[b] &&
               map_count_[a] == map_count_[b] &&
               content_[a] == content_[b] && rmap_vpn_[a] == rmap_vpn_[b];
    }

    std::uint64_t frameCount_ = 0;
    AlignedVec<std::uint8_t> flags_;
    AlignedVec<std::int32_t> owner_;
    AlignedVec<std::uint64_t> map_count_;
    AlignedVec<PageContent> content_;
    AlignedVec<Vpn> rmap_vpn_;
    BuddyAllocator buddy_;
    Pfn zero_page_pfn_ = kInvalidPfn;
    AllocObserver observer_;
};

} // namespace hawksim::mem

#endif // HAWKSIM_MEM_PHYS_HH
