/**
 * @file
 * Binary buddy allocator with split zero / non-zero free lists.
 *
 * This is the substrate both for ordinary OS page allocation and for
 * HawkEye's async pre-zeroing design (§3.1): free pages live on one of
 * two per-order lists. Pages released by applications enter the
 * non-zero lists; the AsyncZeroDaemon moves blocks to the zero lists
 * after zero-filling them; allocations state a preference so that
 * anonymous faults consume pre-zeroed memory while COW/file-backed
 * allocations consume non-zero memory first (avoiding wasted zeroing).
 *
 * It also exposes Gorman's free-memory fragmentation index (FMFI),
 * which the Ingens policy uses to switch between aggressive and
 * conservative promotion.
 */

#ifndef HAWKSIM_MEM_BUDDY_HH
#define HAWKSIM_MEM_BUDDY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>

#include "base/types.hh"
#include "fault/fault.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::mem {

/** Allocation preference between the two free-list families. */
enum class ZeroPref
{
    kPreferZero,    //!< anonymous faults: use pre-zeroed memory
    kPreferNonZero, //!< COW / file-backed: don't waste zeroed memory
    kAny,           //!< no preference (lowest order wins)
};

/** A contiguous power-of-two block of frames handed out by the buddy. */
struct BuddyBlock
{
    Pfn pfn = kInvalidPfn;
    unsigned order = 0;
    /** True when the block came off a zero list (already zero-filled). */
    bool zeroed = false;

    std::uint64_t pages() const { return 1ull << order; }
};

class BuddyAllocator
{
  public:
    static constexpr unsigned kMaxOrder = 10;

    /**
     * @param frames number of 4KB frames managed
     * @param initially_zeroed whether boot memory starts on zero lists
     */
    explicit BuddyAllocator(std::uint64_t frames,
                            bool initially_zeroed = true);

    /** Allocate a block of 2^order frames, honouring the preference. */
    std::optional<BuddyBlock> alloc(unsigned order, ZeroPref pref);

    /**
     * Allocate the specific frame @p pfn as an order-0 block (used by
     * the Fragmenter to pin chosen frames). Fails if not free.
     */
    std::optional<BuddyBlock> allocSpecific(Pfn pfn);

    /** Return a block to the allocator. @p zeroed: content is zero. */
    void free(Pfn pfn, unsigned order, bool zeroed);

    /**
     * Detach a non-zero free block (order <= max_order, largest first)
     * for the pre-zeroing daemon. The daemon re-inserts it with
     * free(pfn, order, true) once zeroed.
     */
    std::optional<BuddyBlock> takeNonZeroBlock(unsigned max_order);

    /** @name Introspection */
    /// @{
    std::uint64_t totalFrames() const { return frames_; }
    std::uint64_t freePages() const { return freePages_; }
    std::uint64_t freeZeroPages() const { return freeZeroPages_; }
    std::uint64_t freeNonZeroPages() const
    {
        return freePages_ - freeZeroPages_;
    }
    /** Number of free blocks of exactly this order. */
    std::uint64_t freeBlocks(unsigned order) const;
    /** Largest order with at least one free block; -1 if none. */
    int largestFreeOrder() const;
    /** Whether a block of this order can currently be allocated. */
    bool canAlloc(unsigned order) const
    {
        return largestFreeOrder() >= static_cast<int>(order);
    }
    /**
     * Gorman's free memory fragmentation index for @p order.
     * 0 means free memory is unfragmented w.r.t. this order,
     * values toward 1 mean free memory exists but only in fragments
     * smaller than the requested order.
     */
    double fragIndex(unsigned order) const;
    /** True if @p pfn is the start of a free block (test helper). */
    bool isFreeBlockStart(Pfn pfn) const
    {
        return blockInfo_.count(pfn) != 0;
    }
    /**
     * Enumerate every free block (start pfn, order, zeroed) in
     * ascending pfn order within each (order, zero-ness) list. The
     * fault::Auditor walks this to check disjointness/coalescing.
     */
    void forEachFreeBlock(
        const std::function<void(Pfn, unsigned, bool)> &fn) const;
    /// @}

    /** Validate internal consistency; panics on corruption (tests). */
    void checkConsistency() const;

    /** Install (or clear) the chaos fault injector. */
    void setFaultInjector(fault::FaultInjector *fi) { fault_ = fi; }

    /**
     * Free lists per (order, zero-ness); blockInfo_ and the page
     * counters are rebuilt from them on load and cross-checked
     * against the saved totals. The injector hook is not serialized.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    struct BlockInfo
    {
        unsigned order;
        bool zeroed;
    };

    using FreeList = std::set<Pfn>;

    FreeList &list(unsigned order, bool zeroed)
    {
        return zeroed ? freeZero_[order] : freeNonZero_[order];
    }
    const FreeList &list(unsigned order, bool zeroed) const
    {
        return zeroed ? freeZero_[order] : freeNonZero_[order];
    }

    /** Insert without attempting coalescing. */
    void insertBlock(Pfn pfn, unsigned order, bool zeroed);
    /** Remove a block known to be on a free list. */
    void removeBlock(Pfn pfn, unsigned order, bool zeroed);
    /** Pop the first block of the given order/zero-ness, if any. */
    std::optional<BuddyBlock> popBlock(unsigned order, bool zeroed);

    std::uint64_t frames_;
    std::array<FreeList, kMaxOrder + 1> freeZero_;
    std::array<FreeList, kMaxOrder + 1> freeNonZero_;
    /** Block-start pfn -> info, for buddy lookup during coalescing. */
    std::unordered_map<Pfn, BlockInfo> blockInfo_;
    std::uint64_t freePages_ = 0;
    std::uint64_t freeZeroPages_ = 0;
    /** Chaos probe; null (free) unless fault injection is on. */
    fault::FaultInjector *fault_ = nullptr;
};

} // namespace hawksim::mem

#endif // HAWKSIM_MEM_BUDDY_HH
