/**
 * @file
 * Compact page-content descriptors.
 *
 * The simulator cannot afford to store tens of gigabytes of actual
 * page data, but HawkEye's bloat-recovery scan (§3.2), KSM-style
 * same-page merging and Figure 3's "distance to first non-zero byte"
 * all depend on page contents. We therefore model each 4KB page's
 * content as a pair:
 *
 *   - hash:          64-bit content hash (equal hash == equal content
 *                    for dedup purposes; hash 0 is reserved for the
 *                    all-zero page),
 *   - firstNonZero:  byte offset of the first non-zero byte, with
 *                    kPageSize meaning "entirely zero".
 *
 * This preserves the *cost* structure of content scans: rejecting an
 * in-use page costs firstNonZero bytes (measured average ~9 bytes in
 * the paper), while confirming a zero page costs the full 4096 bytes.
 */

#ifndef HAWKSIM_MEM_CONTENT_HH
#define HAWKSIM_MEM_CONTENT_HH

#include <cstdint>

#include "base/rng.hh"
#include "base/types.hh"
#include "snap/state.hh"

namespace hawksim::mem {

/** Content descriptor of one 4KB page. */
struct PageContent
{
    std::uint64_t hash = 0;
    /** Offset of first non-zero byte; kPageSize when entirely zero. */
    std::uint16_t firstNonZero = kPageSize;

    bool isZero() const { return firstNonZero >= kPageSize; }

    static PageContent zero() { return PageContent{}; }

    bool
    operator==(const PageContent &o) const
    {
        return hash == o.hash && firstNonZero == o.firstNonZero;
    }

    void
    save(snap::Writer &w) const
    {
        w.u64(hash);
        w.u16(firstNonZero);
    }
    void
    load(snap::Reader &r)
    {
        hash = r.u64();
        firstNonZero = r.u16();
    }
};

/**
 * Cost (in bytes inspected) of scanning a page to decide whether it is
 * zero-filled, stopping at the first non-zero byte (§3.2).
 */
inline std::uint64_t
zeroScanCostBytes(const PageContent &c)
{
    return c.isZero() ? kPageSize : (std::uint64_t{c.firstNonZero} + 1);
}

/**
 * Generates plausible contents for pages written by applications.
 *
 * The firstNonZero distribution reproduces Figure 3's finding: most
 * in-use pages have a non-zero byte within the first few bytes
 * (average ~9.1 across 56 workloads), because real data structures
 * put headers, pointers or small integers at low offsets. We model it
 * as: with probability pZeroByteAtStart a page starts with a short
 * zero prefix whose length is geometric; otherwise offset 0 is
 * non-zero. The mean is tunable per workload profile.
 */
class ContentGenerator
{
  public:
    /**
     * @param rng seeded generator (forked per workload)
     * @param zero_prefix_prob probability a written page starts with a
     *        run of zero bytes (e.g. little-endian values with small
     *        high bytes, sparse structs)
     * @param mean_prefix_len mean length of that zero run in bytes
     */
    ContentGenerator(Rng rng, double zero_prefix_prob = 0.35,
                     double mean_prefix_len = 24.0)
        : rng_(rng), zeroPrefixProb_(zero_prefix_prob),
          meanPrefixLen_(mean_prefix_len)
    {}

    /** Content of a freshly written (non-zero) data page. */
    PageContent
    data()
    {
        PageContent c;
        c.hash = rng_.next() | 1; // never collides with the zero hash
        if (rng_.chance(zeroPrefixProb_)) {
            // Geometric-ish zero prefix, capped well below page size.
            auto len = static_cast<std::uint16_t>(
                -meanPrefixLen_ *
                std::log(1.0 - rng_.uniform() * 0.9999));
            c.firstNonZero = static_cast<std::uint16_t>(
                std::min<std::uint64_t>(len, kPageSize / 2));
        } else {
            c.firstNonZero = 0;
        }
        return c;
    }

    /**
     * Content drawn from a small pool of duplicated pages, modelling
     * shareable content for KSM experiments. Pages produced with the
     * same pool index compare equal.
     */
    PageContent
    duplicated(std::uint64_t pool, std::uint64_t pool_size)
    {
        PageContent c;
        const std::uint64_t idx = pool_size ? pool % pool_size : 0;
        c.hash = (0xdeadbeef00000000ull + idx) | 1;
        c.firstNonZero = 0;
        return c;
    }

    /** Only the RNG stream is dynamic; the shape is construction. */
    void save(snap::Writer &w) const { snap::saveRng(w, rng_); }
    void load(snap::Reader &r) { snap::loadRng(r, rng_); }

  private:
    Rng rng_;
    double zeroPrefixProb_;
    double meanPrefixLen_;
};

} // namespace hawksim::mem

#endif // HAWKSIM_MEM_CONTENT_HH
