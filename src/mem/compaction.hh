/**
 * @file
 * Memory compaction and controlled fragmentation.
 *
 * The Compactor migrates movable allocated frames out of nearly-empty
 * huge-page-aligned regions to manufacture free 2MB blocks, modelling
 * Linux's memory compaction [Corbet 2010] that khugepaged relies on.
 * Page-table fixups are delegated through the PageMover interface so
 * the mem/ layer stays independent of vm/.
 *
 * The Fragmenter reproduces the paper's experimental setup ("we
 * fragment the memory initially by reading several files") by pinning
 * unmovable kernel/file frames spread across physical memory, which
 * destroys high-order contiguity exactly like a populated page cache.
 */

#ifndef HAWKSIM_MEM_COMPACTION_HH
#define HAWKSIM_MEM_COMPACTION_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "fault/fault.hh"
#include "mem/phys.hh"
#include "obs/probe.hh"
#include "snap/snap.hh"

namespace hawksim::mem {

/** Callback used by the compactor to retarget mappings of moved pages. */
class PageMover
{
  public:
    virtual ~PageMover() = default;
    /** The frame at @p from has been migrated to @p to. */
    virtual void pageMoved(Pfn from, Pfn to) = 0;
};

/** Result of one compaction attempt. */
struct CompactionResult
{
    bool success = false;
    /** Start of the freed huge-aligned region (on success). */
    Pfn regionPfn = kInvalidPfn;
    /** Base pages migrated to produce the free block. */
    std::uint64_t pagesMigrated = 0;
    /** Huge-aligned regions examined. */
    std::uint64_t regionsScanned = 0;
};

class Compactor
{
  public:
    explicit Compactor(PhysicalMemory &phys) : phys_(phys) {}

    /** Attach the owning system's observability probe. */
    void setProbe(obs::Probe *probe) { obs_ = probe; }

    /** Install (or clear) the chaos fault injector. */
    void setFaultInjector(fault::FaultInjector *fi) { fault_ = fi; }

    /**
     * Try to produce one free huge-page (order-9) block by migrating
     * movable frames out of the cheapest candidate region.
     *
     * @param mover receives page-moved notifications for PT fixups
     * @param max_migrate give up on regions needing more moves
     * @param now sim time stamped onto trace events
     * @param migrate_cost_per_page per-page cost for attribution
     */
    CompactionResult compactOne(PageMover &mover,
                                std::uint64_t max_migrate = 256,
                                TimeNs now = 0,
                                TimeNs migrate_cost_per_page = 0);

    /** Total pages migrated over the object's lifetime. */
    std::uint64_t totalMigrated() const { return total_migrated_; }

    /** Lifetime counter + scan cursor; refs/hooks are construction. */
    void
    save(snap::Writer &w) const
    {
        w.u64(total_migrated_);
        w.u64(cursor_);
    }
    void
    load(snap::Reader &r)
    {
        total_migrated_ = r.u64();
        cursor_ = r.u64();
    }

  private:
    /**
     * Count allocated movable frames in a huge region; returns
     * std::nullopt when the region contains unmovable or shared
     * frames (not compactable).
     */
    std::optional<std::uint64_t> movableCost(Pfn region_start) const;

    PhysicalMemory &phys_;
    obs::Probe *obs_ = nullptr;
    fault::FaultInjector *fault_ = nullptr;
    std::uint64_t total_migrated_ = 0;
    /** Rotating scan cursor (huge-region index) for fairness. */
    std::uint64_t cursor_ = 0;
};

/**
 * Pins unmovable frames across physical memory to simulate
 * fragmentation from a populated page cache.
 */
class Fragmenter
{
  public:
    explicit Fragmenter(PhysicalMemory &phys) : phys_(phys) {}
    ~Fragmenter() { release(); }

    Fragmenter(const Fragmenter &) = delete;
    Fragmenter &operator=(const Fragmenter &) = delete;

    /**
     * Pin one unmovable frame in @p fraction of all huge-aligned
     * regions (chosen pseudo-randomly within each region).
     */
    void fragment(double fraction, Rng &rng);

    /**
     * Scatter @p pages_per_region *movable* file-cache-like frames
     * in @p fraction of all regions. This models the paper's
     * "fragment memory by reading several files": bounded fault-path
     * compaction gives up on such regions, while khugepaged-grade
     * compaction (and kcompactd) can migrate the pages out.
     */
    void fragmentMovable(double fraction, unsigned pages_per_region,
                         Rng &rng);

    /**
     * Additionally consume @p fraction of total memory with movable
     * file-cache-like frames (reclaimable under pressure).
     */
    void fillMovable(double fraction, Rng &rng);

    /** Release everything this fragmenter pinned or filled. */
    void release();
    /** Release only the movable fill (models page-cache reclaim). */
    void releaseMovable();

    std::uint64_t pinnedFrames() const { return pinned_.size(); }
    std::uint64_t movableFrames() const { return movable_.size(); }

    /**
     * The pin lists (insertion order preserved — it is itself
     * deterministic). The frames they reference are restored by the
     * PHYS/BUDY sections; this keeps release() consistent with them.
     */
    void
    save(snap::Writer &w) const
    {
        w.u64(pinned_.size());
        for (Pfn p : pinned_)
            w.u64(p);
        w.u64(movable_.size());
        for (Pfn p : movable_)
            w.u64(p);
    }
    void
    load(snap::Reader &r)
    {
        pinned_.assign(r.u64(), 0);
        for (Pfn &p : pinned_)
            p = r.u64();
        movable_.assign(r.u64(), 0);
        for (Pfn &p : movable_)
            p = r.u64();
    }

  private:
    PhysicalMemory &phys_;
    std::vector<Pfn> pinned_;
    std::vector<Pfn> movable_;
};

} // namespace hawksim::mem

#endif // HAWKSIM_MEM_COMPACTION_HH
