/**
 * @file
 * SSD-backed swap device cost model.
 *
 * The paper's overcommit experiments (Fig. 11) use a 96GB SSD swap
 * partition. We model the device as a latency + bounded-throughput
 * cost source: swapping N pages charges per-page device latency and
 * respects a sustained bandwidth cap. Capacity is tracked so that
 * exhausting swap raises an out-of-memory condition.
 */

#ifndef HAWKSIM_MEM_SWAP_HH
#define HAWKSIM_MEM_SWAP_HH

#include <algorithm>
#include <cstdint>

#include "base/logging.hh"
#include "base/types.hh"
#include "snap/snap.hh"

namespace hawksim::mem {

class SwapDevice
{
  public:
    struct Config
    {
        std::uint64_t capacityBytes = GiB(96);
        /** Per-4KB-page random read latency (SSD major fault). */
        TimeNs readLatency = usec(80);
        /** Per-4KB-page write latency (writeback is batched). */
        TimeNs writeLatency = usec(20);
        /** Sustained device throughput. */
        std::uint64_t throughputBytesPerSec = MiB(500);
    };

    SwapDevice() : cfg_() {}
    explicit SwapDevice(const Config &cfg) : cfg_(cfg) {}

    /** Pages currently held in swap. */
    std::uint64_t usedPages() const { return used_pages_; }
    std::uint64_t
    capacityPages() const
    {
        return cfg_.capacityBytes / kPageSize;
    }
    bool full() const { return used_pages_ >= capacityPages(); }

    /**
     * Swap out @p pages; returns the time charged to the reclaimer.
     * Caps at remaining capacity; @p swapped_out reports the actual
     * number of pages written.
     */
    TimeNs
    swapOut(std::uint64_t pages, std::uint64_t *swapped_out = nullptr)
    {
        const std::uint64_t n =
            std::min(pages, capacityPages() - used_pages_);
        used_pages_ += n;
        total_out_ += n;
        if (swapped_out)
            *swapped_out = n;
        return cost(n, cfg_.writeLatency);
    }

    /** Swap in @p pages (major faults); returns time charged. */
    TimeNs
    swapIn(std::uint64_t pages)
    {
        const std::uint64_t n = std::min(pages, used_pages_);
        used_pages_ -= n;
        total_in_ += n;
        return cost(n, cfg_.readLatency);
    }

    /**
     * Release @p pages of swap slots without reading them back (the
     * owning process exited). Free, like a TRIM/discard.
     */
    void
    discard(std::uint64_t pages)
    {
        used_pages_ -= std::min(pages, used_pages_);
    }

    std::uint64_t totalSwappedOut() const { return total_out_; }
    std::uint64_t totalSwappedIn() const { return total_in_; }
    const Config &config() const { return cfg_; }

    /** Occupancy and lifetime counters; device config is construction. */
    void
    save(snap::Writer &w) const
    {
        w.u64(used_pages_);
        w.u64(total_out_);
        w.u64(total_in_);
    }
    void
    load(snap::Reader &r)
    {
        used_pages_ = r.u64();
        total_out_ = r.u64();
        total_in_ = r.u64();
        HS_ASSERT(used_pages_ <= capacityPages(),
                  "snapshot: swap occupancy exceeds device capacity");
    }

  private:
    TimeNs
    cost(std::uint64_t pages, TimeNs per_page) const
    {
        // Latency component plus bandwidth floor: the device cannot
        // move bytes faster than its sustained throughput.
        const TimeNs latency = static_cast<TimeNs>(pages) * per_page;
        const TimeNs bw = static_cast<TimeNs>(
            pages * kPageSize * 1'000'000'000ull /
            cfg_.throughputBytesPerSec);
        return std::max(latency, bw);
    }

    Config cfg_;
    std::uint64_t used_pages_ = 0;
    std::uint64_t total_out_ = 0;
    std::uint64_t total_in_ = 0;
};

} // namespace hawksim::mem

#endif // HAWKSIM_MEM_SWAP_HH
