#include "mem/buddy.hh"

#include <algorithm>

#include "base/logging.hh"
#include "snap/snap.hh"

namespace hawksim::mem {

BuddyAllocator::BuddyAllocator(std::uint64_t frames, bool initially_zeroed)
    : frames_(frames)
{
    HS_ASSERT(frames > 0, "empty buddy allocator");
    // Carve the frame range into maximal naturally-aligned blocks.
    Pfn pfn = 0;
    while (pfn < frames_) {
        unsigned order = kMaxOrder;
        while (order > 0 &&
               ((pfn & ((1ull << order) - 1)) != 0 ||
                pfn + (1ull << order) > frames_)) {
            order--;
        }
        insertBlock(pfn, order, initially_zeroed);
        pfn += 1ull << order;
    }
}

void
BuddyAllocator::insertBlock(Pfn pfn, unsigned order, bool zeroed)
{
    auto [it, inserted] = blockInfo_.emplace(pfn, BlockInfo{order, zeroed});
    HS_ASSERT(inserted, "double free of block at pfn ", pfn);
    (void)it;
    list(order, zeroed).insert(pfn);
    freePages_ += 1ull << order;
    if (zeroed)
        freeZeroPages_ += 1ull << order;
}

void
BuddyAllocator::removeBlock(Pfn pfn, unsigned order, bool zeroed)
{
    auto erased = list(order, zeroed).erase(pfn);
    HS_ASSERT(erased == 1, "block not on expected list, pfn ", pfn);
    blockInfo_.erase(pfn);
    freePages_ -= 1ull << order;
    if (zeroed)
        freeZeroPages_ -= 1ull << order;
}

std::optional<BuddyBlock>
BuddyAllocator::popBlock(unsigned order, bool zeroed)
{
    auto &l = list(order, zeroed);
    if (l.empty())
        return std::nullopt;
    Pfn pfn = *l.begin();
    removeBlock(pfn, order, zeroed);
    return BuddyBlock{pfn, order, zeroed};
}

std::optional<BuddyBlock>
BuddyAllocator::alloc(unsigned order, ZeroPref pref)
{
    HS_ASSERT(order <= kMaxOrder, "order too large: ", order);
    // Chaos: only multi-page allocations fail (order-0 allocations
    // failing would starve base faults, which isn't the scenario the
    // paper's fallback ladder is about).
    if (order >= 1 && fault::faultAt(fault_, fault::Site::kBuddyAlloc))
        return std::nullopt;
    const bool first_zero = (pref == ZeroPref::kPreferZero);
    for (unsigned o = order; o <= kMaxOrder; o++) {
        std::optional<BuddyBlock> blk = popBlock(o, first_zero);
        if (!blk)
            blk = popBlock(o, !first_zero);
        if (!blk)
            continue;
        // Split down to the requested order; upper halves go back on
        // the free list with the parent's zero-ness preserved.
        while (blk->order > order) {
            blk->order--;
            const Pfn upper = blk->pfn + (1ull << blk->order);
            insertBlock(upper, blk->order, blk->zeroed);
        }
        return blk;
    }
    return std::nullopt;
}

std::optional<BuddyBlock>
BuddyAllocator::allocSpecific(Pfn pfn)
{
    HS_ASSERT(pfn < frames_, "pfn out of range: ", pfn);
    if (fault::faultAt(fault_, fault::Site::kAllocSpecific))
        return std::nullopt;
    // Find the free block containing this pfn, smallest order first.
    for (unsigned o = 0; o <= kMaxOrder; o++) {
        const Pfn start = pfn & ~((1ull << o) - 1);
        auto it = blockInfo_.find(start);
        if (it == blockInfo_.end() || it->second.order != o)
            continue;
        const bool zeroed = it->second.zeroed;
        removeBlock(start, o, zeroed);
        // Split, keeping the half that contains pfn.
        Pfn cur = start;
        unsigned cur_order = o;
        while (cur_order > 0) {
            cur_order--;
            const Pfn lower = cur;
            const Pfn upper = cur + (1ull << cur_order);
            if (pfn >= upper) {
                insertBlock(lower, cur_order, zeroed);
                cur = upper;
            } else {
                insertBlock(upper, cur_order, zeroed);
                cur = lower;
            }
        }
        return BuddyBlock{pfn, 0, zeroed};
    }
    return std::nullopt;
}

void
BuddyAllocator::free(Pfn pfn, unsigned order, bool zeroed)
{
    HS_ASSERT(order <= kMaxOrder, "order too large: ", order);
    HS_ASSERT(pfn + (1ull << order) <= frames_, "block out of range");
    HS_ASSERT((pfn & ((1ull << order) - 1)) == 0, "misaligned block");

    // Coalesce with free buddies; a merged block is only "zeroed" if
    // both halves were.
    while (order < kMaxOrder) {
        const Pfn buddy = pfn ^ (1ull << order);
        if (buddy + (1ull << order) > frames_)
            break;
        auto it = blockInfo_.find(buddy);
        if (it == blockInfo_.end() || it->second.order != order)
            break;
        const bool buddy_zeroed = it->second.zeroed;
        removeBlock(buddy, order, buddy_zeroed);
        zeroed = zeroed && buddy_zeroed;
        pfn = std::min(pfn, buddy);
        order++;
    }
    insertBlock(pfn, order, zeroed);
}

std::optional<BuddyBlock>
BuddyAllocator::takeNonZeroBlock(unsigned max_order)
{
    max_order = std::min(max_order, kMaxOrder);
    for (int o = static_cast<int>(max_order); o >= 0; o--) {
        auto blk = popBlock(static_cast<unsigned>(o), false);
        if (blk)
            return blk;
    }
    // Only larger dirty blocks exist: split one down so the caller's
    // per-call work stays bounded by max_order.
    for (unsigned o = max_order + 1; o <= kMaxOrder; o++) {
        auto blk = popBlock(o, false);
        if (!blk)
            continue;
        while (blk->order > max_order) {
            blk->order--;
            insertBlock(blk->pfn + (1ull << blk->order), blk->order,
                        blk->zeroed);
        }
        return blk;
    }
    return std::nullopt;
}

void
BuddyAllocator::forEachFreeBlock(
    const std::function<void(Pfn, unsigned, bool)> &fn) const
{
    for (unsigned o = 0; o <= kMaxOrder; o++) {
        for (Pfn pfn : freeZero_[o])
            fn(pfn, o, true);
        for (Pfn pfn : freeNonZero_[o])
            fn(pfn, o, false);
    }
}

std::uint64_t
BuddyAllocator::freeBlocks(unsigned order) const
{
    HS_ASSERT(order <= kMaxOrder, "order too large: ", order);
    return freeZero_[order].size() + freeNonZero_[order].size();
}

int
BuddyAllocator::largestFreeOrder() const
{
    for (int o = kMaxOrder; o >= 0; o--) {
        if (freeBlocks(static_cast<unsigned>(o)) > 0)
            return o;
    }
    return -1;
}

double
BuddyAllocator::fragIndex(unsigned order) const
{
    HS_ASSERT(order <= kMaxOrder, "order too large: ", order);
    if (freePages_ == 0)
        return 0.0; // no free memory: not a fragmentation problem
    const std::uint64_t requested = freePages_ >> order;
    if (requested == 0)
        return 1.0; // less than one block's worth of free memory
    std::uint64_t avail = 0;
    for (unsigned o = order; o <= kMaxOrder; o++)
        avail += freeBlocks(o) << (o - order);
    if (avail >= requested)
        return 0.0;
    return 1.0 - static_cast<double>(avail) / static_cast<double>(requested);
}

void
BuddyAllocator::checkConsistency() const
{
    std::uint64_t pages = 0;
    std::uint64_t zero_pages = 0;
    for (unsigned o = 0; o <= kMaxOrder; o++) {
        for (Pfn pfn : freeZero_[o]) {
            auto it = blockInfo_.find(pfn);
            HS_ASSERT(it != blockInfo_.end() && it->second.order == o &&
                          it->second.zeroed,
                      "zero list entry mismatch at pfn ", pfn);
            HS_ASSERT((pfn & ((1ull << o) - 1)) == 0, "misaligned block");
            pages += 1ull << o;
            zero_pages += 1ull << o;
        }
        for (Pfn pfn : freeNonZero_[o]) {
            auto it = blockInfo_.find(pfn);
            HS_ASSERT(it != blockInfo_.end() && it->second.order == o &&
                          !it->second.zeroed,
                      "non-zero list entry mismatch at pfn ", pfn);
            pages += 1ull << o;
        }
    }
    HS_ASSERT(pages == freePages_, "freePages counter drift");
    HS_ASSERT(zero_pages == freeZeroPages_, "freeZeroPages counter drift");
    HS_ASSERT(blockInfo_.size() ==
                  [this] {
                      std::size_t n = 0;
                      for (unsigned o = 0; o <= kMaxOrder; o++)
                          n += freeBlocks(o);
                      return n;
                  }(),
              "blockInfo size drift");
}

void
BuddyAllocator::save(snap::Writer &w) const
{
    w.u64(frames_);
    w.u64(freePages_);
    w.u64(freeZeroPages_);
    for (unsigned zeroed = 0; zeroed < 2; zeroed++) {
        for (unsigned order = 0; order <= kMaxOrder; order++) {
            const FreeList &l = list(order, zeroed != 0);
            w.u64(l.size());
            for (Pfn pfn : l) // std::set iterates in sorted order
                w.u64(pfn);
        }
    }
}

void
BuddyAllocator::load(snap::Reader &r)
{
    const std::uint64_t frames = r.u64();
    HS_ASSERT(frames == frames_, "snapshot: buddy frame count ",
              frames, " != configured ", frames_);
    const std::uint64_t free_pages = r.u64();
    const std::uint64_t free_zero = r.u64();
    for (auto &l : freeZero_)
        l.clear();
    for (auto &l : freeNonZero_)
        l.clear();
    blockInfo_.clear();
    freePages_ = 0;
    freeZeroPages_ = 0;
    for (unsigned zeroed = 0; zeroed < 2; zeroed++) {
        for (unsigned order = 0; order <= kMaxOrder; order++) {
            const std::uint64_t n = r.u64();
            for (std::uint64_t i = 0; i < n; i++)
                insertBlock(r.u64(), order, zeroed != 0);
        }
    }
    HS_ASSERT(freePages_ == free_pages && freeZeroPages_ == free_zero,
              "snapshot: buddy free-page counters drifted on load");
}

} // namespace hawksim::mem
