/**
 * @file
 * Per-frame metadata (the simulator's struct page).
 */

#ifndef HAWKSIM_MEM_FRAME_HH
#define HAWKSIM_MEM_FRAME_HH

#include <cstdint>

#include "base/types.hh"
#include "mem/content.hh"

namespace hawksim::mem {

/** Frame state/attribute flags. */
enum FrameFlags : std::uint8_t
{
    kFrameFree      = 1u << 0, //!< on a buddy free list
    kFrameUnmovable = 1u << 1, //!< cannot be migrated (kernel/file pin)
    kFrameZeroed    = 1u << 2, //!< known to contain all zeroes
    kFrameShared    = 1u << 3, //!< mapped COW into >1 place (dedup/KSM)
    kFrameReserved  = 1u << 4, //!< part of a FreeBSD-style reservation
};

/**
 * Metadata for one 4KB physical frame.
 *
 * Exclusively-mapped anonymous frames carry a one-entry reverse map
 * (ownerPid, vpn) so the compactor can migrate them; shared frames
 * (canonical zero page, KSM pages) are pinned kFrameUnmovable, which
 * mirrors how Linux treats them for compaction purposes.
 */
struct Frame
{
    std::uint8_t flags = kFrameFree;
    /** Owning process id, or -1 when free / kernel-owned. */
    std::int32_t ownerPid = -1;
    /**
     * Number of page-table mappings referencing this frame. 64-bit:
     * the canonical zero page can be referenced by millions of
     * dedup'd mappings.
     */
    std::uint64_t mapCount = 0;
    /** Content descriptor (valid for allocated frames). */
    PageContent content = PageContent::zero();
    /** Reverse-map virtual page for exclusively mapped frames. */
    Vpn rmapVpn = 0;

    bool isFree() const { return flags & kFrameFree; }
    bool isUnmovable() const { return flags & kFrameUnmovable; }
    bool isZeroed() const { return flags & kFrameZeroed; }
    bool isShared() const { return flags & kFrameShared; }
    bool isReserved() const { return flags & kFrameReserved; }

    void set(FrameFlags f) { flags |= f; }
    void clear(FrameFlags f) { flags &= static_cast<std::uint8_t>(~f); }
};

} // namespace hawksim::mem

#endif // HAWKSIM_MEM_FRAME_HH
