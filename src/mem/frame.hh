/**
 * @file
 * Per-frame metadata (the simulator's struct page).
 *
 * The frame table proper lives in PhysicalMemory as struct-of-arrays
 * columns (flags / ownerPid / mapCount / content / rmapVpn) so the
 * per-access hot loops and the audit/snapshot sweeps touch only the
 * columns they need. `Frame` remains the value type (snapshot RLE
 * runs, tests); `FrameRef`/`ConstFrameRef` are thin proxies over one
 * row of the columns so call sites keep the familiar
 * `phys.frame(pfn).mapCount` shape.
 */

#ifndef HAWKSIM_MEM_FRAME_HH
#define HAWKSIM_MEM_FRAME_HH

#include <cstdint>

#include "base/types.hh"
#include "mem/content.hh"

namespace hawksim::mem {

/** Frame state/attribute flags. */
enum FrameFlags : std::uint8_t
{
    kFrameFree      = 1u << 0, //!< on a buddy free list
    kFrameUnmovable = 1u << 1, //!< cannot be migrated (kernel/file pin)
    kFrameZeroed    = 1u << 2, //!< known to contain all zeroes
    kFrameShared    = 1u << 3, //!< mapped COW into >1 place (dedup/KSM)
    kFrameReserved  = 1u << 4, //!< part of a FreeBSD-style reservation
};

/**
 * Metadata for one 4KB physical frame, as a value.
 *
 * Exclusively-mapped anonymous frames carry a one-entry reverse map
 * (ownerPid, vpn) so the compactor can migrate them; shared frames
 * (canonical zero page, KSM pages) are pinned kFrameUnmovable, which
 * mirrors how Linux treats them for compaction purposes.
 */
struct Frame
{
    std::uint8_t flags = kFrameFree;
    /** Owning process id, or -1 when free / kernel-owned. */
    std::int32_t ownerPid = -1;
    /**
     * Number of page-table mappings referencing this frame. 64-bit:
     * the canonical zero page can be referenced by millions of
     * dedup'd mappings.
     */
    std::uint64_t mapCount = 0;
    /** Content descriptor (valid for allocated frames). */
    PageContent content = PageContent::zero();
    /** Reverse-map virtual page for exclusively mapped frames. */
    Vpn rmapVpn = 0;

    bool isFree() const { return flags & kFrameFree; }
    bool isUnmovable() const { return flags & kFrameUnmovable; }
    bool isZeroed() const { return flags & kFrameZeroed; }
    bool isShared() const { return flags & kFrameShared; }
    bool isReserved() const { return flags & kFrameReserved; }

    void set(FrameFlags f) { flags |= f; }
    void clear(FrameFlags f) { flags &= static_cast<std::uint8_t>(~f); }
};

/**
 * Mutable view of one frame-table row. The members are references
 * into PhysicalMemory's columns, so `f.mapCount++` and `&f.content`
 * behave exactly as they did when Frame was stored in-place. Column
 * storage never reallocates after construction, so a held ref stays
 * valid across alloc/free of other frames.
 */
struct FrameRef
{
    std::uint8_t &flags;
    std::int32_t &ownerPid;
    std::uint64_t &mapCount;
    PageContent &content;
    Vpn &rmapVpn;

    bool isFree() const { return flags & kFrameFree; }
    bool isUnmovable() const { return flags & kFrameUnmovable; }
    bool isZeroed() const { return flags & kFrameZeroed; }
    bool isShared() const { return flags & kFrameShared; }
    bool isReserved() const { return flags & kFrameReserved; }

    void set(FrameFlags f) { flags |= f; }
    void clear(FrameFlags f) { flags &= static_cast<std::uint8_t>(~f); }

    /** Materialize the row as a value (snapshot runs, copies). */
    Frame
    value() const
    {
        return Frame{flags, ownerPid, mapCount, content, rmapVpn};
    }

    /** Assign all fields from a value in one go. */
    FrameRef &
    operator=(const Frame &v)
    {
        flags = v.flags;
        ownerPid = v.ownerPid;
        mapCount = v.mapCount;
        content = v.content;
        rmapVpn = v.rmapVpn;
        return *this;
    }
};

/** Read-only view of one frame-table row. */
struct ConstFrameRef
{
    const std::uint8_t &flags;
    const std::int32_t &ownerPid;
    const std::uint64_t &mapCount;
    const PageContent &content;
    const Vpn &rmapVpn;

    ConstFrameRef(const std::uint8_t &fl, const std::int32_t &owner,
                  const std::uint64_t &mc, const PageContent &c,
                  const Vpn &rv)
        : flags(fl), ownerPid(owner), mapCount(mc), content(c), rmapVpn(rv)
    {}

    ConstFrameRef(const FrameRef &f)
        : flags(f.flags), ownerPid(f.ownerPid), mapCount(f.mapCount),
          content(f.content), rmapVpn(f.rmapVpn)
    {}

    bool isFree() const { return flags & kFrameFree; }
    bool isUnmovable() const { return flags & kFrameUnmovable; }
    bool isZeroed() const { return flags & kFrameZeroed; }
    bool isShared() const { return flags & kFrameShared; }
    bool isReserved() const { return flags & kFrameReserved; }

    Frame
    value() const
    {
        return Frame{flags, ownerPid, mapCount, content, rmapVpn};
    }
};

} // namespace hawksim::mem

#endif // HAWKSIM_MEM_FRAME_HH
