#include "mem/compaction.hh"

#include <algorithm>

#include "base/logging.hh"

namespace hawksim::mem {

std::optional<std::uint64_t>
Compactor::movableCost(Pfn region_start) const
{
    std::uint64_t allocated = 0;
    for (Pfn p = region_start; p < region_start + kPagesPerHuge; p++) {
        const ConstFrameRef f = phys_.frame(p);
        if (f.isFree())
            continue;
        if (f.isUnmovable() || f.isShared() || f.isReserved())
            return std::nullopt;
        // Process frames are only movable with a valid single-entry
        // reverse map; kernel (file-cache-like) frames need no fixup.
        if (f.ownerPid >= 0 && f.mapCount != 1)
            return std::nullopt;
        allocated++;
    }
    return allocated;
}

CompactionResult
Compactor::compactOne(PageMover &mover, std::uint64_t max_migrate,
                      TimeNs now, TimeNs migrate_cost_per_page)
{
    CompactionResult res;
    const std::uint64_t regions = phys_.totalFrames() / kPagesPerHuge;
    if (regions == 0)
        return res;
    // The scope observes whatever this attempt ends up doing; cost
    // attribution happens at the bottom once the outcome is known.
    std::optional<obs::TraceScope> scope;
    if (obs_ && obs_->tracer.wants(obs::Cat::kCompact))
        scope.emplace(obs_->tracer, obs::Cat::kCompact, "compact", -1,
                      now);
    const auto record = [&]() {
        if (obs_) {
            obs_->cost.count(obs::Counter::kMigratedPages,
                             res.pagesMigrated);
            obs_->cost.charge(
                obs::Subsys::kCompaction,
                static_cast<TimeNs>(res.pagesMigrated) *
                    migrate_cost_per_page);
        }
        if (scope) {
            scope->arg("migrated",
                       static_cast<std::int64_t>(res.pagesMigrated));
            scope->arg("scanned",
                       static_cast<std::int64_t>(res.regionsScanned));
            scope->arg("success", res.success ? 1 : 0);
            scope->dur(static_cast<TimeNs>(res.pagesMigrated) *
                       migrate_cost_per_page);
        }
    };

    // Pick the cheapest compactable region in a bounded scan window
    // from the cursor (a full sweep would be O(memory) per call).
    std::optional<Pfn> best;
    std::uint64_t best_cost = max_migrate + 1;
    const std::uint64_t window = std::min<std::uint64_t>(regions, 256);
    for (std::uint64_t i = 0; i < window; i++) {
        const std::uint64_t r = (cursor_ + i) % regions;
        const Pfn start = r * kPagesPerHuge;
        res.regionsScanned++;
        auto cost = movableCost(start);
        if (!cost)
            continue;
        if (*cost == 0) {
            // Fully free region: the buddy already coalesced it, so
            // there is nothing to gain here.
            continue;
        }
        if (*cost < best_cost) {
            best = start;
            best_cost = *cost;
            if (best_cost <= max_migrate / 2)
                break; // cheap enough, stop scanning
        }
    }
    if (!best) {
        // Move past the unpromising window so the next call makes
        // progress instead of rescanning the same regions.
        cursor_ = (cursor_ + window) % regions;
        record();
        return res;
    }
    cursor_ = (*best / kPagesPerHuge + 1) % regions;

    // Migrate every allocated frame out of the chosen region.
    const Pfn start = *best;
    for (Pfn p = start; p < start + kPagesPerHuge; p++) {
        FrameRef src = phys_.frame(p);
        if (src.isFree())
            continue;
        // Chaos: a failed migration aborts the pass gracefully, the
        // same way running out of destination frames does.
        if (fault::faultAt(fault_, fault::Site::kCompactMove)) {
            fault_->degradation().abortedCompactions++;
            record();
            return res;
        }
        // Find a destination outside the target region.
        std::vector<BuddyBlock> rejects;
        std::optional<BuddyBlock> dst;
        for (int attempts = 0; attempts < 64; attempts++) {
            auto blk = phys_.allocBlock(0, src.ownerPid,
                                        ZeroPref::kPreferNonZero);
            if (!blk)
                break;
            if (blk->pfn >= start && blk->pfn < start + kPagesPerHuge) {
                rejects.push_back(*blk);
                continue;
            }
            dst = blk;
            break;
        }
        for (const auto &r : rejects)
            phys_.freeBlock(r.pfn, r.order);
        if (!dst) {
            // Out of memory for migration: abort, leaving the region
            // partially compacted (already-moved pages stay moved).
            record();
            return res;
        }
        // Copy content and fix metadata/mappings.
        FrameRef d = phys_.frame(dst->pfn);
        d.content = src.content;
        d.flags = src.flags & static_cast<std::uint8_t>(~kFrameFree);
        d.ownerPid = src.ownerPid;
        d.rmapVpn = src.rmapVpn;
        d.mapCount = src.mapCount;
        src.mapCount = 0;
        mover.pageMoved(p, dst->pfn);
        phys_.freeBlock(p, 0);
        res.pagesMigrated++;
        total_migrated_++;
    }

    res.success = phys_.buddy().isFreeBlockStart(start) ||
                  phys_.frame(start).isFree();
    res.regionPfn = start;
    record();
    return res;
}

void
Fragmenter::fragment(double fraction, Rng &rng)
{
    const std::uint64_t regions = phys_.totalFrames() / kPagesPerHuge;
    for (std::uint64_t r = 0; r < regions; r++) {
        if (!rng.chance(fraction))
            continue;
        const Pfn base = r * kPagesPerHuge;
        const Pfn target = base + rng.below(kPagesPerHuge);
        auto blk = phys_.allocSpecificFrame(target, kKernelOwner);
        if (!blk)
            continue; // frame already in use
        FrameRef f = phys_.frame(target);
        f.set(kFrameUnmovable);
        pinned_.push_back(target);
    }
}

void
Fragmenter::fragmentMovable(double fraction,
                            unsigned pages_per_region, Rng &rng)
{
    const std::uint64_t regions = phys_.totalFrames() / kPagesPerHuge;
    for (std::uint64_t r = 0; r < regions; r++) {
        if (!rng.chance(fraction))
            continue;
        const Pfn base = r * kPagesPerHuge;
        for (unsigned i = 0; i < pages_per_region; i++) {
            const Pfn target = base + rng.below(kPagesPerHuge);
            auto blk = phys_.allocSpecificFrame(target, kKernelOwner);
            if (!blk)
                continue;
            movable_.push_back(target);
        }
    }
}

void
Fragmenter::fillMovable(double fraction, Rng &rng)
{
    (void)rng;
    const auto want = static_cast<std::uint64_t>(
        fraction * static_cast<double>(phys_.totalFrames()));
    for (std::uint64_t i = 0; i < want; i++) {
        auto blk = phys_.allocBlock(0, kKernelOwner,
                                    ZeroPref::kPreferNonZero);
        if (!blk)
            break;
        movable_.push_back(blk->pfn);
    }
}

void
Fragmenter::release()
{
    for (Pfn p : pinned_) {
        phys_.frame(p).clear(kFrameUnmovable);
        phys_.freeBlock(p, 0);
    }
    pinned_.clear();
    releaseMovable();
}

void
Fragmenter::releaseMovable()
{
    for (Pfn p : movable_) {
        // Compaction may have migrated (and thereby freed) the frame
        // we pinned; only release frames we still hold.
        const ConstFrameRef f = phys_.frame(p);
        if (f.isFree() || f.ownerPid != kKernelOwner)
            continue;
        phys_.freeBlock(p, 0);
    }
    movable_.clear();
}

} // namespace hawksim::mem
