/**
 * @file
 * Trace-driven workload: replay a recorded memory-behaviour trace.
 *
 * For studying policies against real applications, users can record
 * page-granularity traces (e.g. with perf/PEBS or Valgrind tooling)
 * and replay them through the simulator. The trace format is a
 * simple line-oriented text format:
 *
 *   # comment
 *   alloc <name> <bytes>          create an anonymous VMA
 *   touch <vma> <page> [n]        touch n pages starting at index
 *   write <vma> <page> [n]        like touch, but dirtying writes
 *   access <vma> <count> <pattern> steady-state accesses:
 *                                  pattern = seq | rand | zipf:<s>
 *   free <vma> <page> <n>         MADV_DONTNEED n pages
 *   compute <ns>                  burn useful compute time
 *   repeat <k>  ... end           loop the enclosed block k times
 *
 * Page indexes are VMA-relative. Each directive becomes one or more
 * work chunks; `access` directives emit sampled TLB streams like the
 * synthetic workloads do.
 */

#ifndef HAWKSIM_WORKLOAD_TRACE_HH
#define HAWKSIM_WORKLOAD_TRACE_HH

#include <cstdint>
#include <istream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "mem/content.hh"
#include "workload/workload.hh"

namespace hawksim::workload {

/**
 * Malformed trace input. Carries the source name ("<trace>" or the
 * file the caller named), the 1-based line and the offending field,
 * so tooling can point users at the exact spot instead of dying with
 * a process-wide fatal error.
 */
class TraceError : public std::runtime_error
{
  public:
    TraceError(std::string source, int line, std::string field,
               const std::string &reason)
        : std::runtime_error(source + ":" + std::to_string(line) +
                             ": field '" + field + "': " + reason),
          source_(std::move(source)), line_(line),
          field_(std::move(field))
    {}

    const std::string &source() const { return source_; }
    int line() const { return line_; }
    const std::string &field() const { return field_; }

  private:
    std::string source_;
    int line_;
    std::string field_;
};

/** One parsed trace directive. */
struct TraceOp
{
    enum class Kind
    {
        kAlloc,
        kTouch,
        kWrite,
        kAccess,
        kFree,
        kCompute,
    };

    Kind kind;
    std::string vma;    //!< VMA name (alloc/touch/write/access/free)
    std::uint64_t a = 0; //!< bytes / start page / count / ns
    std::uint64_t b = 0; //!< page count
    double zipf = 0.0;   //!< zipf exponent for access
    bool sequential = false;
};

/**
 * Parse a trace from a stream. Throws TraceError on malformed input
 * (traces are user-provided configuration; callers decide whether
 * that is fatal). Validation is strict and happens at parse time:
 * unknown directives, missing or non-numeric fields, counts that
 * overflow or are NaN/infinite, references to VMAs never alloc'd,
 * and touch/write/free ranges beyond the VMA all throw.
 *
 * @p source names the input in error messages (e.g. the file path).
 */
std::vector<TraceOp> parseTrace(std::istream &in,
                                const std::string &source = "<trace>");

class TraceWorkload : public Workload
{
  public:
    TraceWorkload(std::string name, std::vector<TraceOp> ops, Rng rng,
                  double accesses_per_sec = 5e6)
        : name_(std::move(name)), ops_(std::move(ops)), rng_(rng),
          content_(rng.fork()), accesses_per_sec_(accesses_per_sec)
    {}

    /** Convenience: parse from a stream. Throws TraceError. */
    static std::unique_ptr<TraceWorkload>
    fromStream(std::string name, std::istream &in, Rng rng);

    std::string name() const override { return name_; }
    void init(sim::Process &proc) override;
    void next(sim::Process &proc, TimeNs max_compute,
              WorkChunk &chunk) override;

    std::size_t opsRemaining() const { return ops_.size() - pc_; }

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    struct Region
    {
        Addr base;
        std::uint64_t pages;
    };

    const Region &regionOf(const std::string &name) const;

    std::string name_;
    std::vector<TraceOp> ops_;
    Rng rng_;
    mem::ContentGenerator content_;
    double accesses_per_sec_;
    std::unordered_map<std::string, Region> regions_;
    std::size_t pc_ = 0;          //!< next op index
    std::uint64_t op_progress_ = 0; //!< pages done within a long op
};

} // namespace hawksim::workload

#endif // HAWKSIM_WORKLOAD_TRACE_HH
