/**
 * @file
 * Sequential allocate-touch-free workloads.
 *
 * Reproduces the paper's Table 1 microbenchmark (allocate a buffer,
 * touch one byte in every base page, free it, repeat) and, with one
 * iteration and small per-page work, the fault-dominated spin-up
 * workloads of Table 8 (JVM/KVM start-up, HACC-IO, SparseHash).
 */

#ifndef HAWKSIM_WORKLOAD_LINEAR_TOUCH_HH
#define HAWKSIM_WORKLOAD_LINEAR_TOUCH_HH

#include <cstdint>
#include <string>

#include "base/rng.hh"
#include "mem/content.hh"
#include "workload/workload.hh"

namespace hawksim::workload {

struct LinearTouchConfig
{
    std::uint64_t bytes = GiB(1);
    /** Allocate/touch/free cycles. */
    unsigned iterations = 1;
    /** Useful compute per touched page. */
    TimeNs workPerPage = 500;
    /** Release the buffer after each iteration. */
    bool freeEachIteration = true;
    /** Touched pages become dirty (write one byte at offset 0). */
    bool writeContent = true;
    /** Pages per work chunk. */
    unsigned chunkPages = 1024;
    /**
     * SparseHash-style growth: after each doubling of touched pages,
     * reallocate a 2x arena and copy (extra faults + copy work).
     */
    bool rehashGrowth = false;
};

class LinearTouchWorkload : public Workload
{
  public:
    LinearTouchWorkload(std::string name, LinearTouchConfig cfg,
                        Rng rng)
        : name_(std::move(name)), cfg_(cfg), content_(rng)
    {}

    std::string name() const override { return name_; }
    void init(sim::Process &proc) override;
    void next(sim::Process &proc, TimeNs max_compute,
              WorkChunk &chunk) override;

    std::uint64_t touchesDone() const { return total_touched_; }

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    std::string name_;
    LinearTouchConfig cfg_;
    mem::ContentGenerator content_;
    Addr base_ = 0;
    std::uint64_t pages_ = 0;
    std::uint64_t pos_ = 0;
    unsigned iter_ = 0;
    std::uint64_t total_touched_ = 0;
    /** Next growth boundary for rehash mode (pages). */
    std::uint64_t rehash_at_ = 0;
};

} // namespace hawksim::workload

#endif // HAWKSIM_WORKLOAD_LINEAR_TOUCH_HH
