/**
 * @file
 * Factory presets modelling the paper's benchmark applications.
 *
 * Each preset fixes the memory behaviour knobs (footprint, WSS, hot
 * zone placement, skew, sequentiality, per-region coverage) and an
 * effective serialized access rate calibrated so that the 4KB-page
 * MMU overheads land near the paper's measurements (Tables 3 and 9).
 * Footprints take a scale divisor so experiments can run at 1/4 or
 * 1/8 of the paper's sizes with identical ratios.
 */

#ifndef HAWKSIM_WORKLOAD_PRESETS_HH
#define HAWKSIM_WORKLOAD_PRESETS_HH

#include <memory>

#include "base/rng.hh"
#include "workload/kvstore.hh"
#include "workload/linear_touch.hh"
#include "workload/stream.hh"

namespace hawksim::workload {

/** Scale divisor applied to the paper's footprints. */
struct Scale
{
    std::uint64_t div = 8;
    std::uint64_t
    operator()(std::uint64_t bytes) const
    {
        return bytes / div;
    }
};

/** Graph500: hot structures at high VAs, skewed, high coverage. */
std::unique_ptr<StreamWorkload> makeGraph500(Rng rng, Scale s = {},
                                             double work_seconds = 60);

/** XSBench: hot lookup tables in the upper-middle VA range. */
std::unique_ptr<StreamWorkload> makeXSBench(Rng rng, Scale s = {},
                                            double work_seconds = 60);

/** NPB profiles (Table 3): cg/mg/bt/sp/lu/ua/ft class D. */
std::unique_ptr<StreamWorkload> makeNpb(const std::string &which,
                                        Rng rng, Scale s = {},
                                        double work_seconds = 60);

/** Table 9's synthetic pair: uniform-random over a 4GB buffer. */
std::unique_ptr<StreamWorkload> makeRandom(Rng rng, Scale s = {},
                                           double work_seconds = 60);
/** Table 9's synthetic pair: pure sequential streaming over 4GB. */
std::unique_ptr<StreamWorkload> makeSequential(Rng rng, Scale s = {},
                                               double work_seconds = 60);

/** Lightly loaded Redis (Fig. 8): 40M 1KB keys, 10K req/s. */
std::unique_ptr<KeyValueStoreWorkload>
makeRedisLight(Rng rng, Scale s = {}, double serve_seconds = 120);

/** Table 1 microbenchmark: 10GB buffer, one byte per page, x10. */
std::unique_ptr<LinearTouchWorkload>
makeTouchMicro(Rng rng, Scale s = {}, unsigned iterations = 10);

/** Spin-up workloads (Table 8). */
std::unique_ptr<LinearTouchWorkload> makeSpinUp(const std::string &name,
                                                std::uint64_t bytes,
                                                Rng rng);
/** SparseHash-like growth workload (Table 8). */
std::unique_ptr<LinearTouchWorkload> makeSparseHash(Rng rng,
                                                    Scale s = {});
/** HACC-IO-like buffered IO workload (Table 8). */
std::unique_ptr<LinearTouchWorkload> makeHaccIo(Rng rng, Scale s = {});

} // namespace hawksim::workload

#endif // HAWKSIM_WORKLOAD_PRESETS_HH
