#include "workload/suite.hh"

namespace hawksim::workload {

namespace {

/**
 * Build one profile. TLB sensitivity emerges from the combination of
 * WSS (how much translation reach is needed), access rate (how much
 * each walk matters) and sequentiality (how much walk latency the
 * prefetcher hides).
 *
 * @param wss_mb working set in MB (at experiment scale)
 * @param rate_maps effective serialized accesses per second, x1e6
 * @param seq sequential fraction of the stream
 */
StreamConfig
profile(double wss_mb, double rate_maps, double seq,
        double footprint_mb = 0.0)
{
    StreamConfig c;
    c.wssBytes = static_cast<std::uint64_t>(wss_mb * (1 << 20));
    c.footprintBytes =
        footprint_mb > 0.0
            ? static_cast<std::uint64_t>(footprint_mb * (1 << 20))
            : c.wssBytes;
    if (c.footprintBytes < c.wssBytes)
        c.footprintBytes = c.wssBytes;
    c.accessesPerSec = rate_maps * 1e6;
    c.sequentialFraction = seq;
    c.workSeconds = 5.0;
    c.samplePerChunk = 384;
    c.touchesPerChunk = 256;
    return c;
}

} // namespace

std::vector<SuiteApp>
table2Catalog()
{
    std::vector<SuiteApp> apps;
    auto add = [&](const char *suite, const char *name,
                   bool sensitive, StreamConfig cfg) {
        apps.push_back({suite, name, sensitive, cfg});
    };

    // ---- SPEC CPU2006 integer (12; sensitive: mcf, astar,
    //      omnetpp, xalancbmk) -------------------------------------
    add("SPEC-int", "perlbench", false, profile(30, 1.2, 0.4));
    add("SPEC-int", "bzip2", false, profile(100, 0.8, 0.7));
    add("SPEC-int", "gcc", false, profile(80, 1.0, 0.5));
    add("SPEC-int", "mcf", true, profile(900, 5.5, 0.05, 1700));
    add("SPEC-int", "gobmk", false, profile(28, 0.9, 0.3));
    add("SPEC-int", "hmmer", false, profile(24, 1.1, 0.8));
    add("SPEC-int", "sjeng", false, profile(170, 0.7, 0.3));
    add("SPEC-int", "libquantum", false, profile(96, 0.9, 0.95));
    add("SPEC-int", "h264ref", false, profile(64, 1.0, 0.7));
    add("SPEC-int", "omnetpp", true, profile(160, 4.8, 0.05));
    add("SPEC-int", "astar", true, profile(320, 4.2, 0.1));
    add("SPEC-int", "xalancbmk", true, profile(380, 4.6, 0.08));

    // ---- SPEC CPU2006 floating point (19; sensitive: zeusmp,
    //      GemsFDTD, cactusADM) ------------------------------------
    add("SPEC-fp", "bwaves", false, profile(870, 1.0, 0.9));
    add("SPEC-fp", "gamess", false, profile(20, 0.8, 0.6));
    add("SPEC-fp", "milc", false, profile(680, 1.4, 0.75));
    add("SPEC-fp", "zeusmp", true, profile(510, 4.4, 0.15));
    add("SPEC-fp", "gromacs", false, profile(28, 0.9, 0.6));
    add("SPEC-fp", "cactusADM", true, profile(660, 4.0, 0.2));
    add("SPEC-fp", "leslie3d", false, profile(125, 1.1, 0.85));
    add("SPEC-fp", "namd", false, profile(46, 0.9, 0.5));
    add("SPEC-fp", "dealII", false, profile(110, 1.2, 0.45));
    add("SPEC-fp", "soplex", false, profile(255, 1.6, 0.4));
    add("SPEC-fp", "povray", false, profile(7, 0.8, 0.4));
    add("SPEC-fp", "calculix", false, profile(62, 1.0, 0.6));
    add("SPEC-fp", "GemsFDTD", true, profile(840, 4.2, 0.2));
    add("SPEC-fp", "tonto", false, profile(40, 0.9, 0.5));
    add("SPEC-fp", "lbm", false, profile(410, 1.2, 0.92));
    add("SPEC-fp", "wrf", false, profile(680, 1.1, 0.7));
    add("SPEC-fp", "sphinx3", false, profile(45, 1.3, 0.6));
    add("SPEC-fp", "gemsrt", false, profile(130, 0.9, 0.6));
    add("SPEC-fp", "fotonik", false, profile(330, 1.0, 0.85));

    // ---- PARSEC (13; sensitive: canneal, dedup) ------------------
    add("PARSEC", "blackscholes", false, profile(610, 0.7, 0.9));
    add("PARSEC", "bodytrack", false, profile(34, 0.9, 0.5));
    add("PARSEC", "canneal", true, profile(730, 5.2, 0.02));
    add("PARSEC", "dedup", true, profile(1100, 3.9, 0.15));
    add("PARSEC", "facesim", false, profile(310, 1.0, 0.6));
    add("PARSEC", "ferret", false, profile(90, 1.1, 0.5));
    add("PARSEC", "fluidanimate", false, profile(230, 1.0, 0.7));
    add("PARSEC", "freqmine", false, profile(500, 1.3, 0.5));
    add("PARSEC", "raytrace", false, profile(430, 1.0, 0.45));
    add("PARSEC", "streamcluster", false, profile(110, 1.2, 0.9));
    add("PARSEC", "swaptions", false, profile(6, 0.7, 0.4));
    add("PARSEC", "vips", false, profile(70, 1.0, 0.75));
    add("PARSEC", "x264", false, profile(140, 1.0, 0.7));

    // ---- SPLASH-2 (10; none sensitive) ---------------------------
    add("SPLASH-2", "barnes", false, profile(58, 1.2, 0.4));
    add("SPLASH-2", "fmm", false, profile(60, 1.0, 0.5));
    add("SPLASH-2", "ocean", false, profile(220, 1.2, 0.85));
    add("SPLASH-2", "radiosity", false, profile(40, 1.0, 0.4));
    add("SPLASH-2", "raytrace", false, profile(50, 0.9, 0.4));
    add("SPLASH-2", "volrend", false, profile(28, 0.9, 0.5));
    add("SPLASH-2", "water-ns", false, profile(12, 0.8, 0.6));
    add("SPLASH-2", "water-sp", false, profile(12, 0.8, 0.6));
    add("SPLASH-2", "cholesky", false, profile(36, 1.1, 0.6));
    add("SPLASH-2", "fft", false, profile(256, 1.0, 0.9));

    // ---- Biobench (9; sensitive: tigr, mummer) -------------------
    add("Biobench", "blastp", false, profile(240, 1.2, 0.6));
    add("Biobench", "blastn", false, profile(300, 1.3, 0.6));
    add("Biobench", "clustalw", false, profile(25, 0.9, 0.5));
    add("Biobench", "fasta", false, profile(180, 1.1, 0.7));
    add("Biobench", "hmmer-bio", false, profile(30, 1.0, 0.8));
    add("Biobench", "mummer", true, profile(470, 5.0, 0.05));
    add("Biobench", "phylip", false, profile(16, 0.8, 0.5));
    add("Biobench", "tigr", true, profile(620, 5.4, 0.03));
    add("Biobench", "grappa", false, profile(22, 0.9, 0.4));

    // ---- NPB (9; sensitive: cg, bt) ------------------------------
    add("NPB", "bt", true, profile(1150, 3.6, 0.3));
    add("NPB", "cg", true, profile(1000, 5.3, 0.05));
    add("NPB", "dc", false, profile(380, 1.2, 0.5));
    add("NPB", "ep", false, profile(6, 0.7, 0.3));
    add("NPB", "ft", false, profile(800, 1.2, 0.6));
    add("NPB", "is", false, profile(260, 1.3, 0.75));
    add("NPB", "lu", false, profile(700, 1.0, 0.55));
    add("NPB", "mg", false, profile(900, 1.2, 0.85));
    add("NPB", "ua", false, profile(620, 0.8, 0.7));

    // ---- CloudSuite (7; sensitive: graph-, data-analytics) -------
    add("CloudSuite", "data-analytics", true,
        profile(1050, 4.1, 0.1));
    add("CloudSuite", "data-caching", false, profile(700, 0.6, 0.55));
    add("CloudSuite", "data-serving", false, profile(640, 0.6, 0.5));
    add("CloudSuite", "graph-analytics", true,
        profile(1200, 4.8, 0.05));
    add("CloudSuite", "in-memory-analytics", false,
        profile(560, 0.7, 0.65));
    add("CloudSuite", "media-streaming", false,
        profile(300, 0.8, 0.85));
    add("CloudSuite", "web-search", false, profile(480, 0.65, 0.6));

    return apps;
}

} // namespace hawksim::workload
