#include "workload/trace.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "base/logging.hh"
#include "sim/process.hh"

namespace hawksim::workload {

namespace {

/** Everything one parseTrace call needs for strict validation. */
struct ParseState
{
    const std::string &source;
    int lineno = 0;
    /** Parse-time VMA sizes (pages) for range validation. */
    std::unordered_map<std::string, std::uint64_t> vmaPages;

    [[noreturn]] void
    fail(const char *field, const std::string &reason) const
    {
        throw TraceError(source, lineno, field, reason);
    }

    /**
     * Read an unsigned count. Unlike `stream >> uint64`, this rejects
     * negative values and overflow instead of wrapping them modulo
     * 2^64 into silently-huge counts.
     */
    std::uint64_t
    count(std::istream &ls, const char *field) const
    {
        std::string tok;
        if (!(ls >> tok))
            fail(field, "missing value");
        std::uint64_t v = 0;
        const auto res =
            std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec == std::errc::result_out_of_range)
            fail(field, "value '" + tok + "' overflows 64 bits");
        if (res.ec != std::errc() ||
            res.ptr != tok.data() + tok.size())
            fail(field, "bad number '" + tok + "'");
        return v;
    }

    std::string
    vmaName(std::istream &ls, const char *field) const
    {
        std::string name;
        if (!(ls >> name))
            fail(field, "missing VMA name");
        return name;
    }

    /** Pages of a previously alloc'd VMA; throws on unknown names. */
    std::uint64_t
    pagesOf(const std::string &vma) const
    {
        const auto it = vmaPages.find(vma);
        if (it == vmaPages.end())
            fail("vma", "references VMA '" + vma +
                            "' before any alloc");
        return it->second;
    }

    /** [start, start+n) must lie inside the VMA (overflow-safe). */
    void
    checkRange(const std::string &vma, std::uint64_t start,
               std::uint64_t n) const
    {
        const std::uint64_t pages = pagesOf(vma);
        if (start > pages || n > pages - start) {
            fail("page", "range [" + std::to_string(start) + ", " +
                             std::to_string(start) + "+" +
                             std::to_string(n) + ") beyond VMA '" +
                             vma + "' (" + std::to_string(pages) +
                             " pages)");
        }
    }
};

} // namespace

std::vector<TraceOp>
parseTrace(std::istream &in, const std::string &source)
{
    std::vector<TraceOp> ops;
    ParseState st{source, 0, {}};
    // Stack of (start index in ops, remaining repeat count).
    std::vector<std::pair<std::size_t, std::uint64_t>> repeat_stack;
    std::string line;
    while (std::getline(in, line)) {
        st.lineno++;
        std::istringstream ls(line);
        std::string cmd;
        if (!(ls >> cmd) || cmd[0] == '#')
            continue;
        TraceOp op{};
        if (cmd == "alloc") {
            op.kind = TraceOp::Kind::kAlloc;
            op.vma = st.vmaName(ls, "name");
            op.a = st.count(ls, "bytes");
            if (op.a == 0)
                st.fail("bytes", "zero-byte alloc");
            if (op.a > hugeAlignUp(op.a))
                st.fail("bytes", "alloc size overflows alignment");
            st.vmaPages[op.vma] = hugeAlignUp(op.a) / kPageSize;
        } else if (cmd == "touch" || cmd == "write") {
            op.kind = cmd == "touch" ? TraceOp::Kind::kTouch
                                     : TraceOp::Kind::kWrite;
            op.vma = st.vmaName(ls, "vma");
            op.a = st.count(ls, "page");
            op.b = 1;
            std::string n;
            if (ls >> n) {
                std::istringstream ns(n);
                op.b = st.count(ns, "n");
            }
            st.checkRange(op.vma, op.a, op.b);
        } else if (cmd == "access") {
            op.kind = TraceOp::Kind::kAccess;
            op.vma = st.vmaName(ls, "vma");
            op.a = st.count(ls, "count");
            st.pagesOf(op.vma);
            std::string pattern;
            if (!(ls >> pattern))
                st.fail("pattern", "missing (seq|rand|zipf:<s>)");
            if (pattern == "seq") {
                op.sequential = true;
            } else if (pattern == "rand") {
                op.sequential = false;
            } else if (pattern.rfind("zipf:", 0) == 0) {
                const std::string s = pattern.substr(5);
                char *end = nullptr;
                op.zipf = std::strtod(s.c_str(), &end);
                if (!end || *end != '\0' || end == s.c_str())
                    st.fail("pattern", "bad zipf exponent '" + s +
                                           "'");
                if (!std::isfinite(op.zipf) || op.zipf <= 0.0) {
                    st.fail("pattern",
                            "zipf exponent must be finite and "
                            "positive, got '" + s + "'");
                }
            } else {
                st.fail("pattern", "bad pattern '" + pattern + "'");
            }
        } else if (cmd == "free") {
            op.kind = TraceOp::Kind::kFree;
            op.vma = st.vmaName(ls, "vma");
            op.a = st.count(ls, "page");
            op.b = st.count(ls, "n");
            st.checkRange(op.vma, op.a, op.b);
        } else if (cmd == "compute") {
            op.kind = TraceOp::Kind::kCompute;
            op.a = st.count(ls, "ns");
        } else if (cmd == "repeat") {
            const std::uint64_t k = st.count(ls, "k");
            if (k == 0)
                st.fail("k", "repeat count must be >= 1");
            repeat_stack.emplace_back(ops.size(), k);
            continue;
        } else if (cmd == "end") {
            if (repeat_stack.empty())
                st.fail("end", "end without repeat");
            auto [start, k] = repeat_stack.back();
            repeat_stack.pop_back();
            // Unroll: append k-1 more copies of the block.
            const std::vector<TraceOp> block(
                ops.begin() + static_cast<long>(start), ops.end());
            for (std::uint64_t i = 1; i < k; i++)
                ops.insert(ops.end(), block.begin(), block.end());
            continue;
        } else {
            st.fail("directive", "unknown directive '" + cmd + "'");
        }
        ops.push_back(op);
    }
    if (!repeat_stack.empty()) {
        st.fail("repeat",
                "unterminated repeat block (truncated trace?)");
    }
    return ops;
}

std::unique_ptr<TraceWorkload>
TraceWorkload::fromStream(std::string name, std::istream &in, Rng rng)
{
    std::vector<TraceOp> ops = parseTrace(in, name);
    return std::make_unique<TraceWorkload>(std::move(name),
                                           std::move(ops), rng);
}

void
TraceWorkload::init(sim::Process &proc)
{
    // VMAs are created lazily by kAlloc ops so traces can interleave
    // allocation with work; nothing to do here.
    (void)proc;
}

const TraceWorkload::Region &
TraceWorkload::regionOf(const std::string &name) const
{
    auto it = regions_.find(name);
    if (it == regions_.end())
        HS_FATAL("trace references unknown VMA '", name, "'");
    return it->second;
}

void
TraceWorkload::next(sim::Process &proc, TimeNs max_compute,
                    WorkChunk &chunk)
{
    chunk.reset();
    if (pc_ >= ops_.size()) {
        chunk.done = true;
        return;
    }
    const TraceOp &op = ops_[pc_];
    auto finishOp = [&] {
        pc_++;
        op_progress_ = 0;
    };

    switch (op.kind) {
      case TraceOp::Kind::kAlloc: {
        regions_[op.vma] = {proc.space().mmapAnon(op.a, op.vma),
                            hugeAlignUp(op.a) / kPageSize};
        chunk.compute = usec(20); // mmap syscall
        finishOp();
        break;
      }
      case TraceOp::Kind::kTouch:
      case TraceOp::Kind::kWrite: {
        const Region &r = regionOf(op.vma);
        const std::uint64_t first = op.a + op_progress_;
        const std::uint64_t remaining = op.b - op_progress_;
        const std::uint64_t batch =
            std::min<std::uint64_t>(remaining, 1024);
        HS_ASSERT(op.a + op.b <= r.pages,
                  "trace touch beyond VMA '", op.vma, "'");
        for (std::uint64_t i = 0; i < batch; i++) {
            const Vpn vpn = addrToVpn(r.base) + first + i;
            chunk.faults.push_back(vpn);
            if (op.kind == TraceOp::Kind::kWrite)
                chunk.writes.emplace_back(vpn, content_.data());
        }
        chunk.compute = static_cast<TimeNs>(batch) * 150;
        chunk.accessCount = batch;
        chunk.sequentiality = 1.0;
        op_progress_ += batch;
        if (op_progress_ >= op.b)
            finishOp();
        break;
      }
      case TraceOp::Kind::kAccess: {
        const Region &r = regionOf(op.vma);
        const std::uint64_t remaining = op.a - op_progress_;
        const auto budget = static_cast<std::uint64_t>(
            accesses_per_sec_ * static_cast<double>(max_compute) /
            1e9);
        const std::uint64_t n = std::min<std::uint64_t>(
            remaining, std::max<std::uint64_t>(budget, 1));
        chunk.accessCount = n;
        chunk.compute = static_cast<TimeNs>(
            static_cast<double>(n) / accesses_per_sec_ * 1e9);
        chunk.sequentiality = op.sequential ? 1.0 : 0.0;
        auto draw = [&]() -> Vpn {
            std::uint64_t idx;
            if (op.sequential)
                idx = (op_progress_ + rng_.below(1024)) % r.pages;
            else if (op.zipf > 0.0)
                idx = rng_.zipf(r.pages, op.zipf);
            else
                idx = rng_.below(r.pages);
            return addrToVpn(r.base) + idx;
        };
        const unsigned samples =
            static_cast<unsigned>(std::min<std::uint64_t>(n, 512));
        for (unsigned i = 0; i < samples; i++)
            chunk.sample.push_back({draw(), rng_.chance(0.3)});
        for (unsigned i = 0; i < 2048; i++)
            chunk.touches.push_back(draw());
        op_progress_ += n;
        if (op_progress_ >= op.a)
            finishOp();
        break;
      }
      case TraceOp::Kind::kFree: {
        const Region &r = regionOf(op.vma);
        HS_ASSERT(op.a + op.b <= r.pages,
                  "trace free beyond VMA '", op.vma, "'");
        chunk.frees.push_back({r.base + op.a * kPageSize,
                               op.b * kPageSize});
        chunk.compute = usec(5);
        finishOp();
        break;
      }
      case TraceOp::Kind::kCompute: {
        const TimeNs remaining =
            static_cast<TimeNs>(op.a) -
            static_cast<TimeNs>(op_progress_);
        const TimeNs slice = std::min(remaining, max_compute);
        chunk.compute = std::max<TimeNs>(slice, 1);
        op_progress_ += static_cast<std::uint64_t>(chunk.compute);
        if (static_cast<std::uint64_t>(op_progress_) >= op.a)
            finishOp();
        break;
      }
    }
    chunk.opsCompleted = 1;
    if (pc_ >= ops_.size())
        chunk.done = true;
}


void
TraceWorkload::save(snap::Writer &w) const
{
    snap::saveRng(w, rng_);
    content_.save(w);
    std::vector<std::pair<std::string, Region>> regions(
        regions_.begin(), regions_.end());
    std::sort(regions.begin(), regions.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    w.u64(regions.size());
    for (const auto &[name, region] : regions) {
        w.str(name);
        w.u64(region.base);
        w.u64(region.pages);
    }
    w.u64(pc_);
    w.u64(op_progress_);
}

void
TraceWorkload::load(snap::Reader &r)
{
    snap::loadRng(r, rng_);
    content_.load(r);
    regions_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; i++) {
        const std::string name = r.str();
        Region region;
        region.base = r.u64();
        region.pages = r.u64();
        regions_.emplace(name, region);
    }
    pc_ = r.u64();
    op_progress_ = r.u64();
}

} // namespace hawksim::workload
