#include "workload/kvstore.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/process.hh"
#include "snap/state.hh"

namespace hawksim::workload {

void
KeyValueStoreWorkload::init(sim::Process &proc)
{
    base_ = proc.space().mmapAnon(cfg_.arenaBytes, name_);
    arena_pages_ = cfg_.arenaBytes / kPageSize;
}

Vpn
KeyValueStoreWorkload::pageOf(std::uint64_t arena_page) const
{
    return addrToVpn(base_) + arena_page;
}

KeyValueStoreWorkload::Value
KeyValueStoreWorkload::allocValue(std::uint64_t value_bytes)
{
    const auto pages = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1,
                                (value_bytes + kPageSize - 1) /
                                    kPageSize));
    // Small values reuse freed slots of the same size class; large
    // values get fresh (huge-aligned) arena space, like size-class
    // slab allocators do.
    if (pages == small_pages_ && !free_small_.empty()) {
        const std::uint64_t slot = free_small_.front();
        free_small_.pop_front();
        return Value{slot, pages};
    }
    std::uint64_t start = cursor_;
    if (pages >= kPagesPerHuge) {
        start = (start + kPagesPerHuge - 1) & ~(kPagesPerHuge - 1);
    }
    HS_ASSERT(start + pages <= arena_pages_,
              "kvstore arena exhausted for ", name_);
    cursor_ = start + pages;
    return Value{start, pages};
}

void
KeyValueStoreWorkload::next(sim::Process &proc, TimeNs max_compute,
                            WorkChunk &chunk)
{
    (void)proc;
    chunk.reset();
    if (phase_ >= cfg_.phases.size()) {
        chunk.done = true;
        return;
    }
    const KvPhase &ph = cfg_.phases[phase_];
    auto advancePhase = [&] {
        phase_++;
        phase_progress_ = 0;
        phase_time_ = 0.0;
    };

    switch (ph.type) {
      case KvPhase::Type::kInsert: {
        const double per_op = 1e9 / ph.opsPerSec;
        const auto budget_ops = static_cast<std::uint64_t>(
            static_cast<double>(max_compute) / per_op);
        const std::uint64_t ops = std::min<std::uint64_t>(
            std::min<std::uint64_t>(budget_ops, 512),
            ph.count - phase_progress_);
        if (ops == 0) {
            // Rate too low for this tick granularity: do one op.
        }
        const std::uint64_t todo = std::max<std::uint64_t>(ops, 1);
        for (std::uint64_t i = 0; i < todo; i++) {
            Value v = allocValue(ph.valueBytes);
            for (std::uint32_t p = 0; p < v.pages; p++) {
                const Vpn vpn = pageOf(v.firstPage + p);
                chunk.faults.push_back(vpn);
                chunk.writes.emplace_back(vpn, content_.data());
            }
            live_.push_back(v);
            live_bytes_ += ph.valueBytes;
        }
        phase_progress_ += todo;
        chunk.compute =
            static_cast<TimeNs>(static_cast<double>(todo) * per_op);
        chunk.accessCount = todo * cfg_.accessesPerOp;
        chunk.opsCompleted = todo;
        chunk.sequentiality = 0.5;
        if (phase_progress_ >= ph.count)
            advancePhase();
        break;
      }
      case KvPhase::Type::kDelete: {
        // Deletions are fast; do the whole phase in one chunk.
        const auto target = static_cast<std::uint64_t>(
            ph.fraction * static_cast<double>(live_.size()));
        std::uint64_t deleted = 0;
        auto dropAt = [&](std::uint64_t idx) {
            const Value v = live_[idx];
            live_[idx] = live_.back();
            live_.pop_back();
            live_bytes_ -=
                std::min<std::uint64_t>(live_bytes_,
                                        std::uint64_t{v.pages} *
                                            kPageSize);
            chunk.frees.push_back(
                {base_ + v.firstPage * kPageSize,
                 std::uint64_t{v.pages} * kPageSize});
            if (v.pages == small_pages_)
                free_small_.push_back(v.firstPage);
            deleted++;
        };
        while (deleted < target && !live_.empty()) {
            if (ph.clusterRun <= 1) {
                dropAt(rng_.below(live_.size()));
                continue;
            }
            // Clustered expiry: erase a run of values contiguous in
            // insertion (and hence arena) order.
            const std::uint64_t idx = rng_.below(live_.size());
            const std::uint64_t run = std::min<std::uint64_t>(
                {ph.clusterRun, target - deleted,
                 live_.size() - idx});
            for (std::uint64_t j = idx; j < idx + run; j++) {
                const Value &v = live_[j];
                live_bytes_ -= std::min<std::uint64_t>(
                    live_bytes_,
                    std::uint64_t{v.pages} * kPageSize);
                chunk.frees.push_back(
                    {base_ + v.firstPage * kPageSize,
                     std::uint64_t{v.pages} * kPageSize});
                if (v.pages == small_pages_)
                    free_small_.push_back(v.firstPage);
                deleted++;
            }
            live_.erase(live_.begin() + static_cast<long>(idx),
                        live_.begin() + static_cast<long>(idx + run));
        }
        chunk.compute = std::max<TimeNs>(
            static_cast<TimeNs>(static_cast<double>(target) * 200),
            usec(10));
        chunk.opsCompleted = deleted;
        advancePhase();
        break;
      }
      case KvPhase::Type::kServe: {
        const TimeNs compute = std::min<TimeNs>(
            max_compute,
            static_cast<TimeNs>(
                std::max(ph.durationSec - phase_time_, 0.0) * 1e9));
        if (compute <= 0 || live_.empty()) {
            advancePhase();
            break;
        }
        const double secs = static_cast<double>(compute) / 1e9;
        const auto ops =
            static_cast<std::uint64_t>(ph.opsPerSec * secs);
        chunk.compute = compute;
        chunk.accessCount = ops * cfg_.accessesPerOp;
        chunk.opsCompleted = ops;
        chunk.sequentiality = 0.1;
        auto draw = [&]() -> Vpn {
            const Value &v = live_[rng_.below(live_.size())];
            return pageOf(v.firstPage + rng_.below(v.pages));
        };
        const unsigned n = std::min<std::uint64_t>(
            cfg_.samplePerChunk, chunk.accessCount);
        for (unsigned i = 0; i < n; i++)
            chunk.sample.push_back({draw(), rng_.chance(0.15)});
        for (unsigned i = 0; i < cfg_.touchesPerChunk; i++)
            chunk.touches.push_back(draw());
        phase_time_ += secs;
        if (phase_time_ >= ph.durationSec)
            advancePhase();
        break;
      }
      case KvPhase::Type::kPause: {
        const TimeNs compute = std::min<TimeNs>(
            max_compute,
            static_cast<TimeNs>(
                std::max(ph.durationSec - phase_time_, 0.0) * 1e9));
        chunk.compute = std::max<TimeNs>(compute, usec(100));
        phase_time_ += static_cast<double>(chunk.compute) / 1e9;
        if (phase_time_ >= ph.durationSec)
            advancePhase();
        break;
      }
    }
    if (phase_ >= cfg_.phases.size())
        chunk.done = true;
}


void
KeyValueStoreWorkload::save(snap::Writer &w) const
{
    snap::saveRng(w, rng_);
    content_.save(w);
    w.u64(base_);
    w.u64(arena_pages_);
    w.u64(cursor_);
    w.u64(free_small_.size());
    for (std::uint64_t slot : free_small_) // deque order matters
        w.u64(slot);
    w.u32(small_pages_);
    w.u64(live_.size());
    for (const Value &v : live_) {
        w.u64(v.firstPage);
        w.u32(v.pages);
    }
    w.u64(live_bytes_);
    w.u64(phase_);
    w.u64(phase_progress_);
    w.f64(phase_time_);
}

void
KeyValueStoreWorkload::load(snap::Reader &r)
{
    snap::loadRng(r, rng_);
    content_.load(r);
    base_ = r.u64();
    arena_pages_ = r.u64();
    cursor_ = r.u64();
    free_small_.clear();
    const std::uint64_t slots = r.u64();
    for (std::uint64_t i = 0; i < slots; i++)
        free_small_.push_back(r.u64());
    small_pages_ = r.u32();
    live_.clear();
    const std::uint64_t values = r.u64();
    live_.reserve(values);
    for (std::uint64_t i = 0; i < values; i++) {
        Value v;
        v.firstPage = r.u64();
        v.pages = r.u32();
        live_.push_back(v);
    }
    live_bytes_ = r.u64();
    phase_ = r.u64();
    phase_progress_ = r.u64();
    phase_time_ = r.f64();
}

} // namespace hawksim::workload
