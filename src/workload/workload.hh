/**
 * @file
 * The workload abstraction: applications as memory-behaviour models.
 *
 * A workload drives its process in quanta ("work chunks"). Each chunk
 * declares:
 *   - compute: useful execution time at base IPC (no MMU overhead),
 *   - faults:  pages touched that may need fault handling, in order,
 *   - writes:  page contents being installed (drives zero-scan/dedup),
 *   - accessCount + sample: the memory accesses performed, as a true
 *     total plus a seeded page-granularity sample for the TLB model,
 *   - sequentiality: fraction of the stream that is next-page
 *     sequential (drives walk-latency overlap, §2.4),
 *   - frees: address ranges released via MADV_DONTNEED.
 *
 * The engine charges fault latencies and TLB walk cycles against the
 * process's tick budget, so a workload under high MMU overhead
 * genuinely runs slower — runtimes, throughputs and crossovers emerge
 * rather than being scripted.
 */

#ifndef HAWKSIM_WORKLOAD_WORKLOAD_HH
#define HAWKSIM_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "base/logging.hh"
#include "mem/content.hh"
#include "tlb/tlb.hh"

namespace hawksim::sim {
class Process;
} // namespace hawksim::sim

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::workload {

/** An MADV_DONTNEED-style release of a VA range. */
struct FreeRange
{
    Addr start;
    std::uint64_t bytes;
};

/** One quantum of application execution. */
struct WorkChunk
{
    /** Useful compute time consumed by this chunk. */
    TimeNs compute = 0;
    /** Pages touched that may require fault handling (in order). */
    std::vector<Vpn> faults;
    /** True if the faulting touches are writes (they usually are). */
    bool faultsAreWrites = true;
    /** Page contents installed by this chunk. */
    std::vector<std::pair<Vpn, mem::PageContent>> writes;
    /** Total memory accesses this chunk performs. */
    std::uint64_t accessCount = 0;
    /** Seeded sample of those accesses for the TLB model. */
    std::vector<tlb::AccessSample> sample;
    /**
     * Larger, cheap page-touch sample used only to set PTE accessed
     * bits, so OS access-bit sampling (30s period, 1s window) observes
     * realistic per-region coverage without simulating every access
     * through the TLB.
     */
    std::vector<Vpn> touches;
    /** Fraction of the access stream that is sequential, in [0,1]. */
    double sequentiality = 0.0;
    /** VA ranges released back to the OS. */
    std::vector<FreeRange> frees;
    /** Operations completed (for throughput-style workloads). */
    std::uint64_t opsCompleted = 0;
    /** Set when the workload has finished all its work. */
    bool done = false;

    /**
     * Return the chunk to its default-constructed state while keeping
     * the vectors' capacity, so the engine can hand the same chunk to
     * Workload::next() every quantum without re-allocating the
     * buffers in the inner simulation loop.
     */
    void
    reset()
    {
        compute = 0;
        faults.clear();
        faultsAreWrites = true;
        writes.clear();
        accessCount = 0;
        sample.clear();
        touches.clear();
        sequentiality = 0.0;
        frees.clear();
        opsCompleted = 0;
        done = false;
    }
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Create VMAs and any internal state. Called once at attach. */
    virtual void init(sim::Process &proc) = 0;

    /**
     * Produce the next quantum into @p chunk (reset() by the callee
     * first, so buffers are reused across calls). @p max_compute
     * bounds the chunk's compute time (the engine's tick
     * granularity).
     */
    virtual void next(sim::Process &proc, TimeNs max_compute,
                      WorkChunk &chunk) = 0;

    /**
     * Hint for experiments: does this workload run to completion
     * (true) or serve requests until stopped (false)?
     */
    virtual bool runsToCompletion() const { return true; }

    /**
     * @name Checkpoint support
     *
     * Serialize/restore the workload's dynamic state (cursors, RNG
     * streams, phase progress). Restore happens on a freshly init()'d
     * instance of the same workload under the same config, so only
     * dynamic state travels. Workloads that keep no hidden state
     * beyond these defaults must still override explicitly — the
     * default is fatal so an unsupported workload fails loudly at
     * checkpoint time instead of silently diverging after restore.
     */
    /// @{
    virtual void
    save(snap::Writer &) const
    {
        HS_FATAL("workload \"", name(),
                 "\" does not support checkpointing");
    }
    virtual void
    load(snap::Reader &)
    {
        HS_FATAL("workload \"", name(),
                 "\" does not support checkpointing");
    }
    /// @}
};

} // namespace hawksim::workload

#endif // HAWKSIM_WORKLOAD_WORKLOAD_HH
