#include "workload/presets.hh"

#include "base/logging.hh"

namespace hawksim::workload {

std::unique_ptr<StreamWorkload>
makeGraph500(Rng rng, Scale s, double work_seconds)
{
    StreamConfig cfg;
    cfg.footprintBytes = s(GiB(9));
    cfg.wssBytes = s(GiB(8));
    // Edge/frontier structures live at the top of the address space:
    // sequential low-to-high promotion reaches them last (Fig. 6).
    cfg.hotStart = 0.60;
    cfg.hotEnd = 1.00;
    cfg.hotFraction = 0.88;
    cfg.zipfS = 0.35;
    cfg.sequentialFraction = 0.05;
    cfg.coveragePages = 512;
    cfg.accessesPerSec = 4.0e6;
    cfg.workSeconds = work_seconds;
    return std::make_unique<StreamWorkload>("Graph500", cfg, rng);
}

std::unique_ptr<StreamWorkload>
makeXSBench(Rng rng, Scale s, double work_seconds)
{
    StreamConfig cfg;
    cfg.footprintBytes = s(GiB(8));
    cfg.wssBytes = s(GiB(7));
    // Cross-section lookup grids sit in the upper-middle VA range.
    cfg.hotStart = 0.55;
    cfg.hotEnd = 0.92;
    cfg.hotFraction = 0.85;
    cfg.zipfS = 0.25;
    cfg.sequentialFraction = 0.02;
    cfg.coveragePages = 512;
    cfg.accessesPerSec = 4.2e6;
    cfg.workSeconds = work_seconds;
    return std::make_unique<StreamWorkload>("XSBench", cfg, rng);
}

std::unique_ptr<StreamWorkload>
makeNpb(const std::string &which, Rng rng, Scale s,
        double work_seconds)
{
    StreamConfig cfg;
    cfg.workSeconds = work_seconds;
    if (which == "cg") {
        // Sparse-matrix gather: random, big WSS -> 39% overhead @4KB.
        cfg.footprintBytes = s(GiB(16));
        cfg.wssBytes = s(GiB(8));
        cfg.sequentialFraction = 0.05;
        cfg.accessesPerSec = 3.4e6;
    } else if (which == "mg") {
        // Multigrid: huge footprint but stencil-sequential -> ~1%.
        cfg.footprintBytes = s(GiB(26));
        cfg.wssBytes = s(GiB(24));
        cfg.sequentialFraction = 0.85;
        cfg.accessesPerSec = 4.0e6;
    } else if (which == "bt") {
        cfg.footprintBytes = s(GiB(10));
        cfg.wssBytes = s(GiB(9));
        cfg.sequentialFraction = 0.40;
        cfg.accessesPerSec = 1.3e6;
    } else if (which == "sp") {
        cfg.footprintBytes = s(GiB(12));
        cfg.wssBytes = s(GiB(10));
        cfg.sequentialFraction = 0.45;
        cfg.accessesPerSec = 1.0e6;
    } else if (which == "lu") {
        cfg.footprintBytes = s(GiB(8));
        cfg.wssBytes = s(GiB(8));
        cfg.sequentialFraction = 0.55;
        cfg.accessesPerSec = 0.9e6;
    } else if (which == "ua") {
        cfg.footprintBytes = s(GiB(10));
        cfg.wssBytes = s(GiB(6));
        cfg.sequentialFraction = 0.70;
        cfg.accessesPerSec = 0.4e6;
    } else if (which == "ft") {
        cfg.footprintBytes = s(GiB(24));
        cfg.wssBytes = s(GiB(20));
        cfg.sequentialFraction = 0.60;
        cfg.accessesPerSec = 1.2e6;
    } else {
        HS_FATAL("unknown NPB profile: ", which);
    }
    return std::make_unique<StreamWorkload>(which + ".D", cfg, rng);
}

std::unique_ptr<StreamWorkload>
makeRandom(Rng rng, Scale s, double work_seconds)
{
    StreamConfig cfg;
    cfg.footprintBytes = s(GiB(4));
    cfg.sequentialFraction = 0.0;
    cfg.accessesPerSec = 6.5e6;
    cfg.workSeconds = work_seconds;
    return std::make_unique<StreamWorkload>("random", cfg, rng);
}

std::unique_ptr<StreamWorkload>
makeSequential(Rng rng, Scale s, double work_seconds)
{
    StreamConfig cfg;
    cfg.footprintBytes = s(GiB(4));
    // High access coverage, but prefetch-friendly: the MMU overhead
    // HawkEye-G *estimates* is high while the PMU *measures* ~0
    // (Table 9's divergence).
    cfg.sequentialFraction = 1.0;
    cfg.accessesPerSec = 6.5e6;
    cfg.workSeconds = work_seconds;
    return std::make_unique<StreamWorkload>("sequential", cfg, rng);
}

std::unique_ptr<KeyValueStoreWorkload>
makeRedisLight(Rng rng, Scale s, double serve_seconds)
{
    KvConfig cfg;
    cfg.servesForever = true; // a server: don't wait for it
    const std::uint64_t keys = 40'000'000 / s.div;
    cfg.arenaBytes = s(GiB(52));
    KvPhase load;
    load.type = KvPhase::Type::kInsert;
    load.count = keys / 4; // 1KB values pack 4 per page slot
    load.valueBytes = 4096;
    load.opsPerSec = 1.5e6;
    KvPhase serve;
    serve.type = KvPhase::Type::kServe;
    serve.durationSec = serve_seconds;
    serve.opsPerSec = 10'000; // lightly loaded: TLB insensitive
    cfg.phases = {load, serve};
    return std::make_unique<KeyValueStoreWorkload>("Redis-light", cfg,
                                                   rng);
}

std::unique_ptr<LinearTouchWorkload>
makeTouchMicro(Rng rng, Scale s, unsigned iterations)
{
    LinearTouchConfig cfg;
    cfg.bytes = s(GiB(10));
    cfg.iterations = iterations;
    cfg.workPerPage = 500;
    return std::make_unique<LinearTouchWorkload>("touch-10GB", cfg,
                                                 rng);
}

std::unique_ptr<LinearTouchWorkload>
makeSpinUp(const std::string &name, std::uint64_t bytes, Rng rng)
{
    LinearTouchConfig cfg;
    cfg.bytes = bytes;
    cfg.iterations = 1;
    cfg.workPerPage = 60; // spin-up is purely fault dominated
    cfg.freeEachIteration = false;
    return std::make_unique<LinearTouchWorkload>(name, cfg, rng);
}

std::unique_ptr<LinearTouchWorkload>
makeSparseHash(Rng rng, Scale s)
{
    LinearTouchConfig cfg;
    cfg.bytes = s(GiB(36));
    cfg.iterations = 1;
    cfg.workPerPage = 900;
    cfg.rehashGrowth = true;
    cfg.freeEachIteration = false;
    return std::make_unique<LinearTouchWorkload>("SparseHash", cfg,
                                                 rng);
}

std::unique_ptr<LinearTouchWorkload>
makeHaccIo(Rng rng, Scale s)
{
    LinearTouchConfig cfg;
    cfg.bytes = s(GiB(6));
    cfg.iterations = 4; // IO buffer reuse across dumps
    cfg.workPerPage = 700;
    return std::make_unique<LinearTouchWorkload>("HACC-IO", cfg, rng);
}

} // namespace hawksim::workload
