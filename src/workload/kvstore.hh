/**
 * @file
 * A Redis-like in-memory key-value store model.
 *
 * Drives the paper's bloat experiments (Fig. 1, Table 7) and serves
 * as the TLB-insensitive co-runner in Fig. 8: phases of inserts,
 * random deletions (which release memory back to the OS with
 * MADV_DONTNEED, leaving the address space sparse) and request
 * serving. Small values reuse freed slots of their own size class,
 * large values carve fresh arena space — which is exactly the
 * allocator behaviour that turns recovered-then-re-promoted huge
 * pages into bloat (§2.1).
 */

#ifndef HAWKSIM_WORKLOAD_KVSTORE_HH
#define HAWKSIM_WORKLOAD_KVSTORE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "mem/content.hh"
#include "workload/workload.hh"

namespace hawksim::workload {

/** One phase of the store's lifecycle. */
struct KvPhase
{
    enum class Type
    {
        kInsert,  //!< insert `count` values of `valueBytes`
        kDelete,  //!< delete `fraction` of live values at random
        kServe,   //!< serve random GETs for `durationSec`
        kPause,   //!< idle for `durationSec`
    };

    Type type = Type::kInsert;
    std::uint64_t count = 0;
    std::uint64_t valueBytes = 4096;
    double fraction = 0.0;
    /**
     * Deletion clustering: values expire in contiguous runs of this
     * many (1 = uniform random). Real stores free extents of
     * related keys, which leaves per-region live fractions bimodal
     * rather than uniform — the pattern that separates Ingens-50%
     * from Ingens-90% in Table 7.
     */
    std::uint64_t clusterRun = 1;
    double durationSec = 0.0;
    /** Operation rate (inserts or GETs per second of compute). */
    double opsPerSec = 100'000.0;
};

struct KvConfig
{
    /** Arena (VMA) size; must fit the peak footprint. */
    std::uint64_t arenaBytes = GiB(2);
    std::vector<KvPhase> phases;
    /**
     * Server semantics: the store is a long-running service, so
     * experiment drivers should not wait for it to "finish" (its
     * serve phase may be unbounded).
     */
    bool servesForever = false;
    /** Per-request CPU cost beyond memory accesses. */
    TimeNs workPerOp = 2'000;
    /** Memory accesses per request (index + value walk). */
    unsigned accessesPerOp = 12;
    unsigned samplePerChunk = 512;
    unsigned touchesPerChunk = 2048;
};

class KeyValueStoreWorkload : public Workload
{
  public:
    KeyValueStoreWorkload(std::string name, KvConfig cfg, Rng rng)
        : name_(std::move(name)), cfg_(cfg), rng_(rng),
          content_(rng.fork())
    {}

    std::string name() const override { return name_; }
    void init(sim::Process &proc) override;
    void next(sim::Process &proc, TimeNs max_compute,
              WorkChunk &chunk) override;
    bool
    runsToCompletion() const override
    {
        return !cfg_.servesForever;
    }

    std::uint64_t liveValues() const { return live_.size(); }
    /** Logical dataset bytes currently live. */
    std::uint64_t liveBytes() const { return live_bytes_; }

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    struct Value
    {
        std::uint64_t firstPage; //!< arena-relative page index
        std::uint32_t pages;
    };

    /** Allocate arena pages for a value (reuse freed slots first). */
    Value allocValue(std::uint64_t value_bytes);
    Vpn pageOf(std::uint64_t arena_page) const;

    std::string name_;
    KvConfig cfg_;
    Rng rng_;
    mem::ContentGenerator content_;
    Addr base_ = 0;
    std::uint64_t arena_pages_ = 0;
    std::uint64_t cursor_ = 0; //!< bump pointer (arena pages)
    /** Free slots keyed by size class (pages per value). */
    std::deque<std::uint64_t> free_small_;
    std::uint32_t small_pages_ = 1;
    std::vector<Value> live_;
    std::uint64_t live_bytes_ = 0;
    std::size_t phase_ = 0;
    std::uint64_t phase_progress_ = 0;
    double phase_time_ = 0.0;
};

} // namespace hawksim::workload

#endif // HAWKSIM_WORKLOAD_KVSTORE_HH
