#include "workload/stream.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/process.hh"
#include "snap/state.hh"

namespace hawksim::workload {

void
StreamWorkload::init(sim::Process &proc)
{
    base_ = proc.space().mmapAnon(cfg_.footprintBytes, name_);
    pages_ = cfg_.footprintBytes / kPageSize;
    wss_pages_ =
        cfg_.wssBytes ? cfg_.wssBytes / kPageSize : pages_;
    wss_pages_ = std::min(wss_pages_, pages_);
    HS_ASSERT(pages_ > 0, "empty stream workload");
}

Vpn
StreamWorkload::drawPage()
{
    const Vpn base_vpn = addrToVpn(base_);
    // Sequential stream component walks the WSS in order.
    if (cfg_.sequentialFraction > 0.0 &&
        rng_.chance(cfg_.sequentialFraction)) {
        const Vpn v = base_vpn + (seq_pos_ % wss_pages_);
        seq_pos_++;
        return v;
    }
    // Pick the zone.
    std::uint64_t lo = 0;
    std::uint64_t hi = wss_pages_; // exclusive
    if (rng_.chance(cfg_.hotFraction)) {
        lo = static_cast<std::uint64_t>(cfg_.hotStart *
                                        static_cast<double>(pages_));
        hi = static_cast<std::uint64_t>(cfg_.hotEnd *
                                        static_cast<double>(pages_));
        hi = std::max(hi, lo + 1);
        hi = std::min(hi, pages_);
    }
    const std::uint64_t span = hi - lo;
    std::uint64_t idx = cfg_.zipfS > 0.0 ? rng_.zipf(span, cfg_.zipfS)
                                         : rng_.below(span);
    std::uint64_t page = lo + idx;
    // Coverage restriction: only the first coveragePages slots of
    // each 2MB region are real data (models sparse structures).
    if (cfg_.coveragePages < kPagesPerHuge) {
        page = (page & ~(kPagesPerHuge - 1)) |
               (page % cfg_.coveragePages);
        if (page >= pages_)
            page = pages_ - 1;
    }
    return base_vpn + page;
}

void
StreamWorkload::next(sim::Process &proc, TimeNs max_compute,
                     WorkChunk &chunk)
{
    (void)proc;
    chunk.reset();

    // Phase 1: touch the whole footprint (allocation phase).
    if (cfg_.initTouchAll && init_pos_ < pages_) {
        const std::uint64_t batch =
            std::min<std::uint64_t>(1024, pages_ - init_pos_);
        const Vpn base_vpn = addrToVpn(base_);
        chunk.faults.reserve(batch);
        chunk.writes.reserve(batch);
        for (std::uint64_t i = 0; i < batch; i++) {
            const Vpn vpn = base_vpn + init_pos_ + i;
            chunk.faults.push_back(vpn);
            chunk.writes.emplace_back(vpn, content_.data());
        }
        init_pos_ += batch;
        chunk.compute =
            static_cast<TimeNs>(batch) * cfg_.initWorkPerPage;
        chunk.accessCount = batch;
        chunk.sequentiality = 1.0;
        return;
    }

    // Phase 2: steady-state access stream.
    const double remaining =
        cfg_.workSeconds > 0.0 ? cfg_.workSeconds - work_done_
                               : 1e18;
    TimeNs compute = std::min<TimeNs>(
        max_compute,
        static_cast<TimeNs>(std::max(remaining, 0.0) * 1e9));
    if (compute <= 0) {
        chunk.done = true;
        return;
    }
    chunk.compute = compute;
    const double secs = static_cast<double>(compute) / 1e9;
    chunk.accessCount =
        static_cast<std::uint64_t>(cfg_.accessesPerSec * secs);
    chunk.sequentiality = cfg_.sequentialFraction;
    const unsigned n = std::min<std::uint64_t>(cfg_.samplePerChunk,
                                               chunk.accessCount);
    chunk.sample.reserve(n);
    for (unsigned i = 0; i < n; i++)
        chunk.sample.push_back({drawPage(), rng_.chance(0.3)});
    chunk.touches.reserve(cfg_.touchesPerChunk);
    for (unsigned i = 0; i < cfg_.touchesPerChunk; i++)
        chunk.touches.push_back(drawPage());
    chunk.opsCompleted =
        static_cast<std::uint64_t>(cfg_.opsPerSec * secs);
    work_done_ += secs;
    if (cfg_.workSeconds > 0.0 && work_done_ >= cfg_.workSeconds)
        chunk.done = true;
}

void
StreamWorkload::save(snap::Writer &w) const
{
    snap::saveRng(w, rng_);
    content_.save(w);
    w.u64(base_);
    w.u64(pages_);
    w.u64(wss_pages_);
    w.u64(init_pos_);
    w.u64(seq_pos_);
    w.f64(work_done_);
}

void
StreamWorkload::load(snap::Reader &r)
{
    snap::loadRng(r, rng_);
    content_.load(r);
    base_ = r.u64();
    pages_ = r.u64();
    wss_pages_ = r.u64();
    init_pos_ = r.u64();
    seq_pos_ = r.u64();
    work_done_ = r.f64();
}

} // namespace hawksim::workload
