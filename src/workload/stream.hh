/**
 * @file
 * The configurable access-stream workload.
 *
 * Models the memory behaviour of the paper's benchmark applications:
 * a footprint allocated up front (as Graph500/XSBench/NPB do), then a
 * steady-state access stream characterized by
 *   - a working set (subset of the footprint actively accessed),
 *   - a hot zone placed anywhere in the VA space (Graph500 and
 *     XSBench keep their hot structures at *high* VAs — the reason
 *     sequential low-to-high promotion is ineffective, Fig. 6),
 *   - skew (Zipf) and a sequential-stream component,
 *   - per-region access coverage (how many base pages of each 2MB
 *     region are used — HawkEye's promotion signal, §3.3).
 *
 * Factory presets for the paper's workloads live in npb.hh.
 */

#ifndef HAWKSIM_WORKLOAD_STREAM_HH
#define HAWKSIM_WORKLOAD_STREAM_HH

#include <cstdint>
#include <string>

#include "base/rng.hh"
#include "mem/content.hh"
#include "workload/workload.hh"

namespace hawksim::workload {

struct StreamConfig
{
    std::uint64_t footprintBytes = GiB(1);
    /** Actively accessed bytes; 0 means the whole footprint. */
    std::uint64_t wssBytes = 0;
    /** Hot zone as fractions of the footprint's VA range. */
    double hotStart = 0.0;
    double hotEnd = 1.0;
    /** Fraction of accesses that go to the hot zone. */
    double hotFraction = 1.0;
    /** Zipf exponent within the chosen zone (0 = uniform). */
    double zipfS = 0.0;
    /** Fraction of the stream that is next-page sequential. */
    double sequentialFraction = 0.0;
    /** Base pages used within each touched 2MB region (1..512). */
    unsigned coveragePages = 512;
    /** Memory accesses per second of useful compute. */
    double accessesPerSec = 50e6;
    /** Total useful compute; 0 = run until stopped. */
    double workSeconds = 20.0;
    /** Touch the whole footprint at start (allocate-then-compute). */
    bool initTouchAll = true;
    /** TLB sample size per chunk. */
    unsigned samplePerChunk = 512;
    /** Accessed-bit shadow touches per chunk. */
    unsigned touchesPerChunk = 2048;
    /** Per-page init compute (ns). */
    TimeNs initWorkPerPage = 100;
    /** Ops per second of useful compute (throughput metric). */
    double opsPerSec = 0.0;
};

class StreamWorkload : public Workload
{
  public:
    StreamWorkload(std::string name, StreamConfig cfg, Rng rng)
        : name_(std::move(name)), cfg_(cfg), rng_(rng),
          content_(rng.fork())
    {}

    std::string name() const override { return name_; }
    void init(sim::Process &proc) override;
    void next(sim::Process &proc, TimeNs max_compute,
              WorkChunk &chunk) override;
    bool
    runsToCompletion() const override
    {
        return cfg_.workSeconds > 0.0;
    }

    const StreamConfig &config() const { return cfg_; }
    /** Base VA of the footprint (valid after init). */
    Addr baseAddr() const { return base_; }

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    /** Draw one accessed page according to the stream model. */
    Vpn drawPage();

    std::string name_;
    StreamConfig cfg_;
    Rng rng_;
    mem::ContentGenerator content_;
    Addr base_ = 0;
    std::uint64_t pages_ = 0;      //!< total footprint pages
    std::uint64_t wss_pages_ = 0;  //!< accessible pages
    std::uint64_t init_pos_ = 0;   //!< init-touch cursor
    std::uint64_t seq_pos_ = 0;    //!< sequential stream cursor
    double work_done_ = 0.0;       //!< useful compute consumed (s)
};

} // namespace hawksim::workload

#endif // HAWKSIM_WORKLOAD_STREAM_HH
