/**
 * @file
 * The Table 2 application catalogue: 79 memory-behaviour profiles
 * across seven benchmark suites.
 *
 * Each entry models one application's memory behaviour (footprint,
 * WSS, access rate, sequentiality); the Table 2 bench *measures*
 * each profile's huge-page speedup through the TLB model and
 * classifies it as TLB-sensitive when the speedup exceeds 3%. The
 * `paperSensitive` flag records the paper's own classification for
 * comparison.
 */

#ifndef HAWKSIM_WORKLOAD_SUITE_HH
#define HAWKSIM_WORKLOAD_SUITE_HH

#include <string>
#include <vector>

#include "workload/stream.hh"

namespace hawksim::workload {

struct SuiteApp
{
    std::string suite;
    std::string name;
    /** The paper's Table 2 classification. */
    bool paperSensitive;
    StreamConfig config;
};

/** The full 79-application catalogue. */
std::vector<SuiteApp> table2Catalog();

} // namespace hawksim::workload

#endif // HAWKSIM_WORKLOAD_SUITE_HH
