#include "workload/linear_touch.hh"

#include <algorithm>

#include "sim/process.hh"
#include "snap/state.hh"

namespace hawksim::workload {

void
LinearTouchWorkload::init(sim::Process &proc)
{
    base_ = proc.space().mmapAnon(cfg_.bytes, name_);
    pages_ = cfg_.bytes / kPageSize;
    rehash_at_ = cfg_.rehashGrowth ? std::max<std::uint64_t>(
                                         pages_ / 64, 1024)
                                   : 0;
}

void
LinearTouchWorkload::next(sim::Process &proc, TimeNs max_compute,
                          WorkChunk &chunk)
{
    (void)max_compute;
    chunk.reset();
    if (iter_ >= cfg_.iterations) {
        chunk.done = true;
        return;
    }

    const Vpn base_vpn = addrToVpn(base_);
    std::uint64_t batch =
        std::min<std::uint64_t>(cfg_.chunkPages, pages_ - pos_);

    // SparseHash-style rehash: when the table doubles, re-touch the
    // already-populated range (copy into the grown table).
    if (cfg_.rehashGrowth && rehash_at_ && pos_ >= rehash_at_ &&
        pos_ < pages_) {
        const std::uint64_t copy =
            std::min<std::uint64_t>(cfg_.chunkPages, rehash_at_);
        for (std::uint64_t i = 0; i < copy; i++) {
            const Vpn vpn = base_vpn + (pos_ + i) % pages_;
            chunk.sample.push_back({vpn, true});
        }
        rehash_at_ *= 2;
    }

    chunk.faults.reserve(batch);
    for (std::uint64_t i = 0; i < batch; i++) {
        const Vpn vpn = base_vpn + pos_ + i;
        chunk.faults.push_back(vpn);
        if (cfg_.writeContent)
            chunk.writes.emplace_back(vpn, content_.data());
    }
    pos_ += batch;
    total_touched_ += batch;
    chunk.compute = static_cast<TimeNs>(batch) * cfg_.workPerPage;
    chunk.accessCount = batch;
    chunk.sequentiality = 1.0;
    chunk.opsCompleted = batch;

    if (pos_ >= pages_) {
        pos_ = 0;
        iter_++;
        if (cfg_.rehashGrowth)
            rehash_at_ = std::max<std::uint64_t>(pages_ / 64, 1024);
        if (cfg_.freeEachIteration || iter_ >= cfg_.iterations) {
            chunk.frees.push_back(
                {base_, pages_ * kPageSize});
        }
        if (iter_ >= cfg_.iterations)
            chunk.done = true;
    }
    (void)proc;
}


void
LinearTouchWorkload::save(snap::Writer &w) const
{
    content_.save(w);
    w.u64(base_);
    w.u64(pages_);
    w.u64(pos_);
    w.u32(iter_);
    w.u64(total_touched_);
    w.u64(rehash_at_);
}

void
LinearTouchWorkload::load(snap::Reader &r)
{
    content_.load(r);
    base_ = r.u64();
    pages_ = r.u64();
    pos_ = r.u64();
    iter_ = r.u32();
    total_touched_ = r.u64();
    rehash_at_ = r.u64();
}

} // namespace hawksim::workload
