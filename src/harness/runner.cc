#include "harness/runner.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <string_view>
#include <thread>

#include "base/logging.hh"
#include "harness/seed.hh"
#include "obs/introspect.hh"
#include "obs/perfetto.hh"

namespace hawksim::harness {

Json
metricsToJson(const sim::Metrics &m)
{
    Json out = Json::object();
    Json events = Json::array();
    for (const auto &ev : m.events()) {
        Json e = Json::object();
        e.set("t", Json(static_cast<std::int64_t>(ev.time)));
        e.set("what", Json(ev.what));
        events.push(std::move(e));
    }
    out.set("events", std::move(events));
    Json series = Json::object();
    for (auto id : m.sortedIds()) {
        const TimeSeries &ts = m.series(id);
        Json t = Json::array();
        Json v = Json::array();
        for (const auto &p : ts.points()) {
            t.push(Json(static_cast<std::int64_t>(p.time)));
            v.push(Json(p.value));
        }
        Json one = Json::object();
        one.set("t", std::move(t));
        one.set("v", std::move(v));
        series.set(ts.name(), std::move(one));
    }
    out.set("series", std::move(series));
    return out;
}

sim::Metrics
metricsFromJson(const Json &j)
{
    sim::Metrics m;
    for (const auto &[name, ser] : j["series"].members()) {
        const auto id = m.seriesId(name);
        const Json &t = ser["t"];
        const Json &v = ser["v"];
        HS_ASSERT(t.size() == v.size(),
                  "series ", name, " t/v length mismatch");
        for (std::size_t i = 0; i < t.size(); i++) {
            m.record(id, static_cast<TimeNs>(t.at(i).asInt()),
                     v.at(i).asDouble());
        }
    }
    for (const auto &ev : j["events"].items()) {
        m.event(static_cast<TimeNs>(ev["t"].asInt()),
                ev["what"].asString());
    }
    return m;
}

Json
costToJson(const obs::CostAccounting &cost,
           const obs::TraceStats *traceStats)
{
    Json out = Json::object();
    out.set("total_ns",
            Json(static_cast<std::int64_t>(cost.totalNs())));
    Json subsys = Json::object();
    for (unsigned s = 0; s < obs::kSubsysCount; s++) {
        const auto sub = static_cast<obs::Subsys>(s);
        subsys.set(obs::subsysName(sub),
                   Json(static_cast<std::int64_t>(
                       cost.subsysNs(sub))));
    }
    out.set("subsys_ns", std::move(subsys));
    Json counters = Json::object();
    for (unsigned c = 0; c < obs::kCounterCount; c++) {
        const auto ctr = static_cast<obs::Counter>(c);
        counters.set(obs::counterName(ctr),
                     Json(static_cast<std::int64_t>(
                         cost.counter(ctr))));
    }
    out.set("counters", std::move(counters));
    const obs::LatencyHistogram &h = cost.faultLatency();
    Json lat = Json::object();
    lat.set("count", Json(static_cast<std::int64_t>(h.count())));
    lat.set("min", Json(static_cast<std::int64_t>(h.minimum())));
    lat.set("max", Json(static_cast<std::int64_t>(h.maximum())));
    lat.set("mean", Json(h.mean()));
    lat.set("p50", Json(h.quantile(0.50)));
    lat.set("p95", Json(h.quantile(0.95)));
    lat.set("p99", Json(h.quantile(0.99)));
    out.set("fault_latency_ns", std::move(lat));
    // Tracer accounting rides along only for traced runs, so reports
    // of untraced runs keep their historical byte-exact shape.
    if (traceStats != nullptr && traceStats->enabled) {
        Json tr = Json::object();
        tr.set("emitted", Json(static_cast<std::int64_t>(
                              traceStats->emitted)));
        tr.set("dropped", Json(static_cast<std::int64_t>(
                              traceStats->dropped)));
        Json by_cat = Json::object();
        for (unsigned c = 0; c < obs::kCatCount; c++) {
            by_cat.set(obs::catName(static_cast<obs::Cat>(c)),
                       Json(static_cast<std::int64_t>(
                           traceStats->droppedByCat[c])));
        }
        tr.set("dropped_by_cat", std::move(by_cat));
        out.set("trace", std::move(tr));
    }
    return out;
}

Json
Report::toJson() const
{
    Json out = Json::object();
    out.set("schema", Json(kReportSchema));
    out.set("master_seed", Json(masterSeed));
    out.set("run_count", Json(static_cast<std::int64_t>(runs.size())));
    Json jruns = Json::array();
    for (const RunRecord &r : runs) {
        Json jr = Json::object();
        jr.set("experiment", Json(r.point.experiment));
        jr.set("index",
               Json(static_cast<std::int64_t>(r.point.index)));
        Json params = Json::object();
        for (const auto &[k, v] : r.point.params)
            params.set(k, Json(v));
        jr.set("params", std::move(params));
        jr.set("seed", Json(r.seed));
        jr.set("sim_time_ns",
               Json(static_cast<std::int64_t>(r.output.simTimeNs)));
        Json scalars = Json::object();
        for (const auto &[k, v] : r.output.scalars)
            scalars.set(k, Json(v));
        jr.set("scalars", std::move(scalars));
        jr.set("cost", costToJson(r.output.cost,
                                  &r.output.traceStats));
        jr.set("metrics", metricsToJson(r.output.metrics));
        jruns.push(std::move(jr));
    }
    out.set("runs", std::move(jruns));
    return out;
}

Json
Report::profileJson() const
{
    Json out = Json::object();
    out.set("schema", Json("hawksim-bench-profile/v1"));
    out.set("total_wall_ms", Json(totalWallMs));
    Json jruns = Json::array();
    for (const RunRecord &r : runs) {
        Json jr = Json::object();
        jr.set("experiment", Json(r.point.experiment));
        jr.set("index",
               Json(static_cast<std::int64_t>(r.point.index)));
        jr.set("wall_ms", Json(r.wallMs));
        jr.set("sim_time_ns",
               Json(static_cast<std::int64_t>(r.output.simTimeNs)));
        jruns.push(std::move(jr));
    }
    out.set("runs", std::move(jruns));
    return out;
}

namespace {

/**
 * Metrics series exported as Perfetto counter tracks: the headline
 * memory-state series, the vmstat sampler's buddy depths, and the
 * per-process RSS / huge-RSS series.
 */
bool
isCounterSeries(std::string_view name)
{
    if (name == "sys.fmfi9" || name == "sys.free_frames")
        return true;
    if (name.substr(0, 7) == "vmstat.")
        return true;
    if (name.size() > 1 && name[0] == 'p') {
        std::size_t i = 1;
        while (i < name.size() && name[i] >= '0' && name[i] <= '9')
            i++;
        if (i > 1 && i < name.size()) {
            const std::string_view rest = name.substr(i);
            return rest == ".rss_pages" || rest == ".huge_pages";
        }
    }
    return false;
}

} // namespace

void
Report::writeTrace(std::ostream &os) const
{
    obs::PerfettoWriter w(os);
    for (std::size_t i = 0; i < runs.size(); i++) {
        const RunRecord &r = runs[i];
        const auto pid = static_cast<std::uint32_t>(i + 1);
        w.beginProcess(pid, r.point.experiment + "/" +
                                r.point.label());
        w.runSpan(pid, r.output.simTimeNs);
        for (const obs::TraceEvent &ev : r.output.trace)
            w.event(pid, ev);

        // Counter tracks from the run's metrics, in sorted-name
        // order (the counter samples carry integer values; FMFI is
        // scaled to fixed-point thousandths to stay integral).
        const sim::Metrics &m = r.output.metrics;
        for (auto id : m.sortedIds()) {
            const TimeSeries &ts = m.series(id);
            if (!isCounterSeries(ts.name()))
                continue;
            const bool fixed_point = ts.name() == "sys.fmfi9";
            const std::string cname =
                fixed_point ? ts.name() + "_x1000" : ts.name();
            for (const auto &p : ts.points()) {
                const double v =
                    fixed_point ? p.value * 1000.0 : p.value;
                w.counter(pid, cname, p.time, std::llround(v));
            }
        }

        // Cost accounting as end-of-run counter samples: one track
        // per subsystem plus the fault-latency percentiles.
        const obs::CostAccounting &cost = r.output.cost;
        for (unsigned s = 0; s < obs::kSubsysCount; s++) {
            const auto sub = static_cast<obs::Subsys>(s);
            w.counter(pid,
                      std::string("cost.") + obs::subsysName(sub) +
                          "_ns",
                      r.output.simTimeNs, cost.subsysNs(sub));
        }
        const obs::LatencyHistogram &h = cost.faultLatency();
        w.counter(pid, "cost.fault_p50_ns", r.output.simTimeNs,
                  std::llround(h.quantile(0.50)));
        w.counter(pid, "cost.fault_p95_ns", r.output.simTimeNs,
                  std::llround(h.quantile(0.95)));
        w.counter(pid, "cost.fault_p99_ns", r.output.simTimeNs,
                  std::llround(h.quantile(0.99)));

        // Ring-drop accounting as one metadata instant, so a
        // truncated trace announces what it lost.
        const obs::TraceStats &st = r.output.traceStats;
        if (st.dropped > 0) {
            std::string args =
                "\"emitted\":" + std::to_string(st.emitted) +
                ",\"dropped\":" + std::to_string(st.dropped);
            for (unsigned c = 0; c < obs::kCatCount; c++) {
                if (st.droppedByCat[c] == 0)
                    continue;
                args += ",\"dropped_";
                args += obs::catName(static_cast<obs::Cat>(c));
                args += "\":" + std::to_string(st.droppedByCat[c]);
            }
            w.instantArgs(pid, 0, "tracer_drops", "trace",
                          r.output.simTimeNs, args);
        }
    }
    w.finish();
}

Json
Report::inspectJson() const
{
    Json out = Json::object();
    out.set("schema", Json(obs::kInspectSchema));
    out.set("master_seed", Json(masterSeed));
    out.set("run_count",
            Json(static_cast<std::int64_t>(runs.size())));
    Json jruns = Json::array();
    for (const RunRecord &r : runs) {
        Json jr = Json::object();
        jr.set("experiment", Json(r.point.experiment));
        jr.set("index",
               Json(static_cast<std::int64_t>(r.point.index)));
        Json params = Json::object();
        for (const auto &[k, v] : r.point.params)
            params.set(k, Json(v));
        jr.set("params", std::move(params));
        jr.set("seed", Json(r.seed));
        Json snaps = Json::array();
        for (const obs::Snapshot &s : r.output.snapshots)
            snaps.push(obs::snapshotToJson(s));
        jr.set("snapshots", std::move(snaps));
        jruns.push(std::move(jr));
    }
    out.set("runs", std::move(jruns));
    return out;
}

bool
Runner::matches(const std::string &filter, const RunPoint &point)
{
    if (filter.empty())
        return true;
    if (point.experiment.find(filter) != std::string::npos)
        return true;
    const std::string full = point.experiment + "/" + point.label();
    return full.find(filter) != std::string::npos;
}

Report
Runner::run(const Registry &reg) const
{
    struct Job
    {
        const Experiment *experiment;
        RunPoint point;
        std::uint64_t seed;
    };
    std::vector<Job> jobs;
    for (const auto &exp : reg.experiments()) {
        HS_ASSERT(exp->runFn() != nullptr, "experiment ",
                  exp->name(), " has no run function");
        for (RunPoint &pt : exp->expand()) {
            const std::uint64_t seed =
                deriveSeed(opts_.masterSeed, pt.experiment, pt.index);
            if (!matches(opts_.filter, pt))
                continue;
            jobs.push_back({exp.get(), std::move(pt), seed});
        }
    }

    Report report;
    report.masterSeed = opts_.masterSeed;
    report.runs.resize(jobs.size());

    unsigned jobCount = opts_.jobs;
    if (jobCount == 0) {
        jobCount = std::thread::hardware_concurrency();
        if (jobCount == 0)
            jobCount = 1;
    }
    jobCount = static_cast<unsigned>(
        std::min<std::size_t>(jobCount, std::max<std::size_t>(
                                            jobs.size(), 1)));

    const auto sweep_start = std::chrono::steady_clock::now();
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex io_mutex;
    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const Job &job = jobs[i];
            const auto t0 = std::chrono::steady_clock::now();
            snap::SnapConfig snap = opts_.snap;
            if (snap.checkpointEvery > 0 &&
                !opts_.checkpointOut.empty()) {
                snap.checkpointPrefix =
                    opts_.checkpointOut + "/" +
                    job.point.experiment + "-" +
                    std::to_string(job.point.index);
            }
            RunContext ctx(job.point, job.seed, &opts_.trace,
                           &opts_.fault, &opts_.inspect, &snap);
            RunRecord &rec = report.runs[i];
            rec.point = job.point;
            rec.seed = job.seed;
            rec.output = job.experiment->runFn()(ctx);
            rec.wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            const std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opts_.verbose) {
                std::lock_guard<std::mutex> lock(io_mutex);
                std::fprintf(stderr, "[%zu/%zu] %s %s (%.0f ms)\n",
                             finished, jobs.size(),
                             job.point.experiment.c_str(),
                             job.point.label().c_str(), rec.wallMs);
            }
        }
    };

    if (jobCount <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobCount);
        for (unsigned t = 0; t < jobCount; t++)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    report.totalWallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - sweep_start)
            .count();
    return report;
}

} // namespace hawksim::harness
