/**
 * @file
 * Parallel experiment runner.
 *
 * Expands every registered experiment into grid points, executes them
 * across a std::thread pool, and assembles a Report whose canonical
 * JSON is byte-identical for any --jobs value: per-point seeds are
 * derived from (master seed, experiment name, grid index) only, each
 * run owns its System, and results are emitted in expansion order
 * regardless of completion order. Wall-clock profiling is kept out of
 * the canonical report (it is the one thing that legitimately varies
 * between runs) and exposed separately.
 */

#ifndef HAWKSIM_HARNESS_RUNNER_HH
#define HAWKSIM_HARNESS_RUNNER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "harness/experiment.hh"
#include "harness/json.hh"
#include "obs/trace.hh"

namespace hawksim::harness {

struct RunnerOptions
{
    /** Worker threads (0 = hardware concurrency). */
    unsigned jobs = 0;
    /** Master seed every per-run seed derives from. */
    std::uint64_t masterSeed = 42;
    /**
     * Substring filter; a point runs if this occurs in its
     * experiment name or in "name/label". Empty = run everything.
     */
    std::string filter;
    /** Progress lines on stderr. */
    bool verbose = false;
    /**
     * Per-run trace configuration (disabled by default). The CLI
     * enables it when --trace is given; the drained events land in
     * each RunRecord and are exported with Report::writeTrace.
     */
    obs::TraceConfig trace;
    /**
     * Per-run fault-injection + audit configuration (inert by
     * default). The CLI fills it from --chaos / --fault-rate /
     * --fault-script / --audit-every; injection decisions derive
     * from each run's own seed, so the report stays byte-identical
     * for any --jobs value.
     */
    fault::FaultConfig fault;
    /**
     * Per-run introspection snapshots (disabled by default). The CLI
     * enables it for --inspect-every/--inspect-out; snapshots land in
     * each RunRecord and are exported with Report::inspectJson.
     */
    obs::InspectConfig inspect;
    /**
     * Checkpoint / restore / replay (inert by default). The CLI
     * fills it from --checkpoint-every / --restore / --replay-to;
     * `snap.checkpointPrefix` is ignored here — the runner derives a
     * per-grid-point prefix `<checkpointOut>/<experiment>-<index>`
     * so parallel points never clobber each other's files.
     */
    snap::SnapConfig snap;
    /** Directory for checkpoint files (--checkpoint-out). */
    std::string checkpointOut;
};

/** One executed grid point. */
struct RunRecord
{
    RunPoint point;
    std::uint64_t seed = 0;
    RunOutput output;
    /** Host wall-clock of this run (profiling only, not canonical). */
    double wallMs = 0.0;
};

/** Schema tag stamped into the top-level canonical JSON report. */
inline constexpr const char *kReportSchema = "hawksim-report/v1";

struct Report
{
    std::uint64_t masterSeed = 0;
    std::vector<RunRecord> runs;
    /** Total host wall-clock of the sweep. */
    double totalWallMs = 0.0;

    /**
     * Canonical machine-readable report: deterministic for a given
     * (registry, master seed, filter), independent of --jobs.
     */
    Json toJson() const;
    /** Wall-clock profile (non-deterministic; separate artifact). */
    Json profileJson() const;
    /**
     * Chrome trace_event / Perfetto JSON of every run's trace events
     * (one Perfetto process per run, in expansion order), plus
     * counter tracks (FMFI, free frames, vmstat buddy depths,
     * per-process RSS/huge-RSS, per-subsystem cost, fault-latency
     * percentiles) and tracer drop metadata. Like toJson, the output
     * is byte-identical for any --jobs value.
     */
    void writeTrace(std::ostream &os) const;
    /**
     * Versioned canonical-JSON dump of every run's snapshots
     * (obs::kInspectSchema; the --inspect-out artifact). Deterministic
     * and byte-identical for any --jobs value.
     */
    Json inspectJson() const;
};

/**
 * Serialize one run's cost accounting (always-on observability).
 * When @p traceStats describes an *enabled* tracer, a "trace"
 * sub-object with emit/drop accounting is appended; untraced runs
 * omit it so their reports stay byte-identical to older builds.
 */
Json costToJson(const obs::CostAccounting &cost,
                const obs::TraceStats *traceStats = nullptr);

/** Serialize one run's Metrics (series sorted by name + events). */
Json metricsToJson(const sim::Metrics &m);
/** Rebuild Metrics from metricsToJson output (round-trip). */
sim::Metrics metricsFromJson(const Json &j);

class Runner
{
  public:
    explicit Runner(RunnerOptions opts) : opts_(opts) {}

    /** Execute all matching grid points of @p reg. */
    Report run(const Registry &reg) const;

    /** Does @p point pass the options' filter? */
    static bool matches(const std::string &filter,
                        const RunPoint &point);

  private:
    RunnerOptions opts_;
};

} // namespace hawksim::harness

#endif // HAWKSIM_HARNESS_RUNNER_HH
