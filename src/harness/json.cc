#include "harness/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hawksim::harness {

namespace {

const Json kNullJson{};

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
}

void
appendNumber(std::string &out, double v, bool is_int,
             std::int64_t iv)
{
    if (is_int) {
        char buf[32];
        auto res = std::to_chars(buf, buf + sizeof(buf), iv);
        out.append(buf, res.ptr);
        return;
    }
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null (deterministic and lossy by
        // design — series should not contain non-finite samples).
        out += "null";
        return;
    }
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

} // namespace

const Json &
Json::operator[](std::string_view key) const
{
    for (const auto &[k, v] : members_) {
        if (k == key)
            return v;
    }
    return kNullJson;
}

bool
Json::contains(std::string_view key) const
{
    for (const auto &[k, v] : members_) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };
    switch (type_) {
      case Type::kNull: out += "null"; break;
      case Type::kBool: out += bool_ ? "true" : "false"; break;
      case Type::kNumber: appendNumber(out, num_, is_int_, int_); break;
      case Type::kString: appendEscaped(out, str_); break;
      case Type::kArray:
        out.push_back('[');
        for (std::size_t i = 0; i < items_.size(); i++) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (!items_.empty())
            newline(depth);
        out.push_back(']');
        break;
      case Type::kObject:
        out.push_back('{');
        for (std::size_t i = 0; i < members_.size(); i++) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            appendEscaped(out, members_[i].first);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!members_.empty())
            newline(depth);
        out.push_back('}');
        break;
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out, 0, 0);
    return out;
}

std::string
Json::dumpPretty() const
{
    std::string out;
    dumpTo(out, 2, 0);
    out.push_back('\n');
    return out;
}

bool
Json::operator==(const Json &o) const
{
    if (type_ != o.type_)
        return false;
    switch (type_) {
      case Type::kNull: return true;
      case Type::kBool: return bool_ == o.bool_;
      case Type::kNumber:
        if (is_int_ && o.is_int_)
            return int_ == o.int_;
        return num_ == o.num_;
      case Type::kString: return str_ == o.str_;
      case Type::kArray: return items_ == o.items_;
      case Type::kObject: return members_ == o.members_;
    }
    return false;
}

namespace {

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            pos++;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            pos++;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("bad literal");
        pos += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        pos++;
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                pos++;
                return true;
            }
            if (c == '\\') {
                pos++;
                if (pos >= text.size())
                    return fail("bad escape");
                switch (text[pos]) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'u': {
                    if (pos + 4 >= text.size())
                        return fail("bad \\u escape");
                    unsigned v = 0;
                    for (int i = 1; i <= 4; i++) {
                        char h = text[pos + i];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                    // Reports only escape control bytes; encode the
                    // code point as UTF-8 for completeness.
                    if (v < 0x80) {
                        out.push_back(static_cast<char>(v));
                    } else if (v < 0x800) {
                        out.push_back(
                            static_cast<char>(0xc0 | (v >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (v & 0x3f)));
                    } else {
                        out.push_back(
                            static_cast<char>(0xe0 | (v >> 12)));
                        out.push_back(static_cast<char>(
                            0x80 | ((v >> 6) & 0x3f)));
                        out.push_back(
                            static_cast<char>(0x80 | (v & 0x3f)));
                    }
                    break;
                  }
                  default: return fail("bad escape");
                }
                pos++;
            } else {
                out.push_back(c);
                pos++;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Json &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Json();
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Json(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Json(false);
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == '[') {
            pos++;
            out = Json::array();
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                pos++;
                return true;
            }
            while (true) {
                Json item;
                if (!parseValue(item))
                    return false;
                out.push(std::move(item));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    pos++;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '{') {
            pos++;
            out = Json::object();
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                pos++;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return false;
                Json value;
                if (!parseValue(value))
                    return false;
                out.set(std::move(key), std::move(value));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    pos++;
                    continue;
                }
                return consume('}');
            }
        }
        // Number: find its extent, try integer first, then double.
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E')) {
            pos++;
        }
        if (pos == start)
            return fail("unexpected character");
        const std::string_view tok = text.substr(start, pos - start);
        std::int64_t iv = 0;
        auto ires =
            std::from_chars(tok.data(), tok.data() + tok.size(), iv);
        if (ires.ec == std::errc() &&
            ires.ptr == tok.data() + tok.size()) {
            out = Json(iv);
            return true;
        }
        double dv = 0.0;
        auto dres =
            std::from_chars(tok.data(), tok.data() + tok.size(), dv);
        if (dres.ec != std::errc() ||
            dres.ptr != tok.data() + tok.size())
            return fail("bad number");
        out = Json(dv);
        return true;
    }
};

} // namespace

Json
Json::parse(std::string_view text, std::string *error)
{
    Parser p{text, 0, {}};
    Json out;
    if (!p.parseValue(out)) {
        if (error)
            *error = p.error;
        return Json();
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing characters at offset " +
                     std::to_string(p.pos);
        return Json();
    }
    if (error)
        error->clear();
    return out;
}

} // namespace hawksim::harness
