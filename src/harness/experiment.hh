/**
 * @file
 * Experiment registry for the harness: named experiments over a
 * (policy × workload × config × seed) grid.
 *
 * A bench registers an Experiment with ordered axes and a run
 * function; the harness expands the cartesian product into RunPoints
 * (first axis slowest, lexicographic), derives a deterministic seed
 * per point, and executes points across a thread pool. The run
 * function builds its own sim::System from the RunContext and returns
 * the run's Metrics plus named scalar results.
 */

#ifndef HAWKSIM_HARNESS_EXPERIMENT_HH
#define HAWKSIM_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "fault/fault.hh"
#include "obs/cost_account.hh"
#include "obs/introspect.hh"
#include "obs/trace.hh"
#include "sim/metrics.hh"
#include "snap/snap.hh"

namespace hawksim::sim {
class System;
} // namespace hawksim::sim

namespace hawksim::harness {

/** One grid dimension: an axis name and its values. */
struct Axis
{
    std::string name;
    std::vector<std::string> values;
};

/** One expanded grid point of an experiment. */
struct RunPoint
{
    std::string experiment;
    /** Index of this point within the experiment's expanded grid. */
    std::uint64_t index = 0;
    /** (axis, value) pairs in axis declaration order. */
    std::vector<std::pair<std::string, std::string>> params;

    /** Value of @p axis; fatal if the axis does not exist. */
    const std::string &param(std::string_view axis) const;
    /** "axis=value axis=value" in axis order. */
    std::string label() const;
};

/** Everything a run function gets to see. */
class RunContext
{
  public:
    RunContext(const RunPoint &point, std::uint64_t seed,
               const obs::TraceConfig *trace = nullptr,
               const fault::FaultConfig *fault = nullptr,
               const obs::InspectConfig *inspect = nullptr,
               const snap::SnapConfig *snap = nullptr)
        : point_(point), seed_(seed), trace_(trace), fault_(fault),
          inspect_(inspect), snap_(snap)
    {}

    const RunPoint &point() const { return point_; }
    /** Deterministically derived seed for this grid point. */
    std::uint64_t seed() const { return seed_; }
    /**
     * Trace configuration the harness wants for this run (disabled
     * unless the user passed --trace). Benches copy it into their
     * SystemConfig and call RunOutput::captureObs before returning.
     */
    const obs::TraceConfig &trace() const;
    /**
     * Fault-injection / audit configuration (inert unless the user
     * passed --chaos or its friends). Benches copy it into their
     * SystemConfig next to trace().
     */
    const fault::FaultConfig &fault() const;
    /**
     * Introspection snapshot configuration (disabled unless the user
     * passed --inspect-every/--inspect-out). Benches copy it into
     * their SystemConfig next to trace() and fault().
     */
    const obs::InspectConfig &inspect() const;
    /**
     * Checkpoint/restore/replay configuration (inert unless the user
     * passed --checkpoint-every/--restore/--replay-to). Benches copy
     * it into their SystemConfig next to trace()/fault()/inspect();
     * the runner has already derived a per-grid-point checkpoint
     * prefix from --checkpoint-out.
     */
    const snap::SnapConfig &snap() const;
    const std::string &
    param(std::string_view axis) const
    {
        return point_.param(axis);
    }

  private:
    const RunPoint &point_;
    std::uint64_t seed_;
    const obs::TraceConfig *trace_;
    const fault::FaultConfig *fault_;
    const obs::InspectConfig *inspect_;
    const snap::SnapConfig *snap_;
};

/** What a run returns: time series, events and scalar results. */
struct RunOutput
{
    /** Moved out of the run's System (leave empty if none). */
    sim::Metrics metrics;
    /** Named scalar results in insertion order. */
    std::vector<std::pair<std::string, double>> scalars;
    /** Final simulated time of the run. */
    TimeNs simTimeNs = 0;
    /** Drained trace events (empty unless tracing was enabled). */
    std::vector<obs::TraceEvent> trace;
    /** Tracer accounting (emit/drop counts; disabled when not traced). */
    obs::TraceStats traceStats;
    /** Per-subsystem cost accounting of the run (always captured). */
    obs::CostAccounting cost;
    /** Periodic snapshots (empty unless introspection was enabled). */
    std::vector<obs::Snapshot> snapshots;

    void
    scalar(std::string name, double v)
    {
        scalars.emplace_back(std::move(name), v);
    }

    /** Capture trace, cost accounting + snapshots of a finished run. */
    void captureObs(sim::System &sys);
};

using RunFn = std::function<RunOutput(const RunContext &)>;

class Experiment
{
  public:
    Experiment(std::string name, std::string description)
        : name_(std::move(name)), description_(std::move(description))
    {}

    /** Append a grid axis. Returns *this for chaining. */
    Experiment &
    axis(std::string axis_name, std::vector<std::string> values);

    /** Install the run function. Returns *this for chaining. */
    Experiment &
    run(RunFn fn)
    {
        fn_ = std::move(fn);
        return *this;
    }

    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }
    const std::vector<Axis> &axes() const { return axes_; }
    const RunFn &runFn() const { return fn_; }

    /** Number of grid points (product of axis sizes; 1 if no axes). */
    std::uint64_t gridSize() const;

    /**
     * Expand the grid in deterministic order: the first declared
     * axis varies slowest, the last fastest.
     */
    std::vector<RunPoint> expand() const;

  private:
    std::string name_;
    std::string description_;
    std::vector<Axis> axes_;
    RunFn fn_;
};

/** Ordered collection of registered experiments. */
class Registry
{
  public:
    /** Register a new experiment; fatal on duplicate names. */
    Experiment &add(std::string name, std::string description);

    Experiment *find(std::string_view name);
    const std::vector<std::unique_ptr<Experiment>> &experiments() const
    {
        return experiments_;
    }

  private:
    std::vector<std::unique_ptr<Experiment>> experiments_;
};

} // namespace hawksim::harness

#endif // HAWKSIM_HARNESS_EXPERIMENT_HH
