#include "harness/cli.hh"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "base/logging.hh"
#include "fault/fault.hh"
#include "harness/runner.hh"
#include "obs/introspect.hh"

namespace hawksim::harness {

namespace {

void
printUsage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "  --list           list experiments and grid sizes, then exit\n"
        "  --filter SUBSTR  run only grid points whose experiment name\n"
        "                   or \"name/label\" contains SUBSTR\n"
        "  --jobs N         worker threads (default: all cores);\n"
        "                   the report is identical for any N\n"
        "  --seed S         master seed (default 42)\n"
        "  --out FILE       canonical JSON report\n"
        "                   (default results/bench.json)\n"
        "  --profile FILE   also write wall-clock profile JSON\n"
        "  --trace FILE     write a Chrome trace_event JSON of every\n"
        "                   run (open in ui.perfetto.dev); identical\n"
        "                   for any --jobs\n"
        "  --trace-filter C comma-separated event categories to trace\n"
        "                   (fault,promote,demote,zero,bloat,compact,\n"
        "                   reclaim,tlb,proc; default: all)\n"
        "  --chaos          enable fault injection + invariant audits\n"
        "                   + the deterministic OOM killer (default\n"
        "                   rate 0.01 unless --fault-rate or\n"
        "                   --fault-script is given); the report is\n"
        "                   still identical for any --jobs\n"
        "  --fault-rate R   per-probe injection probability in [0,1]\n"
        "                   (implies --chaos)\n"
        "  --fault-script F scripted injection: lines of\n"
        "                   \"<site> <occurrence>\" (1-based), e.g.\n"
        "                   \"buddy-alloc 3\"; disables probabilistic\n"
        "                   injection (implies --chaos)\n"
        "  --audit-every N  run the invariant auditor every N ticks\n"
        "                   (0 = only at end of run / after faults)\n"
        "  --inspect-every N take a procfs-style state snapshot every\n"
        "                   N sim ticks (meminfo/buddyinfo/smaps/\n"
        "                   pagemap/TLB occupancy + vmstat.* series)\n"
        "  --inspect-out F  write all snapshots as versioned\n"
        "                   canonical JSON (implies --inspect-every\n"
        "                   100 unless given); identical for any\n"
        "                   --jobs\n"
        "  --heatmap FILE   render the last snapshot of every run as\n"
        "                   text VA-space heatmaps (implies\n"
        "                   --inspect-every 100 unless given)\n"
        "  --checkpoint-every N\n"
        "                   save a hawksim-snap/v1 checkpoint of\n"
        "                   every run's System every N sim ticks\n"
        "                   (requires --checkpoint-out)\n"
        "  --checkpoint-out DIR\n"
        "                   directory for checkpoint files, named\n"
        "                   <experiment>-<point>-tick<N>.snap\n"
        "  --restore FILE   rebuild each run, then overwrite its\n"
        "                   state from a checkpoint at the first\n"
        "                   tick; the resumed run is byte-identical\n"
        "                   to an uninterrupted one\n"
        "  --replay-to TICK stop every run after tick TICK (time\n"
        "                   travel: restore an earlier checkpoint\n"
        "                   and replay up to a point of interest)\n"
        "  --pretty         indent the report\n"
        "  --quiet          no per-run progress on stderr\n"
        "  --wallclock      run the wall-clock hot-path benchmark\n"
        "                   instead of the experiment grid; writes\n"
        "                   BENCH_PR8.json (override with --out)\n"
        "  --repeat N       wallclock: timed repetitions per point\n"
        "                   (default 5; min/median are reported)\n"
        "  --help           this text\n",
        argv0);
}

bool
parseUint(const char *s, std::uint64_t &out)
{
    const char *end = s + std::strlen(s);
    auto res = std::from_chars(s, end, out);
    return res.ec == std::errc() && res.ptr == end;
}

bool
parseProbability(const char *s, double &out)
{
    char *end = nullptr;
    out = std::strtod(s, &end);
    return end && *end == '\0' && end != s && out >= 0.0 &&
           out <= 1.0;
}

/**
 * Parse a fault script: one "<site> <occurrence>" pair per line,
 * occurrences 1-based; '#' starts a comment, blank lines ignored.
 */
bool
loadFaultScript(const std::string &path, fault::FaultConfig &cfg)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot open fault script %s\n",
                     path.c_str());
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        lineno++;
        std::istringstream ls(line);
        std::string tok;
        if (!(ls >> tok) || tok[0] == '#')
            continue;
        const auto site = fault::siteFromName(tok);
        if (!site) {
            std::fprintf(stderr,
                         "%s:%d: unknown fault site '%s'; valid: ",
                         path.c_str(), lineno, tok.c_str());
            for (unsigned s = 0; s < fault::kSiteCount; s++) {
                std::fprintf(stderr, "%s%s", s ? "," : "",
                             fault::siteName(
                                 static_cast<fault::Site>(s)));
            }
            std::fprintf(stderr, "\n");
            return false;
        }
        std::uint64_t occ = 0;
        if (!(ls >> occ) || occ == 0) {
            std::fprintf(stderr,
                         "%s:%d: bad occurrence (1-based integer "
                         "required)\n",
                         path.c_str(), lineno);
            return false;
        }
        cfg.script.emplace_back(*site, occ);
    }
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
        if (ec) {
            std::fprintf(stderr, "cannot create %s: %s\n",
                         p.parent_path().c_str(),
                         ec.message().c_str());
            return false;
        }
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    os << content;
    return os.good();
}

} // namespace

int
runCli(int argc, char **argv, Registry &reg,
       const WallclockMode *wallclock)
{
    RunnerOptions opts;
    opts.verbose = true;
    bool list = false;
    bool pretty = false;
    bool wallclock_mode = false;
    bool out_set = false;
    std::uint64_t repeat = 5;
    std::string out_path = "results/bench.json";
    std::string profile_path;
    std::string trace_path;
    std::string inspect_path;
    std::string heatmap_path;
    bool chaos = false;
    bool rate_set = false;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--filter") {
            const char *v = value();
            if (!v)
                return 2;
            opts.filter = v;
        } else if (arg == "--jobs") {
            const char *v = value();
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n)) {
                std::fprintf(stderr, "bad --jobs value\n");
                return 2;
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--seed") {
            const char *v = value();
            std::uint64_t s = 0;
            if (!v || !parseUint(v, s)) {
                std::fprintf(stderr, "bad --seed value\n");
                return 2;
            }
            opts.masterSeed = s;
        } else if (arg == "--out") {
            const char *v = value();
            if (!v)
                return 2;
            out_path = v;
            out_set = true;
        } else if (arg == "--wallclock") {
            wallclock_mode = true;
        } else if (arg == "--repeat") {
            const char *v = value();
            if (!v || !parseUint(v, repeat) || repeat == 0) {
                std::fprintf(stderr, "bad --repeat value\n");
                return 2;
            }
        } else if (arg == "--profile") {
            const char *v = value();
            if (!v)
                return 2;
            profile_path = v;
        } else if (arg == "--trace") {
            const char *v = value();
            if (!v)
                return 2;
            trace_path = v;
        } else if (arg == "--trace-filter") {
            const char *v = value();
            if (!v)
                return 2;
            auto mask = obs::parseCatMask(v);
            if (!mask) {
                std::fprintf(
                    stderr,
                    "bad --trace-filter '%s'; valid categories: ",
                    v);
                for (unsigned c = 0; c < obs::kCatCount; c++) {
                    std::fprintf(stderr, "%s%s", c ? "," : "",
                                 obs::catName(
                                     static_cast<obs::Cat>(c)));
                }
                std::fprintf(stderr, "\n");
                return 2;
            }
            opts.trace.mask = *mask;
        } else if (arg == "--chaos") {
            chaos = true;
        } else if (arg == "--fault-rate") {
            const char *v = value();
            double r = 0.0;
            if (!v || !parseProbability(v, r)) {
                std::fprintf(stderr,
                             "bad --fault-rate value (need a number "
                             "in [0,1])\n");
                return 2;
            }
            opts.fault.rate = r;
            rate_set = true;
            chaos = true;
        } else if (arg == "--fault-script") {
            const char *v = value();
            if (!v || !loadFaultScript(v, opts.fault))
                return 2;
            chaos = true;
        } else if (arg == "--audit-every") {
            const char *v = value();
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n)) {
                std::fprintf(stderr, "bad --audit-every value\n");
                return 2;
            }
            opts.fault.auditEvery = n;
        } else if (arg == "--inspect-every") {
            const char *v = value();
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n)) {
                std::fprintf(stderr, "bad --inspect-every value\n");
                return 2;
            }
            opts.inspect.everyTicks = n;
        } else if (arg == "--inspect-out") {
            const char *v = value();
            if (!v)
                return 2;
            inspect_path = v;
        } else if (arg == "--heatmap") {
            const char *v = value();
            if (!v)
                return 2;
            heatmap_path = v;
        } else if (arg == "--checkpoint-every") {
            const char *v = value();
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n)) {
                std::fprintf(stderr,
                             "bad --checkpoint-every value\n");
                return 2;
            }
            opts.snap.checkpointEvery = n;
        } else if (arg == "--checkpoint-out") {
            const char *v = value();
            if (!v)
                return 2;
            opts.checkpointOut = v;
        } else if (arg == "--restore") {
            const char *v = value();
            if (!v)
                return 2;
            opts.snap.restorePath = v;
        } else if (arg == "--replay-to") {
            const char *v = value();
            std::uint64_t n = 0;
            if (!v || !parseUint(v, n) || n == 0) {
                std::fprintf(stderr, "bad --replay-to value\n");
                return 2;
            }
            opts.snap.replayToTick = n;
        } else if (arg == "--pretty") {
            pretty = true;
        } else if (arg == "--quiet") {
            opts.verbose = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            printUsage(argv[0]);
            return 2;
        }
    }

    if (opts.snap.checkpointEvery > 0 && opts.checkpointOut.empty()) {
        std::fprintf(stderr,
                     "--checkpoint-every requires --checkpoint-out\n");
        return 2;
    }

    if (chaos) {
        // Chaos mode: inject (default rate 0.01 unless the user was
        // specific), audit after every injected fault, and let the
        // deterministic OOM killer engage instead of self-kills.
        if (!rate_set && opts.fault.script.empty())
            opts.fault.rate = 0.01;
        opts.fault.auditOnFault = true;
        opts.fault.oomKiller = true;
    }

    if (wallclock_mode) {
        if (!wallclock || !wallclock->run) {
            std::fprintf(stderr,
                         "--wallclock is not supported by this "
                         "binary\n");
            return 2;
        }
        WallclockMode mode = *wallclock;
        mode.repeat = static_cast<unsigned>(repeat);
        if (out_set)
            mode.out = out_path;
        mode.quiet = !opts.verbose;
        setLogQuiet(true);
        return mode.run(mode);
    }

    if (list) {
        std::uint64_t total = 0;
        for (const auto &exp : reg.experiments()) {
            std::uint64_t matching = 0;
            for (const RunPoint &pt : exp->expand()) {
                if (Runner::matches(opts.filter, pt))
                    matching++;
            }
            total += matching;
            std::printf("%-28s %4llu/%llu points  %s\n",
                        exp->name().c_str(),
                        static_cast<unsigned long long>(matching),
                        static_cast<unsigned long long>(
                            exp->gridSize()),
                        exp->description().c_str());
        }
        std::printf("total: %llu grid points%s\n",
                    static_cast<unsigned long long>(total),
                    opts.filter.empty()
                        ? ""
                        : (" (filter: " + opts.filter + ")").c_str());
        return 0;
    }

    setLogQuiet(true);
    opts.trace.enabled = !trace_path.empty();
    // Snapshot artifacts need a sampling period; default to every
    // 100 ticks when only an output path was given.
    if ((!inspect_path.empty() || !heatmap_path.empty()) &&
        opts.inspect.everyTicks == 0) {
        opts.inspect.everyTicks = 100;
    }
    Runner runner(opts);
    const Report report = runner.run(reg);
    if (report.runs.empty()) {
        std::fprintf(stderr,
                     "no grid points matched filter '%s'\n",
                     opts.filter.c_str());
        return 1;
    }

    const Json json = report.toJson();
    if (!writeFile(out_path,
                   pretty ? json.dumpPretty() : json.dump()))
        return 1;
    if (!profile_path.empty() &&
        !writeFile(profile_path, report.profileJson().dumpPretty()))
        return 1;
    if (!trace_path.empty()) {
        std::string trace;
        {
            std::ostringstream os;
            report.writeTrace(os);
            trace = os.str();
        }
        if (!writeFile(trace_path, trace))
            return 1;
    }
    if (!inspect_path.empty() &&
        !writeFile(inspect_path,
                   pretty ? report.inspectJson().dumpPretty()
                          : report.inspectJson().dump()))
        return 1;
    if (!heatmap_path.empty()) {
        std::string art;
        for (const RunRecord &r : report.runs) {
            if (r.output.snapshots.empty())
                continue;
            const obs::Snapshot &last = r.output.snapshots.back();
            art += "== " + r.point.experiment + "/" +
                   r.point.label() + " tick " +
                   std::to_string(last.tick) + " ==\n";
            art += obs::formatMemInfo(last);
            art += obs::formatBuddyInfo(last);
            for (const obs::ProcInfo &p : last.procs) {
                if (p.finished && p.mappedPages == 0)
                    continue;
                art += obs::renderHeatmap(p);
            }
            art += "\n";
        }
        if (!writeFile(heatmap_path, art))
            return 1;
    }

    std::printf("%zu runs in %.1f s (wall), report: %s\n",
                report.runs.size(), report.totalWallMs / 1e3,
                out_path.c_str());
    return 0;
}

} // namespace hawksim::harness
