/**
 * @file
 * Deterministic per-run seed derivation for the experiment harness.
 *
 * Every grid point gets its RNG seed from a splitmix64 chain over the
 * master seed, a hash of the experiment name and the point's index in
 * the expanded grid. The derivation depends on nothing else — not on
 * thread count, scheduling or completion order — which is what makes
 * `hawksim_bench --jobs 1` and `--jobs 8` byte-identical.
 */

#ifndef HAWKSIM_HARNESS_SEED_HH
#define HAWKSIM_HARNESS_SEED_HH

#include <cstdint>
#include <string_view>

namespace hawksim::harness {

/** One step of the SplitMix64 sequence (public-domain mixer). */
inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** FNV-1a over a string (stable across platforms). */
inline std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Seed for grid point @p index of experiment @p experiment under
 * @p master. Distinct experiments and distinct indices decorrelate
 * through two mixing rounds.
 */
inline std::uint64_t
deriveSeed(std::uint64_t master, std::string_view experiment,
           std::uint64_t index)
{
    return splitmix64(splitmix64(master ^ fnv1a(experiment)) + index);
}

} // namespace hawksim::harness

#endif // HAWKSIM_HARNESS_SEED_HH
