/**
 * @file
 * Minimal JSON value type for harness reports.
 *
 * The harness needs machine-readable, *byte-deterministic* output:
 * objects keep insertion order (reports are built in a fixed order),
 * and numbers serialize through std::to_chars shortest round-trip
 * form, so the same doubles always print the same bytes on any
 * libstdc++. A small recursive-descent parser covers the round-trip
 * tests and downstream tooling; it is not a general-purpose
 * validating parser.
 */

#ifndef HAWKSIM_HARNESS_JSON_HH
#define HAWKSIM_HARNESS_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hawksim::harness {

class Json
{
  public:
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Json() : type_(Type::kNull) {}
    Json(std::nullptr_t) : type_(Type::kNull) {}
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(double v) : type_(Type::kNumber), num_(v) {}
    Json(std::int64_t v)
        : type_(Type::kNumber), num_(static_cast<double>(v)),
          int_(v), is_int_(true)
    {}
    Json(std::uint64_t v)
        : type_(Type::kNumber), num_(static_cast<double>(v)),
          int_(static_cast<std::int64_t>(v)), is_int_(true)
    {}
    Json(int v) : Json(static_cast<std::int64_t>(v)) {}
    Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
    Json(const char *s) : type_(Type::kString), str_(s) {}
    Json(std::string_view s) : type_(Type::kString), str_(s) {}

    static Json array() { Json j; j.type_ = Type::kArray; return j; }
    static Json object() { Json j; j.type_ = Type::kObject; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isObject() const { return type_ == Type::kObject; }
    bool isArray() const { return type_ == Type::kArray; }

    bool asBool() const { return bool_; }
    double asDouble() const { return num_; }
    std::int64_t
    asInt() const
    {
        return is_int_ ? int_ : static_cast<std::int64_t>(num_);
    }
    std::uint64_t
    asUint() const
    {
        return static_cast<std::uint64_t>(asInt());
    }
    const std::string &asString() const { return str_; }

    /** Array access. */
    std::vector<Json> &items() { return items_; }
    const std::vector<Json> &items() const { return items_; }
    void push(Json v) { items_.push_back(std::move(v)); }
    std::size_t size() const { return items_.size(); }
    const Json &at(std::size_t i) const { return items_.at(i); }

    /** Object access (insertion-ordered). */
    std::vector<std::pair<std::string, Json>> &members()
    {
        return members_;
    }
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }
    void
    set(std::string key, Json v)
    {
        members_.emplace_back(std::move(key), std::move(v));
    }
    /** Lookup by key; returns a shared null when absent. */
    const Json &operator[](std::string_view key) const;
    bool contains(std::string_view key) const;

    /** Serialize compactly (no whitespace). Deterministic. */
    std::string dump() const;
    /** Serialize with 2-space indentation. Deterministic. */
    std::string dumpPretty() const;

    /**
     * Parse a JSON document. Returns a null value and sets @p error
     * (when non-null) on malformed input.
     */
    static Json parse(std::string_view text,
                      std::string *error = nullptr);

    bool operator==(const Json &o) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::int64_t int_ = 0;
    bool is_int_ = false;
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace hawksim::harness

#endif // HAWKSIM_HARNESS_JSON_HH
