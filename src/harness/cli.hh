/**
 * @file
 * Command-line front end of the experiment harness.
 *
 * `hawksim_bench` usage:
 *
 *   hawksim_bench [--list] [--filter SUBSTR] [--jobs N] [--seed S]
 *                 [--out FILE] [--profile FILE] [--trace FILE]
 *                 [--trace-filter CATS] [--pretty] [--quiet]
 *
 * The canonical JSON report (deterministic for a given seed/filter,
 * independent of --jobs) is written to --out
 * (default results/bench.json); wall-clock profiling, which *does*
 * vary run to run, goes to --profile when requested. --trace writes
 * a Chrome trace_event / Perfetto JSON of every run's simulated
 * events (open it in ui.perfetto.dev); like the report, it is
 * byte-identical for any --jobs value. Parent directories of all
 * output paths are created as needed.
 */

#ifndef HAWKSIM_HARNESS_CLI_HH
#define HAWKSIM_HARNESS_CLI_HH

#include "harness/experiment.hh"

namespace hawksim::harness {

/** Run the CLI against @p reg; returns the process exit code. */
int runCli(int argc, char **argv, Registry &reg);

} // namespace hawksim::harness

#endif // HAWKSIM_HARNESS_CLI_HH
