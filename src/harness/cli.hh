/**
 * @file
 * Command-line front end of the experiment harness.
 *
 * `hawksim_bench` usage:
 *
 *   hawksim_bench [--list] [--filter SUBSTR] [--jobs N] [--seed S]
 *                 [--out FILE] [--profile FILE] [--trace FILE]
 *                 [--trace-filter CATS] [--pretty] [--quiet]
 *
 * The canonical JSON report (deterministic for a given seed/filter,
 * independent of --jobs) is written to --out
 * (default results/bench.json); wall-clock profiling, which *does*
 * vary run to run, goes to --profile when requested. --trace writes
 * a Chrome trace_event / Perfetto JSON of every run's simulated
 * events (open it in ui.perfetto.dev); like the report, it is
 * byte-identical for any --jobs value. Parent directories of all
 * output paths are created as needed.
 */

#ifndef HAWKSIM_HARNESS_CLI_HH
#define HAWKSIM_HARNESS_CLI_HH

#include <functional>
#include <string>

#include "harness/experiment.hh"

namespace hawksim::harness {

/**
 * Wall-clock benchmark mode (`--wallclock [--repeat N]`).
 *
 * Unlike the canonical report, wall-clock numbers vary run to run and
 * machine to machine, so this mode bypasses the registry entirely:
 * the binary supplies a micro-driver callback and the CLI hands it
 * the parsed options. Keeping it out of the registry guarantees the
 * default experiment grid (and therefore every report) is unchanged
 * by the existence of the perf harness.
 */
struct WallclockMode
{
    /** Timed repetitions per grid point (min/median are reported). */
    unsigned repeat = 5;
    /** Output JSON path (default: BENCH_PR8.json at the cwd root). */
    std::string out = "BENCH_PR8.json";
    bool quiet = false;
    /** The micro-driver; returns a process exit code. */
    std::function<int(const WallclockMode &)> run;
};

/**
 * Run the CLI against @p reg; returns the process exit code.
 * @p wallclock, when non-null, enables the `--wallclock` flag.
 */
int runCli(int argc, char **argv, Registry &reg,
           const WallclockMode *wallclock = nullptr);

} // namespace hawksim::harness

#endif // HAWKSIM_HARNESS_CLI_HH
