#include "harness/experiment.hh"

#include "base/logging.hh"
#include "sim/system.hh"

namespace hawksim::harness {

const obs::TraceConfig &
RunContext::trace() const
{
    static const obs::TraceConfig kDisabled;
    return trace_ ? *trace_ : kDisabled;
}

const fault::FaultConfig &
RunContext::fault() const
{
    static const fault::FaultConfig kDisabled;
    return fault_ ? *fault_ : kDisabled;
}

const obs::InspectConfig &
RunContext::inspect() const
{
    static const obs::InspectConfig kDisabled;
    return inspect_ ? *inspect_ : kDisabled;
}

const snap::SnapConfig &
RunContext::snap() const
{
    static const snap::SnapConfig kDisabled;
    return snap_ ? *snap_ : kDisabled;
}

void
RunOutput::captureObs(sim::System &sys)
{
    traceStats = sys.tracer().stats();
    trace = sys.tracer().drain();
    cost = sys.cost();
    snapshots = sys.takeSnapshots();
}

const std::string &
RunPoint::param(std::string_view axis) const
{
    for (const auto &[k, v] : params) {
        if (k == axis)
            return v;
    }
    HS_FATAL("experiment ", experiment, " has no axis '",
             std::string(axis), "'");
}

std::string
RunPoint::label() const
{
    std::string out;
    for (const auto &[k, v] : params) {
        if (!out.empty())
            out.push_back(' ');
        out += k;
        out.push_back('=');
        out += v;
    }
    return out;
}

Experiment &
Experiment::axis(std::string axis_name,
                 std::vector<std::string> values)
{
    HS_ASSERT(!values.empty(), "axis '", axis_name,
              "' of experiment ", name_, " has no values");
    for (const Axis &a : axes_) {
        HS_ASSERT(a.name != axis_name, "duplicate axis '", axis_name,
                  "' in experiment ", name_);
    }
    axes_.push_back({std::move(axis_name), std::move(values)});
    return *this;
}

std::uint64_t
Experiment::gridSize() const
{
    std::uint64_t n = 1;
    for (const Axis &a : axes_)
        n *= a.values.size();
    return n;
}

std::vector<RunPoint>
Experiment::expand() const
{
    const std::uint64_t n = gridSize();
    std::vector<RunPoint> points;
    points.reserve(n);
    for (std::uint64_t i = 0; i < n; i++) {
        RunPoint pt;
        pt.experiment = name_;
        pt.index = i;
        // Mixed-radix decomposition: last axis fastest.
        std::uint64_t rem = i;
        pt.params.resize(axes_.size());
        for (std::size_t a = axes_.size(); a-- > 0;) {
            const Axis &ax = axes_[a];
            pt.params[a] = {ax.name,
                            ax.values[rem % ax.values.size()]};
            rem /= ax.values.size();
        }
        points.push_back(std::move(pt));
    }
    return points;
}

Experiment &
Registry::add(std::string name, std::string description)
{
    for (const auto &e : experiments_) {
        HS_ASSERT(e->name() != name, "duplicate experiment '", name,
                  "'");
    }
    experiments_.push_back(std::make_unique<Experiment>(
        std::move(name), std::move(description)));
    return *experiments_.back();
}

Experiment *
Registry::find(std::string_view name)
{
    for (const auto &e : experiments_) {
        if (e->name() == name)
            return e.get();
    }
    return nullptr;
}

} // namespace hawksim::harness
