#include "cache/cache.hh"

#include "base/logging.hh"

namespace hawksim::cache {

namespace {

std::uint64_t
mix(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return key;
}

} // namespace

CacheSim::CacheSim(CacheConfig cfg)
    : cfg_(cfg),
      sets_(static_cast<unsigned>(cfg.sizeBytes / cfg.lineBytes /
                                  cfg.ways)),
      ways_(static_cast<std::size_t>(sets_) * cfg.ways)
{
    HS_ASSERT(sets_ > 0, "cache too small");
}

bool
CacheSim::access(std::uint64_t line, bool non_temporal)
{
    const unsigned set = static_cast<unsigned>(mix(line) % sets_);
    Way *base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; w++) {
        if (base[w].valid && base[w].tag == line) {
            base[w].lru = ++tick_;
            hits_++;
            return true;
        }
    }
    misses_++;
    if (non_temporal)
        return false; // bypass: no allocation, no pollution
    Way *victim = &base[0];
    for (unsigned w = 0; w < cfg_.ways; w++) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->tag = line;
    victim->valid = true;
    victim->lru = ++tick_;
    return false;
}

InterferenceResult
runInterference(const InterferenceWorkload &w,
                double zero_bytes_per_sec, bool non_temporal, Rng rng,
                CacheConfig cfg, double seconds)
{
    const std::uint64_t wss_lines = w.wssBytes / cfg.lineBytes;
    HS_ASSERT(wss_lines > 0, "empty workload WSS");

    auto run = [&](double zero_rate) {
        CacheSim cache(cfg);
        Rng r = rng; // identical stream for both runs
        const auto wl_accesses = static_cast<std::uint64_t>(
            w.accessesPerSec * seconds);
        const auto zero_lines = static_cast<std::uint64_t>(
            zero_rate * seconds / cfg.lineBytes);
        // Interleave the two streams proportionally.
        const double zero_per_access =
            wl_accesses
                ? static_cast<double>(zero_lines) /
                      static_cast<double>(wl_accesses)
                : 0.0;
        double zero_carry = 0.0;
        std::uint64_t zero_cursor = 1ull << 40; // disjoint space
        std::uint64_t wl_misses = 0;
        // Warm up the cache with one pass over the WSS.
        for (std::uint64_t i = 0; i < wss_lines; i++)
            cache.access(i);
        cache.resetStats();
        for (std::uint64_t i = 0; i < wl_accesses; i++) {
            const std::uint64_t line =
                w.zipfS > 0.0 ? r.zipf(wss_lines, w.zipfS)
                              : r.below(wss_lines);
            if (!cache.access(line))
                wl_misses++;
            zero_carry += zero_per_access;
            while (zero_carry >= 1.0) {
                cache.access(zero_cursor++, non_temporal);
                zero_carry -= 1.0;
            }
        }
        return std::pair<std::uint64_t, std::uint64_t>(wl_misses,
                                                       wl_accesses);
    };

    auto [base_misses, accesses] = run(0.0);
    auto [with_misses, accesses2] = run(zero_bytes_per_sec);
    (void)accesses2;

    InterferenceResult res;
    res.baselineMissRate = accesses ? static_cast<double>(base_misses) /
                                          static_cast<double>(accesses)
                                    : 0.0;
    res.missRate = accesses ? static_cast<double>(with_misses) /
                                  static_cast<double>(accesses)
                            : 0.0;

    // Convert extra misses to runtime overhead: baseline runtime is
    // compute (1 cycle/access assumed beyond cache latency) plus
    // cache service time; added misses and memory-bandwidth
    // contention stretch it.
    const double base_cycles =
        static_cast<double>(accesses) +
        static_cast<double>(base_misses) * cfg.missCycles +
        static_cast<double>(accesses - base_misses) * cfg.hitCycles;
    const double extra_miss_cycles =
        (static_cast<double>(with_misses) -
         static_cast<double>(base_misses)) *
        static_cast<double>(cfg.missCycles);
    // Bandwidth contention: the zeroing stream consumes a fraction of
    // DRAM bandwidth, slowing every memory access proportionally.
    const double bw_frac = zero_bytes_per_sec / cfg.memBandwidth;
    const double contention_cycles =
        static_cast<double>(with_misses) * cfg.missCycles * bw_frac;
    res.overheadPct = 100.0 *
                      (extra_miss_cycles + contention_cycles) /
                      base_cycles;
    if (res.overheadPct < 0.0)
        res.overheadPct = 0.0;
    return res;
}

} // namespace hawksim::cache
