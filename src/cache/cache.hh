/**
 * @file
 * Last-level cache and memory-bandwidth model for the async
 * pre-zeroing interference study (Fig. 10).
 *
 * The question §3.1 answers: does a background thread zeroing pages
 * at ~1GB/s wreck co-running workloads? With regular (caching) stores
 * the zeroing stream allocates lines and evicts the workload's data
 * ("double cache miss"); with non-temporal stores it bypasses the
 * cache and only competes for memory bandwidth. We model a shared,
 * set-associative LLC with LRU and an interleaved two-stream access
 * pattern, and convert extra misses plus bandwidth contention into a
 * slowdown.
 */

#ifndef HAWKSIM_CACHE_CACHE_HH
#define HAWKSIM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"

namespace hawksim::cache {

struct CacheConfig
{
    std::uint64_t sizeBytes = 30ull << 20; //!< Haswell-EP shared L3
    unsigned ways = 16;
    unsigned lineBytes = 64;
    Cycles hitCycles = 36;    //!< L3 hit
    Cycles missCycles = 180;  //!< DRAM access
    /** Sustained DRAM bandwidth (bytes/s) for contention modelling. */
    double memBandwidth = 40e9;
};

/** A set-associative cache with LRU replacement. */
class CacheSim
{
  public:
    explicit CacheSim(CacheConfig cfg = CacheConfig{});

    /**
     * Access one line address; returns true on hit. Misses allocate
     * unless @p non_temporal.
     */
    bool access(std::uint64_t line, bool non_temporal = false);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    void resetStats() { hits_ = misses_ = 0; }
    const CacheConfig &config() const { return cfg_; }
    unsigned sets() const { return sets_; }

  private:
    struct Way
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    CacheConfig cfg_;
    unsigned sets_;
    std::uint64_t tick_ = 0;
    std::vector<Way> ways_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** A workload profile for the interference experiment. */
struct InterferenceWorkload
{
    std::string name;
    /** Cache-resident working set. */
    std::uint64_t wssBytes;
    /** LLC accesses per second of execution. */
    double accessesPerSec;
    /** Zipf skew of line popularity (locality). */
    double zipfS;
};

/** Result of one interference run. */
struct InterferenceResult
{
    double baselineMissRate = 0.0;
    double missRate = 0.0;
    /** Runtime overhead vs no-zeroing baseline, percent. */
    double overheadPct = 0.0;
};

/**
 * Simulate @p seconds of the workload co-running with a pre-zeroing
 * thread at @p zero_bytes_per_sec, with caching or non-temporal
 * stores. Deterministic given the rng.
 */
InterferenceResult runInterference(const InterferenceWorkload &w,
                                   double zero_bytes_per_sec,
                                   bool non_temporal, Rng rng,
                                   CacheConfig cfg = CacheConfig{},
                                   double seconds = 0.05);

} // namespace hawksim::cache

#endif // HAWKSIM_CACHE_CACHE_HH
