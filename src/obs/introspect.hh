/**
 * @file
 * Procfs-style introspection: read-only state snapshots of a running
 * System.
 *
 * Linux answers "what does memory look like right now?" through
 * /proc/meminfo, /proc/buddyinfo and /proc/<pid>/smaps|pagemap;
 * HawkSim's policies act on exactly that kind of fine-grained state
 * (per-region access coverage, FMFI, bloat estimates, TLB pressure),
 * so experiments need the same views. snapshot() assembles them in
 * one pass:
 *
 *   - MemInfo / buddy orders: free frames per order split by
 *     zero-list membership, Gorman's FMFI, zero-list depth and swap
 *     occupancy — the buddy allocator and swap device counters;
 *   - per-process ProcInfo: smaps-style per-VMA RSS and huge/4K mix,
 *     pagemap-style per-region population/accessed/dirty density,
 *     the access-tracker EMA and access_map bucket of each region
 *     (when the installed policy is HawkEye), a zero-backed-page
 *     bloat estimate, and TLB/walk-cache occupancy;
 *   - a text VA-space heatmap renderer (access frequency per 2MB
 *     region — the paper's Figure 2 view).
 *
 * Snapshots never mutate simulation state: they read cumulative
 * counters only (never windowed samplers), never touch PTE bits and
 * never advance daemon state, so a run with snapshotting enabled
 * produces byte-identical reports to one without.
 *
 * Serialization is versioned canonical JSON (kInspectSchema). Fields
 * are part of the schema contract: adding, removing or renaming one
 * requires bumping the version — tests/harness/test_inspect_export.cc
 * pins the exact field signature per version.
 */

#ifndef HAWKSIM_OBS_INTROSPECT_HH
#define HAWKSIM_OBS_INTROSPECT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace hawksim::sim {
class System;
} // namespace hawksim::sim

namespace hawksim::harness {
class Json;
} // namespace hawksim::harness

namespace hawksim::obs {

/** Schema tag carried by every snapshot dump. */
constexpr const char *kInspectSchema = "hawksim-inspect/v1";

/** Snapshot sampling configuration, carried in sim::SystemConfig. */
struct InspectConfig
{
    /** Take a snapshot every N sim ticks (0 disables). */
    std::uint64_t everyTicks = 0;

    bool enabled() const { return everyTicks > 0; }
};

/** Buddy orders reported per snapshot (kMaxOrder + 1). */
constexpr unsigned kInspectOrders = 11;

/** /proc/meminfo analogue: system-wide memory and swap occupancy. */
struct MemInfo
{
    std::uint64_t totalFrames = 0;
    std::uint64_t freeFrames = 0;
    std::uint64_t usedFrames = 0;
    /** Zero-list depth: free pages known to be zero-filled. */
    std::uint64_t freeZeroPages = 0;
    std::uint64_t freeNonZeroPages = 0;
    /** Largest order with a free block; -1 when memory is exhausted. */
    int largestFreeOrder = -1;
    /** Gorman's fragmentation index for order 9 (huge pages). */
    double fmfi9 = 0.0;
    std::uint64_t swapUsedPages = 0;
    std::uint64_t swapCapacityPages = 0;
    /** Pages marked swapped-out in the System's swap map. */
    std::uint64_t swappedPages = 0;
    std::uint64_t swapTotalOut = 0;
    std::uint64_t swapTotalIn = 0;
};

/** /proc/buddyinfo analogue: free blocks of one order. */
struct BuddyOrderInfo
{
    /** Free blocks of exactly this order (both lists). */
    std::uint64_t freeBlocks = 0;
    /** ... of which on the pre-zeroed list. */
    std::uint64_t zeroBlocks = 0;
};

/** Occupancy of one TLB structure: valid entries / capacity. */
struct TlbLevelOccupancy
{
    unsigned used = 0;
    unsigned size = 0;
};

/** TLB and page-walk-cache occupancy of one process. */
struct TlbOccupancy
{
    TlbLevelOccupancy l1_4k;
    TlbLevelOccupancy l1_2m;
    TlbLevelOccupancy l2;
    TlbLevelOccupancy pwcPde;
    TlbLevelOccupancy pwcPdpte;
};

/** /proc/<pid>/pagemap analogue: one populated 2MB region. */
struct RegionInfo
{
    std::uint64_t region = 0;
    /** Present base pages (512 when huge-mapped). */
    unsigned population = 0;
    /** Base pages with the accessed bit (512 if an accessed huge). */
    unsigned accessed = 0;
    /** Base pages with the dirty bit (512 if a dirty huge). */
    unsigned dirty = 0;
    bool huge = false;
    /** Base pages COW-mapped to the canonical zero page (dedup'd). */
    unsigned zeroCow = 0;
    /**
     * Present pages backed by a private zero-content frame — the
     * bloat-recovery dedup candidates (HawkEye §3.2).
     */
    unsigned zeroBacked = 0;
    /** Access-tracker EMA coverage in [0,512]; -1 when untracked. */
    double ema = -1.0;
    /** access_map bucket index; -1 when not in the map. */
    int bucket = -1;
};

/** /proc/<pid>/smaps analogue: one VMA with aggregated page state. */
struct VmaInfo
{
    Addr start = 0;
    Addr end = 0;
    std::string name;
    bool anon = true;
    bool hugeEligible = true;
    /** Present 4KB-equivalents (zero-COW mappings included). */
    std::uint64_t mappedPages = 0;
    /** Exclusively-owned physical frames behind this VMA. */
    std::uint64_t rssPages = 0;
    /** Regions covered by a huge leaf. */
    std::uint64_t hugeRegions = 0;
    std::uint64_t accessedPages = 0;
    std::uint64_t dirtyPages = 0;
    std::uint64_t zeroCowPages = 0;
    std::uint64_t zeroBackedPages = 0;
    /** Pages of this VMA currently in swap. */
    std::uint64_t swappedPages = 0;
};

/** Full per-process view. */
struct ProcInfo
{
    std::int32_t pid = -1;
    std::string name;
    bool finished = false;
    bool oomKilled = false;
    /** Exclusively-owned frames (the AddressSpace RSS counter). */
    std::uint64_t rssPages = 0;
    /** Mapped 4KB-equivalents (zero-COW included). */
    std::uint64_t mappedPages = 0;
    std::uint64_t basePages = 0;
    /** Huge leaves (2MB mappings), not 4KB-equivalents. */
    std::uint64_t hugePages = 0;
    std::uint64_t swappedPages = 0;
    /** Bloat estimate: private zero-content frames mapped non-COW. */
    std::uint64_t zeroBackedPages = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t cowFaults = 0;
    /** Cumulative MMU overhead (Table 4 formula, whole run so far). */
    double mmuOverheadPct = 0.0;
    TlbOccupancy tlb;
    /** VMAs in address order. */
    std::vector<VmaInfo> vmas;
    /** Populated regions in index order. */
    std::vector<RegionInfo> regions;
};

/** One moment of a running System. */
struct Snapshot
{
    TimeNs time = 0;
    std::uint64_t tick = 0;
    MemInfo mem;
    std::array<BuddyOrderInfo, kInspectOrders> buddy{};
    /** All processes (exited ones included, with empty memory). */
    std::vector<ProcInfo> procs;
};

/**
 * Assemble a Snapshot of @p sys. Read-only: performs one page-table
 * walk per process plus one buddy free-list walk; never sets or
 * clears PTE bits, never consumes windowed samplers, never allocates
 * simulation state. Deterministic for a deterministic run.
 */
Snapshot snapshot(sim::System &sys);

/**
 * Versioned canonical-JSON form of one snapshot. Field order is
 * fixed; numbers render via the harness's deterministic writer, so
 * the bytes are identical for identical snapshots.
 */
harness::Json snapshotToJson(const Snapshot &s);

/**
 * Render a process's VA space as a text heatmap: one cell per 2MB
 * region, rows per VMA. The upper row of each pair shows access
 * frequency (EMA coverage when tracked, else live accessed bits)
 * on the " .:-=+*#%@" ramp; the lower row shows the mapping mix
 * ('H' huge, '.' base pages, ' ' unmapped) — the paper's Figure 2
 * utilization view.
 */
std::string renderHeatmap(const ProcInfo &p);

/** /proc/meminfo-style text of the system-wide counters. */
std::string formatMemInfo(const Snapshot &s);

/** /proc/buddyinfo-style one-liner: free blocks per order. */
std::string formatBuddyInfo(const Snapshot &s);

} // namespace hawksim::obs

#endif // HAWKSIM_OBS_INTROSPECT_HH
