#include "obs/cost_account.hh"

#include "snap/snap.hh"

#include <algorithm>

#include "base/logging.hh"

namespace hawksim::obs {

namespace {

constexpr const char *kSubsysNames[kSubsysCount] = {
    "fault_path", "promote_daemon", "zero_daemon", "bloat_daemon",
    "compaction", "reclaim", "tlb_walk",
};

constexpr const char *kCounterNames[kCounterCount] = {
    "faults",        "huge_faults",     "cow_faults",
    "swap_ins",      "promotions",      "splits",
    "migrated_pages", "zeroed_pages",   "deduped_pages",
    "reclaimed_pages", "resv_broken",
};

} // namespace

const char *
subsysName(Subsys s)
{
    const auto i = static_cast<unsigned>(s);
    HS_ASSERT(i < kSubsysCount, "bad subsystem ", i);
    return kSubsysNames[i];
}

const char *
counterName(Counter c)
{
    const auto i = static_cast<unsigned>(c);
    HS_ASSERT(i < kCounterCount, "bad counter ", i);
    return kCounterNames[i];
}

double
LatencyHistogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    if (q <= 0.0)
        return static_cast<double>(minimum());
    if (q >= 1.0)
        return static_cast<double>(maximum());
    const double target = q * static_cast<double>(total_);
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < kBuckets; b++) {
        if (counts_[b] == 0)
            continue;
        const double before = static_cast<double>(cum);
        cum += counts_[b];
        if (static_cast<double>(cum) < target)
            continue;
        // Interpolate within [lo, hi) = [2^(b-1), 2^b), then clamp
        // to the observed range: the bucket bounds can stick out past
        // the true extremes, and a p99 above the recorded maximum
        // would be absurd in a report.
        const double lo = b == 0 ? 0.0
                                 : static_cast<double>(1ull << (b - 1));
        const double hi = static_cast<double>(1ull << b);
        const double frac =
            (target - before) / static_cast<double>(counts_[b]);
        const double v = lo + frac * (hi - lo);
        return std::clamp(v, static_cast<double>(minimum()),
                          static_cast<double>(maximum()));
    }
    return static_cast<double>(maximum());
}

TimeNs
CostAccounting::totalNs() const
{
    TimeNs total = 0;
    for (TimeNs v : ns_)
        total += v;
    return total;
}

void
LatencyHistogram::save(snap::Writer &w) const
{
    for (std::uint64_t c : counts_)
        w.u64(c);
    w.u64(total_);
    w.u64(sum_);
    w.i64(min_);
    w.i64(max_);
}

void
LatencyHistogram::load(snap::Reader &r)
{
    for (std::uint64_t &c : counts_)
        c = r.u64();
    total_ = r.u64();
    sum_ = r.u64();
    min_ = r.i64();
    max_ = r.i64();
}

void
CostAccounting::save(snap::Writer &w) const
{
    for (TimeNs ns : ns_)
        w.i64(ns);
    for (std::uint64_t c : counters_)
        w.u64(c);
    fault_latency_.save(w);
}

void
CostAccounting::load(snap::Reader &r)
{
    for (TimeNs &ns : ns_)
        ns = r.i64();
    for (std::uint64_t &c : counters_)
        c = r.u64();
    fault_latency_.load(r);
}

} // namespace hawksim::obs
