/**
 * @file
 * The observability probe a simulated System carries: one Tracer
 * (opt-in event stream) plus one CostAccounting (always-on cost
 * attribution). Instrumented components receive a Probe pointer or
 * reach it through the System, keeping hot-path plumbing to a single
 * indirection.
 */

#ifndef HAWKSIM_OBS_PROBE_HH
#define HAWKSIM_OBS_PROBE_HH

#include "obs/cost_account.hh"
#include "obs/trace.hh"

namespace hawksim::obs {

struct Probe
{
    Tracer tracer;
    CostAccounting cost;
};

} // namespace hawksim::obs

#endif // HAWKSIM_OBS_PROBE_HH
