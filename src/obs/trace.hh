/**
 * @file
 * Deterministic simulation-time tracing.
 *
 * A Tracer collects typed events from the hot paths of one run —
 * page faults, promotions/demotions, pre-zeroing, bloat recovery,
 * compaction, reclaim — into a bounded ring buffer. Events carry the
 * *simulated* timestamp, a simulated duration and a stable sequence
 * number; wall clock never appears, so the event stream of a run is
 * byte-identical no matter how many harness workers ran beside it.
 *
 * Cost model of the disabled path: every emit function first tests a
 * single bool that is false by default; arguments are plain integers
 * and names are static strings, so a disabled tracer performs no
 * formatting, hashing or allocation. Builds can additionally define
 * HAWKSIM_NO_TRACING to compile every emit into nothing.
 */

#ifndef HAWKSIM_OBS_TRACE_HH
#define HAWKSIM_OBS_TRACE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "base/types.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::obs {

/** Event category: one per traced subsystem/hot path. */
enum class Cat : std::uint8_t
{
    kFault,   //!< page-fault path (base, huge, COW, swap-in)
    kPromote, //!< huge-page promotion (daemons and in-place)
    kDemote,  //!< huge-page splits (bloat recovery, reclaim)
    kZero,    //!< async pre-zeroing daemon
    kBloat,   //!< bloat-recovery scans and dedup
    kCompact, //!< compaction (direct and kcompactd)
    kReclaim, //!< reclaim / swap
    kTlb,     //!< TLB walk batches
    kProc,    //!< process lifecycle
    kChaos,   //!< injected faults (fault::FaultInjector)
};

constexpr unsigned kCatCount = 10;

/** Stable lower-case name of a category ("fault", "promote", ...). */
const char *catName(Cat c);
/** Inverse of catName; nullopt for unknown names. */
std::optional<Cat> catFromName(std::string_view name);

/** Bitmask over categories. */
using CatMask = std::uint32_t;

constexpr CatMask
catBit(Cat c)
{
    return CatMask{1} << static_cast<unsigned>(c);
}

constexpr CatMask kAllCats = (CatMask{1} << kCatCount) - 1;

/**
 * Parse a comma-separated category list ("fault,compact") into a
 * mask. Empty input means all categories. Returns nullopt on any
 * unknown name.
 */
std::optional<CatMask> parseCatMask(std::string_view csv);

/** One integer-valued event argument (key is a static string). */
struct TraceArg
{
    const char *key = nullptr;
    std::int64_t value = 0;
};

constexpr std::size_t kMaxTraceArgs = 4;

/** One trace event. POD; name/arg keys must be static strings. */
struct TraceEvent
{
    /** Stable per-tracer sequence number (emission order). */
    std::uint64_t seq = 0;
    /** Simulated begin time. */
    TimeNs ts = 0;
    /** Simulated duration (0 = instant event). */
    TimeNs dur = 0;
    Cat cat = Cat::kFault;
    /** Simulated pid the event belongs to; -1 = kernel/system. */
    std::int32_t pid = -1;
    const char *name = nullptr;
    std::array<TraceArg, kMaxTraceArgs> args{};

    unsigned
    argCount() const
    {
        unsigned n = 0;
        while (n < kMaxTraceArgs && args[n].key != nullptr)
            n++;
        return n;
    }
};

/** Tracer configuration, carried in sim::SystemConfig. */
struct TraceConfig
{
    bool enabled = false;
    CatMask mask = kAllCats;
    /** Ring capacity in events; the oldest events are overwritten. */
    std::size_t capacity = 1 << 16;
};

/**
 * End-of-run tracer accounting: what was emitted and what the
 * bounded ring silently overwrote. Dropped counts are broken down by
 * the category of the *overwritten* event, so a truncated trace
 * says which subsystems lost history instead of reading as "nothing
 * happened".
 */
struct TraceStats
{
    bool enabled = false;
    /** Total events accepted (including ones later overwritten). */
    std::uint64_t emitted = 0;
    /** Events lost to ring wrap-around. */
    std::uint64_t dropped = 0;
    /** Dropped events by category of the overwritten event. */
    std::array<std::uint64_t, kCatCount> droppedByCat{};
};

class Tracer
{
  public:
    Tracer() = default;
    explicit Tracer(const TraceConfig &cfg)
        : enabled_(cfg.enabled && cfg.capacity > 0), mask_(cfg.mask),
          capacity_(cfg.capacity)
    {}

    /** The single-branch hot-path guard. */
    bool enabled() const { return enabled_; }
    /** Should events of @p c be recorded? */
    bool
    wants(Cat c) const
    {
#ifdef HAWKSIM_NO_TRACING
        (void)c;
        return false;
#else
        return enabled_ && (mask_ & catBit(c)) != 0;
#endif
    }

    /** Emit a complete (spanning) event. */
    void
    complete(Cat cat, const char *name, std::int32_t pid, TimeNs ts,
             TimeNs dur,
             std::initializer_list<TraceArg> args = {})
    {
        if (!wants(cat))
            return;
        emit(cat, name, pid, ts, dur, args.begin(), args.size());
    }

    /** Emit a complete event from an argument array. */
    void
    complete(Cat cat, const char *name, std::int32_t pid, TimeNs ts,
             TimeNs dur, const TraceArg *args, std::size_t nargs)
    {
        if (!wants(cat))
            return;
        emit(cat, name, pid, ts, dur, args, nargs);
    }

    /** Emit an instant event. */
    void
    instant(Cat cat, const char *name, std::int32_t pid, TimeNs ts,
            std::initializer_list<TraceArg> args = {})
    {
        if (!wants(cat))
            return;
        emit(cat, name, pid, ts, 0, args.begin(), args.size());
    }

    /** Events currently buffered, oldest first (seq order). */
    std::vector<TraceEvent> drain();

    /** Total events accepted (including ones the ring dropped). */
    std::uint64_t emitted() const { return seq_; }
    /** Events overwritten by ring wrap-around. */
    std::uint64_t dropped() const { return dropped_; }
    /** Events of @p c overwritten by ring wrap-around. */
    std::uint64_t
    droppedOf(Cat c) const
    {
        return dropped_by_cat_[static_cast<unsigned>(c)];
    }

    /**
     * Ring contents, sequence counter and drop tallies. Event names
     * and argument keys are static strings at emit time; on load
     * they are re-materialized through a process-lifetime intern
     * pool so TraceEvent keeps its `const char *` layout.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

    /** Full accounting for the report/trace "cost" surfaces. */
    TraceStats
    stats() const
    {
        TraceStats st;
        st.enabled = enabled_;
        st.emitted = seq_;
        st.dropped = dropped_;
        st.droppedByCat = dropped_by_cat_;
        return st;
    }

  private:
    void emit(Cat cat, const char *name, std::int32_t pid, TimeNs ts,
              TimeNs dur, const TraceArg *args, std::size_t nargs);

    bool enabled_ = false;
    CatMask mask_ = kAllCats;
    std::size_t capacity_ = 1 << 16;
    /** Ring storage; grows to capacity_, then wraps at head_. */
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t dropped_ = 0;
    std::array<std::uint64_t, kCatCount> dropped_by_cat_{};
};

/**
 * RAII span: captures the sim time at construction and emits one
 * complete event at scope exit. The simulated duration defaults to 0
 * (the sim clock does not advance inside a tick) — callers that know
 * the simulated cost of the work set it explicitly.
 */
class TraceScope
{
  public:
    TraceScope(Tracer &t, Cat cat, const char *name, std::int32_t pid,
               TimeNs now)
        : tracer_(t.wants(cat) ? &t : nullptr), cat_(cat),
          name_(name), pid_(pid), ts_(now)
    {}

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Is this scope recording? Lets callers skip arg computation. */
    bool live() const { return tracer_ != nullptr; }

    /** Attach an integer argument (silently ignored beyond 4). */
    void
    arg(const char *key, std::int64_t value)
    {
        if (!tracer_ || nargs_ >= kMaxTraceArgs)
            return;
        args_[nargs_++] = {key, value};
    }

    /** Set the simulated duration of the span. */
    void dur(TimeNs d) { dur_ = d; }

    ~TraceScope()
    {
        if (!tracer_)
            return;
        tracer_->complete(cat_, name_, pid_, ts_, dur_, args_.data(),
                          nargs_);
    }

  private:
    Tracer *tracer_;
    Cat cat_;
    const char *name_;
    std::int32_t pid_;
    TimeNs ts_;
    TimeNs dur_ = 0;
    std::array<TraceArg, kMaxTraceArgs> args_{};
    std::size_t nargs_ = 0;
};

} // namespace hawksim::obs

#endif // HAWKSIM_OBS_TRACE_HH
