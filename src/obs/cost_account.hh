/**
 * @file
 * Per-subsystem cost accounting for one simulated run.
 *
 * Attributes every nanosecond of simulated MM work to the subsystem
 * that spent it (fault path vs. each background daemon), keeps event
 * counters (promotions, splits, migrations, zeroed pages, ...) and a
 * log-bucketed fault-latency histogram whose p50/p95/p99 the harness
 * surfaces per run. Unlike tracing this is always on: it is a handful
 * of array increments per event, and its output is deterministic, so
 * every harness report carries a cost block.
 */

#ifndef HAWKSIM_OBS_COST_ACCOUNT_HH
#define HAWKSIM_OBS_COST_ACCOUNT_HH

#include <array>
#include <bit>
#include <cstdint>

#include "base/types.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::obs {

/** Who spent the simulated time. */
enum class Subsys : std::uint8_t
{
    kFaultPath,     //!< synchronous fault handling (incl. swap-in)
    kPromoteDaemon, //!< khugepaged-style promotion work
    kZeroDaemon,    //!< async pre-zeroing thread
    kBloatDaemon,   //!< bloat-recovery scanning and dedup
    kCompaction,    //!< page migration (direct and kcompactd)
    kReclaim,       //!< reclaim / swap device time
    kTlbWalk,       //!< hardware page-walk time
};

constexpr unsigned kSubsysCount = 7;

/** Stable snake_case name ("fault_path", "zero_daemon", ...). */
const char *subsysName(Subsys s);

/** What happened, countwise. */
enum class Counter : std::uint8_t
{
    kFaults,         //!< page faults serviced
    kHugeFaults,     //!< ... of which mapped a huge page
    kCowFaults,      //!< COW breaks
    kSwapIns,        //!< major faults served from swap
    kPromotions,     //!< regions promoted to huge mappings
    kSplits,         //!< huge mappings demoted/split
    kMigratedPages,  //!< base pages moved by compaction
    kZeroedPages,    //!< pages zeroed by the async daemon
    kDedupedPages,   //!< zero pages deduplicated by bloat recovery
    kReclaimedPages, //!< pages evicted to swap
    kResvBroken,     //!< FreeBSD-style reservations broken
};

constexpr unsigned kCounterCount = 11;

/** Stable snake_case name ("faults", "migrated_pages", ...). */
const char *counterName(Counter c);

/**
 * Log2-bucketed latency histogram: bucket b holds values in
 * [2^(b-1), 2^b) ns, so the ns..ms range fits in 48 buckets with
 * bounded relative error. Quantiles interpolate linearly inside a
 * bucket; exact min/max/sum are tracked alongside.
 */
class LatencyHistogram
{
  public:
    static constexpr unsigned kBuckets = 48;

    void
    add(TimeNs v)
    {
        const std::uint64_t ns = v > 0 ? static_cast<std::uint64_t>(v)
                                       : 0;
        unsigned b = ns == 0 ? 0
                             : static_cast<unsigned>(
                                   std::bit_width(ns));
        if (b >= kBuckets)
            b = kBuckets - 1;
        counts_[b]++;
        total_++;
        sum_ += ns;
        if (total_ == 1 || v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return total_; }
    TimeNs minimum() const { return total_ ? min_ : 0; }
    TimeNs maximum() const { return max_; }
    double
    mean() const
    {
        return total_ ? static_cast<double>(sum_) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    /** Approximate value below which fraction @p q of samples lie. */
    double quantile(double q) const;

    std::uint64_t bucket(unsigned b) const { return counts_.at(b); }

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    TimeNs min_ = 0;
    TimeNs max_ = 0;
};

class CostAccounting
{
  public:
    /** Attribute @p ns of simulated work to @p s. */
    void
    charge(Subsys s, TimeNs ns)
    {
        if (ns > 0)
            ns_[static_cast<unsigned>(s)] += ns;
    }

    /** Bump @p c by @p n. */
    void
    count(Counter c, std::uint64_t n = 1)
    {
        counters_[static_cast<unsigned>(c)] += n;
    }

    /** Record one serviced fault (latency + counters + histogram). */
    void
    fault(TimeNs latency, bool huge)
    {
        count(Counter::kFaults);
        if (huge)
            count(Counter::kHugeFaults);
        charge(Subsys::kFaultPath, latency);
        fault_latency_.add(latency);
    }

    TimeNs
    subsysNs(Subsys s) const
    {
        return ns_[static_cast<unsigned>(s)];
    }

    std::uint64_t
    counter(Counter c) const
    {
        return counters_[static_cast<unsigned>(c)];
    }

    const LatencyHistogram &faultLatency() const
    {
        return fault_latency_;
    }

    /** Sum of all attributed simulated time. */
    TimeNs totalNs() const;

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    std::array<TimeNs, kSubsysCount> ns_{};
    std::array<std::uint64_t, kCounterCount> counters_{};
    LatencyHistogram fault_latency_;
};

} // namespace hawksim::obs

#endif // HAWKSIM_OBS_COST_ACCOUNT_HH
