/**
 * @file
 * Periodic vmstat-style sampler.
 *
 * The VmstatRecorder takes a full introspection Snapshot every N sim
 * ticks (InspectConfig::everyTicks), folds the headline counters into
 * the run's Metrics as "vmstat.*" time series (free blocks per buddy
 * order, zero-list depth, swap occupancy) and retains the snapshots
 * for the harness to export (`--inspect-out`) or render as heatmaps.
 *
 * Sampling happens at a fixed point of System::tick() keyed only on
 * the tick counter, so for a deterministic run the sample stream —
 * and therefore the snapshot dump — is byte-identical regardless of
 * --jobs or wall clock.
 */

#ifndef HAWKSIM_OBS_VMSTAT_HH
#define HAWKSIM_OBS_VMSTAT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "obs/introspect.hh"
#include "sim/metrics.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::obs {

class VmstatRecorder
{
  public:
    explicit VmstatRecorder(const InspectConfig &cfg) : cfg_(cfg) {}

    /**
     * Sample if @p tick_no is on the period. Called once per
     * System::tick(); reads state only, so skipped ticks and
     * disabled recorders leave the run untouched.
     */
    void maybeSample(sim::System &sys, std::uint64_t tick_no);

    const InspectConfig &config() const { return cfg_; }

    /** Snapshots taken so far, oldest first. */
    const std::vector<Snapshot> &snapshots() const
    {
        return snapshots_;
    }

    /** Move the snapshots out (end-of-run capture). */
    std::vector<Snapshot> take() { return std::move(snapshots_); }

    /**
     * Retained snapshots (the full tree — the harness exports them
     * verbatim at end of run). Series ids are lazily re-interned on
     * the next sample after load.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    void internSeries(sim::Metrics &m);

    InspectConfig cfg_;
    bool sids_ready_ = false;
    std::array<sim::Metrics::SeriesId, kInspectOrders> sid_order_{};
    sim::Metrics::SeriesId sid_free_zero_ = 0;
    sim::Metrics::SeriesId sid_swap_used_ = 0;
    std::vector<Snapshot> snapshots_;
};

} // namespace hawksim::obs

#endif // HAWKSIM_OBS_VMSTAT_HH
