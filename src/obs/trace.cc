#include "obs/trace.hh"

#include <algorithm>
#include <mutex>
#include <set>
#include <string>

#include "base/logging.hh"
#include "snap/snap.hh"

namespace hawksim::obs {

namespace {

constexpr const char *kCatNames[kCatCount] = {
    "fault", "promote", "demote", "zero", "bloat",
    "compact", "reclaim", "tlb", "proc", "chaos",
};

} // namespace

const char *
catName(Cat c)
{
    const auto i = static_cast<unsigned>(c);
    HS_ASSERT(i < kCatCount, "bad trace category ", i);
    return kCatNames[i];
}

std::optional<Cat>
catFromName(std::string_view name)
{
    for (unsigned i = 0; i < kCatCount; i++) {
        if (name == kCatNames[i])
            return static_cast<Cat>(i);
    }
    return std::nullopt;
}

std::optional<CatMask>
parseCatMask(std::string_view csv)
{
    if (csv.empty())
        return kAllCats;
    CatMask mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = std::min(csv.find(',', pos),
                                           csv.size());
        const std::string_view item = csv.substr(pos, comma - pos);
        if (!item.empty()) {
            const auto cat = catFromName(item);
            if (!cat)
                return std::nullopt;
            mask |= catBit(*cat);
        }
        pos = comma + 1;
    }
    return mask == 0 ? kAllCats : mask;
}

void
Tracer::emit(Cat cat, const char *name, std::int32_t pid, TimeNs ts,
             TimeNs dur, const TraceArg *args, std::size_t nargs)
{
    TraceEvent ev;
    ev.seq = seq_++;
    ev.ts = ts;
    ev.dur = dur;
    ev.cat = cat;
    ev.pid = pid;
    ev.name = name;
    for (std::size_t n = 0; n < nargs && n < kMaxTraceArgs; n++)
        ev.args[n] = args[n];
    if (ring_.size() < capacity_) {
        ring_.push_back(ev);
    } else {
        TraceEvent &victim = ring_[head_];
        dropped_++;
        dropped_by_cat_[static_cast<unsigned>(victim.cat)]++;
        victim = ev;
        head_ = (head_ + 1) % capacity_;
    }
}

std::vector<TraceEvent>
Tracer::drain()
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    // head_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); i++)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    ring_.clear();
    head_ = 0;
    return out;
}

namespace {

/**
 * Restored trace events need stable `const char *` names, but the
 * static strings they were emitted with are unrecoverable from a
 * byte stream. Interning in a process-lifetime node-based set gives
 * every distinct restored string one stable address (harness workers
 * restore concurrently, hence the lock).
 */
const char *
internedTraceString(const std::string &s)
{
    static std::mutex mu;
    static std::set<std::string> pool;
    const std::lock_guard<std::mutex> lock(mu);
    return pool.insert(s).first->c_str();
}

} // namespace

void
Tracer::save(snap::Writer &w) const
{
    w.u64(seq_);
    w.u64(dropped_);
    for (std::uint64_t d : dropped_by_cat_)
        w.u64(d);
    w.u64(head_);
    w.u64(ring_.size());
    for (const TraceEvent &ev : ring_) {
        w.u64(ev.seq);
        w.i64(ev.ts);
        w.i64(ev.dur);
        w.u8(static_cast<std::uint8_t>(ev.cat));
        w.i32(ev.pid);
        w.str(ev.name ? ev.name : "");
        const unsigned nargs = ev.argCount();
        w.u8(static_cast<std::uint8_t>(nargs));
        for (unsigned a = 0; a < nargs; a++) {
            w.str(ev.args[a].key);
            w.i64(ev.args[a].value);
        }
    }
}

void
Tracer::load(snap::Reader &r)
{
    seq_ = r.u64();
    dropped_ = r.u64();
    for (std::uint64_t &d : dropped_by_cat_)
        d = r.u64();
    head_ = r.u64();
    ring_.clear();
    const std::uint64_t n = r.u64();
    HS_ASSERT(n <= capacity_, "snapshot trace ring has ", n,
              " events, tracer capacity is ", capacity_);
    ring_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceEvent ev;
        ev.seq = r.u64();
        ev.ts = r.i64();
        ev.dur = r.i64();
        ev.cat = static_cast<Cat>(r.u8());
        ev.pid = r.i32();
        ev.name = internedTraceString(r.str());
        const unsigned nargs = r.u8();
        HS_ASSERT(nargs <= kMaxTraceArgs,
                  "snapshot trace event with ", nargs, " args");
        for (unsigned a = 0; a < nargs; a++) {
            const char *key = internedTraceString(r.str());
            ev.args[a] = {key, r.i64()};
        }
        ring_.push_back(ev);
    }
}

} // namespace hawksim::obs
