#include "obs/trace.hh"

#include <algorithm>

#include "base/logging.hh"

namespace hawksim::obs {

namespace {

constexpr const char *kCatNames[kCatCount] = {
    "fault", "promote", "demote", "zero", "bloat",
    "compact", "reclaim", "tlb", "proc", "chaos",
};

} // namespace

const char *
catName(Cat c)
{
    const auto i = static_cast<unsigned>(c);
    HS_ASSERT(i < kCatCount, "bad trace category ", i);
    return kCatNames[i];
}

std::optional<Cat>
catFromName(std::string_view name)
{
    for (unsigned i = 0; i < kCatCount; i++) {
        if (name == kCatNames[i])
            return static_cast<Cat>(i);
    }
    return std::nullopt;
}

std::optional<CatMask>
parseCatMask(std::string_view csv)
{
    if (csv.empty())
        return kAllCats;
    CatMask mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = std::min(csv.find(',', pos),
                                           csv.size());
        const std::string_view item = csv.substr(pos, comma - pos);
        if (!item.empty()) {
            const auto cat = catFromName(item);
            if (!cat)
                return std::nullopt;
            mask |= catBit(*cat);
        }
        pos = comma + 1;
    }
    return mask == 0 ? kAllCats : mask;
}

void
Tracer::emit(Cat cat, const char *name, std::int32_t pid, TimeNs ts,
             TimeNs dur, const TraceArg *args, std::size_t nargs)
{
    TraceEvent ev;
    ev.seq = seq_++;
    ev.ts = ts;
    ev.dur = dur;
    ev.cat = cat;
    ev.pid = pid;
    ev.name = name;
    for (std::size_t n = 0; n < nargs && n < kMaxTraceArgs; n++)
        ev.args[n] = args[n];
    if (ring_.size() < capacity_) {
        ring_.push_back(ev);
    } else {
        TraceEvent &victim = ring_[head_];
        dropped_++;
        dropped_by_cat_[static_cast<unsigned>(victim.cat)]++;
        victim = ev;
        head_ = (head_ + 1) % capacity_;
    }
}

std::vector<TraceEvent>
Tracer::drain()
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    // head_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); i++)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    ring_.clear();
    head_ = 0;
    return out;
}

} // namespace hawksim::obs
