#include "obs/introspect.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "base/page_key.hh"
#include "core/hawkeye.hh"
#include "harness/json.hh"
#include "mem/phys.hh"
#include "sim/process.hh"
#include "sim/system.hh"
#include "tlb/tlb.hh"
#include "vm/address_space.hh"

namespace hawksim::obs {

namespace {

static_assert(kInspectOrders == mem::BuddyAllocator::kMaxOrder + 1,
              "buddyinfo order count out of sync with the allocator");

/** Regions of a VMA: [start/2MB, ceil(end/2MB)). */
std::uint64_t
firstRegionOf(const vm::Vma &v)
{
    return v.start / kHugePageSize;
}

std::uint64_t
endRegionOf(const vm::Vma &v)
{
    return (v.end + kHugePageSize - 1) / kHugePageSize;
}

/** Per-region accumulator: the reported info plus internal counts. */
struct RegionAccum
{
    RegionInfo info;
    /** Exclusively-owned frames (rss contribution). */
    unsigned owned = 0;
};

TlbLevelOccupancy
level(unsigned used, unsigned size)
{
    return TlbLevelOccupancy{used, size};
}

ProcInfo
snapshotProcess(sim::Process &proc, mem::PhysicalMemory &phys,
                const core::HawkEyePolicy *hawkeye)
{
    ProcInfo pi;
    pi.pid = proc.pid();
    pi.name = proc.name();
    pi.finished = proc.finished();
    pi.oomKilled = proc.oomKilled();

    const vm::AddressSpace &space = proc.space();
    const vm::PageTable &pt = space.pageTable();
    pi.rssPages = space.rssPages();
    pi.mappedPages = pt.mappedPages();
    pi.basePages = pt.mappedBasePages();
    pi.hugePages = pt.mappedHugePages();
    pi.pageFaults = proc.pageFaults();
    pi.cowFaults = proc.cowFaults();
    // Cumulative overhead only: windowMmuOverheadPct() would consume
    // the policy's sampling window and perturb the run.
    pi.mmuOverheadPct = proc.mmuOverheadPct();

    const tlb::TlbModel::Occupancy occ = proc.tlb().occupancy();
    pi.tlb.l1_4k = level(occ.l14kUsed, occ.l14kSize);
    pi.tlb.l1_2m = level(occ.l12mUsed, occ.l12mSize);
    pi.tlb.l2 = level(occ.l2Used, occ.l2Size);
    pi.tlb.pwcPde = level(occ.pwcPdeUsed, occ.pwcPdeSize);
    pi.tlb.pwcPdpte = level(occ.pwcPdpteUsed, occ.pwcPdpteSize);

    // One deterministic page-table walk builds the pagemap view;
    // everything else aggregates from it. The walk reads the frame
    // table through its columns directly: a huge leaf needs 512
    // content words (one countZeroBacked pass over the content
    // column), a base leaf needs exactly one flags byte and one
    // content word — materializing a five-column FrameRef per page
    // would drag the owner/mapCount/rmap columns through the cache
    // for nothing.
    const std::uint8_t *frame_flags = phys.flagsColumn();
    const mem::PageContent *frame_content = phys.contentColumn();
    std::map<std::uint64_t, RegionAccum> regions;
    pt.forEachLeaf([&](Vpn vpn, const vm::Pte &e, bool is_huge) {
        const std::uint64_t r = vpnToHugeRegion(vpn);
        RegionAccum &acc = regions[r];
        acc.info.region = r;
        if (is_huge) {
            acc.info.huge = true;
            acc.info.population = kPagesPerHuge;
            acc.info.accessed = e.accessed() ? kPagesPerHuge : 0;
            acc.info.dirty = e.dirty() ? kPagesPerHuge : 0;
            acc.owned += kPagesPerHuge;
            acc.info.zeroBacked += static_cast<unsigned>(
                phys.countZeroBacked(e.pfn(), kPagesPerHuge));
        } else {
            acc.info.population++;
            if (e.accessed())
                acc.info.accessed++;
            if (e.dirty())
                acc.info.dirty++;
            if (e.zeroPage()) {
                acc.info.zeroCow++;
            } else {
                const Pfn pfn = e.pfn();
                if (!(frame_flags[pfn] & mem::kFrameShared)) {
                    acc.owned++;
                    if (frame_content[pfn].isZero())
                        acc.info.zeroBacked++;
                }
            }
        }
    });

    if (hawkeye) {
        const core::AccessTracker *trk = hawkeye->tracker(pi.pid);
        const core::AccessMap *am = hawkeye->accessMap(pi.pid);
        for (auto &[r, acc] : regions) {
            if (trk) {
                auto it = trk->regions().find(r);
                if (it != trk->regions().end())
                    acc.info.ema = it->second.ema.value();
            }
            if (am)
                acc.info.bucket = am->bucketOf(r);
        }
    }

    // smaps: aggregate regions into their VMAs. VMAs are huge-page
    // aligned with guard gaps, so no region straddles two of them.
    for (const auto &[start, vma] : space.vmas()) {
        VmaInfo vi;
        vi.start = vma.start;
        vi.end = vma.end;
        vi.name = vma.name;
        vi.anon = vma.anon;
        vi.hugeEligible = vma.hugeEligible;
        const std::uint64_t endr = endRegionOf(vma);
        for (auto it = regions.lower_bound(firstRegionOf(vma));
             it != regions.end() && it->first < endr; ++it) {
            const RegionAccum &acc = it->second;
            vi.mappedPages += acc.info.population;
            vi.rssPages += acc.owned;
            vi.accessedPages += acc.info.accessed;
            vi.dirtyPages += acc.info.dirty;
            vi.zeroCowPages += acc.info.zeroCow;
            vi.zeroBackedPages += acc.info.zeroBacked;
            if (acc.info.huge)
                vi.hugeRegions++;
        }
        pi.vmas.push_back(std::move(vi));
    }

    pi.regions.reserve(regions.size());
    for (auto &[r, acc] : regions) {
        pi.zeroBackedPages += acc.info.zeroBacked;
        pi.regions.push_back(std::move(acc.info));
    }
    return pi;
}

} // namespace

Snapshot
snapshot(sim::System &sys)
{
    Snapshot s;
    s.time = sys.now();
    s.tick = sys.tickNo();

    mem::PhysicalMemory &phys = sys.phys();
    const mem::BuddyAllocator &buddy = phys.buddy();
    s.mem.totalFrames = phys.totalFrames();
    s.mem.freeFrames = phys.freeFrames();
    s.mem.usedFrames = phys.usedFrames();
    s.mem.freeZeroPages = buddy.freeZeroPages();
    s.mem.freeNonZeroPages = buddy.freeNonZeroPages();
    s.mem.largestFreeOrder = buddy.largestFreeOrder();
    s.mem.fmfi9 = buddy.fragIndex(kHugePageOrder);
    s.mem.swapUsedPages = sys.swap().usedPages();
    s.mem.swapCapacityPages = sys.swap().capacityPages();
    s.mem.swappedPages = sys.swappedPages();
    s.mem.swapTotalOut = sys.swap().totalSwappedOut();
    s.mem.swapTotalIn = sys.swap().totalSwappedIn();

    buddy.forEachFreeBlock([&](Pfn, unsigned order, bool zeroed) {
        s.buddy[order].freeBlocks++;
        if (zeroed)
            s.buddy[order].zeroBlocks++;
    });

    const auto *hawkeye = dynamic_cast<const core::HawkEyePolicy *>(
        sys.policyIfAny());
    for (auto &proc : sys.processes())
        s.procs.push_back(snapshotProcess(*proc, phys, hawkeye));

    // Swap map: bin each swapped page into its process and VMA.
    // Increments over an unordered map commute, so iteration order
    // cannot leak into the snapshot.
    for (const auto &[key, content] : sys.swappedMap()) {
        (void)content;
        const auto pid =
            static_cast<std::int32_t>(key >> kPageKeyIndexBits);
        const Addr addr = vpnToAddr(key & kPageKeyIndexMask);
        for (ProcInfo &pi : s.procs) {
            if (pi.pid != pid)
                continue;
            pi.swappedPages++;
            for (VmaInfo &vi : pi.vmas) {
                if (addr >= vi.start && addr < vi.end) {
                    vi.swappedPages++;
                    break;
                }
            }
            break;
        }
    }
    return s;
}

harness::Json
snapshotToJson(const Snapshot &s)
{
    using harness::Json;
    Json out = Json::object();
    out.set("time_ns", Json(static_cast<std::int64_t>(s.time)));
    out.set("tick", Json(s.tick));

    Json mi = Json::object();
    mi.set("total_frames", Json(s.mem.totalFrames));
    mi.set("free_frames", Json(s.mem.freeFrames));
    mi.set("used_frames", Json(s.mem.usedFrames));
    mi.set("free_zero_pages", Json(s.mem.freeZeroPages));
    mi.set("free_nonzero_pages", Json(s.mem.freeNonZeroPages));
    mi.set("largest_free_order", Json(s.mem.largestFreeOrder));
    mi.set("fmfi9", Json(s.mem.fmfi9));
    mi.set("swap_used_pages", Json(s.mem.swapUsedPages));
    mi.set("swap_capacity_pages", Json(s.mem.swapCapacityPages));
    mi.set("swapped_pages", Json(s.mem.swappedPages));
    mi.set("swap_total_out", Json(s.mem.swapTotalOut));
    mi.set("swap_total_in", Json(s.mem.swapTotalIn));
    out.set("meminfo", std::move(mi));

    Json bi = Json::object();
    Json free_blocks = Json::array();
    Json zero_blocks = Json::array();
    for (const BuddyOrderInfo &o : s.buddy) {
        free_blocks.push(Json(o.freeBlocks));
        zero_blocks.push(Json(o.zeroBlocks));
    }
    bi.set("free_blocks", std::move(free_blocks));
    bi.set("free_zero_blocks", std::move(zero_blocks));
    out.set("buddyinfo", std::move(bi));

    Json procs = Json::array();
    for (const ProcInfo &pi : s.procs) {
        Json jp = Json::object();
        jp.set("pid", Json(static_cast<std::int64_t>(pi.pid)));
        jp.set("name", Json(pi.name));
        jp.set("finished", Json(pi.finished));
        jp.set("oom", Json(pi.oomKilled));
        jp.set("rss_pages", Json(pi.rssPages));
        jp.set("mapped_pages", Json(pi.mappedPages));
        jp.set("base_pages", Json(pi.basePages));
        jp.set("huge_pages", Json(pi.hugePages));
        jp.set("swapped_pages", Json(pi.swappedPages));
        jp.set("zero_backed_pages", Json(pi.zeroBackedPages));
        jp.set("page_faults", Json(pi.pageFaults));
        jp.set("cow_faults", Json(pi.cowFaults));
        jp.set("mmu_overhead_pct", Json(pi.mmuOverheadPct));

        Json tlb = Json::object();
        const auto lvl = [](const TlbLevelOccupancy &l) {
            Json a = Json::array();
            a.push(Json(static_cast<std::int64_t>(l.used)));
            a.push(Json(static_cast<std::int64_t>(l.size)));
            return a;
        };
        tlb.set("l1_4k", lvl(pi.tlb.l1_4k));
        tlb.set("l1_2m", lvl(pi.tlb.l1_2m));
        tlb.set("l2", lvl(pi.tlb.l2));
        tlb.set("pwc_pde", lvl(pi.tlb.pwcPde));
        tlb.set("pwc_pdpte", lvl(pi.tlb.pwcPdpte));
        jp.set("tlb", std::move(tlb));

        Json smaps = Json::array();
        for (const VmaInfo &vi : pi.vmas) {
            Json jv = Json::object();
            jv.set("start", Json(vi.start));
            jv.set("end", Json(vi.end));
            jv.set("name", Json(vi.name));
            jv.set("anon", Json(vi.anon));
            jv.set("huge_eligible", Json(vi.hugeEligible));
            jv.set("mapped_pages", Json(vi.mappedPages));
            jv.set("rss_pages", Json(vi.rssPages));
            jv.set("huge_regions", Json(vi.hugeRegions));
            jv.set("accessed_pages", Json(vi.accessedPages));
            jv.set("dirty_pages", Json(vi.dirtyPages));
            jv.set("zero_cow_pages", Json(vi.zeroCowPages));
            jv.set("zero_backed_pages", Json(vi.zeroBackedPages));
            jv.set("swapped_pages", Json(vi.swappedPages));
            smaps.push(std::move(jv));
        }
        jp.set("smaps", std::move(smaps));

        Json pagemap = Json::array();
        for (const RegionInfo &ri : pi.regions) {
            Json jr = Json::object();
            jr.set("region", Json(ri.region));
            jr.set("population",
                   Json(static_cast<std::int64_t>(ri.population)));
            jr.set("accessed",
                   Json(static_cast<std::int64_t>(ri.accessed)));
            jr.set("dirty", Json(static_cast<std::int64_t>(ri.dirty)));
            jr.set("huge", Json(ri.huge));
            jr.set("zero_cow",
                   Json(static_cast<std::int64_t>(ri.zeroCow)));
            jr.set("zero_backed",
                   Json(static_cast<std::int64_t>(ri.zeroBacked)));
            jr.set("ema", Json(ri.ema));
            jr.set("bucket", Json(static_cast<std::int64_t>(ri.bucket)));
            pagemap.push(std::move(jr));
        }
        jp.set("pagemap", std::move(pagemap));
        procs.push(std::move(jp));
    }
    out.set("processes", std::move(procs));
    return out;
}

std::string
renderHeatmap(const ProcInfo &p)
{
    // Density ramp for the access row; index 0 (cold) renders blank
    // so the mapping row below is what distinguishes cold from
    // unmapped.
    static constexpr char kRamp[] = " .:-=+*#%@";
    constexpr unsigned kCols = 64;

    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "p%d %s rss=%llu pages huge=%llu mapped=%llu "
                  "mmu=%.2f%%\n",
                  p.pid, p.name.c_str(),
                  static_cast<unsigned long long>(p.rssPages),
                  static_cast<unsigned long long>(p.hugePages),
                  static_cast<unsigned long long>(p.mappedPages),
                  p.mmuOverheadPct);
    out += buf;

    const auto findRegion = [&p](std::uint64_t r) -> const RegionInfo * {
        auto it = std::lower_bound(
            p.regions.begin(), p.regions.end(), r,
            [](const RegionInfo &ri, std::uint64_t v) {
                return ri.region < v;
            });
        return it != p.regions.end() && it->region == r ? &*it
                                                        : nullptr;
    };

    for (const VmaInfo &v : p.vmas) {
        const std::uint64_t first = v.start / kHugePageSize;
        const std::uint64_t endr =
            (v.end + kHugePageSize - 1) / kHugePageSize;
        std::snprintf(buf, sizeof(buf),
                      "  %s [0x%llx,0x%llx) %llu regions "
                      "rss=%llu huge=%llu swap=%llu\n",
                      v.name.c_str(),
                      static_cast<unsigned long long>(v.start),
                      static_cast<unsigned long long>(v.end),
                      static_cast<unsigned long long>(endr - first),
                      static_cast<unsigned long long>(v.rssPages),
                      static_cast<unsigned long long>(v.hugeRegions),
                      static_cast<unsigned long long>(v.swappedPages));
        out += buf;
        for (std::uint64_t row = first; row < endr; row += kCols) {
            const std::uint64_t row_end =
                std::min<std::uint64_t>(endr, row + kCols);
            std::string acc, map;
            for (std::uint64_t r = row; r < row_end; r++) {
                const RegionInfo *ri = findRegion(r);
                if (!ri || ri->population == 0) {
                    acc += ' ';
                    map += ' ';
                    continue;
                }
                // EMA coverage when the tracker knows the region,
                // live accessed bits otherwise; both are 0..512.
                const double lv =
                    ri->ema >= 0.0 ? ri->ema
                                   : static_cast<double>(ri->accessed);
                unsigned idx = 0;
                if (lv > 0.0) {
                    idx = 1 + static_cast<unsigned>(
                                  lv * 8.99 / 512.0);
                    if (idx > 9)
                        idx = 9;
                }
                acc += kRamp[idx];
                map += ri->huge ? 'H' : '.';
            }
            std::snprintf(buf, sizeof(buf), "    0x%010llx acc|",
                          static_cast<unsigned long long>(
                              row * kHugePageSize));
            out += buf;
            out += acc;
            out += "|\n                 map|";
            out += map;
            out += "|\n";
        }
    }
    return out;
}

std::string
formatMemInfo(const Snapshot &s)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "MemTotal:     %10llu pages\n"
        "MemFree:      %10llu pages\n"
        "MemUsed:      %10llu pages\n"
        "FreeZeroed:   %10llu pages\n"
        "FreeDirty:    %10llu pages\n"
        "LargestOrder: %10d\n"
        "Fmfi9:        %10.4f\n"
        "SwapTotal:    %10llu pages\n"
        "SwapUsed:     %10llu pages\n",
        static_cast<unsigned long long>(s.mem.totalFrames),
        static_cast<unsigned long long>(s.mem.freeFrames),
        static_cast<unsigned long long>(s.mem.usedFrames),
        static_cast<unsigned long long>(s.mem.freeZeroPages),
        static_cast<unsigned long long>(s.mem.freeNonZeroPages),
        s.mem.largestFreeOrder, s.mem.fmfi9,
        static_cast<unsigned long long>(s.mem.swapCapacityPages),
        static_cast<unsigned long long>(s.mem.swapUsedPages));
    return buf;
}

std::string
formatBuddyInfo(const Snapshot &s)
{
    std::string out = "order      ";
    char buf[32];
    for (unsigned o = 0; o < kInspectOrders; o++) {
        std::snprintf(buf, sizeof(buf), "%8u", o);
        out += buf;
    }
    out += "\nfree       ";
    for (const BuddyOrderInfo &o : s.buddy) {
        std::snprintf(buf, sizeof(buf), "%8llu",
                      static_cast<unsigned long long>(o.freeBlocks));
        out += buf;
    }
    out += "\nfree(zero) ";
    for (const BuddyOrderInfo &o : s.buddy) {
        std::snprintf(buf, sizeof(buf), "%8llu",
                      static_cast<unsigned long long>(o.zeroBlocks));
        out += buf;
    }
    out += "\n";
    return out;
}

} // namespace hawksim::obs
