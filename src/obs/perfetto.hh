/**
 * @file
 * Chrome trace_event ("Trace Event Format") JSON exporter.
 *
 * Serializes TraceEvents into the JSON array format that
 * ui.perfetto.dev and chrome://tracing load directly. One simulated
 * run maps to one Perfetto "process"; inside it, each (sim process,
 * category) pair gets its own named thread track, so fault-path
 * activity, daemon activity and per-process activity land on
 * separate swimlanes.
 *
 * Output is byte-deterministic: timestamps are the events' simulated
 * nanoseconds rendered as fixed-point microseconds (Perfetto's native
 * unit) with integer arithmetic, and records are written in the order
 * supplied by the caller. No wall clock, no float formatting.
 */

#ifndef HAWKSIM_OBS_PERFETTO_HH
#define HAWKSIM_OBS_PERFETTO_HH

#include <cstdint>
#include <ostream>
#include <set>
#include <string_view>
#include <utility>

#include "obs/trace.hh"

namespace hawksim::obs {

class PerfettoWriter
{
  public:
    /** Writes the document header immediately. */
    explicit PerfettoWriter(std::ostream &os);

    /**
     * Start a new trace process (one simulated run): emits its
     * process_name metadata record. @p pid must be unique per run.
     */
    void beginProcess(std::uint32_t pid, std::string_view name);

    /**
     * The run-level span: one event covering the whole simulated
     * duration of the run, on a dedicated "run" track.
     */
    void runSpan(std::uint32_t pid, TimeNs dur);

    /** Emit one trace event into process @p pid. */
    void event(std::uint32_t pid, const TraceEvent &ev);

    /**
     * Emit one counter sample ("ph":"C"): the value of track
     * @p name at simulated time @p ts. Counter tracks live on tid 0
     * beside the run span; Perfetto renders one graph per name.
     */
    void counter(std::uint32_t pid, std::string_view name, TimeNs ts,
                 std::int64_t value);

    /**
     * Emit one instant metadata record with pre-rendered JSON args
     * (e.g. tracer drop accounting). @p rawArgs must be the inner
     * object text without braces: "\"k\":1,\"j\":2".
     */
    void instantArgs(std::uint32_t pid, std::uint32_t tid,
                     std::string_view name, std::string_view cat,
                     TimeNs ts, std::string_view rawArgs);

    /** Close the document. No writes allowed afterwards. */
    void finish();

  private:
    /** Track id of a (sim pid, category) pair within one process. */
    static std::uint32_t tid(const TraceEvent &ev);
    void threadNameIfNew(std::uint32_t pid, std::uint32_t tid,
                         const TraceEvent *ev);
    void beginRecord();
    void writeEscaped(std::string_view s);
    /** ns rendered as microseconds with 3 decimals (ns precision). */
    void writeMicros(TimeNs ns);

    std::ostream &os_;
    bool first_ = true;
    bool finished_ = false;
    /** (perfetto pid, tid) pairs already given a thread_name. */
    std::set<std::pair<std::uint32_t, std::uint32_t>> named_;
};

} // namespace hawksim::obs

#endif // HAWKSIM_OBS_PERFETTO_HH
