#include "obs/perfetto.hh"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "base/logging.hh"

namespace hawksim::obs {

namespace {

/** The run-level span track inside each process. */
constexpr std::uint32_t kRunTid = 0;

} // namespace

PerfettoWriter::PerfettoWriter(std::ostream &os) : os_(os)
{
    os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

std::uint32_t
PerfettoWriter::tid(const TraceEvent &ev)
{
    // Kernel/system events (pid -1) map to tracks 1..32; process p
    // to tracks of slot p+1. +1 keeps tid 0 free for the run span.
    // The stride is a fixed constant (not kCatCount) so adding a
    // category does not renumber every existing track in old traces.
    constexpr std::uint32_t kTidStride = 10;
    static_assert(kCatCount <= kTidStride,
                  "tid slots exhausted; widen kTidStride (renumbers "
                  "all trace tracks)");
    const std::uint32_t slot =
        ev.pid < 0 ? 0 : static_cast<std::uint32_t>(ev.pid) + 1;
    return slot * kTidStride + static_cast<std::uint32_t>(ev.cat) + 1;
}

void
PerfettoWriter::beginRecord()
{
    HS_ASSERT(!finished_, "write after finish()");
    if (!first_)
        os_ << ',';
    first_ = false;
    os_ << '\n';
}

void
PerfettoWriter::writeEscaped(std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os_ << "\\\"";
            break;
          case '\\':
            os_ << "\\\\";
            break;
          case '\n':
            os_ << "\\n";
            break;
          case '\t':
            os_ << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
}

void
PerfettoWriter::writeMicros(TimeNs ns)
{
    if (ns < 0)
        ns = 0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                  static_cast<int>(ns % 1000));
    os_ << buf;
}

void
PerfettoWriter::beginProcess(std::uint32_t pid, std::string_view name)
{
    beginRecord();
    os_ << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"name\":\"process_name\",\"args\":{\"name\":\"";
    writeEscaped(name);
    os_ << "\"}}";
}

void
PerfettoWriter::runSpan(std::uint32_t pid, TimeNs dur)
{
    if (named_.insert({pid, kRunTid}).second) {
        beginRecord();
        os_ << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << kRunTid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\"run\"}}";
    }
    beginRecord();
    os_ << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << kRunTid
        << ",\"ts\":0.000,\"dur\":";
    writeMicros(dur);
    os_ << ",\"cat\":\"proc\",\"name\":\"run\"}";
}

void
PerfettoWriter::threadNameIfNew(std::uint32_t pid, std::uint32_t t,
                                const TraceEvent *ev)
{
    if (!named_.insert({pid, t}).second)
        return;
    beginRecord();
    os_ << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << t
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (ev->pid < 0)
        os_ << "kernel/";
    else
        os_ << 'p' << ev->pid << '/';
    os_ << catName(ev->cat) << "\"}}";
}

void
PerfettoWriter::event(std::uint32_t pid, const TraceEvent &ev)
{
    const std::uint32_t t = tid(ev);
    threadNameIfNew(pid, t, &ev);
    beginRecord();
    os_ << "{\"ph\":\"" << (ev.dur > 0 ? 'X' : 'i') << "\",\"pid\":"
        << pid << ",\"tid\":" << t << ",\"ts\":";
    writeMicros(ev.ts);
    if (ev.dur > 0) {
        os_ << ",\"dur\":";
        writeMicros(ev.dur);
    } else {
        os_ << ",\"s\":\"t\"";
    }
    os_ << ",\"cat\":\"" << catName(ev.cat) << "\",\"name\":\""
        << ev.name << "\",\"args\":{\"seq\":" << ev.seq;
    for (unsigned i = 0; i < ev.argCount(); i++)
        os_ << ",\"" << ev.args[i].key << "\":" << ev.args[i].value;
    os_ << "}}";
}

void
PerfettoWriter::counter(std::uint32_t pid, std::string_view name,
                        TimeNs ts, std::int64_t value)
{
    beginRecord();
    os_ << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":" << kRunTid
        << ",\"ts\":";
    writeMicros(ts);
    os_ << ",\"name\":\"";
    writeEscaped(name);
    os_ << "\",\"args\":{\"v\":" << value << "}}";
}

void
PerfettoWriter::instantArgs(std::uint32_t pid, std::uint32_t tid,
                            std::string_view name,
                            std::string_view cat, TimeNs ts,
                            std::string_view rawArgs)
{
    beginRecord();
    os_ << "{\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"ts\":";
    writeMicros(ts);
    os_ << ",\"s\":\"p\",\"cat\":\"";
    writeEscaped(cat);
    os_ << "\",\"name\":\"";
    writeEscaped(name);
    os_ << "\",\"args\":{" << rawArgs << "}}";
}

void
PerfettoWriter::finish()
{
    HS_ASSERT(!finished_, "double finish()");
    finished_ = true;
    os_ << "\n]}\n";
}

} // namespace hawksim::obs
