#include "obs/vmstat.hh"

#include <cstdio>

#include "sim/system.hh"
#include "snap/snap.hh"

namespace hawksim::obs {

void
VmstatRecorder::internSeries(sim::Metrics &m)
{
    char name[32];
    for (unsigned o = 0; o < kInspectOrders; o++) {
        std::snprintf(name, sizeof(name), "vmstat.free_blocks_o%02u",
                      o);
        sid_order_[o] = m.seriesId(name);
    }
    sid_free_zero_ = m.seriesId("vmstat.free_zero_pages");
    sid_swap_used_ = m.seriesId("vmstat.swap_used_pages");
    sids_ready_ = true;
}

void
VmstatRecorder::maybeSample(sim::System &sys, std::uint64_t tick_no)
{
    if (!cfg_.enabled() || tick_no % cfg_.everyTicks != 0)
        return;

    sim::Metrics &m = sys.metrics();
    if (!sids_ready_)
        internSeries(m);

    Snapshot s = snapshot(sys);
    const TimeNs t = s.time;
    for (unsigned o = 0; o < kInspectOrders; o++) {
        m.record(sid_order_[o], t,
                 static_cast<double>(s.buddy[o].freeBlocks));
    }
    m.record(sid_free_zero_, t,
             static_cast<double>(s.mem.freeZeroPages));
    m.record(sid_swap_used_, t,
             static_cast<double>(s.mem.swapUsedPages));
    snapshots_.push_back(std::move(s));
}

namespace {

void
saveLevel(snap::Writer &w, const TlbLevelOccupancy &l)
{
    w.u32(l.used);
    w.u32(l.size);
}

void
loadLevel(snap::Reader &r, TlbLevelOccupancy &l)
{
    l.used = r.u32();
    l.size = r.u32();
}

void
saveSnapshot(snap::Writer &w, const Snapshot &s)
{
    w.i64(s.time);
    w.u64(s.tick);
    w.u64(s.mem.totalFrames);
    w.u64(s.mem.freeFrames);
    w.u64(s.mem.usedFrames);
    w.u64(s.mem.freeZeroPages);
    w.u64(s.mem.freeNonZeroPages);
    w.i32(s.mem.largestFreeOrder);
    w.f64(s.mem.fmfi9);
    w.u64(s.mem.swapUsedPages);
    w.u64(s.mem.swapCapacityPages);
    w.u64(s.mem.swappedPages);
    w.u64(s.mem.swapTotalOut);
    w.u64(s.mem.swapTotalIn);
    for (const BuddyOrderInfo &b : s.buddy) {
        w.u64(b.freeBlocks);
        w.u64(b.zeroBlocks);
    }
    w.u64(s.procs.size());
    for (const ProcInfo &p : s.procs) {
        w.i32(p.pid);
        w.str(p.name);
        w.b(p.finished);
        w.b(p.oomKilled);
        w.u64(p.rssPages);
        w.u64(p.mappedPages);
        w.u64(p.basePages);
        w.u64(p.hugePages);
        w.u64(p.swappedPages);
        w.u64(p.zeroBackedPages);
        w.u64(p.pageFaults);
        w.u64(p.cowFaults);
        w.f64(p.mmuOverheadPct);
        saveLevel(w, p.tlb.l1_4k);
        saveLevel(w, p.tlb.l1_2m);
        saveLevel(w, p.tlb.l2);
        saveLevel(w, p.tlb.pwcPde);
        saveLevel(w, p.tlb.pwcPdpte);
        w.u64(p.vmas.size());
        for (const VmaInfo &v : p.vmas) {
            w.u64(v.start);
            w.u64(v.end);
            w.str(v.name);
            w.b(v.anon);
            w.b(v.hugeEligible);
            w.u64(v.mappedPages);
            w.u64(v.rssPages);
            w.u64(v.hugeRegions);
            w.u64(v.accessedPages);
            w.u64(v.dirtyPages);
            w.u64(v.zeroCowPages);
            w.u64(v.zeroBackedPages);
            w.u64(v.swappedPages);
        }
        w.u64(p.regions.size());
        for (const RegionInfo &reg : p.regions) {
            w.u64(reg.region);
            w.u32(reg.population);
            w.u32(reg.accessed);
            w.u32(reg.dirty);
            w.b(reg.huge);
            w.u32(reg.zeroCow);
            w.u32(reg.zeroBacked);
            w.f64(reg.ema);
            w.i32(reg.bucket);
        }
    }
}

void
loadSnapshot(snap::Reader &r, Snapshot &s)
{
    s.time = r.i64();
    s.tick = r.u64();
    s.mem.totalFrames = r.u64();
    s.mem.freeFrames = r.u64();
    s.mem.usedFrames = r.u64();
    s.mem.freeZeroPages = r.u64();
    s.mem.freeNonZeroPages = r.u64();
    s.mem.largestFreeOrder = r.i32();
    s.mem.fmfi9 = r.f64();
    s.mem.swapUsedPages = r.u64();
    s.mem.swapCapacityPages = r.u64();
    s.mem.swappedPages = r.u64();
    s.mem.swapTotalOut = r.u64();
    s.mem.swapTotalIn = r.u64();
    for (BuddyOrderInfo &b : s.buddy) {
        b.freeBlocks = r.u64();
        b.zeroBlocks = r.u64();
    }
    s.procs.resize(r.u64());
    for (ProcInfo &p : s.procs) {
        p.pid = r.i32();
        p.name = r.str();
        p.finished = r.b();
        p.oomKilled = r.b();
        p.rssPages = r.u64();
        p.mappedPages = r.u64();
        p.basePages = r.u64();
        p.hugePages = r.u64();
        p.swappedPages = r.u64();
        p.zeroBackedPages = r.u64();
        p.pageFaults = r.u64();
        p.cowFaults = r.u64();
        p.mmuOverheadPct = r.f64();
        loadLevel(r, p.tlb.l1_4k);
        loadLevel(r, p.tlb.l1_2m);
        loadLevel(r, p.tlb.l2);
        loadLevel(r, p.tlb.pwcPde);
        loadLevel(r, p.tlb.pwcPdpte);
        p.vmas.resize(r.u64());
        for (VmaInfo &v : p.vmas) {
            v.start = r.u64();
            v.end = r.u64();
            v.name = r.str();
            v.anon = r.b();
            v.hugeEligible = r.b();
            v.mappedPages = r.u64();
            v.rssPages = r.u64();
            v.hugeRegions = r.u64();
            v.accessedPages = r.u64();
            v.dirtyPages = r.u64();
            v.zeroCowPages = r.u64();
            v.zeroBackedPages = r.u64();
            v.swappedPages = r.u64();
        }
        p.regions.resize(r.u64());
        for (RegionInfo &reg : p.regions) {
            reg.region = r.u64();
            reg.population = r.u32();
            reg.accessed = r.u32();
            reg.dirty = r.u32();
            reg.huge = r.b();
            reg.zeroCow = r.u32();
            reg.zeroBacked = r.u32();
            reg.ema = r.f64();
            reg.bucket = r.i32();
        }
    }
}

} // namespace

void
VmstatRecorder::save(snap::Writer &w) const
{
    w.u64(snapshots_.size());
    for (const Snapshot &s : snapshots_)
        saveSnapshot(w, s);
}

void
VmstatRecorder::load(snap::Reader &r)
{
    snapshots_.clear();
    snapshots_.resize(r.u64());
    for (Snapshot &s : snapshots_)
        loadSnapshot(r, s);
    // Lazily re-intern on the next sample; the restored Metrics has
    // the series already, so the ids come back identical.
    sids_ready_ = false;
}

} // namespace hawksim::obs
