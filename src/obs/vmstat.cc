#include "obs/vmstat.hh"

#include <cstdio>

#include "sim/system.hh"

namespace hawksim::obs {

void
VmstatRecorder::internSeries(sim::Metrics &m)
{
    char name[32];
    for (unsigned o = 0; o < kInspectOrders; o++) {
        std::snprintf(name, sizeof(name), "vmstat.free_blocks_o%02u",
                      o);
        sid_order_[o] = m.seriesId(name);
    }
    sid_free_zero_ = m.seriesId("vmstat.free_zero_pages");
    sid_swap_used_ = m.seriesId("vmstat.swap_used_pages");
    sids_ready_ = true;
}

void
VmstatRecorder::maybeSample(sim::System &sys, std::uint64_t tick_no)
{
    if (!cfg_.enabled() || tick_no % cfg_.everyTicks != 0)
        return;

    sim::Metrics &m = sys.metrics();
    if (!sids_ready_)
        internSeries(m);

    Snapshot s = snapshot(sys);
    const TimeNs t = s.time;
    for (unsigned o = 0; o < kInspectOrders; o++) {
        m.record(sid_order_[o], t,
                 static_cast<double>(s.buddy[o].freeBlocks));
    }
    m.record(sid_free_zero_, t,
             static_cast<double>(s.mem.freeZeroPages));
    m.record(sid_swap_used_, t,
             static_cast<double>(s.mem.swapUsedPages));
    snapshots_.push_back(std::move(s));
}

} // namespace hawksim::obs
