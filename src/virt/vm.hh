/**
 * @file
 * Two-level (virtualized) memory management.
 *
 * A VirtualSystem is a host sim::System whose processes are virtual
 * machines. Each VirtualMachine embeds a full guest sim::System — its
 * own physical memory, policy and daemons — whose guest-physical
 * frames are backed by a host-side anonymous VMA (one host process
 * per VM, the EPT analogue). Guest frame allocations surface as host
 * page faults; host policy decides the EPT page size; guest policy
 * decides the guest page size; address translation pays the 2-D walk
 * cost, scaled down as the host promotes more of the backing to huge
 * mappings.
 *
 * The layer reproduces:
 *   - Fig. 9 / Table 6: HawkEye at host, guest or both layers;
 *   - Fig. 11: overcommitted hosts, where guest async pre-zeroing +
 *     host KSM return guest-free memory to the host like a balloon;
 *   - the explicit balloon-driver baseline.
 */

#ifndef HAWKSIM_VIRT_VM_HH
#define HAWKSIM_VIRT_VM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "ksm/ksm.hh"
#include "sim/system.hh"
#include "workload/workload.hh"

namespace hawksim::virt {

class VirtualMachine;

/**
 * Host-side workload standing in for one VM's guest-physical memory:
 * it replays guest frame allocations as host faults (with guest
 * content), guest frees as host madvise (balloon mode), and guest
 * access samples as host touches (so the host policy sees coverage).
 */
class VmBackingWorkload : public workload::Workload
{
  public:
    VmBackingWorkload(std::string name, std::uint64_t guest_bytes)
        : name_(std::move(name)), guest_bytes_(guest_bytes)
    {}

    std::string name() const override { return name_; }
    void init(sim::Process &proc) override;
    void next(sim::Process &proc, TimeNs max_compute,
              workload::WorkChunk &chunk) override;
    bool runsToCompletion() const override { return false; }

    Addr baseAddr() const { return base_; }

    /** @name Event intake (called by VirtualMachine) */
    /// @{
    void pushFault(Vpn gpa_page, const mem::PageContent &content);
    void pushFree(Vpn gpa_page, std::uint64_t pages);
    void pushTouch(Vpn gpa_page);
    /// @}

  private:
    std::string name_;
    std::uint64_t guest_bytes_;
    Addr base_ = 0;
    std::deque<std::pair<Vpn, mem::PageContent>> pending_faults_;
    std::deque<std::pair<Vpn, std::uint64_t>> pending_frees_;
    std::vector<Vpn> pending_touches_;
};

struct VmOptions
{
    /** Guest physical memory size. */
    std::uint64_t guestMemBytes = GiB(2);
    /** Balloon driver: guest frees return to the host immediately. */
    bool balloon = false;
    /** Nested walk amplification when the host backing is all-4KB. */
    double nestedFactorBase = 3.6;
    /** Amplification reduction at fully-huge host backing. */
    double nestedFactorGain = 2.0;
    std::uint64_t seed = 1234;
};

class VirtualSystem;

class VirtualMachine
{
  public:
    VirtualMachine(VirtualSystem &vs, const std::string &name,
                   VmOptions opts,
                   std::unique_ptr<policy::HugePagePolicy> guest_pol);

    /** Add an application inside the guest (nested TLB config). */
    sim::Process &addGuestProcess(
        const std::string &name,
        std::unique_ptr<workload::Workload> wl);

    sim::System &guest() { return *guest_; }
    sim::Process &hostProcess() { return *host_proc_; }
    const std::string &name() const { return name_; }

    /** Fraction of the VM's host backing mapped with huge pages. */
    double hostHugeFraction() const;

    /** One simulation step: update factors, tick guest, sync host. */
    void tick();

    /** Guest frame content for a host VA page (KSM provider). */
    const mem::PageContent *guestContentAt(Vpn host_vpn) const;

    bool allGuestWorkDone() const;

  private:
    friend class VirtualSystem;
    void onGuestAlloc(Pfn gpa, unsigned order, bool alloc);
    void onGuestChunk(sim::Process &proc,
                      const workload::WorkChunk &chunk);

    std::string name_;
    VmOptions opts_;
    VirtualSystem &vs_;
    std::unique_ptr<sim::System> guest_;
    VmBackingWorkload *backing_ = nullptr; //!< owned by host process
    sim::Process *host_proc_ = nullptr;
    /** Host fault time already charged back to the guest vCPUs. */
    TimeNs charged_backing_fault_time_ = 0;
    /** Guest touches awaiting GVA->GPA translation (proc pid, vpn). */
    std::vector<std::pair<std::int32_t, Vpn>> pending_guest_touches_;
};

class VirtualSystem
{
  public:
    VirtualSystem(sim::SystemConfig host_cfg,
                  std::unique_ptr<policy::HugePagePolicy> host_pol);

    VirtualMachine &
    addVm(const std::string &name, VmOptions opts,
          std::unique_ptr<policy::HugePagePolicy> guest_pol);

    sim::System &host() { return host_; }
    std::vector<std::unique_ptr<VirtualMachine>> &vms()
    {
        return vms_;
    }

    /** Enable host-level KSM (zero + duplicate merging). */
    void enableHostKsm(double pages_per_sec = 50'000.0);
    ksm::KsmDaemon *hostKsm() { return ksm_.get(); }

    void tick();
    void run(TimeNs duration);
    /** Run until every guest's run-to-completion work finishes. */
    void runUntilGuestsDone(TimeNs limit);
    TimeNs now() const { return host_.now(); }

  private:
    sim::System host_;
    std::vector<std::unique_ptr<VirtualMachine>> vms_;
    std::unique_ptr<ksm::KsmDaemon> ksm_;
};

} // namespace hawksim::virt

#endif // HAWKSIM_VIRT_VM_HH
