#include "virt/vm.hh"

#include <algorithm>

#include "base/logging.hh"

namespace hawksim::virt {

namespace {

/** Decorator that mirrors guest access samples to the VM layer. */
class TapWorkload : public workload::Workload
{
  public:
    TapWorkload(std::unique_ptr<workload::Workload> inner,
                VirtualMachine *vm,
                void (VirtualMachine::*hook)(
                    sim::Process &, const workload::WorkChunk &))
        : inner_(std::move(inner)), vm_(vm), hook_(hook)
    {}

    std::string name() const override { return inner_->name(); }
    void init(sim::Process &proc) override { inner_->init(proc); }
    bool
    runsToCompletion() const override
    {
        return inner_->runsToCompletion();
    }

    void
    next(sim::Process &proc, TimeNs max_compute,
         workload::WorkChunk &chunk) override
    {
        inner_->next(proc, max_compute, chunk);
        (vm_->*hook_)(proc, chunk);
    }

  private:
    std::unique_ptr<workload::Workload> inner_;
    VirtualMachine *vm_;
    void (VirtualMachine::*hook_)(sim::Process &,
                                  const workload::WorkChunk &);
};

} // namespace

void
VmBackingWorkload::init(sim::Process &proc)
{
    base_ = proc.space().mmapAnon(guest_bytes_, name_);
}

void
VmBackingWorkload::pushFault(Vpn gpa_page,
                             const mem::PageContent &content)
{
    pending_faults_.emplace_back(gpa_page, content);
}

void
VmBackingWorkload::pushFree(Vpn gpa_page, std::uint64_t pages)
{
    pending_frees_.emplace_back(gpa_page, pages);
}

void
VmBackingWorkload::pushTouch(Vpn gpa_page)
{
    if (pending_touches_.size() < 16384)
        pending_touches_.push_back(gpa_page);
}

void
VmBackingWorkload::next(sim::Process &proc, TimeNs max_compute,
                        workload::WorkChunk &chunk)
{
    (void)proc;
    (void)max_compute;
    chunk.reset();
    const Vpn base_vpn = addrToVpn(base_);
    std::uint64_t drained = 0;
    while (!pending_faults_.empty() && drained < 4096) {
        auto [gpa, content] = pending_faults_.front();
        pending_faults_.pop_front();
        chunk.faults.push_back(base_vpn + gpa);
        if (!content.isZero())
            chunk.writes.emplace_back(base_vpn + gpa, content);
        drained++;
    }
    while (!pending_frees_.empty()) {
        auto [gpa, pages] = pending_frees_.front();
        pending_frees_.pop_front();
        chunk.frees.push_back(
            {base_ + gpa * kPageSize, pages * kPageSize});
    }
    chunk.touches = std::move(pending_touches_);
    pending_touches_.clear();
    for (Vpn &t : chunk.touches)
        t += base_vpn;
    // VM-exit handling cost for the drained events.
    chunk.compute = std::max<TimeNs>(
        usec(1), static_cast<TimeNs>(drained) * 200);
}

VirtualMachine::VirtualMachine(
    VirtualSystem &vs, const std::string &name, VmOptions opts,
    std::unique_ptr<policy::HugePagePolicy> guest_pol)
    : name_(name), opts_(opts), vs_(vs)
{
    // Host-side backing process (the EPT analogue).
    auto backing =
        std::make_unique<VmBackingWorkload>(name + "-mem",
                                            opts.guestMemBytes);
    backing_ = backing.get();
    host_proc_ = &vs.host().addProcess(name, std::move(backing));

    // Guest system with its own memory, policy and daemons.
    sim::SystemConfig gcfg;
    gcfg.memoryBytes = opts.guestMemBytes;
    gcfg.seed = opts.seed;
    gcfg.tickQuantum = vs.host().config().tickQuantum;
    gcfg.metricsPeriod = vs.host().config().metricsPeriod;
    gcfg.costs = vs.host().costs();
    guest_ = std::make_unique<sim::System>(gcfg);
    guest_->setPolicy(std::move(guest_pol));
    guest_->phys().setAllocObserver(
        [this](Pfn pfn, unsigned order, bool alloc) {
            onGuestAlloc(pfn, order, alloc);
        });
}

sim::Process &
VirtualMachine::addGuestProcess(
    const std::string &name, std::unique_ptr<workload::Workload> wl)
{
    auto tapped = std::make_unique<TapWorkload>(
        std::move(wl), this, &VirtualMachine::onGuestChunk);
    tlb::TlbConfig cfg = tlb::TlbConfig::haswellVirtualized();
    cfg.nestedWalkFactor = opts_.nestedFactorBase;
    return guest_->addProcess(name, std::move(tapped), cfg);
}

void
VirtualMachine::onGuestAlloc(Pfn gpa, unsigned order, bool alloc)
{
    if (alloc) {
        for (Pfn p = gpa; p < gpa + (1ull << order); p++) {
            backing_->pushFault(p, guest_->phys().frame(p).content);
        }
    } else if (opts_.balloon) {
        // Balloon driver: guest-freed memory returns to the host.
        backing_->pushFree(gpa, 1ull << order);
    }
}

void
VirtualMachine::onGuestChunk(sim::Process &proc,
                             const workload::WorkChunk &chunk)
{
    // Defer translation: the chunk's pages may not be mapped yet;
    // they will be by the time the next tick translates them.
    std::size_t budget = 512;
    for (Vpn vpn : chunk.touches) {
        if (budget-- == 0)
            break;
        pending_guest_touches_.emplace_back(proc.pid(), vpn);
    }
    for (const auto &s : chunk.sample) {
        if (budget-- == 0)
            break;
        pending_guest_touches_.emplace_back(proc.pid(), s.vpn);
    }
    for (Vpn vpn : chunk.faults) {
        if (budget-- == 0)
            break;
        pending_guest_touches_.emplace_back(proc.pid(), vpn);
    }
}

double
VirtualMachine::hostHugeFraction() const
{
    const auto &pt = host_proc_->space().pageTable();
    const std::uint64_t mapped = pt.mappedPages();
    if (mapped == 0)
        return 0.0;
    return static_cast<double>(pt.mappedHugePages() * kPagesPerHuge) /
           static_cast<double>(mapped);
}

void
VirtualMachine::tick()
{
    // Nested-walk amplification tracks the host's EPT page sizes.
    const double factor =
        opts_.nestedFactorBase -
        opts_.nestedFactorGain * hostHugeFraction();
    for (auto &proc : guest_->processes())
        proc->tlb().setNestedFactor(factor);

    // EPT-fault coupling: servicing the VM's backing faults (host
    // allocation, reclaim, swap writeback) stalls the faulting vCPU,
    // so new host fault time is charged back to the guest's runnable
    // processes.
    const TimeNs backing_ft = host_proc_->faultTime();
    if (backing_ft > charged_backing_fault_time_) {
        const TimeNs delta = backing_ft - charged_backing_fault_time_;
        charged_backing_fault_time_ = backing_ft;
        std::size_t runnable = 0;
        for (auto &proc : guest_->processes())
            runnable += proc->finished() ? 0 : 1;
        if (runnable > 0) {
            for (auto &proc : guest_->processes()) {
                if (!proc->finished()) {
                    proc->chargeExternal(
                        delta / static_cast<TimeNs>(runnable));
                }
            }
        }
    }

    // Translate last tick's guest touches (GVA -> GPA -> host VA).
    const Vpn host_base = addrToVpn(backing_->baseAddr());
    for (const auto &[pid, vpn] : pending_guest_touches_) {
        sim::Process *proc = guest_->findProcess(pid);
        if (!proc)
            continue;
        vm::Translation t = proc->space().pageTable().lookup(vpn);
        if (!t.present)
            continue;
        // Host-level major fault: the backing page was swapped out;
        // the guest vCPU stalls for the swap-in (the touches are a
        // sample, so a small amplification stands in for the
        // unsampled accesses that hit the same page).
        const TimeNs penalty = vs_.host().swapInIfNeeded(
            host_proc_->pid(), host_base + t.pfn);
        if (penalty > 0) {
            proc->chargeExternal(penalty * 4);
            backing_->pushFault(t.pfn,
                                guest_->phys().frame(t.pfn).content);
        }
        backing_->pushTouch(t.pfn);
    }
    pending_guest_touches_.clear();

    guest_->tick();
}

const mem::PageContent *
VirtualMachine::guestContentAt(Vpn host_vpn) const
{
    const Vpn base_vpn = addrToVpn(backing_->baseAddr());
    if (host_vpn < base_vpn)
        return nullptr;
    const Pfn gpa = host_vpn - base_vpn;
    if (gpa >= guest_->phys().totalFrames())
        return nullptr;
    return &guest_->phys().frame(gpa).content;
}

bool
VirtualMachine::allGuestWorkDone() const
{
    for (const auto &proc : guest_->processes()) {
        if (proc->workload().runsToCompletion() && !proc->finished())
            return false;
    }
    return true;
}

VirtualSystem::VirtualSystem(
    sim::SystemConfig host_cfg,
    std::unique_ptr<policy::HugePagePolicy> host_pol)
    : host_(host_cfg)
{
    host_.setPolicy(std::move(host_pol));
}

VirtualMachine &
VirtualSystem::addVm(const std::string &name, VmOptions opts,
                     std::unique_ptr<policy::HugePagePolicy> guest_pol)
{
    vms_.push_back(std::make_unique<VirtualMachine>(
        *this, name, opts, std::move(guest_pol)));
    if (ksm_)
        ksm_->trackProcess(vms_.back()->hostProcess().pid());
    return *vms_.back();
}

void
VirtualSystem::enableHostKsm(double pages_per_sec)
{
    ksm_ = std::make_unique<ksm::KsmDaemon>(pages_per_sec);
    for (auto &vm : vms_)
        ksm_->trackProcess(vm->hostProcess().pid());
    ksm_->setContentProvider(
        [this](sim::Process &proc, Vpn vpn) -> const mem::PageContent * {
            for (auto &vm : vms_) {
                if (vm->hostProcess().pid() == proc.pid())
                    return vm->guestContentAt(vpn);
            }
            return nullptr;
        });
}

void
VirtualSystem::tick()
{
    for (auto &vm : vms_)
        vm->tick();
    if (ksm_)
        ksm_->periodic(host_, host_.config().tickQuantum);
    host_.tick();
}

void
VirtualSystem::run(TimeNs duration)
{
    const TimeNs end = host_.now() + duration;
    while (host_.now() < end)
        tick();
}

void
VirtualSystem::runUntilGuestsDone(TimeNs limit)
{
    const TimeNs end = host_.now() + limit;
    while (host_.now() < end) {
        bool done = true;
        for (auto &vm : vms_) {
            if (!vm->allGuestWorkDone()) {
                done = false;
                break;
            }
        }
        if (done)
            return;
        tick();
    }
    HS_WARN("runUntilGuestsDone hit the time limit");
}

} // namespace hawksim::virt
