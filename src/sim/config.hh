/**
 * @file
 * Global cost parameters for the simulation engine.
 *
 * Fault-path costs are calibrated to the paper's own measurements
 * (Table 1, Haswell-EP @2.3GHz):
 *   - base-page fault: 3.5us total, ~25% of it zeroing;
 *   - huge-page fault: 465us total, ~97% of it zeroing;
 *   - with pre-zeroed memory: 2.65us and 13us respectively.
 * Promotion copies 2MB at roughly memcpy bandwidth; khugepaged-style
 * daemons are rate-limited the way the paper's timelines imply
 * (roughly tens of promotions per second system-wide).
 */

#ifndef HAWKSIM_SIM_CONFIG_HH
#define HAWKSIM_SIM_CONFIG_HH

#include <cstdint>

#include "base/types.hh"
#include "fault/fault.hh"
#include "mem/swap.hh"
#include "obs/introspect.hh"
#include "obs/trace.hh"
#include "snap/snap.hh"

namespace hawksim::sim {

struct CostParams
{
    /** Core frequency used to convert cycles to time. */
    double cpuGhz = 2.3;

    /** @name Page-fault path (Table 1 calibration) */
    /// @{
    /** Base-page fault cost excluding zeroing. */
    TimeNs faultBase4k = nsec(2650);
    /** Synchronous zeroing of one 4KB page. */
    TimeNs zero4k = nsec(850);
    /** Huge-page fault cost excluding zeroing. */
    TimeNs faultBase2m = usec(13);
    /** Synchronous zeroing of one 2MB page. */
    TimeNs zero2m = usec(452);
    /** COW break (copy + remap) for one base page. */
    TimeNs cowBreak = usec(3);
    /// @}

    /** @name Promotion / demotion / migration */
    /// @{
    /** Per-base-page copy cost during promotion (~10GB/s). */
    TimeNs promoteCopyPerPage = nsec(400);
    /** Fixed promotion cost (allocation, PT surgery, shootdown). */
    TimeNs promoteFixed = usec(20);
    TimeNs demoteFixed = usec(10);
    /** Per-page migration cost during compaction. */
    TimeNs migratePerPage = nsec(450);
    /// @}

    /** @name Daemon rate limits */
    /// @{
    /** khugepaged-equivalent promotion rate (regions per second). */
    double promotionsPerSec = 20.0;
    /** Async pre-zeroing thread rate limit (4KB pages per second). */
    double zeroDaemonPagesPerSec = 10'000.0;
    /** Bloat-recovery scan rate (bytes of scanning per second). */
    double bloatScanBytesPerSec = 400.0 * 1024 * 1024;
    /** KSM scan rate (pages per second). */
    double ksmPagesPerSec = 25'000.0;
    /**
     * kcompactd: background compaction that rebuilds order-9
     * contiguity when free memory is plentiful but fragmented
     * (regions defragmented per second; 0 disables).
     */
    double kcompactdRegionsPerSec = 25.0;
    /// @}

    /** @name Memory pressure watermarks (HawkEye §3.2) */
    /// @{
    double bloatHighWatermark = 0.85;
    double bloatLowWatermark = 0.70;
    /// @}

    Cycles
    nsToCycles(TimeNs ns) const
    {
        return static_cast<Cycles>(static_cast<double>(ns) * cpuGhz);
    }

    TimeNs
    cyclesToNs(Cycles c) const
    {
        return static_cast<TimeNs>(static_cast<double>(c) / cpuGhz);
    }
};

/** Top-level system configuration. */
struct SystemConfig
{
    /** Simulated physical memory size in bytes. */
    std::uint64_t memoryBytes = GiB(4);
    /** Simulation tick quantum. */
    TimeNs tickQuantum = msec(10);
    /** Boot memory starts pre-zeroed. */
    bool bootMemoryZeroed = true;
    /** Master seed for all stochastic behaviour. */
    std::uint64_t seed = 42;
    /** Metrics sampling period (0 disables). */
    TimeNs metricsPeriod = msec(100);
    /** Event tracing (off by default; cost accounting is always on). */
    obs::TraceConfig trace;
    /** Periodic introspection snapshots (off by default). */
    obs::InspectConfig inspect;
    /** Chaos fault injection + invariant audits (off by default). */
    fault::FaultConfig fault;
    /** Swap device geometry (capacity, latencies). */
    mem::SwapDevice::Config swap{};
    /** Checkpoint / restore / replay-to-tick (off by default). */
    snap::SnapConfig snap;
    CostParams costs;
};

} // namespace hawksim::sim

#endif // HAWKSIM_SIM_CONFIG_HH
