/**
 * @file
 * Named time-series recorder for experiments.
 *
 * Benches pull series like "p0.rss_pages" or "sys.free_frames" out of
 * the recorder after a run and print the paper's figures from them.
 *
 * Series names are interned: seriesId() resolves a name to a dense
 * handle once, and the per-sample record(SeriesId, ...) path is a
 * plain vector index — no string hashing or heap traffic per tick.
 * The string-keyed record() overload remains for one-off callers.
 */

#ifndef HAWKSIM_SIM_METRICS_HH
#define HAWKSIM_SIM_METRICS_HH

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/types.hh"

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::sim {

/** A discrete event worth listing in experiment output (OOM etc.). */
struct SimEvent
{
    TimeNs time;
    std::string what;
};

class Metrics
{
  public:
    /** Dense handle of an interned series name. */
    using SeriesId = std::uint32_t;

    /**
     * Intern @p name and return its stable handle. The first call
     * creates the (empty) series; later calls return the same id.
     */
    SeriesId
    seriesId(std::string_view name)
    {
        auto it = index_.find(name);
        if (it != index_.end())
            return it->second;
        const auto id = static_cast<SeriesId>(series_.size());
        series_.emplace_back(std::string(name));
        index_.emplace(series_.back().name(), id);
        return id;
    }

    /** Append a sample through a pre-resolved handle (hot path). */
    void
    record(SeriesId id, TimeNs t, double v)
    {
        HS_ASSERT(id < series_.size(), "bad series id ", id);
        series_[id].record(t, v);
    }

    /** Append a sample to the named series (created on first use). */
    void
    record(std::string_view series, TimeNs t, double v)
    {
        record(seriesId(series), t, v);
    }

    void
    event(TimeNs t, std::string what)
    {
        events_.push_back({t, std::move(what)});
    }

    /** Fetch a series; returns an empty one if never recorded. */
    const TimeSeries &
    series(std::string_view name) const
    {
        static const TimeSeries empty;
        auto it = index_.find(name);
        return it == index_.end() ? empty : series_[it->second];
    }

    /** Fetch an interned series by handle. */
    const TimeSeries &
    series(SeriesId id) const
    {
        HS_ASSERT(id < series_.size(), "bad series id ", id);
        return series_[id];
    }

    bool has(std::string_view name) const
    {
        return index_.find(name) != index_.end();
    }

    /** All series in interning (creation) order. */
    const std::vector<TimeSeries> &all() const { return series_; }

    /** Indices of all series, sorted by name (stable output order). */
    std::vector<SeriesId>
    sortedIds() const
    {
        std::vector<SeriesId> ids(series_.size());
        for (SeriesId i = 0; i < ids.size(); i++)
            ids[i] = i;
        std::sort(ids.begin(), ids.end(),
                  [this](SeriesId a, SeriesId b) {
                      return series_[a].name() < series_[b].name();
                  });
        return ids;
    }

    const std::vector<SimEvent> &events() const { return events_; }

    /**
     * Every series (in interning order, which load reproduces so
     * pre-resolved SeriesIds held by callers stay valid only if they
     * re-resolve) plus the event log.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

    /**
     * Export every series in long CSV form (series,time_ns,value) —
     * directly loadable by pandas/R for plotting the figures.
     * Values use shortest round-trip formatting (std::to_chars), so
     * parsing the CSV recovers every double bit-exactly; the default
     * ostream precision (6 significant digits) silently corrupted
     * large counters and ns-scale timestamps.
     */
    void
    writeCsv(std::ostream &os) const
    {
        os << "series,time_ns,value\n";
        char buf[64];
        for (SeriesId id : sortedIds()) {
            const TimeSeries &ts = series_[id];
            for (const auto &p : ts.points()) {
                const auto res = std::to_chars(
                    buf, buf + sizeof(buf), p.value);
                os << ts.name() << ',' << p.time << ',';
                os.write(buf, res.ptr - buf);
                os << '\n';
            }
        }
    }

  private:
    /** Heterogeneous string hashing so lookups take string_view. */
    struct NameHash
    {
        using is_transparent = void;
        std::size_t
        operator()(std::string_view s) const
        {
            return std::hash<std::string_view>{}(s);
        }
    };

    std::vector<TimeSeries> series_;
    /** Name -> handle (keys owned; series_ reallocates freely). */
    std::unordered_map<std::string, SeriesId, NameHash,
                       std::equal_to<>>
        index_;
    std::vector<SimEvent> events_;
};

} // namespace hawksim::sim

#endif // HAWKSIM_SIM_METRICS_HH
