/**
 * @file
 * Named time-series recorder for experiments.
 *
 * Benches pull series like "p0.rss_pages" or "sys.free_frames" out of
 * the recorder after a run and print the paper's figures from them.
 */

#ifndef HAWKSIM_SIM_METRICS_HH
#define HAWKSIM_SIM_METRICS_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace hawksim::sim {

/** A discrete event worth listing in experiment output (OOM etc.). */
struct SimEvent
{
    TimeNs time;
    std::string what;
};

class Metrics
{
  public:
    /** Append a sample to the named series (created on first use). */
    void
    record(const std::string &series, TimeNs t, double v)
    {
        auto it = series_.find(series);
        if (it == series_.end())
            it = series_.emplace(series, TimeSeries(series)).first;
        it->second.record(t, v);
    }

    void
    event(TimeNs t, std::string what)
    {
        events_.push_back({t, std::move(what)});
    }

    /** Fetch a series; returns an empty one if never recorded. */
    const TimeSeries &
    series(const std::string &name) const
    {
        static const TimeSeries empty;
        auto it = series_.find(name);
        return it == series_.end() ? empty : it->second;
    }

    bool has(const std::string &name) const
    {
        return series_.count(name) != 0;
    }

    const std::map<std::string, TimeSeries> &all() const
    {
        return series_;
    }
    const std::vector<SimEvent> &events() const { return events_; }

    /**
     * Export every series in long CSV form (series,time_ns,value) —
     * directly loadable by pandas/R for plotting the figures.
     */
    void
    writeCsv(std::ostream &os) const
    {
        os << "series,time_ns,value\n";
        for (const auto &[name, ts] : series_) {
            for (const auto &p : ts.points()) {
                os << name << ',' << p.time << ',' << p.value
                   << '\n';
            }
        }
    }

  private:
    std::map<std::string, TimeSeries> series_;
    std::vector<SimEvent> events_;
};

} // namespace hawksim::sim

#endif // HAWKSIM_SIM_METRICS_HH
