#include "sim/system.hh"

#include "base/logging.hh"
#include "base/page_key.hh"
#include "obs/vmstat.hh"

namespace hawksim::sim {

System::System(SystemConfig cfg)
    : cfg_(cfg), obs_{obs::Tracer(cfg.trace), obs::CostAccounting{}},
      phys_(cfg.memoryBytes, cfg.bootMemoryZeroed),
      compactor_(phys_), swap_(cfg.swap), rng_(cfg.seed),
      sid_free_frames_(metrics_.seriesId("sys.free_frames")),
      sid_used_fraction_(metrics_.seriesId("sys.used_fraction")),
      sid_fmfi9_(metrics_.seriesId("sys.fmfi9"))
{
    compactor_.setProbe(&obs_);
    if (cfg_.fault.injectionEnabled()) {
        fault_injector_ = std::make_unique<fault::FaultInjector>(
            cfg_.seed, cfg_.fault);
        fault_injector_->attachTrace(&obs_,
                                     [this] { return now_; });
        phys_.buddy().setFaultInjector(fault_injector_.get());
        compactor_.setFaultInjector(fault_injector_.get());
    }
    if (cfg_.inspect.enabled())
        vmstat_ = std::make_unique<obs::VmstatRecorder>(cfg_.inspect);
}

System::~System() = default;

std::vector<obs::Snapshot>
System::takeSnapshots()
{
    return vmstat_ ? vmstat_->take() : std::vector<obs::Snapshot>{};
}

void
System::setPolicy(std::unique_ptr<policy::HugePagePolicy> pol)
{
    HS_ASSERT(pol != nullptr, "null policy");
    policy_ = std::move(pol);
    policy_->attach(*this);
}

Process &
System::addProcess(const std::string &name,
                   std::unique_ptr<workload::Workload> wl)
{
    return addProcess(name, std::move(wl), tlb::TlbConfig::haswell());
}

Process &
System::addProcess(const std::string &name,
                   std::unique_ptr<workload::Workload> wl,
                   const tlb::TlbConfig &tlb_cfg)
{
    HS_ASSERT(policy_ != nullptr, "install a policy before processes");
    processes_.push_back(std::make_unique<Process>(
        next_pid_++, name, *this, std::move(wl), tlb_cfg));
    Process &proc = *processes_.back();
    std::string p = "p";
    p += std::to_string(proc.pid());
    proc_sids_.emplace(
        proc.pid(),
        ProcSeriesIds{metrics_.seriesId(p + ".rss_pages"),
                      metrics_.seriesId(p + ".huge_pages"),
                      metrics_.seriesId(p + ".mmu_overhead")});
    if (cfg_.fault.auditingEnabled())
        proc.tlb().setAuditLog(true);
    proc.start(now_);
    obs_.tracer.instant(obs::Cat::kProc, "process_start", proc.pid(),
                        now_);
    policy_->onProcessStart(*this, proc);
    return proc;
}

void
System::fragmentMemory(double fraction, double movable_fill)
{
    if (!fragmenter_)
        fragmenter_ = std::make_unique<mem::Fragmenter>(phys_);
    Rng frag_rng = rng_.fork();
    fragmenter_->fragment(fraction, frag_rng);
    if (movable_fill > 0.0)
        fragmenter_->fillMovable(movable_fill, frag_rng);
}

void
System::fragmentMemoryMovable(double fraction,
                              unsigned pages_per_region)
{
    if (!fragmenter_)
        fragmenter_ = std::make_unique<mem::Fragmenter>(phys_);
    Rng frag_rng = rng_.fork();
    fragmenter_->fragmentMovable(fraction, pages_per_region,
                                 frag_rng);
}

void
System::tick()
{
    HS_ASSERT(policy_ != nullptr, "no policy installed");
    // kcompactd: rebuild huge-page contiguity in the background when
    // free memory is plentiful but fragmented.
    if (cfg_.costs.kcompactdRegionsPerSec > 0.0) {
        kcompactd_budget_ += cfg_.costs.kcompactdRegionsPerSec *
                             static_cast<double>(cfg_.tickQuantum) /
                             1e9;
        while (kcompactd_budget_ >= 1.0) {
            kcompactd_budget_ -= 1.0;
            const double free_frac =
                static_cast<double>(phys_.freeFrames()) /
                static_cast<double>(phys_.totalFrames());
            if (free_frac < 0.20 ||
                phys_.buddy().fragIndex(kHugePageOrder) < 0.10) {
                break;
            }
            if (!compactor_
                     .compactOne(*this, 256, now_,
                                 cfg_.costs.migratePerPage)
                     .success) {
                break;
            }
        }
    }
    // OS background work (policy daemons are on their own cores).
    policy_->periodic(*this);
    // Application cores.
    for (auto &proc : processes_) {
        const bool was_finished = proc->finished();
        proc->tick(cfg_.tickQuantum);
        if (!was_finished && proc->finished()) {
            obs_.tracer.instant(obs::Cat::kProc, "process_exit",
                                proc->pid(), now_,
                                {{"oom", proc->oomKilled() ? 1 : 0}});
            releaseProcessMemory(*proc);
            dropSwapSlots(proc->pid());
            policy_->onProcessExit(*this, *proc);
        }
    }
    now_ += cfg_.tickQuantum;
    if (cfg_.metricsPeriod > 0 && now_ >= next_metrics_) {
        recordMetrics();
        next_metrics_ = now_ + cfg_.metricsPeriod;
    }
    tick_no_++;
    if (cfg_.fault.auditingEnabled()) {
        bool want = cfg_.fault.auditEvery > 0 &&
                    tick_no_ % cfg_.fault.auditEvery == 0;
        if (cfg_.fault.auditOnFault && fault_injector_ &&
            fault_injector_->takePendingAudit()) {
            want = true;
        }
        if (want)
            runAuditOrDie("periodic");
    }
    // Sample after the audit so every snapshot describes a state
    // that passed (or would pass) the invariant checks.
    if (vmstat_)
        vmstat_->maybeSample(*this, tick_no_);
}

void
System::run(TimeNs duration)
{
    const TimeNs end = now_ + duration;
    while (now_ < end)
        tick();
    if (cfg_.fault.auditingEnabled())
        runAuditOrDie("end-of-run");
}

void
System::runUntilAllDone(TimeNs limit)
{
    const TimeNs end = now_ + limit;
    bool timed_out = true;
    while (now_ < end) {
        bool all_done = true;
        for (auto &proc : processes_) {
            if (proc->workload().runsToCompletion() &&
                !proc->finished()) {
                all_done = false;
                break;
            }
        }
        if (all_done) {
            timed_out = false;
            break;
        }
        tick();
    }
    if (timed_out)
        HS_WARN("runUntilAllDone hit the time limit");
    if (cfg_.fault.auditingEnabled())
        runAuditOrDie("end-of-run");
}

Process *
System::findProcess(std::int32_t pid)
{
    for (auto &proc : processes_) {
        if (proc->pid() == pid)
            return proc.get();
    }
    return nullptr;
}

std::optional<mem::BuddyBlock>
System::allocHugeBlock(std::int32_t pid, mem::ZeroPref pref,
                       bool allow_compact, TimeNs *cost,
                       std::uint64_t max_migrate)
{
    auto blk = phys_.allocBlock(kHugePageOrder, pid, pref);
    if (blk || !allow_compact)
        return blk;
    // Try to manufacture contiguity; bounded effort.
    for (int attempt = 0; attempt < 4 && !blk; attempt++) {
        mem::CompactionResult res =
            compactor_.compactOne(*this, max_migrate);
        if (cost) {
            *cost += static_cast<TimeNs>(res.pagesMigrated) *
                     costs().migratePerPage;
        }
        if (!res.success)
            break;
        blk = phys_.allocBlock(kHugePageOrder, pid, pref);
    }
    return blk;
}

TimeNs
System::swapInIfNeeded(std::int32_t pid, Vpn vpn)
{
    if (swapped_.empty())
        return 0;
    auto it = swapped_.find(pageKey(pid, vpn));
    if (it == swapped_.end())
        return 0;
    TimeNs latency = 0;
    // Chaos: a failed device read is retried; the page still comes
    // back, the fault just pays for the extra attempt.
    if (fault::faultAt(fault_injector_.get(), fault::Site::kSwapIn))
        latency += swap_.config().readLatency;
    latency += swap_.swapIn(1);
    // Content restoration happens when the caller remaps + rewrites;
    // the saved content is dropped with the mark.
    swapped_.erase(it);
    swapped_count_--;
    obs_.cost.count(obs::Counter::kSwapIns);
    obs_.tracer.complete(obs::Cat::kReclaim, "swap_in", pid, now_,
                         latency,
                         {{"vpn", static_cast<std::int64_t>(vpn)}});
    return latency;
}

std::uint64_t
System::reclaimPages(std::uint64_t pages, TimeNs *cost)
{
    std::uint64_t freed = 0;
    if (processes_.empty())
        return 0;
    obs::TraceScope scope(obs_.tracer, obs::Cat::kReclaim, "reclaim",
                          -1, now_);
    TimeNs device_ns = 0;
    bool swap_full = false;
    // Second-chance clock sweep, round-robin across processes.
    std::size_t stale_procs = 0;
    while (freed < pages && !swap_full &&
           stale_procs < processes_.size() * 3) {
        Process &proc =
            *processes_[reclaim_rr_ % processes_.size()];
        reclaim_rr_++;
        if (proc.finished()) {
            stale_procs++;
            continue;
        }
        auto &space = proc.space();
        auto &pt = space.pageTable();
        bool evicted_any = false;
        // Sweep up to a bounded number of regions per visit.
        std::uint64_t &hand = reclaim_hand_[proc.pid()];
        std::vector<std::uint64_t> regions;
        space.forEachEligibleRegion(
            [&](std::uint64_t r) { regions.push_back(r); });
        if (regions.empty()) {
            stale_procs++;
            continue;
        }
        // Two passes over the same window: the first clears accessed
        // bits (second chance), the second evicts what stayed cold.
        const std::size_t window =
            std::min<std::size_t>(regions.size(), 64);
        std::uint64_t h = hand;
        for (int pass = 0; pass < 2 && freed < pages && !swap_full;
             pass++) {
            h = hand;
            for (std::size_t step = 0;
                 step < window && freed < pages && !swap_full;
                 step++) {
                const std::uint64_t region =
                    regions[h % regions.size()];
                h++;
                if (pt.population(region) == 0)
                    continue;
                if (pt.isHuge(region)) {
                    space.demoteRegion(region); // split THP
                    obs_.cost.count(obs::Counter::kSplits);
                    obs_.tracer.instant(
                        obs::Cat::kDemote, "split", proc.pid(), now_,
                        {{"region",
                          static_cast<std::int64_t>(region)}});
                }
                const Vpn base = region << 9;
                for (unsigned i = 0;
                     i < kPagesPerHuge && freed < pages; i++) {
                    const Vpn vpn = base + i;
                    vm::Translation t = pt.lookup(vpn);
                    if (!t.present || t.entry.zeroPage())
                        continue;
                    if (t.entry.accessed()) {
                        vm::Pte *e = pt.leafEntry(vpn);
                        if (e)
                            e->clearFlag(vm::kPteAccessed);
                        continue;
                    }
                    const mem::Frame &f = phys_.frame(t.pfn);
                    if (f.isShared() || f.mapCount != 1)
                        continue; // KSM pages are not swap targets
                    // Chaos: a failed device write leaves the page
                    // resident; the sweep moves on.
                    if (fault::faultAt(fault_injector_.get(),
                                       fault::Site::kSwapOut)) {
                        continue;
                    }
                    // Write the slot *before* unmapping: a full
                    // device must not free the page, or the count
                    // returned to the caller would be a lie (the
                    // old optimistic-count bug).
                    std::uint64_t wrote = 0;
                    const TimeNs write_ns = swap_.swapOut(1, &wrote);
                    if (wrote == 0) {
                        swap_full = true;
                        break;
                    }
                    device_ns += write_ns;
                    swapped_[pageKey(proc.pid(), vpn)] = f.content;
                    swapped_count_++;
                    space.unmapAndFreeBase(vpn);
                    freed++;
                    evicted_any = true;
                }
            }
        }
        hand = h;
        if (!evicted_any)
            stale_procs++;
        else
            stale_procs = 0;
    }
    if (cost)
        *cost += device_ns;
    if ((swap_full || freed < pages) && fault_injector_)
        fault_injector_->degradation().reclaimShortfalls++;
    obs_.cost.count(obs::Counter::kReclaimedPages, freed);
    obs_.cost.charge(obs::Subsys::kReclaim, device_ns);
    scope.arg("requested", static_cast<std::int64_t>(pages));
    scope.arg("freed", static_cast<std::int64_t>(freed));
    if (swap_full)
        scope.arg("swap_full", 1);
    scope.dur(device_ns);
    return freed;
}

void
System::pageMoved(Pfn from, Pfn to)
{
    (void)from;
    const mem::Frame &f = phys_.frame(to);
    if (f.ownerPid < 0)
        return; // kernel-internal page: no page table to fix
    Process *proc = findProcess(f.ownerPid);
    if (!proc)
        return;
    proc->space().pageTable().remapBase(f.rmapVpn, to);
}

void
System::recordMetrics()
{
    metrics_.record(sid_free_frames_, now_,
                    static_cast<double>(phys_.freeFrames()));
    metrics_.record(sid_used_fraction_, now_, phys_.usedFraction());
    metrics_.record(sid_fmfi9_, now_,
                    phys_.buddy().fragIndex(kHugePageOrder));
    for (auto &proc : processes_) {
        if (proc->finished())
            continue;
        const ProcSeriesIds &sids = proc_sids_.at(proc->pid());
        metrics_.record(sids.rss, now_,
                        static_cast<double>(proc->space().rssPages()));
        metrics_.record(
            sids.huge, now_,
            static_cast<double>(
                proc->space().pageTable().mappedHugePages()));
        metrics_.record(sids.mmu, now_,
                        proc->windowMmuOverheadPct());
    }
}

void
System::releaseProcessMemory(Process &proc)
{
    auto &space = proc.space();
    std::vector<Addr> starts;
    for (const auto &[start, vma] : space.vmas())
        starts.push_back(start);
    for (Addr s : starts)
        space.munmap(s);
}

void
System::dropSwapSlots(std::int32_t pid)
{
    if (swapped_.empty())
        return;
    std::uint64_t dropped = 0;
    for (auto it = swapped_.begin(); it != swapped_.end();) {
        if (static_cast<std::int32_t>(it->first >>
                                      kPageKeyIndexBits) == pid) {
            it = swapped_.erase(it);
            dropped++;
        } else {
            ++it;
        }
    }
    swapped_count_ -= dropped;
    swap_.discard(dropped);
}

fault::AuditReport
System::auditNow()
{
    return auditor_.audit(*this);
}

void
System::runAuditOrDie(const char *why)
{
    const fault::AuditReport rep = auditNow();
    if (!rep.ok()) {
        HS_PANIC("invariant audit failed (", why, ", tick ", tick_no_,
                 ", ", rep.violations.size(), " violations):\n",
                 rep.summary());
    }
}

std::int32_t
System::oomKillVictim(std::int32_t requester)
{
    Process *victim = nullptr;
    for (auto &proc : processes_) {
        if (proc->finished())
            continue;
        if (!victim ||
            proc->space().rssPages() > victim->space().rssPages()) {
            victim = proc.get();
        }
    }
    if (victim == nullptr)
        return -1;
    if (victim->pid() == requester) {
        // The faulting process is itself the largest consumer; the
        // caller falls through to the historical self-OOM path.
        return victim->pid();
    }
    // Do the full exit plumbing here: the tick loop's exit-transition
    // check may already be past the victim this tick.
    victim->killedByOom(now_);
    oom_kills_++;
    if (fault_injector_)
        fault_injector_->degradation().oomKills++;
    metrics_.event(now_, victim->name() +
                             ": killed by OOM killer (largest RSS)");
    obs_.tracer.instant(obs::Cat::kProc, "process_exit",
                        victim->pid(), now_, {{"oom", 1}});
    releaseProcessMemory(*victim);
    dropSwapSlots(victim->pid());
    policy_->onProcessExit(*this, *victim);
    return victim->pid();
}

} // namespace hawksim::sim
