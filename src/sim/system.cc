#include "sim/system.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "base/page_key.hh"
#include "obs/vmstat.hh"
#include "snap/state.hh"

namespace hawksim::sim {

System::System(SystemConfig cfg)
    : cfg_(cfg), obs_{obs::Tracer(cfg.trace), obs::CostAccounting{}},
      phys_(cfg.memoryBytes, cfg.bootMemoryZeroed),
      compactor_(phys_), swap_(cfg.swap), rng_(cfg.seed),
      sid_free_frames_(metrics_.seriesId("sys.free_frames")),
      sid_used_fraction_(metrics_.seriesId("sys.used_fraction")),
      sid_fmfi9_(metrics_.seriesId("sys.fmfi9"))
{
    compactor_.setProbe(&obs_);
    if (cfg_.fault.injectionEnabled()) {
        fault_injector_ = std::make_unique<fault::FaultInjector>(
            cfg_.seed, cfg_.fault);
        fault_injector_->attachTrace(&obs_,
                                     [this] { return now_; });
        phys_.buddy().setFaultInjector(fault_injector_.get());
        compactor_.setFaultInjector(fault_injector_.get());
    }
    if (cfg_.inspect.enabled())
        vmstat_ = std::make_unique<obs::VmstatRecorder>(cfg_.inspect);
    restore_pending_ = cfg_.snap.restoring();
}

System::~System() = default;

std::vector<obs::Snapshot>
System::takeSnapshots()
{
    return vmstat_ ? vmstat_->take() : std::vector<obs::Snapshot>{};
}

void
System::setPolicy(std::unique_ptr<policy::HugePagePolicy> pol)
{
    HS_ASSERT(pol != nullptr, "null policy");
    policy_ = std::move(pol);
    policy_->attach(*this);
}

Process &
System::addProcess(const std::string &name,
                   std::unique_ptr<workload::Workload> wl)
{
    return addProcess(name, std::move(wl), tlb::TlbConfig::haswell());
}

Process &
System::addProcess(const std::string &name,
                   std::unique_ptr<workload::Workload> wl,
                   const tlb::TlbConfig &tlb_cfg)
{
    HS_ASSERT(policy_ != nullptr, "install a policy before processes");
    processes_.push_back(std::make_unique<Process>(
        next_pid_++, name, *this, std::move(wl), tlb_cfg));
    Process &proc = *processes_.back();
    std::string p = "p";
    p += std::to_string(proc.pid());
    proc_sids_.emplace(
        proc.pid(),
        ProcSeriesIds{metrics_.seriesId(p + ".rss_pages"),
                      metrics_.seriesId(p + ".huge_pages"),
                      metrics_.seriesId(p + ".mmu_overhead")});
    if (cfg_.fault.auditingEnabled())
        proc.tlb().setAuditLog(true);
    proc.start(now_);
    obs_.tracer.instant(obs::Cat::kProc, "process_start", proc.pid(),
                        now_);
    policy_->onProcessStart(*this, proc);
    return proc;
}

void
System::fragmentMemory(double fraction, double movable_fill)
{
    if (!fragmenter_)
        fragmenter_ = std::make_unique<mem::Fragmenter>(phys_);
    Rng frag_rng = rng_.fork();
    fragmenter_->fragment(fraction, frag_rng);
    if (movable_fill > 0.0)
        fragmenter_->fillMovable(movable_fill, frag_rng);
}

void
System::fragmentMemoryMovable(double fraction,
                              unsigned pages_per_region)
{
    if (!fragmenter_)
        fragmenter_ = std::make_unique<mem::Fragmenter>(phys_);
    Rng frag_rng = rng_.fork();
    fragmenter_->fragmentMovable(fraction, pages_per_region,
                                 frag_rng);
}

void
System::tick()
{
    HS_ASSERT(policy_ != nullptr, "no policy installed");
    if (cfg_.snap.any())
        snapAtTickStart();
    // kcompactd: rebuild huge-page contiguity in the background when
    // free memory is plentiful but fragmented.
    if (cfg_.costs.kcompactdRegionsPerSec > 0.0) {
        kcompactd_budget_ += cfg_.costs.kcompactdRegionsPerSec *
                             static_cast<double>(cfg_.tickQuantum) /
                             1e9;
        while (kcompactd_budget_ >= 1.0) {
            kcompactd_budget_ -= 1.0;
            const double free_frac =
                static_cast<double>(phys_.freeFrames()) /
                static_cast<double>(phys_.totalFrames());
            if (free_frac < 0.20 ||
                phys_.buddy().fragIndex(kHugePageOrder) < 0.10) {
                break;
            }
            if (!compactor_
                     .compactOne(*this, 256, now_,
                                 cfg_.costs.migratePerPage)
                     .success) {
                break;
            }
        }
    }
    // OS background work (policy daemons are on their own cores).
    policy_->periodic(*this);
    // Application cores.
    for (auto &proc : processes_) {
        const bool was_finished = proc->finished();
        proc->tick(cfg_.tickQuantum);
        if (!was_finished && proc->finished()) {
            obs_.tracer.instant(obs::Cat::kProc, "process_exit",
                                proc->pid(), now_,
                                {{"oom", proc->oomKilled() ? 1 : 0}});
            releaseProcessMemory(*proc);
            dropSwapSlots(proc->pid());
            policy_->onProcessExit(*this, *proc);
        }
    }
    now_ += cfg_.tickQuantum;
    if (cfg_.metricsPeriod > 0 && now_ >= next_metrics_) {
        recordMetrics();
        next_metrics_ = now_ + cfg_.metricsPeriod;
    }
    tick_no_++;
    if (cfg_.fault.auditingEnabled()) {
        bool want = cfg_.fault.auditEvery > 0 &&
                    tick_no_ % cfg_.fault.auditEvery == 0;
        if (cfg_.fault.auditOnFault && fault_injector_ &&
            fault_injector_->takePendingAudit()) {
            want = true;
        }
        if (want)
            runAuditOrDie("periodic");
    }
    // Sample after the audit so every snapshot describes a state
    // that passed (or would pass) the invariant checks.
    if (vmstat_)
        vmstat_->maybeSample(*this, tick_no_);
}

void
System::run(TimeNs duration)
{
    const TimeNs end = now_ + duration;
    while (now_ < end) {
        if (replayLimitReached())
            break;
        tick();
    }
    if (cfg_.fault.auditingEnabled())
        runAuditOrDie("end-of-run");
}

void
System::runUntilAllDone(TimeNs limit)
{
    const TimeNs end = now_ + limit;
    bool timed_out = true;
    while (now_ < end) {
        if (replayLimitReached()) {
            timed_out = false;
            break;
        }
        bool all_done = true;
        for (auto &proc : processes_) {
            if (proc->workload().runsToCompletion() &&
                !proc->finished()) {
                all_done = false;
                break;
            }
        }
        if (all_done) {
            timed_out = false;
            break;
        }
        tick();
    }
    if (timed_out)
        HS_WARN("runUntilAllDone hit the time limit");
    if (cfg_.fault.auditingEnabled())
        runAuditOrDie("end-of-run");
}

Process *
System::findProcess(std::int32_t pid)
{
    for (auto &proc : processes_) {
        if (proc->pid() == pid)
            return proc.get();
    }
    return nullptr;
}

std::optional<mem::BuddyBlock>
System::allocHugeBlock(std::int32_t pid, mem::ZeroPref pref,
                       bool allow_compact, TimeNs *cost,
                       std::uint64_t max_migrate)
{
    auto blk = phys_.allocBlock(kHugePageOrder, pid, pref);
    if (blk || !allow_compact)
        return blk;
    // Try to manufacture contiguity; bounded effort.
    for (int attempt = 0; attempt < 4 && !blk; attempt++) {
        mem::CompactionResult res =
            compactor_.compactOne(*this, max_migrate);
        if (cost) {
            *cost += static_cast<TimeNs>(res.pagesMigrated) *
                     costs().migratePerPage;
        }
        if (!res.success)
            break;
        blk = phys_.allocBlock(kHugePageOrder, pid, pref);
    }
    return blk;
}

TimeNs
System::swapInIfNeeded(std::int32_t pid, Vpn vpn)
{
    if (swapped_.empty())
        return 0;
    auto it = swapped_.find(pageKey(pid, vpn));
    if (it == swapped_.end())
        return 0;
    TimeNs latency = 0;
    // Chaos: a failed device read is retried; the page still comes
    // back, the fault just pays for the extra attempt.
    if (fault::faultAt(fault_injector_.get(), fault::Site::kSwapIn))
        latency += swap_.config().readLatency;
    latency += swap_.swapIn(1);
    // Content restoration happens when the caller remaps + rewrites;
    // the saved content is dropped with the mark.
    swapped_.erase(it);
    swapped_count_--;
    obs_.cost.count(obs::Counter::kSwapIns);
    obs_.tracer.complete(obs::Cat::kReclaim, "swap_in", pid, now_,
                         latency,
                         {{"vpn", static_cast<std::int64_t>(vpn)}});
    return latency;
}

std::uint64_t
System::reclaimPages(std::uint64_t pages, TimeNs *cost)
{
    std::uint64_t freed = 0;
    if (processes_.empty())
        return 0;
    obs::TraceScope scope(obs_.tracer, obs::Cat::kReclaim, "reclaim",
                          -1, now_);
    TimeNs device_ns = 0;
    bool swap_full = false;
    // Second-chance clock sweep, round-robin across processes.
    std::size_t stale_procs = 0;
    while (freed < pages && !swap_full &&
           stale_procs < processes_.size() * 3) {
        Process &proc =
            *processes_[reclaim_rr_ % processes_.size()];
        reclaim_rr_++;
        if (proc.finished()) {
            stale_procs++;
            continue;
        }
        auto &space = proc.space();
        auto &pt = space.pageTable();
        bool evicted_any = false;
        // Sweep up to a bounded number of regions per visit.
        std::uint64_t &hand = reclaim_hand_[proc.pid()];
        std::vector<std::uint64_t> regions;
        space.forEachEligibleRegion(
            [&](std::uint64_t r) { regions.push_back(r); });
        if (regions.empty()) {
            stale_procs++;
            continue;
        }
        // Two passes over the same window: the first clears accessed
        // bits (second chance), the second evicts what stayed cold.
        const std::size_t window =
            std::min<std::size_t>(regions.size(), 64);
        std::uint64_t h = hand;
        for (int pass = 0; pass < 2 && freed < pages && !swap_full;
             pass++) {
            h = hand;
            for (std::size_t step = 0;
                 step < window && freed < pages && !swap_full;
                 step++) {
                const std::uint64_t region =
                    regions[h % regions.size()];
                h++;
                if (pt.population(region) == 0)
                    continue;
                if (pt.isHuge(region)) {
                    space.demoteRegion(region); // split THP
                    obs_.cost.count(obs::Counter::kSplits);
                    obs_.tracer.instant(
                        obs::Cat::kDemote, "split", proc.pid(), now_,
                        {{"region",
                          static_cast<std::int64_t>(region)}});
                }
                const Vpn base = region << 9;
                for (unsigned i = 0;
                     i < kPagesPerHuge && freed < pages; i++) {
                    const Vpn vpn = base + i;
                    vm::Translation t = pt.lookup(vpn);
                    if (!t.present || t.entry.zeroPage())
                        continue;
                    if (t.entry.accessed()) {
                        vm::Pte *e = pt.leafEntry(vpn);
                        if (e)
                            e->clearFlag(vm::kPteAccessed);
                        continue;
                    }
                    const mem::ConstFrameRef f = phys_.frame(t.pfn);
                    if (f.isShared() || f.mapCount != 1)
                        continue; // KSM pages are not swap targets
                    // Chaos: a failed device write leaves the page
                    // resident; the sweep moves on.
                    if (fault::faultAt(fault_injector_.get(),
                                       fault::Site::kSwapOut)) {
                        continue;
                    }
                    // Write the slot *before* unmapping: a full
                    // device must not free the page, or the count
                    // returned to the caller would be a lie (the
                    // old optimistic-count bug).
                    std::uint64_t wrote = 0;
                    const TimeNs write_ns = swap_.swapOut(1, &wrote);
                    if (wrote == 0) {
                        swap_full = true;
                        break;
                    }
                    device_ns += write_ns;
                    swapped_[pageKey(proc.pid(), vpn)] = f.content;
                    swapped_count_++;
                    space.unmapAndFreeBase(vpn);
                    freed++;
                    evicted_any = true;
                }
            }
        }
        hand = h;
        if (!evicted_any)
            stale_procs++;
        else
            stale_procs = 0;
    }
    if (cost)
        *cost += device_ns;
    if ((swap_full || freed < pages) && fault_injector_)
        fault_injector_->degradation().reclaimShortfalls++;
    obs_.cost.count(obs::Counter::kReclaimedPages, freed);
    obs_.cost.charge(obs::Subsys::kReclaim, device_ns);
    scope.arg("requested", static_cast<std::int64_t>(pages));
    scope.arg("freed", static_cast<std::int64_t>(freed));
    if (swap_full)
        scope.arg("swap_full", 1);
    scope.dur(device_ns);
    return freed;
}

void
System::pageMoved(Pfn from, Pfn to)
{
    (void)from;
    const mem::ConstFrameRef f = phys_.frame(to);
    if (f.ownerPid < 0)
        return; // kernel-internal page: no page table to fix
    Process *proc = findProcess(f.ownerPid);
    if (!proc)
        return;
    proc->space().pageTable().remapBase(f.rmapVpn, to);
}

void
System::recordMetrics()
{
    metrics_.record(sid_free_frames_, now_,
                    static_cast<double>(phys_.freeFrames()));
    metrics_.record(sid_used_fraction_, now_, phys_.usedFraction());
    metrics_.record(sid_fmfi9_, now_,
                    phys_.buddy().fragIndex(kHugePageOrder));
    for (auto &proc : processes_) {
        if (proc->finished())
            continue;
        const ProcSeriesIds &sids = proc_sids_.at(proc->pid());
        metrics_.record(sids.rss, now_,
                        static_cast<double>(proc->space().rssPages()));
        metrics_.record(
            sids.huge, now_,
            static_cast<double>(
                proc->space().pageTable().mappedHugePages()));
        metrics_.record(sids.mmu, now_,
                        proc->windowMmuOverheadPct());
    }
}

void
System::releaseProcessMemory(Process &proc)
{
    auto &space = proc.space();
    std::vector<Addr> starts;
    for (const auto &[start, vma] : space.vmas())
        starts.push_back(start);
    for (Addr s : starts)
        space.munmap(s);
}

void
System::dropSwapSlots(std::int32_t pid)
{
    if (swapped_.empty())
        return;
    std::uint64_t dropped = 0;
    for (auto it = swapped_.begin(); it != swapped_.end();) {
        if (static_cast<std::int32_t>(it->first >>
                                      kPageKeyIndexBits) == pid) {
            it = swapped_.erase(it);
            dropped++;
        } else {
            ++it;
        }
    }
    swapped_count_ -= dropped;
    swap_.discard(dropped);
}

fault::AuditReport
System::auditNow()
{
    return auditor_.audit(*this);
}

void
System::runAuditOrDie(const char *why)
{
    const fault::AuditReport rep = auditNow();
    if (!rep.ok()) {
        HS_PANIC("invariant audit failed (", why, ", tick ", tick_no_,
                 ", ", rep.violations.size(), " violations):\n",
                 rep.summary());
    }
}

std::int32_t
System::oomKillVictim(std::int32_t requester)
{
    Process *victim = nullptr;
    for (auto &proc : processes_) {
        if (proc->finished())
            continue;
        if (!victim ||
            proc->space().rssPages() > victim->space().rssPages()) {
            victim = proc.get();
        }
    }
    if (victim == nullptr)
        return -1;
    if (victim->pid() == requester) {
        // The faulting process is itself the largest consumer; the
        // caller falls through to the historical self-OOM path.
        return victim->pid();
    }
    // Do the full exit plumbing here: the tick loop's exit-transition
    // check may already be past the victim this tick.
    victim->killedByOom(now_);
    oom_kills_++;
    if (fault_injector_)
        fault_injector_->degradation().oomKills++;
    metrics_.event(now_, victim->name() +
                             ": killed by OOM killer (largest RSS)");
    obs_.tracer.instant(obs::Cat::kProc, "process_exit",
                        victim->pid(), now_, {{"oom", 1}});
    releaseProcessMemory(*victim);
    dropSwapSlots(victim->pid());
    policy_->onProcessExit(*this, *victim);
    return victim->pid();
}

void
System::snapAtTickStart()
{
    // Restore applies first: a restored tick N then re-emits the due
    // checkpoint for N, which exercises save -> load -> save on the
    // exact same file (byte-identical by the roundtrip invariant).
    if (restore_pending_) {
        restore_pending_ = false;
        restoreFromFile(cfg_.snap.restorePath);
    }
    if (cfg_.snap.checkpointing() && tick_no_ > 0 &&
        tick_no_ % cfg_.snap.checkpointEvery == 0) {
        saveToFile(cfg_.snap.checkpointPrefix + "-tick" +
                   std::to_string(tick_no_) + ".snap");
    }
}

void
System::saveState(snap::Writer &w)
{
    HS_ASSERT(policy_ != nullptr, "checkpoint before setPolicy");
    // CONF: the rebuild fingerprint. Restore requires the same
    // machine and process list; the policy name decides whether POLI
    // applies or is skipped (fork-where-legal).
    w.beginSection("CONF");
    w.u64(cfg_.memoryBytes);
    w.i64(cfg_.tickQuantum);
    w.u64(cfg_.seed);
    w.str(policy_->name());
    w.u64(processes_.size());
    for (const auto &proc : processes_) {
        w.str(proc->name());
        w.str(proc->workload().name());
    }
    w.endSection();

    w.beginSection("SYS ");
    snap::saveRng(w, rng_);
    w.i64(now_);
    w.i64(next_metrics_);
    w.i32(next_pid_);
    w.b(swap_enabled_);
    w.u64(tick_no_);
    w.u64(oom_kills_);
    w.u64(reclaim_rr_);
    w.f64(kcompactd_budget_);
    w.u64(swapped_count_);
    std::vector<std::uint64_t> skeys;
    skeys.reserve(swapped_.size());
    for (const auto &[k, content] : swapped_)
        skeys.push_back(k);
    std::sort(skeys.begin(), skeys.end());
    w.u64(skeys.size());
    for (std::uint64_t k : skeys) {
        w.u64(k);
        swapped_.at(k).save(w);
    }
    std::vector<std::int32_t> hpids;
    hpids.reserve(reclaim_hand_.size());
    for (const auto &[pid, hand] : reclaim_hand_)
        hpids.push_back(pid);
    std::sort(hpids.begin(), hpids.end());
    w.u64(hpids.size());
    for (std::int32_t pid : hpids) {
        w.i32(pid);
        w.u64(reclaim_hand_.at(pid));
    }
    w.endSection();

    w.beginSection("PHYS");
    phys_.save(w);
    w.endSection();

    w.beginSection("BUDY");
    phys_.buddy().save(w);
    w.endSection();

    w.beginSection("SWAP");
    swap_.save(w);
    w.endSection();

    w.beginSection("CMPT");
    compactor_.save(w);
    w.endSection();

    w.beginSection("FRAG");
    w.b(fragmenter_ != nullptr);
    if (fragmenter_)
        fragmenter_->save(w);
    w.endSection();

    for (const auto &proc : processes_) {
        w.beginSection("PROC");
        w.i32(proc->pid());
        w.str(proc->name());
        proc->save(w);
        w.endSection();
    }

    w.beginSection("POLI");
    policy_->save(w);
    w.endSection();

    if (fault_injector_) {
        w.beginSection("FALT");
        fault_injector_->save(w);
        w.endSection();
    }

    w.beginSection("METR");
    metrics_.save(w);
    w.endSection();

    w.beginSection("OBS ");
    obs_.tracer.save(w);
    obs_.cost.save(w);
    w.endSection();

    if (vmstat_) {
        w.beginSection("VMST");
        vmstat_->save(w);
        w.endSection();
    }
}

bool
System::loadState(snap::Reader &r)
{
    HS_ASSERT(policy_ != nullptr, "restore before setPolicy");
    bool skipped = false;

    r.openSection("CONF");
    const std::uint64_t mem_bytes = r.u64();
    HS_ASSERT(mem_bytes == cfg_.memoryBytes,
              "snapshot machine has ", mem_bytes,
              " bytes of memory, this one has ", cfg_.memoryBytes);
    const TimeNs quantum = r.i64();
    HS_ASSERT(quantum == cfg_.tickQuantum,
              "snapshot tick quantum ", quantum, " != ",
              cfg_.tickQuantum);
    // The seed may legally differ on a fork; every Rng stream is
    // restored explicitly, so it only matters for state the rebuild
    // derives from it (e.g. fault-injector hash bases).
    (void)r.u64();
    const std::string saved_policy = r.str();
    const std::uint64_t nproc = r.u64();
    HS_ASSERT(nproc == processes_.size(), "snapshot has ", nproc,
              " processes, this system has ", processes_.size());
    for (const auto &proc : processes_) {
        const std::string pname = r.str();
        HS_ASSERT(pname == proc->name(), "snapshot process \"", pname,
                  "\" != rebuilt \"", proc->name(), "\"");
        const std::string wname = r.str();
        HS_ASSERT(wname == proc->workload().name(),
                  "snapshot workload \"", wname, "\" != rebuilt \"",
                  proc->workload().name(), "\"");
    }
    r.endSection();

    r.openSection("SYS ");
    snap::loadRng(r, rng_);
    now_ = r.i64();
    next_metrics_ = r.i64();
    next_pid_ = r.i32();
    swap_enabled_ = r.b();
    tick_no_ = r.u64();
    oom_kills_ = r.u64();
    reclaim_rr_ = r.u64();
    kcompactd_budget_ = r.f64();
    swapped_count_ = r.u64();
    swapped_.clear();
    const std::uint64_t nswapped = r.u64();
    for (std::uint64_t i = 0; i < nswapped; ++i) {
        const std::uint64_t k = r.u64();
        swapped_[k].load(r);
    }
    reclaim_hand_.clear();
    const std::uint64_t nhands = r.u64();
    for (std::uint64_t i = 0; i < nhands; ++i) {
        const std::int32_t pid = r.i32();
        reclaim_hand_[pid] = r.u64();
    }
    r.endSection();

    r.openSection("PHYS");
    phys_.load(r);
    r.endSection();

    r.openSection("BUDY");
    phys_.buddy().load(r);
    r.endSection();

    r.openSection("SWAP");
    swap_.load(r);
    r.endSection();

    r.openSection("CMPT");
    compactor_.load(r);
    r.endSection();

    r.openSection("FRAG");
    const bool has_frag = r.b();
    HS_ASSERT(has_frag == (fragmenter_ != nullptr),
              "snapshot and rebuilt system disagree on fragmentation "
              "setup; the restore rebuild must repeat it");
    if (fragmenter_)
        fragmenter_->load(r);
    r.endSection();

    for (auto &proc : processes_) {
        r.openSection("PROC");
        const std::int32_t pid = r.i32();
        HS_ASSERT(pid == proc->pid(), "snapshot pid ", pid,
                  " != rebuilt pid ", proc->pid());
        const std::string pname = r.str();
        HS_ASSERT(pname == proc->name(), "snapshot process \"", pname,
                  "\" != rebuilt \"", proc->name(), "\"");
        proc->load(r);
        r.endSection();
    }

    if (saved_policy == policy_->name()) {
        r.openSection("POLI");
        policy_->load(r);
        r.endSection();
    } else {
        HS_ASSERT(r.peekTag() == "POLI",
                  "expected POLI section, found \"", r.peekTag(),
                  "\"");
        r.skipSection();
        skipped = true;
        HS_WARN("restore: snapshot policy \"", saved_policy,
                "\" != installed \"", policy_->name(),
                "\"; policy daemon state starts fresh");
    }

    if (r.peekTag() == "FALT") {
        if (fault_injector_) {
            r.openSection("FALT");
            fault_injector_->load(r);
            r.endSection();
        } else {
            r.skipSection();
            skipped = true;
        }
    } else if (fault_injector_) {
        skipped = true; // injector newly configured; starts fresh
    }

    r.openSection("METR");
    metrics_.load(r);
    r.endSection();
    // Series were re-interned in creation order; resolve the cached
    // handles again rather than trusting the old ids.
    sid_free_frames_ = metrics_.seriesId("sys.free_frames");
    sid_used_fraction_ = metrics_.seriesId("sys.used_fraction");
    sid_fmfi9_ = metrics_.seriesId("sys.fmfi9");
    proc_sids_.clear();
    for (const auto &proc : processes_) {
        std::string p = "p";
        p += std::to_string(proc->pid());
        proc_sids_.emplace(
            proc->pid(),
            ProcSeriesIds{metrics_.seriesId(p + ".rss_pages"),
                          metrics_.seriesId(p + ".huge_pages"),
                          metrics_.seriesId(p + ".mmu_overhead")});
    }

    r.openSection("OBS ");
    obs_.tracer.load(r);
    obs_.cost.load(r);
    r.endSection();

    if (r.peekTag() == "VMST") {
        if (vmstat_) {
            r.openSection("VMST");
            vmstat_->load(r);
            r.endSection();
        } else {
            r.skipSection();
            skipped = true;
        }
    } else if (vmstat_) {
        skipped = true; // sampler newly configured; starts empty
    }

    HS_ASSERT(r.atEnd(), "unconsumed trailing sections in snapshot");
    return skipped;
}

std::string
System::saveImage()
{
    snap::Writer w;
    saveState(w);
    return w.bytes();
}

void
System::saveToFile(const std::string &path)
{
    snap::writeFileOrDie(path, saveImage());
}

void
System::restoreFromBytes(const std::string &bytes)
{
    snap::Reader r(bytes);
    const bool skipped = loadState(r);
    // Full invariant audit on every restore, plus the roundtrip
    // check: a full (no-skip) restore must re-serialize bit-equal.
    fault::AuditReport rep = auditNow();
    if (!skipped) {
        snap::Writer w;
        saveState(w);
        if (w.bytes() != bytes) {
            rep.violations.push_back(
                {fault::ViolationClass::kSnapshotRoundtrip,
                 "save -> load -> save differs from the restored "
                 "image"});
        }
    }
    if (!rep.ok()) {
        HS_PANIC("restore audit failed (tick ", tick_no_, ", ",
                 rep.violations.size(), " violations):\n",
                 rep.summary());
    }
}

void
System::restoreFromFile(const std::string &path)
{
    restoreFromBytes(snap::readFileOrDie(path));
}

} // namespace hawksim::sim
