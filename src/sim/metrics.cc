#include "sim/metrics.hh"

#include "snap/snap.hh"

namespace hawksim::sim {

void
Metrics::save(snap::Writer &w) const
{
    w.u64(series_.size());
    for (const TimeSeries &ts : series_) {
        w.str(ts.name());
        w.u64(ts.points().size());
        for (const SeriesPoint &p : ts.points()) {
            w.i64(p.time);
            w.f64(p.value);
        }
    }
    w.u64(events_.size());
    for (const SimEvent &ev : events_) {
        w.i64(ev.time);
        w.str(ev.what);
    }
}

void
Metrics::load(snap::Reader &r)
{
    series_.clear();
    index_.clear();
    events_.clear();
    const std::uint64_t nseries = r.u64();
    for (std::uint64_t i = 0; i < nseries; ++i) {
        const SeriesId id = seriesId(r.str());
        HS_ASSERT(id == i, "series interned out of order on load");
        const std::uint64_t npts = r.u64();
        for (std::uint64_t j = 0; j < npts; ++j) {
            const TimeNs t = r.i64();
            record(id, t, r.f64());
        }
    }
    const std::uint64_t nevents = r.u64();
    for (std::uint64_t i = 0; i < nevents; ++i) {
        const TimeNs t = r.i64();
        event(t, r.str());
    }
}

} // namespace hawksim::sim
