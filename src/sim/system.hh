/**
 * @file
 * The simulated machine: physical memory, processes, the installed
 * huge-page policy and its daemons, a compactor, swap, a clock and a
 * metrics recorder.
 */

#ifndef HAWKSIM_SIM_SYSTEM_HH
#define HAWKSIM_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "fault/audit.hh"
#include "fault/fault.hh"
#include "mem/compaction.hh"
#include "obs/probe.hh"
#include "mem/phys.hh"
#include "mem/swap.hh"
#include "policy/policy.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/process.hh"

namespace hawksim::obs {
struct Snapshot;
class VmstatRecorder;
} // namespace hawksim::obs

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::sim {

class System : public mem::PageMover
{
  public:
    explicit System(SystemConfig cfg);
    ~System() override;

    /** @name Setup */
    /// @{
    /** Install the OS huge-page policy (required before running). */
    void setPolicy(std::unique_ptr<policy::HugePagePolicy> pol);
    /** Create a process; it starts at the current sim time. */
    Process &addProcess(const std::string &name,
                        std::unique_ptr<workload::Workload> wl);
    /** Create a process with a non-default TLB (virtualized runs). */
    Process &addProcess(const std::string &name,
                        std::unique_ptr<workload::Workload> wl,
                        const tlb::TlbConfig &tlb_cfg);
    /**
     * Fragment physical memory like a populated page cache: pins
     * unmovable frames in @p fraction of huge regions and optionally
     * fills @p movable_fill of memory with reclaimable file pages.
     */
    void fragmentMemory(double fraction, double movable_fill = 0.0);
    /**
     * Fragment with *movable* page-cache-like pins: per selected
     * region, scatter @p pages_per_region single frames. Bounded
     * fault-path compaction fails against this; khugepaged-grade
     * compaction clears it (the paper's "read several files" setup).
     */
    void fragmentMemoryMovable(double fraction,
                               unsigned pages_per_region = 64);
    /// @}

    /** @name Execution */
    /// @{
    /** Advance one tick. */
    void tick();
    /** Run for a fixed simulated duration. */
    void run(TimeNs duration);
    /** Run until all run-to-completion processes finish (or limit). */
    void runUntilAllDone(TimeNs limit);
    TimeNs now() const { return now_; }
    /// @}

    /** @name Components */
    /// @{
    mem::PhysicalMemory &phys() { return phys_; }
    mem::Compactor &compactor() { return compactor_; }
    mem::SwapDevice &swap() { return swap_; }
    policy::HugePagePolicy &policy() { return *policy_; }
    Metrics &metrics() { return metrics_; }
    /** Observability: tracer + cost accounting of this run. */
    obs::Probe &obs() { return obs_; }
    obs::Tracer &tracer() { return obs_.tracer; }
    obs::CostAccounting &cost() { return obs_.cost; }
    /** Periodic snapshot sampler; null unless inspect configured. */
    obs::VmstatRecorder *vmstat() { return vmstat_.get(); }
    /** Move the sampled snapshots out (end-of-run capture). */
    std::vector<obs::Snapshot> takeSnapshots();
    /**
     * The installed policy, or null before setPolicy() — lets
     * introspection probe the policy type without risking the
     * assertion in policy().
     */
    const policy::HugePagePolicy *policyIfAny() const
    {
        return policy_.get();
    }
    /** Ticks executed so far. */
    std::uint64_t tickNo() const { return tick_no_; }
    Rng &rng() { return rng_; }
    const SystemConfig &config() const { return cfg_; }
    const CostParams &costs() const { return cfg_.costs; }
    CostParams &costs() { return cfg_.costs; }
    std::vector<std::unique_ptr<Process>> &processes()
    {
        return processes_;
    }
    Process *findProcess(std::int32_t pid);
    /// @}

    /** @name Services used by policies */
    /// @{
    /**
     * Allocate an order-9 block, optionally compacting to create
     * contiguity. Migration cost is added to @p cost when non-null.
     */
    /**
     * @param max_migrate compaction effort bound: the fault path uses
     *        a small bound (direct compaction gives up quickly, as
     *        the kernel's does), daemons a large one.
     */
    std::optional<mem::BuddyBlock>
    allocHugeBlock(std::int32_t pid, mem::ZeroPref pref,
                   bool allow_compact, TimeNs *cost = nullptr,
                   std::uint64_t max_migrate = 256);

    /** Enable swap-backed reclaim instead of OOM kills. */
    void enableSwap(bool on) { swap_enabled_ = on; }
    bool swapEnabled() const { return swap_enabled_; }
    /**
     * If @p vpn of @p pid was swapped out, charge the swap-in read
     * and clear the mark; returns the latency (0 if not swapped).
     */
    TimeNs swapInIfNeeded(std::int32_t pid, Vpn vpn);
    /**
     * Evict approximately @p pages cold base pages to swap (second
     * chance on the PTE accessed bit, splitting huge mappings as the
     * kernel does). Returns the number of pages actually freed; the
     * device time is added to @p cost.
     */
    std::uint64_t reclaimPages(std::uint64_t pages, TimeNs *cost);
    std::uint64_t swappedPages() const { return swapped_count_; }
    /// @}

    /** @name Chaos / audits / graceful degradation */
    /// @{
    /** Installed injector; null unless injection was configured. */
    fault::FaultInjector *faultInjector()
    {
        return fault_injector_.get();
    }
    /** Run the invariant auditor now; returns the report (no panic). */
    fault::AuditReport auditNow();
    /** Audits run so far (periodic + on-fault + end-of-run). */
    std::uint64_t auditsRun() const { return auditor_.auditsRun(); }
    /** Is the deterministic OOM killer enabled (--chaos)? */
    bool oomKillerEnabled() const { return cfg_.fault.oomKiller; }
    /**
     * Pick and kill the largest-RSS live process (ties: lowest pid),
     * releasing its memory and swap slots. When the victim is
     * @p requester itself, nothing is killed — the caller falls
     * through to the historical self-OOM path. Returns the victim
     * pid, or -1 when no live process exists.
     */
    std::int32_t oomKillVictim(std::int32_t requester);
    /** Processes killed by the OOM killer (not self-inflicted). */
    std::uint64_t oomKills() const { return oom_kills_; }
    /** Swap map introspection for the auditor. */
    const std::unordered_map<std::uint64_t, mem::PageContent> &
    swappedMap() const
    {
        return swapped_;
    }
    /// @}

    /** mem::PageMover: fix the page table of a migrated frame. */
    void pageMoved(Pfn from, Pfn to) override;

    /**
     * @name Checkpoint / restore (`hawksim-snap/v1`)
     *
     * saveImage() serializes every section of the complete dynamic
     * state. restoreFromBytes() applies an image onto a System that
     * was *rebuilt identically* (same config, policy and processes —
     * the harness re-runs the bench's setup code, then the pending
     * restore fires at the start of the first tick). Sections that no
     * longer apply to the rebuilt system — a different policy, or
     * chaos/inspect machinery present on only one side — are skipped
     * ("fork where legal"). After a full (no-skip) restore the
     * save -> load -> save image must be bit-equal; any difference is
     * reported as a `snapshot-roundtrip` audit violation, and a full
     * invariant audit runs either way.
     */
    /// @{
    /** Serialize the complete dynamic state into an image. */
    std::string saveImage();
    /** saveImage() to a file (parent directories created). */
    void saveToFile(const std::string &path);
    /** Apply an image; audits and roundtrip-checks it. */
    void restoreFromBytes(const std::string &bytes);
    void restoreFromFile(const std::string &path);
    /** True once --replay-to's tick limit has been reached. */
    bool
    replayLimitReached() const
    {
        return cfg_.snap.replayToTick > 0 &&
               tick_no_ >= cfg_.snap.replayToTick;
    }
    /// @}

  private:
    /** Write every section of the dynamic state. */
    void saveState(snap::Writer &w);
    /** Read sections back; returns true when any was skipped. */
    bool loadState(snap::Reader &r);
    /** Apply a pending --restore, then emit a due checkpoint. */
    void snapAtTickStart();
    void recordMetrics();
    void releaseProcessMemory(Process &proc);
    /** Drop swap slots of an exited process (device discard). */
    void dropSwapSlots(std::int32_t pid);
    /** Audit and panic with a full diagnosis on any violation. */
    void runAuditOrDie(const char *why);

    /** Pre-resolved metric series handles for one process. */
    struct ProcSeriesIds
    {
        Metrics::SeriesId rss;
        Metrics::SeriesId huge;
        Metrics::SeriesId mmu;
    };

    SystemConfig cfg_;
    obs::Probe obs_;
    mem::PhysicalMemory phys_;
    mem::Compactor compactor_;
    mem::SwapDevice swap_;
    std::unique_ptr<mem::Fragmenter> fragmenter_;
    std::unique_ptr<policy::HugePagePolicy> policy_;
    std::vector<std::unique_ptr<Process>> processes_;
    Rng rng_;
    Metrics metrics_;
    /** Interned handles for the per-sample metrics hot path. */
    Metrics::SeriesId sid_free_frames_;
    Metrics::SeriesId sid_used_fraction_;
    Metrics::SeriesId sid_fmfi9_;
    std::unordered_map<std::int32_t, ProcSeriesIds> proc_sids_;
    TimeNs now_ = 0;
    TimeNs next_metrics_ = 0;
    std::int32_t next_pid_ = 1;
    bool swap_enabled_ = false;
    /** Swapped-out pages: pageKey(pid, vpn) -> saved content. */
    std::unordered_map<std::uint64_t, mem::PageContent> swapped_;
    std::uint64_t swapped_count_ = 0;
    /** Per-process clock hand for reclaim (region index). */
    std::unordered_map<std::int32_t, std::uint64_t> reclaim_hand_;
    std::size_t reclaim_rr_ = 0;
    double kcompactd_budget_ = 0.0;
    /** Chaos machinery; injector is null unless configured. */
    std::unique_ptr<fault::FaultInjector> fault_injector_;
    fault::Auditor auditor_;
    /** Snapshot sampler; null unless cfg_.inspect is enabled. */
    std::unique_ptr<obs::VmstatRecorder> vmstat_;
    std::uint64_t tick_no_ = 0;
    std::uint64_t oom_kills_ = 0;
    /** One-shot --restore latch; applied at the first tick start. */
    bool restore_pending_ = false;
};

} // namespace hawksim::sim

#endif // HAWKSIM_SIM_SYSTEM_HH
