#include "sim/process.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/system.hh"
#include "snap/snap.hh"

namespace hawksim::sim {

Process::Process(std::int32_t pid, std::string name, System &sys,
                 std::unique_ptr<workload::Workload> wl,
                 tlb::TlbConfig tlb_cfg)
    : pid_(pid), name_(std::move(name)), sys_(sys),
      space_(pid, sys.phys()), tlb_(tlb_cfg), workload_(std::move(wl))
{
    HS_ASSERT(workload_ != nullptr, "process without workload");
}

void
Process::start(TimeNs now)
{
    HS_ASSERT(!started_, "double start of process ", name_);
    started_ = true;
    started_at_ = now;
    workload_->init(*this);
}

void
Process::tick(TimeNs dt)
{
    if (!started_ || finished_)
        return;
    const CostParams &costs = sys_.costs();
    // The core is unhalted for the whole tick (Table 4's C3).
    tlb_.counters().cpuClkUnhalted += costs.nsToCycles(dt);

    TimeNs avail = dt - debt_;
    debt_ = 0;
    while (avail > 0 && !finished_) {
        workload_->next(*this, std::min(avail, dt), chunk_);
        const workload::WorkChunk &chunk = chunk_;
        TimeNs cost = chunk.compute;

        // Fault handling: touch pages in order, going through the OS
        // policy for anything unmapped (or COW-protected writes).
        for (Vpn vpn : chunk.faults) {
            vm::Translation t = space_.pageTable().lookup(vpn);
            if (t.present) {
                if (t.entry.cow() && chunk.faultsAreWrites) {
                    const TimeNs c =
                        sys_.policy().onCowFault(sys_, *this, vpn);
                    recordCowFault(vpn, c);
                    cost += c;
                }
                continue;
            }
            if (!faultIn(vpn, cost))
                break;
        }

        // Content writes (drive zero-scan / dedup behaviour). The
        // fused walk translates and sets accessed+dirty in one pass;
        // a COW entry touched just before its break is unobservable
        // (breakCow installs fresh accessed|dirty flags anyway).
        if (!oom_) {
            if (tlb::TlbModel::batchingEnabled())
                runWritesBatched(chunk, cost);
            else
                runWritesScalar(chunk, cost);
        }

        // Accessed-bit shadow sample (for OS access-bit tracking).
        for (Vpn vpn : chunk.touches)
            space_.pageTable().touch(vpn, false);

        // TLB simulation over the sampled access stream.
        if (!chunk.sample.empty() && chunk.accessCount > 0) {
            const double scale =
                static_cast<double>(chunk.accessCount) /
                static_cast<double>(chunk.sample.size());
            tlb::TlbBatchResult res =
                tlb_.simulate(space_.pageTable(), chunk.sample,
                              chunk.sequentiality, scale);
            const TimeNs walk_ns = costs.cyclesToNs(res.walkCycles);
            cost += walk_ns;
            sys_.cost().charge(obs::Subsys::kTlbWalk, walk_ns);
            sys_.tracer().complete(
                obs::Cat::kTlb, "tlb_batch", pid_, sys_.now(),
                walk_ns,
                {{"accesses",
                  static_cast<std::int64_t>(chunk.accessCount)},
                 {"walk_cycles",
                  static_cast<std::int64_t>(res.walkCycles)}});
        }

        // Releases (MADV_DONTNEED).
        for (const auto &fr : chunk.frees) {
            space_.madviseDontneed(fr.start, fr.bytes);
            sys_.policy().onMadviseFree(sys_, *this, fr.start,
                                        fr.bytes);
        }

        ops_completed_ += chunk.opsCompleted;
        avail -= std::max<TimeNs>(cost, 1);

        if (chunk.done || oom_) {
            finished_ = true;
            const TimeNs used = std::clamp<TimeNs>(dt - avail, 0, dt);
            finished_at_ = sys_.now() + used;
        }
    }
    if (avail < 0)
        debt_ = -avail;
}

void
Process::runWritesScalar(const workload::WorkChunk &chunk,
                         TimeNs &cost)
{
    // Reference per-entry loop (batching disabled): translate, fault
    // or break COW as needed, then install the content — one entry at
    // a time.
    for (const auto &[vpn, content] : chunk.writes) {
        vm::Translation t = space_.pageTable().lookupAndTouch(vpn, true);
        if (!t.present) {
            if (!faultIn(vpn, cost))
                break;
            t = space_.pageTable().lookupAndTouch(vpn, true);
        }
        if (t.entry.cow()) {
            const TimeNs c = sys_.policy().onCowFault(sys_, *this, vpn);
            recordCowFault(vpn, c);
            cost += c;
            t = space_.pageTable().lookupAndTouch(vpn, true);
        }
        sys_.phys().writeFrame(t.pfn, content);
    }
}

void
Process::runWritesBatched(const workload::WorkChunk &chunk,
                          TimeNs &cost)
{
    // Segmented two-phase variant of runWritesScalar: translate a run
    // of entries that need no OS intervention (present, not COW) into
    // a reused pfn scratch column, then commit the run's frame writes
    // with the next frame prefetched ahead of each store. The phases
    // commute — translations never read frame contents and content
    // writes never touch the page table — and a repeated vpn resolves
    // to the same pfn in both phases (nothing changes the mapping in
    // between), so the observable state after each run matches the
    // scalar interleaving exactly. The first entry that *does* need
    // the fault path breaks the run and is handled inline, at its
    // original position relative to every other page-table and frame
    // operation; an OOM verdict abandons the rest of the chunk's
    // writes, exactly like the scalar loop's break.
    vm::PageTable &pt = space_.pageTable();
    mem::PhysicalMemory &phys = sys_.phys();
    const auto &writes = chunk.writes;
    const std::size_t n = writes.size();
    std::size_t i = 0;
    while (i < n) {
        const std::size_t start = i;
        write_pfns_.clear();
        vm::Translation pending; // breaking entry's translation
        for (; i < n; i++) {
            if (i + 1 < n)
                pt.prefetchTranslation(writes[i + 1].first);
            pending = pt.lookupAndTouch(writes[i].first, true);
            if (!pending.present || pending.entry.cow())
                break;
            write_pfns_.push_back(pending.pfn);
        }
        const std::size_t run = write_pfns_.size();
        for (std::size_t j = 0; j < run; j++) {
            if (j + 1 < run)
                phys.prefetchFrame(write_pfns_[j + 1]);
            phys.writeFrame(write_pfns_[j],
                            writes[start + j].second);
        }
        if (i == n)
            break;
        // Fault path for the entry that broke the run — the same
        // steps the scalar loop takes from its first lookupAndTouch
        // (already done above as `pending`).
        const Vpn vpn = writes[i].first;
        vm::Translation t = pending;
        if (!t.present) {
            if (!faultIn(vpn, cost))
                return; // OOM: drop the remaining writes
            t = pt.lookupAndTouch(vpn, true);
        }
        if (t.entry.cow()) {
            const TimeNs c = sys_.policy().onCowFault(sys_, *this, vpn);
            recordCowFault(vpn, c);
            cost += c;
            t = pt.lookupAndTouch(vpn, true);
        }
        phys.writeFrame(t.pfn, writes[i].second);
        i++;
    }
}

bool
Process::faultIn(Vpn vpn, TimeNs &cost)
{
    policy::FaultOutcome out = sys_.policy().onFault(sys_, *this, vpn);
    recordFault(vpn, out);
    page_faults_++;
    fault_time_ += out.latency;
    cost += out.latency;
    if (out.oom) {
        oom_ = true;
        sys_.metrics().event(sys_.now(), name_ + ": OOM killed");
        return false;
    }
    return true;
}

void
Process::recordFault(Vpn vpn, const policy::FaultOutcome &out)
{
    sys_.cost().fault(out.latency, out.huge);
    sys_.tracer().complete(
        obs::Cat::kFault, out.huge ? "fault_huge" : "fault", pid_,
        sys_.now(), out.latency,
        {{"vpn", static_cast<std::int64_t>(vpn)},
         {"pages", static_cast<std::int64_t>(out.pagesMapped)},
         {"oom", out.oom ? 1 : 0}});
    if (out.oom) {
        sys_.tracer().instant(obs::Cat::kProc, "oom_kill", pid_,
                              sys_.now());
    }
}

void
Process::recordCowFault(Vpn vpn, TimeNs cost)
{
    cow_faults_++;
    sys_.cost().count(obs::Counter::kCowFaults);
    sys_.cost().charge(obs::Subsys::kFaultPath, cost);
    sys_.tracer().complete(obs::Cat::kFault, "cow_break", pid_,
                           sys_.now(), cost,
                           {{"vpn", static_cast<std::int64_t>(vpn)}});
}

double
Process::windowMmuOverheadPct()
{
    const tlb::PerfCounters delta =
        tlb_.counters().since(window_snapshot_);
    window_snapshot_ = tlb_.counters();
    return delta.mmuOverheadPct();
}

std::uint64_t
Process::windowOps()
{
    const std::uint64_t delta = ops_completed_ - window_ops_snapshot_;
    window_ops_snapshot_ = ops_completed_;
    return delta;
}

void
Process::save(snap::Writer &w) const
{
    w.b(started_);
    w.b(finished_);
    w.b(oom_);
    w.i64(started_at_);
    w.i64(finished_at_);
    w.i64(debt_);
    w.u64(page_faults_);
    w.i64(fault_time_);
    w.u64(cow_faults_);
    w.u64(ops_completed_);
    window_snapshot_.save(w);
    w.u64(window_ops_snapshot_);
    space_.save(w);
    tlb_.save(w);
    workload_->save(w);
}

void
Process::load(snap::Reader &r)
{
    started_ = r.b();
    finished_ = r.b();
    oom_ = r.b();
    started_at_ = r.i64();
    finished_at_ = r.i64();
    debt_ = r.i64();
    page_faults_ = r.u64();
    fault_time_ = r.i64();
    cow_faults_ = r.u64();
    ops_completed_ = r.u64();
    window_snapshot_.load(r);
    window_ops_snapshot_ = r.u64();
    space_.load(r);
    tlb_.load(r);
    workload_->load(r);
}

} // namespace hawksim::sim
