/**
 * @file
 * A simulated process: an address space, a TLB, performance counters
 * and a workload, executed in tick quanta.
 *
 * Each process owns a core (the paper binds workloads to cores).
 * During a tick of length dt the core is busy for dt cycles; fault
 * latencies and TLB walk cycles eat into the budget available for
 * useful workload compute, so MMU overhead directly stretches the
 * workload's completion time.
 */

#ifndef HAWKSIM_SIM_PROCESS_HH
#define HAWKSIM_SIM_PROCESS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/types.hh"
#include "sim/config.hh"
#include "tlb/tlb.hh"
#include "vm/address_space.hh"
#include "workload/workload.hh"

namespace hawksim::policy {
struct FaultOutcome;
} // namespace hawksim::policy

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::sim {

class System;

class Process
{
  public:
    Process(std::int32_t pid, std::string name, System &sys,
            std::unique_ptr<workload::Workload> wl,
            tlb::TlbConfig tlb_cfg = tlb::TlbConfig::haswell());

    /** Initialize the workload (VMA setup). Called by System. */
    void start(TimeNs now);

    /** Execute up to @p dt of core time. */
    void tick(TimeNs dt);

    /**
     * Charge externally-incurred stall time (e.g. host-level major
     * faults observed by the virtualization layer); repaid from the
     * next ticks' budgets.
     */
    void chargeExternal(TimeNs t) { debt_ += t; }

    /**
     * Terminate this process as a victim of the system OOM killer.
     * The caller (System::oomKillVictim) does the exit plumbing —
     * memory release, swap-slot discard, policy notification.
     */
    void
    killedByOom(TimeNs now)
    {
        oom_ = true;
        finished_ = true;
        finished_at_ = now;
    }

    /** @name Identity and components */
    /// @{
    std::int32_t pid() const { return pid_; }
    const std::string &name() const { return name_; }
    vm::AddressSpace &space() { return space_; }
    const vm::AddressSpace &space() const { return space_; }
    tlb::TlbModel &tlb() { return tlb_; }
    workload::Workload &workload() { return *workload_; }
    System &system() { return sys_; }
    /// @}

    /** @name Run state */
    /// @{
    bool finished() const { return finished_; }
    bool oomKilled() const { return oom_; }
    TimeNs startedAt() const { return started_at_; }
    TimeNs finishedAt() const { return finished_at_; }
    /** Wall (simulated) runtime; valid once finished. */
    TimeNs runtime() const { return finished_at_ - started_at_; }
    /// @}

    /** @name Statistics */
    /// @{
    std::uint64_t pageFaults() const { return page_faults_; }
    TimeNs faultTime() const { return fault_time_; }
    std::uint64_t cowFaults() const { return cow_faults_; }
    std::uint64_t opsCompleted() const { return ops_completed_; }
    const tlb::PerfCounters &counters() const
    {
        return tlb_.counters();
    }
    /** MMU overhead over the whole run so far (Table 4 formula). */
    double mmuOverheadPct() const
    {
        return counters().mmuOverheadPct();
    }
    /**
     * MMU overhead since the previous call to this function
     * (windowed sampling, as HawkEye-PMU would read the PMU).
     */
    double windowMmuOverheadPct();
    /** Ops completed since the previous call (throughput window). */
    std::uint64_t windowOps();
    /// @}

    /**
     * Run state, fault statistics, PMU windows, address space, TLB
     * and workload. The scratch WorkChunk is not state: every tick
     * consumes the chunk it requested.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    void
    chargeCycles(Cycles c);

    /**
     * Service one page fault through the OS policy: record it,
     * account latency into @p cost, and mark the process OOM-killed
     * when the policy says so. Returns false on OOM (callers stop
     * touching memory for the rest of the chunk).
     */
    bool faultIn(Vpn vpn, TimeNs &cost);

    /**
     * @name Content-write loop
     *
     * Two state-equivalent implementations of the chunk's content
     * writes, selected by `tlb::TlbModel::batchingEnabled()`. The
     * batched one runs translate-all / write-all phases over runs of
     * fault-free entries (prefetching the next PTE and frame column
     * entry), dropping to the scalar fault path only at the entries
     * that need it — see runWritesBatched for the equivalence
     * argument. The scalar one is the per-entry reference loop.
     */
    /// @{
    void runWritesScalar(const workload::WorkChunk &chunk,
                         TimeNs &cost);
    void runWritesBatched(const workload::WorkChunk &chunk,
                          TimeNs &cost);
    /// @}

    /** Account + trace one serviced page fault. */
    void recordFault(Vpn vpn, const policy::FaultOutcome &out);
    /** Account + trace one COW break. */
    void recordCowFault(Vpn vpn, TimeNs cost);

    std::int32_t pid_;
    std::string name_;
    System &sys_;
    vm::AddressSpace space_;
    tlb::TlbModel tlb_;
    std::unique_ptr<workload::Workload> workload_;

    bool started_ = false;
    bool finished_ = false;
    bool oom_ = false;
    TimeNs started_at_ = 0;
    TimeNs finished_at_ = 0;
    /** Overrun carried into the next tick. */
    TimeNs debt_ = 0;

    std::uint64_t page_faults_ = 0;
    TimeNs fault_time_ = 0;
    std::uint64_t cow_faults_ = 0;
    std::uint64_t ops_completed_ = 0;

    tlb::PerfCounters window_snapshot_;
    std::uint64_t window_ops_snapshot_ = 0;

    /** Reused across ticks so chunk vectors keep their capacity. */
    workload::WorkChunk chunk_;
    /** Translated-run pfn column reused by runWritesBatched. */
    std::vector<Pfn> write_pfns_;
};

} // namespace hawksim::sim

#endif // HAWKSIM_SIM_PROCESS_HH
