/**
 * @file
 * Deterministic fault injection for chaos testing.
 *
 * A FaultInjector decides, per *fault site*, whether a given probe
 * should fail. Decisions are pure functions of (seed, site,
 * occurrence index): the n-th probe of a site fails or succeeds the
 * same way no matter how many harness workers run beside it, which
 * keeps chaos runs byte-identical across `--jobs`.
 *
 * Cost model of the disabled path mirrors obs::Tracer: every
 * instrumented site tests one pointer (`fault::faultAt(fi_, site)`
 * with fi_ == nullptr) and does nothing else — no hashing, no
 * counters, no allocation. Sites only pay for bookkeeping when an
 * injector is installed.
 */

#ifndef HAWKSIM_FAULT_FAULT_HH
#define HAWKSIM_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "base/types.hh"

namespace hawksim::obs {
struct Probe;
} // namespace hawksim::obs

namespace hawksim::snap {
class Writer;
class Reader;
} // namespace hawksim::snap

namespace hawksim::fault {

/** One instrumented failure point in the memory-management stack. */
enum class Site : std::uint8_t
{
    kBuddyAlloc,    //!< buddy allocation of order >= 1
    kAllocSpecific, //!< targeted allocation (compaction destinations)
    kCompactMove,   //!< one page migration inside compactOne
    kSwapOut,       //!< writing one page to the swap device
    kSwapIn,        //!< reading one page back from swap
    kPrezero,       //!< pre-zero daemon zeroing one buddy block
    kPromoteCopy,   //!< the copy step of a huge-page promotion
};

constexpr unsigned kSiteCount = 7;

/** Stable lower-case name of a site ("buddy-alloc", ...). */
const char *siteName(Site s);
/** Inverse of siteName; nullopt for unknown names. */
std::optional<Site> siteFromName(std::string_view name);

/**
 * Fault-injection and audit configuration, carried in
 * sim::SystemConfig next to the TraceConfig.
 */
struct FaultConfig
{
    /** Global per-probe failure probability in [0,1]. */
    double rate = 0.0;
    /** Per-site override; negative means "inherit the global rate". */
    std::array<double, kSiteCount> siteRate{
        -1.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0,
    };
    /**
     * Scripted schedule: (site, occurrence) pairs that must fail,
     * 1-based — {kBuddyAlloc, 3} fails the third order>=1 buddy
     * allocation probe. A non-empty script disables probabilistic
     * injection entirely.
     */
    std::vector<std::pair<Site, std::uint64_t>> script;
    /**
     * Let sustained reclaim failure kill the largest-RSS process
     * instead of OOM-killing the faulting process itself. Off by
     * default: several experiments (fig1, overcommit) depend on the
     * historical self-kill semantics.
     */
    bool oomKiller = false;
    /** Run the invariant auditor every N ticks (0 = never). */
    std::uint64_t auditEvery = 0;
    /** Run the auditor after every injected fault. */
    bool auditOnFault = false;

    bool
    injectionEnabled() const
    {
        if (!script.empty())
            return true;
        if (rate > 0.0)
            return true;
        for (double r : siteRate)
            if (r > 0.0)
                return true;
        return false;
    }

    bool
    auditingEnabled() const
    {
        return auditEvery > 0 || auditOnFault;
    }

    double
    effectiveRate(Site s) const
    {
        const double r = siteRate[static_cast<unsigned>(s)];
        return r >= 0.0 ? r : rate;
    }
};

/** Per-site probe/injection tallies. */
struct SiteStats
{
    std::uint64_t probes = 0;
    std::uint64_t injected = 0;
};

/**
 * Tallies of graceful-degradation events. These never enter the
 * canonical reports (that would break byte-identity of non-chaos
 * runs); chaos tests and the trace stream read them instead.
 */
struct DegradationStats
{
    /** Huge-page faults that fell back to a 4K mapping. */
    std::uint64_t hugeFallbacks = 0;
    /** Promotions deferred because the copy step failed. */
    std::uint64_t deferredPromotions = 0;
    /** Compaction passes aborted mid-migration. */
    std::uint64_t abortedCompactions = 0;
    /** Reclaim sweeps cut short by a full/faulted swap device. */
    std::uint64_t reclaimShortfalls = 0;
    /** Processes killed by the OOM killer (not self-inflicted). */
    std::uint64_t oomKills = 0;
};

/**
 * The decision engine. Deterministic: whether probe n of site s
 * fails depends only on (seed, s, n).
 */
class FaultInjector
{
  public:
    FaultInjector(std::uint64_t seed, const FaultConfig &cfg);

    /**
     * The probe: should the current occurrence of @p s fail?
     * Advances the site's occurrence counter either way.
     */
    bool shouldFail(Site s);

    /** Install a probe + clock so injections emit Cat::kChaos. */
    void
    attachTrace(obs::Probe *probe, std::function<TimeNs()> clock)
    {
        probe_ = probe;
        clock_ = std::move(clock);
    }

    /** True once at least one fault has been injected since the
     *  last takePendingAudit() call (drives --audit-on-fault). */
    bool
    takePendingAudit()
    {
        const bool p = pending_audit_;
        pending_audit_ = false;
        return p;
    }

    const FaultConfig &config() const { return cfg_; }
    const SiteStats &stats(Site s) const
    {
        return stats_[static_cast<unsigned>(s)];
    }
    std::uint64_t
    totalInjected() const
    {
        std::uint64_t n = 0;
        for (const auto &s : stats_)
            n += s.injected;
        return n;
    }

    DegradationStats &degradation() { return degradation_; }
    const DegradationStats &degradation() const { return degradation_; }

    /**
     * Occurrence counters, degradation tallies and the pending-audit
     * latch. The hash-chain bases are pure functions of (seed,
     * config), which the restore rebuild reproduces, so restoring
     * the counters resumes the injection schedule exactly.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    FaultConfig cfg_;
    /** Per-site base for the hash chain (seed ⊕ site salt, mixed). */
    std::array<std::uint64_t, kSiteCount> site_base_{};
    std::array<SiteStats, kSiteCount> stats_{};
    DegradationStats degradation_;
    bool pending_audit_ = false;
    obs::Probe *probe_ = nullptr;
    std::function<TimeNs()> clock_;
};

/**
 * The zero-cost site guard. Instrumented code holds a
 * `FaultInjector *` that is null unless injection was configured:
 *
 *     if (fault::faultAt(fault_, fault::Site::kBuddyAlloc))
 *         return std::nullopt;
 */
inline bool
faultAt(FaultInjector *fi, Site s)
{
    return fi != nullptr && fi->shouldFail(s);
}

} // namespace hawksim::fault

#endif // HAWKSIM_FAULT_FAULT_HH
