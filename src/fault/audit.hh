/**
 * @file
 * Cross-structure invariant auditor.
 *
 * The Auditor walks a sim::System and cross-checks the load-bearing
 * invariants that tie the page tables, frame table, buddy allocator,
 * TLB model and swap state together. It never mutates anything and
 * never panics — it returns an AuditReport listing every violation,
 * so tests can assert on exact violation classes and chaos runs can
 * fail loudly with a full diagnosis.
 *
 * Checks are opt-in at runtime (`--audit-every N`, audit-on-fault,
 * end-of-run) and cost nothing when not invoked, so they stay
 * compiled into Release builds — that is what HS_AUDIT_CHECK is for,
 * as opposed to HS_ASSERT which guards programming errors on hot
 * paths.
 */

#ifndef HAWKSIM_FAULT_AUDIT_HH
#define HAWKSIM_FAULT_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/logging.hh"

namespace hawksim::sim {
class System;
} // namespace hawksim::sim

namespace hawksim::fault {

/** Exact class of a detected invariant violation. */
enum class ViolationClass : std::uint8_t
{
    // PTE <-> frame table
    kPtePfnRange,    //!< mapped PTE points outside physical memory
    kPteFreeFrame,   //!< mapped PTE points at a buddy-free frame
    kPteOwner,       //!< exclusive frame owned by a different pid
    kFrameRefcount,  //!< frame mapCount != live PTE references
    kFrameLeak,      //!< allocated process frame with no mapping
    // Buddy allocator
    kBuddyOverlap,     //!< free blocks overlap / run past memory end
    kBuddyMisaligned,  //!< free block not naturally aligned
    kBuddyUncoalesced, //!< two same-order free buddies left unmerged
    kBuddyZeroDirty,   //!< zero-list frame with non-zero content
    kBuddyCounterDrift,//!< free-page counters disagree with the lists
    kBuddyFlagMismatch,//!< frame free-flag vs free-list membership
    // Page-table structure
    kHugeMisaligned, //!< huge leaf's block pfn not 512-aligned
    kHugeShadow,     //!< live 4K entries underneath a huge leaf
    kPtCounterDrift, //!< page-table node/global counters drifted
    // TLB coherence
    kTlbIncoherent, //!< current-epoch TLB entry contradicts the PT
    // Swap
    kSwapMappedSlot,  //!< swap slot for a page still mapped in the PT
    kSwapOrphan,      //!< swap slot owned by a dead/unknown process
    kSwapCounterDrift,//!< swap bookkeeping counters disagree
    // Introspection
    kSnapshotDrift,   //!< obs snapshot disagrees with a direct recount
    // Checkpoint/restore
    kSnapshotRoundtrip, //!< save -> load -> save is not bit-identical
};

/** Stable name of a violation class ("pte-free-frame", ...). */
const char *violationName(ViolationClass c);

struct Violation
{
    ViolationClass cls;
    std::string detail;
};

struct AuditReport
{
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
    bool
    has(ViolationClass c) const
    {
        for (const auto &v : violations)
            if (v.cls == c)
                return true;
        return false;
    }
    std::uint64_t
    count(ViolationClass c) const
    {
        std::uint64_t n = 0;
        for (const auto &v : violations)
            if (v.cls == c)
                n++;
        return n;
    }
    /** One line per violation, for logs and panic messages. */
    std::string summary(std::size_t max_lines = 16) const;
};

/**
 * Record a violation when @p cond is false. Unlike HS_ASSERT this
 * never aborts and is always compiled in — audits are opt-in at
 * runtime, so Release performance is unaffected while audits are off.
 */
#define HS_AUDIT_CHECK(report, cls, cond, ...)                        \
    do {                                                              \
        if (!(cond)) {                                                \
            (report).violations.push_back(::hawksim::fault::Violation{\
                (cls),                                                \
                ::hawksim::detail::concat(                            \
                    "check failed: " #cond ": ",                      \
                    ::hawksim::detail::concat(__VA_ARGS__))});        \
        }                                                             \
    } while (0)

class Auditor
{
  public:
    /** Run every invariant family over @p sys. */
    AuditReport audit(sim::System &sys) const;

    /** Number of audits run over this object's lifetime. */
    std::uint64_t auditsRun() const { return audits_run_; }

  private:
    mutable std::uint64_t audits_run_ = 0;
};

} // namespace hawksim::fault

#endif // HAWKSIM_FAULT_AUDIT_HH
