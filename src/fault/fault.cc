#include "fault/fault.hh"

#include <algorithm>

#include "base/logging.hh"
#include "harness/seed.hh"
#include "obs/probe.hh"
#include "snap/snap.hh"

namespace hawksim::fault {

namespace {

constexpr const char *kSiteNames[kSiteCount] = {
    "buddy-alloc", "alloc-specific", "compact-move", "swap-out",
    "swap-in",     "prezero",        "promote-copy",
};

} // namespace

const char *
siteName(Site s)
{
    const auto i = static_cast<unsigned>(s);
    HS_ASSERT(i < kSiteCount, "bad fault site: ", i);
    return kSiteNames[i];
}

std::optional<Site>
siteFromName(std::string_view name)
{
    for (unsigned i = 0; i < kSiteCount; i++)
        if (name == kSiteNames[i])
            return static_cast<Site>(i);
    return std::nullopt;
}

FaultInjector::FaultInjector(std::uint64_t seed,
                             const FaultConfig &cfg)
    : cfg_(cfg)
{
    // Each site gets its own hash chain so the decision for
    // occurrence n of one site is uncorrelated with the decisions of
    // every other site at the same index.
    for (unsigned i = 0; i < kSiteCount; i++) {
        const std::uint64_t salt = harness::fnv1a(kSiteNames[i]);
        site_base_[i] = harness::splitmix64(seed ^ salt);
    }
}

bool
FaultInjector::shouldFail(Site s)
{
    const auto i = static_cast<unsigned>(s);
    HS_ASSERT(i < kSiteCount, "bad fault site: ", i);
    const std::uint64_t n = ++stats_[i].probes; // occurrence, 1-based

    bool fail = false;
    if (!cfg_.script.empty()) {
        for (const auto &[site, occ] : cfg_.script) {
            if (site == s && occ == n) {
                fail = true;
                break;
            }
        }
    } else {
        const double rate = cfg_.effectiveRate(s);
        if (rate > 0.0) {
            const std::uint64_t h =
                harness::splitmix64(site_base_[i] + n);
            // Top 53 bits -> uniform double in [0,1).
            const double u =
                static_cast<double>(h >> 11) * 0x1.0p-53;
            fail = u < rate;
        }
    }

    if (fail) {
        stats_[i].injected++;
        pending_audit_ = true;
        if (probe_ != nullptr && clock_) {
            probe_->tracer.instant(
                obs::Cat::kChaos, "fault_injected", -1, clock_(),
                {{"site", static_cast<std::int64_t>(i)},
                 {"occurrence", static_cast<std::int64_t>(n)}});
        }
    }
    return fail;
}

void
FaultInjector::save(snap::Writer &w) const
{
    for (const SiteStats &st : stats_) {
        w.u64(st.probes);
        w.u64(st.injected);
    }
    w.u64(degradation_.hugeFallbacks);
    w.u64(degradation_.deferredPromotions);
    w.u64(degradation_.abortedCompactions);
    w.u64(degradation_.reclaimShortfalls);
    w.u64(degradation_.oomKills);
    w.b(pending_audit_);
}

void
FaultInjector::load(snap::Reader &r)
{
    for (SiteStats &st : stats_) {
        st.probes = r.u64();
        st.injected = r.u64();
    }
    degradation_.hugeFallbacks = r.u64();
    degradation_.deferredPromotions = r.u64();
    degradation_.abortedCompactions = r.u64();
    degradation_.reclaimShortfalls = r.u64();
    degradation_.oomKills = r.u64();
    pending_audit_ = r.b();
}

} // namespace hawksim::fault
