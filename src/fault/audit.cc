#include "fault/audit.hh"

#include <algorithm>
#include <vector>

#include "base/page_key.hh"
#include "base/types.hh"
#include "mem/phys.hh"
#include "obs/introspect.hh"
#include "sim/process.hh"
#include "sim/system.hh"
#include "vm/page_table.hh"

namespace hawksim::fault {

namespace {

constexpr const char *kViolationNames[] = {
    "pte-pfn-range",      "pte-free-frame",   "pte-owner",
    "frame-refcount",     "frame-leak",       "buddy-overlap",
    "buddy-misaligned",   "buddy-uncoalesced","buddy-zero-dirty",
    "buddy-counter-drift","buddy-flag-mismatch",
    "huge-misaligned",    "huge-shadow",      "pt-counter-drift",
    "tlb-incoherent",     "swap-mapped-slot", "swap-orphan",
    "swap-counter-drift", "snapshot-drift",
    "snapshot-roundtrip",
};

/**
 * Cross-check every live PTE against the frame table, then sweep the
 * frame table for refcount drift and leaked frames.
 */
void
auditFrames(sim::System &sys, AuditReport &rep)
{
    mem::PhysicalMemory &phys = sys.phys();
    const std::uint64_t frames = phys.totalFrames();
    std::vector<std::uint64_t> expected(frames, 0);

    for (auto &procp : sys.processes()) {
        sim::Process &proc = *procp;
        const auto pid = proc.pid();
        const vm::PageTable &pt = proc.space().pageTable();
        pt.forEachLeaf([&](Vpn vpn, const vm::Pte &e, bool huge) {
            const std::uint64_t n = huge ? kPagesPerHuge : 1;
            const Pfn pfn = e.pfn();
            if (pfn + n > frames) {
                HS_AUDIT_CHECK(rep, ViolationClass::kPtePfnRange,
                               pfn + n <= frames, "pid ", pid,
                               " vpn ", vpn, " pfn ", pfn);
                return;
            }
            for (Pfn p = pfn; p < pfn + n; p++) {
                const mem::ConstFrameRef f = phys.frame(p);
                expected[p]++;
                HS_AUDIT_CHECK(rep, ViolationClass::kPteFreeFrame,
                               !f.isFree(), "pid ", pid, " vpn ", vpn,
                               " pfn ", p);
                if (!f.isFree() && !f.isShared() && !e.zeroPage()) {
                    HS_AUDIT_CHECK(rep, ViolationClass::kPteOwner,
                                   f.ownerPid == pid, "pid ", pid,
                                   " vpn ", vpn, " pfn ", p,
                                   " owner ", f.ownerPid);
                }
            }
        });
    }

    for (Pfn p = 0; p < frames; p++) {
        const mem::ConstFrameRef f = phys.frame(p);
        if (f.isFree()) {
            HS_AUDIT_CHECK(rep, ViolationClass::kFrameRefcount,
                           expected[p] == 0, "free pfn ", p,
                           " has ", expected[p], " PTE refs");
            continue;
        }
        HS_AUDIT_CHECK(rep, ViolationClass::kFrameRefcount,
                       f.mapCount == expected[p], "pfn ", p,
                       " mapCount ", f.mapCount, " PTE refs ",
                       expected[p], " owner ", f.ownerPid);
        // Reserved frames (FreeBSD reservations) are legitimately
        // allocated ahead of being mapped; kernel-owned frames
        // (fragmenter pins, file cache, the zero page) have no PTEs.
        if (f.ownerPid >= 0 && f.mapCount == 0 && !f.isReserved()) {
            HS_AUDIT_CHECK(rep, ViolationClass::kFrameLeak, false,
                           "pfn ", p, " owner ", f.ownerPid,
                           " allocated but unmapped");
        }
    }
}

/** Free lists: disjoint, aligned, coalesced, zero-list really zero. */
void
auditBuddy(sim::System &sys, AuditReport &rep)
{
    mem::PhysicalMemory &phys = sys.phys();
    const mem::BuddyAllocator &buddy = phys.buddy();
    const std::uint64_t frames = phys.totalFrames();

    struct Blk
    {
        Pfn pfn;
        unsigned order;
        bool zeroed;
    };
    std::vector<Blk> blocks;
    std::uint64_t free_pages = 0;
    std::uint64_t zero_pages = 0;
    buddy.forEachFreeBlock([&](Pfn pfn, unsigned order, bool zeroed) {
        blocks.push_back({pfn, order, zeroed});
        free_pages += 1ull << order;
        if (zeroed)
            zero_pages += 1ull << order;
        HS_AUDIT_CHECK(rep, ViolationClass::kBuddyMisaligned,
                       (pfn & ((1ull << order) - 1)) == 0, "pfn ",
                       pfn, " order ", order);
        HS_AUDIT_CHECK(rep, ViolationClass::kBuddyOverlap,
                       pfn + (1ull << order) <= frames, "pfn ", pfn,
                       " order ", order, " past end of memory");
        if (zeroed) {
            for (Pfn p = pfn;
                 p < std::min<std::uint64_t>(pfn + (1ull << order),
                                             frames);
                 p++) {
                HS_AUDIT_CHECK(rep, ViolationClass::kBuddyZeroDirty,
                               phys.frame(p).content.isZero(),
                               "pfn ", p, " on zero list order ",
                               order);
            }
        }
    });

    std::sort(blocks.begin(), blocks.end(),
              [](const Blk &a, const Blk &b) { return a.pfn < b.pfn; });
    for (std::size_t i = 1; i < blocks.size(); i++) {
        const Blk &prev = blocks[i - 1];
        const Blk &cur = blocks[i];
        HS_AUDIT_CHECK(rep, ViolationClass::kBuddyOverlap,
                       prev.pfn + (1ull << prev.order) <= cur.pfn,
                       "blocks at pfn ", prev.pfn, "/", cur.pfn,
                       " orders ", prev.order, "/", cur.order);
    }
    // Same-order free buddies must have been coalesced (free() always
    // merges them, even across the zero / non-zero list split).
    for (const Blk &b : blocks) {
        if (b.order >= mem::BuddyAllocator::kMaxOrder)
            continue;
        const Pfn buddy_pfn = b.pfn ^ (1ull << b.order);
        if (b.pfn < buddy_pfn) {
            const bool merged_missed = std::binary_search(
                blocks.begin(), blocks.end(),
                Blk{buddy_pfn, 0, false},
                [&](const Blk &x, const Blk &y) {
                    return x.pfn < y.pfn;
                });
            if (merged_missed) {
                auto it = std::lower_bound(
                    blocks.begin(), blocks.end(), buddy_pfn,
                    [](const Blk &x, Pfn v) { return x.pfn < v; });
                HS_AUDIT_CHECK(rep,
                               ViolationClass::kBuddyUncoalesced,
                               it->order != b.order, "buddies at pfn ",
                               b.pfn, "/", buddy_pfn, " order ",
                               b.order, " left unmerged");
            }
        }
    }

    HS_AUDIT_CHECK(rep, ViolationClass::kBuddyCounterDrift,
                   free_pages == buddy.freePages(), "lists hold ",
                   free_pages, " pages, counter says ",
                   buddy.freePages());
    HS_AUDIT_CHECK(rep, ViolationClass::kBuddyCounterDrift,
                   zero_pages == buddy.freeZeroPages(),
                   "zero lists hold ", zero_pages,
                   " pages, counter says ", buddy.freeZeroPages());

    // Frame free-flag vs free-list membership, both directions.
    std::vector<bool> covered(frames, false);
    for (const Blk &b : blocks) {
        for (Pfn p = b.pfn;
             p < std::min<std::uint64_t>(b.pfn + (1ull << b.order),
                                         frames);
             p++)
            covered[p] = true;
    }
    for (Pfn p = 0; p < frames; p++) {
        if (covered[p] != phys.frame(p).isFree()) {
            HS_AUDIT_CHECK(rep, ViolationClass::kBuddyFlagMismatch,
                           false, "pfn ", p, " free-flag ",
                           phys.frame(p).isFree(),
                           " on-free-list ", covered[p]);
        }
    }
}

/** Page-table structure: alignment, shadows, counters. */
void
auditPageTables(sim::System &sys, AuditReport &rep)
{
    for (auto &procp : sys.processes()) {
        sim::Process &proc = *procp;
        const auto pid = proc.pid();
        proc.space().pageTable().auditStructure(
            [&](const char *tag, Vpn vpn, std::uint64_t value) {
                const std::string_view t(tag);
                if (t == "huge-shadow") {
                    HS_AUDIT_CHECK(rep, ViolationClass::kHugeShadow,
                                   false, "pid ", pid, " region vpn ",
                                   vpn, " has a PT node (", value,
                                   " live 4K entries) under a huge "
                                   "leaf");
                } else if (t == "huge-misaligned") {
                    HS_AUDIT_CHECK(rep,
                                   ViolationClass::kHugeMisaligned,
                                   false, "pid ", pid, " region vpn ",
                                   vpn, " block pfn ", value);
                } else {
                    HS_AUDIT_CHECK(rep,
                                   ViolationClass::kPtCounterDrift,
                                   false, "pid ", pid, " ", tag,
                                   " at vpn ", vpn, " recount ",
                                   value);
                }
            });
    }
}

/**
 * TLB entries recorded at the page table's current structural epoch
 * must agree with it; older entries are benignly stale (the model
 * ages them out instead of shooting them down).
 */
void
auditTlbs(sim::System &sys, AuditReport &rep)
{
    for (auto &procp : sys.processes()) {
        sim::Process &proc = *procp;
        tlb::TlbModel &tlb = proc.tlb();
        if (!tlb.auditLogEnabled())
            continue;
        const vm::PageTable &pt = proc.space().pageTable();
        const std::uint64_t epoch = pt.translationEpoch();
        for (const auto &[region, e] : tlb.auditLog2m()) {
            if (e != epoch)
                continue;
            HS_AUDIT_CHECK(rep, ViolationClass::kTlbIncoherent,
                           pt.isHuge(region), "pid ", proc.pid(),
                           " 2M TLB entry for region ", region,
                           " but PT mapping is not huge");
        }
        for (const auto &[vpn, e] : tlb.auditLog4k()) {
            if (e != epoch)
                continue;
            const vm::Translation t = pt.lookup(vpn);
            HS_AUDIT_CHECK(rep, ViolationClass::kTlbIncoherent,
                           t.present && !t.huge, "pid ", proc.pid(),
                           " 4K TLB entry for vpn ", vpn,
                           " but PT mapping is ",
                           t.present ? "huge" : "absent");
        }
    }
}

/** Swap slots: singly-owned, by a live process, counters coherent. */
void
auditSwap(sim::System &sys, AuditReport &rep)
{
    std::uint64_t entries = 0;
    for (const auto &[key, content] : sys.swappedMap()) {
        entries++;
        const auto pid =
            static_cast<std::int32_t>(key >> kPageKeyIndexBits);
        const Vpn vpn = key & kPageKeyIndexMask;
        sim::Process *proc = sys.findProcess(pid);
        if (proc == nullptr || proc->finished()) {
            HS_AUDIT_CHECK(rep, ViolationClass::kSwapOrphan, false,
                           "slot for pid ", pid, " vpn ", vpn,
                           " but the process is gone");
            continue;
        }
        const vm::Translation t =
            proc->space().pageTable().lookup(vpn);
        HS_AUDIT_CHECK(rep, ViolationClass::kSwapMappedSlot,
                       !t.present, "pid ", pid, " vpn ", vpn,
                       " is swapped out and mapped at once");
    }
    HS_AUDIT_CHECK(rep, ViolationClass::kSwapCounterDrift,
                   entries == sys.swappedPages(), "map holds ",
                   entries, " slots, counter says ",
                   sys.swappedPages());
    HS_AUDIT_CHECK(rep, ViolationClass::kSwapCounterDrift,
                   entries == sys.swap().usedPages(), "map holds ",
                   entries, " slots, device says ",
                   sys.swap().usedPages());
}

/**
 * The introspection layer must be ground truth: take a fresh
 * obs::snapshot() and reconcile every headline total against a
 * direct recount of the frame table, buddy lists, page tables and
 * swap map. Any drift means snapshot() or the counters it reads lie.
 */
void
auditSnapshot(sim::System &sys, AuditReport &rep)
{
    const obs::Snapshot s = obs::snapshot(sys);
    mem::PhysicalMemory &phys = sys.phys();
    const std::uint64_t frames = phys.totalFrames();

    HS_AUDIT_CHECK(rep, ViolationClass::kSnapshotDrift,
                   s.mem.totalFrames == frames &&
                       s.mem.freeFrames + s.mem.usedFrames == frames,
                   "meminfo totals: total ", s.mem.totalFrames,
                   " free ", s.mem.freeFrames, " used ",
                   s.mem.usedFrames);

    // buddyinfo vs a direct free-list walk.
    std::array<std::uint64_t, obs::kInspectOrders> blocks{};
    std::array<std::uint64_t, obs::kInspectOrders> zero_blocks{};
    std::uint64_t free_pages = 0;
    std::uint64_t zero_pages = 0;
    phys.buddy().forEachFreeBlock(
        [&](Pfn, unsigned order, bool zeroed) {
            blocks[order]++;
            free_pages += 1ull << order;
            if (zeroed) {
                zero_blocks[order]++;
                zero_pages += 1ull << order;
            }
        });
    HS_AUDIT_CHECK(rep, ViolationClass::kSnapshotDrift,
                   free_pages == s.mem.freeFrames, "free-list walk ",
                   free_pages, " pages, snapshot says ",
                   s.mem.freeFrames);
    HS_AUDIT_CHECK(rep, ViolationClass::kSnapshotDrift,
                   zero_pages == s.mem.freeZeroPages &&
                       s.mem.freeZeroPages + s.mem.freeNonZeroPages ==
                           s.mem.freeFrames,
                   "zero-list walk ", zero_pages,
                   " pages, snapshot says ", s.mem.freeZeroPages);
    for (unsigned o = 0; o < obs::kInspectOrders; o++) {
        HS_AUDIT_CHECK(rep, ViolationClass::kSnapshotDrift,
                       blocks[o] == s.buddy[o].freeBlocks &&
                           zero_blocks[o] == s.buddy[o].zeroBlocks,
                       "order ", o, " recount ", blocks[o], "/",
                       zero_blocks[o], " snapshot ",
                       s.buddy[o].freeBlocks, "/",
                       s.buddy[o].zeroBlocks);
    }

    // A KSM canonical frame stays charged to the original owner's
    // rssPages() counter while its ownerPid retargets to the latest
    // mapper, so the owned-frame recount below only exactly matches
    // rssPages() when no shared frames exist.
    bool any_shared = false;
    for (Pfn p = 0; p < frames && !any_shared; p++)
        any_shared = phys.frame(p).isShared();

    for (auto &procp : sys.processes()) {
        sim::Process &proc = *procp;
        const auto pid = proc.pid();
        const obs::ProcInfo *pi = nullptr;
        for (const obs::ProcInfo &cand : s.procs) {
            if (cand.pid == pid) {
                pi = &cand;
                break;
            }
        }
        HS_AUDIT_CHECK(rep, ViolationClass::kSnapshotDrift,
                       pi != nullptr, "pid ", pid,
                       " missing from snapshot");
        if (pi == nullptr)
            continue;

        // Page-table recount of the per-process totals.
        const vm::PageTable &pt = proc.space().pageTable();
        std::uint64_t pt_rss = 0;
        std::uint64_t pt_mapped = 0;
        std::uint64_t pt_huge = 0;
        pt.forEachLeaf([&](Vpn, const vm::Pte &e, bool huge) {
            if (huge) {
                pt_rss += kPagesPerHuge;
                pt_mapped += kPagesPerHuge;
                pt_huge++;
                return;
            }
            pt_mapped++;
            if (!e.zeroPage() && e.pfn() < frames &&
                !phys.frame(e.pfn()).isShared()) {
                pt_rss++;
            }
        });
        HS_AUDIT_CHECK(rep, ViolationClass::kSnapshotDrift,
                       pt_mapped == pi->mappedPages &&
                           pt_huge == pi->hugePages,
                       "pid ", pid, " PT recount mapped ", pt_mapped,
                       " huge ", pt_huge, " snapshot ",
                       pi->mappedPages, "/", pi->hugePages);

        // Frame-table recount of exclusively-owned frames.
        std::uint64_t frame_rss = 0;
        for (Pfn p = 0; p < frames; p++) {
            const mem::ConstFrameRef f = phys.frame(p);
            if (!f.isFree() && !f.isShared() && f.ownerPid == pid &&
                f.mapCount > 0) {
                frame_rss++;
            }
        }
        HS_AUDIT_CHECK(rep, ViolationClass::kSnapshotDrift,
                       pt_rss == frame_rss, "pid ", pid,
                       " PT-walk rss ", pt_rss, " frame-table rss ",
                       frame_rss);
        if (!any_shared) {
            HS_AUDIT_CHECK(rep, ViolationClass::kSnapshotDrift,
                           pi->rssPages == pt_rss, "pid ", pid,
                           " snapshot rss ", pi->rssPages,
                           " recount ", pt_rss);
        }

        // smaps/pagemap views must both re-aggregate to the totals.
        std::uint64_t vma_mapped = 0;
        for (const obs::VmaInfo &vi : pi->vmas)
            vma_mapped += vi.mappedPages;
        std::uint64_t region_mapped = 0;
        for (const obs::RegionInfo &ri : pi->regions)
            region_mapped += ri.population;
        HS_AUDIT_CHECK(rep, ViolationClass::kSnapshotDrift,
                       vma_mapped == pi->mappedPages &&
                           region_mapped == pi->mappedPages,
                       "pid ", pid, " smaps sum ", vma_mapped,
                       " pagemap sum ", region_mapped,
                       " mapped ", pi->mappedPages);
    }

    // Swap occupancy: snapshot vs map vs device.
    std::uint64_t snap_swapped = 0;
    for (const obs::ProcInfo &pi : s.procs)
        snap_swapped += pi.swappedPages;
    HS_AUDIT_CHECK(rep, ViolationClass::kSnapshotDrift,
                   snap_swapped == sys.swappedMap().size() &&
                       s.mem.swappedPages == snap_swapped &&
                       s.mem.swapUsedPages == snap_swapped,
                   "per-proc swapped sum ", snap_swapped,
                   " map ", sys.swappedMap().size(), " meminfo ",
                   s.mem.swappedPages, " device ",
                   s.mem.swapUsedPages);
}

} // namespace

const char *
violationName(ViolationClass c)
{
    const auto i = static_cast<unsigned>(c);
    HS_ASSERT(i < std::size(kViolationNames),
              "bad violation class: ", i);
    return kViolationNames[i];
}

std::string
AuditReport::summary(std::size_t max_lines) const
{
    std::string out;
    std::size_t n = 0;
    for (const auto &v : violations) {
        if (n++ == max_lines) {
            out += detail::concat("... and ", violations.size() - n + 1,
                                  " more\n");
            break;
        }
        out += detail::concat("[", violationName(v.cls), "] ",
                              v.detail, "\n");
    }
    return out;
}

AuditReport
Auditor::audit(sim::System &sys) const
{
    AuditReport rep;
    auditFrames(sys, rep);
    auditBuddy(sys, rep);
    auditPageTables(sys, rep);
    auditTlbs(sys, rep);
    auditSwap(sys, rep);
    auditSnapshot(sys, rep);
    audits_run_++;
    return rep;
}

} // namespace hawksim::fault
