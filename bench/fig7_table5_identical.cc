/**
 * @file
 * Figure 7 + Table 5: three identical instances (Graph500, then
 * XSBench) running concurrently after fragmentation.
 *
 * Linux's khugepaged serves processes FCFS — one instance gets all
 * its huge pages before the next sees any (performance imbalance).
 * Ingens splits contiguity proportionally but scans low-to-high VAs,
 * missing the hot regions. HawkEye promotes the globally hottest
 * regions round-robin across instances: fair AND fast.
 *
 * Expected shape (paper, Table 5): Linux ~1.02-1.06x average speedup
 * over Linux-4KB (one instance served at a time, imbalanced mid-run
 * MMU overheads), Ingens ~1.00-1.02x, HawkEye ~1.13-1.15x with
 * balanced overheads across the three instances. Speedups derive
 * from the Linux-4KB rows.
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

harness::RunOutput
run(const harness::RunContext &ctx)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(6);
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    cfg.metricsPeriod = sec(1);
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(ctx.param("policy")));
    sys.fragmentMemoryMovable(1.0, 64);
    sys.costs().promotionsPerSec = 8.0;

    const workload::Scale s{12};
    const std::string &wl_name = ctx.param("workload");
    for (int i = 0; i < 3; i++) {
        auto wl = wl_name == "Graph500"
                      ? workload::makeGraph500(sys.rng().fork(), s,
                                               120)
                      : workload::makeXSBench(sys.rng().fork(), s,
                                              120);
        sys.addProcess(wl_name + "-" + std::to_string(i + 1),
                       std::move(wl));
    }
    sys.runUntilAllDone(sec(1200));

    harness::RunOutput out;
    int i = 0;
    for (auto &proc : sys.processes()) {
        i++;
        std::string runtime_name = "runtime_s_";
        runtime_name += std::to_string(i);
        out.scalar(runtime_name,
                   static_cast<double>(proc->runtime()) / 1e9);
        // MMU overhead of the instance halfway through the run.
        std::string mmu_name = "p";
        mmu_name += std::to_string(proc->pid());
        mmu_name += ".mmu_overhead";
        const auto &mmu = sys.metrics().series(mmu_name);
        double mid = 0.0;
        for (const auto &pt : mmu.points()) {
            if (static_cast<double>(pt.time) / 1e9 > 60.0)
                break;
            mid = pt.value;
        }
        std::string mid_name = "mmu_at_60s_";
        mid_name += std::to_string(i);
        out.scalar(mid_name, mid);
    }
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

} // namespace

namespace bench {

void
registerFig7Table5Identical(harness::Registry &reg)
{
    reg.add("fig7_table5_identical",
            "Table 5 / Fig 7: three identical instances, fragmented "
            "start (1/12 scale)")
        .axis("workload", {"Graph500", "XSBench"})
        .axis("policy", {"Linux-4KB", "Linux-2MB", "Ingens-90%",
                         "HawkEye-PMU", "HawkEye-G"})
        .run(run);
}

} // namespace bench
