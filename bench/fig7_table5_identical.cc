/**
 * @file
 * Figure 7 + Table 5: three identical instances (Graph500, then
 * XSBench) running concurrently after fragmentation.
 *
 * Linux's khugepaged serves processes FCFS — one instance gets all
 * its huge pages before the next sees any (performance imbalance).
 * Ingens splits contiguity proportionally but scans low-to-high VAs,
 * missing the hot regions. HawkEye promotes the globally hottest
 * regions round-robin across instances: fair AND fast.
 */

#include "bench_common.hh"

using namespace bench;

namespace {

struct InstanceOut
{
    std::vector<double> runtimeSec;
    /** MMU overhead of each instance halfway through the run. */
    std::vector<double> midMmuPct;
};

InstanceOut
run(const std::string &policy_name, const std::string &wl_name)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(6);
    cfg.seed = 31;
    cfg.metricsPeriod = sec(1);
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy_name));
    sys.fragmentMemoryMovable(1.0, 64);
    sys.costs().promotionsPerSec = 8.0;

    const workload::Scale s{12};
    for (int i = 0; i < 3; i++) {
        auto wl = wl_name == "Graph500"
                      ? workload::makeGraph500(sys.rng().fork(), s,
                                               120)
                      : workload::makeXSBench(sys.rng().fork(), s,
                                              120);
        sys.addProcess(wl_name + "-" + std::to_string(i + 1),
                       std::move(wl));
    }
    sys.runUntilAllDone(sec(1200));

    InstanceOut out;
    for (auto &proc : sys.processes()) {
        out.runtimeSec.push_back(
            static_cast<double>(proc->runtime()) / 1e9);
        const auto &mmu = sys.metrics().series(
            "p" + std::to_string(proc->pid()) + ".mmu_overhead");
        double mid = 0.0;
        for (const auto &pt : mmu.points()) {
            if (static_cast<double>(pt.time) / 1e9 > 60.0)
                break;
            mid = pt.value;
        }
        out.midMmuPct.push_back(mid);
    }
    return out;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Table 5 / Figure 7: three identical instances, "
           "fragmented start (1/12 scale)",
           "HawkEye (ASPLOS'19), Table 5 and Figure 7");

    for (const std::string wl : {"Graph500", "XSBench"}) {
        const InstanceOut base = run("Linux-4KB", wl);
        const double base_avg = (base.runtimeSec[0] +
                                 base.runtimeSec[1] +
                                 base.runtimeSec[2]) /
                                3.0;
        std::printf("\n%s x3 (Linux-4KB baseline avg %.0fs):\n",
                    wl.c_str(), base_avg);
        printRow({"Policy", "T1(s)", "T2(s)", "T3(s)", "AvgSpeedup",
                  "MMU@60s 1/2/3"},
                 15);
        for (const std::string pol :
             {"Linux-2MB", "Ingens-90%", "HawkEye-PMU",
              "HawkEye-G"}) {
            const InstanceOut r = run(pol, wl);
            const double avg = (r.runtimeSec[0] + r.runtimeSec[1] +
                                r.runtimeSec[2]) /
                               3.0;
            printRow({pol, fmt(r.runtimeSec[0], 0),
                      fmt(r.runtimeSec[1], 0),
                      fmt(r.runtimeSec[2], 0),
                      fmt(base_avg / avg, 3),
                      fmt(r.midMmuPct[0], 0) + "/" +
                          fmt(r.midMmuPct[1], 0) + "/" +
                          fmt(r.midMmuPct[2], 0)},
                     15);
        }
    }
    std::printf(
        "\nExpected shape (paper, Table 5): Linux ~1.02-1.06x (one "
        "instance at a time, imbalanced mid-run MMU overheads), "
        "Ingens ~1.00-1.02x, HawkEye ~1.13-1.15x with balanced "
        "overheads across the three instances.\n");
    return 0;
}
