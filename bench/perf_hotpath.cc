/**
 * @file
 * `hawksim_bench --wallclock` — wall-clock cost of the simulator's
 * translation hot path.
 *
 * Every other number the bench emits is *simulated* time; this mode
 * measures the real ns the simulator spends per simulated access,
 * which is the quantity the translation cache and the fused
 * `lookupAndTouch` walk exist to shrink. The driver replays the
 * table2 TLB-sensitivity grid (79 application profiles x {4kb, 2mb})
 * against a bare PageTable + TlbModel — no System, no daemons — so
 * the measurement isolates exactly the `TlbModel::simulate` path that
 * dominates full-system runs.
 *
 * Two metrics are timed per grid point, each interleaved
 * cached/uncached per repetition to cancel machine drift (the
 * uncached variant disables the cache at runtime; that path is the
 * seed's literal two-walk lookup-then-touch sequence, equivalent to a
 * -DHAWKSIM_NO_TCACHE build):
 *
 *   - walk:     the translation hot path alone — `lookupAndTouch`
 *               over the access stream. This is the code the cache
 *               and the fused API exist to accelerate, and the
 *               headline speedup number.
 *   - simulate: the full `TlbModel::simulate` batch (translation plus
 *               TLB-hierarchy bookkeeping), i.e. the end-to-end cost
 *               of one simulated access in a system run.
 *
 * Min and median ns-per-access for both variants of both metrics go
 * to BENCH_PR8.json, along with a per-stage breakdown (translate /
 * tlb-probe / touch / tracker ns-per-access) so a future regression
 * is attributable to one stage. Wall-clock numbers vary run to run —
 * only the cached/uncached *ratio* is meaningful across machines.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "experiments.hh"
#include "harness/cli.hh"
#include "harness/json.hh"
#include "hawksim.hh"
#include "workload/suite.hh"

using namespace hawksim;

namespace {

/** Accesses per timed repetition (sample batch x iterations). */
constexpr std::size_t kBatchSamples = 4096;
constexpr std::size_t kBatchIters = 16;

/** Footprint cap: the driver measures translation, not setup. */
constexpr std::uint64_t kMaxPages = 32768; // 128 MiB of 4KB pages

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

/**
 * One grid point: an application profile mapped at one page size,
 * plus its pre-generated deterministic access stream.
 */
struct HotpathPoint
{
    std::string app;
    bool huge = false;
    vm::PageTable pt;
    std::vector<tlb::AccessSample> batch;
    double sequentiality = 0.0;

    HotpathPoint(const workload::SuiteApp &a, bool huge_pages,
                 std::uint64_t seed)
        : app(a.name), huge(huge_pages)
    {
        const workload::StreamConfig &cfg = a.config;
        const std::uint64_t pages = std::clamp<std::uint64_t>(
            cfg.footprintBytes / kPageSize, 512, kMaxPages);
        std::uint64_t wss_pages =
            cfg.wssBytes ? cfg.wssBytes / kPageSize : pages;
        wss_pages = std::clamp<std::uint64_t>(wss_pages, 1, pages);

        // Map the footprint; frame numbers are irrelevant here.
        const Vpn base = addrToVpn(GiB(256));
        mappedPages = pages;
        if (huge) {
            for (Vpn v = base; v < base + pages; v += kPagesPerHuge)
                pt.mapHuge(v, v, 0);
        } else {
            for (Vpn v = base; v < base + pages; v++)
                pt.mapBase(v, v, 0);
        }

        // A stream shaped by the profile: sequential component,
        // Zipf skew and per-region coverage, like StreamWorkload.
        Rng rng(seed);
        std::uint64_t seq_pos = 0;
        batch.reserve(kBatchSamples);
        for (std::size_t i = 0; i < kBatchSamples; i++) {
            std::uint64_t idx;
            if (rng.chance(cfg.sequentialFraction))
                idx = seq_pos++ % wss_pages;
            else if (cfg.zipfS > 0.0)
                idx = rng.zipf(wss_pages, cfg.zipfS);
            else
                idx = rng.below(wss_pages);
            if (cfg.coveragePages < 512)
                idx = (idx & ~511ull) | (idx & 511) % cfg.coveragePages;
            batch.push_back({base + idx, rng.chance(0.3)});
        }
        sequentiality = cfg.sequentialFraction;
    }

    /** Translation hot path alone: ns per lookupAndTouch. */
    double
    timeWalkRep()
    {
        std::uint64_t sink = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t it = 0; it < kBatchIters; it++) {
            for (const auto &a : batch)
                sink += pt.lookupAndTouch(a.vpn, a.write).pfn;
        }
        const auto t1 = std::chrono::steady_clock::now();
        return perAccessNs(t0, t1, sink);
    }

    /** Full TLB batch: ns per simulated access end to end. */
    double
    timeSimulateRep()
    {
        tlb::TlbModel tlb; // fresh TLB: every rep does identical work
        std::uint64_t sink = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t it = 0; it < kBatchIters; it++) {
            sink += tlb.simulate(pt, batch, sequentiality).walkCycles;
        }
        const auto t1 = std::chrono::steady_clock::now();
        return perAccessNs(t0, t1, sink);
    }

    /**
     * Accessed-bit shadow touches (`Process::tick`'s touch stage):
     * ns per `PageTable::touch`.
     */
    double
    timeTouchRep()
    {
        std::uint64_t sink = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t it = 0; it < kBatchIters; it++) {
            for (const auto &a : batch)
                sink += pt.touch(a.vpn, false) ? 1 : 0;
        }
        const auto t1 = std::chrono::steady_clock::now();
        return perAccessNs(t0, t1, sink);
    }

    /**
     * Access-tracker sampling stage: one `regionView` scan plus one
     * EMA step per mapped region, i.e. the work
     * `AccessTracker::readPhase` does per sampling window, amortized
     * over the rep's accesses (how it shows up in a system run,
     * where one window covers many access batches).
     */
    double
    timeTrackerRep()
    {
        const std::uint64_t first = addrToVpn(GiB(256)) >> 9;
        std::vector<Ema> emas(regionCount(), Ema{0.4});
        std::uint64_t sink = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t it = 0; it < kBatchIters; it++) {
            for (std::size_t r = 0; r < emas.size(); r++) {
                const vm::PageTable::RegionView rv =
                    pt.regionView(first + r);
                sink += rv.accessed;
                emas[r].update(static_cast<double>(rv.accessed));
            }
        }
        const auto t1 = std::chrono::steady_clock::now();
        sink += static_cast<std::uint64_t>(emas.back().value());
        return perAccessNs(t0, t1, sink);
    }

    std::size_t
    regionCount() const
    {
        // Footprint in 2MB regions (>= 1; the batch maps >= 512
        // base pages).
        return (mappedPages + 511) / 512;
    }

    std::uint64_t mappedPages = 0;

  private:
    static double
    perAccessNs(std::chrono::steady_clock::time_point t0,
                std::chrono::steady_clock::time_point t1,
                std::uint64_t sink)
    {
        // Keep the result observable so the loop cannot be elided.
        static volatile std::uint64_t g_sink = 0;
        g_sink = g_sink + sink;
        const double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t1 - t0)
                .count());
        return ns /
               static_cast<double>(kBatchSamples * kBatchIters);
    }
};

} // namespace

namespace bench {

int
runWallclockHotpath(const hawksim::harness::WallclockMode &mode)
{
    const auto catalog = workload::table2Catalog();
    const bool compiled_in =
        vm::PageTable::translationCacheCompiledIn();

    harness::Json points = harness::Json::array();
    std::vector<double> walk_c_medians, walk_u_medians;
    std::vector<double> sim_c_medians, sim_u_medians;
    std::vector<double> stage_probe_medians, stage_touch_medians;
    std::vector<double> stage_tracker_medians;

    std::size_t done = 0;
    const std::size_t total = catalog.size() * 2;
    for (const auto &app : catalog) {
        for (const bool huge : {false, true}) {
            HotpathPoint point(app, huge,
                               0x9e3779b9 + done * 0x85ebca77);
            // Warm-up rep (page-table flag writes, cache fill).
            vm::PageTable::setTranslationCacheEnabled(true);
            point.timeWalkRep();
            point.timeSimulateRep();
            std::vector<double> walk_c, walk_u, sim_c, sim_u;
            std::vector<double> touch_ns, tracker_ns;
            for (unsigned r = 0; r < mode.repeat; r++) {
                vm::PageTable::setTranslationCacheEnabled(true);
                walk_c.push_back(point.timeWalkRep());
                sim_c.push_back(point.timeSimulateRep());
                touch_ns.push_back(point.timeTouchRep());
                tracker_ns.push_back(point.timeTrackerRep());
                vm::PageTable::setTranslationCacheEnabled(false);
                walk_u.push_back(point.timeWalkRep());
                sim_u.push_back(point.timeSimulateRep());
            }
            vm::PageTable::setTranslationCacheEnabled(true);

            const double wc_med = median(walk_c);
            const double wu_med = median(walk_u);
            const double sc_med = median(sim_c);
            const double su_med = median(sim_u);
            const double touch_med = median(touch_ns);
            const double tracker_med = median(tracker_ns);
            // Stage attribution: translate is measured directly; the
            // probe stage is the remainder of the simulate batch
            // (set-assoc probes, walk-cost model, accounting) after
            // the translate stage it embeds.
            const double probe_med = std::max(sc_med - wc_med, 0.0);
            walk_c_medians.push_back(wc_med);
            walk_u_medians.push_back(wu_med);
            sim_c_medians.push_back(sc_med);
            sim_u_medians.push_back(su_med);
            stage_probe_medians.push_back(probe_med);
            stage_touch_medians.push_back(touch_med);
            stage_tracker_medians.push_back(tracker_med);

            harness::Json p = harness::Json::object();
            p.set("app", app.name);
            p.set("pages", huge ? "2mb" : "4kb");
            p.set("walk_cached_ns_min",
                  *std::min_element(walk_c.begin(), walk_c.end()));
            p.set("walk_cached_ns_median", wc_med);
            p.set("walk_uncached_ns_min",
                  *std::min_element(walk_u.begin(), walk_u.end()));
            p.set("walk_uncached_ns_median", wu_med);
            p.set("walk_speedup_median", wu_med / wc_med);
            p.set("simulate_cached_ns_median", sc_med);
            p.set("simulate_uncached_ns_median", su_med);
            p.set("simulate_speedup_median", su_med / sc_med);
            // Per-stage breakdown (cached variant, ns per access):
            // translate (lookupAndTouch), tlb-probe (simulate minus
            // its embedded translate), touch (accessed-bit shadow
            // sample), tracker (region scan + EMA, amortized).
            p.set("stage_translate_ns", wc_med);
            p.set("stage_tlb_probe_ns", probe_med);
            p.set("stage_touch_ns", touch_med);
            p.set("stage_tracker_ns", tracker_med);
            points.push(std::move(p));

            done++;
            if (!mode.quiet && done % 20 == 0) {
                std::fprintf(stderr, "wallclock: %zu/%zu points\n",
                             done, total);
            }
        }
    }

    const double wc_grid = median(walk_c_medians);
    const double wu_grid = median(walk_u_medians);
    const double sc_grid = median(sim_c_medians);
    const double su_grid = median(sim_u_medians);

    harness::Json root = harness::Json::object();
    root.set("schema", "hawksim-wallclock/v1");
    root.set("bench", "perf_hotpath");
    root.set("grid", "table2_tlb_sensitivity");
    root.set("repeat", static_cast<std::uint64_t>(mode.repeat));
    root.set("accesses_per_rep",
             static_cast<std::uint64_t>(kBatchSamples * kBatchIters));
    root.set("tcache_compiled_in", compiled_in);
    harness::Json summary = harness::Json::object();
    summary.set("walk_cached_ns_per_access_median", wc_grid);
    summary.set("walk_uncached_ns_per_access_median", wu_grid);
    summary.set("walk_speedup_median", wu_grid / wc_grid);
    summary.set("simulate_cached_ns_per_access_median", sc_grid);
    summary.set("simulate_uncached_ns_per_access_median", su_grid);
    summary.set("simulate_speedup_median", su_grid / sc_grid);
    // Stage medians across the grid (see the per-point keys). The
    // BENCH_PR3 summary keys above are unchanged for comparability.
    summary.set("stage_translate_ns_per_access_median", wc_grid);
    summary.set("stage_tlb_probe_ns_per_access_median",
                median(stage_probe_medians));
    summary.set("stage_touch_ns_per_access_median",
                median(stage_touch_medians));
    summary.set("stage_tracker_ns_per_access_median",
                median(stage_tracker_medians));
    root.set("summary", std::move(summary));
    root.set("points", std::move(points));

    std::ofstream os(mode.out,
                     std::ios::binary | std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     mode.out.c_str());
        return 1;
    }
    os << root.dumpPretty() << "\n";
    if (!os.good())
        return 1;

    std::printf("wallclock hot path (%zu points, repeat %u):\n"
                "  walk:     cached %.1f ns/access, uncached %.1f "
                "ns/access (%.2fx)\n"
                "  simulate: cached %.1f ns/access, uncached %.1f "
                "ns/access (%.2fx)\n"
                "report: %s\n",
                total, mode.repeat, wc_grid, wu_grid,
                wu_grid / wc_grid, sc_grid, su_grid, su_grid / sc_grid,
                mode.out.c_str());
    if (!compiled_in) {
        std::printf("note: built with HAWKSIM_NO_TCACHE; both "
                    "variants ran the uncached path\n");
    }
    return 0;
}

} // namespace bench
