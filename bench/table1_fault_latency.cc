/**
 * @file
 * Table 1: page faults, allocation latency and performance for the
 * touch-one-byte-per-page microbenchmark (~100GB of allocation in
 * the paper; scaled 1/8 here).
 *
 * Columns reproduce the paper's five configurations:
 *   Linux-4KB / Linux-2MB (sync zeroing), Ingens-90% (async
 *   promotion), and the no-page-zeroing variants, realized in
 *   HawkSim as HawkEye's async pre-zeroed free lists (4KB and 2MB).
 */

#include "bench_common.hh"

using namespace bench;

namespace {

struct Result
{
    std::string config;
    std::uint64_t faults;
    double totalFaultSec;
    double avgFaultUs;
    double totalSec;
};

Result
run(const std::string &config)
{
    // Keep the paper's memory:buffer ratio (96GB : 10GB, here /8):
    // most allocations can then come from boot-zeroed / pre-zeroed
    // free lists, as on the authors' testbed.
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(12);
    cfg.seed = 101;
    sim::System sys(cfg);

    std::unique_ptr<policy::HugePagePolicy> pol;
    if (config == "HawkEye-4KB") {
        // Pre-zeroing without huge pages: base faults from the zero
        // lists ("no page-zeroing Linux-4KB" in Table 1).
        core::HawkEyeConfig c;
        c.faultHuge = false;
        pol = std::make_unique<core::HawkEyePolicy>(c);
    } else if (config == "HawkEye-2MB") {
        pol = std::make_unique<core::HawkEyePolicy>();
    } else {
        pol = makePolicy(config);
    }
    sys.setPolicy(std::move(pol));

    // 10GB buffer touched one byte per page, x10 runs => 100GB of
    // allocations (scaled 1/8: 1.25GB x 10).
    workload::LinearTouchConfig lc;
    lc.bytes = GiB(10) / 8;
    lc.iterations = 10;
    lc.workPerPage = 500;
    auto &proc = sys.addProcess(
        "touch", std::make_unique<workload::LinearTouchWorkload>(
                     "touch", lc, sys.rng().fork()));
    sys.runUntilAllDone(sec(4000));

    Result r;
    r.config = config;
    r.faults = proc.pageFaults();
    r.totalFaultSec = static_cast<double>(proc.faultTime()) / 1e9;
    r.avgFaultUs = proc.pageFaults()
                       ? static_cast<double>(proc.faultTime()) / 1e3 /
                             static_cast<double>(proc.pageFaults())
                       : 0.0;
    r.totalSec = static_cast<double>(proc.runtime()) / 1e9;
    return r;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Table 1: page-fault cost of the linear-touch "
           "microbenchmark (1/8 scale)",
           "HawkEye (ASPLOS'19), Table 1");

    printRow({"Config", "#Faults", "FaultTime(s)", "AvgFault(us)",
              "Total(s)"});
    printRow({"------", "-------", "------------", "------------",
              "--------"});
    for (const std::string config :
         {"Linux-4KB", "Linux-2MB", "Ingens-90%", "HawkEye-4KB",
          "HawkEye-2MB"}) {
        const Result r = run(config);
        printRow({r.config, fmtInt(r.faults), fmt(r.totalFaultSec, 1),
                  fmt(r.avgFaultUs, 2), fmt(r.totalSec, 1)});
    }
    std::printf(
        "\nExpected shape (paper): Linux-2MB cuts faults ~512x vs "
        "Linux-4KB but pays ~465us per fault; Ingens keeps base-page "
        "fault counts (slowest overall); async pre-zeroing (HawkEye-"
        "2MB) gets few faults AND low latency -> fastest.\n");
    return 0;
}
