/**
 * @file
 * Table 1: page faults, allocation latency and performance for the
 * touch-one-byte-per-page microbenchmark (~100GB of allocation in
 * the paper; scaled 1/8 here).
 *
 * The config axis reproduces the paper's five configurations:
 *   Linux-4KB / Linux-2MB (sync zeroing), Ingens-90% (async
 *   promotion), and the no-page-zeroing variants, realized in
 *   HawkSim as HawkEye's async pre-zeroed free lists (4KB and 2MB).
 *
 * Expected shape (paper): Linux-2MB cuts faults ~512x vs Linux-4KB
 * but pays ~465us per fault; Ingens keeps base-page fault counts
 * (slowest overall); async pre-zeroing (HawkEye-2MB) gets few
 * faults AND low latency -> fastest.
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

harness::RunOutput
run(const harness::RunContext &ctx)
{
    // Keep the paper's memory:buffer ratio (96GB : 10GB, here /8):
    // most allocations can then come from boot-zeroed / pre-zeroed
    // free lists, as on the authors' testbed.
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(12);
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(ctx.param("config")));

    // 10GB buffer touched one byte per page, x10 runs => 100GB of
    // allocations (scaled 1/8: 1.25GB x 10).
    workload::LinearTouchConfig lc;
    lc.bytes = GiB(10) / 8;
    lc.iterations = 10;
    lc.workPerPage = 500;
    auto &proc = sys.addProcess(
        "touch", std::make_unique<workload::LinearTouchWorkload>(
                     "touch", lc, sys.rng().fork()));
    sys.runUntilAllDone(sec(4000));

    harness::RunOutput out;
    out.scalar("faults", static_cast<double>(proc.pageFaults()));
    out.scalar("fault_time_s",
               static_cast<double>(proc.faultTime()) / 1e9);
    out.scalar("avg_fault_us",
               proc.pageFaults()
                   ? static_cast<double>(proc.faultTime()) / 1e3 /
                         static_cast<double>(proc.pageFaults())
                   : 0.0);
    out.scalar("total_s",
               static_cast<double>(proc.runtime()) / 1e9);
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

} // namespace

namespace bench {

void
registerTable1FaultLatency(harness::Registry &reg)
{
    reg.add("table1_fault_latency",
            "Table 1: page-fault cost of the linear-touch "
            "microbenchmark (1/8 scale)")
        .axis("config", {"Linux-4KB", "Linux-2MB", "Ingens-90%",
                         "HawkEye-4KB", "HawkEye-2MB"})
        .run(run);
}

} // namespace bench
