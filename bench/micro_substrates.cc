/**
 * @file
 * google-benchmark microbenchmarks of the substrate data structures:
 * buddy allocation, page-table surgery, TLB simulation, zero
 * scanning and access_map updates. These guard against performance
 * regressions in the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

void
BM_BuddyAllocFree(benchmark::State &state)
{
    mem::BuddyAllocator buddy(1 << 20);
    const auto order = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto blk = buddy.alloc(order, mem::ZeroPref::kAny);
        benchmark::DoNotOptimize(blk);
        buddy.free(blk->pfn, blk->order, blk->zeroed);
    }
}
BENCHMARK(BM_BuddyAllocFree)->Arg(0)->Arg(9);

void
BM_BuddyFragmentedAlloc(benchmark::State &state)
{
    mem::BuddyAllocator buddy(1 << 18);
    Rng rng(1);
    // Dice the memory into a random mix of held blocks.
    std::vector<mem::BuddyBlock> held;
    for (int i = 0; i < 20000; i++) {
        auto blk = buddy.alloc(static_cast<unsigned>(rng.below(4)),
                               mem::ZeroPref::kAny);
        if (blk)
            held.push_back(*blk);
    }
    for (std::size_t i = 0; i < held.size(); i += 2)
        buddy.free(held[i].pfn, held[i].order, false);
    for (auto _ : state) {
        auto blk = buddy.alloc(0, mem::ZeroPref::kPreferZero);
        benchmark::DoNotOptimize(blk);
        if (blk)
            buddy.free(blk->pfn, 0, false);
    }
}
BENCHMARK(BM_BuddyFragmentedAlloc);

void
BM_PageTableMapUnmap(benchmark::State &state)
{
    vm::PageTable pt;
    Vpn vpn = 0;
    for (auto _ : state) {
        pt.mapBase(vpn, vpn);
        pt.unmapBase(vpn);
        vpn = (vpn + 4097) & ((1ull << 30) - 1);
    }
}
BENCHMARK(BM_PageTableMapUnmap);

void
BM_PageTableLookup(benchmark::State &state)
{
    vm::PageTable pt;
    for (Vpn v = 0; v < (1 << 16); v++)
        pt.mapBase(v, v);
    Rng rng(2);
    for (auto _ : state) {
        auto t = pt.lookup(rng.below(1 << 16));
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_PageTableLookup);

void
BM_PromoteDemote(benchmark::State &state)
{
    vm::PageTable pt;
    for (Vpn v = 0; v < 512; v++)
        pt.mapBase(v, v);
    for (auto _ : state) {
        pt.promote(0, 0);
        pt.demote(0);
    }
}
BENCHMARK(BM_PromoteDemote);

void
BM_TlbSimulate(benchmark::State &state)
{
    vm::PageTable pt;
    const std::uint64_t pages = 1 << 18;
    for (Vpn v = 0; v < pages; v++)
        pt.mapBase(v, v);
    tlb::TlbModel model;
    Rng rng(3);
    std::vector<tlb::AccessSample> batch;
    for (int i = 0; i < 512; i++)
        batch.push_back({rng.below(pages), false});
    for (auto _ : state) {
        auto res = model.simulate(pt, batch, 0.0, 100.0);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_TlbSimulate);

void
BM_ZeroScan(benchmark::State &state)
{
    mem::ContentGenerator gen(Rng(4));
    std::vector<mem::PageContent> pages;
    for (int i = 0; i < 512; i++)
        pages.push_back(i % 4 ? gen.data() : mem::PageContent::zero());
    for (auto _ : state) {
        std::uint64_t bytes = 0;
        for (const auto &c : pages)
            bytes += mem::zeroScanCostBytes(c);
        benchmark::DoNotOptimize(bytes);
    }
}
BENCHMARK(BM_ZeroScan);

void
BM_AccessMapUpdate(benchmark::State &state)
{
    core::AccessMap map;
    Rng rng(5);
    for (auto _ : state) {
        map.update(rng.below(4096),
                   static_cast<double>(rng.below(513)));
    }
}
BENCHMARK(BM_AccessMapUpdate);

void
BM_SystemTick(benchmark::State &state)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(512);
    cfg.metricsPeriod = 0;
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(128);
    wc.workSeconds = 1e9;
    sys.addProcess("w", std::make_unique<workload::StreamWorkload>(
                            "w", wc, Rng(6)));
    sys.run(sec(1)); // warm up / finish init
    for (auto _ : state)
        sys.tick();
}
BENCHMARK(BM_SystemTick);

} // namespace

BENCHMARK_MAIN();
