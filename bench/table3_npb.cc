/**
 * @file
 * Table 3: memory characteristics, address-translation overheads and
 * huge-page speedups for the NPB workload profiles — the evidence
 * that working-set size does NOT predict MMU overhead (§2.4).
 *
 * mg.D has a ~24GB WSS but walks sequentially (prefetch hides walk
 * latency); cg.D has a ~8GB WSS of random gathers and suffers ~39%
 * walk cycles. The "virtual" rows run the same profiles under a
 * nested (2-D) translation configuration. Speedups derive from the
 * pages=4kb rows at matching translation.
 *
 * miss_pct is the TLB miss rate of the sampled access stream;
 * sampling sparsity inflates it uniformly — compare across rows,
 * not against the paper's per-instruction rates.
 *
 * Expected shape (paper): cg.D (small-ish WSS, random) has by far
 * the highest overhead (~39% cycles, 1.62x native / 2.7x virtual
 * speedup); mg.D (largest WSS, sequential) has ~1%; virtualized
 * speedups exceed native ones (nested walks amplify translation
 * costs).
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

harness::RunOutput
run(const harness::RunContext &ctx)
{
    const std::string &which = ctx.param("workload");
    const bool thp = ctx.param("pages") == "2mb";
    const bool virt = ctx.param("translation") == "virtual";

    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(6);
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    sim::System sys(cfg);
    policy::LinuxConfig lc;
    lc.thp = thp;
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>(lc));
    auto wl = workload::makeNpb(which, sys.rng().fork(),
                                workload::Scale{8}, 40);
    auto &proc =
        virt ? sys.addProcess(which, std::move(wl),
                              tlb::TlbConfig::haswellVirtualized())
             : sys.addProcess(which, std::move(wl));
    sys.runUntilAllDone(sec(600));

    harness::RunOutput out;
    out.scalar("runtime_s",
               static_cast<double>(proc.runtime()) / 1e9);
    out.scalar("mmu_pct", proc.mmuOverheadPct());
    out.scalar("miss_pct", proc.counters().missRate() * 100.0);
    // Configured footprints at paper scale, for the table's RSS/WSS
    // columns (identical across the pages/translation axes).
    auto probe =
        workload::makeNpb(which, Rng(1), workload::Scale{1}, 1);
    out.scalar("rss_gb",
               static_cast<double>(probe->config().footprintBytes) /
                   (1ull << 30));
    out.scalar("wss_gb",
               static_cast<double>(
                   probe->config().wssBytes
                       ? probe->config().wssBytes
                       : probe->config().footprintBytes) /
                   (1ull << 30));
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    return out;
}

} // namespace

namespace bench {

void
registerTable3Npb(harness::Registry &reg)
{
    reg.add("table3_npb",
            "Table 3: NPB profiles — WSS does not predict MMU "
            "overhead (1/8 scale)")
        .axis("workload", {"bt", "sp", "lu", "mg", "cg", "ft", "ua"})
        .axis("pages", {"4kb", "2mb"})
        .axis("translation", {"native", "virtual"})
        .run(run);
}

} // namespace bench
