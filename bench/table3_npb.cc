/**
 * @file
 * Table 3: memory characteristics, address-translation overheads and
 * huge-page speedups for the NPB workload profiles — the evidence
 * that working-set size does NOT predict MMU overhead (§2.4).
 *
 * mg.D has a ~24GB WSS but walks sequentially (prefetch hides walk
 * latency); cg.D has a ~8GB WSS of random gathers and suffers ~39%
 * walk cycles. The "virtual" columns run the same profiles under a
 * nested (2-D) translation configuration.
 */

#include "bench_common.hh"

using namespace bench;

namespace {

struct Out
{
    double missPct4k;
    double cycles4k;
    double cycles2m;
    double speedupNative;
    double speedupVirtual;
};

double
runOne(const std::string &which, bool thp, bool virt,
       double *mmu_pct, double *miss_pct)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(6);
    cfg.seed = 5;
    sim::System sys(cfg);
    policy::LinuxConfig lc;
    lc.thp = thp;
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>(lc));
    auto wl = workload::makeNpb(which, sys.rng().fork(),
                                workload::Scale{8}, 40);
    auto &proc =
        virt ? sys.addProcess(which, std::move(wl),
                              tlb::TlbConfig::haswellVirtualized())
             : sys.addProcess(which, std::move(wl));
    sys.runUntilAllDone(sec(600));
    if (mmu_pct)
        *mmu_pct = proc.mmuOverheadPct();
    if (miss_pct)
        *miss_pct = proc.counters().missRate() * 100.0;
    return static_cast<double>(proc.runtime()) / 1e9;
}

Out
run(const std::string &which)
{
    Out o{};
    double t4k_n =
        runOne(which, false, false, &o.cycles4k, &o.missPct4k);
    double t2m_n = runOne(which, true, false, &o.cycles2m, nullptr);
    double t4k_v = runOne(which, false, true, nullptr, nullptr);
    double t2m_v = runOne(which, true, true, nullptr, nullptr);
    o.speedupNative = t4k_n / t2m_n;
    o.speedupVirtual = t4k_v / t2m_v;
    return o;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Table 3: NPB profiles — WSS does not predict MMU "
           "overhead (1/8 scale)",
           "HawkEye (ASPLOS'19), Table 3");

    printRow({"Workload", "RSS", "WSS", "miss/acc*", "cyc%-4K",
              "cyc%-2M", "native", "virtual"},
             11);
    for (const std::string which :
         {"bt", "sp", "lu", "mg", "cg", "ft", "ua"}) {
        // Report configured footprints at paper scale for context.
        auto probe = workload::makeNpb(which, Rng(1),
                                       workload::Scale{1}, 1);
        const double rss_gb =
            static_cast<double>(probe->config().footprintBytes) /
            (1ull << 30);
        const double wss_gb =
            static_cast<double>(probe->config().wssBytes
                                    ? probe->config().wssBytes
                                    : probe->config().footprintBytes) /
            (1ull << 30);
        const Out o = run(which);
        printRow({which + ".D", fmt(rss_gb, 0) + "GB",
                  fmt(wss_gb, 0) + "GB", fmt(o.missPct4k, 2),
                  fmt(o.cycles4k, 2), fmt(o.cycles2m, 2),
                  fmt(o.speedupNative, 2), fmt(o.speedupVirtual, 2)},
                 11);
    }
    std::printf(
        "\n(*) miss/acc is the TLB miss rate of the sampled access "
        "stream; sampling sparsity inflates it uniformly — compare "
        "across rows, not against the paper's per-instruction "
        "rates.\n"
        "Expected shape (paper): cg.D (small-ish WSS, random) has "
        "by far the highest overhead (~39%% cycles, 1.62x native / "
        "2.7x virtual speedup); mg.D (largest WSS, sequential) has "
        "~1%%; virtualized speedups exceed native ones (nested "
        "walks amplify translation costs).\n");
    return 0;
}
