/**
 * @file
 * Registration functions of every paper experiment.
 *
 * Each bench translation unit registers one figure or table of
 * the paper as a (policy × workload × config) grid on the harness
 * registry; registerAllExperiments() is what `hawksim_bench` calls.
 */

#ifndef HAWKSIM_BENCH_EXPERIMENTS_HH
#define HAWKSIM_BENCH_EXPERIMENTS_HH

#include "harness/cli.hh"
#include "harness/experiment.hh"

namespace bench {

void registerFig1RedisRss(hawksim::harness::Registry &reg);
void registerFig3FirstNonZero(hawksim::harness::Registry &reg);
void registerFig5PromotionEfficiency(hawksim::harness::Registry &reg);
void registerFig6PromotionTimeline(hawksim::harness::Registry &reg);
void registerFig7Table5Identical(hawksim::harness::Registry &reg);
void registerFig8Heterogeneous(hawksim::harness::Registry &reg);
void registerFig9Virtualization(hawksim::harness::Registry &reg);
void registerFig10PrezeroInterference(hawksim::harness::Registry &reg);
void registerFig11Overcommit(hawksim::harness::Registry &reg);
void registerTable1FaultLatency(hawksim::harness::Registry &reg);
void registerTable2TlbSensitivity(hawksim::harness::Registry &reg);
void registerTable3Npb(hawksim::harness::Registry &reg);
void registerTable7RedisBloat(hawksim::harness::Registry &reg);
void registerTable8FastFaults(hawksim::harness::Registry &reg);
void registerTable9PmuVsG(hawksim::harness::Registry &reg);
void registerAblationHawkEye(hawksim::harness::Registry &reg);

/** Register every experiment above. */
void registerAllExperiments(hawksim::harness::Registry &reg);

/**
 * `--wallclock` micro-driver (perf_hotpath.cc): real ns per simulated
 * access over the table2 grid, cache on vs. off. Not a registry
 * experiment — wall-clock numbers must never enter the canonical
 * report.
 */
int runWallclockHotpath(const hawksim::harness::WallclockMode &mode);

} // namespace bench

#endif // HAWKSIM_BENCH_EXPERIMENTS_HH
