/**
 * @file
 * Figure 5: performance speedup over never-promoting (Linux-4KB) and
 * execution time saved per huge-page promotion, for workloads started
 * in a fragmented system (Graph500, XSBench, cg.D at 1/8 scale).
 *
 * All policies share the same promotion rate limit; the difference is
 * *which* regions they promote first. HawkEye's access-coverage
 * ordering reaches the hot regions (high VAs for Graph500/XSBench)
 * long before the sequential low-to-high scans of Linux and Ingens.
 */

#include "bench_common.hh"

using namespace bench;

namespace {

struct RunOut
{
    double runtimeSec;
    std::uint64_t promotions;
    double mmuPct;
};

RunOut
run(const std::string &policy_name, const std::string &wl_name)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(6);
    cfg.seed = 1234;
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy_name));
    // "We fragment the memory initially by reading several files."
    sys.fragmentMemoryMovable(1.0, 64);
    // Promotion rate scaled with runtime so the promotion phase
    // spans most of the run, as in the paper's timelines (Fig. 6).
    sys.costs().promotionsPerSec = 5.0;

    const workload::Scale s{8};
    std::unique_ptr<workload::Workload> wl;
    if (wl_name == "Graph500")
        wl = workload::makeGraph500(sys.rng().fork(), s, 150);
    else if (wl_name == "XSBench")
        wl = workload::makeXSBench(sys.rng().fork(), s, 150);
    else
        wl = workload::makeNpb("cg", sys.rng().fork(), s, 150);
    auto &proc = sys.addProcess(wl_name, std::move(wl));
    sys.runUntilAllDone(sec(1200));

    RunOut out;
    out.runtimeSec = static_cast<double>(proc.runtime()) / 1e9;
    out.promotions = sys.policy().promotions();
    out.mmuPct = proc.mmuOverheadPct();
    return out;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Figure 5: speedup and time saved per huge-page promotion "
           "after fragmentation (1/8 scale)",
           "HawkEye (ASPLOS'19), Figure 5");

    for (const std::string wl : {"Graph500", "XSBench", "cg.D"}) {
        const RunOut base = run("Linux-4KB", wl);
        std::printf("\n%s (no-promotion baseline: %.1fs, MMU %.1f%%)\n",
                    wl.c_str(), base.runtimeSec, base.mmuPct);
        printRow({"Policy", "Time(s)", "Speedup", "Promos",
                  "SavedPerPromo(ms)"},
                 18);
        for (const std::string pol :
             {"Linux-2MB", "Ingens-90%", "HawkEye-PMU",
              "HawkEye-G"}) {
            const RunOut r = run(pol, wl);
            const double saved = base.runtimeSec - r.runtimeSec;
            const double per_promo =
                r.promotions
                    ? saved * 1e3 / static_cast<double>(r.promotions)
                    : 0.0;
            printRow({pol, fmt(r.runtimeSec, 1),
                      fmt(base.runtimeSec / r.runtimeSec, 3),
                      fmtInt(r.promotions), fmt(per_promo, 2)},
                     18);
        }
    }
    std::printf(
        "\nExpected shape (paper): HawkEye variants recover from the "
        "fragmented state fastest (up to ~22%% speedup; 13%%/12%%/6%% "
        "over Linux and Ingens on these three workloads), and save "
        "far more execution time per promotion (HawkEye-PMU up to "
        "44x Linux on XSBench) because they promote hot regions "
        "first and stop when overheads vanish.\n");
    return 0;
}
