/**
 * @file
 * Figure 5: performance speedup over never-promoting (Linux-4KB) and
 * execution time saved per huge-page promotion, for workloads started
 * in a fragmented system (Graph500, XSBench, cg.D at 1/8 scale).
 *
 * All policies share the same promotion rate limit; the difference is
 * *which* regions they promote first. HawkEye's access-coverage
 * ordering reaches the hot regions (high VAs for Graph500/XSBench)
 * long before the sequential low-to-high scans of Linux and Ingens.
 *
 * Expected shape (paper): HawkEye variants recover from the
 * fragmented state fastest (up to ~22% speedup over Linux/Ingens on
 * these workloads) and save far more execution time per promotion
 * (HawkEye-PMU up to 44x Linux on XSBench). Speedup and
 * saved-per-promotion derive from the Linux-4KB rows of the report.
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

harness::RunOutput
run(const harness::RunContext &ctx)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(6);
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(ctx.param("policy")));
    // "We fragment the memory initially by reading several files."
    sys.fragmentMemoryMovable(1.0, 64);
    // Promotion rate scaled with runtime so the promotion phase
    // spans most of the run, as in the paper's timelines (Fig. 6).
    sys.costs().promotionsPerSec = 5.0;

    const workload::Scale s{8};
    const std::string &wl_name = ctx.param("workload");
    std::unique_ptr<workload::Workload> wl;
    if (wl_name == "Graph500")
        wl = workload::makeGraph500(sys.rng().fork(), s, 150);
    else if (wl_name == "XSBench")
        wl = workload::makeXSBench(sys.rng().fork(), s, 150);
    else
        wl = workload::makeNpb("cg", sys.rng().fork(), s, 150);
    auto &proc = sys.addProcess(wl_name, std::move(wl));
    sys.runUntilAllDone(sec(1200));

    harness::RunOutput out;
    out.scalar("runtime_s",
               static_cast<double>(proc.runtime()) / 1e9);
    out.scalar("promotions",
               static_cast<double>(sys.policy().promotions()));
    out.scalar("mmu_pct", proc.mmuOverheadPct());
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

} // namespace

namespace bench {

void
registerFig5PromotionEfficiency(harness::Registry &reg)
{
    reg.add("fig5_promotion_efficiency",
            "Fig 5: speedup and time saved per promotion after "
            "fragmentation (1/8 scale)")
        .axis("workload", {"Graph500", "XSBench", "cg.D"})
        .axis("policy", {"Linux-4KB", "Linux-2MB", "Ingens-90%",
                         "HawkEye-PMU", "HawkEye-G"})
        .run(run);
}

} // namespace bench
