/**
 * @file
 * `hawksim_bench` — the single CLI over every paper experiment.
 *
 *   hawksim_bench --list
 *   hawksim_bench --filter fig5 --jobs 8 --seed 42 --out results/fig5.json
 *
 * Registration is explicit (not static initializers): the bench
 * translation units live in one binary, and an explicit call chain
 * keeps the linker from dropping them and makes the registration
 * order — and therefore the grid order and seed derivation — obvious
 * and deterministic.
 */

#include "experiments.hh"
#include "harness/cli.hh"

namespace bench {

void
registerAllExperiments(hawksim::harness::Registry &reg)
{
    registerFig1RedisRss(reg);
    registerFig3FirstNonZero(reg);
    registerFig5PromotionEfficiency(reg);
    registerFig6PromotionTimeline(reg);
    registerFig7Table5Identical(reg);
    registerFig8Heterogeneous(reg);
    registerFig9Virtualization(reg);
    registerFig10PrezeroInterference(reg);
    registerFig11Overcommit(reg);
    registerTable1FaultLatency(reg);
    registerTable2TlbSensitivity(reg);
    registerTable3Npb(reg);
    registerTable7RedisBloat(reg);
    registerTable8FastFaults(reg);
    registerTable9PmuVsG(reg);
    registerAblationHawkEye(reg);
}

} // namespace bench

int
main(int argc, char **argv)
{
    hawksim::harness::Registry reg;
    bench::registerAllExperiments(reg);
    hawksim::harness::WallclockMode wallclock;
    wallclock.run = bench::runWallclockHotpath;
    return hawksim::harness::runCli(argc, argv, reg, &wallclock);
}
