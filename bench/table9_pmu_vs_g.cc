/**
 * @file
 * Table 9: HawkEye-PMU vs HawkEye-G on workload pairs where access
 * coverage and *measured* MMU overhead diverge.
 *
 * Each set pairs a TLB-sensitive workload (random gather) with a
 * TLB-insensitive one (sequential streaming) that nevertheless has
 * full access coverage. HawkEye-G's estimate treats both the same
 * and splits huge pages between them; HawkEye-PMU reads the
 * performance counters, sees that the sequential workload's walks
 * are overlap-hidden, and gives everything to the workload that
 * actually suffers.
 */

#include "bench_common.hh"

using namespace bench;

namespace {

struct PairOut
{
    double t1, t2; //!< runtimes (s)
    double mmu1, mmu2;
};

PairOut
run(const std::string &policy_name, const std::string &set)
{
    sim::SystemConfig cfg;
    // Enough headroom that contiguity can be compacted into
    // existence while both workloads are resident.
    cfg.memoryBytes = set == "random+sequential" ? GiB(6) : GiB(9);
    cfg.seed = 21;
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy_name));
    sys.fragmentMemoryMovable(1.0, 48);
    sys.costs().promotionsPerSec = 4.0;

    const workload::Scale s{4};
    sim::Process *p1 = nullptr;
    sim::Process *p2 = nullptr;
    if (set == "random+sequential") {
        p1 = &sys.addProcess(
            "random", workload::makeRandom(sys.rng().fork(), s, 120));
        p2 = &sys.addProcess(
            "sequential",
            workload::makeSequential(sys.rng().fork(), s, 120));
    } else {
        p1 = &sys.addProcess(
            "cg.D", workload::makeNpb("cg", sys.rng().fork(),
                                      workload::Scale{8}, 120));
        p2 = &sys.addProcess(
            "mg.D", workload::makeNpb("mg", sys.rng().fork(),
                                      workload::Scale{8}, 120));
    }
    sys.runUntilAllDone(sec(1200));
    return {static_cast<double>(p1->runtime()) / 1e9,
            static_cast<double>(p2->runtime()) / 1e9,
            p1->mmuOverheadPct(), p2->mmuOverheadPct()};
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Table 9: HawkEye-PMU vs HawkEye-G (measured vs estimated "
           "MMU overheads)",
           "HawkEye (ASPLOS'19), Table 9");

    for (const std::string set :
         {"random+sequential", "cg.D+mg.D"}) {
        const PairOut base = run("Linux-4KB", set);
        const std::string n1 =
            set == "random+sequential" ? "random" : "cg.D";
        const std::string n2 =
            set == "random+sequential" ? "sequential" : "mg.D";
        std::printf("\nSet: %s  (4KB overheads: %s %.0f%%, %s "
                    "%.1f%%)\n",
                    set.c_str(), n1.c_str(), base.mmu1, n2.c_str(),
                    base.mmu2);
        printRow({"Config", n1 + "(s)", n2 + "(s)", "Total(s)",
                  "TotalSpeedup"},
                 16);
        printRow({"Linux-4KB", fmt(base.t1, 0), fmt(base.t2, 0),
                  fmt(base.t1 + base.t2, 0), "1.000"},
                 16);
        for (const std::string pol : {"HawkEye-PMU", "HawkEye-G"}) {
            const PairOut r = run(pol, set);
            printRow({pol, fmt(r.t1, 0), fmt(r.t2, 0),
                      fmt(r.t1 + r.t2, 0),
                      fmt((base.t1 + base.t2) / (r.t1 + r.t2), 3)},
                     16);
        }
    }
    std::printf(
        "\nExpected shape (paper): both variants leave the "
        "TLB-insensitive workload's runtime unchanged; HawkEye-PMU "
        "speeds the sensitive one up more than HawkEye-G (1.77x vs "
        "1.41x for random; 1.62x vs 1.35x for cg.D) because the "
        "estimator cannot tell overlap-hidden walks from real "
        "stalls.\n");
    return 0;
}
