/**
 * @file
 * Table 9: HawkEye-PMU vs HawkEye-G on workload pairs where access
 * coverage and *measured* MMU overhead diverge.
 *
 * Each set pairs a TLB-sensitive workload (random gather) with a
 * TLB-insensitive one (sequential streaming) that nevertheless has
 * full access coverage. HawkEye-G's estimate treats both the same
 * and splits huge pages between them; HawkEye-PMU reads the
 * performance counters, sees that the sequential workload's walks
 * are overlap-hidden, and gives everything to the workload that
 * actually suffers. Total speedups derive from the Linux-4KB rows
 * at matching set.
 *
 * Expected shape (paper): both variants leave the TLB-insensitive
 * workload's runtime unchanged; HawkEye-PMU speeds the sensitive
 * one up more than HawkEye-G (1.77x vs 1.41x for random; 1.62x vs
 * 1.35x for cg.D) because the estimator cannot tell overlap-hidden
 * walks from real stalls.
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

harness::RunOutput
run(const harness::RunContext &ctx)
{
    const std::string &set = ctx.param("set");
    sim::SystemConfig cfg;
    // Enough headroom that contiguity can be compacted into
    // existence while both workloads are resident.
    cfg.memoryBytes = set == "random+sequential" ? GiB(6) : GiB(9);
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(ctx.param("policy")));
    sys.fragmentMemoryMovable(1.0, 48);
    sys.costs().promotionsPerSec = 4.0;

    const workload::Scale s{4};
    sim::Process *p1 = nullptr;
    sim::Process *p2 = nullptr;
    if (set == "random+sequential") {
        p1 = &sys.addProcess(
            "random", workload::makeRandom(sys.rng().fork(), s, 120));
        p2 = &sys.addProcess(
            "sequential",
            workload::makeSequential(sys.rng().fork(), s, 120));
    } else {
        p1 = &sys.addProcess(
            "cg.D", workload::makeNpb("cg", sys.rng().fork(),
                                      workload::Scale{8}, 120));
        p2 = &sys.addProcess(
            "mg.D", workload::makeNpb("mg", sys.rng().fork(),
                                      workload::Scale{8}, 120));
    }
    sys.runUntilAllDone(sec(1200));

    harness::RunOutput out;
    out.scalar("t1_s", static_cast<double>(p1->runtime()) / 1e9);
    out.scalar("t2_s", static_cast<double>(p2->runtime()) / 1e9);
    out.scalar("mmu1_pct", p1->mmuOverheadPct());
    out.scalar("mmu2_pct", p2->mmuOverheadPct());
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

} // namespace

namespace bench {

void
registerTable9PmuVsG(harness::Registry &reg)
{
    reg.add("table9_pmu_vs_g",
            "Table 9: HawkEye-PMU vs HawkEye-G (measured vs "
            "estimated MMU overheads)")
        .axis("set", {"random+sequential", "cg.D+mg.D"})
        .axis("policy", {"Linux-4KB", "HawkEye-PMU", "HawkEye-G"})
        .run(run);
}

} // namespace bench
