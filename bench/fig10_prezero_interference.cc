/**
 * @file
 * Figure 10: worst-case cache interference from the async
 * pre-zeroing thread, zeroing 0.25M pages/s (1GB/s) on a core
 * sharing the L3, with regular (caching) stores vs non-temporal
 * stores.
 *
 * Caching stores allocate L3 lines and evict the co-runner's working
 * set ("double cache miss"); non-temporal stores bypass the cache
 * and leave only memory-bandwidth contention.
 */

#include "bench_common.hh"
#include "cache/cache.hh"

using namespace bench;

int
main()
{
    setLogQuiet(true);
    banner("Figure 10: pre-zeroing interference at 1GB/s, caching vs "
           "non-temporal stores",
           "HawkEye (ASPLOS'19), Figure 10");

    // Co-runner profiles: working set vs the 30MB L3, access rate,
    // locality. The first two model suite averages, the rest the
    // paper's named cache-sensitive applications.
    const cache::InterferenceWorkload workloads[] = {
        {"NPB(avg)", 64ull << 20, 150e6, 0.4},
        {"PARSEC(avg)", 48ull << 20, 120e6, 0.5},
        {"omnetpp", 24ull << 20, 250e6, 0.2},
        {"xalancbmk", 20ull << 20, 220e6, 0.3},
        {"mcf", 40ull << 20, 200e6, 0.2},
        {"cactusADM", 28ull << 20, 160e6, 0.5},
        {"canneal", 36ull << 20, 180e6, 0.1},
        {"streamcluster", 12ull << 20, 140e6, 0.7},
    };

    printRow({"Workload", "Caching(%)", "NonTemporal(%)"}, 18);
    for (const auto &w : workloads) {
        const auto cached = cache::runInterference(
            w, 1e9, /*non_temporal=*/false, Rng(7));
        const auto nt = cache::runInterference(
            w, 1e9, /*non_temporal=*/true, Rng(7));
        printRow({w.name, fmt(cached.overheadPct, 1),
                  fmt(nt.overheadPct, 1)},
                 18);
    }
    std::printf(
        "\nExpected shape (paper): caching stores cost up to ~27%% "
        "(omnetpp) while non-temporal stores cut that to a few "
        "percent of residual memory-traffic overhead. The in-kernel "
        "daemon is further rate-limited (10K pages/s), making real "
        "interference proportionally smaller.\n");
    return 0;
}
