/**
 * @file
 * Figure 10: worst-case cache interference from the async
 * pre-zeroing thread, zeroing 0.25M pages/s (1GB/s) on a core
 * sharing the L3, with regular (caching) stores vs non-temporal
 * stores.
 *
 * Caching stores allocate L3 lines and evict the co-runner's working
 * set ("double cache miss"); non-temporal stores bypass the cache
 * and leave only memory-bandwidth contention.
 *
 * Expected shape (paper): caching stores cost up to ~27% (omnetpp)
 * while non-temporal stores cut that to a few percent of residual
 * memory-traffic overhead. The in-kernel daemon is further
 * rate-limited (10K pages/s), making real interference
 * proportionally smaller.
 */

#include "bench_common.hh"
#include "cache/cache.hh"
#include "experiments.hh"

using namespace bench;

namespace {

// Co-runner profiles: working set vs the 30MB L3, access rate,
// locality. The first two model suite averages, the rest the
// paper's named cache-sensitive applications.
constexpr struct
{
    const char *name;
    std::uint64_t wssBytes;
    double accessesPerSec;
    double locality;
} kWorkloads[] = {
    {"NPB(avg)", 64ull << 20, 150e6, 0.4},
    {"PARSEC(avg)", 48ull << 20, 120e6, 0.5},
    {"omnetpp", 24ull << 20, 250e6, 0.2},
    {"xalancbmk", 20ull << 20, 220e6, 0.3},
    {"mcf", 40ull << 20, 200e6, 0.2},
    {"cactusADM", 28ull << 20, 160e6, 0.5},
    {"canneal", 36ull << 20, 180e6, 0.1},
    {"streamcluster", 12ull << 20, 140e6, 0.7},
};

harness::RunOutput
run(const harness::RunContext &ctx)
{
    const std::string &wl_name = ctx.param("workload");
    cache::InterferenceWorkload w{};
    for (const auto &k : kWorkloads) {
        if (wl_name == k.name)
            w = {k.name, k.wssBytes, k.accessesPerSec, k.locality};
    }
    const bool non_temporal = ctx.param("stores") == "non-temporal";
    const auto res = cache::runInterference(w, 1e9, non_temporal,
                                            Rng(ctx.seed()));

    harness::RunOutput out;
    out.scalar("overhead_pct", res.overheadPct);
    return out;
}

} // namespace

namespace bench {

void
registerFig10PrezeroInterference(harness::Registry &reg)
{
    reg.add("fig10_prezero_interference",
            "Fig 10: pre-zeroing interference at 1GB/s, caching vs "
            "non-temporal stores")
        .axis("workload",
              {"NPB(avg)", "PARSEC(avg)", "omnetpp", "xalancbmk",
               "mcf", "cactusADM", "canneal", "streamcluster"})
        .axis("stores", {"caching", "non-temporal"})
        .run(run);
}

} // namespace bench
