/**
 * @file
 * Table 2: how many applications in popular benchmark suites are
 * actually TLB-sensitive (> 3% speedup from huge pages).
 *
 * Each of the 79 catalogued profiles runs once with base pages and
 * once with transparent huge pages; an app is TLB-sensitive when the
 * 4kb/2mb ratio of steady_runtime_s exceeds 1.03. The
 * paper_sensitive scalar carries the paper's own classification for
 * the agreement count.
 *
 * Expected shape (paper): 15 of 79 applications (<20%) gain more
 * than 3% from huge pages — huge pages matter a lot, but only to a
 * minority of applications, which is why fair allocation should
 * equalize MMU overheads, not huge page counts.
 */

#include "bench_common.hh"
#include "experiments.hh"
#include "workload/suite.hh"

using namespace bench;

namespace {

harness::RunOutput
run(const harness::RunContext &ctx)
{
    const std::string &app_name = ctx.param("app");
    const auto catalog = workload::table2Catalog();
    const workload::SuiteApp *app = nullptr;
    for (const auto &a : catalog) {
        if (a.name == app_name)
            app = &a;
    }
    HS_ASSERT(app, "unknown table2 app '", app_name, "'");

    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(4);
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    cfg.metricsPeriod = 0;
    sim::System sys(cfg);
    policy::LinuxConfig lc;
    lc.thp = ctx.param("pages") == "2mb";
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>(lc));
    workload::StreamConfig wc = app->config;
    // Scale the profile 1/2 to keep the sweep fast; ratios survive.
    wc.footprintBytes /= 2;
    wc.wssBytes /= 2;
    sys.addProcess(app->name,
                   std::make_unique<workload::StreamWorkload>(
                       app->name, wc, sys.rng().fork()));
    sys.runUntilAllDone(sec(300));
    const auto &proc = *sys.processes()[0];

    harness::RunOutput out;
    // Classify on steady-state execution: exclude allocation-phase
    // fault latency (Table 2 is about translation overheads, not the
    // Table 1 fault-path effects).
    out.scalar("steady_runtime_s",
               static_cast<double>(proc.runtime() - proc.faultTime()) /
                   1e9);
    out.scalar("paper_sensitive", app->paperSensitive ? 1.0 : 0.0);
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    return out;
}

} // namespace

namespace bench {

void
registerTable2TlbSensitivity(harness::Registry &reg)
{
    std::vector<std::string> apps;
    for (const auto &a : workload::table2Catalog())
        apps.push_back(a.name);
    reg.add("table2_tlb_sensitivity",
            "Table 2: TLB-sensitive applications per suite "
            "(measured speedup > 3%)")
        .axis("app", apps)
        .axis("pages", {"4kb", "2mb"})
        .run(run);
}

} // namespace bench
