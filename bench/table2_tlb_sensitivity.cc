/**
 * @file
 * Table 2: how many applications in popular benchmark suites are
 * actually TLB-sensitive (> 3% speedup from huge pages).
 *
 * Each of the 79 catalogued profiles runs once with base pages and
 * once with transparent huge pages; the classification is measured
 * through the TLB model, then compared against the paper's counts.
 */

#include "bench_common.hh"
#include "workload/suite.hh"

#include <map>

using namespace bench;

namespace {

double
run(const workload::SuiteApp &app, bool thp)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(4);
    cfg.seed = 7;
    cfg.metricsPeriod = 0;
    sim::System sys(cfg);
    policy::LinuxConfig lc;
    lc.thp = thp;
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>(lc));
    workload::StreamConfig wc = app.config;
    // Scale the profile 1/2 to keep the sweep fast; ratios survive.
    wc.footprintBytes /= 2;
    wc.wssBytes /= 2;
    sys.addProcess(app.name,
                   std::make_unique<workload::StreamWorkload>(
                       app.name, wc, sys.rng().fork()));
    sys.runUntilAllDone(sec(300));
    // Classify on steady-state execution: exclude allocation-phase
    // fault latency (Table 2 is about translation overheads, not the
    // Table 1 fault-path effects).
    const auto &proc = *sys.processes()[0];
    return static_cast<double>(proc.runtime() - proc.faultTime()) /
           1e9;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Table 2: TLB-sensitive applications per suite "
           "(measured speedup > 3%)",
           "HawkEye (ASPLOS'19), Table 2");

    struct SuiteCount
    {
        int total = 0;
        int sensitive = 0;
        int paperSensitive = 0;
        int agree = 0;
        std::string sensitiveNames;
    };
    std::map<std::string, SuiteCount> counts;

    const auto catalog = workload::table2Catalog();
    for (const auto &app : catalog) {
        const double t4k = run(app, false);
        const double t2m = run(app, true);
        const double speedup = t4k / t2m;
        const bool sensitive = speedup > 1.03;
        SuiteCount &c = counts[app.suite];
        c.total++;
        if (sensitive) {
            c.sensitive++;
            if (!c.sensitiveNames.empty())
                c.sensitiveNames += ", ";
            c.sensitiveNames += app.name;
        }
        if (app.paperSensitive)
            c.paperSensitive++;
        if (sensitive == app.paperSensitive)
            c.agree++;
    }

    printRow({"Suite", "Total", "Sens.", "Paper", "Agree"}, 12);
    int total = 0, sens = 0, paper = 0, agree = 0;
    for (const auto &[suite, c] : counts) {
        printRow({suite, fmtInt(c.total), fmtInt(c.sensitive),
                  fmtInt(c.paperSensitive), fmtInt(c.agree)},
                 12);
        total += c.total;
        sens += c.sensitive;
        paper += c.paperSensitive;
        agree += c.agree;
    }
    printRow({"Total", fmtInt(total), fmtInt(sens), fmtInt(paper),
              fmtInt(agree)},
             12);
    std::printf("\nMeasured TLB-sensitive applications:\n");
    for (const auto &[suite, c] : counts)
        std::printf("  %-12s %s\n", suite.c_str(),
                    c.sensitiveNames.c_str());
    std::printf(
        "\nExpected shape (paper): 15 of 79 applications (<20%%) "
        "gain more than 3%% from huge pages — huge pages matter a "
        "lot, but only to a minority of applications, which is why "
        "fair allocation should equalize MMU overheads, not huge "
        "page counts.\n");
    return 0;
}
