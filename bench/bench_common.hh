/**
 * @file
 * Shared helpers for the experiment registrations: the policy
 * factory every grid uses for its "policy"/"config" axis.
 *
 * Every registration reproduces one table or figure of the paper.
 * Absolute numbers are simulated (the substrate is HawkSim, not the
 * authors' Haswell testbed); the *shape* — who wins, by what factor,
 * where crossovers fall — is the reproduction target. EXPERIMENTS.md
 * records paper-vs-measured for each; the harness report carries the
 * raw series and scalars each figure is derived from.
 */

#ifndef HAWKSIM_BENCH_COMMON_HH
#define HAWKSIM_BENCH_COMMON_HH

#include <memory>
#include <string>

#include "hawksim.hh"

namespace bench {

using namespace hawksim;

/** Construct a policy by its experiment name. */
inline std::unique_ptr<policy::HugePagePolicy>
makePolicy(const std::string &name)
{
    if (name == "Linux-4KB") {
        policy::LinuxConfig c;
        c.thp = false;
        return std::make_unique<policy::LinuxThpPolicy>(c);
    }
    if (name == "Linux-2MB")
        return std::make_unique<policy::LinuxThpPolicy>();
    if (name == "FreeBSD")
        return std::make_unique<policy::FreeBsdPolicy>();
    if (name == "Ingens-90%") {
        policy::IngensConfig c;
        c.utilThreshold = 0.90;
        return std::make_unique<policy::IngensPolicy>(c);
    }
    if (name == "Ingens-50%") {
        policy::IngensConfig c;
        c.utilThreshold = 0.50;
        return std::make_unique<policy::IngensPolicy>(c);
    }
    // Fixed (non-FMFI-adaptive) Ingens thresholds: Table 7 studies
    // the utilization threshold itself.
    if (name == "Ingens-90%-fixed" || name == "Ingens-50%-fixed") {
        policy::IngensConfig c;
        c.utilThreshold = name == "Ingens-90%-fixed" ? 0.90 : 0.50;
        c.alwaysConservative = true;
        return std::make_unique<policy::IngensPolicy>(c);
    }
    if (name == "HawkEye-G")
        return std::make_unique<core::HawkEyePolicy>();
    if (name == "HawkEye-PMU") {
        core::HawkEyeConfig c;
        c.usePmu = true;
        return std::make_unique<core::HawkEyePolicy>(c);
    }
    // Pre-zeroing without huge pages ("no page-zeroing Linux-4KB"
    // in Table 1): base faults served from the zeroed free lists.
    if (name == "HawkEye-4KB") {
        core::HawkEyeConfig c;
        c.faultHuge = false;
        return std::make_unique<core::HawkEyePolicy>(c);
    }
    if (name == "HawkEye-2MB")
        return std::make_unique<core::HawkEyePolicy>();
    HS_FATAL("unknown policy name: ", name);
}

} // namespace bench

#endif // HAWKSIM_BENCH_COMMON_HH
