/**
 * @file
 * Shared helpers for the experiment-reproduction benches: policy
 * factory, table formatting, and run bookkeeping.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Absolute numbers are simulated (the substrate is HawkSim, not the
 * authors' Haswell testbed); the *shape* — who wins, by what factor,
 * where crossovers fall — is the reproduction target. EXPERIMENTS.md
 * records paper-vs-measured for each.
 */

#ifndef HAWKSIM_BENCH_COMMON_HH
#define HAWKSIM_BENCH_COMMON_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "hawksim.hh"

namespace bench {

using namespace hawksim;

/** Construct a policy by its experiment name. */
inline std::unique_ptr<policy::HugePagePolicy>
makePolicy(const std::string &name)
{
    if (name == "Linux-4KB") {
        policy::LinuxConfig c;
        c.thp = false;
        return std::make_unique<policy::LinuxThpPolicy>(c);
    }
    if (name == "Linux-2MB")
        return std::make_unique<policy::LinuxThpPolicy>();
    if (name == "FreeBSD")
        return std::make_unique<policy::FreeBsdPolicy>();
    if (name == "Ingens-90%") {
        policy::IngensConfig c;
        c.utilThreshold = 0.90;
        return std::make_unique<policy::IngensPolicy>(c);
    }
    if (name == "Ingens-50%") {
        policy::IngensConfig c;
        c.utilThreshold = 0.50;
        return std::make_unique<policy::IngensPolicy>(c);
    }
    if (name == "HawkEye-G")
        return std::make_unique<core::HawkEyePolicy>();
    if (name == "HawkEye-PMU") {
        core::HawkEyeConfig c;
        c.usePmu = true;
        return std::make_unique<core::HawkEyePolicy>(c);
    }
    HS_FATAL("unknown policy name: ", name);
}

/** Print a bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("\n");
    std::printf("======================================================="
                "=================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("======================================================="
                "=================\n");
}

/** Simple fixed-width row printing. */
inline void
printRow(const std::vector<std::string> &cells, int width = 14)
{
    for (const auto &c : cells)
        std::printf("%-*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
fmtInt(std::uint64_t v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Seconds with one decimal from a TimeNs. */
inline std::string
fmtSec(hawksim::TimeNs t)
{
    return fmt(static_cast<double>(t) / 1e9, 1);
}

} // namespace bench

#endif // HAWKSIM_BENCH_COMMON_HH
