/**
 * @file
 * Figure 8: a TLB-sensitive application co-running with a lightly
 * loaded Redis server (40M keys, 10K req/s — large footprint, low
 * access rate), launched in both orders, under each policy.
 *
 * Linux promotes FCFS: whoever starts first wins the huge pages.
 * Ingens splits contiguity proportionally — which favours the
 * *larger* (but TLB-insensitive) Redis. HawkEye allocates to the
 * process with the highest (measured or estimated) MMU overhead,
 * regardless of order or size.
 */

#include "bench_common.hh"

using namespace bench;

namespace {

double
run(const std::string &policy_name, const std::string &wl_name,
    bool sensitive_first)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(8);
    cfg.seed = 55;
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy_name));
    sys.fragmentMemoryMovable(1.0, 64);
    sys.costs().promotionsPerSec = 8.0;

    const workload::Scale s{12};
    auto mkSensitive = [&]() -> std::unique_ptr<workload::Workload> {
        if (wl_name == "Graph500")
            return workload::makeGraph500(sys.rng().fork(), s, 120);
        if (wl_name == "XSBench")
            return workload::makeXSBench(sys.rng().fork(), s, 120);
        return workload::makeNpb("cg", sys.rng().fork(), s, 120);
    };
    sim::Process *sensitive = nullptr;
    if (sensitive_first) {
        sensitive = &sys.addProcess(wl_name, mkSensitive());
        sys.addProcess("redis", workload::makeRedisLight(
                                    sys.rng().fork(), s, 1e6));
    } else {
        sys.addProcess("redis", workload::makeRedisLight(
                                    sys.rng().fork(), s, 1e6));
        sensitive = &sys.addProcess(wl_name, mkSensitive());
    }
    sys.runUntilAllDone(sec(1200));
    return static_cast<double>(sensitive->runtime()) / 1e9;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Figure 8: TLB-sensitive apps vs a lightly loaded Redis, "
           "both launch orders (1/12 scale)",
           "HawkEye (ASPLOS'19), Figure 8");

    for (const std::string wl : {"Graph500", "cg.D"}) {
        const double base_b = run("Linux-4KB", wl, true);
        const double base_a = run("Linux-4KB", wl, false);
        std::printf("\n%s speedup over baseline pages "
                    "(Before = %s launched first):\n",
                    wl.c_str(), wl.c_str());
        printRow({"Policy", "Before", "After"}, 16);
        // HawkEye-PMU tracks HawkEye-G closely here (single sensitive
        // process); we run the G variant to keep the sweep fast.
        for (const std::string pol :
             {"Linux-2MB", "Ingens-90%", "HawkEye-G"}) {
            const double before = run(pol, wl, true);
            const double after = run(pol, wl, false);
            printRow({pol, fmt(base_b / before, 3),
                      fmt(base_a / after, 3)},
                     16);
        }
    }
    std::printf(
        "\nExpected shape (paper): Linux helps the sensitive app only "
        "in the (Before) order — in (After) it wastes huge pages on "
        "Redis. Ingens favours Redis in both orders (proportional "
        "share + uniform Redis accesses). HawkEye delivers 15-60%% "
        "regardless of order.\n");
    return 0;
}
