/**
 * @file
 * Figure 8: a TLB-sensitive application co-running with a lightly
 * loaded Redis server (40M keys, 10K req/s — large footprint, low
 * access rate), launched in both orders, under each policy.
 *
 * Linux promotes FCFS: whoever starts first wins the huge pages.
 * Ingens splits contiguity proportionally — which favours the
 * *larger* (but TLB-insensitive) Redis. HawkEye allocates to the
 * process with the highest (measured or estimated) MMU overhead,
 * regardless of order or size.
 *
 * Expected shape (paper): Linux helps the sensitive app only in the
 * order where it launches first — launched second, Linux wastes the
 * huge pages on Redis. Ingens favours Redis in both orders
 * (proportional share + uniform Redis accesses). HawkEye delivers
 * 15-60% regardless of order. HawkEye-PMU tracks HawkEye-G closely
 * here (single sensitive process), so only the G variant runs.
 * Speedups derive from the Linux-4KB rows at matching order.
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

harness::RunOutput
run(const harness::RunContext &ctx)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(8);
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(ctx.param("policy")));
    sys.fragmentMemoryMovable(1.0, 64);
    sys.costs().promotionsPerSec = 8.0;

    const workload::Scale s{12};
    const std::string &wl_name = ctx.param("workload");
    auto mkSensitive = [&]() -> std::unique_ptr<workload::Workload> {
        if (wl_name == "Graph500")
            return workload::makeGraph500(sys.rng().fork(), s, 120);
        if (wl_name == "XSBench")
            return workload::makeXSBench(sys.rng().fork(), s, 120);
        return workload::makeNpb("cg", sys.rng().fork(), s, 120);
    };
    sim::Process *sensitive = nullptr;
    if (ctx.param("order") == "sensitive-first") {
        sensitive = &sys.addProcess(wl_name, mkSensitive());
        sys.addProcess("redis", workload::makeRedisLight(
                                    sys.rng().fork(), s, 1e6));
    } else {
        sys.addProcess("redis", workload::makeRedisLight(
                                    sys.rng().fork(), s, 1e6));
        sensitive = &sys.addProcess(wl_name, mkSensitive());
    }
    sys.runUntilAllDone(sec(1200));

    harness::RunOutput out;
    out.scalar("sensitive_runtime_s",
               static_cast<double>(sensitive->runtime()) / 1e9);
    out.scalar("sensitive_mmu_pct", sensitive->mmuOverheadPct());
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

} // namespace

namespace bench {

void
registerFig8Heterogeneous(harness::Registry &reg)
{
    reg.add("fig8_heterogeneous",
            "Fig 8: TLB-sensitive apps vs a lightly loaded Redis, "
            "both launch orders (1/12 scale)")
        .axis("workload", {"Graph500", "cg.D"})
        .axis("policy",
              {"Linux-4KB", "Linux-2MB", "Ingens-90%", "HawkEye-G"})
        .axis("order", {"sensitive-first", "redis-first"})
        .run(run);
}

} // namespace bench
