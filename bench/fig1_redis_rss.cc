/**
 * @file
 * Figure 1: Redis resident-set size across three phases under Linux,
 * Ingens and HawkEye (1/8 scale: 6GB machine, 5.6GB dataset).
 *
 *   P1: insert 1.4M x 4KB values (dataset ~5.6GB)
 *   P2: delete 80% of keys at random (madvise frees -> sparse AS)
 *   P3: insert 2MB values until the dataset is back at ~5.4GB
 *
 * Linux and Ingens re-promote the sparse P1 regions (khugepaged's
 * max_ptes_none / aggressive-mode promotion), re-inflating them with
 * kernel-zeroed pages: bloat. P3's fresh 2MB-value allocations then
 * collide with the bloat and the store OOMs below full dataset size.
 * HawkEye's bloat recovery detects the zero-filled baseline pages
 * inside re-promoted huge pages, demotes and dedups them, and P3
 * completes.
 */

#include "bench_common.hh"

using namespace bench;

namespace {

constexpr std::uint64_t kScale = 8;

struct RunResult
{
    std::string policy;
    TimeSeries rss;
    bool oom = false;
    double oomTimeSec = 0.0;
    double usefulGbAtEnd = 0.0;
    double peakRssGb = 0.0;
    bool completed = false;
};

RunResult
run(const std::string &policy_name)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(48) / kScale;
    cfg.seed = 42;
    cfg.metricsPeriod = msec(500);
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy_name));

    workload::KvConfig kc;
    kc.arenaBytes = GiB(13);
    workload::KvPhase p1;
    p1.type = workload::KvPhase::Type::kInsert;
    p1.count = 11'000'000 / kScale; // ~5.4GB of 4KB values
    p1.valueBytes = 4096;
    p1.opsPerSec = 100'000;
    workload::KvPhase p2;
    p2.type = workload::KvPhase::Type::kDelete;
    p2.fraction = 0.80;
    workload::KvPhase gap;
    gap.type = workload::KvPhase::Type::kServe; // "some time gap"
    gap.durationSec = 150.0;
    gap.opsPerSec = 10'000;
    workload::KvPhase p3;
    p3.type = workload::KvPhase::Type::kInsert;
    p3.count = 17'000 / kScale * 1.05; // 2MB values back to ~5.4GB
    p3.valueBytes = kHugePageSize;
    p3.opsPerSec = 50;
    kc.phases = {p1, p2, gap, p3};

    auto &proc = sys.addProcess(
        "redis", std::make_unique<workload::KeyValueStoreWorkload>(
                     "redis", kc, sys.rng().fork()));
    auto *kv = static_cast<workload::KeyValueStoreWorkload *>(
        &proc.workload());
    sys.runUntilAllDone(sec(700));

    RunResult r;
    r.policy = policy_name;
    r.rss = sys.metrics().series("p1.rss_pages");
    r.oom = proc.oomKilled();
    r.oomTimeSec = static_cast<double>(proc.finishedAt()) / 1e9;
    r.usefulGbAtEnd =
        static_cast<double>(kv->liveBytes()) / (1ull << 30);
    r.peakRssGb = r.rss.peak() * kPageSize / (1ull << 30);
    r.completed = proc.finished() && !proc.oomKilled();
    return r;
}

double
rssAt(const RunResult &r, double t_sec)
{
    double v = 0.0;
    for (const auto &p : r.rss.points()) {
        if (static_cast<double>(p.time) / 1e9 > t_sec)
            break;
        v = p.value;
    }
    return v * kPageSize / (1ull << 30);
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Figure 1: Redis RSS across insert/delete/insert phases "
           "(1/8 scale, 6GB machine)",
           "HawkEye (ASPLOS'19), Figure 1 / Section 2.1");

    std::vector<RunResult> results;
    for (const std::string p :
         {"Linux-2MB", "Ingens-50%", "HawkEye-G"}) {
        results.push_back(run(p));
    }

    std::printf("\nRSS (GB) over time:\n");
    printRow({"t(s)", results[0].policy, results[1].policy,
              results[2].policy});
    for (double t = 0; t <= 400.0; t += 20.0) {
        printRow({fmt(t, 0), fmt(rssAt(results[0], t), 2),
                  fmt(rssAt(results[1], t), 2),
                  fmt(rssAt(results[2], t), 2)});
    }

    std::printf("\nOutcome:\n");
    printRow({"Policy", "OOM?", "UsefulData(GB)", "PeakRSS(GB)"},
             16);
    for (const auto &r : results) {
        printRow({r.policy,
                  r.oom ? "OOM@" + fmt(r.oomTimeSec, 0) + "s"
                        : (r.completed ? "completed" : "running"),
                  fmt(r.usefulGbAtEnd, 2), fmt(r.peakRssGb, 2)},
                 16);
    }
    std::printf(
        "\nExpected shape (paper): Linux and Ingens hit the memory "
        "limit (OOM) with substantial bloat (only 20GB / 28GB of 48GB "
        "useful at full scale); HawkEye recovers bloat via zero-page "
        "dedup and completes the full dataset.\n");
    return 0;
}
