/**
 * @file
 * Figure 1: Redis resident-set size across three phases under Linux,
 * Ingens and HawkEye (1/8 scale: 6GB machine, 5.6GB dataset).
 *
 *   P1: insert 1.4M x 4KB values (dataset ~5.6GB)
 *   P2: delete 80% of keys at random (madvise frees -> sparse AS)
 *   P3: insert 2MB values until the dataset is back at ~5.4GB
 *
 * Linux and Ingens re-promote the sparse P1 regions (khugepaged's
 * max_ptes_none / aggressive-mode promotion), re-inflating them with
 * kernel-zeroed pages: bloat. P3's fresh 2MB-value allocations then
 * collide with the bloat and the store OOMs below full dataset size.
 * HawkEye's bloat recovery detects the zero-filled baseline pages
 * inside re-promoted huge pages, demotes and dedups them, and P3
 * completes.
 *
 * Expected shape (paper): Linux and Ingens hit the memory limit
 * (OOM) with substantial bloat (only 20GB / 28GB of 48GB useful at
 * full scale); HawkEye recovers bloat via zero-page dedup and
 * completes the full dataset. The RSS timeline is the
 * "p1.rss_pages" series of each run.
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

constexpr std::uint64_t kScale = 8;

harness::RunOutput
run(const harness::RunContext &ctx)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(48) / kScale;
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    cfg.metricsPeriod = msec(500);
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(ctx.param("policy")));

    workload::KvConfig kc;
    kc.arenaBytes = GiB(13);
    workload::KvPhase p1;
    p1.type = workload::KvPhase::Type::kInsert;
    p1.count = 11'000'000 / kScale; // ~5.4GB of 4KB values
    p1.valueBytes = 4096;
    p1.opsPerSec = 100'000;
    workload::KvPhase p2;
    p2.type = workload::KvPhase::Type::kDelete;
    p2.fraction = 0.80;
    workload::KvPhase gap;
    gap.type = workload::KvPhase::Type::kServe; // "some time gap"
    gap.durationSec = 150.0;
    gap.opsPerSec = 10'000;
    workload::KvPhase p3;
    p3.type = workload::KvPhase::Type::kInsert;
    p3.count = 17'000 / kScale * 1.05; // 2MB values back to ~5.4GB
    p3.valueBytes = kHugePageSize;
    p3.opsPerSec = 50;
    kc.phases = {p1, p2, gap, p3};

    auto &proc = sys.addProcess(
        "redis", std::make_unique<workload::KeyValueStoreWorkload>(
                     "redis", kc, sys.rng().fork()));
    auto *kv = static_cast<workload::KeyValueStoreWorkload *>(
        &proc.workload());
    sys.runUntilAllDone(sec(700));

    harness::RunOutput out;
    const TimeSeries &rss = sys.metrics().series("p1.rss_pages");
    out.scalar("oom", proc.oomKilled() ? 1.0 : 0.0);
    out.scalar("oom_time_s",
               static_cast<double>(proc.finishedAt()) / 1e9);
    out.scalar("useful_gb",
               static_cast<double>(kv->liveBytes()) / (1ull << 30));
    out.scalar("peak_rss_gb",
               rss.peak() * kPageSize / (1ull << 30));
    out.scalar("completed",
               proc.finished() && !proc.oomKilled() ? 1.0 : 0.0);
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

} // namespace

namespace bench {

void
registerFig1RedisRss(harness::Registry &reg)
{
    reg.add("fig1_redis_rss",
            "Fig 1: Redis RSS across insert/delete/insert phases "
            "(1/8 scale, 6GB machine)")
        .axis("policy", {"Linux-2MB", "Ingens-50%", "HawkEye-G"})
        .run(run);
}

} // namespace bench
