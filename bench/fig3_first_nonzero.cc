/**
 * @file
 * Figure 3: average distance to the first non-zero byte in in-use
 * 4KB pages, across 56 workload content profiles grouped by suite.
 *
 * This is the property that makes HawkEye's bloat-recovery scan cost
 * proportional to the amount of *bloat*, not to memory size: an
 * in-use page is rejected after ~10 bytes on average.
 *
 * Expected shape (paper): 9.11 bytes average over 56 workloads; only
 * ~10 bytes need to be scanned to reject an in-use page, vs 4096 for
 * a bloat page.
 */

#include "bench_common.hh"
#include "experiments.hh"
#include "mem/content.hh"

using namespace bench;

namespace {

double
profileMean(double zero_prefix_prob, double mean_prefix, Rng rng)
{
    mem::ContentGenerator gen(rng, zero_prefix_prob, mean_prefix);
    double sum = 0.0;
    constexpr int kPages = 50'000;
    for (int i = 0; i < kPages; i++)
        sum += gen.data().firstNonZero;
    return sum / kPages;
}

/** Per-suite content-profile knobs (see file comment). */
struct Suite
{
    const char *name;
    int workloads;
    double zeroPrefixProb;
    double meanPrefix;
};

constexpr Suite kSuites[] = {
    {"SPEC-CPU2006", 19, 0.30, 20.0},
    {"PARSEC", 13, 0.25, 18.0},
    {"Biobench", 9, 0.40, 28.0},
    {"NPB", 9, 0.50, 30.0},
    {"CloudSuite", 6, 0.20, 15.0},
};

harness::RunOutput
run(const harness::RunContext &ctx)
{
    const Suite *suite = nullptr;
    for (const Suite &s : kSuites) {
        if (ctx.param("suite") == s.name)
            suite = &s;
    }
    HS_ASSERT(suite != nullptr, "unknown suite");

    Rng rng(ctx.seed());
    double suite_sum = 0.0;
    for (int w = 0; w < suite->workloads; w++) {
        // Per-workload jitter around the suite profile.
        const double p =
            suite->zeroPrefixProb * (0.7 + 0.6 * rng.uniform());
        const double m =
            suite->meanPrefix * (0.7 + 0.6 * rng.uniform());
        suite_sum += profileMean(p, m, rng.fork());
    }

    harness::RunOutput out;
    out.scalar("workloads", suite->workloads);
    out.scalar("avg_first_nonzero_bytes",
               suite_sum / suite->workloads);
    return out;
}

} // namespace

namespace bench {

void
registerFig3FirstNonZero(harness::Registry &reg)
{
    std::vector<std::string> names;
    for (const Suite &s : kSuites)
        names.push_back(s.name);
    reg.add("fig3_first_nonzero",
            "Fig 3: average distance to the first non-zero byte "
            "(4KB in-use pages)")
        .axis("suite", std::move(names))
        .run(run);
}

} // namespace bench
