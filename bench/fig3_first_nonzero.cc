/**
 * @file
 * Figure 3: average distance to the first non-zero byte in in-use
 * 4KB pages, across 56 workload content profiles grouped by suite.
 *
 * This is the property that makes HawkEye's bloat-recovery scan cost
 * proportional to the amount of *bloat*, not to memory size: an
 * in-use page is rejected after ~10 bytes on average.
 */

#include "bench_common.hh"

using namespace bench;

namespace {

double
profileMean(double zero_prefix_prob, double mean_prefix, Rng rng)
{
    mem::ContentGenerator gen(rng, zero_prefix_prob, mean_prefix);
    double sum = 0.0;
    constexpr int kPages = 50'000;
    for (int i = 0; i < kPages; i++)
        sum += gen.data().firstNonZero;
    return sum / kPages;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Figure 3: average distance to the first non-zero byte "
           "(4KB in-use pages)",
           "HawkEye (ASPLOS'19), Figure 3");

    // 56 content profiles spread over the paper's suites. The knobs
    // model how each family lays out data: numeric HPC arrays have
    // short zero prefixes (little-endian doubles), pointer-rich
    // workloads start with non-zero bytes almost immediately.
    struct Suite
    {
        const char *name;
        int workloads;
        double zeroPrefixProb;
        double meanPrefix;
    };
    const Suite suites[] = {
        {"SPEC-CPU2006", 19, 0.30, 20.0},
        {"PARSEC", 13, 0.25, 18.0},
        {"Biobench", 9, 0.40, 28.0},
        {"NPB", 9, 0.50, 30.0},
        {"CloudSuite", 6, 0.20, 15.0},
    };

    Rng rng(1234);
    printRow({"Suite", "Workloads", "AvgFirstNonZero(B)"}, 20);
    double total = 0.0;
    int count = 0;
    for (const Suite &s : suites) {
        double suite_sum = 0.0;
        for (int w = 0; w < s.workloads; w++) {
            // Per-workload jitter around the suite profile.
            const double p =
                s.zeroPrefixProb * (0.7 + 0.6 * rng.uniform());
            const double m =
                s.meanPrefix * (0.7 + 0.6 * rng.uniform());
            const double mean = profileMean(p, m, rng.fork());
            suite_sum += mean;
            total += mean;
            count++;
        }
        printRow({s.name, fmtInt(s.workloads),
                  fmt(suite_sum / s.workloads, 2)},
                 20);
    }
    std::printf("\nOverall average over %d workloads: %.2f bytes\n",
                count, total / count);
    std::printf("Paper: 9.11 bytes average over 56 workloads; only "
                "~10 bytes need to be scanned to reject an in-use "
                "page, vs 4096 for a bloat page.\n");
    return 0;
}
