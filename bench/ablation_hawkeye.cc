/**
 * @file
 * Ablation study: which HawkEye component buys what?
 *
 * Starting from the full HawkEye-G configuration we disable one
 * mechanism at a time and measure two scenarios that stress
 * complementary parts of the design:
 *
 *   - "spinup":  a fault-dominated allocation burst (async
 *     pre-zeroing and huge-at-fault should dominate);
 *   - "hotspot": a fragmented machine with a high-VA hot region
 *     (coverage-ordered promotion should dominate).
 *
 * Not a paper table — this regenerates the design-choice evidence
 * that DESIGN.md's inventory calls out.
 *
 * Reading: disabling pre-zeroing costs the spin-up scenario its
 * synchronous 2MB zeroing; disabling huge-at-fault costs it the
 * 512x fault reduction; neither matters much for the hotspot
 * scenario, whose runtime is set by promotion ordering (and bloat
 * recovery is neutral in both).
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

core::HawkEyeConfig
variant(const std::string &name)
{
    core::HawkEyeConfig c;
    if (name == "no-prezero")
        c.enablePrezero = false;
    else if (name == "no-fault-huge")
        c.faultHuge = false;
    else if (name == "no-bloat-recovery")
        c.enableBloatRecovery = false;
    else if (name == "pmu")
        c.usePmu = true;
    return c;
}

harness::RunOutput
runSpinup(const harness::RunContext &ctx,
          const core::HawkEyeConfig &hc)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(6);
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    // Dirty boot memory so pre-zeroing actually matters.
    cfg.bootMemoryZeroed = false;
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<core::HawkEyePolicy>(hc));
    sys.costs().zeroDaemonPagesPerSec = 300'000;
    sys.run(sec(20)); // let the daemon (if enabled) pre-zero
    auto &proc = sys.addProcess(
        "spinup", workload::makeSpinUp("spinup", GiB(4),
                                       sys.rng().fork()));
    sys.runUntilAllDone(sec(600));

    harness::RunOutput out;
    out.scalar("runtime_s",
               static_cast<double>(proc.runtime()) / 1e9);
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

harness::RunOutput
runHotspot(const harness::RunContext &ctx,
           const core::HawkEyeConfig &hc)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(4);
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<core::HawkEyePolicy>(hc));
    sys.fragmentMemoryMovable(1.0, 64);
    sys.costs().promotionsPerSec = 5.0;
    workload::StreamConfig wc;
    wc.footprintBytes = GiB(1);
    wc.hotStart = 0.7;
    wc.hotEnd = 1.0;
    wc.hotFraction = 0.9;
    wc.accessesPerSec = 5e6;
    wc.workSeconds = 100.0;
    auto &proc = sys.addProcess(
        "hot", std::make_unique<workload::StreamWorkload>(
                   "hot", wc, sys.rng().fork()));
    sys.runUntilAllDone(sec(1200));

    harness::RunOutput out;
    out.scalar("runtime_s",
               static_cast<double>(proc.runtime()) / 1e9);
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

harness::RunOutput
run(const harness::RunContext &ctx)
{
    const core::HawkEyeConfig hc = variant(ctx.param("variant"));
    return ctx.param("scenario") == "spinup" ? runSpinup(ctx, hc)
                                             : runHotspot(ctx, hc);
}

} // namespace

namespace bench {

void
registerAblationHawkEye(harness::Registry &reg)
{
    reg.add("ablation_hawkeye",
            "Ablation: HawkEye with one mechanism disabled at a "
            "time")
        .axis("variant", {"full", "no-prezero", "no-fault-huge",
                          "no-bloat-recovery", "pmu"})
        .axis("scenario", {"spinup", "hotspot"})
        .run(run);
}

} // namespace bench
