/**
 * @file
 * Figure 9 + Table 6: virtualized performance when HawkEye runs at
 * the host, the guest, or both layers, versus Linux at both.
 *
 * Table 6's structure, scaled: in every configuration a policy must
 * arbitrate huge pages between a TLB-insensitive Redis and the
 * TLB-sensitive application:
 *   - host:  two VMs (VM-1 Redis, VM-2 app); the *host* policy picks
 *     which VM's EPT backing gets huge pages (Redis's VM is created
 *     first, so Linux's FCFS khugepaged serves it first);
 *   - guest: one VM running Redis + app; the *guest* policy
 *     arbitrates between the processes;
 *   - both:  two VMs, with Redis in VM-1 and both in VM-2, HawkEye
 *     at both layers.
 *
 * Expected shape (paper): every HawkEye placement beats Linux/Linux
 * (18-90% across workloads/configs); gains can exceed bare-metal
 * ones because nested walks amplify MMU overheads. Speedups compare
 * against the Linux/Linux config with the same VM topology
 * (Linux/Linux for two-VM rows, Linux/Linux-1VM for HawkEye-guest).
 */

#include "bench_common.hh"
#include "experiments.hh"
#include "virt/vm.hh"

using namespace bench;

namespace {

std::unique_ptr<workload::Workload>
makeApp(const std::string &wl_name, std::uint64_t seed)
{
    // Scale 1/4 keeps the footprint above the 2MB-TLB reach (1024 x
    // 2MB), so host-level (EPT) page sizes still matter once the
    // guest has promoted -- as at the paper's full scale.
    if (wl_name == "Graph500")
        return workload::makeGraph500(Rng(seed), workload::Scale{4},
                                      90);
    return workload::makeNpb("cg", Rng(seed), workload::Scale{6},
                             90);
}

harness::RunOutput
run(const harness::RunContext &ctx)
{
    const std::string &config = ctx.param("config");
    const std::string &wl_name = ctx.param("workload");
    const bool he_host =
        config == "HawkEye-host" || config == "HawkEye-both";
    const bool he_guest =
        config == "HawkEye-guest" || config == "HawkEye-both";
    const bool single_vm = config == "HawkEye-guest" ||
                           config == "Linux/Linux-1VM";

    sim::SystemConfig host_cfg;
    host_cfg.memoryBytes = GiB(12);
    host_cfg.seed = ctx.seed();
    host_cfg.trace = ctx.trace();
    host_cfg.fault = ctx.fault();
    host_cfg.inspect = ctx.inspect();
    host_cfg.snap = ctx.snap();
    virt::VirtualSystem vs(host_cfg,
                           makePolicy(he_host ? "HawkEye-G"
                                              : "Linux-2MB"));
    vs.host().fragmentMemoryMovable(1.0, 48);
    vs.host().costs().promotionsPerSec = 10.0;

    auto guestPol = [&]() {
        return makePolicy(he_guest ? "HawkEye-G" : "Linux-2MB");
    };
    const workload::Scale s{16};
    // Sub-seeds for guest workloads, decorrelated from the host's.
    const std::uint64_t sub = ctx.seed() ^ 0x5bf0363e49af17c1ull;

    sim::Process *app = nullptr;
    if (single_vm) {
        // One VM runs both; the guest policy arbitrates.
        virt::VmOptions opts;
        opts.guestMemBytes = GiB(8);
        opts.seed = 1;
        auto &vm = vs.addVm("vm", opts, guestPol());
        vm.guest().fragmentMemoryMovable(1.0, 48);
        vm.guest().costs().promotionsPerSec = 10.0;
        vm.addGuestProcess("redis", workload::makeRedisLight(
                                        Rng(sub + 1), s, 1e6));
        app = &vm.addGuestProcess(wl_name, makeApp(wl_name, sub + 2));
    } else {
        // Two VMs; the host policy arbitrates (Redis VM first, so
        // Linux's FCFS favours it).
        virt::VmOptions ropts;
        ropts.guestMemBytes = GiB(3);
        ropts.seed = 1;
        auto &vm1 = vs.addVm("vm-redis", ropts, guestPol());
        vm1.addGuestProcess("redis", workload::makeRedisLight(
                                         Rng(sub + 1), s, 1e6));
        virt::VmOptions aopts;
        aopts.guestMemBytes = GiB(4);
        aopts.seed = 2;
        auto &vm2 = vs.addVm("vm-app", aopts, guestPol());
        vm2.guest().fragmentMemoryMovable(1.0, 48);
        vm2.guest().costs().promotionsPerSec = 10.0;
        app = &vm2.addGuestProcess(wl_name, makeApp(wl_name, sub + 2));
    }
    vs.runUntilGuestsDone(sec(2000));

    harness::RunOutput out;
    out.scalar("app_runtime_s",
               static_cast<double>(app->runtime()) / 1e9);
    out.scalar("single_vm", single_vm ? 1.0 : 0.0);
    out.captureObs(vs.host());
    return out;
}

} // namespace

namespace bench {

void
registerFig9Virtualization(harness::Registry &reg)
{
    reg.add("fig9_virtualization",
            "Fig 9 / Table 6: HawkEye at host, guest and both "
            "layers (scaled)")
        .axis("workload", {"Graph500", "cg.D"})
        .axis("config",
              {"Linux/Linux", "Linux/Linux-1VM", "HawkEye-host",
               "HawkEye-guest", "HawkEye-both"})
        .run(run);
}

} // namespace bench
