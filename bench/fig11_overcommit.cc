/**
 * @file
 * Figure 11: memory-overcommitted host (VM reservations total ~1.5x
 * physical memory). Guest async pre-zeroing + host KSM returns
 * guest-free memory to the host — matching balloon drivers without
 * any para-virtual interface.
 *
 * The scenario staggers demand so memory must *move between VMs*:
 * VM-redis loads a large dataset, deletes most of it and keeps
 * serving; VM-mongo then loads its own large dataset — which only
 * fits if the host got redis's freed memory back. A PageRank VM runs
 * throughout.
 *
 *   - none:     Linux guests, no balloon -> mongo's load forces the
 *               host to swap out redis's dead backing page by page;
 *   - balloon:  guests return freed memory to the host immediately;
 *   - hawkeye:  HawkEye guests pre-zero freed memory and host KSM
 *               merges it away (the fully-virtual path).
 *
 * Expected shape (paper): HawkEye's fully-virtual sharing path gets
 * ~2.3x (Redis) and ~1.42x (MongoDB) over the no-balloon baseline,
 * close to explicit ballooning; PageRank degrades slightly from
 * extra COW faults. Normalize the Kops scalars against the "none"
 * row.
 */

#include "bench_common.hh"
#include "experiments.hh"
#include "virt/vm.hh"

using namespace bench;

namespace {

harness::RunOutput
run(const harness::RunContext &ctx)
{
    const std::string &mode = ctx.param("mode");
    sim::SystemConfig host_cfg;
    host_cfg.memoryBytes = GiB(6);
    host_cfg.seed = ctx.seed();
    host_cfg.trace = ctx.trace();
    host_cfg.fault = ctx.fault();
    host_cfg.inspect = ctx.inspect();
    host_cfg.snap = ctx.snap();
    const bool hawkeye = mode == "hawkeye";
    // Guest pre-zeroing must keep up with the churn rate.
    host_cfg.costs.zeroDaemonPagesPerSec = 100'000.0;
    virt::VirtualSystem vs(host_cfg,
                           hawkeye ? makePolicy("HawkEye-G")
                                   : makePolicy("Linux-2MB"));
    vs.host().enableSwap(true);
    if (hawkeye)
        vs.enableHostKsm(300'000.0);

    auto guestPolicy = [&]() {
        return hawkeye ? makePolicy("HawkEye-G")
                       : makePolicy("Linux-2MB");
    };
    // Sub-seeds for guest workloads, decorrelated from the host's.
    const std::uint64_t sub = ctx.seed() ^ 0x9d1c37fb824e05a7ull;
    virt::VmOptions opts;
    opts.guestMemBytes = GiB(3); // 3 VMs x 3GB on a 6GB host
    opts.balloon = (mode == "balloon");

    // VM-1: Redis loads 2.6GB, deletes 70%, then serves.
    opts.seed = 1;
    auto &vm1 = vs.addVm("vm-redis", opts, guestPolicy());
    {
        workload::KvConfig kc;
        kc.arenaBytes = GiB(4);
        kc.servesForever = true;
        workload::KvPhase load;
        load.type = workload::KvPhase::Type::kInsert;
        load.count = 650'000;
        load.opsPerSec = 150'000;
        workload::KvPhase del;
        del.type = workload::KvPhase::Type::kDelete;
        del.fraction = 0.7;
        del.clusterRun = 64;
        workload::KvPhase serve;
        serve.type = workload::KvPhase::Type::kServe;
        serve.durationSec = 1e6;
        serve.opsPerSec = 50'000;
        kc.phases = {load, del, serve};
        vm1.addGuestProcess(
            "redis", std::make_unique<workload::KeyValueStoreWorkload>(
                         "redis", kc, Rng(sub + 1)));
    }

    // VM-2: MongoDB waits, then needs the memory redis freed.
    opts.seed = 2;
    auto &vm2 = vs.addVm("vm-mongo", opts, guestPolicy());
    {
        workload::KvConfig kc;
        kc.arenaBytes = GiB(4);
        kc.servesForever = true;
        workload::KvPhase wait;
        wait.type = workload::KvPhase::Type::kPause;
        wait.durationSec = 60.0;
        workload::KvPhase load;
        load.type = workload::KvPhase::Type::kInsert;
        load.count = 650'000;
        load.opsPerSec = 120'000;
        workload::KvPhase del;
        del.type = workload::KvPhase::Type::kDelete;
        del.fraction = 0.7;
        del.clusterRun = 64;
        workload::KvPhase serve;
        serve.type = workload::KvPhase::Type::kServe;
        serve.durationSec = 1e6;
        serve.opsPerSec = 40'000;
        kc.phases = {wait, load, del, serve};
        vm2.addGuestProcess(
            "mongo", std::make_unique<workload::KeyValueStoreWorkload>(
                         "mongo", kc, Rng(sub + 2)));
    }

    // VM-3: PageRank-like HPC scan (steady RSS, runs throughout).
    opts.seed = 3;
    auto &vm3 = vs.addVm("vm-pagerank", opts, guestPolicy());
    workload::StreamConfig pr;
    pr.footprintBytes = GiB(3) / 2;
    pr.wssBytes = GiB(1);
    pr.zipfS = 0.4;
    pr.accessesPerSec = 2.5e6;
    pr.workSeconds = 150.0;
    auto &pagerank = vm3.addGuestProcess(
        "pagerank", std::make_unique<workload::StreamWorkload>(
                        "pagerank", pr, Rng(sub + 3)));

    vs.run(sec(200));

    auto kops = [&](virt::VirtualMachine &vm, double active_secs) {
        auto &p = *vm.guest().processes()[0];
        return static_cast<double>(p.opsCompleted()) / active_secs /
               1e3;
    };
    harness::RunOutput out;
    out.scalar("redis_kops", kops(vm1, 200.0));
    // Mongo is active only after its 60s wait.
    out.scalar("mongo_kops", kops(vm2, 140.0));
    out.scalar("pagerank_s",
               pagerank.finished()
                   ? static_cast<double>(pagerank.runtime()) / 1e9
                   : 999.0);
    out.scalar("host_swap_outs",
               static_cast<double>(
                   vs.host().swap().totalSwappedOut()));
    out.captureObs(vs.host());
    return out;
}

} // namespace

namespace bench {

void
registerFig11Overcommit(harness::Registry &reg)
{
    reg.add("fig11_overcommit",
            "Fig 11: overcommitted host (1.5x) — HawkEye "
            "pre-zeroing + KSM vs ballooning (scaled)")
        .axis("mode", {"none", "balloon", "hawkeye"})
        .run(run);
}

} // namespace bench
