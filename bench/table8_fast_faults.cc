/**
 * @file
 * Table 8: performance of fault-dominated workloads — Redis bulk
 * inserts of 2MB values, SparseHash growth, HACC-IO, JVM and KVM
 * spin-up — with and without async pre-zeroing (1/8 scale).
 *
 * These workloads have high spatial locality of faults, so huge
 * pages cut fault counts ~512x; pre-zeroing removes the remaining
 * synchronous zeroing cost. Ingens' utilization-threshold promotion
 * is counter-productive here (it keeps the full base-page fault
 * count).
 *
 * Redis rows report insert throughput in kops (higher is better);
 * all other rows report completion time in runtime_s (lower is
 * better).
 *
 * Expected shape (paper): HawkEye-2MB wins everywhere (Redis 1.26x,
 * SparseHash 1.62x over Linux-2MB; VM spin-up ~13-14x over
 * Linux-2MB at full scale); Ingens is the slowest because
 * utilization-threshold promotion keeps the full base-page fault
 * count.
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

harness::RunOutput
run(const harness::RunContext &ctx)
{
    const std::string &wl_name = ctx.param("workload");
    const workload::Scale s{8};
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(96) / s.div;
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(ctx.param("config")));

    sim::Process *proc = nullptr;
    if (wl_name == "Redis") {
        // 45GB of 2MB-value inserts (paper: throughput; we report
        // inserts/s over the load).
        workload::KvConfig kc;
        kc.arenaBytes = GiB(7);
        workload::KvPhase load;
        load.type = workload::KvPhase::Type::kInsert;
        load.count = GiB(45) / s.div / kHugePageSize;
        load.valueBytes = kHugePageSize;
        load.opsPerSec = 3'000;
        kc.phases = {load};
        proc = &sys.addProcess(
            "redis",
            std::make_unique<workload::KeyValueStoreWorkload>(
                "redis", kc, sys.rng().fork()));
    } else if (wl_name == "SparseHash") {
        proc = &sys.addProcess(
            "sparsehash",
            workload::makeSparseHash(sys.rng().fork(), s));
    } else if (wl_name == "HACC-IO") {
        proc = &sys.addProcess(
            "hacc-io", workload::makeHaccIo(sys.rng().fork(), s));
    } else if (wl_name == "JVM") {
        proc = &sys.addProcess(
            "jvm", workload::makeSpinUp("jvm-spinup",
                                        GiB(36) / s.div,
                                        sys.rng().fork()));
    } else {
        proc = &sys.addProcess(
            "kvm", workload::makeSpinUp("kvm-spinup",
                                        GiB(36) / s.div,
                                        sys.rng().fork()));
    }
    sys.runUntilAllDone(sec(4000));
    const double runtime =
        static_cast<double>(proc->runtime()) / 1e9;

    harness::RunOutput out;
    out.scalar("runtime_s", runtime);
    if (wl_name == "Redis")
        out.scalar("kops", static_cast<double>(proc->opsCompleted()) /
                               runtime / 1e3);
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

} // namespace

namespace bench {

void
registerTable8FastFaults(harness::Registry &reg)
{
    reg.add("table8_fast_faults",
            "Table 8: async pre-zeroing on fault-dominated workloads "
            "(1/8 scale)")
        .axis("workload",
              {"Redis", "SparseHash", "HACC-IO", "JVM", "KVM"})
        .axis("config", {"Linux-4KB", "Linux-2MB", "Ingens-90%",
                         "HawkEye-4KB", "HawkEye-2MB"})
        .run(run);
}

} // namespace bench
