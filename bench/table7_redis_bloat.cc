/**
 * @file
 * Table 7: Redis memory consumption and throughput after populating
 * 8M (10B,4KB) pairs and deleting 60% of keys at random (1/8 scale).
 *
 * Linux-2MB keeps the bloat (huge mappings re-inflated by
 * khugepaged); Ingens-90% avoids it but pays base-page overheads;
 * Ingens-50% behaves like Linux; HawkEye is self-tuning: full
 * huge-page throughput with no memory pressure, and recovered memory
 * under pressure. Table 7 studies the utilization threshold itself,
 * so the Ingens variants run with fixed (non-FMFI-adaptive)
 * thresholds, as the paper's text describes.
 *
 * Expected shape (paper): Linux-2MB and Ingens-50% keep ~2x the
 * memory of Linux-4KB/Ingens-90% for ~7% more throughput; HawkEye
 * matches the fast configs without pressure and sheds the bloat
 * (memory drops to the 4KB level) under pressure.
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

constexpr std::uint64_t kScale = 8;

harness::RunOutput
run(const harness::RunContext &ctx)
{
    const std::string &config = ctx.param("config");
    const bool memory_pressure = config == "HawkEye-pressure";
    const std::string policy_name =
        (config == "HawkEye" || memory_pressure) ? "HawkEye-2MB"
                                                 : config;

    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(48) / kScale;
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy_name));

    workload::KvConfig kc;
    kc.arenaBytes = GiB(8);
    workload::KvPhase load;
    load.type = workload::KvPhase::Type::kInsert;
    load.count = 8'000'000 / kScale;
    load.valueBytes = 4096;
    load.opsPerSec = 100'000;
    workload::KvPhase del;
    del.type = workload::KvPhase::Type::kDelete;
    del.fraction = 0.60;
    del.clusterRun = 64; // extent-style expiry (see KvPhase docs)
    workload::KvPhase serve;
    serve.type = workload::KvPhase::Type::kServe;
    serve.durationSec = 1000.0; // still serving when we measure
    serve.opsPerSec = 120'000;
    kc.phases = {load, del, serve};
    auto &proc = sys.addProcess(
        "redis", std::make_unique<workload::KeyValueStoreWorkload>(
                     "redis", kc, sys.rng().fork()));

    // Let the store load, delete and khugepaged/recovery react.
    sys.run(sec(100));
    if (memory_pressure) {
        // A second allocation consumes free memory, pushing the
        // system over HawkEye's high watermark.
        workload::StreamConfig wc;
        wc.footprintBytes = GiB(15) / 8; // fits: pressure, not OOM
        wc.workSeconds = 1e9;
        wc.accessesPerSec = 1e5;
        sys.addProcess("hog",
                       std::make_unique<workload::StreamWorkload>(
                           "hog", wc, sys.rng().fork()));
    }
    // Measure steady-state throughput over the serve window.
    proc.windowOps();
    const TimeNs t0 = sys.now();
    sys.run(sec(60));
    const double ops = static_cast<double>(proc.windowOps());
    const double secs = static_cast<double>(sys.now() - t0) / 1e9;

    harness::RunOutput out;
    out.scalar("mem_gb", static_cast<double>(proc.space().rssPages()) *
                             kPageSize / (1ull << 30));
    out.scalar("kops", ops / secs / 1e3);
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

} // namespace

namespace bench {

void
registerTable7RedisBloat(harness::Registry &reg)
{
    reg.add("table7_redis_bloat",
            "Table 7: Redis memory vs throughput under bloat "
            "(1/8 scale)")
        .axis("config",
              {"Linux-4KB", "Linux-2MB", "Ingens-90%-fixed",
               "Ingens-50%-fixed", "HawkEye", "HawkEye-pressure"})
        .run(run);
}

} // namespace bench
