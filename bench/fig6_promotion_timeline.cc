/**
 * @file
 * Figure 6: MMU overhead and allocated huge pages over time for
 * Graph500 and XSBench recovering from a fragmented system, under
 * Linux, Ingens and the two HawkEye variants.
 *
 * The hot regions of both applications live in the upper part of
 * their VA space, so the sequential low-to-high promotion of Linux
 * and Ingens pays off late; HawkEye's access-coverage ordering pays
 * off almost immediately.
 *
 * Expected shape (paper): HawkEye's overhead collapses within the
 * first third of the run (hot regions first), while Linux/Ingens
 * still show high overheads late; huge-page counts grow at similar
 * rates (same promotion budget) — the difference is WHICH regions
 * get promoted. The timelines are the "p1.mmu_overhead" and
 * "p1.huge_pages" series of each run.
 */

#include "bench_common.hh"
#include "experiments.hh"

using namespace bench;

namespace {

harness::RunOutput
run(const harness::RunContext &ctx)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(6);
    cfg.seed = ctx.seed();
    cfg.trace = ctx.trace();
    cfg.fault = ctx.fault();
    cfg.inspect = ctx.inspect();
    cfg.snap = ctx.snap();
    cfg.metricsPeriod = sec(1);
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(ctx.param("policy")));
    sys.fragmentMemoryMovable(1.0, 64);
    sys.costs().promotionsPerSec = 5.0;

    const workload::Scale s{8};
    auto wl = ctx.param("workload") == "Graph500"
                  ? workload::makeGraph500(sys.rng().fork(), s, 150)
                  : workload::makeXSBench(sys.rng().fork(), s, 150);
    auto &proc = sys.addProcess(ctx.param("workload"), std::move(wl));
    sys.runUntilAllDone(sec(1200));

    harness::RunOutput out;
    out.scalar("runtime_s",
               static_cast<double>(proc.runtime()) / 1e9);
    out.scalar("final_huge_pages",
               static_cast<double>(
                   proc.space().pageTable().mappedHugePages()));
    out.simTimeNs = sys.now();
    out.captureObs(sys);
    out.metrics = std::move(sys.metrics());
    return out;
}

} // namespace

namespace bench {

void
registerFig6PromotionTimeline(harness::Registry &reg)
{
    reg.add("fig6_promotion_timeline",
            "Fig 6: promotion timelines after fragmentation "
            "(1/8 scale)")
        .axis("workload", {"Graph500", "XSBench"})
        .axis("policy", {"Linux-2MB", "Ingens-90%", "HawkEye-PMU",
                         "HawkEye-G"})
        .run(run);
}

} // namespace bench
