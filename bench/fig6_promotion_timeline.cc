/**
 * @file
 * Figure 6: MMU overhead and allocated huge pages over time for
 * Graph500 and XSBench recovering from a fragmented system, under
 * Linux, Ingens and the two HawkEye variants.
 *
 * The hot regions of both applications live in the upper part of
 * their VA space, so the sequential low-to-high promotion of Linux
 * and Ingens pays off late; HawkEye's access-coverage ordering pays
 * off almost immediately.
 */

#include "bench_common.hh"

using namespace bench;

namespace {

struct Timeline
{
    TimeSeries mmu;
    TimeSeries huge;
};

Timeline
run(const std::string &policy_name, const std::string &wl_name)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(6);
    cfg.seed = 77;
    cfg.metricsPeriod = sec(1);
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy_name));
    sys.fragmentMemoryMovable(1.0, 64);
    sys.costs().promotionsPerSec = 5.0;

    const workload::Scale s{8};
    auto wl = wl_name == "Graph500"
                  ? workload::makeGraph500(sys.rng().fork(), s, 150)
                  : workload::makeXSBench(sys.rng().fork(), s, 150);
    sys.addProcess(wl_name, std::move(wl));
    sys.runUntilAllDone(sec(1200));

    Timeline t;
    t.mmu = sys.metrics().series("p1.mmu_overhead");
    t.huge = sys.metrics().series("p1.huge_pages");
    return t;
}

double
at(const TimeSeries &s, double t_sec)
{
    double v = 0.0;
    for (const auto &p : s.points()) {
        if (static_cast<double>(p.time) / 1e9 > t_sec)
            break;
        v = p.value;
    }
    return v;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Figure 6: promotion timelines after fragmentation "
           "(1/8 scale)",
           "HawkEye (ASPLOS'19), Figure 6");

    const std::vector<std::string> policies = {
        "Linux-2MB", "Ingens-90%", "HawkEye-PMU", "HawkEye-G"};

    for (const std::string wl : {"Graph500", "XSBench"}) {
        std::vector<Timeline> lines;
        for (const auto &p : policies)
            lines.push_back(run(p, wl));

        std::printf("\n%s — MMU overhead (%%) over time:\n",
                    wl.c_str());
        printRow({"t(s)", "Linux", "Ingens", "HawkEye-PMU",
                  "HawkEye-G"});
        for (double t = 10; t <= 150.0; t += 10.0) {
            printRow({fmt(t, 0), fmt(at(lines[0].mmu, t), 1),
                      fmt(at(lines[1].mmu, t), 1),
                      fmt(at(lines[2].mmu, t), 1),
                      fmt(at(lines[3].mmu, t), 1)});
        }
        std::printf("\n%s — allocated huge pages over time:\n",
                    wl.c_str());
        printRow({"t(s)", "Linux", "Ingens", "HawkEye-PMU",
                  "HawkEye-G"});
        for (double t = 10; t <= 150.0; t += 10.0) {
            printRow({fmt(t, 0), fmt(at(lines[0].huge, t), 0),
                      fmt(at(lines[1].huge, t), 0),
                      fmt(at(lines[2].huge, t), 0),
                      fmt(at(lines[3].huge, t), 0)});
        }
    }
    std::printf(
        "\nExpected shape (paper): HawkEye's overhead collapses "
        "within the first third of the run (hot regions first), while "
        "Linux/Ingens still show high overheads late; huge-page "
        "counts grow at similar rates (same promotion budget) — the "
        "difference is WHICH regions get promoted.\n");
    return 0;
}
