/** @file Trace parser + trace-driven workload tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "hawksim.hh"
#include "workload/trace.hh"

using namespace hawksim;
using workload::parseTrace;
using workload::TraceOp;
using workload::TraceWorkload;

TEST(TraceParser, ParsesAllDirectives)
{
    std::istringstream in(R"(# a comment
alloc heap 4194304
touch heap 0 16
write heap 16 4
access heap 1000 rand
access heap 500 seq
access heap 200 zipf:0.8
free heap 0 8
compute 250000
)");
    const auto ops = parseTrace(in);
    ASSERT_EQ(ops.size(), 8u);
    EXPECT_EQ(ops[0].kind, TraceOp::Kind::kAlloc);
    EXPECT_EQ(ops[0].a, 4194304u);
    EXPECT_EQ(ops[1].b, 16u);
    EXPECT_EQ(ops[2].kind, TraceOp::Kind::kWrite);
    EXPECT_FALSE(ops[3].sequential);
    EXPECT_TRUE(ops[4].sequential);
    EXPECT_DOUBLE_EQ(ops[5].zipf, 0.8);
    EXPECT_EQ(ops[6].kind, TraceOp::Kind::kFree);
    EXPECT_EQ(ops[7].a, 250000u);
}

TEST(TraceParser, RepeatUnrollsBlocks)
{
    std::istringstream in(R"(alloc a 2097152
repeat 3
touch a 0 4
free a 0 4
end
)");
    const auto ops = parseTrace(in);
    // alloc + 3 x (touch, free)
    ASSERT_EQ(ops.size(), 7u);
    EXPECT_EQ(ops[1].kind, TraceOp::Kind::kTouch);
    EXPECT_EQ(ops[5].kind, TraceOp::Kind::kTouch);
    EXPECT_EQ(ops[6].kind, TraceOp::Kind::kFree);
}

TEST(TraceParser, NestedRepeats)
{
    std::istringstream in(R"(alloc a 2097152
repeat 2
repeat 2
compute 10
end
end
)");
    const auto ops = parseTrace(in);
    EXPECT_EQ(ops.size(), 1u + 4u);
}

TEST(TraceWorkload, ReplayDrivesRealMemoryState)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(128);
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    std::istringstream in(R"(alloc heap 16777216
touch heap 0 4096
access heap 200000 rand
free heap 0 2048
compute 1000000
)");
    auto &proc = sys.addProcess(
        "trace", TraceWorkload::fromStream("trace", in, Rng(3)));
    sys.runUntilAllDone(sec(60));
    ASSERT_TRUE(proc.finished());
    // 4096 pages touched, 2048 freed.
    EXPECT_EQ(proc.space().rssPages(), 0u); // released at exit
    EXPECT_GT(proc.pageFaults(), 0u);
    EXPECT_GT(proc.counters().tlbAccesses, 100000u);
}

TEST(TraceWorkload, ChurnLoopInteractsWithPolicies)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(128);
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
    std::istringstream in(R"(alloc heap 33554432
repeat 4
touch heap 0 8192
free heap 0 8192
end
)");
    auto &proc = sys.addProcess(
        "churn", TraceWorkload::fromStream("churn", in, Rng(5)));
    sys.runUntilAllDone(sec(120));
    ASSERT_TRUE(proc.finished());
    // Huge-at-fault: 8192 pages = 16 regions per iteration.
    EXPECT_EQ(proc.pageFaults(), 4u * 16u);
    EXPECT_EQ(sys.phys().usedFrames(), 1u);
}

TEST(TraceWorkload, MidTraceStateIsQueryable)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(128);
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>(
        policy::LinuxConfig{.thp = false}));
    std::istringstream in(R"(alloc heap 8388608
touch heap 0 2048
compute 30000000000
)");
    auto &proc = sys.addProcess(
        "t", TraceWorkload::fromStream("t", in, Rng(7)));
    sys.run(sec(5)); // inside the 30s compute op
    EXPECT_FALSE(proc.finished());
    EXPECT_EQ(proc.space().rssPages(), 2048u);
}
