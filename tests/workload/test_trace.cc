/** @file Trace parser + trace-driven workload tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "hawksim.hh"
#include "workload/trace.hh"

using namespace hawksim;
using workload::parseTrace;
using workload::TraceError;
using workload::TraceOp;
using workload::TraceWorkload;

namespace {

/** Parse and return the TraceError the input must provoke. */
TraceError
parseFailure(const std::string &text)
{
    std::istringstream in(text);
    try {
        parseTrace(in, "corpus");
    } catch (const TraceError &e) {
        return e;
    }
    ADD_FAILURE() << "trace parsed cleanly: " << text;
    return TraceError("corpus", 0, "none", "did not throw");
}

} // namespace

TEST(TraceParser, ParsesAllDirectives)
{
    std::istringstream in(R"(# a comment
alloc heap 4194304
touch heap 0 16
write heap 16 4
access heap 1000 rand
access heap 500 seq
access heap 200 zipf:0.8
free heap 0 8
compute 250000
)");
    const auto ops = parseTrace(in);
    ASSERT_EQ(ops.size(), 8u);
    EXPECT_EQ(ops[0].kind, TraceOp::Kind::kAlloc);
    EXPECT_EQ(ops[0].a, 4194304u);
    EXPECT_EQ(ops[1].b, 16u);
    EXPECT_EQ(ops[2].kind, TraceOp::Kind::kWrite);
    EXPECT_FALSE(ops[3].sequential);
    EXPECT_TRUE(ops[4].sequential);
    EXPECT_DOUBLE_EQ(ops[5].zipf, 0.8);
    EXPECT_EQ(ops[6].kind, TraceOp::Kind::kFree);
    EXPECT_EQ(ops[7].a, 250000u);
}

TEST(TraceParser, RepeatUnrollsBlocks)
{
    std::istringstream in(R"(alloc a 2097152
repeat 3
touch a 0 4
free a 0 4
end
)");
    const auto ops = parseTrace(in);
    // alloc + 3 x (touch, free)
    ASSERT_EQ(ops.size(), 7u);
    EXPECT_EQ(ops[1].kind, TraceOp::Kind::kTouch);
    EXPECT_EQ(ops[5].kind, TraceOp::Kind::kTouch);
    EXPECT_EQ(ops[6].kind, TraceOp::Kind::kFree);
}

TEST(TraceParser, NestedRepeats)
{
    std::istringstream in(R"(alloc a 2097152
repeat 2
repeat 2
compute 10
end
end
)");
    const auto ops = parseTrace(in);
    EXPECT_EQ(ops.size(), 1u + 4u);
}

// Malformed-trace corpus: every rejection carries source, 1-based
// line and the offending field, so tools can point at the exact spot.

TEST(TraceParserErrors, TruncatedFileUnterminatedRepeat)
{
    const TraceError e = parseFailure("alloc a 2097152\n"
                                      "repeat 4\n"
                                      "touch a 0 4\n"); // EOF, no end
    EXPECT_EQ(e.source(), "corpus");
    EXPECT_EQ(e.field(), "repeat");
    EXPECT_NE(std::string(e.what()).find("truncated"),
              std::string::npos);
}

TEST(TraceParserErrors, UnknownDirectiveRejected)
{
    const TraceError e = parseFailure("alloc a 2097152\n"
                                      "munch a 0 4\n");
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.field(), "directive");
}

TEST(TraceParserErrors, OutOfRangeVpnRejectedAtParseTime)
{
    // 2 MiB VMA = 512 pages; touching [500, 500+64) walks past it.
    const TraceError e = parseFailure("alloc heap 2097152\n"
                                      "touch heap 500 64\n");
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.field(), "page");
    // Free beyond the VMA is caught the same way.
    EXPECT_EQ(parseFailure("alloc heap 2097152\n"
                           "free heap 0 513\n")
                  .field(),
              "page");
}

TEST(TraceParserErrors, UnknownVmaRejectedAtParseTime)
{
    const TraceError e = parseFailure("alloc heap 2097152\n"
                                      "touch stack 0 4\n");
    EXPECT_EQ(e.field(), "vma");
    EXPECT_EQ(parseFailure("access nowhere 100 rand\n").field(),
              "vma");
}

TEST(TraceParserErrors, NanAndNonPositiveZipfRejected)
{
    EXPECT_EQ(parseFailure("alloc a 2097152\n"
                           "access a 100 zipf:nan\n")
                  .field(),
              "pattern");
    EXPECT_EQ(parseFailure("alloc a 2097152\n"
                           "access a 100 zipf:inf\n")
                  .field(),
              "pattern");
    EXPECT_EQ(parseFailure("alloc a 2097152\n"
                           "access a 100 zipf:-0.5\n")
                  .field(),
              "pattern");
    EXPECT_EQ(parseFailure("alloc a 2097152\n"
                           "access a 100 zipf:cheese\n")
                  .field(),
              "pattern");
}

TEST(TraceParserErrors, OverflowAndNegativeCountsRejected)
{
    // 2^64 + change: would silently wrap under `stream >> uint64`.
    EXPECT_EQ(parseFailure("alloc a 99999999999999999999\n").field(),
              "bytes");
    EXPECT_EQ(parseFailure("alloc a 2097152\n"
                           "touch a 0 -4\n")
                  .field(),
              "n");
    EXPECT_EQ(parseFailure("compute -100\n").field(), "ns");
    EXPECT_EQ(parseFailure("alloc a 0\n").field(), "bytes");
}

TEST(TraceParserErrors, MissingFieldsRejected)
{
    EXPECT_EQ(parseFailure("alloc heap\n").field(), "bytes");
    EXPECT_EQ(parseFailure("alloc a 2097152\n"
                           "access a 100\n")
                  .field(),
              "pattern");
    EXPECT_EQ(parseFailure("alloc a 2097152\n"
                           "free a 0\n")
                  .field(),
              "n");
    EXPECT_EQ(parseFailure("end\n").field(), "end");
    EXPECT_EQ(parseFailure("repeat 0\n").field(), "k");
}

TEST(TraceWorkload, ReplayDrivesRealMemoryState)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(128);
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    std::istringstream in(R"(alloc heap 16777216
touch heap 0 4096
access heap 200000 rand
free heap 0 2048
compute 1000000
)");
    auto &proc = sys.addProcess(
        "trace", TraceWorkload::fromStream("trace", in, Rng(3)));
    sys.runUntilAllDone(sec(60));
    ASSERT_TRUE(proc.finished());
    // 4096 pages touched, 2048 freed.
    EXPECT_EQ(proc.space().rssPages(), 0u); // released at exit
    EXPECT_GT(proc.pageFaults(), 0u);
    EXPECT_GT(proc.counters().tlbAccesses, 100000u);
}

TEST(TraceWorkload, ChurnLoopInteractsWithPolicies)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(128);
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
    std::istringstream in(R"(alloc heap 33554432
repeat 4
touch heap 0 8192
free heap 0 8192
end
)");
    auto &proc = sys.addProcess(
        "churn", TraceWorkload::fromStream("churn", in, Rng(5)));
    sys.runUntilAllDone(sec(120));
    ASSERT_TRUE(proc.finished());
    // Huge-at-fault: 8192 pages = 16 regions per iteration.
    EXPECT_EQ(proc.pageFaults(), 4u * 16u);
    EXPECT_EQ(sys.phys().usedFrames(), 1u);
}

TEST(TraceWorkload, MidTraceStateIsQueryable)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(128);
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>(
        policy::LinuxConfig{.thp = false}));
    std::istringstream in(R"(alloc heap 8388608
touch heap 0 2048
compute 30000000000
)");
    auto &proc = sys.addProcess(
        "t", TraceWorkload::fromStream("t", in, Rng(7)));
    sys.run(sec(5)); // inside the 30s compute op
    EXPECT_FALSE(proc.finished());
    EXPECT_EQ(proc.space().rssPages(), 2048u);
}
