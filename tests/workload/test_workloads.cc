/** @file Workload model tests: chunk structure, phases, presets. */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

struct WlFixture
{
    explicit WlFixture(std::uint64_t mem = MiB(256))
    {
        setLogQuiet(true);
        sim::SystemConfig cfg;
        cfg.memoryBytes = mem;
        sys = std::make_unique<sim::System>(cfg);
        sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    }
    std::unique_ptr<sim::System> sys;
};

} // namespace

TEST(StreamWorkload, InitPhaseTouchesWholeFootprint)
{
    WlFixture f;
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(16);
    wc.workSeconds = 10.0; // still running when we check
    auto &proc = f.sys->addProcess(
        "s", std::make_unique<workload::StreamWorkload>("s", wc,
                                                        Rng(1)));
    f.sys->run(sec(2));
    ASSERT_FALSE(proc.finished());
    EXPECT_EQ(proc.space().mappedPages(), MiB(16) / kPageSize);
}

TEST(StreamWorkload, FinishesAfterWorkSeconds)
{
    WlFixture f;
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(8);
    wc.workSeconds = 1.0;
    wc.accessesPerSec = 1e5; // negligible overhead
    auto &proc = f.sys->addProcess(
        "s", std::make_unique<workload::StreamWorkload>("s", wc,
                                                        Rng(1)));
    f.sys->runUntilAllDone(sec(60));
    ASSERT_TRUE(proc.finished());
    // Runtime ~= workSeconds + init/fault overheads (small here).
    EXPECT_GE(proc.runtime(), sec(1));
    EXPECT_LE(proc.runtime(), sec(3));
}

TEST(StreamWorkload, CoverageRestrictionLimitsPagesPerRegion)
{
    WlFixture f;
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(8);
    wc.coveragePages = 8;
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    workload::StreamWorkload wl("s", wc, Rng(1));
    auto &proc = f.sys->addProcess(
        "s", std::make_unique<workload::StreamWorkload>("s", wc,
                                                        Rng(1)));
    auto *stream = static_cast<workload::StreamWorkload *>(
        &proc.workload());
    workload::WorkChunk chunk;
    stream->next(proc, msec(10), chunk);
    for (const auto &s : chunk.sample)
        EXPECT_LT(s.vpn & 511, 8u);
    for (Vpn v : chunk.touches)
        EXPECT_LT(v & 511, 8u);
}

TEST(WorkChunk, ResetClearsStateAndKeepsCapacity)
{
    workload::WorkChunk chunk;
    chunk.compute = 123;
    chunk.faults = {1, 2, 3};
    chunk.faultsAreWrites = false;
    chunk.accessCount = 99;
    chunk.sample = {{4, true}};
    chunk.touches = {5, 6};
    chunk.sequentiality = 0.7;
    chunk.frees = {{4096, 4096}};
    chunk.opsCompleted = 2;
    chunk.done = true;
    const std::size_t faults_cap = chunk.faults.capacity();
    const std::size_t touches_cap = chunk.touches.capacity();

    chunk.reset();
    EXPECT_EQ(chunk.compute, 0);
    EXPECT_TRUE(chunk.faults.empty());
    EXPECT_TRUE(chunk.faultsAreWrites);
    EXPECT_EQ(chunk.accessCount, 0u);
    EXPECT_TRUE(chunk.sample.empty());
    EXPECT_TRUE(chunk.touches.empty());
    EXPECT_EQ(chunk.sequentiality, 0.0);
    EXPECT_TRUE(chunk.frees.empty());
    EXPECT_EQ(chunk.opsCompleted, 0u);
    EXPECT_FALSE(chunk.done);
    // The buffers must be reusable without re-allocation.
    EXPECT_EQ(chunk.faults.capacity(), faults_cap);
    EXPECT_EQ(chunk.touches.capacity(), touches_cap);
}

TEST(WorkChunk, ReusedAcrossNextCallsWithoutStaleState)
{
    // The engine hands the same chunk to every next() call; a
    // workload must fully overwrite it (via reset) so nothing leaks
    // from one quantum into the following one.
    WlFixture f;
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(8);
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    auto &proc = f.sys->addProcess(
        "s", std::make_unique<workload::StreamWorkload>("s", wc,
                                                        Rng(1)));
    auto *stream = static_cast<workload::StreamWorkload *>(
        &proc.workload());
    workload::WorkChunk chunk;
    // Poison the chunk; next() must start from a clean slate.
    chunk.done = true;
    chunk.compute = 777;
    chunk.faults = {999999};
    chunk.frees = {{0, 4096}};
    stream->next(proc, msec(10), chunk);
    EXPECT_FALSE(chunk.done);
    for (Vpn v : chunk.faults)
        EXPECT_NE(v, 999999u);
    EXPECT_TRUE(chunk.frees.empty());
}

TEST(LinearTouch, FaultCountMatchesPages)
{
    WlFixture f;
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(8);
    lc.iterations = 3;
    auto &proc = f.sys->addProcess(
        "t", std::make_unique<workload::LinearTouchWorkload>(
                 "t", lc, Rng(1)));
    f.sys->runUntilAllDone(sec(300));
    ASSERT_TRUE(proc.finished());
    auto *wl = static_cast<workload::LinearTouchWorkload *>(
        &proc.workload());
    EXPECT_EQ(wl->touchesDone(), 3 * MiB(8) / kPageSize);
    // Each iteration frees, so the last iteration leaves nothing:
    EXPECT_EQ(proc.space().rssPages(), 0u);
}

TEST(LinearTouch, HugePagesCutFaultsByFiveHundred)
{
    // The Table 1 effect: THP cuts page faults by ~512x for
    // sequential touch patterns.
    auto run = [](bool thp) {
        WlFixture f;
        policy::LinuxConfig c;
        c.thp = thp;
        f.sys->setPolicy(
            std::make_unique<policy::LinuxThpPolicy>(c));
        workload::LinearTouchConfig lc;
        lc.bytes = MiB(64);
        auto &proc = f.sys->addProcess(
            "t", std::make_unique<workload::LinearTouchWorkload>(
                     "t", lc, Rng(1)));
        f.sys->runUntilAllDone(sec(300));
        return proc.pageFaults();
    };
    const std::uint64_t f4k = run(false);
    const std::uint64_t f2m = run(true);
    EXPECT_EQ(f4k, MiB(64) / kPageSize);
    EXPECT_EQ(f2m, MiB(64) / kHugePageSize);
}

TEST(KvStore, InsertDeleteServeLifecycle)
{
    WlFixture f;
    workload::KvConfig kc;
    kc.arenaBytes = MiB(64);
    workload::KvPhase ins;
    ins.type = workload::KvPhase::Type::kInsert;
    ins.count = 4000;
    ins.valueBytes = 4096;
    workload::KvPhase del;
    del.type = workload::KvPhase::Type::kDelete;
    del.fraction = 0.5;
    workload::KvPhase serve;
    serve.type = workload::KvPhase::Type::kServe;
    serve.durationSec = 0.5;
    serve.opsPerSec = 1000;
    kc.phases = {ins, del, serve};
    auto &proc = f.sys->addProcess(
        "kv", std::make_unique<workload::KeyValueStoreWorkload>(
                  "kv", kc, Rng(1)));
    auto *kv = static_cast<workload::KeyValueStoreWorkload *>(
        &proc.workload());
    f.sys->runUntilAllDone(sec(120));
    ASSERT_TRUE(proc.finished());
    EXPECT_EQ(kv->liveValues(), 2000u);
    EXPECT_GT(proc.opsCompleted(), 4000u);
}

TEST(KvStore, DeleteReleasesMemoryViaMadvise)
{
    WlFixture f;
    workload::KvConfig kc;
    kc.arenaBytes = MiB(64);
    workload::KvPhase ins;
    ins.type = workload::KvPhase::Type::kInsert;
    ins.count = 8000;
    workload::KvPhase del;
    del.type = workload::KvPhase::Type::kDelete;
    del.fraction = 0.8;
    workload::KvPhase hold;
    hold.type = workload::KvPhase::Type::kPause;
    hold.durationSec = 1e9; // keep running
    kc.phases = {ins, del, hold};
    policy::LinuxConfig lc;
    lc.thp = false; // base pages: frees return 1:1
    f.sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>(lc));
    auto &proc = f.sys->addProcess(
        "kv", std::make_unique<workload::KeyValueStoreWorkload>(
                  "kv", kc, Rng(1)));
    f.sys->run(sec(20));
    // 80% deleted: RSS reflects the survivors (plus rounding).
    EXPECT_LT(proc.space().rssPages(), 8000u * 3 / 10);
    EXPECT_GT(proc.space().rssPages(), 1000u);
}

TEST(KvStore, SmallValueSlotsAreReused)
{
    WlFixture f;
    workload::KvConfig kc;
    kc.arenaBytes = MiB(64);
    workload::KvPhase ins;
    ins.type = workload::KvPhase::Type::kInsert;
    ins.count = 2000;
    workload::KvPhase del;
    del.type = workload::KvPhase::Type::kDelete;
    del.fraction = 1.0;
    workload::KvPhase ins2 = ins;
    kc.phases = {ins, del, ins2};
    auto &proc = f.sys->addProcess(
        "kv", std::make_unique<workload::KeyValueStoreWorkload>(
                  "kv", kc, Rng(1)));
    f.sys->runUntilAllDone(sec(120));
    // Reinsertion reused the freed slots: footprint did not double.
    EXPECT_LT(proc.space().mappedPages(), 2500u);
}

TEST(Presets, FactoriesProduceRunnableWorkloads)
{
    for (const char *which : {"cg", "mg", "bt", "sp", "lu", "ua",
                              "ft"}) {
        auto wl = workload::makeNpb(which, Rng(1),
                                    workload::Scale{64}, 1.0);
        ASSERT_NE(wl, nullptr);
        EXPECT_EQ(wl->name(), std::string(which) + ".D");
        EXPECT_GT(wl->config().footprintBytes, 0u);
    }
    EXPECT_EQ(workload::makeGraph500(Rng(1))->name(), "Graph500");
    EXPECT_EQ(workload::makeXSBench(Rng(1))->name(), "XSBench");
    // Graph500's hot zone sits in the upper VA range (Fig. 6).
    EXPECT_GE(workload::makeGraph500(Rng(1))->config().hotStart,
              0.5);
}
