/** @file Table 2 catalogue sanity checks. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/suite.hh"

using namespace hawksim;

TEST(SuiteCatalog, HasSeventyNineApplications)
{
    EXPECT_EQ(workload::table2Catalog().size(), 79u);
}

TEST(SuiteCatalog, PaperSensitiveCountsPerSuite)
{
    // Table 2's row counts: total and sensitive per suite.
    const std::map<std::string, std::pair<int, int>> expected = {
        {"SPEC-int", {12, 4}}, {"SPEC-fp", {19, 3}},
        {"PARSEC", {13, 2}},   {"SPLASH-2", {10, 0}},
        {"Biobench", {9, 2}},  {"NPB", {9, 2}},
        {"CloudSuite", {7, 2}},
    };
    std::map<std::string, std::pair<int, int>> got;
    for (const auto &app : workload::table2Catalog()) {
        got[app.suite].first++;
        if (app.paperSensitive)
            got[app.suite].second++;
    }
    EXPECT_EQ(got, expected);
}

TEST(SuiteCatalog, NamesUniqueWithinSuite)
{
    std::set<std::string> seen;
    for (const auto &app : workload::table2Catalog())
        EXPECT_TRUE(seen.insert(app.suite + "/" + app.name).second)
            << app.suite << "/" << app.name;
}

TEST(SuiteCatalog, ProfilesAreWellFormed)
{
    for (const auto &app : workload::table2Catalog()) {
        EXPECT_GT(app.config.footprintBytes, 0u) << app.name;
        EXPECT_GE(app.config.footprintBytes, app.config.wssBytes)
            << app.name;
        EXPECT_GT(app.config.accessesPerSec, 0.0) << app.name;
        EXPECT_GE(app.config.sequentialFraction, 0.0) << app.name;
        EXPECT_LE(app.config.sequentialFraction, 1.0) << app.name;
        EXPECT_GT(app.config.workSeconds, 0.0) << app.name;
    }
}

TEST(SuiteCatalog, SensitiveProfilesLookSensitive)
{
    // Structural expectation: paper-sensitive apps have high access
    // rates and mostly-random streams; the measured classification
    // lives in the Table 2 bench.
    for (const auto &app : workload::table2Catalog()) {
        if (!app.paperSensitive)
            continue;
        EXPECT_GE(app.config.accessesPerSec, 3e6) << app.name;
        EXPECT_LE(app.config.sequentialFraction, 0.35) << app.name;
        EXPECT_GE(app.config.wssBytes, 100ull << 20) << app.name;
    }
}
