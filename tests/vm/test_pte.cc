/** @file PTE bit-packing unit tests. */

#include <gtest/gtest.h>

#include "vm/pte.hh"

using namespace hawksim;
using vm::Pte;

TEST(Pte, DefaultIsNotPresent)
{
    Pte e;
    EXPECT_FALSE(e.present());
    EXPECT_EQ(e.raw(), 0u);
}

TEST(Pte, MakePacksPfnAndFlags)
{
    const Pte e = Pte::make(0x123456, vm::kPtePresent | vm::kPteDirty);
    EXPECT_EQ(e.pfn(), 0x123456u);
    EXPECT_TRUE(e.present());
    EXPECT_TRUE(e.dirty());
    EXPECT_FALSE(e.huge());
}

TEST(Pte, FlagsRoundTrip)
{
    Pte e = Pte::make(7, vm::kPtePresent);
    e.setFlag(vm::kPteAccessed);
    e.setFlag(vm::kPteCow | vm::kPteZero);
    EXPECT_TRUE(e.accessed());
    EXPECT_TRUE(e.cow());
    EXPECT_TRUE(e.zeroPage());
    e.clearFlag(vm::kPteAccessed);
    EXPECT_FALSE(e.accessed());
    EXPECT_TRUE(e.cow());
    EXPECT_EQ(e.pfn(), 7u); // flags edits never disturb the pfn
}

TEST(Pte, LargePfnsSurvive)
{
    // 40-bit frame numbers (the x86-64 physical range).
    const Pfn big = (1ull << 39) + 12345;
    const Pte e = Pte::make(big, vm::kPtePresent | vm::kPteHuge);
    EXPECT_EQ(e.pfn(), big);
    EXPECT_TRUE(e.huge());
}

TEST(Pte, FlagMaskIsolation)
{
    // Flags beyond bit 11 must not leak into the pfn field.
    const Pte e = Pte::make(1, 0xffff);
    EXPECT_EQ(e.pfn(), 1u);
}
