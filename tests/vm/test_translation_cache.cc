/**
 * @file
 * Translation-cache tests: the epoch counter, invalidation on every
 * structural mutation (promotion, demotion, unmap, COW remap,
 * madvise), the fused lookupAndTouch walk, and consistency between
 * cached reads and full leaf iteration.
 *
 * The cache is behavior-invisible by design: every test here warms
 * the cache first (a lookup on the soon-to-be-mutated region), then
 * checks that post-mutation reads see the new truth — exactly what a
 * cacheless table would return.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/rng.hh"
#include "mem/phys.hh"
#include "vm/address_space.hh"
#include "vm/page_table.hh"

using namespace hawksim;
using vm::PageTable;
using vm::Pte;

TEST(TranslationCache, EpochBumpsOnEveryStructuralMutation)
{
    PageTable pt;
    std::uint64_t e = pt.translationEpoch();
    auto bumped = [&] {
        const std::uint64_t prev = e;
        e = pt.translationEpoch();
        return e != prev;
    };

    pt.mapBase(0x100, 1);
    EXPECT_TRUE(bumped());
    pt.remapBase(0x100, 2);
    EXPECT_TRUE(bumped());
    pt.unmapBase(0x100);
    EXPECT_TRUE(bumped());
    pt.mapHuge(1 << 9, 512);
    EXPECT_TRUE(bumped());
    pt.demote(1 << 9);
    EXPECT_TRUE(bumped());
    pt.promote(1 << 9, 1024);
    EXPECT_TRUE(bumped());
    pt.unmapHuge(1 << 9);
    EXPECT_TRUE(bumped());

    // Flag-only operations read/write entries through live node
    // pointers and must NOT invalidate the cache.
    pt.mapBase(0x200, 7);
    const std::uint64_t before = pt.translationEpoch();
    pt.touch(0x200, true);
    pt.clearAccessed(1);
    (void)pt.lookup(0x200);
    EXPECT_EQ(pt.translationEpoch(), before);
}

TEST(TranslationCache, PromoteInvalidatesWarmLookup)
{
    PageTable pt;
    const Vpn base = 3 << 9;
    pt.mapBase(base + 4, 100);
    // Warm the cache on this region.
    ASSERT_TRUE(pt.lookup(base + 4).present);
    ASSERT_EQ(pt.population(3), 1u);

    pt.promote(base, 4096);
    auto t = pt.lookup(base + 4);
    ASSERT_TRUE(t.present);
    EXPECT_TRUE(t.huge);
    EXPECT_EQ(t.pfn, 4096u + 4);
    EXPECT_EQ(pt.population(3), 512u);
}

TEST(TranslationCache, DemoteInvalidatesWarmLookup)
{
    PageTable pt;
    const Vpn base = 5 << 9;
    pt.mapHuge(base, 8192);
    ASSERT_TRUE(pt.lookup(base + 9).huge);

    pt.demote(base);
    auto t = pt.lookup(base + 9);
    ASSERT_TRUE(t.present);
    EXPECT_FALSE(t.huge);
    EXPECT_EQ(t.pfn, 8192u + 9);
    EXPECT_TRUE(pt.touch(base + 9, true));
    EXPECT_TRUE(pt.lookup(base + 9).entry.dirty());
}

TEST(TranslationCache, UnmapInvalidatesWarmLookup)
{
    PageTable pt;
    pt.mapBase(0x4321, 55);
    ASSERT_TRUE(pt.lookup(0x4321).present);
    pt.unmapBase(0x4321);
    EXPECT_FALSE(pt.lookup(0x4321).present);
    EXPECT_FALSE(pt.touch(0x4321, false));

    const Vpn base = 8 << 9;
    pt.mapHuge(base, 512);
    ASSERT_TRUE(pt.lookup(base + 3).present);
    pt.unmapHuge(base);
    EXPECT_FALSE(pt.lookup(base + 3).present);
    EXPECT_EQ(pt.population(8), 0u);
}

TEST(TranslationCache, CowRemapInvalidatesWarmLookup)
{
    PageTable pt;
    pt.mapBase(0x999, 10, vm::kPtePresent | vm::kPteCow);
    ASSERT_TRUE(pt.lookup(0x999).entry.cow());
    // The COW break retargets the mapping in place.
    pt.remapBase(0x999, 77);
    auto t = pt.lookup(0x999);
    EXPECT_EQ(t.pfn, 77u);
    EXPECT_TRUE(t.entry.cow()); // remap preserves flags
}

TEST(TranslationCache, MadviseDontneedInvalidatesWarmLookup)
{
    mem::PhysicalMemory pm(MiB(64));
    vm::AddressSpace space(1, pm);
    const Addr base = space.mmapAnon(MiB(4), "a");
    const Vpn vpn = addrToVpn(base);
    for (unsigned i = 0; i < 512; i++) {
        auto blk = pm.allocBlock(0, 1, mem::ZeroPref::kPreferZero);
        ASSERT_TRUE(blk.has_value());
        space.mapBasePage(vpn + i, blk->pfn);
    }
    auto &pt = space.pageTable();
    ASSERT_TRUE(pt.lookup(vpn + 17).present); // warm
    ASSERT_EQ(pt.population(vpn >> 9), 512u);

    space.madviseDontneed(base, kHugePageSize);
    EXPECT_FALSE(pt.lookup(vpn + 17).present);
    EXPECT_EQ(pt.population(vpn >> 9), 0u);
}

TEST(TranslationCache, LookupAndTouchMatchesLookupThenTouch)
{
    // The fused walk must be observationally identical to the seed's
    // two-walk sequence, for every kind of mapping and repeated use.
    PageTable fused, ref;
    const Vpn b0 = 2 << 9, b1 = 6 << 9;
    for (auto *pt : {&fused, &ref}) {
        pt->mapBase(b0 + 1, 100);
        pt->mapBase(b0 + 2, 101, vm::kPtePresent | vm::kPteCow);
        pt->mapHuge(b1, 4096);
    }

    Rng rng(99);
    for (int i = 0; i < 2000; i++) {
        const Vpn vpn =
            rng.chance(0.5) ? b0 + rng.below(4) : b1 + rng.below(512);
        const bool write = rng.chance(0.4);
        vm::Translation a = fused.lookupAndTouch(vpn, write);
        vm::Translation b = ref.lookup(vpn);
        if (b.present)
            ref.touch(vpn, write);
        EXPECT_EQ(a.present, b.present);
        EXPECT_EQ(a.huge, b.huge);
        EXPECT_EQ(a.pfn, b.pfn);
        // Pre-touch snapshot: what lookup-then-touch observes.
        EXPECT_EQ(a.entry.raw(), b.entry.raw());
        // And the tables agree afterwards.
        EXPECT_EQ(fused.lookup(vpn).entry.raw(),
                  ref.lookup(vpn).entry.raw());
    }
}

TEST(TranslationCache, RuntimeDisableIsBehaviorIdentical)
{
    PageTable on, off;
    Rng rng(7);
    for (int i = 0; i < 500; i++) {
        const Vpn vpn = rng.below(1 << 12);
        const bool write = rng.chance(0.3);
        vm::PageTable::setTranslationCacheEnabled(true);
        if (!on.lookup(vpn).present)
            on.mapBase(vpn, vpn + 9);
        vm::Translation a = on.lookupAndTouch(vpn, write);
        vm::PageTable::setTranslationCacheEnabled(false);
        if (!off.lookup(vpn).present)
            off.mapBase(vpn, vpn + 9);
        vm::Translation b = off.lookupAndTouch(vpn, write);
        EXPECT_EQ(a.entry.raw(), b.entry.raw());
        EXPECT_EQ(a.pfn, b.pfn);
    }
    vm::PageTable::setTranslationCacheEnabled(true);
}

/**
 * Consistency sweep: after a random mutation storm with interleaved
 * cache-warming reads, cached population() must agree with a full
 * forEachLeaf pass for every region.
 */
TEST(TranslationCache, ForEachLeafMatchesCachedPopulationSweep)
{
    Rng rng(4242);
    PageTable pt;
    std::map<std::uint64_t, bool> huge_regions; // region -> isHuge
    for (int step = 0; step < 3000; step++) {
        const std::uint64_t region = rng.below(24);
        const Vpn vpn = (region << 9) + rng.below(512);
        // Interleave reads so cache slots stay warm across mutations.
        (void)pt.lookup(vpn);
        (void)pt.population(region);
        const bool huge = huge_regions.count(region) &&
                          huge_regions[region];
        switch (rng.below(5)) {
          case 0:
            if (!huge && !pt.lookup(vpn).present)
                pt.mapBase(vpn, rng.below(1 << 20));
            break;
          case 1:
            if (!huge && pt.lookup(vpn).present)
                pt.unmapBase(vpn);
            break;
          case 2:
            if (!huge) {
                pt.promote(region << 9, region << 9);
                huge_regions[region] = true;
            }
            break;
          case 3:
            if (huge) {
                pt.demote(region << 9);
                huge_regions[region] = false;
            }
            break;
          case 4:
            if (pt.lookup(vpn).present)
                pt.touch(vpn, rng.chance(0.5));
            break;
        }
    }

    std::map<std::uint64_t, unsigned> leaf_pop;
    pt.forEachLeaf([&](Vpn vpn, const Pte &, bool huge) {
        leaf_pop[vpn >> 9] += huge ? 512 : 1;
    });
    for (std::uint64_t region = 0; region < 24; region++) {
        const unsigned expect =
            leaf_pop.count(region) ? leaf_pop[region] : 0;
        EXPECT_EQ(pt.population(region), expect)
            << "region " << region;
        const auto view = pt.regionView(region);
        EXPECT_EQ(view.population, expect) << "region " << region;
        EXPECT_EQ(view.accessed, pt.accessedCount(region))
            << "region " << region;
        EXPECT_EQ(view.huge, pt.isHuge(region))
            << "region " << region;
    }
}
