/**
 * @file
 * AddressSpace tests: VMAs, madvise semantics (huge-page splitting),
 * promotion copy semantics, zero-page dedup and COW, RSS accounting.
 */

#include <gtest/gtest.h>

#include "mem/phys.hh"
#include "vm/address_space.hh"

using namespace hawksim;
using mem::PageContent;
using mem::PhysicalMemory;
using mem::ZeroPref;
using vm::AddressSpace;

namespace {

struct Fixture
{
    Fixture() : pm(MiB(64)), space(1, pm) {}
    PhysicalMemory pm;
    AddressSpace space;

    /** Map n base pages at the start of a fresh VMA; returns base. */
    Addr
    mapPages(std::uint64_t n, const std::string &name = "a")
    {
        const Addr base = space.mmapAnon(n * kPageSize, name);
        for (std::uint64_t i = 0; i < n; i++) {
            auto blk = pm.allocBlock(0, 1, ZeroPref::kPreferZero);
            EXPECT_TRUE(blk.has_value());
            space.mapBasePage(addrToVpn(base) + i, blk->pfn);
        }
        return base;
    }
};

} // namespace

TEST(AddressSpace, MmapCreatesAlignedVma)
{
    Fixture f;
    const Addr a = f.space.mmapAnon(MiB(3), "x");
    const vm::Vma *vma = f.space.findVma(a);
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->start % kHugePageSize, 0u);
    EXPECT_EQ(vma->bytes() % kHugePageSize, 0u);
    EXPECT_GE(vma->bytes(), MiB(3));
    EXPECT_EQ(vma->name, "x");
}

TEST(AddressSpace, VmasDoNotOverlap)
{
    Fixture f;
    const Addr a = f.space.mmapAnon(MiB(2), "a");
    const Addr b = f.space.mmapAnon(MiB(2), "b");
    EXPECT_NE(a, b);
    const vm::Vma *va = f.space.findVma(a);
    const vm::Vma *vb = f.space.findVma(b);
    EXPECT_TRUE(va->end <= vb->start || vb->end <= va->start);
}

TEST(AddressSpace, RssTracksMappedFrames)
{
    Fixture f;
    EXPECT_EQ(f.space.rssPages(), 0u);
    f.mapPages(10);
    EXPECT_EQ(f.space.rssPages(), 10u);
}

TEST(AddressSpace, MadviseFreesRangeAndFrames)
{
    Fixture f;
    const Addr base = f.mapPages(10);
    const std::uint64_t used_before = f.pm.usedFrames();
    f.space.madviseDontneed(base, 5 * kPageSize);
    EXPECT_EQ(f.space.rssPages(), 5u);
    EXPECT_EQ(f.pm.usedFrames(), used_before - 5);
    EXPECT_FALSE(
        f.space.pageTable().lookup(addrToVpn(base)).present);
    EXPECT_TRUE(
        f.space.pageTable().lookup(addrToVpn(base) + 5).present);
}

TEST(AddressSpace, MadvisePartialHugeBreaksMapping)
{
    Fixture f;
    const Addr base = f.space.mmapAnon(kHugePageSize, "h");
    auto blk = f.pm.allocBlock(kHugePageOrder, 1, ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    const std::uint64_t region = base / kHugePageSize;
    f.space.mapHugeRegion(region, blk->pfn);
    EXPECT_EQ(f.space.rssPages(), 512u);
    // Free the first 64 base pages only: the kernel demotes the huge
    // mapping and frees just the covered range (§2.1's madvise).
    f.space.madviseDontneed(base, 64 * kPageSize);
    EXPECT_FALSE(f.space.pageTable().isHuge(region));
    EXPECT_EQ(f.space.pageTable().population(region), 512u - 64u);
    EXPECT_EQ(f.space.rssPages(), 512u - 64u);
}

TEST(AddressSpace, MadviseFullHugeFreesWholeBlock)
{
    Fixture f;
    const Addr base = f.space.mmapAnon(kHugePageSize, "h");
    auto blk = f.pm.allocBlock(kHugePageOrder, 1, ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    f.space.mapHugeRegion(base / kHugePageSize, blk->pfn);
    const std::uint64_t used_before = f.pm.usedFrames();
    f.space.madviseDontneed(base, kHugePageSize);
    EXPECT_EQ(f.pm.usedFrames(), used_before - 512);
    EXPECT_EQ(f.space.rssPages(), 0u);
}

TEST(AddressSpace, PromoteRegionCopiesContentAndFreesOldFrames)
{
    Fixture f;
    const Addr base = f.space.mmapAnon(kHugePageSize, "p");
    const Vpn base_vpn = addrToVpn(base);
    // Map 3 scattered pages with distinct content.
    for (unsigned i : {0u, 100u, 511u}) {
        auto blk = f.pm.allocBlock(0, 1, ZeroPref::kPreferZero);
        ASSERT_TRUE(blk.has_value());
        PageContent c;
        c.hash = 1000 + i;
        c.firstNonZero = 0;
        f.pm.writeFrame(blk->pfn, c);
        f.space.mapBasePage(base_vpn + i, blk->pfn);
    }
    auto huge = f.pm.allocBlock(kHugePageOrder, 1, ZeroPref::kAny);
    ASSERT_TRUE(huge.has_value());
    const std::uint64_t copied =
        f.space.promoteRegion(base / kHugePageSize, huge->pfn);
    EXPECT_EQ(copied, 3u);
    EXPECT_TRUE(f.space.pageTable().isHuge(base / kHugePageSize));
    // Content moved to the natural slots of the new block.
    EXPECT_EQ(f.pm.frame(huge->pfn + 100).content.hash, 1100u);
    // Unbacked slots read as zero.
    EXPECT_TRUE(f.pm.frame(huge->pfn + 7).content.isZero());
    EXPECT_EQ(f.space.rssPages(), 512u);
}

TEST(AddressSpace, PromoteInPlaceKeepsFrames)
{
    Fixture f;
    const Addr base = f.space.mmapAnon(kHugePageSize, "r");
    auto blk = f.pm.allocBlock(kHugePageOrder, 1, ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    const Vpn base_vpn = addrToVpn(base);
    for (unsigned i = 0; i < 512; i++)
        f.space.mapBasePage(base_vpn + i, blk->pfn + i);
    const std::uint64_t used = f.pm.usedFrames();
    f.space.promoteInPlace(base / kHugePageSize);
    EXPECT_TRUE(f.space.pageTable().isHuge(base / kHugePageSize));
    EXPECT_EQ(f.pm.usedFrames(), used); // nothing allocated or freed
    EXPECT_EQ(f.space.pageTable().lookup(base_vpn + 9).pfn,
              blk->pfn + 9);
}

TEST(AddressSpace, DemoteRegionKeepsRss)
{
    Fixture f;
    const Addr base = f.space.mmapAnon(kHugePageSize, "d");
    auto blk = f.pm.allocBlock(kHugePageOrder, 1, ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    f.space.mapHugeRegion(base / kHugePageSize, blk->pfn);
    f.space.demoteRegion(base / kHugePageSize);
    EXPECT_EQ(f.space.rssPages(), 512u);
    EXPECT_FALSE(f.space.pageTable().isHuge(base / kHugePageSize));
    EXPECT_EQ(f.space.pageTable().population(base / kHugePageSize),
              512u);
}

TEST(AddressSpace, ZeroDedupAndCowBreak)
{
    Fixture f;
    const Addr base = f.mapPages(1);
    const Vpn vpn = addrToVpn(base);
    const std::uint64_t used_before = f.pm.usedFrames();
    f.space.dedupZeroPage(vpn);
    EXPECT_EQ(f.pm.usedFrames(), used_before - 1);
    EXPECT_EQ(f.space.rssPages(), 0u);
    auto t = f.space.pageTable().lookup(vpn);
    ASSERT_TRUE(t.present);
    EXPECT_TRUE(t.entry.cow());
    EXPECT_TRUE(t.entry.zeroPage());
    EXPECT_EQ(t.pfn, f.pm.zeroPagePfn());
    // Writing triggers COW: a fresh private frame appears.
    f.space.breakCow(vpn);
    t = f.space.pageTable().lookup(vpn);
    EXPECT_FALSE(t.entry.cow());
    EXPECT_NE(t.pfn, f.pm.zeroPagePfn());
    EXPECT_EQ(f.space.rssPages(), 1u);
    EXPECT_EQ(f.pm.usedFrames(), used_before);
}

TEST(AddressSpace, SharePageMergesFrames)
{
    Fixture f;
    const Addr base = f.mapPages(2);
    const Vpn v0 = addrToVpn(base), v1 = v0 + 1;
    const Pfn canonical = f.space.pageTable().lookup(v0).pfn;
    const std::uint64_t used_before = f.pm.usedFrames();
    f.space.sharePage(v1, canonical);
    EXPECT_EQ(f.pm.usedFrames(), used_before - 1);
    EXPECT_EQ(f.space.pageTable().lookup(v1).pfn, canonical);
    EXPECT_TRUE(f.space.pageTable().lookup(v1).entry.cow());
    EXPECT_TRUE(f.pm.frame(canonical).isShared());
    EXPECT_EQ(f.pm.frame(canonical).mapCount, 2u);
}

TEST(AddressSpace, MunmapReleasesEverything)
{
    Fixture f;
    const Addr base = f.mapPages(20, "gone");
    f.space.munmap(base);
    EXPECT_EQ(f.space.rssPages(), 0u);
    EXPECT_EQ(f.space.findVma(base), nullptr);
    EXPECT_EQ(f.pm.usedFrames(), 1u); // only the canonical zero page
}

TEST(AddressSpace, ForEachEligibleRegionSkipsIneligible)
{
    Fixture f;
    f.space.mmapAnon(4 * kHugePageSize, "thp", true);
    f.space.mmapAnon(4 * kHugePageSize, "nothp", false);
    unsigned count = 0;
    f.space.forEachEligibleRegion([&](std::uint64_t) { count++; });
    EXPECT_EQ(count, 4u);
}
