/**
 * @file
 * Four-level page table tests: mapping, huge leaves, promotion and
 * demotion surgery, access bits, and counter invariants under random
 * operation sequences.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/rng.hh"
#include "vm/page_table.hh"

using namespace hawksim;
using vm::PageTable;
using vm::Pte;

TEST(PageTable, MapLookupUnmapBase)
{
    PageTable pt;
    pt.mapBase(0x12345, 777);
    auto t = pt.lookup(0x12345);
    ASSERT_TRUE(t.present);
    EXPECT_FALSE(t.huge);
    EXPECT_EQ(t.pfn, 777u);
    EXPECT_EQ(pt.mappedBasePages(), 1u);
    EXPECT_FALSE(pt.lookup(0x12346).present);
    const Pte old = pt.unmapBase(0x12345);
    EXPECT_EQ(old.pfn(), 777u);
    EXPECT_FALSE(pt.lookup(0x12345).present);
    EXPECT_EQ(pt.mappedBasePages(), 0u);
}

TEST(PageTable, HugeMappingCoversRegion)
{
    PageTable pt;
    const Vpn base = 0x200; // region 1
    pt.mapHuge(base, 512);
    for (unsigned i = 0; i < 512; i += 37) {
        auto t = pt.lookup(base + i);
        ASSERT_TRUE(t.present);
        EXPECT_TRUE(t.huge);
        EXPECT_EQ(t.pfn, 512u + i);
    }
    EXPECT_EQ(pt.mappedHugePages(), 1u);
    EXPECT_EQ(pt.mappedPages(), 512u);
    EXPECT_TRUE(pt.isHuge(1));
    EXPECT_EQ(pt.population(1), 512u);
    pt.unmapHuge(base);
    EXPECT_FALSE(pt.lookup(base).present);
}

TEST(PageTable, PromoteAggregatesAndReturnsOldPtes)
{
    PageTable pt;
    const Vpn base = 3 << 9;
    pt.mapBase(base + 1, 100);
    pt.mapBase(base + 5, 200, vm::kPtePresent | vm::kPteDirty);
    auto old = pt.promote(base, 4096);
    ASSERT_EQ(old.size(), 2u);
    EXPECT_EQ(old[0].first, base + 1);
    EXPECT_EQ(old[0].second.pfn(), 100u);
    EXPECT_EQ(old[1].second.pfn(), 200u);
    auto t = pt.lookup(base + 5);
    ASSERT_TRUE(t.present && t.huge);
    EXPECT_EQ(t.pfn, 4096u + 5);
    EXPECT_TRUE(t.entry.dirty()); // aggregated from old PTEs
    EXPECT_EQ(pt.mappedBasePages(), 0u);
    EXPECT_EQ(pt.mappedHugePages(), 1u);
}

TEST(PageTable, DemoteSplitsIntoContiguousBasePages)
{
    PageTable pt;
    const Vpn base = 7 << 9;
    pt.mapHuge(base, 8192);
    pt.demote(base);
    EXPECT_FALSE(pt.isHuge(7));
    EXPECT_EQ(pt.population(7), 512u);
    EXPECT_EQ(pt.mappedBasePages(), 512u);
    EXPECT_EQ(pt.mappedHugePages(), 0u);
    for (unsigned i = 0; i < 512; i += 61) {
        auto t = pt.lookup(base + i);
        ASSERT_TRUE(t.present);
        EXPECT_FALSE(t.huge);
        EXPECT_EQ(t.pfn, 8192u + i);
    }
}

TEST(PageTable, PromoteThenDemoteRoundTrips)
{
    PageTable pt;
    const Vpn base = 2 << 9;
    for (unsigned i = 0; i < 512; i++)
        pt.mapBase(base + i, 1000 + i);
    pt.promote(base, 5120);
    pt.demote(base);
    EXPECT_EQ(pt.population(2), 512u);
    EXPECT_EQ(pt.lookup(base + 9).pfn, 5120u + 9);
}

TEST(PageTable, TouchSetsAccessedAndDirty)
{
    PageTable pt;
    pt.mapBase(10, 1);
    EXPECT_TRUE(pt.touch(10, false));
    EXPECT_TRUE(pt.lookup(10).entry.accessed());
    EXPECT_FALSE(pt.lookup(10).entry.dirty());
    EXPECT_TRUE(pt.touch(10, true));
    EXPECT_TRUE(pt.lookup(10).entry.dirty());
    EXPECT_FALSE(pt.touch(11, false)); // unmapped
}

TEST(PageTable, AccessBitSamplingPerRegion)
{
    PageTable pt;
    const Vpn base = 4 << 9;
    for (unsigned i = 0; i < 100; i++)
        pt.mapBase(base + i, i);
    for (unsigned i = 0; i < 30; i++)
        pt.touch(base + i, false);
    // mapBase installs clean entries; only touched pages count.
    EXPECT_EQ(pt.accessedCount(4), 30u);
    pt.clearAccessed(4);
    EXPECT_EQ(pt.accessedCount(4), 0u);
    pt.touch(base + 42, false);
    EXPECT_EQ(pt.accessedCount(4), 1u);
}

TEST(PageTable, HugeAccessBitCountsWholeRegion)
{
    PageTable pt;
    const Vpn base = 9 << 9;
    pt.mapHuge(base, 512);
    EXPECT_EQ(pt.accessedCount(9), 0u);
    pt.touch(base + 77, false);
    EXPECT_EQ(pt.accessedCount(9), 512u);
    pt.clearAccessed(9);
    EXPECT_EQ(pt.accessedCount(9), 0u);
}

TEST(PageTable, RemapBasePreservesFlags)
{
    PageTable pt;
    pt.mapBase(20, 5, vm::kPtePresent | vm::kPteDirty | vm::kPteCow);
    pt.remapBase(20, 99);
    auto t = pt.lookup(20);
    EXPECT_EQ(t.pfn, 99u);
    EXPECT_TRUE(t.entry.dirty());
    EXPECT_TRUE(t.entry.cow());
}

TEST(PageTable, ForEachLeafVisitsEverything)
{
    PageTable pt;
    pt.mapBase(1, 10);
    pt.mapBase((1 << 9) + 3, 11);
    pt.mapHuge(5 << 9, 512);
    std::set<Vpn> seen;
    unsigned huge_count = 0;
    pt.forEachLeaf([&](Vpn vpn, const Pte &, bool huge) {
        seen.insert(vpn);
        if (huge)
            huge_count++;
    });
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(huge_count, 1u);
    EXPECT_TRUE(seen.count(1));
    EXPECT_TRUE(seen.count((1 << 9) + 3));
    EXPECT_TRUE(seen.count(5 << 9));
}

TEST(PageTable, SparseHighAddressesWork)
{
    PageTable pt;
    const Vpn high = (200ull << 27) + (37ull << 18) + (11ull << 9) + 3;
    pt.mapBase(high, 1234);
    EXPECT_TRUE(pt.lookup(high).present);
    EXPECT_EQ(pt.mappedBasePages(), 1u);
}

/** Property: random map/unmap/promote/demote keeps counters honest. */
class PageTableProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PageTableProperty, CountersMatchLeafIteration)
{
    Rng rng(GetParam());
    PageTable pt;
    std::set<Vpn> base_mapped;
    std::set<std::uint64_t> huge_mapped;
    for (int step = 0; step < 1500; step++) {
        const std::uint64_t region = rng.below(32);
        const Vpn vpn = (region << 9) + rng.below(512);
        switch (rng.below(4)) {
          case 0: // map base
            if (!huge_mapped.count(region) && !base_mapped.count(vpn)) {
                pt.mapBase(vpn, rng.below(1 << 20));
                base_mapped.insert(vpn);
            }
            break;
          case 1: // unmap base
            if (base_mapped.count(vpn)) {
                pt.unmapBase(vpn);
                base_mapped.erase(vpn);
            }
            break;
          case 2: // promote
            if (!huge_mapped.count(region)) {
                auto old = pt.promote(region << 9, region << 9);
                for (auto &[v, e] : old)
                    base_mapped.erase(v);
                huge_mapped.insert(region);
            }
            break;
          case 3: // demote
            if (huge_mapped.count(region)) {
                pt.demote(region << 9);
                huge_mapped.erase(region);
                for (unsigned i = 0; i < 512; i++)
                    base_mapped.insert((region << 9) + i);
            }
            break;
        }
        ASSERT_EQ(pt.mappedBasePages(), base_mapped.size());
        ASSERT_EQ(pt.mappedHugePages(), huge_mapped.size());
    }
    // Cross-check with full leaf iteration.
    std::uint64_t base_count = 0, huge_count = 0;
    pt.forEachLeaf([&](Vpn, const Pte &, bool huge) {
        (huge ? huge_count : base_count)++;
    });
    EXPECT_EQ(base_count, base_mapped.size());
    EXPECT_EQ(huge_count, huge_mapped.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableProperty,
                         ::testing::Values(1, 2, 3, 42, 1337));
