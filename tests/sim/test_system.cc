/** @file System engine tests: metrics, compaction service, swap. */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

std::unique_ptr<sim::System>
makeSys(std::uint64_t mem = MiB(128))
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = mem;
    auto sys = std::make_unique<sim::System>(cfg);
    sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    return sys;
}

std::unique_ptr<workload::StreamWorkload>
idleStream(std::uint64_t bytes)
{
    workload::StreamConfig wc;
    wc.footprintBytes = bytes;
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    return std::make_unique<workload::StreamWorkload>("w", wc,
                                                      Rng(1));
}

} // namespace

TEST(System, ClockAdvancesByQuantum)
{
    auto sys = makeSys();
    const TimeNs q = sys->config().tickQuantum;
    sys->tick();
    sys->tick();
    EXPECT_EQ(sys->now(), 2 * q);
}

TEST(System, MetricsRecordStandardSeries)
{
    auto sys = makeSys();
    sys->addProcess("w", idleStream(MiB(4)));
    sys->run(sec(1));
    EXPECT_TRUE(sys->metrics().has("sys.free_frames"));
    EXPECT_TRUE(sys->metrics().has("sys.fmfi9"));
    EXPECT_TRUE(sys->metrics().has("p1.rss_pages"));
    EXPECT_FALSE(
        sys->metrics().series("sys.free_frames").points().empty());
}

TEST(System, AllocHugeBlockCompactsOnDemand)
{
    auto sys = makeSys(MiB(64));
    // Movable kernel pages scattered: no free order-9 block, but
    // compaction can manufacture one.
    std::vector<Pfn> pins;
    for (Pfn p = 128; p < sys->phys().totalFrames(); p += 512) {
        auto blk = sys->phys().allocSpecificFrame(p, mem::kKernelOwner);
        ASSERT_TRUE(blk.has_value());
        pins.push_back(p);
    }
    ASSERT_FALSE(sys->phys().buddy().canAlloc(kHugePageOrder));
    TimeNs cost = 0;
    auto blk = sys->allocHugeBlock(1, mem::ZeroPref::kAny, true,
                                   &cost);
    EXPECT_TRUE(blk.has_value());
    EXPECT_GT(cost, 0);
}

TEST(System, AllocHugeBlockFailsAgainstUnmovablePins)
{
    auto sys = makeSys(MiB(64));
    sys->fragmentMemory(1.0);
    TimeNs cost = 0;
    auto blk = sys->allocHugeBlock(1, mem::ZeroPref::kAny, true,
                                   &cost);
    EXPECT_FALSE(blk.has_value());
}

TEST(System, PageMovedFixesProcessMappings)
{
    auto sys = makeSys(MiB(64));
    auto &proc = sys->addProcess("w", idleStream(MiB(16)));
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    // Map base pages away from the zero page's (unmovable) region so
    // their region is a compaction candidate.
    for (unsigned i = 0; i < 8; i++) {
        auto blk = sys->phys().allocSpecificFrame(
            kPagesPerHuge + i * 17, proc.pid());
        ASSERT_TRUE(blk.has_value());
        proc.space().mapBasePage(addrToVpn(base) + i, blk->pfn);
    }
    // Force migrations until some process page moves.
    bool moved = false;
    for (int i = 0; i < 32 && !moved; i++) {
        auto res = sys->compactor().compactOne(*sys);
        if (!res.success)
            break;
        for (unsigned j = 0; j < 8; j++) {
            auto t = proc.space().pageTable().lookup(
                addrToVpn(base) + j);
            ASSERT_TRUE(t.present);
            const mem::ConstFrameRef f = sys->phys().frame(t.pfn);
            ASSERT_EQ(f.ownerPid, proc.pid());
            ASSERT_EQ(f.rmapVpn, addrToVpn(base) + j);
            moved = true;
        }
    }
    EXPECT_TRUE(moved);
}

TEST(System, SwapReclaimEvictsColdPages)
{
    auto sys = makeSys(MiB(64));
    sys->enableSwap(true);
    auto &proc = sys->addProcess("w", idleStream(MiB(32)));
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    for (unsigned i = 0; i < 2048; i++) {
        auto blk = sys->phys().allocBlock(0, proc.pid(),
                                          mem::ZeroPref::kAny);
        ASSERT_TRUE(blk.has_value());
        proc.space().mapBasePage(addrToVpn(base) + i, blk->pfn);
    }
    TimeNs cost = 0;
    const std::uint64_t freed = sys->reclaimPages(256, &cost);
    // Second chance: mapBasePage sets accessed, first sweep clears,
    // later sweeps evict.
    EXPECT_GT(freed, 0u);
    EXPECT_GT(cost, 0);
    EXPECT_EQ(sys->swappedPages(), freed);
    EXPECT_LT(proc.space().rssPages(), 2048u);
}

TEST(System, SwapInChargedOnRefault)
{
    auto sys = makeSys(MiB(64));
    sys->enableSwap(true);
    auto &proc = sys->addProcess("w", idleStream(MiB(32)));
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    for (unsigned i = 0; i < 1024; i++) {
        auto blk = sys->phys().allocBlock(0, proc.pid(),
                                          mem::ZeroPref::kAny);
        ASSERT_TRUE(blk.has_value());
        proc.space().mapBasePage(addrToVpn(base) + i, blk->pfn);
    }
    TimeNs cost = 0;
    ASSERT_GT(sys->reclaimPages(128, &cost), 0u);
    // Find a swapped-out page (unmapped now) and refault it.
    Vpn victim = 0;
    for (unsigned i = 0; i < 1024; i++) {
        if (!proc.space().pageTable().lookup(addrToVpn(base) + i)
                 .present) {
            victim = addrToVpn(base) + i;
            break;
        }
    }
    ASSERT_NE(victim, 0u);
    auto out = sys->policy().onFault(*sys, proc, victim);
    EXPECT_GE(out.latency,
              sys->swap().config().readLatency);
}

TEST(System, OomWithoutSwapKillsProcess)
{
    auto sys = makeSys(MiB(8));
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(32); // 4x physical memory
    lc.freeEachIteration = false;
    auto &proc = sys->addProcess(
        "t", std::make_unique<workload::LinearTouchWorkload>(
                 "t", lc, Rng(1)));
    sys->run(sec(30));
    EXPECT_TRUE(proc.oomKilled());
    EXPECT_FALSE(sys->metrics().events().empty());
}

TEST(System, ProcessExitReleasesMemory)
{
    auto sys = makeSys();
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(32);
    wc.workSeconds = 0.5;
    sys->addProcess("w",
                    std::make_unique<workload::StreamWorkload>(
                        "w", wc, Rng(1)));
    sys->runUntilAllDone(sec(60));
    // Everything back except the canonical zero page.
    EXPECT_EQ(sys->phys().usedFrames(), 1u);
}
