/**
 * @file
 * System::reclaimPages / swapInIfNeeded behavior: second-chance
 * accessed bits, THP split on eviction, and the swap round-trip
 * contract (swap-in latency is charged; content is restored by the
 * caller's rewrite after the refault maps a fresh frame).
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

std::unique_ptr<sim::System>
makeSys(std::uint64_t mem = MiB(64))
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = mem;
    auto sys = std::make_unique<sim::System>(cfg);
    sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    sys->enableSwap(true);
    return sys;
}

std::unique_ptr<workload::StreamWorkload>
idleStream(std::uint64_t bytes)
{
    workload::StreamConfig wc;
    wc.footprintBytes = bytes;
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    return std::make_unique<workload::StreamWorkload>("w", wc,
                                                      Rng(1));
}

/** First VPN of a fully VMA-covered huge region of @p proc. */
Vpn
alignedStart(sim::Process &proc)
{
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    return (vpnToHugeRegion(addrToVpn(base)) + 1) << kHugePageOrder;
}

/** Map @p n base pages at @p start, each to a fresh frame. */
void
mapPages(sim::System &sys, sim::Process &proc, Vpn start, unsigned n,
         std::uint64_t flags)
{
    for (unsigned i = 0; i < n; i++) {
        auto blk = sys.phys().allocBlock(0, proc.pid(),
                                         mem::ZeroPref::kAny);
        ASSERT_TRUE(blk.has_value());
        proc.space().mapBasePage(start + i, blk->pfn, flags);
    }
}

} // namespace

TEST(SystemReclaim, SecondChanceSparesRecentlyAccessedPages)
{
    auto sys = makeSys();
    auto &proc = sys->addProcess("w", idleStream(MiB(32)));
    auto &pt = proc.space().pageTable();
    const Vpn start = alignedStart(proc);
    mapPages(*sys, proc, start, 8, vm::kPteAccessed);

    // All 8 are accessed: the first pass only clears the bits, the
    // second evicts — lowest VPNs first — until the quota is met.
    TimeNs cost = 0;
    EXPECT_EQ(sys->reclaimPages(4, &cost), 4u);
    EXPECT_GT(cost, 0);
    for (unsigned i = 0; i < 4; i++)
        EXPECT_FALSE(pt.lookup(start + i).present) << i;
    for (unsigned i = 4; i < 8; i++) {
        ASSERT_TRUE(pt.lookup(start + i).present) << i;
        // Survivors spent their first chance.
        EXPECT_FALSE(pt.lookup(start + i).entry.accessed()) << i;
    }

    // Re-touch one survivor: the next sweep must skip it and take a
    // cold page instead.
    pt.leafEntry(start + 4)->setFlag(vm::kPteAccessed);
    EXPECT_EQ(sys->reclaimPages(1, &cost), 1u);
    EXPECT_TRUE(pt.lookup(start + 4).present);
    EXPECT_FALSE(pt.lookup(start + 5).present);
    EXPECT_EQ(sys->swappedPages(), 5u);
}

TEST(SystemReclaim, HugeMappingIsSplitBeforeEviction)
{
    auto sys = makeSys();
    auto &proc = sys->addProcess("w", idleStream(MiB(32)));
    auto &pt = proc.space().pageTable();
    const Vpn start = alignedStart(proc);
    const std::uint64_t region = vpnToHugeRegion(start);

    auto blk = sys->phys().allocBlock(kHugePageOrder, proc.pid(),
                                      mem::ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    proc.space().mapHugeRegion(region, blk->pfn,
                               vm::kPteAccessed | vm::kPteDirty);
    ASSERT_TRUE(pt.isHuge(region));

    TimeNs cost = 0;
    EXPECT_EQ(sys->reclaimPages(8, &cost), 8u);
    // Reclaim works at base-page granularity: the THP was demoted,
    // not swapped out wholesale.
    EXPECT_FALSE(pt.isHuge(region));
    EXPECT_GE(sys->cost().counter(obs::Counter::kSplits), 1u);
    EXPECT_EQ(sys->swappedPages(), 8u);
    EXPECT_EQ(pt.population(region), kPagesPerHuge - 8);
}

TEST(SystemReclaim, SwapRoundTripRestoresContentViaRewrite)
{
    auto sys = makeSys();
    auto &proc = sys->addProcess("w", idleStream(MiB(32)));
    auto &pt = proc.space().pageTable();
    const Vpn start = alignedStart(proc);
    mapPages(*sys, proc, start, 8, 0); // cold: evictable immediately

    std::vector<mem::PageContent> contents;
    for (unsigned i = 0; i < 8; i++) {
        mem::PageContent c;
        c.hash = 0xbeef0000 + i;
        c.firstNonZero = static_cast<std::uint16_t>(i);
        contents.push_back(c);
        sys->phys().writeFrame(pt.lookup(start + i).pfn, c);
    }

    // Evict only half so the region stays populated and the refault
    // takes the base-page path.
    TimeNs cost = 0;
    ASSERT_EQ(sys->reclaimPages(4, &cost), 4u);
    ASSERT_EQ(sys->swappedPages(), 4u);
    const Vpn victim = start + 2;
    ASSERT_FALSE(pt.lookup(victim).present);

    // Refault: swap-in latency is charged and the mark consumed.
    const auto out = sys->policy().onFault(*sys, proc, victim);
    EXPECT_GE(out.latency, sys->swap().config().readLatency);
    EXPECT_EQ(sys->swappedPages(), 3u);
    EXPECT_EQ(sys->cost().counter(obs::Counter::kSwapIns), 1u);
    const vm::Translation t = pt.lookup(victim);
    ASSERT_TRUE(t.present);

    // Documented contract: the fresh frame's content comes from the
    // faulting writer, not the swap store. After the rewrite the
    // round trip is lossless.
    sys->phys().writeFrame(t.pfn, contents[2]);
    EXPECT_TRUE(sys->phys().frame(t.pfn).content == contents[2]);

    // Untouched survivors kept their content all along.
    const vm::Translation s = pt.lookup(start + 6);
    ASSERT_TRUE(s.present);
    EXPECT_TRUE(sys->phys().frame(s.pfn).content == contents[6]);
}
