#include <gtest/gtest.h>

#include <sstream>

#include "sim/metrics.hh"

namespace hawksim::sim {
namespace {

TEST(MetricsInterning, SameNameSameId)
{
    Metrics m;
    const auto a = m.seriesId("p1.rss_pages");
    const auto b = m.seriesId("p1.rss_pages");
    EXPECT_EQ(a, b);
    EXPECT_NE(m.seriesId("p2.rss_pages"), a);
}

TEST(MetricsInterning, IdsStayValidAsSeriesGrow)
{
    // Regression for the series-name stability requirement: handles
    // resolved early must keep addressing the same-named series after
    // many more series are interned (the backing vector reallocates).
    Metrics m;
    const auto first = m.seriesId("first");
    for (int i = 0; i < 1000; i++) {
        std::string filler = "filler_";
        filler += std::to_string(i);
        m.seriesId(filler);
    }
    m.record(first, 5, 1.0);
    EXPECT_EQ(m.series("first").points().size(), 1u);
    EXPECT_EQ(m.series(first).name(), "first");
    EXPECT_EQ(m.seriesId("first"), first);
}

TEST(MetricsInterning, HandleAndNamePathsAreEquivalent)
{
    Metrics byId;
    const auto id = byId.seriesId("s");
    byId.record(id, 1, 2.0);
    byId.record(id, 3, 4.0);

    Metrics byName;
    byName.record("s", 1, 2.0);
    byName.record("s", 3, 4.0);

    std::ostringstream a, b;
    byId.writeCsv(a);
    byName.writeCsv(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(MetricsInterning, AllInCreationOrderSortedIdsByName)
{
    Metrics m;
    m.seriesId("zeta");
    m.seriesId("alpha");
    m.seriesId("mid");
    ASSERT_EQ(m.all().size(), 3u);
    EXPECT_EQ(m.all()[0].name(), "zeta");
    EXPECT_EQ(m.all()[2].name(), "mid");
    const auto ids = m.sortedIds();
    EXPECT_EQ(m.series(ids[0]).name(), "alpha");
    EXPECT_EQ(m.series(ids[1]).name(), "mid");
    EXPECT_EQ(m.series(ids[2]).name(), "zeta");
}

TEST(MetricsInterning, UnknownSeriesLookupIsEmptyNotCreated)
{
    Metrics m;
    EXPECT_EQ(m.series("ghost").points().size(), 0u);
    EXPECT_FALSE(m.has("ghost"));
    EXPECT_EQ(m.all().size(), 0u);
}

} // namespace
} // namespace hawksim::sim
