/**
 * @file
 * Swap-device-full regression tests.
 *
 * reclaimPages used to unmap and free pages before asking the device
 * for a slot, so a full device silently dropped page contents and the
 * returned "freed" count was optimistic. These tests pin the honest
 * behaviour: a full device stops the sweep, the shortfall reaches the
 * caller, and the OOM path engages instead of losing data.
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

std::unique_ptr<sim::System>
makeSwapSys(std::uint64_t mem, std::uint64_t swap_bytes,
            bool oom_killer = false)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = mem;
    cfg.swap.capacityBytes = swap_bytes;
    cfg.fault.oomKiller = oom_killer;
    auto sys = std::make_unique<sim::System>(cfg);
    sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    sys->enableSwap(true);
    return sys;
}

} // namespace

TEST(SwapFull, ReclaimReportsHonestShortfall)
{
    // 64-page swap device against a 2048-page eviction demand.
    auto sys = makeSwapSys(MiB(64), KiB(256));
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(32);
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    auto &proc = sys->addProcess(
        "w",
        std::make_unique<workload::StreamWorkload>("w", wc, Rng(1)));
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    for (unsigned i = 0; i < 2048; i++) {
        auto blk = sys->phys().allocBlock(0, proc.pid(),
                                          mem::ZeroPref::kAny);
        ASSERT_TRUE(blk.has_value());
        proc.space().mapBasePage(addrToVpn(base) + i, blk->pfn);
    }
    TimeNs cost = 0;
    const std::uint64_t freed = sys->reclaimPages(512, &cost);
    // Exactly the device capacity came out -- not the optimistic 512.
    EXPECT_EQ(freed, 64u);
    EXPECT_EQ(sys->swappedPages(), 64u);
    EXPECT_TRUE(sys->swap().full());
    EXPECT_EQ(proc.space().rssPages(), 2048u - 64u);
    // Asking again cannot lie either: the device is still full.
    EXPECT_EQ(sys->reclaimPages(512, &cost), 0u);
}

TEST(SwapFull, SelfOomWhenSwapExhausted)
{
    // Footprint exceeds memory + swap; once the device fills, reclaim
    // reports the shortfall and the faulting process OOMs instead of
    // silently losing evicted pages.
    auto sys = makeSwapSys(MiB(8), KiB(256));
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(32);
    lc.freeEachIteration = false;
    auto &proc = sys->addProcess(
        "t", std::make_unique<workload::LinearTouchWorkload>(
                 "t", lc, Rng(1)));
    sys->run(sec(30));
    EXPECT_TRUE(proc.oomKilled());
    // The device accepted exactly its 64-page capacity before the
    // shortfall surfaced, and the dead process's slots were
    // discarded on exit.
    EXPECT_EQ(sys->swap().totalSwappedOut(), 64u);
    EXPECT_EQ(sys->swappedPages(), 0u);
}

TEST(SwapFull, OomKillerPicksLargestRssVictim)
{
    // A big idle process and a small growing one. When swap fills,
    // the chaos-mode OOM killer must sacrifice the big one (largest
    // RSS) so the small faulting process can finish.
    auto sys = makeSwapSys(MiB(32), KiB(256), /*oom_killer=*/true);
    workload::StreamConfig big;
    big.footprintBytes = MiB(24);
    big.workSeconds = 1e9;
    auto &victim = sys->addProcess(
        "big",
        std::make_unique<workload::StreamWorkload>("big", big,
                                                   Rng(1)));
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(16);
    lc.freeEachIteration = false;
    auto &small = sys->addProcess(
        "small", std::make_unique<workload::LinearTouchWorkload>(
                     "small", lc, Rng(2)));
    sys->run(sec(60));
    EXPECT_TRUE(victim.oomKilled());
    EXPECT_FALSE(small.oomKilled());
    EXPECT_TRUE(small.finished());
    EXPECT_EQ(sys->oomKills(), 1u);
    // The victim's swap slots were discarded with it.
    EXPECT_FALSE(sys->swap().full());
}
