/** @file Metrics recorder unit tests. */

#include <gtest/gtest.h>

#include "sim/metrics.hh"

using namespace hawksim;
using sim::Metrics;

TEST(Metrics, SeriesCreatedOnFirstUse)
{
    Metrics m;
    EXPECT_FALSE(m.has("x"));
    m.record("x", 10, 1.0);
    EXPECT_TRUE(m.has("x"));
    EXPECT_EQ(m.series("x").points().size(), 1u);
}

TEST(Metrics, UnknownSeriesIsEmptyNotCrash)
{
    Metrics m;
    EXPECT_TRUE(m.series("nope").empty());
    EXPECT_DOUBLE_EQ(m.series("nope").last(), 0.0);
}

TEST(Metrics, SeriesAccumulateInOrder)
{
    Metrics m;
    for (int i = 0; i < 5; i++)
        m.record("s", i * 100, static_cast<double>(i));
    const auto &pts = m.series("s").points();
    ASSERT_EQ(pts.size(), 5u);
    EXPECT_EQ(pts[3].time, 300);
    EXPECT_DOUBLE_EQ(pts[4].value, 4.0);
    EXPECT_DOUBLE_EQ(m.series("s").peak(), 4.0);
}

TEST(Metrics, EventsKeepTimestamps)
{
    Metrics m;
    m.event(5, "first");
    m.event(9, "second");
    ASSERT_EQ(m.events().size(), 2u);
    EXPECT_EQ(m.events()[0].what, "first");
    EXPECT_EQ(m.events()[1].time, 9);
}

TEST(Metrics, AllEnumeratesSeries)
{
    Metrics m;
    m.record("a", 0, 1.0);
    m.record("b", 0, 2.0);
    EXPECT_EQ(m.all().size(), 2u);
}
