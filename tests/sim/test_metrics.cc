/** @file Metrics recorder unit tests. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <sstream>
#include <string>

#include "sim/metrics.hh"

using namespace hawksim;
using sim::Metrics;

TEST(Metrics, SeriesCreatedOnFirstUse)
{
    Metrics m;
    EXPECT_FALSE(m.has("x"));
    m.record("x", 10, 1.0);
    EXPECT_TRUE(m.has("x"));
    EXPECT_EQ(m.series("x").points().size(), 1u);
}

TEST(Metrics, UnknownSeriesIsEmptyNotCrash)
{
    Metrics m;
    EXPECT_TRUE(m.series("nope").empty());
    EXPECT_DOUBLE_EQ(m.series("nope").last(), 0.0);
}

TEST(Metrics, SeriesAccumulateInOrder)
{
    Metrics m;
    for (int i = 0; i < 5; i++)
        m.record("s", i * 100, static_cast<double>(i));
    const auto &pts = m.series("s").points();
    ASSERT_EQ(pts.size(), 5u);
    EXPECT_EQ(pts[3].time, 300);
    EXPECT_DOUBLE_EQ(pts[4].value, 4.0);
    EXPECT_DOUBLE_EQ(m.series("s").peak(), 4.0);
}

TEST(Metrics, EventsKeepTimestamps)
{
    Metrics m;
    m.event(5, "first");
    m.event(9, "second");
    ASSERT_EQ(m.events().size(), 2u);
    EXPECT_EQ(m.events()[0].what, "first");
    EXPECT_EQ(m.events()[1].time, 9);
}

TEST(Metrics, AllEnumeratesSeries)
{
    Metrics m;
    m.record("a", 0, 1.0);
    m.record("b", 0, 2.0);
    EXPECT_EQ(m.all().size(), 2u);
}

TEST(Metrics, WriteCsvRoundTripsDoublesBitExactly)
{
    // Regression: writeCsv used the default ostream precision (6
    // significant digits), so large counters and values with no short
    // decimal form came back corrupted from the CSV.
    const double values[] = {
        123456789012345.0,           // > 6 significant digits
        0.1 + 0.2,                   // not exactly representable
        1.0 / 3.0,                   // needs 17 digits
        -9.87654321e-12,             // small magnitude, negative
        18446744073709551615.0,      // 2^64 - 1 rounded up
        3.0,                         // short form stays short
    };
    Metrics m;
    for (std::size_t i = 0; i < std::size(values); i++)
        m.record("v", static_cast<TimeNs>(i), values[i]);

    std::ostringstream os;
    m.writeCsv(os);
    std::istringstream is(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "series,time_ns,value");
    for (const double expect : values) {
        ASSERT_TRUE(std::getline(is, line));
        const auto comma = line.rfind(',');
        ASSERT_NE(comma, std::string::npos);
        const double parsed =
            std::strtod(line.c_str() + comma + 1, nullptr);
        EXPECT_EQ(parsed, expect) << line;
    }
    EXPECT_FALSE(std::getline(is, line)); // nothing trailing
}

TEST(Metrics, WriteCsvShortValuesStayHumanReadable)
{
    Metrics m;
    m.record("s", 1000, 3.0);
    std::ostringstream os;
    m.writeCsv(os);
    EXPECT_EQ(os.str(), "series,time_ns,value\ns,1000,3\n");
}
