/**
 * @file
 * Auditor self-tests: seed a specific corruption into an otherwise
 * healthy system and assert the exact violation class is detected;
 * clean systems must audit clean (no false positives).
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;
using fault::AuditReport;
using fault::ViolationClass;

namespace {

struct Fixture
{
    std::unique_ptr<sim::System> sys;
    sim::Process *proc = nullptr;
    Addr base = 0;

    explicit Fixture(std::uint64_t mem = MiB(64))
    {
        setLogQuiet(true);
        sim::SystemConfig cfg;
        cfg.memoryBytes = mem;
        sys = std::make_unique<sim::System>(cfg);
        sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>());
        workload::StreamConfig wc;
        wc.footprintBytes = MiB(16);
        wc.workSeconds = 1e9;
        wc.initTouchAll = false;
        proc = &sys->addProcess(
            "w", std::make_unique<workload::StreamWorkload>("w", wc,
                                                            Rng(1)));
        base = static_cast<workload::StreamWorkload *>(
                   &proc->workload())
                   ->baseAddr();
    }

    /** Map @p n base pages at the VMA start, fully accounted. */
    void
    mapPages(unsigned n)
    {
        for (unsigned i = 0; i < n; i++) {
            auto blk = sys->phys().allocBlock(0, proc->pid(),
                                              mem::ZeroPref::kAny);
            ASSERT_TRUE(blk.has_value());
            proc->space().mapBasePage(addrToVpn(base) + i, blk->pfn);
        }
    }
};

} // namespace

TEST(Auditor, CleanSystemHasNoFalsePositives)
{
    Fixture fx;
    fx.mapPages(64);
    const AuditReport rep = fx.sys->auditNow();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Auditor, CleanSystemAfterRealWorkloadIsClean)
{
    // Full machinery: huge-page policy, promotion, compaction,
    // swap-backed reclaim. The auditor must bless all of it.
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(128);
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
    sys.enableSwap(true);
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(48);
    lc.iterations = 2;
    sys.addProcess("t",
                   std::make_unique<workload::LinearTouchWorkload>(
                       "t", lc, Rng(3)));
    sys.runUntilAllDone(sec(120));
    const AuditReport rep = sys.auditNow();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Auditor, DetectsLeakedFrame)
{
    Fixture fx;
    fx.mapPages(8);
    // Corruption: allocate a frame to the process and lose track of
    // it -- no PTE will ever reference it.
    auto blk = fx.sys->phys().allocBlock(0, fx.proc->pid(),
                                         mem::ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    const AuditReport rep = fx.sys->auditNow();
    EXPECT_FALSE(rep.ok());
    EXPECT_EQ(rep.count(ViolationClass::kFrameLeak), 1u)
        << rep.summary();
}

TEST(Auditor, DetectsRefcountDesync)
{
    Fixture fx;
    fx.mapPages(8);
    // Corruption: rip a PTE out behind the frame table's back (the
    // AddressSpace unmap path would have called phys.onUnmap).
    fx.proc->space().pageTable().unmapBase(addrToVpn(fx.base) + 3);
    const AuditReport rep = fx.sys->auditNow();
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.count(ViolationClass::kFrameRefcount), 1u)
        << rep.summary();
}

TEST(Auditor, DetectsBuddyDoubleFreeOverlap)
{
    Fixture fx;
    fx.mapPages(4);
    // Find a free block of order >= 1 and free one of its interior
    // pages again: two free-list entries now cover the same frame.
    Pfn inner = 0;
    bool found = false;
    fx.sys->phys().buddy().forEachFreeBlock(
        [&](Pfn pfn, unsigned order, bool) {
            if (!found && order >= 1) {
                inner = pfn + 1;
                found = true;
            }
        });
    ASSERT_TRUE(found);
    fx.sys->phys().buddy().free(inner, 0, /*zeroed=*/false);
    const AuditReport rep = fx.sys->auditNow();
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.count(ViolationClass::kBuddyOverlap), 1u)
        << rep.summary();
}

TEST(Auditor, DetectsDirtyPageOnZeroList)
{
    Fixture fx;
    // Corruption: a frame with live (non-zero) content pushed onto
    // the zeroed free list without being scrubbed.
    auto blk = fx.sys->phys().allocBlock(0, fx.proc->pid(),
                                         mem::ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    fx.sys->phys().writeFrame(
        blk->pfn, mem::PageContent{/*hash=*/0xdead, /*firstNonZero=*/0});
    fx.sys->phys().buddy().free(blk->pfn, 0, /*zeroed=*/true);
    const AuditReport rep = fx.sys->auditNow();
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.count(ViolationClass::kBuddyZeroDirty), 1u)
        << rep.summary();
}

TEST(Auditor, DetectsTlbDesyncAfterDemote)
{
    Fixture fx;
    fx.proc->tlb().setAuditLog(true);
    // Build a real huge mapping, then demote it and forge a 2MB TLB
    // entry stamped with the *current* epoch -- the simulated missed
    // shootdown the audit log exists to catch.
    auto blk = fx.sys->phys().allocBlock(kHugePageOrder,
                                         fx.proc->pid(),
                                         mem::ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    const std::uint64_t region = vpnToHugeRegion(addrToVpn(fx.base));
    fx.proc->space().mapHugeRegion(region, blk->pfn);
    ASSERT_TRUE(fx.proc->space().pageTable().isHuge(region));
    fx.proc->space().demoteRegion(region);
    fx.proc->tlb().injectAuditEntry(
        /*huge=*/true, region,
        fx.proc->space().pageTable().translationEpoch());
    const AuditReport rep = fx.sys->auditNow();
    EXPECT_FALSE(rep.ok());
    EXPECT_EQ(rep.count(ViolationClass::kTlbIncoherent), 1u)
        << rep.summary();
}

TEST(Auditor, StaleTlbEntriesAreAgedOutNotFlagged)
{
    Fixture fx;
    fx.proc->tlb().setAuditLog(true);
    auto blk = fx.sys->phys().allocBlock(kHugePageOrder,
                                         fx.proc->pid(),
                                         mem::ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    const std::uint64_t region = vpnToHugeRegion(addrToVpn(fx.base));
    const auto &pt = fx.proc->space().pageTable();
    fx.proc->space().mapHugeRegion(region, blk->pfn);
    // A 2MB entry recorded while the mapping was live...
    fx.proc->tlb().injectAuditEntry(true, region,
                                    pt.translationEpoch());
    // ...then demoted. The epoch bump models the aged-out entry: the
    // auditor must not flag it (no shootdown is simulated).
    fx.proc->space().demoteRegion(region);
    const AuditReport rep = fx.sys->auditNow();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}
