/** @file FaultInjector determinism, scripting and rate tests. */

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hh"

using namespace hawksim;
using fault::FaultConfig;
using fault::FaultInjector;
using fault::Site;

namespace {

std::vector<bool>
decisions(FaultInjector &fi, Site s, unsigned n)
{
    std::vector<bool> out;
    out.reserve(n);
    for (unsigned i = 0; i < n; i++)
        out.push_back(fi.shouldFail(s));
    return out;
}

} // namespace

TEST(FaultInjector, SameSeedSameDecisions)
{
    FaultConfig cfg;
    cfg.rate = 0.3;
    FaultInjector a(1234, cfg);
    FaultInjector b(1234, cfg);
    EXPECT_EQ(decisions(a, Site::kBuddyAlloc, 1000),
              decisions(b, Site::kBuddyAlloc, 1000));
    EXPECT_EQ(a.stats(Site::kBuddyAlloc).injected,
              b.stats(Site::kBuddyAlloc).injected);
    // ~300 expected at rate 0.3; any fixed hash gives a fixed count.
    EXPECT_GT(a.totalInjected(), 200u);
    EXPECT_LT(a.totalInjected(), 400u);
}

TEST(FaultInjector, DifferentSeedsDecorrelate)
{
    FaultConfig cfg;
    cfg.rate = 0.3;
    FaultInjector a(1, cfg);
    FaultInjector b(2, cfg);
    EXPECT_NE(decisions(a, Site::kSwapOut, 1000),
              decisions(b, Site::kSwapOut, 1000));
}

TEST(FaultInjector, SitesAreIndependentChains)
{
    // Decisions of a site do not depend on how often other sites
    // were probed before it (workers probing out of order must not
    // change outcomes).
    FaultConfig cfg;
    cfg.rate = 0.25;
    FaultInjector a(99, cfg);
    FaultInjector b(99, cfg);
    decisions(b, Site::kPrezero, 777); // extra traffic on b only
    EXPECT_EQ(decisions(a, Site::kCompactMove, 500),
              decisions(b, Site::kCompactMove, 500));
}

TEST(FaultInjector, ScriptFiresExactOccurrences)
{
    FaultConfig cfg;
    cfg.rate = 1.0; // must be ignored: a script disables rates
    cfg.script = {{Site::kBuddyAlloc, 3}, {Site::kBuddyAlloc, 5},
                  {Site::kSwapOut, 1}};
    FaultInjector fi(7, cfg);
    const auto d = decisions(fi, Site::kBuddyAlloc, 6);
    const std::vector<bool> want = {false, false, true,
                                    false, true,  false};
    EXPECT_EQ(d, want);
    EXPECT_TRUE(fi.shouldFail(Site::kSwapOut));  // occurrence 1
    EXPECT_FALSE(fi.shouldFail(Site::kSwapOut)); // occurrence 2
    EXPECT_FALSE(fi.shouldFail(Site::kPromoteCopy));
    EXPECT_EQ(fi.totalInjected(), 3u);
    EXPECT_EQ(fi.stats(Site::kBuddyAlloc).probes, 6u);
    EXPECT_EQ(fi.stats(Site::kBuddyAlloc).injected, 2u);
}

TEST(FaultInjector, PerSiteRateOverridesGlobal)
{
    FaultConfig cfg;
    cfg.rate = 1.0;
    cfg.siteRate[static_cast<unsigned>(Site::kSwapIn)] = 0.0;
    FaultInjector fi(11, cfg);
    EXPECT_TRUE(fi.shouldFail(Site::kBuddyAlloc));
    for (int i = 0; i < 100; i++)
        EXPECT_FALSE(fi.shouldFail(Site::kSwapIn));
}

TEST(FaultInjector, RateZeroNeverFires)
{
    FaultConfig cfg;
    EXPECT_FALSE(cfg.injectionEnabled());
    cfg.rate = 0.0;
    FaultInjector fi(5, cfg);
    for (int i = 0; i < 200; i++)
        EXPECT_FALSE(fi.shouldFail(Site::kPromoteCopy));
    EXPECT_EQ(fi.totalInjected(), 0u);
}

TEST(FaultInjector, NullGuardIsInert)
{
    EXPECT_FALSE(fault::faultAt(nullptr, Site::kBuddyAlloc));
}

TEST(FaultInjector, PendingAuditLatchesUntilTaken)
{
    FaultConfig cfg;
    cfg.script = {{Site::kPrezero, 2}};
    FaultInjector fi(3, cfg);
    EXPECT_FALSE(fi.takePendingAudit());
    fi.shouldFail(Site::kPrezero); // occurrence 1: no injection
    EXPECT_FALSE(fi.takePendingAudit());
    fi.shouldFail(Site::kPrezero); // occurrence 2: injected
    EXPECT_TRUE(fi.takePendingAudit());
    EXPECT_FALSE(fi.takePendingAudit()); // consumed
}

TEST(FaultInjector, SiteNamesRoundTrip)
{
    for (unsigned i = 0; i < fault::kSiteCount; i++) {
        const auto s = static_cast<Site>(i);
        const auto back = fault::siteFromName(fault::siteName(s));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, s);
    }
    EXPECT_FALSE(fault::siteFromName("warp-core").has_value());
}
