/**
 * @file
 * End-to-end chaos tests: probabilistic injection under a real
 * policy with audits armed, graceful degradation of each fault
 * site, and run-to-run determinism of the whole machine.
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;
using fault::Site;

namespace {

std::unique_ptr<sim::System>
makeChaosSys(const fault::FaultConfig &fc, std::uint64_t mem = MiB(64))
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = mem;
    cfg.fault = fc;
    auto sys = std::make_unique<sim::System>(cfg);
    sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    return sys;
}

} // namespace

TEST(Chaos, InjectedRunCompletesWithCleanAudits)
{
    fault::FaultConfig fc;
    fc.rate = 0.1;
    fc.auditOnFault = true;
    fc.auditEvery = 64;
    auto sys = makeChaosSys(fc);
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(24);
    lc.iterations = 4;
    auto &proc = sys->addProcess(
        "t", std::make_unique<workload::LinearTouchWorkload>(
                 "t", lc, Rng(9)));
    // runAuditOrDie panics on any violation, so completion is the
    // invariant-preservation assertion.
    sys->runUntilAllDone(sec(120));
    EXPECT_TRUE(proc.finished());
    ASSERT_NE(sys->faultInjector(), nullptr);
    EXPECT_GT(sys->faultInjector()->totalInjected(), 0u);
    EXPECT_GT(sys->auditsRun(), 1u);
}

TEST(Chaos, IdenticalConfigsReplayIdentically)
{
    fault::FaultConfig fc;
    fc.rate = 0.05;
    fc.auditOnFault = true;
    auto runOnce = [&]() {
        auto sys = makeChaosSys(fc);
        workload::LinearTouchConfig lc;
        lc.bytes = MiB(16);
        auto &proc = sys->addProcess(
            "t", std::make_unique<workload::LinearTouchWorkload>(
                     "t", lc, Rng(4)));
        sys->runUntilAllDone(sec(120));
        struct Out
        {
            std::uint64_t faults, injected, probes, free_frames;
            TimeNs runtime;
        } o{};
        o.faults = proc.pageFaults();
        o.injected = sys->faultInjector()->totalInjected();
        o.probes = sys->faultInjector()->stats(Site::kBuddyAlloc)
                       .probes;
        o.free_frames = sys->phys().freeFrames();
        o.runtime = proc.runtime();
        return std::make_tuple(o.faults, o.injected, o.probes,
                               o.free_frames, o.runtime);
    };
    EXPECT_EQ(runOnce(), runOnce());
}

TEST(Chaos, HugeAllocFaultFallsBackTo4k)
{
    fault::FaultConfig fc;
    fc.script = {{Site::kBuddyAlloc, 1}};
    auto sys = makeChaosSys(fc);
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(8);
    lc.freeEachIteration = false;
    auto &proc = sys->addProcess(
        "t", std::make_unique<workload::LinearTouchWorkload>(
                 "t", lc, Rng(2)));
    sys->runUntilAllDone(sec(60));
    EXPECT_TRUE(proc.finished());
    EXPECT_FALSE(proc.oomKilled());
    // The first order-9 request was shot down; the fault was served
    // as a 4K mapping instead of failing the process.
    EXPECT_GE(sys->faultInjector()->degradation().hugeFallbacks, 1u);
    const auto rep = sys->auditNow();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Chaos, PromoteCopyFaultDefersThenRetrySucceeds)
{
    fault::FaultConfig fc;
    fc.script = {{Site::kPromoteCopy, 1}};
    auto sys = makeChaosSys(fc);
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(16);
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    auto &proc = sys->addProcess(
        "w",
        std::make_unique<workload::StreamWorkload>("w", wc, Rng(1)));
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    const std::uint64_t region = vpnToHugeRegion(addrToVpn(base));
    for (unsigned i = 0; i < kPagesPerHuge; i++) {
        auto blk = sys->phys().allocBlock(0, proc.pid(),
                                          mem::ZeroPref::kAny);
        ASSERT_TRUE(blk.has_value());
        proc.space().mapBasePage(addrToVpn(base) + i, blk->pfn);
    }
    // First attempt: the copy step faults, the block is released and
    // the region stays 4K-mapped.
    EXPECT_FALSE(policy::promoteOne(*sys, proc, region, false)
                     .has_value());
    EXPECT_EQ(sys->faultInjector()->degradation().deferredPromotions,
              1u);
    EXPECT_FALSE(proc.space().pageTable().isHuge(region));
    auto rep = sys->auditNow();
    EXPECT_TRUE(rep.ok()) << rep.summary();
    // Retry (occurrence 2 is not scripted): promotion goes through.
    EXPECT_TRUE(policy::promoteOne(*sys, proc, region, false)
                    .has_value());
    EXPECT_TRUE(proc.space().pageTable().isHuge(region));
    rep = sys->auditNow();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Chaos, CompactMoveFaultAbortsPassAndCounts)
{
    fault::FaultConfig fc;
    fc.script = {{Site::kCompactMove, 1}};
    auto sys = makeChaosSys(fc);
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(16);
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    auto &proc = sys->addProcess(
        "w",
        std::make_unique<workload::StreamWorkload>("w", wc, Rng(1)));
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    // Scatter single mapped pages so compaction has work to do.
    for (unsigned i = 0; i < 8; i++) {
        auto blk = sys->phys().allocSpecificFrame(
            kPagesPerHuge + i * 17, proc.pid());
        ASSERT_TRUE(blk.has_value());
        proc.space().mapBasePage(addrToVpn(base) + i, blk->pfn);
    }
    sys->compactor().compactOne(*sys);
    EXPECT_EQ(sys->faultInjector()->degradation().abortedCompactions,
              1u);
    const auto rep = sys->auditNow();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Chaos, PeriodicAuditsRunOnSchedule)
{
    fault::FaultConfig fc;
    fc.auditEvery = 4;
    auto sys = makeChaosSys(fc);
    for (int i = 0; i < 17; i++)
        sys->tick();
    EXPECT_EQ(sys->auditsRun(), 4u);
}
