/** @file Deterministic RNG unit tests. */

#include <gtest/gtest.h>

#include "base/rng.hh"

using namespace hawksim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++) {
        if (a.next() == b.next())
            same++;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000000ull}) {
        for (int i = 0; i < 200; i++)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        const std::uint64_t v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; i++) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ZipfBoundsAndSkew)
{
    Rng r(13);
    std::uint64_t low_half = 0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; i++) {
        const std::uint64_t v = r.zipf(1000, 0.9);
        ASSERT_LT(v, 1000u);
        if (v < 500)
            low_half++;
    }
    // Skewed: much more than half the draws land in the lower half.
    EXPECT_GT(low_half, kDraws * 6 / 10);
}

TEST(Rng, ZipfZeroExponentIsUniform)
{
    Rng r(17);
    std::uint64_t low_half = 0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; i++) {
        if (r.zipf(1000, 0.0) < 500)
            low_half++;
    }
    EXPECT_NEAR(static_cast<double>(low_half) / kDraws, 0.5, 0.03);
}

TEST(Rng, ChanceProbability)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 10000; i++)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ForkDecorrelates)
{
    Rng a(23);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; i++) {
        if (a.next() == b.next())
            same++;
    }
    EXPECT_LT(same, 2);
}
