#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "base/page_key.hh"

namespace hawksim {
namespace {

TEST(PageKey, PacksPidHighAndVpnLow)
{
    EXPECT_EQ(pageKey(0, 0), 0u);
    EXPECT_EQ(pageKey(1, 0), std::uint64_t{1} << kPageKeyIndexBits);
    EXPECT_EQ(pageKey(0, 123), 123u);
    EXPECT_EQ(pageKey(7, kPageKeyIndexMask),
              (std::uint64_t{7} << kPageKeyIndexBits) |
                  kPageKeyIndexMask);
}

TEST(PageKey, OldXorSchemeCollisionsDoNotAlias)
{
    // Regression: the old key was (pid << 40) ^ vpn, where vpns of
    // 2^40 pages (4TB address space) and beyond bled into the pid
    // bits. These pairs collided under the old scheme:
    //   oldKey(1, 0)       == oldKey(2, 3 << 40)
    //   oldKey(1, 1 << 40) == oldKey(0, 0)  (pid XORed away)
    auto oldKey = [](std::int32_t pid, std::uint64_t vpn) {
        return (static_cast<std::uint64_t>(pid) << 40) ^ vpn;
    };
    ASSERT_EQ(oldKey(1, 0), oldKey(2, std::uint64_t{3} << 40));
    ASSERT_EQ(oldKey(1, std::uint64_t{1} << 40), oldKey(0, 0));

    EXPECT_NE(pageKey(1, 0), pageKey(2, std::uint64_t{3} << 40));
    EXPECT_NE(pageKey(1, std::uint64_t{1} << 40), pageKey(0, 0));
}

TEST(PageKey, InjectiveOverPidVpnSample)
{
    std::set<std::uint64_t> keys;
    std::size_t n = 0;
    for (std::int32_t pid : {0, 1, 2, 255, 65535}) {
        for (std::uint64_t vpn :
             {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{512},
              std::uint64_t{1} << 40, (std::uint64_t{1} << 41) + 7,
              kPageKeyIndexMask}) {
            keys.insert(pageKey(pid, vpn));
            n++;
        }
    }
    EXPECT_EQ(keys.size(), n);
}

TEST(PageKeyDeathTest, RejectsOutOfRangeInputs)
{
    EXPECT_DEATH(pageKey(-1, 0), "pid out of range");
    EXPECT_DEATH(pageKey(1 << 16, 0), "pid out of range");
    EXPECT_DEATH(pageKey(0, kPageKeyIndexMask + 1), "48 bits");
}

} // namespace
} // namespace hawksim
