/** @file Statistics primitives unit tests. */

#include <gtest/gtest.h>

#include "base/stats.hh"

using namespace hawksim;

TEST(Ema, FirstSampleSeedsValue)
{
    Ema e(0.4);
    EXPECT_FALSE(e.seeded());
    EXPECT_DOUBLE_EQ(e.update(10.0), 10.0);
    EXPECT_TRUE(e.seeded());
}

TEST(Ema, ConvergesTowardConstantInput)
{
    Ema e(0.4);
    e.update(0.0);
    for (int i = 0; i < 50; i++)
        e.update(100.0);
    EXPECT_NEAR(e.value(), 100.0, 1e-6);
}

TEST(Ema, WeighsRecentSamples)
{
    Ema e(0.5);
    e.update(0.0);
    e.update(100.0);
    EXPECT_DOUBLE_EQ(e.value(), 50.0);
}

TEST(Ema, ResetClears)
{
    Ema e;
    e.update(5.0);
    e.reset();
    EXPECT_FALSE(e.seeded());
    EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(Summary, TracksMinMaxMeanCount)
{
    Summary s;
    for (double v : {3.0, 1.0, 2.0})
        s.add(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(s.maximum(), 3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.minimum(), 0.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-5.0);  // clamps to first bucket
    h.add(100.0); // clamps to last bucket
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, WeightedQuantile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; i++)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(TimeSeries, RecordsAndSummarizes)
{
    TimeSeries ts("x");
    EXPECT_TRUE(ts.empty());
    ts.record(0, 1.0);
    ts.record(10, 5.0);
    ts.record(20, 3.0);
    EXPECT_EQ(ts.points().size(), 3u);
    EXPECT_DOUBLE_EQ(ts.last(), 3.0);
    EXPECT_DOUBLE_EQ(ts.peak(), 5.0);
    EXPECT_EQ(ts.name(), "x");
}
