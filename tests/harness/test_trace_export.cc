/** @file Harness-level tracing & cost-accounting export tests. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "base/rng.hh"
#include "base/types.hh"
#include "harness/runner.hh"
#include "policy/linux_thp.hh"
#include "sim/system.hh"
#include "workload/stream.hh"

namespace hawksim::harness {
namespace {

/** A small real simulation so the trace has fault/promote events. */
void
registerSimBacked(Registry &reg)
{
    reg.add("traced_sim", "observability export probe")
        .axis("mem", {"64", "96"})
        .axis("policy", {"thp", "4k"})
        .run([](const RunContext &ctx) {
            setLogQuiet(true);
            sim::SystemConfig cfg;
            cfg.memoryBytes =
                MiB(std::stoull(ctx.param("mem")));
            cfg.seed = ctx.seed();
            cfg.trace = ctx.trace();
            sim::System sys(cfg);
            policy::LinuxConfig pc;
            pc.thp = ctx.param("policy") == "thp";
            sys.setPolicy(
                std::make_unique<policy::LinuxThpPolicy>(pc));
            workload::StreamConfig wc;
            wc.footprintBytes = MiB(16);
            wc.workSeconds = 0.3;
            sys.addProcess(
                "w", std::make_unique<workload::StreamWorkload>(
                         "w", wc, Rng(1)));
            sys.runUntilAllDone(sec(10));
            RunOutput out;
            out.scalar("faults",
                       static_cast<double>(
                           sys.cost().counter(obs::Counter::kFaults)));
            out.simTimeNs = sys.now();
            out.metrics = std::move(sys.metrics());
            out.captureObs(sys);
            return out;
        });
}

Report
runWith(unsigned jobs, bool traced)
{
    Registry reg;
    registerSimBacked(reg);
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.masterSeed = 7;
    opts.trace.enabled = traced;
    return Runner(opts).run(reg);
}

std::string
traceString(const Report &r)
{
    std::ostringstream os;
    r.writeTrace(os);
    return os.str();
}

} // namespace

TEST(TraceExport, TraceIsByteIdenticalAcrossJobs)
{
    const Report serial = runWith(1, true);
    const Report parallel = runWith(4, true);
    ASSERT_EQ(serial.runs.size(), 4u);
    const std::string a = traceString(serial);
    EXPECT_EQ(a, traceString(parallel));
    EXPECT_GT(a.size(), 1000u); // real events, not just metadata
}

TEST(TraceExport, TraceIsValidChromeTraceJson)
{
    const Report r = runWith(2, true);
    std::string err;
    const Json j = Json::parse(traceString(r), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j["displayTimeUnit"].asString(), "ns");
    const Json &events = j["traceEvents"];
    ASSERT_GT(events.size(), 4u);
    bool sawFault = false;
    bool sawCounter = false;
    for (const Json &e : events.items()) {
        const std::string ph = e["ph"].asString();
        EXPECT_TRUE(ph == "M" || ph == "X" || ph == "i" ||
                    ph == "C");
        EXPECT_GE(e["pid"].asInt(), 1);
        if (ph != "M" && ph != "C" &&
            e["cat"].asString() == "fault")
            sawFault = true;
        if (ph == "C")
            sawCounter = true;
    }
    EXPECT_TRUE(sawFault);
    EXPECT_TRUE(sawCounter);
    // One Perfetto process per run, named after the grid point.
    EXPECT_EQ(events.at(0)["args"]["name"].asString(),
              "traced_sim/mem=64 policy=thp");
}

TEST(TraceExport, ReportUnchangedByTracing)
{
    // Tracing must observe, never perturb: the canonical report is
    // identical whether or not the tracer ran, except that traced
    // runs additionally carry the tracer's own emit/drop accounting
    // in their cost block (untraced reports keep the historical
    // byte-exact shape).
    const Report off = runWith(2, false);
    const Report on = runWith(2, true);
    const Json joff = off.toJson();
    const Json jon = on.toJson();
    ASSERT_EQ(joff["runs"].size(), jon["runs"].size());
    for (std::size_t i = 0; i < joff["runs"].size(); i++) {
        const Json &roff = joff["runs"].at(i);
        const Json &ron = jon["runs"].at(i);
        EXPECT_EQ(roff["metrics"].dump(), ron["metrics"].dump());
        EXPECT_EQ(roff["scalars"].dump(), ron["scalars"].dump());
        EXPECT_EQ(roff["sim_time_ns"].asInt(),
                  ron["sim_time_ns"].asInt());
        // cost: equal member-by-member, minus the traced-only block.
        bool off_has_trace = false;
        for (const auto &[key, v] : roff["cost"].members()) {
            off_has_trace |= key == "trace";
            EXPECT_EQ(v.dump(), ron["cost"][key].dump()) << key;
        }
        EXPECT_FALSE(off_has_trace);
        EXPECT_GT(ron["cost"]["trace"]["emitted"].asInt(), 0);
    }
    // ... and with tracing off, no events are retained.
    for (const auto &rec : off.runs)
        EXPECT_TRUE(rec.output.trace.empty());
    for (const auto &rec : on.runs)
        EXPECT_FALSE(rec.output.trace.empty());
}

TEST(TraceExport, ReportCarriesCostBlock)
{
    const Report r = runWith(2, false);
    const Json j = r.toJson();
    for (const Json &run : j["runs"].items()) {
        const Json &cost = run["cost"];
        EXPECT_GT(cost["total_ns"].asInt(), 0);
        EXPECT_GT(cost["subsys_ns"]["fault_path"].asInt(), 0);
        EXPECT_GT(cost["counters"]["faults"].asInt(), 0);
        const Json &lat = cost["fault_latency_ns"];
        EXPECT_GT(lat["count"].asInt(), 0);
        EXPECT_GT(lat["p50"].asDouble(), 0.0);
        EXPECT_GE(lat["p95"].asDouble(), lat["p50"].asDouble());
        EXPECT_GE(lat["p99"].asDouble(), lat["p95"].asDouble());
        EXPECT_GE(static_cast<double>(lat["max"].asInt()),
                  lat["p99"].asDouble());
    }
    // The THP run promoted or huge-faulted; the 4KB run did not.
    const Json &thp = j["runs"].at(0)["cost"]["counters"];
    const Json &base = j["runs"].at(1)["cost"]["counters"];
    EXPECT_GT(thp["huge_faults"].asInt() + thp["promotions"].asInt(),
              0);
    EXPECT_EQ(base["huge_faults"].asInt(), 0);
}

TEST(TraceExport, CategoryMaskLimitsExportedEvents)
{
    Registry reg;
    registerSimBacked(reg);
    RunnerOptions opts;
    opts.jobs = 1;
    opts.masterSeed = 7;
    opts.trace.enabled = true;
    opts.trace.mask = obs::catBit(obs::Cat::kProc);
    const Report r = Runner(opts).run(reg);
    for (const auto &rec : r.runs) {
        EXPECT_FALSE(rec.output.trace.empty());
        for (const auto &ev : rec.output.trace)
            EXPECT_EQ(ev.cat, obs::Cat::kProc);
    }
}

} // namespace hawksim::harness
