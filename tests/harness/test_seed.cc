#include <gtest/gtest.h>

#include <set>

#include "harness/seed.hh"

namespace hawksim::harness {
namespace {

TEST(SeedDerivation, DeterministicAcrossCalls)
{
    const auto a = deriveSeed(42, "fig5_promotion_efficiency", 3);
    const auto b = deriveSeed(42, "fig5_promotion_efficiency", 3);
    EXPECT_EQ(a, b);
}

TEST(SeedDerivation, DependsOnMasterSeed)
{
    EXPECT_NE(deriveSeed(42, "exp", 0), deriveSeed(43, "exp", 0));
}

TEST(SeedDerivation, DependsOnExperimentName)
{
    EXPECT_NE(deriveSeed(42, "exp_a", 0), deriveSeed(42, "exp_b", 0));
}

TEST(SeedDerivation, DependsOnIndex)
{
    EXPECT_NE(deriveSeed(42, "exp", 0), deriveSeed(42, "exp", 1));
}

TEST(SeedDerivation, NoCollisionsAcrossRealisticGrid)
{
    // 16 experiments x 512 indices x a few master seeds must give
    // distinct seeds: a collision would make two runs share RNG
    // streams and silently correlate their results.
    std::set<std::uint64_t> seen;
    std::size_t n = 0;
    for (std::uint64_t master : {0ull, 1ull, 42ull}) {
        for (int e = 0; e < 16; e++) {
            std::string name = "exp_";
            name += std::to_string(e);
            for (std::uint64_t i = 0; i < 512; i++) {
                seen.insert(deriveSeed(master, name, i));
                n++;
            }
        }
    }
    EXPECT_EQ(seen.size(), n);
}

TEST(SeedDerivation, KnownValuesStable)
{
    // Pin the derivation: changing it re-seeds every experiment and
    // invalidates all recorded reports, so it must be deliberate.
    EXPECT_EQ(deriveSeed(42, "fig3_first_nonzero", 0),
              deriveSeed(42, "fig3_first_nonzero", 0));
    const auto s = deriveSeed(0, "", 0);
    EXPECT_EQ(s, splitmix64(splitmix64(fnv1a(""))));
}

} // namespace
} // namespace hawksim::harness
