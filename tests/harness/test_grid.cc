#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/runner.hh"

namespace hawksim::harness {
namespace {

RunOutput
noopRun(const RunContext &)
{
    return {};
}

TEST(Grid, SizeIsProductOfAxes)
{
    Registry reg;
    auto &e = reg.add("e", "d")
                  .axis("a", {"1", "2", "3"})
                  .axis("b", {"x", "y"})
                  .run(noopRun);
    EXPECT_EQ(e.gridSize(), 6u);
    EXPECT_EQ(e.expand().size(), 6u);
}

TEST(Grid, NoAxesExpandsToOnePoint)
{
    Registry reg;
    auto &e = reg.add("e", "d").run(noopRun);
    EXPECT_EQ(e.gridSize(), 1u);
    const auto pts = e.expand();
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].index, 0u);
    EXPECT_TRUE(pts[0].params.empty());
}

TEST(Grid, FirstAxisVariesSlowest)
{
    Registry reg;
    auto &e = reg.add("e", "d")
                  .axis("pol", {"A", "B"})
                  .axis("wl", {"u", "v", "w"})
                  .run(noopRun);
    const auto pts = e.expand();
    ASSERT_EQ(pts.size(), 6u);
    const char *expect[][2] = {{"A", "u"}, {"A", "v"}, {"A", "w"},
                               {"B", "u"}, {"B", "v"}, {"B", "w"}};
    for (std::size_t i = 0; i < pts.size(); i++) {
        EXPECT_EQ(pts[i].index, i);
        EXPECT_EQ(pts[i].param("pol"), expect[i][0]);
        EXPECT_EQ(pts[i].param("wl"), expect[i][1]);
    }
}

TEST(Grid, LabelListsAxesInDeclarationOrder)
{
    Registry reg;
    auto &e = reg.add("e", "d")
                  .axis("pol", {"A"})
                  .axis("wl", {"u"})
                  .run(noopRun);
    EXPECT_EQ(e.expand()[0].label(), "pol=A wl=u");
}

TEST(Grid, FilterMatchesNameAndLabel)
{
    RunPoint pt;
    pt.experiment = "fig5_promotion_efficiency";
    pt.params = {{"policy", "HawkEye-G"}};
    EXPECT_TRUE(Runner::matches("", pt));
    EXPECT_TRUE(Runner::matches("fig5", pt));
    EXPECT_TRUE(Runner::matches("policy=HawkEye-G", pt));
    EXPECT_TRUE(Runner::matches("fig5_promotion_efficiency/policy",
                                pt));
    EXPECT_FALSE(Runner::matches("fig6", pt));
    EXPECT_FALSE(Runner::matches("policy=Linux", pt));
}

TEST(Grid, RegistryFindsByName)
{
    Registry reg;
    reg.add("one", "d").run(noopRun);
    reg.add("two", "d").run(noopRun);
    ASSERT_NE(reg.find("two"), nullptr);
    EXPECT_EQ(reg.find("two")->name(), "two");
    EXPECT_EQ(reg.find("three"), nullptr);
    EXPECT_EQ(reg.experiments().size(), 2u);
}

} // namespace
} // namespace hawksim::harness
