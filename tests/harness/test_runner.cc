#include <gtest/gtest.h>

#include <string>

#include "base/rng.hh"
#include "harness/runner.hh"
#include "harness/seed.hh"

namespace hawksim::harness {
namespace {

/**
 * Synthetic experiment: cheap, seed-dependent, and records metrics —
 * enough surface to notice any scheduling-dependent result routing.
 */
void
registerSynthetic(Registry &reg)
{
    reg.add("synthetic", "thread-pool determinism probe")
        .axis("alpha", {"a", "b", "c", "d"})
        .axis("beta", {"x", "y", "z"})
        .run([](const RunContext &ctx) {
            Rng rng(ctx.seed());
            RunOutput out;
            double acc = 0;
            for (int i = 0; i < 1000; i++)
                acc += rng.uniform();
            out.scalar("acc", acc);
            out.scalar("alpha_len",
                       static_cast<double>(ctx.param("alpha").size()));
            const auto sid = out.metrics.seriesId("probe");
            for (int i = 0; i < 10; i++)
                out.metrics.record(sid, i * 1000, rng.uniform());
            out.simTimeNs = 10'000;
            return out;
        });
}

Report
runWith(unsigned jobs, const std::string &filter = "")
{
    Registry reg;
    registerSynthetic(reg);
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.masterSeed = 42;
    opts.filter = filter;
    return Runner(opts).run(reg);
}

TEST(Runner, SerialAndParallelReportsAreByteIdentical)
{
    const Report serial = runWith(1);
    const Report parallel = runWith(8);
    ASSERT_EQ(serial.runs.size(), 12u);
    ASSERT_EQ(parallel.runs.size(), 12u);
    EXPECT_EQ(serial.toJson().dump(), parallel.toJson().dump());
}

TEST(Runner, ResultsArriveInExpansionOrder)
{
    const Report r = runWith(8);
    for (std::size_t i = 0; i < r.runs.size(); i++)
        EXPECT_EQ(r.runs[i].point.index, i);
    // First axis slowest: runs 0..2 are alpha=a with beta=x,y,z.
    EXPECT_EQ(r.runs[0].point.param("beta"), "x");
    EXPECT_EQ(r.runs[1].point.param("beta"), "y");
    EXPECT_EQ(r.runs[2].point.param("alpha"), "a");
    EXPECT_EQ(r.runs[3].point.param("alpha"), "b");
}

TEST(Runner, SeedsMatchDerivationAndFilterKeepsThem)
{
    const Report all = runWith(2);
    for (const auto &rec : all.runs) {
        EXPECT_EQ(rec.seed, deriveSeed(42, "synthetic",
                                       rec.point.index));
    }
    // Filtering away points must not re-seed the survivors.
    const Report filtered = runWith(2, "alpha=c");
    ASSERT_EQ(filtered.runs.size(), 3u);
    for (const auto &rec : filtered.runs) {
        EXPECT_EQ(rec.point.param("alpha"), "c");
        EXPECT_EQ(rec.seed, deriveSeed(42, "synthetic",
                                       rec.point.index));
    }
}

TEST(Runner, MasterSeedChangesResults)
{
    Registry reg;
    registerSynthetic(reg);
    RunnerOptions opts;
    opts.jobs = 1;
    opts.masterSeed = 43;
    const Report r43 = Runner(opts).run(reg);
    const Report r42 = runWith(1);
    EXPECT_NE(r42.toJson().dump(), r43.toJson().dump());
    // But the profile schema carries wall clock, which never belongs
    // in the canonical report.
    EXPECT_EQ(r42.toJson().dump().find("wall_ms"), std::string::npos);
}

/** All keys of a JSON object, comma-joined in emission order. */
std::string
keysOf(const Json &obj)
{
    std::string out;
    for (const auto &[key, value] : obj.members()) {
        (void)value;
        if (!out.empty())
            out += ",";
        out += key;
    }
    return out;
}

TEST(Runner, ReportSchemaFieldSignatureIsPinned)
{
    // The exact field set of hawksim-report/v1. If this test fails,
    // you changed the report schema: bump kReportSchema and update
    // the signature here instead of silently republishing v1.
    ASSERT_STREQ(kReportSchema, "hawksim-report/v1");
    const Report r = runWith(1, "alpha=a beta=x");
    const Json j = r.toJson();
    EXPECT_EQ(keysOf(j), "schema,master_seed,run_count,runs");
    ASSERT_GT(j["runs"].size(), 0u);
    const Json &run = j["runs"].at(0);
    EXPECT_EQ(keysOf(run),
              "experiment,index,params,seed,sim_time_ns,scalars,"
              "cost,metrics");
    EXPECT_EQ(keysOf(run["cost"]),
              "total_ns,subsys_ns,counters,fault_latency_ns");
    EXPECT_EQ(keysOf(run["cost"]["subsys_ns"]),
              "fault_path,promote_daemon,zero_daemon,bloat_daemon,"
              "compaction,reclaim,tlb_walk");
    EXPECT_EQ(keysOf(run["cost"]["counters"]),
              "faults,huge_faults,cow_faults,swap_ins,promotions,"
              "splits,migrated_pages,zeroed_pages,deduped_pages,"
              "reclaimed_pages,resv_broken");
    EXPECT_EQ(keysOf(run["cost"]["fault_latency_ns"]),
              "count,min,max,mean,p50,p95,p99");
    EXPECT_EQ(keysOf(run["metrics"]), "events,series");
    ASSERT_GT(run["metrics"]["series"].members().size(), 0u);
    for (const auto &[name, series] :
         run["metrics"]["series"].members()) {
        EXPECT_EQ(keysOf(series), "t,v") << name;
    }
}

TEST(Runner, ReportJsonSchema)
{
    const Report r = runWith(4, "alpha=a beta=x");
    ASSERT_EQ(r.runs.size(), 1u);
    const Json j = r.toJson();
    EXPECT_EQ(j["schema"].asString(), "hawksim-report/v1");
    EXPECT_STREQ(kReportSchema, "hawksim-report/v1");
    EXPECT_EQ(j["master_seed"].asUint(), 42u);
    EXPECT_EQ(j["run_count"].asInt(), 1);
    const Json &run = j["runs"].at(0);
    EXPECT_EQ(run["experiment"].asString(), "synthetic");
    EXPECT_EQ(run["params"]["alpha"].asString(), "a");
    EXPECT_EQ(run["sim_time_ns"].asInt(), 10'000);
    EXPECT_TRUE(run["scalars"].contains("acc"));
    EXPECT_EQ(run["metrics"]["series"]["probe"]["t"].size(), 10u);
}

} // namespace
} // namespace hawksim::harness
