/** @file CLI front-end tests: output-path handling and flag errors. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/json.hh"
#include "harness/runner.hh"

namespace hawksim::harness {
namespace {

namespace fs = std::filesystem;

void
registerTiny(Registry &reg)
{
    reg.add("tiny", "cli probe").axis("k", {"1", "2"}).run(
        [](const RunContext &ctx) {
            RunOutput out;
            out.scalar("k", std::stod(ctx.param("k")));
            out.simTimeNs = 1000;
            return out;
        });
}

/** Run the CLI with the given extra args inside a scratch dir. */
int
cli(std::vector<std::string> args)
{
    args.insert(args.begin(), "hawksim_bench");
    args.insert(args.end(), {"--quiet", "--jobs", "1"});
    std::vector<char *> argv;
    for (auto &a : args)
        argv.push_back(a.data());
    Registry reg;
    registerTiny(reg);
    return runCli(static_cast<int>(argv.size()), argv.data(), reg);
}

std::string
slurp(const fs::path &p)
{
    std::ifstream is(p, std::ios::binary);
    std::string s{std::istreambuf_iterator<char>(is),
                  std::istreambuf_iterator<char>()};
    return s;
}

class CliTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scratch_ = fs::temp_directory_path() / "hawksim_cli_test";
        fs::remove_all(scratch_);
    }

    void TearDown() override { fs::remove_all(scratch_); }

    fs::path scratch_;
};

TEST_F(CliTest, CreatesMissingParentDirsForAllOutputs)
{
    const fs::path out = scratch_ / "a" / "b" / "report.json";
    const fs::path prof = scratch_ / "c" / "profile.json";
    const fs::path trace = scratch_ / "d" / "e" / "trace.json";
    ASSERT_EQ(cli({"--out", out.string(), "--profile", prof.string(),
                   "--trace", trace.string()}),
              0);
    for (const fs::path &p : {out, prof, trace}) {
        ASSERT_TRUE(fs::exists(p)) << p;
        std::string err;
        Json::parse(slurp(p), &err);
        EXPECT_TRUE(err.empty()) << p << ": " << err;
    }
}

TEST_F(CliTest, BareFilenameOutNeedsNoParentDir)
{
    // Regression guard: a path with no directory component must not
    // trip the parent-creation logic.
    const fs::path cwd = fs::current_path();
    fs::create_directories(scratch_);
    fs::current_path(scratch_);
    const int rc = cli({"--out", "report.json"});
    fs::current_path(cwd);
    EXPECT_EQ(rc, 0);
    EXPECT_TRUE(fs::exists(scratch_ / "report.json"));
}

TEST_F(CliTest, RejectsUnknownTraceFilterCategory)
{
    const fs::path trace = scratch_ / "trace.json";
    EXPECT_EQ(cli({"--trace", trace.string(), "--trace-filter",
                   "bogus"}),
              2);
    EXPECT_FALSE(fs::exists(trace));
}

TEST_F(CliTest, TraceFilterLimitsCategories)
{
    const fs::path trace = scratch_ / "trace.json";
    const fs::path out = scratch_ / "report.json";
    ASSERT_EQ(cli({"--out", out.string(), "--trace", trace.string(),
                   "--trace-filter", "proc"}),
              0);
    std::string err;
    const Json j = Json::parse(slurp(trace), &err);
    ASSERT_TRUE(err.empty()) << err;
    for (const Json &e : j["traceEvents"].items()) {
        if (e["ph"].asString() == "M" || e["tid"].asInt() == 0)
            continue; // metadata and run spans are category-less
        EXPECT_EQ(e["cat"].asString(), "proc");
    }
}

} // namespace
} // namespace hawksim::harness
