#include <gtest/gtest.h>

#include "harness/json.hh"
#include "harness/runner.hh"
#include "sim/metrics.hh"

namespace hawksim::harness {
namespace {

TEST(Json, DumpScalars)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
    EXPECT_EQ(Json(std::uint64_t{42}).dump(), "42");
    EXPECT_EQ(Json(1.5).dump(), "1.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersStayIntegers)
{
    // 2^53+1 is not representable as a double; the int64 path must
    // carry it exactly (sim_time_ns values get this large).
    const std::int64_t big = (std::int64_t{1} << 53) + 1;
    Json j(big);
    EXPECT_EQ(j.asInt(), big);
    EXPECT_EQ(j.dump(), "9007199254740993");
    const Json back = Json::parse(j.dump());
    EXPECT_EQ(back.asInt(), big);
}

TEST(Json, StringEscapes)
{
    Json j(std::string("a\"b\\c\n\t\x01"));
    const std::string s = j.dump();
    const Json back = Json::parse(s);
    EXPECT_EQ(back.asString(), j.asString());
}

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zeta", Json(1));
    obj.set("alpha", Json(2));
    EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2}");
}

TEST(Json, ParseRoundTrip)
{
    const std::string doc =
        "{\"a\":[1,2.5,null,true,\"x\"],\"b\":{\"c\":-3}}";
    std::string err;
    const Json j = Json::parse(doc, &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(j.dump(), doc);
    EXPECT_EQ(j["a"].size(), 5u);
    EXPECT_EQ(j["b"]["c"].asInt(), -3);
    EXPECT_TRUE(j["missing"].isNull());
    EXPECT_FALSE(j.contains("missing"));
}

TEST(Json, ParseUnicodeEscape)
{
    const Json j = Json::parse("\"\\u00e9\\u0041\"");
    EXPECT_EQ(j.asString(), "\xc3\xa9"
                            "A");
}

TEST(Json, ParseErrorsReported)
{
    std::string err;
    const Json j = Json::parse("{\"a\":", &err);
    EXPECT_TRUE(j.isNull());
    EXPECT_FALSE(err.empty());
}

TEST(Json, DoubleFormattingIsShortestRoundTrip)
{
    // std::to_chars shortest form: 0.1 prints as "0.1", not
    // "0.10000000000000001" — and survives a round-trip exactly.
    EXPECT_EQ(Json(0.1).dump(), "0.1");
    const double v = 1.0 / 3.0;
    EXPECT_EQ(Json::parse(Json(v).dump()).asDouble(), v);
}

TEST(Json, MetricsRoundTrip)
{
    sim::Metrics m;
    const auto rss = m.seriesId("p1.rss_pages");
    const auto mmu = m.seriesId("p1.mmu_overhead");
    m.record(rss, 1'000'000, 512.0);
    m.record(rss, 2'000'000, 1024.0);
    m.record(mmu, 1'000'000, 0.35);
    m.event(1'500'000, "oom");

    const Json j = metricsToJson(m);
    sim::Metrics back = metricsFromJson(j);
    // The canonical JSON of the rebuilt Metrics must be identical.
    EXPECT_EQ(metricsToJson(back).dump(), j.dump());
    EXPECT_EQ(back.series("p1.rss_pages").points().size(), 2u);
    EXPECT_EQ(back.series("p1.mmu_overhead").points()[0].value, 0.35);
    ASSERT_EQ(back.events().size(), 1u);
    EXPECT_EQ(back.events()[0].what, "oom");
}

} // namespace
} // namespace hawksim::harness
