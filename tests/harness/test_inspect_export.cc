/** @file Harness-level introspection export tests: --inspect-out
 *  determinism, report purity, schema pinning, counter tracks. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "harness/runner.hh"
#include "policy/linux_thp.hh"
#include "sim/system.hh"
#include "vm/page_table.hh"
#include "workload/stream.hh"

namespace hawksim::harness {
namespace {

/** A small real simulation so snapshots have populated memory. */
void
registerSimBacked(Registry &reg)
{
    reg.add("inspected_sim", "introspection export probe")
        .axis("mem", {"64", "96"})
        .axis("policy", {"thp", "4k"})
        .run([](const RunContext &ctx) {
            setLogQuiet(true);
            sim::SystemConfig cfg;
            cfg.memoryBytes =
                MiB(std::stoull(ctx.param("mem")));
            cfg.seed = ctx.seed();
            cfg.trace = ctx.trace();
            cfg.inspect = ctx.inspect();
            sim::System sys(cfg);
            policy::LinuxConfig pc;
            pc.thp = ctx.param("policy") == "thp";
            sys.setPolicy(
                std::make_unique<policy::LinuxThpPolicy>(pc));
            workload::StreamConfig wc;
            wc.footprintBytes = MiB(16);
            wc.workSeconds = 0.3;
            sys.addProcess(
                "w", std::make_unique<workload::StreamWorkload>(
                         "w", wc, Rng(1)));
            sys.runUntilAllDone(sec(10));
            RunOutput out;
            out.scalar("faults",
                       static_cast<double>(
                           sys.cost().counter(obs::Counter::kFaults)));
            out.simTimeNs = sys.now();
            out.metrics = std::move(sys.metrics());
            out.captureObs(sys);
            return out;
        });
}

Report
runWith(unsigned jobs, std::uint64_t inspect_every,
        bool traced = false, std::size_t trace_capacity = 1 << 16)
{
    Registry reg;
    registerSimBacked(reg);
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.masterSeed = 7;
    opts.inspect.everyTicks = inspect_every;
    opts.trace.enabled = traced;
    opts.trace.capacity = trace_capacity;
    return Runner(opts).run(reg);
}

/** All keys of a JSON object, comma-joined in emission order. */
std::string
keysOf(const Json &obj)
{
    std::string out;
    for (const auto &[key, value] : obj.members()) {
        (void)value;
        if (!out.empty())
            out += ",";
        out += key;
    }
    return out;
}

} // namespace

TEST(InspectExport, DumpIsByteIdenticalAcrossJobs)
{
    const Report serial = runWith(1, 10);
    const Report parallel = runWith(8, 10);
    ASSERT_EQ(serial.runs.size(), 4u);
    for (const auto &rec : serial.runs)
        EXPECT_FALSE(rec.output.snapshots.empty());
    const std::string a = serial.inspectJson().dump();
    const std::string b = parallel.inspectJson().dump();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find(obs::kInspectSchema), std::string::npos);
    EXPECT_GT(a.size(), 1000u);
}

TEST(InspectExport, ReportUnchangedByIntrospection)
{
    // Snapshots must observe, never perturb: everything the canonical
    // report carried before this feature stays byte-identical; runs
    // with introspection enabled only *add* vmstat.* series.
    const Report off = runWith(2, 0);
    const Report on = runWith(2, 10);
    const Json joff = off.toJson();
    const Json jon = on.toJson();
    ASSERT_EQ(joff["runs"].size(), jon["runs"].size());
    for (std::size_t i = 0; i < joff["runs"].size(); i++) {
        const Json &roff = joff["runs"].at(i);
        const Json &ron = jon["runs"].at(i);
        EXPECT_EQ(roff["scalars"].dump(), ron["scalars"].dump());
        EXPECT_EQ(roff["cost"].dump(), ron["cost"].dump());
        EXPECT_EQ(roff["sim_time_ns"].asInt(),
                  ron["sim_time_ns"].asInt());
        EXPECT_EQ(roff["metrics"]["events"].dump(),
                  ron["metrics"]["events"].dump());
        for (const auto &[name, series] :
             roff["metrics"]["series"].members()) {
            EXPECT_EQ(series.dump(),
                      ron["metrics"]["series"][name].dump())
                << name;
        }
        for (const auto &[name, series] :
             jon["runs"].at(i)["metrics"]["series"].members()) {
            (void)series;
            if (!roff["metrics"]["series"].contains(name)) {
                EXPECT_EQ(name.substr(0, 7), "vmstat.") << name;
            }
        }
    }
    for (const auto &rec : off.runs)
        EXPECT_TRUE(rec.output.snapshots.empty());
    // The disabled-side dump is a valid (empty) inspect artifact.
    const Json empty = off.inspectJson();
    EXPECT_EQ(empty["schema"].asString(), obs::kInspectSchema);
    for (const Json &run : empty["runs"].items())
        EXPECT_EQ(run["snapshots"].size(), 0u);
}

TEST(InspectExport, DumpUnchangedByTranslationCacheToggle)
{
    // The page-table translation cache is a simulator-speed knob; it
    // must not leak into observable state.
    const Report cached = runWith(2, 10);
    vm::PageTable::setTranslationCacheEnabled(false);
    const Report uncached = runWith(2, 10);
    vm::PageTable::setTranslationCacheEnabled(true);
    EXPECT_EQ(cached.inspectJson().dump(),
              uncached.inspectJson().dump());
    EXPECT_EQ(cached.toJson().dump(), uncached.toJson().dump());
}

TEST(InspectExport, SchemaFieldSignatureIsPinned)
{
    // The exact field set of hawksim-inspect/v1. If this test fails,
    // you changed the snapshot schema: bump obs::kInspectSchema and
    // update the signature here instead of silently republishing v1.
    ASSERT_STREQ(obs::kInspectSchema, "hawksim-inspect/v1");
    const Report r = runWith(1, 10);
    const Json dump = r.inspectJson();
    EXPECT_EQ(keysOf(dump), "schema,master_seed,run_count,runs");
    ASSERT_GT(dump["runs"].size(), 0u);
    const Json &run = dump["runs"].at(0);
    EXPECT_EQ(keysOf(run), "experiment,index,params,seed,snapshots");
    ASSERT_GT(run["snapshots"].size(), 0u);
    const Json &snap = run["snapshots"].at(0);
    EXPECT_EQ(keysOf(snap), "time_ns,tick,meminfo,buddyinfo,processes");
    EXPECT_EQ(keysOf(snap["meminfo"]),
              "total_frames,free_frames,used_frames,free_zero_pages,"
              "free_nonzero_pages,largest_free_order,fmfi9,"
              "swap_used_pages,swap_capacity_pages,swapped_pages,"
              "swap_total_out,swap_total_in");
    EXPECT_EQ(keysOf(snap["buddyinfo"]),
              "free_blocks,free_zero_blocks");
    ASSERT_GT(snap["processes"].size(), 0u);
    const Json &proc = snap["processes"].at(0);
    EXPECT_EQ(keysOf(proc),
              "pid,name,finished,oom,rss_pages,mapped_pages,"
              "base_pages,huge_pages,swapped_pages,zero_backed_pages,"
              "page_faults,cow_faults,mmu_overhead_pct,tlb,smaps,"
              "pagemap");
    EXPECT_EQ(keysOf(proc["tlb"]),
              "l1_4k,l1_2m,l2,pwc_pde,pwc_pdpte");
    ASSERT_GT(proc["smaps"].size(), 0u);
    EXPECT_EQ(keysOf(proc["smaps"].at(0)),
              "start,end,name,anon,huge_eligible,mapped_pages,"
              "rss_pages,huge_regions,accessed_pages,dirty_pages,"
              "zero_cow_pages,zero_backed_pages,swapped_pages");
    ASSERT_GT(proc["pagemap"].size(), 0u);
    EXPECT_EQ(keysOf(proc["pagemap"].at(0)),
              "region,population,accessed,dirty,huge,zero_cow,"
              "zero_backed,ema,bucket");
}

TEST(InspectExport, TraceGainsCounterAndDropTracks)
{
    // A deliberately tiny ring forces drops so the drop-accounting
    // metadata is exercised too.
    const Report r = runWith(1, 10, /*traced=*/true,
                             /*trace_capacity=*/64);
    std::ostringstream os;
    r.writeTrace(os);
    const std::string t = os.str();
    EXPECT_NE(t.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(t.find("sys.fmfi9_x1000"), std::string::npos);
    EXPECT_NE(t.find("sys.free_frames"), std::string::npos);
    EXPECT_NE(t.find("vmstat.free_zero_pages"), std::string::npos);
    EXPECT_NE(t.find("cost.fault_p50_ns"), std::string::npos);
    EXPECT_NE(t.find("cost.fault_p99_ns"), std::string::npos);
    EXPECT_NE(t.find("p1.rss_pages"), std::string::npos);
    EXPECT_NE(t.find("tracer_drops"), std::string::npos);

    std::string err;
    const Json j = Json::parse(t, &err);
    ASSERT_TRUE(err.empty()) << err;
    bool saw_drop_meta = false;
    for (const Json &e : j["traceEvents"].items()) {
        if (e["name"].asString() != "tracer_drops")
            continue;
        saw_drop_meta = true;
        EXPECT_GT(e["args"]["dropped"].asInt(), 0);
        EXPECT_GT(e["args"]["emitted"].asInt(),
                  e["args"]["dropped"].asInt());
    }
    EXPECT_TRUE(saw_drop_meta);
}

} // namespace hawksim::harness
