/**
 * @file
 * Bloat-recovery tests (§3.2): watermark activation, zero-page
 * detection inside huge pages, demotion + dedup, and the
 * cost-proportional-to-bloat property.
 */

#include <gtest/gtest.h>

#include "core/bloat_recovery.hh"
#include "hawksim.hh"

using namespace hawksim;
using core::BloatRecovery;

namespace {

struct BloatFixture
{
    explicit BloatFixture(std::uint64_t mem = MiB(64))
    {
        setLogQuiet(true);
        sim::SystemConfig cfg;
        cfg.memoryBytes = mem;
        sys = std::make_unique<sim::System>(cfg);
        sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>(
            policy::LinuxConfig{.thp = false}));
        workload::StreamConfig wc;
        wc.footprintBytes = mem; // VA room for everything
        wc.workSeconds = 1e9;
        wc.initTouchAll = false;
        proc = &sys->addProcess(
            "b", std::make_unique<workload::StreamWorkload>(
                     "b", wc, Rng(1)));
        base = static_cast<workload::StreamWorkload *>(
                   &proc->workload())
                   ->baseAddr();
    }

    /**
     * Map a huge page at region index r of the VMA with
     * `used` non-zero base pages (rest zero-filled = bloat).
     */
    void
    mapHugeWithBloat(unsigned r, unsigned used)
    {
        auto blk = sys->phys().allocBlock(kHugePageOrder,
                                          proc->pid(),
                                          mem::ZeroPref::kPreferZero);
        ASSERT_TRUE(blk.has_value());
        mem::ContentGenerator gen(Rng(77 + r));
        for (unsigned i = 0; i < used; i++)
            sys->phys().writeFrame(blk->pfn + i, gen.data());
        for (unsigned i = used; i < 512; i++)
            sys->phys().zeroFrame(blk->pfn + i);
        proc->space().mapHugeRegion(base / kHugePageSize + r,
                                    blk->pfn);
    }

    std::unique_ptr<sim::System> sys;
    sim::Process *proc = nullptr;
    Addr base = 0;
};

double
noScore(sim::Process &)
{
    return 0.0;
}

} // namespace

TEST(BloatRecovery, InactiveBelowHighWatermark)
{
    BloatFixture f;
    f.mapHugeWithBloat(0, 10);
    BloatRecovery br(0.85, 0.70, 1e12, 128);
    br.periodic(*f.sys, msec(10), noScore);
    EXPECT_FALSE(br.active());
    EXPECT_EQ(br.stats().hugeDemoted, 0u);
}

TEST(BloatRecovery, ActivatesAndRecoversBloat)
{
    BloatFixture f(MiB(64)); // 32 huge regions
    // Fill ~90% of memory with huge pages that are 75% bloat.
    for (unsigned r = 0; r < 29; r++)
        f.mapHugeWithBloat(r, 128);
    ASSERT_GT(f.sys->phys().usedFraction(), 0.85);
    BloatRecovery br(0.85, 0.70, 1e12, 128);
    const std::uint64_t rss_before = f.proc->space().rssPages();
    br.periodic(*f.sys, sec(1), noScore);
    EXPECT_GT(br.stats().activations, 0u);
    EXPECT_GT(br.stats().hugeDemoted, 0u);
    EXPECT_GT(br.stats().pagesDeduped, 0u);
    EXPECT_LT(f.proc->space().rssPages(), rss_before);
    // It stops once usage falls below the low watermark.
    EXPECT_LE(f.sys->phys().usedFraction(), 0.75);
    EXPECT_FALSE(br.active());
}

TEST(BloatRecovery, DedupedPagesReadAsZeroCow)
{
    BloatFixture f(MiB(64));
    for (unsigned r = 0; r < 29; r++)
        f.mapHugeWithBloat(r, 64);
    BloatRecovery br(0.85, 0.70, 1e12, 128);
    br.periodic(*f.sys, sec(1), noScore);
    // Find a demoted region and check its zero pages.
    bool checked = false;
    for (unsigned r = 0; r < 29 && !checked; r++) {
        const std::uint64_t region = f.base / kHugePageSize + r;
        if (f.proc->space().pageTable().isHuge(region))
            continue;
        auto t = f.proc->space().pageTable().lookup(
            (region << 9) + 511); // bloat slot
        ASSERT_TRUE(t.present);
        EXPECT_TRUE(t.entry.zeroPage());
        EXPECT_TRUE(t.entry.cow());
        EXPECT_EQ(t.pfn, f.sys->phys().zeroPagePfn());
        checked = true;
    }
    EXPECT_TRUE(checked);
}

TEST(BloatRecovery, SparesHugePagesBelowThreshold)
{
    BloatFixture f(MiB(64));
    // 28 fully-used huge pages + 1 bloated one -> high pressure.
    for (unsigned r = 0; r < 28; r++)
        f.mapHugeWithBloat(r, 512);
    f.mapHugeWithBloat(28, 32);
    BloatRecovery br(0.85, 0.70, 1e12, 128);
    br.periodic(*f.sys, sec(1), noScore);
    // Only the bloated huge page may be demoted.
    EXPECT_EQ(br.stats().hugeDemoted, 1u);
    unsigned huge_left = 0;
    for (unsigned r = 0; r < 29; r++) {
        if (f.proc->space().pageTable().isHuge(
                f.base / kHugePageSize + r)) {
            huge_left++;
        }
    }
    EXPECT_EQ(huge_left, 28u);
}

TEST(BloatRecovery, ScanCostProportionalToBloatNotMemory)
{
    // In-use pages cost ~10 bytes each to reject; only bloat pages
    // cost the full 4KB (§3.2's scaling argument).
    BloatFixture dense(MiB(64));
    for (unsigned r = 0; r < 29; r++)
        dense.mapHugeWithBloat(r, 512); // no bloat
    BloatRecovery br1(0.85, 0.70, 1e12, 128);
    br1.periodic(*dense.sys, sec(1), noScore);

    BloatFixture sparse(MiB(64));
    for (unsigned r = 0; r < 29; r++)
        sparse.mapHugeWithBloat(r, 0); // pure bloat
    BloatRecovery br2(0.85, 0.70, 1e12, 128);
    br2.periodic(*sparse.sys, sec(1), noScore);

    ASSERT_GT(br1.stats().regionsScanned, 0u);
    const double per_region_dense =
        static_cast<double>(br1.stats().bytesScanned) /
        static_cast<double>(br1.stats().regionsScanned);
    const double per_region_sparse =
        static_cast<double>(br2.stats().bytesScanned) /
        static_cast<double>(br2.stats().regionsScanned);
    EXPECT_GT(per_region_sparse, per_region_dense * 20);
}

TEST(BloatRecovery, ScansLowestOverheadProcessFirst)
{
    BloatFixture f(MiB(64));
    for (unsigned r = 0; r < 29; r++)
        f.mapHugeWithBloat(r, 128);
    // Claim this process has huge measured overhead: the scanner
    // should still work (it's the only process), but with a tiny
    // budget it scans in score order — covered by the multi-process
    // integration test; here we check the hook plumbing.
    BloatRecovery br(0.85, 0.70, 1e12, 128);
    int hook_calls = 0;
    br.setDemoteHook(
        [&](sim::Process &, std::uint64_t) { hook_calls++; });
    br.periodic(*f.sys, sec(1), noScore);
    EXPECT_EQ(static_cast<std::uint64_t>(hook_calls),
              br.stats().hugeDemoted);
}
