/** @file HawkEye policy introspection / configuration tests. */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

struct Fixture
{
    explicit Fixture(core::HawkEyeConfig cfg = {})
    {
        setLogQuiet(true);
        sim::SystemConfig scfg;
        scfg.memoryBytes = MiB(128);
        sys = std::make_unique<sim::System>(scfg);
        auto pol = std::make_unique<core::HawkEyePolicy>(cfg);
        policy = pol.get();
        sys->setPolicy(std::move(pol));
    }
    std::unique_ptr<sim::System> sys;
    core::HawkEyePolicy *policy = nullptr;
};

} // namespace

TEST(HawkEyeAccessors, NamesReflectVariant)
{
    Fixture g;
    EXPECT_EQ(g.policy->name(), "HawkEye-G");
    core::HawkEyeConfig c;
    c.usePmu = true;
    Fixture p(c);
    EXPECT_EQ(p.policy->name(), "HawkEye-PMU");
}

TEST(HawkEyeAccessors, PerProcessStateLifecycle)
{
    Fixture f;
    EXPECT_EQ(f.policy->accessMap(1), nullptr);
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(16);
    wc.workSeconds = 0.2;
    auto &proc = f.sys->addProcess(
        "w", std::make_unique<workload::StreamWorkload>("w", wc,
                                                        Rng(1)));
    EXPECT_NE(f.policy->accessMap(proc.pid()), nullptr);
    EXPECT_NE(f.policy->tracker(proc.pid()), nullptr);
    f.sys->runUntilAllDone(sec(60));
    // State is dropped on process exit.
    EXPECT_EQ(f.policy->accessMap(proc.pid()), nullptr);
    EXPECT_EQ(f.policy->tracker(proc.pid()), nullptr);
}

TEST(HawkEyeAccessors, ProcessScoreTracksVariant)
{
    core::HawkEyeConfig cfg;
    cfg.samplePeriod = sec(2);
    Fixture f(cfg);
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(32);
    wc.workSeconds = 1e9;
    wc.accessesPerSec = 4e6;
    auto &proc = f.sys->addProcess(
        "w", std::make_unique<workload::StreamWorkload>("w", wc,
                                                        Rng(1)));
    f.sys->run(sec(6));
    // G variant: the score is the coverage estimate (> 0 once the
    // tracker sampled the busy process).
    EXPECT_GT(f.policy->processScore(proc.pid()), 0.0);
    EXPECT_EQ(f.policy->processScore(9999), 0.0);
}

TEST(HawkEyeAccessors, DaemonStatsExposed)
{
    sim::SystemConfig scfg;
    scfg.memoryBytes = MiB(128);
    scfg.bootMemoryZeroed = false;
    setLogQuiet(true);
    sim::System sys(scfg);
    auto pol = std::make_unique<core::HawkEyePolicy>();
    auto *policy = pol.get();
    sys.setPolicy(std::move(pol));
    sys.costs().zeroDaemonPagesPerSec = 1e9;
    policy->attach(sys); // re-read the rate
    sys.run(msec(100));
    EXPECT_GT(policy->zeroDaemon().stats().pagesZeroed, 0u);
    EXPECT_EQ(policy->bloatRecovery().stats().activations, 0u);
}

TEST(HawkEyeAccessors, ConfigIsHonored)
{
    core::HawkEyeConfig cfg;
    cfg.enablePrezero = false;
    Fixture f(cfg);
    EXPECT_FALSE(f.policy->config().enablePrezero);
    sim::SystemConfig scfg;
    scfg.memoryBytes = MiB(64);
    scfg.bootMemoryZeroed = false;
    sim::System sys(scfg);
    auto pol = std::make_unique<core::HawkEyePolicy>(cfg);
    auto *p = pol.get();
    sys.setPolicy(std::move(pol));
    sys.run(sec(1));
    EXPECT_EQ(p->zeroDaemon().stats().pagesZeroed, 0u);
}
