/**
 * @file
 * AccessMap (§3.3, Fig. 4) tests: bucketing, head/tail recency
 * placement, and promotion ordering.
 */

#include <gtest/gtest.h>

#include "core/access_map.hh"

using namespace hawksim;
using core::AccessMap;

TEST(AccessMap, BucketBoundaries)
{
    // Ten buckets over coverage 0..512: 0-51.2 -> 0, etc.
    EXPECT_EQ(AccessMap::bucketFor(0.0), 0u);
    EXPECT_EQ(AccessMap::bucketFor(51.0), 0u);
    EXPECT_EQ(AccessMap::bucketFor(52.0), 1u);
    EXPECT_EQ(AccessMap::bucketFor(511.0), 9u);
    EXPECT_EQ(AccessMap::bucketFor(512.0), 9u); // clamped
}

TEST(AccessMap, InsertAndPeek)
{
    AccessMap m;
    EXPECT_TRUE(m.empty());
    m.update(100, 500.0); // bucket 9
    m.update(200, 10.0);  // bucket 0
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.topBucket(), 9);
    EXPECT_EQ(m.peekTop().value(), 100u);
}

TEST(AccessMap, PromotionOrderHighToLow)
{
    AccessMap m;
    m.update(1, 40.0);   // bucket 0
    m.update(2, 300.0);  // bucket 5
    m.update(3, 499.0);  // bucket 9
    EXPECT_EQ(m.popTop().value(), 3u);
    EXPECT_EQ(m.popTop().value(), 2u);
    EXPECT_EQ(m.popTop().value(), 1u);
    EXPECT_FALSE(m.popTop().has_value());
}

TEST(AccessMap, MovingUpInsertsAtHead)
{
    AccessMap m;
    m.update(1, 300.0); // bucket 5
    m.update(2, 100.0); // bucket 1
    m.update(2, 310.0); // region 2 heats up into bucket 5
    // Region 2 moved up: goes to the head, promoted before 1.
    EXPECT_EQ(m.popTop().value(), 2u);
    EXPECT_EQ(m.popTop().value(), 1u);
}

TEST(AccessMap, MovingDownInsertsAtTail)
{
    AccessMap m;
    m.update(1, 490.0); // bucket 9
    m.update(2, 300.0); // bucket 5
    m.update(1, 280.0); // region 1 cools into bucket 5 -> tail
    EXPECT_EQ(m.popTop().value(), 2u);
    EXPECT_EQ(m.popTop().value(), 1u);
}

TEST(AccessMap, SameBucketKeepsPosition)
{
    AccessMap m;
    m.update(1, 290.0);
    m.update(2, 295.0); // head of bucket 5 (newer)
    m.update(1, 300.0); // same bucket: position unchanged
    EXPECT_EQ(m.popTop().value(), 2u);
}

TEST(AccessMap, RemoveDropsRegion)
{
    AccessMap m;
    m.update(1, 300.0);
    m.update(2, 400.0);
    m.remove(2);
    EXPECT_FALSE(m.contains(2));
    EXPECT_EQ(m.peekTop().value(), 1u);
    m.remove(99); // removing an absent region is a no-op
    EXPECT_EQ(m.size(), 1u);
}

TEST(AccessMap, Figure4PromotionOrderWithinProcess)
{
    // Figure 4's process C: regions in buckets 9 (C1), 8 (C2),
    // 6 (C3, C4), 2 (C5). Promotion order must be C1 C2 C3 C4 C5.
    AccessMap m;
    m.update(5, 150.0); // C5, bucket 2
    m.update(4, 330.0); // C4, bucket 6 (inserted first)
    m.update(3, 340.0); // C3, bucket 6 head (newer at head)
    m.update(2, 440.0); // C2, bucket 8
    m.update(1, 500.0); // C1, bucket 9
    // Within bucket 6: head is the most recently inserted (C3).
    EXPECT_EQ(m.popTop().value(), 1u);
    EXPECT_EQ(m.popTop().value(), 2u);
    EXPECT_EQ(m.popTop().value(), 3u);
    EXPECT_EQ(m.popTop().value(), 4u);
    EXPECT_EQ(m.popTop().value(), 5u);
}

TEST(AccessMap, BucketSizeAccounting)
{
    AccessMap m;
    for (std::uint64_t r = 0; r < 20; r++)
        m.update(r, 500.0);
    EXPECT_EQ(m.bucketSize(9), 20u);
    for (std::uint64_t r = 0; r < 10; r++)
        m.update(r, 1.0);
    EXPECT_EQ(m.bucketSize(9), 10u);
    EXPECT_EQ(m.bucketSize(0), 10u);
}
