/**
 * @file
 * HawkEye policy tests: zero-list fault path (low latency AND few
 * faults), coverage-driven promotion order, PMU-vs-G process
 * selection, pressure-gated huge faults, and bloat recovery wiring.
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

struct HawkFixture
{
    explicit HawkFixture(core::HawkEyeConfig cfg = {},
                         std::uint64_t mem = MiB(256))
    {
        setLogQuiet(true);
        sim::SystemConfig scfg;
        scfg.memoryBytes = mem;
        sys = std::make_unique<sim::System>(scfg);
        auto pol = std::make_unique<core::HawkEyePolicy>(cfg);
        policy = pol.get();
        sys->setPolicy(std::move(pol));
    }

    sim::Process &
    addStream(const std::string &name, workload::StreamConfig wc,
              std::uint64_t seed = 1)
    {
        return sys->addProcess(
            name, std::make_unique<workload::StreamWorkload>(
                      name, wc, Rng(seed)));
    }

    std::unique_ptr<sim::System> sys;
    core::HawkEyePolicy *policy = nullptr;
};

} // namespace

TEST(HawkEye, HugeFaultFromZeroListIsCheap)
{
    HawkFixture f;
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(16);
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    auto &proc = f.addStream("a", wc);
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    auto out = f.policy->onFault(*f.sys, proc, addrToVpn(base));
    EXPECT_TRUE(out.huge);
    // Pre-zeroed block: no synchronous 2MB zeroing (13us vs 465us).
    EXPECT_LT(out.latency, usec(20));
}

TEST(HawkEye, DirtyMemoryMakesHugeFaultExpensiveUntilDaemonRuns)
{
    core::HawkEyeConfig cfg;
    HawkFixture f(cfg);
    // Dirty all free memory.
    sim::SystemConfig scfg;
    scfg.memoryBytes = MiB(256);
    scfg.bootMemoryZeroed = false;
    f.sys = std::make_unique<sim::System>(scfg);
    auto pol = std::make_unique<core::HawkEyePolicy>(cfg);
    f.policy = pol.get();
    f.sys->setPolicy(std::move(pol));
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(64);
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    auto &proc = f.addStream("a", wc);
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    auto out = f.policy->onFault(*f.sys, proc, addrToVpn(base));
    EXPECT_TRUE(out.huge);
    EXPECT_GE(out.latency, f.sys->costs().zero2m); // sync zeroing
    // After the daemon catches up, faults are cheap again.
    f.sys->costs().zeroDaemonPagesPerSec = 1e12;
    f.policy->attach(*f.sys); // re-read rates
    f.sys->run(msec(50));
    auto out2 = f.policy->onFault(*f.sys, proc,
                                  addrToVpn(base) + 512);
    EXPECT_LT(out2.latency, usec(20));
}

TEST(HawkEye, PressureGatesHugeFaults)
{
    HawkFixture f({}, MiB(64));
    // Consume ~90% of memory.
    auto hold = f.sys->phys().allocBlock(
        mem::BuddyAllocator::kMaxOrder, 99, mem::ZeroPref::kAny);
    std::vector<mem::BuddyBlock> held;
    while (f.sys->phys().usedFraction() < 0.9) {
        auto blk =
            f.sys->phys().allocBlock(9, 99, mem::ZeroPref::kAny);
        ASSERT_TRUE(blk.has_value());
        held.push_back(*blk);
    }
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(4);
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    auto &proc = f.addStream("a", wc);
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    auto out = f.policy->onFault(*f.sys, proc, addrToVpn(base));
    EXPECT_FALSE(out.huge) << "no huge faults above the watermark";
    (void)hold;
}

TEST(HawkEye, PromotesHighestCoverageRegionsFirst)
{
    core::HawkEyeConfig cfg;
    cfg.samplePeriod = sec(2); // fast sampling for the test
    cfg.faultHuge = false;     // promotion is the only huge-page path
    HawkFixture f(cfg);
    // A workload whose hot region is at the TOP of its VA space and
    // covers pages densely; promotion must go there first even
    // though lower VAs are mapped too.
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(64);
    wc.hotStart = 0.75;
    wc.hotEnd = 1.0;
    wc.hotFraction = 0.95;
    wc.workSeconds = 1e9;
    wc.accessesPerSec = 2e6;
    auto &proc = f.addStream("hot-high", wc);
    f.sys->costs().promotionsPerSec = 1.0; // slow: order matters
    f.sys->run(sec(6));
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    const std::uint64_t first_region = base / kHugePageSize;
    const std::uint64_t regions = MiB(64) / kHugePageSize;
    const auto &pt = proc.space().pageTable();
    std::uint64_t promoted_high = 0, promoted_low = 0;
    for (std::uint64_t r = 0; r < regions; r++) {
        if (!pt.isHuge(first_region + r))
            continue;
        if (r >= regions * 3 / 4)
            promoted_high++;
        else
            promoted_low++;
    }
    // With ~5 promotions of budget, the densely-covered hot quarter
    // (high VAs) must win over the sparsely-touched low VAs.
    EXPECT_GE(promoted_high, 3u);
    EXPECT_GT(promoted_high, promoted_low);
}

TEST(HawkEyePmu, SelectsMeasuredOverheadProcess)
{
    core::HawkEyeConfig cfg;
    cfg.usePmu = true;
    cfg.faultHuge = false; // force promotion-driven huge pages
    cfg.samplePeriod = sec(2);
    HawkFixture f(cfg, MiB(512));
    // TLB-thrashing random workload vs prefetch-friendly sequential:
    // both have full access coverage, only one has measured overhead
    // (the Table 9 scenario).
    workload::StreamConfig rnd;
    rnd.footprintBytes = MiB(128);
    rnd.accessesPerSec = 6e6;
    rnd.workSeconds = 1e9;
    workload::StreamConfig seq = rnd;
    seq.sequentialFraction = 1.0;
    auto &prnd = f.addStream("random", rnd, 2);
    auto &pseq = f.addStream("sequential", seq, 3);
    f.sys->costs().promotionsPerSec = 6.0;
    f.sys->run(sec(10));
    EXPECT_GT(prnd.space().pageTable().mappedHugePages(),
              pseq.space().pageTable().mappedHugePages() * 2)
        << "PMU variant must prefer the workload with measured "
           "walk cycles";
}

TEST(HawkEyePmu, StopsPromotingBelowThreshold)
{
    core::HawkEyeConfig cfg;
    cfg.usePmu = true;
    cfg.faultHuge = false;
    cfg.samplePeriod = sec(2);
    HawkFixture f(cfg);
    // Sequential-only: measured overhead ~0 -> no promotions at all.
    workload::StreamConfig seq;
    seq.footprintBytes = MiB(64);
    seq.sequentialFraction = 1.0;
    seq.accessesPerSec = 6e6;
    seq.workSeconds = 1e9;
    auto &proc = f.addStream("sequential", seq);
    f.sys->run(sec(10));
    EXPECT_EQ(proc.space().pageTable().mappedHugePages(), 0u);
    EXPECT_EQ(f.policy->promotions(), 0u);
}

TEST(HawkEye, BloatRecoveryRunsUnderPressure)
{
    core::HawkEyeConfig cfg;
    cfg.dedupThreshold = 128;
    HawkFixture f(cfg, MiB(128));
    // Huge-fault a big buffer but only write one page per region:
    // classic bloat.
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(96);
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    auto &proc = f.addStream("bloaty", wc);
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    for (std::uint64_t r = 0; r < MiB(96) / kHugePageSize; r++) {
        auto out = f.policy->onFault(*f.sys, proc,
                                     addrToVpn(base) + r * 512);
        ASSERT_TRUE(out.huge);
        mem::ContentGenerator gen(Rng(r + 1));
        auto t =
            proc.space().pageTable().lookup(addrToVpn(base) + r * 512);
        f.sys->phys().writeFrame(t.pfn, gen.data());
    }
    // Extra (kernel) pressure pushes usage across the high watermark.
    std::vector<mem::BuddyBlock> filler;
    while (f.sys->phys().usedFraction() < 0.88) {
        auto blk =
            f.sys->phys().allocBlock(9, 99, mem::ZeroPref::kAny);
        ASSERT_TRUE(blk.has_value());
        filler.push_back(*blk);
    }
    ASSERT_GT(f.sys->phys().usedFraction(), 0.85);
    const std::uint64_t rss_before = proc.space().rssPages();
    f.sys->run(sec(30));
    // Recovery deactivates at the low watermark (by design), so it
    // frees enough bloat to relieve pressure, not all of it.
    EXPECT_LT(proc.space().rssPages(), rss_before * 3 / 4)
        << "bloat recovery should dedup zero-filled tails";
    EXPECT_GT(f.policy->bloatRecovery().stats().pagesDeduped, 0u);
    EXPECT_LT(f.sys->phys().usedFraction(), 0.75);
}
