/**
 * @file
 * Access-bit tracker tests: the 30s clear / 1s read sampling cycle,
 * EMA convergence, and coverage scores.
 */

#include <gtest/gtest.h>

#include "core/access_tracker.hh"
#include "hawksim.hh"

using namespace hawksim;
using core::AccessTracker;

namespace {

/** A process with one VMA of `regions` huge regions, `pop` base
 *  pages mapped per region. */
struct TrackerFixture
{
    TrackerFixture(unsigned regions = 4, unsigned pop = 512)
    {
        setLogQuiet(true);
        sim::SystemConfig cfg;
        cfg.memoryBytes = MiB(64);
        sys = std::make_unique<sim::System>(cfg);
        sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>(
            policy::LinuxConfig{.thp = false}));
        workload::StreamConfig wc;
        wc.footprintBytes = regions * kHugePageSize;
        wc.workSeconds = 1e9; // never finishes on its own
        wc.initTouchAll = false;
        proc = &sys->addProcess(
            "t", std::make_unique<workload::StreamWorkload>(
                     "t", wc, Rng(1)));
        base = static_cast<workload::StreamWorkload *>(
                   &proc->workload())
                   ->baseAddr();
        // Back the regions with base pages directly.
        for (unsigned r = 0; r < regions; r++) {
            for (unsigned i = 0; i < pop; i++) {
                auto blk = sys->phys().allocBlock(
                    0, proc->pid(), mem::ZeroPref::kAny);
                proc->space().mapBasePage(
                    addrToVpn(base) + r * 512 + i, blk->pfn);
            }
        }
    }

    void
    touchRegion(unsigned region, unsigned pages)
    {
        for (unsigned i = 0; i < pages; i++) {
            proc->space().pageTable().touch(
                addrToVpn(base) + region * 512 + i, false);
        }
    }

    std::uint64_t
    regionId(unsigned r) const
    {
        return (base / kHugePageSize) + r;
    }

    std::unique_ptr<sim::System> sys;
    sim::Process *proc = nullptr;
    Addr base = 0;
};

} // namespace

TEST(AccessTracker, SamplesCoverageAfterWindow)
{
    TrackerFixture f;
    AccessTracker tr(sec(30), sec(1));
    tr.periodic(*f.proc, 0); // clear phase arms the window
    f.touchRegion(0, 100);
    f.touchRegion(1, 400);
    tr.periodic(*f.proc, sec(1)); // read phase
    EXPECT_NEAR(tr.emaCoverage(f.regionId(0)), 100.0, 0.01);
    EXPECT_NEAR(tr.emaCoverage(f.regionId(1)), 400.0, 0.01);
    EXPECT_NEAR(tr.emaCoverage(f.regionId(2)), 0.0, 0.01);
}

TEST(AccessTracker, ClearPhaseResetsStaleBits)
{
    TrackerFixture f;
    f.touchRegion(0, 512); // stale accesses before the window
    AccessTracker tr(sec(30), sec(1));
    tr.periodic(*f.proc, 0);
    tr.periodic(*f.proc, sec(1));
    EXPECT_NEAR(tr.emaCoverage(f.regionId(0)), 0.0, 0.01);
}

TEST(AccessTracker, EmaSmoothsAcrossPeriods)
{
    TrackerFixture f;
    AccessTracker tr(sec(30), sec(1));
    tr.periodic(*f.proc, 0);
    f.touchRegion(0, 500);
    tr.periodic(*f.proc, sec(1));
    // Next period: the region goes cold.
    tr.periodic(*f.proc, sec(30));
    tr.periodic(*f.proc, sec(31));
    const double ema = tr.emaCoverage(f.regionId(0));
    EXPECT_GT(ema, 100.0); // still remembers the hot sample
    EXPECT_LT(ema, 500.0); // but decayed
}

TEST(AccessTracker, RespectsSamplingPeriod)
{
    TrackerFixture f;
    AccessTracker tr(sec(30), sec(1));
    tr.periodic(*f.proc, 0);
    tr.periodic(*f.proc, sec(1));
    f.touchRegion(2, 300);
    // Too early for another sample: nothing changes.
    tr.periodic(*f.proc, sec(10));
    EXPECT_NEAR(tr.emaCoverage(f.regionId(2)), 0.0, 0.01);
    // The next period picks it up (bits persisted since).
    tr.periodic(*f.proc, sec(30));
    f.touchRegion(2, 300);
    tr.periodic(*f.proc, sec(31));
    EXPECT_GT(tr.emaCoverage(f.regionId(2)), 100.0);
}

TEST(AccessTracker, HookFiresPerRegion)
{
    TrackerFixture f(3);
    AccessTracker tr(sec(30), sec(1));
    int fired = 0;
    tr.setHook([&](std::uint64_t, double, unsigned, bool) {
        fired++;
    });
    tr.periodic(*f.proc, 0);
    tr.periodic(*f.proc, sec(1));
    EXPECT_EQ(fired, 3);
}

TEST(AccessTracker, CoverageScores)
{
    TrackerFixture f(4);
    AccessTracker tr(sec(30), sec(1));
    tr.periodic(*f.proc, 0);
    f.touchRegion(0, 200);
    f.touchRegion(1, 100);
    tr.periodic(*f.proc, sec(1));
    EXPECT_NEAR(tr.pendingCoverageScore(), 300.0, 0.01);
    EXPECT_NEAR(tr.totalCoverageScore(), 300.0, 0.01);
}
