/** @file Async pre-zeroing daemon tests (§3.1). */

#include <gtest/gtest.h>

#include "core/prezero.hh"
#include "hawksim.hh"

using namespace hawksim;
using core::AsyncZeroDaemon;

namespace {

std::unique_ptr<sim::System>
dirtySystem(std::uint64_t mem = MiB(32))
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = mem;
    cfg.bootMemoryZeroed = false; // everything starts dirty
    auto sys = std::make_unique<sim::System>(cfg);
    sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    return sys;
}

} // namespace

TEST(Prezero, MovesDirtyPagesToZeroLists)
{
    auto sys = dirtySystem();
    AsyncZeroDaemon d(1e12); // effectively unlimited
    EXPECT_EQ(sys->phys().buddy().freeZeroPages(), 0u);
    d.periodic(*sys, msec(10));
    EXPECT_EQ(sys->phys().buddy().freeNonZeroPages(), 0u);
    EXPECT_EQ(sys->phys().buddy().freeZeroPages(),
              sys->phys().freeFrames());
    EXPECT_GT(d.stats().pagesZeroed, 0u);
}

TEST(Prezero, ZeroedFramesHaveZeroContent)
{
    auto sys = dirtySystem();
    AsyncZeroDaemon d(1e12);
    d.periodic(*sys, msec(10));
    auto blk = sys->phys().allocBlock(0, 1, mem::ZeroPref::kPreferZero);
    ASSERT_TRUE(blk.has_value());
    EXPECT_TRUE(blk->zeroed);
    EXPECT_TRUE(sys->phys().frame(blk->pfn).content.isZero());
}

TEST(Prezero, RateLimitBoundsThroughput)
{
    auto sys = dirtySystem();
    AsyncZeroDaemon d(10'000.0); // 10k pages/s
    d.periodic(*sys, msec(100)); // budget: ~1000 pages
    // Whole blocks may overdraft slightly, but not by orders.
    EXPECT_LE(d.stats().pagesZeroed, 1024u + 1024u);
    EXPECT_GE(d.stats().pagesZeroed, 900u);
    // Budget debt is repaid: a zero-length tick adds nothing.
    const std::uint64_t before = d.stats().pagesZeroed;
    d.periodic(*sys, 0);
    EXPECT_EQ(d.stats().pagesZeroed, before);
}

TEST(Prezero, IdlesWhenEverythingIsZero)
{
    auto sys = dirtySystem();
    AsyncZeroDaemon d(1e12);
    d.periodic(*sys, msec(10));
    const auto stats = d.stats();
    d.periodic(*sys, msec(10));
    EXPECT_EQ(d.stats().pagesZeroed, stats.pagesZeroed);
}

TEST(Prezero, RecyclesApplicationFrees)
{
    auto sys = dirtySystem();
    AsyncZeroDaemon d(1e12);
    d.periodic(*sys, msec(10));
    // An application dirties and frees memory...
    auto blk = sys->phys().allocBlock(5, 1, mem::ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    for (Pfn p = blk->pfn; p < blk->pfn + blk->pages(); p++) {
        mem::PageContent c;
        c.hash = p | 1;
        c.firstNonZero = 0;
        sys->phys().writeFrame(p, c);
    }
    sys->phys().freeBlock(blk->pfn, 5);
    EXPECT_GT(sys->phys().buddy().freeNonZeroPages(), 0u);
    // ...and the daemon cleans up after it.
    d.periodic(*sys, msec(10));
    EXPECT_EQ(sys->phys().buddy().freeNonZeroPages(), 0u);
}
