/** @file Page-content descriptor and generator tests (Fig. 3). */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "mem/content.hh"

using namespace hawksim;
using mem::ContentGenerator;
using mem::PageContent;

TEST(Content, ZeroPageProperties)
{
    const PageContent z = PageContent::zero();
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(mem::zeroScanCostBytes(z), kPageSize);
}

TEST(Content, DataPageScanStopsEarly)
{
    PageContent c;
    c.hash = 1;
    c.firstNonZero = 8;
    EXPECT_FALSE(c.isZero());
    EXPECT_EQ(mem::zeroScanCostBytes(c), 9u);
}

TEST(Content, GeneratorNeverEmitsZeroHash)
{
    ContentGenerator g(Rng(1));
    for (int i = 0; i < 1000; i++) {
        const PageContent c = g.data();
        EXPECT_NE(c.hash, 0u);
        EXPECT_FALSE(c.isZero());
    }
}

TEST(Content, GeneratorFirstNonZeroDistanceIsSmallOnAverage)
{
    // Fig. 3: the mean distance to the first non-zero byte across
    // the paper's 56 workloads is ~9.1 bytes. Our default generator
    // should land in the same regime (single-digit to low tens).
    ContentGenerator g(Rng(2));
    double sum = 0.0;
    constexpr int kPages = 20000;
    for (int i = 0; i < kPages; i++)
        sum += g.data().firstNonZero;
    const double mean = sum / kPages;
    EXPECT_GT(mean, 1.0);
    EXPECT_LT(mean, 30.0);
}

TEST(Content, DuplicatedPoolContentCompares)
{
    ContentGenerator g(Rng(3));
    const PageContent a = g.duplicated(7, 16);
    const PageContent b = g.duplicated(7 + 16, 16); // same pool slot
    const PageContent c = g.duplicated(8, 16);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(Content, ScanCostProportionalToBloat)
{
    // The bloat-recovery property (§3.2): scanning N in-use pages is
    // ~10N bytes; scanning N bloat pages is 4096N bytes.
    ContentGenerator g(Rng(4));
    std::uint64_t in_use_cost = 0;
    for (int i = 0; i < 512; i++)
        in_use_cost += mem::zeroScanCostBytes(g.data());
    const std::uint64_t bloat_cost = 512 * kPageSize;
    EXPECT_LT(in_use_cost * 20, bloat_cost);
}
