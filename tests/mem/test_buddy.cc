/**
 * @file
 * Buddy allocator unit + property tests: coalescing, zero/non-zero
 * list discipline, FMFI, and invariants under random op sequences.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.hh"
#include "mem/buddy.hh"

using namespace hawksim;
using mem::BuddyAllocator;
using mem::BuddyBlock;
using mem::ZeroPref;

namespace {
constexpr std::uint64_t kFrames = 4096; // 16MB
} // namespace

TEST(Buddy, BootCarvesEverythingFree)
{
    BuddyAllocator b(kFrames);
    EXPECT_EQ(b.freePages(), kFrames);
    EXPECT_EQ(b.freeZeroPages(), kFrames);
    EXPECT_EQ(b.largestFreeOrder(), 10);
    b.checkConsistency();
}

TEST(Buddy, NonPowerOfTwoSizeIsCarved)
{
    BuddyAllocator b(kFrames + 3);
    EXPECT_EQ(b.freePages(), kFrames + 3);
    b.checkConsistency();
}

TEST(Buddy, AllocSplitsAndFreeCoalesces)
{
    BuddyAllocator b(kFrames);
    auto blk = b.alloc(0, ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    EXPECT_EQ(b.freePages(), kFrames - 1);
    b.free(blk->pfn, 0, blk->zeroed);
    EXPECT_EQ(b.freePages(), kFrames);
    // Everything should have merged back into maximal blocks.
    EXPECT_EQ(b.largestFreeOrder(), 10);
    EXPECT_EQ(b.freeBlocks(10), kFrames >> 10);
    b.checkConsistency();
}

TEST(Buddy, ZeroPreferenceHonored)
{
    BuddyAllocator b(kFrames, /*initially_zeroed=*/true);
    // Create one dirty order-0 block.
    auto blk = b.alloc(0, ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    b.free(blk->pfn, 0, /*zeroed=*/false);
    auto dirty = b.alloc(0, ZeroPref::kPreferNonZero);
    ASSERT_TRUE(dirty.has_value());
    EXPECT_FALSE(dirty->zeroed);
    b.free(dirty->pfn, 0, false);
    auto clean = b.alloc(0, ZeroPref::kPreferZero);
    ASSERT_TRUE(clean.has_value());
    EXPECT_TRUE(clean->zeroed);
    b.checkConsistency();
}

TEST(Buddy, MergingZeroAndDirtyYieldsDirty)
{
    BuddyAllocator b(2); // one order-1 block
    auto a0 = b.alloc(0, ZeroPref::kAny);
    auto a1 = b.alloc(0, ZeroPref::kAny);
    ASSERT_TRUE(a0 && a1);
    b.free(a0->pfn, 0, /*zeroed=*/true);
    b.free(a1->pfn, 0, /*zeroed=*/false);
    EXPECT_EQ(b.freeBlocks(1), 1u);
    EXPECT_EQ(b.freeZeroPages(), 0u); // merged block is dirty
    b.checkConsistency();
}

TEST(Buddy, AllocSpecificCarvesTargetFrame)
{
    BuddyAllocator b(kFrames);
    auto blk = b.allocSpecific(1234);
    ASSERT_TRUE(blk.has_value());
    EXPECT_EQ(blk->pfn, 1234u);
    EXPECT_EQ(b.freePages(), kFrames - 1);
    // The same frame cannot be taken twice.
    EXPECT_FALSE(b.allocSpecific(1234).has_value());
    b.free(1234, 0, true);
    EXPECT_EQ(b.freePages(), kFrames);
    b.checkConsistency();
}

TEST(Buddy, TakeNonZeroBlockFindsDirtyMemory)
{
    BuddyAllocator b(kFrames, /*initially_zeroed=*/false);
    auto blk = b.takeNonZeroBlock(BuddyAllocator::kMaxOrder);
    ASSERT_TRUE(blk.has_value());
    EXPECT_FALSE(blk->zeroed);
    b.free(blk->pfn, blk->order, true);
    EXPECT_EQ(b.freeZeroPages(), blk->pages());
    b.checkConsistency();
}

TEST(Buddy, TakeNonZeroBlockRespectsMaxOrder)
{
    BuddyAllocator b(kFrames, false);
    auto blk = b.takeNonZeroBlock(3);
    ASSERT_TRUE(blk.has_value());
    EXPECT_LE(blk->order, 3u);
    b.free(blk->pfn, blk->order, false);
}

TEST(Buddy, TakeNonZeroBlockEmptyWhenAllZero)
{
    BuddyAllocator b(kFrames, true);
    EXPECT_FALSE(
        b.takeNonZeroBlock(BuddyAllocator::kMaxOrder).has_value());
}

TEST(Buddy, FmfiZeroWhenUnfragmented)
{
    BuddyAllocator b(kFrames);
    EXPECT_DOUBLE_EQ(b.fragIndex(9), 0.0);
}

TEST(Buddy, FmfiRisesWithFragmentation)
{
    BuddyAllocator b(kFrames);
    // Pin one frame per 512-frame region: no order-9 blocks remain.
    std::vector<Pfn> pinned;
    for (Pfn p = 256; p < kFrames; p += 512) {
        auto blk = b.allocSpecific(p);
        ASSERT_TRUE(blk.has_value());
        pinned.push_back(p);
    }
    EXPECT_EQ(b.largestFreeOrder(), 8);
    EXPECT_GT(b.fragIndex(9), 0.9);
    EXPECT_DOUBLE_EQ(b.fragIndex(0), 0.0);
    for (Pfn p : pinned)
        b.free(p, 0, true);
    EXPECT_DOUBLE_EQ(b.fragIndex(9), 0.0);
    b.checkConsistency();
}

TEST(Buddy, ExhaustionReturnsNullopt)
{
    BuddyAllocator b(8);
    std::vector<BuddyBlock> held;
    while (auto blk = b.alloc(0, ZeroPref::kAny))
        held.push_back(*blk);
    EXPECT_EQ(held.size(), 8u);
    EXPECT_FALSE(b.alloc(0, ZeroPref::kAny).has_value());
    EXPECT_FALSE(b.canAlloc(0));
    for (auto &blk : held)
        b.free(blk.pfn, 0, false);
    b.checkConsistency();
}

/** Property: random alloc/free sequences conserve pages and keep the
 *  allocator internally consistent, for several seeds. */
class BuddyProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(BuddyProperty, RandomOpsPreserveInvariants)
{
    Rng rng(GetParam());
    BuddyAllocator b(kFrames);
    std::vector<BuddyBlock> held;
    for (int step = 0; step < 3000; step++) {
        if (held.empty() || rng.chance(0.55)) {
            const auto order = static_cast<unsigned>(rng.below(6));
            const auto pref = static_cast<ZeroPref>(rng.below(3));
            auto blk = b.alloc(order, pref);
            if (blk) {
                held.push_back(*blk);
                // No overlap with any held block.
                for (std::size_t i = 0; i + 1 < held.size(); i++) {
                    const auto &o = held[i];
                    const bool disjoint =
                        blk->pfn + blk->pages() <= o.pfn ||
                        o.pfn + o.pages() <= blk->pfn;
                    ASSERT_TRUE(disjoint);
                }
            }
        } else {
            const std::size_t idx = rng.below(held.size());
            const BuddyBlock blk = held[idx];
            held[idx] = held.back();
            held.pop_back();
            b.free(blk.pfn, blk.order, rng.chance(0.5));
        }
        std::uint64_t held_pages = 0;
        for (const auto &blk : held)
            held_pages += blk.pages();
        ASSERT_EQ(b.freePages() + held_pages, kFrames);
    }
    b.checkConsistency();
    for (const auto &blk : held)
        b.free(blk.pfn, blk.order, false);
    EXPECT_EQ(b.freePages(), kFrames);
    EXPECT_EQ(b.largestFreeOrder(), 10);
    b.checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99,
                                           12345));
