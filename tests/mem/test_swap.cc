/** @file Swap device cost-model tests. */

#include <gtest/gtest.h>

#include "mem/swap.hh"

using namespace hawksim;
using mem::SwapDevice;

TEST(Swap, ChargesPerPageLatency)
{
    SwapDevice dev;
    const TimeNs out = dev.swapOut(10);
    EXPECT_GE(out, 10 * dev.config().writeLatency);
    EXPECT_EQ(dev.usedPages(), 10u);
    const TimeNs in = dev.swapIn(10);
    EXPECT_GE(in, 10 * dev.config().readLatency);
    EXPECT_EQ(dev.usedPages(), 0u);
}

TEST(Swap, ReadsCostMoreThanWrites)
{
    SwapDevice dev;
    dev.swapOut(100);
    EXPECT_GT(dev.swapIn(100), 0);
    SwapDevice dev2;
    EXPECT_LT(dev2.swapOut(100), SwapDevice().config().readLatency * 100 + 1);
}

TEST(Swap, CapacityIsEnforced)
{
    SwapDevice::Config cfg;
    cfg.capacityBytes = kPageSize * 16;
    SwapDevice dev(cfg);
    std::uint64_t written = 0;
    dev.swapOut(100, &written);
    EXPECT_EQ(written, 16u);
    EXPECT_TRUE(dev.full());
}

TEST(Swap, BandwidthFloorDominatesLargeTransfers)
{
    SwapDevice::Config cfg;
    cfg.writeLatency = 1; // absurdly fast latency
    cfg.throughputBytesPerSec = MiB(100);
    SwapDevice dev(cfg);
    // 1GB at 100MB/s must take >= 10 seconds.
    const TimeNs t = dev.swapOut(GiB(1) / kPageSize);
    EXPECT_GE(t, sec(10));
}

TEST(Swap, TracksCumulativeTotals)
{
    SwapDevice dev;
    dev.swapOut(5);
    dev.swapIn(3);
    dev.swapOut(2);
    EXPECT_EQ(dev.totalSwappedOut(), 7u);
    EXPECT_EQ(dev.totalSwappedIn(), 3u);
    EXPECT_EQ(dev.usedPages(), 4u);
}
