/** @file Movable (page-cache-style) fragmentation tests. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "mem/compaction.hh"

using namespace hawksim;
using mem::Compactor;
using mem::Fragmenter;
using mem::PhysicalMemory;

namespace {

class NullMover : public mem::PageMover
{
    void pageMoved(Pfn, Pfn) override {}
};

} // namespace

TEST(FragmentMovable, KillsContiguityButStaysCompactable)
{
    PhysicalMemory pm(MiB(64));
    Rng rng(1);
    Fragmenter frag(pm);
    frag.fragmentMovable(1.0, 64, rng);
    EXPECT_FALSE(pm.buddy().canAlloc(kHugePageOrder));
    // But khugepaged-grade compaction can clear a region (64 moves).
    Compactor comp(pm);
    NullMover mover;
    auto res = comp.compactOne(mover, 256);
    EXPECT_TRUE(res.success);
    EXPECT_GE(res.pagesMigrated, 1u);
    EXPECT_TRUE(pm.buddy().canAlloc(kHugePageOrder));
}

TEST(FragmentMovable, DefeatsBoundedFaultPathCompaction)
{
    PhysicalMemory pm(MiB(64));
    Rng rng(2);
    Fragmenter frag(pm);
    frag.fragmentMovable(1.0, 64, rng);
    Compactor comp(pm);
    NullMover mover;
    // Fault-path effort (16 migrations) cannot clear 64 pins.
    auto res = comp.compactOne(mover, 16);
    EXPECT_FALSE(res.success);
    EXPECT_FALSE(pm.buddy().canAlloc(kHugePageOrder));
}

TEST(FragmentMovable, ConsumesProportionalMemory)
{
    PhysicalMemory pm(MiB(64));
    Rng rng(3);
    Fragmenter frag(pm);
    frag.fragmentMovable(1.0, 64, rng);
    // 64 pins per 512-page region = 12.5% of memory (minus overlap
    // from duplicate random offsets).
    const double used = pm.usedFraction();
    EXPECT_GT(used, 0.09);
    EXPECT_LT(used, 0.14);
}

TEST(FragmentMovable, ReleaseToleratesMigratedPins)
{
    PhysicalMemory pm(MiB(64));
    Rng rng(4);
    auto frag = std::make_unique<Fragmenter>(pm);
    frag->fragmentMovable(1.0, 32, rng);
    Compactor comp(pm);
    NullMover mover;
    // Migrate a bunch of pinned frames to new locations.
    for (int i = 0; i < 8; i++)
        comp.compactOne(mover, 256);
    // Destruction releases what it still holds without double-frees
    // (migrated pins became untracked kernel frames).
    EXPECT_NO_FATAL_FAILURE(frag.reset());
    pm.buddy().checkConsistency();
}

TEST(FragmentMovable, PartialFractionLeavesFreeBlocks)
{
    PhysicalMemory pm(MiB(64));
    Rng rng(5);
    Fragmenter frag(pm);
    frag.fragmentMovable(0.5, 64, rng);
    EXPECT_TRUE(pm.buddy().canAlloc(kHugePageOrder));
}
