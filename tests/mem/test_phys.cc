/** @file PhysicalMemory frame-table + content-aware free tests. */

#include <gtest/gtest.h>

#include "mem/phys.hh"

using namespace hawksim;
using mem::PageContent;
using mem::PhysicalMemory;
using mem::ZeroPref;

TEST(Phys, ReservesCanonicalZeroPage)
{
    PhysicalMemory pm(MiB(16));
    const Pfn zp = pm.zeroPagePfn();
    EXPECT_NE(zp, kInvalidPfn);
    const mem::ConstFrameRef f = pm.frame(zp);
    EXPECT_TRUE(f.isShared());
    EXPECT_TRUE(f.isUnmovable());
    EXPECT_TRUE(f.content.isZero());
    EXPECT_EQ(pm.usedFrames(), 1u);
}

TEST(Phys, AllocSetsOwnerAndFlags)
{
    PhysicalMemory pm(MiB(16));
    auto blk = pm.allocBlock(3, 42, ZeroPref::kPreferZero);
    ASSERT_TRUE(blk.has_value());
    EXPECT_TRUE(blk->zeroed);
    for (Pfn p = blk->pfn; p < blk->pfn + blk->pages(); p++) {
        EXPECT_FALSE(pm.frame(p).isFree());
        EXPECT_EQ(pm.frame(p).ownerPid, 42);
        EXPECT_TRUE(pm.frame(p).isZeroed());
    }
    pm.freeBlock(blk->pfn, 3);
    EXPECT_EQ(pm.usedFrames(), 1u); // just the zero page
}

TEST(Phys, DirtiedFramesReturnToNonZeroList)
{
    PhysicalMemory pm(MiB(16));
    auto blk = pm.allocBlock(0, 1, ZeroPref::kPreferZero);
    ASSERT_TRUE(blk.has_value());
    PageContent c;
    c.hash = 0x1234;
    c.firstNonZero = 0;
    pm.writeFrame(blk->pfn, c);
    EXPECT_FALSE(pm.frame(blk->pfn).isZeroed());
    pm.freeBlock(blk->pfn, 0);
    EXPECT_EQ(pm.buddy().freeNonZeroPages(), 1u);
}

TEST(Phys, UntouchedFramesReturnToZeroList)
{
    PhysicalMemory pm(MiB(16));
    const std::uint64_t zero_before = pm.buddy().freeZeroPages();
    auto blk = pm.allocBlock(0, 1, ZeroPref::kPreferZero);
    ASSERT_TRUE(blk.has_value());
    pm.freeBlock(blk->pfn, 0);
    EXPECT_EQ(pm.buddy().freeZeroPages(), zero_before);
    EXPECT_EQ(pm.buddy().freeNonZeroPages(), 0u);
}

TEST(Phys, MixedBlockFreeSplitsByContent)
{
    PhysicalMemory pm(MiB(16));
    auto blk = pm.allocBlock(2, 1, ZeroPref::kPreferZero); // 4 pages
    ASSERT_TRUE(blk.has_value());
    PageContent dirty;
    dirty.hash = 7;
    dirty.firstNonZero = 0;
    pm.writeFrame(blk->pfn + 1, dirty); // dirty the second page
    pm.freeBlock(blk->pfn, 2);
    // Buddy coalescing merges zero runs with the dirty page back into
    // one block, which must then be conservatively non-zero (the
    // async daemon will re-zero it). No page may be falsely zero.
    EXPECT_GE(pm.buddy().freeNonZeroPages(), 1u);
    EXPECT_LE(pm.buddy().freeZeroPages(),
              pm.buddy().freePages() - 1);
    pm.buddy().checkConsistency();
}

TEST(Phys, ZeroFrameRestoresZeroContent)
{
    PhysicalMemory pm(MiB(16));
    auto blk = pm.allocBlock(0, 1, ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    PageContent c;
    c.hash = 9;
    c.firstNonZero = 3;
    pm.writeFrame(blk->pfn, c);
    pm.zeroFrame(blk->pfn);
    EXPECT_TRUE(pm.frame(blk->pfn).content.isZero());
    EXPECT_TRUE(pm.frame(blk->pfn).isZeroed());
    pm.freeBlock(blk->pfn, 0);
}

TEST(Phys, MapUnmapBookkeeping)
{
    PhysicalMemory pm(MiB(16));
    auto blk = pm.allocBlock(0, 5, ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    pm.onMap(blk->pfn, 5, 0x1000);
    EXPECT_EQ(pm.frame(blk->pfn).mapCount, 1u);
    EXPECT_EQ(pm.frame(blk->pfn).rmapVpn, 0x1000u);
    pm.onUnmap(blk->pfn);
    EXPECT_EQ(pm.frame(blk->pfn).mapCount, 0u);
    pm.freeBlock(blk->pfn, 0);
}

TEST(Phys, AllocObserverSeesAllocationsAndFrees)
{
    PhysicalMemory pm(MiB(16));
    int allocs = 0, frees = 0;
    pm.setAllocObserver([&](Pfn, unsigned, bool alloc) {
        (alloc ? allocs : frees)++;
    });
    auto blk = pm.allocBlock(1, 1, ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    pm.freeBlock(blk->pfn, 1);
    EXPECT_EQ(allocs, 1);
    EXPECT_EQ(frees, 1);
}

TEST(Phys, UsedFractionTracksAllocation)
{
    PhysicalMemory pm(MiB(16));
    const double before = pm.usedFraction();
    auto blk = pm.allocBlock(10, 1, ZeroPref::kAny);
    ASSERT_TRUE(blk.has_value());
    EXPECT_GT(pm.usedFraction(), before);
    pm.freeBlock(blk->pfn, 10);
    EXPECT_DOUBLE_EQ(pm.usedFraction(), before);
}
