/** @file Fragmenter and compactor tests. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "mem/compaction.hh"

using namespace hawksim;
using mem::Compactor;
using mem::Fragmenter;
using mem::PhysicalMemory;
using mem::ZeroPref;

namespace {

class RecordingMover : public mem::PageMover
{
  public:
    void
    pageMoved(Pfn from, Pfn to) override
    {
        moves.emplace_back(from, to);
    }
    std::vector<std::pair<Pfn, Pfn>> moves;
};

} // namespace

TEST(Fragmenter, DestroysHugeContiguity)
{
    PhysicalMemory pm(MiB(64));
    Rng rng(1);
    Fragmenter frag(pm);
    frag.fragment(1.0, rng);
    EXPECT_GT(frag.pinnedFrames(), 0u);
    EXPECT_FALSE(pm.buddy().canAlloc(kHugePageOrder));
    EXPECT_GT(pm.buddy().fragIndex(kHugePageOrder), 0.9);
    frag.release();
    EXPECT_TRUE(pm.buddy().canAlloc(kHugePageOrder));
}

TEST(Fragmenter, PartialFragmentationLeavesSomeBlocks)
{
    PhysicalMemory pm(MiB(64));
    Rng rng(2);
    Fragmenter frag(pm);
    frag.fragment(0.5, rng);
    // Roughly half the regions survive.
    const std::uint64_t regions = pm.totalFrames() / kPagesPerHuge;
    EXPECT_GT(frag.pinnedFrames(), regions / 4);
    EXPECT_LT(frag.pinnedFrames(), regions);
}

TEST(Fragmenter, MovableFillConsumesMemory)
{
    PhysicalMemory pm(MiB(64));
    Rng rng(3);
    Fragmenter frag(pm);
    frag.fillMovable(0.25, rng);
    EXPECT_NEAR(static_cast<double>(frag.movableFrames()),
                0.25 * static_cast<double>(pm.totalFrames()),
                static_cast<double>(pm.totalFrames()) * 0.02);
    frag.releaseMovable();
    EXPECT_EQ(frag.movableFrames(), 0u);
}

TEST(Compactor, ProducesFreeHugeBlockByMigration)
{
    PhysicalMemory pm(MiB(64));
    // Allocate scattered movable kernel pages so no order-9 exists.
    std::vector<Pfn> pins;
    for (Pfn p = 128; p < pm.totalFrames(); p += 512) {
        auto blk = pm.allocSpecificFrame(p, mem::kKernelOwner);
        ASSERT_TRUE(blk.has_value());
        pins.push_back(p);
    }
    ASSERT_FALSE(pm.buddy().canAlloc(kHugePageOrder));
    Compactor comp(pm);
    RecordingMover mover;
    auto res = comp.compactOne(mover);
    EXPECT_TRUE(res.success);
    EXPECT_GT(res.pagesMigrated, 0u);
    EXPECT_TRUE(pm.buddy().canAlloc(kHugePageOrder));
    for (Pfn p : pins) {
        if (!pm.frame(p).isFree())
            pm.freeBlock(p, 0);
    }
}

TEST(Compactor, RefusesRegionsWithUnmovableFrames)
{
    PhysicalMemory pm(MiB(8)); // 4 huge regions
    // Pin an unmovable frame in every region.
    for (Pfn p = 64; p < pm.totalFrames(); p += 512) {
        auto blk = pm.allocSpecificFrame(p, mem::kKernelOwner);
        ASSERT_TRUE(blk.has_value());
        pm.frame(p).set(mem::kFrameUnmovable);
    }
    Compactor comp(pm);
    RecordingMover mover;
    auto res = comp.compactOne(mover);
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.pagesMigrated, 0u);
}

TEST(Compactor, NotifiesMoverWithCopiedMetadata)
{
    PhysicalMemory pm(MiB(64));
    for (Pfn p = 128; p < pm.totalFrames(); p += 512) {
        auto blk = pm.allocSpecificFrame(p, /*owner=*/9);
        ASSERT_TRUE(blk.has_value());
        pm.onMap(p, 9, /*vpn=*/p + 7);
        mem::PageContent c;
        c.hash = p;
        c.firstNonZero = 0;
        pm.writeFrame(p, c);
    }
    Compactor comp(pm);
    RecordingMover mover;
    auto res = comp.compactOne(mover);
    ASSERT_TRUE(res.success);
    ASSERT_FALSE(mover.moves.empty());
    for (auto [from, to] : mover.moves) {
        const mem::ConstFrameRef f = pm.frame(to);
        EXPECT_EQ(f.ownerPid, 9);
        EXPECT_EQ(f.rmapVpn, from + 7);
        EXPECT_EQ(f.content.hash, from);
        EXPECT_EQ(f.mapCount, 1u);
    }
}
