/**
 * @file
 * Virtualization-layer tests: guest allocations get host backing,
 * nested overhead shrinks as the host promotes, balloon and
 * prezero+KSM both return guest-free memory to the host.
 */

#include <gtest/gtest.h>

#include "hawksim.hh"
#include "virt/vm.hh"

using namespace hawksim;

namespace {

sim::SystemConfig
hostConfig(std::uint64_t mem = GiB(1))
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = mem;
    cfg.seed = 11;
    return cfg;
}

std::unique_ptr<workload::StreamWorkload>
guestStream(Rng rng, std::uint64_t bytes, double seconds)
{
    workload::StreamConfig wc;
    wc.footprintBytes = bytes;
    wc.accessesPerSec = 4e6;
    wc.workSeconds = seconds;
    return std::make_unique<workload::StreamWorkload>("guest-app", wc,
                                                      rng);
}

} // namespace

TEST(Virt, GuestAllocationsGetHostBacking)
{
    setLogQuiet(true);
    virt::VirtualSystem vs(hostConfig(),
                           std::make_unique<policy::LinuxThpPolicy>());
    virt::VmOptions opts;
    opts.guestMemBytes = MiB(256);
    auto &vm = vs.addVm("vm1", opts,
                        std::make_unique<policy::LinuxThpPolicy>());
    vm.addGuestProcess("app",
                       guestStream(Rng(3), MiB(96), 1.0));
    vs.run(sec(2));
    // The guest touched ~96MB; host backing should cover at least
    // that much of the guest-physical space.
    EXPECT_GE(vm.hostProcess().space().mappedPages(),
              MiB(96) / kPageSize);
}

TEST(Virt, HostPromotionLowersNestedOverhead)
{
    setLogQuiet(true);
    auto run = [](bool host_thp) {
        policy::LinuxConfig hc;
        hc.thp = host_thp;
        virt::VirtualSystem vs(
            hostConfig(),
            std::make_unique<policy::LinuxThpPolicy>(hc));
        virt::VmOptions opts;
        opts.guestMemBytes = MiB(512);
        auto &vm = vs.addVm(
            "vm1", opts, std::make_unique<policy::LinuxThpPolicy>());
        auto &proc = vm.addGuestProcess(
            "app", guestStream(Rng(3), MiB(256), 4.0));
        vs.runUntilGuestsDone(sec(120));
        return proc.runtime();
    };
    // Huge EPT mappings shrink 2-D walk costs -> faster guest.
    EXPECT_LT(run(true), run(false));
}

TEST(Virt, PrezeroPlusKsmReturnsGuestFreeMemory)
{
    setLogQuiet(true);
    // The host must not run an uncoordinated khugepaged: Linux's
    // max_ptes_none=511 re-promotes regions full of KSM-merged zero
    // pages, undoing every merge (the counter-productive interaction
    // the paper cites [51] — reproduced by this simulator). A
    // HawkEye host promotes by access coverage and leaves the idle
    // merged regions alone.
    virt::VirtualSystem vs(hostConfig(GiB(1)),
                           std::make_unique<core::HawkEyePolicy>());
    vs.enableHostKsm(1e9); // fast scan for the test
    virt::VmOptions opts;
    opts.guestMemBytes = MiB(512);
    auto &vm = vs.addVm("vm1", opts,
                        std::make_unique<core::HawkEyePolicy>());

    // Guest app allocates 256MB, then frees it (one iteration).
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(256);
    lc.iterations = 1;
    vm.addGuestProcess(
        "app", std::make_unique<workload::LinearTouchWorkload>(
                   "app", lc, Rng(5)));
    vs.runUntilGuestsDone(sec(60));
    const std::uint64_t backed_after_free =
        vm.hostProcess().space().rssPages();
    // Let the guest pre-zero daemon and host KSM work.
    vs.run(sec(120));
    const std::uint64_t backed_after_ksm =
        vm.hostProcess().space().rssPages();
    EXPECT_LT(backed_after_ksm, backed_after_free / 2)
        << "KSM should have merged the guest's zeroed free memory";
}

TEST(Virt, BalloonReturnsGuestFreeMemoryImmediately)
{
    setLogQuiet(true);
    virt::VirtualSystem vs(hostConfig(GiB(1)),
                           std::make_unique<policy::LinuxThpPolicy>());
    virt::VmOptions opts;
    opts.guestMemBytes = MiB(512);
    opts.balloon = true;
    auto &vm = vs.addVm("vm1", opts,
                        std::make_unique<policy::LinuxThpPolicy>());
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(256);
    lc.iterations = 1;
    vm.addGuestProcess(
        "app", std::make_unique<workload::LinearTouchWorkload>(
                   "app", lc, Rng(5)));
    vs.runUntilGuestsDone(sec(60));
    vs.run(sec(2));
    EXPECT_LT(vm.hostProcess().space().rssPages(),
              MiB(64) / kPageSize);
}
