/** @file KSM daemon tests: zero merging, dup merging, coordination. */

#include <gtest/gtest.h>

#include "hawksim.hh"
#include "ksm/ksm.hh"

using namespace hawksim;
using ksm::KsmDaemon;

namespace {

struct KsmFixture
{
    KsmFixture()
    {
        setLogQuiet(true);
        sim::SystemConfig cfg;
        cfg.memoryBytes = MiB(64);
        sys = std::make_unique<sim::System>(cfg);
        sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>(
            policy::LinuxConfig{.thp = false, .khugepaged = false}));
        workload::StreamConfig wc;
        wc.footprintBytes = MiB(32);
        wc.workSeconds = 1e9;
        wc.initTouchAll = false;
        proc = &sys->addProcess(
            "k", std::make_unique<workload::StreamWorkload>(
                     "k", wc, Rng(1)));
        base = static_cast<workload::StreamWorkload *>(
                   &proc->workload())
                   ->baseAddr();
    }

    Vpn
    mapWith(unsigned idx, const mem::PageContent &c)
    {
        auto blk =
            sys->phys().allocBlock(0, proc->pid(),
                                   mem::ZeroPref::kPreferZero);
        EXPECT_TRUE(blk.has_value());
        sys->phys().writeFrame(blk->pfn, c);
        const Vpn vpn = addrToVpn(base) + idx;
        proc->space().mapBasePage(vpn, blk->pfn);
        return vpn;
    }

    std::unique_ptr<sim::System> sys;
    sim::Process *proc = nullptr;
    Addr base = 0;
};

} // namespace

TEST(Ksm, MergesZeroPagesToCanonical)
{
    KsmFixture f;
    for (unsigned i = 0; i < 16; i++)
        f.mapWith(i, mem::PageContent::zero());
    KsmDaemon d(1e9);
    d.trackProcess(f.proc->pid());
    d.periodic(*f.sys, sec(1));
    EXPECT_EQ(d.stats().zeroMerged, 16u);
    EXPECT_EQ(f.proc->space().rssPages(), 0u);
    auto t = f.proc->space().pageTable().lookup(addrToVpn(f.base));
    EXPECT_EQ(t.pfn, f.sys->phys().zeroPagePfn());
}

TEST(Ksm, MergesDuplicateContent)
{
    KsmFixture f;
    mem::ContentGenerator gen(Rng(2));
    const mem::PageContent dup = gen.duplicated(3, 8);
    const Vpn a = f.mapWith(0, dup);
    const Vpn b = f.mapWith(1, dup);
    const Vpn c = f.mapWith(2, gen.data());
    KsmDaemon d(1e9);
    d.trackProcess(f.proc->pid());
    d.periodic(*f.sys, sec(1));
    EXPECT_EQ(d.stats().dupMerged, 1u);
    auto &pt = f.proc->space().pageTable();
    EXPECT_EQ(pt.lookup(a).pfn, pt.lookup(b).pfn);
    EXPECT_NE(pt.lookup(c).pfn, pt.lookup(a).pfn);
    EXPECT_TRUE(pt.lookup(b).entry.cow());
}

TEST(Ksm, DupMergingCanBeDisabled)
{
    KsmFixture f;
    mem::ContentGenerator gen(Rng(2));
    const mem::PageContent dup = gen.duplicated(3, 8);
    f.mapWith(0, dup);
    f.mapWith(1, dup);
    KsmDaemon d(1e9);
    d.setMergeDuplicates(false);
    d.trackProcess(f.proc->pid());
    d.periodic(*f.sys, sec(1));
    EXPECT_EQ(d.stats().dupMerged, 0u);
}

TEST(Ksm, DemotesHugePageOnlyAboveThreshold)
{
    KsmFixture f;
    // One huge page with 300 zero pages (above the 256 threshold),
    // one with 100 (below).
    auto mk = [&](unsigned region_idx, unsigned zeros) {
        auto blk = f.sys->phys().allocBlock(
            kHugePageOrder, f.proc->pid(), mem::ZeroPref::kAny);
        ASSERT_TRUE(blk.has_value());
        mem::ContentGenerator gen{Rng(region_idx)};
        for (unsigned i = 0; i < 512; i++) {
            if (i < zeros)
                f.sys->phys().zeroFrame(blk->pfn + i);
            else
                f.sys->phys().writeFrame(blk->pfn + i, gen.data());
        }
        f.proc->space().mapHugeRegion(
            f.base / kHugePageSize + region_idx, blk->pfn);
    };
    mk(0, 300);
    mk(1, 100);
    KsmDaemon d(1e9, 256);
    d.trackProcess(f.proc->pid());
    d.periodic(*f.sys, sec(1));
    auto &pt = f.proc->space().pageTable();
    EXPECT_FALSE(pt.isHuge(f.base / kHugePageSize));
    EXPECT_TRUE(pt.isHuge(f.base / kHugePageSize + 1));
    EXPECT_EQ(d.stats().hugeDemoted, 1u);
    EXPECT_EQ(d.stats().zeroMerged, 300u);
}

TEST(Ksm, RateLimitBoundsScanning)
{
    KsmFixture f;
    for (unsigned i = 0; i < 64; i++)
        f.mapWith(i, mem::PageContent::zero());
    KsmDaemon d(1000.0); // 1000 pages/s
    d.trackProcess(f.proc->pid());
    d.periodic(*f.sys, msec(100)); // budget 100 < one region (512)
    EXPECT_EQ(d.stats().pagesScanned, 0u);
    d.periodic(*f.sys, sec(1)); // budget now covers ~2 regions
    EXPECT_LE(d.stats().pagesScanned, 2048u);
}

TEST(Ksm, ContentProviderOverridesHostView)
{
    KsmFixture f;
    mem::ContentGenerator gen(Rng(5));
    // Host frame holds data, but the provider says "zero" (the
    // guest's truth in virtualized runs).
    const Vpn vpn = f.mapWith(0, gen.data());
    KsmDaemon d(1e9);
    d.trackProcess(f.proc->pid());
    static const mem::PageContent zero = mem::PageContent::zero();
    d.setContentProvider(
        [](sim::Process &, Vpn) { return &zero; });
    d.periodic(*f.sys, sec(1));
    EXPECT_EQ(d.stats().zeroMerged, 1u);
    EXPECT_EQ(f.proc->space().pageTable().lookup(vpn).pfn,
              f.sys->phys().zeroPagePfn());
}
