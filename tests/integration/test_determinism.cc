/**
 * @file
 * Determinism guarantees: identical configs and seeds must reproduce
 * identical simulations — the property every experiment in
 * EXPERIMENTS.md relies on.
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

struct Snapshot
{
    TimeNs runtime;
    std::uint64_t faults;
    TimeNs faultTime;
    std::uint64_t walkCycles;
    std::uint64_t rss;
    std::uint64_t freeFrames;

    bool
    operator==(const Snapshot &o) const
    {
        return runtime == o.runtime && faults == o.faults &&
               faultTime == o.faultTime &&
               walkCycles == o.walkCycles && rss == o.rss &&
               freeFrames == o.freeFrames;
    }
};

Snapshot
run(std::uint64_t seed, const std::string &policy)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(256);
    cfg.seed = seed;
    sim::System sys(cfg);
    if (policy == "hawkeye")
        sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
    else
        sys.setPolicy(std::make_unique<policy::IngensPolicy>());
    sys.fragmentMemoryMovable(0.7, 32);

    workload::StreamConfig wc;
    wc.footprintBytes = MiB(96);
    wc.hotStart = 0.5;
    wc.hotEnd = 1.0;
    wc.hotFraction = 0.8;
    wc.zipfS = 0.4;
    wc.accessesPerSec = 4e6;
    wc.workSeconds = 5.0;
    auto &proc = sys.addProcess(
        "w", std::make_unique<workload::StreamWorkload>("w", wc,
                                                        Rng(seed)));
    sys.run(sec(4)); // mid-flight snapshot (not just final state)
    Snapshot s;
    s.runtime = proc.finished() ? proc.runtime() : 0;
    s.faults = proc.pageFaults();
    s.faultTime = proc.faultTime();
    s.walkCycles = proc.counters().walkCycles();
    s.rss = proc.space().rssPages();
    s.freeFrames = sys.phys().freeFrames();
    return s;
}

} // namespace

TEST(Determinism, IdenticalSeedsIdenticalRuns)
{
    for (const std::string policy : {"hawkeye", "ingens"}) {
        const Snapshot a = run(42, policy);
        const Snapshot b = run(42, policy);
        EXPECT_TRUE(a == b) << policy;
    }
}

TEST(Determinism, DifferentSeedsDiverge)
{
    const Snapshot a = run(1, "hawkeye");
    const Snapshot b = run(2, "hawkeye");
    // The workload layout differs, so at least the fine-grained
    // counters must differ.
    EXPECT_FALSE(a == b);
}

TEST(Determinism, MetricsSeriesAreReproducible)
{
    auto series = [](std::uint64_t seed) {
        setLogQuiet(true);
        sim::SystemConfig cfg;
        cfg.memoryBytes = MiB(128);
        cfg.seed = seed;
        sim::System sys(cfg);
        sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
        workload::StreamConfig wc;
        wc.footprintBytes = MiB(48);
        wc.workSeconds = 2.0;
        sys.addProcess("w",
                       std::make_unique<workload::StreamWorkload>(
                           "w", wc, Rng(seed)));
        sys.run(sec(3));
        std::ostringstream os;
        sys.metrics().writeCsv(os);
        return os.str();
    };
    EXPECT_EQ(series(7), series(7));
    EXPECT_NE(series(7), series(8));
}
