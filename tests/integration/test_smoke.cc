/**
 * @file
 * End-to-end engine smoke tests: a workload runs to completion under
 * each policy, memory is conserved, and the basic paper mechanisms
 * (huge faults under Linux/HawkEye, base-only under Ingens) hold.
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

sim::SystemConfig
smallConfig()
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(512);
    cfg.seed = 7;
    return cfg;
}

std::unique_ptr<workload::StreamWorkload>
smallStream(Rng rng, double seconds = 2.0)
{
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(128);
    wc.accessesPerSec = 4e6;
    wc.workSeconds = seconds;
    return std::make_unique<workload::StreamWorkload>("small", wc,
                                                      rng);
}

} // namespace

class PolicySmoke : public ::testing::TestWithParam<const char *>
{
  protected:
    static std::unique_ptr<policy::HugePagePolicy>
    makePolicy(const std::string &which)
    {
        if (which == "linux4k") {
            policy::LinuxConfig c;
            c.thp = false;
            return std::make_unique<policy::LinuxThpPolicy>(c);
        }
        if (which == "linux2m")
            return std::make_unique<policy::LinuxThpPolicy>();
        if (which == "freebsd")
            return std::make_unique<policy::FreeBsdPolicy>();
        if (which == "ingens")
            return std::make_unique<policy::IngensPolicy>();
        if (which == "hawkeye-g")
            return std::make_unique<core::HawkEyePolicy>();
        core::HawkEyeConfig c;
        c.usePmu = true;
        return std::make_unique<core::HawkEyePolicy>(c);
    }
};

TEST_P(PolicySmoke, WorkloadRunsToCompletion)
{
    setLogQuiet(true);
    sim::System sys(smallConfig());
    sys.setPolicy(makePolicy(GetParam()));
    auto &proc = sys.addProcess("w", smallStream(sys.rng().fork()));
    sys.runUntilAllDone(sec(120));
    EXPECT_TRUE(proc.finished());
    EXPECT_FALSE(proc.oomKilled());
    EXPECT_GT(proc.pageFaults(), 0u);
    // Process memory is released on exit.
    EXPECT_EQ(proc.space().rssPages(), 0u);
    sys.phys().buddy().checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySmoke,
                         ::testing::Values("linux4k", "linux2m",
                                           "freebsd", "ingens",
                                           "hawkeye-g",
                                           "hawkeye-pmu"));

TEST(EngineSmoke, LinuxThpMapsHugeAtFault)
{
    setLogQuiet(true);
    sim::System sys(smallConfig());
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    auto &proc = sys.addProcess("w", smallStream(sys.rng().fork()));
    sys.run(msec(500));
    EXPECT_GT(proc.space().pageTable().mappedHugePages(), 0u);
}

TEST(EngineSmoke, IngensNeverMapsHugeAtFaultTime)
{
    setLogQuiet(true);
    sim::SystemConfig cfg = smallConfig();
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<policy::IngensPolicy>());
    auto &proc = sys.addProcess("w", smallStream(sys.rng().fork()));
    sys.run(msec(20)); // before async promotion has any budget
    EXPECT_GT(proc.pageFaults(), 0u);
    EXPECT_EQ(proc.space().pageTable().mappedHugePages(), 0u);
}

TEST(EngineSmoke, MmuOverheadLowerWithHugePages)
{
    setLogQuiet(true);
    auto run = [](bool thp) {
        sim::System sys(smallConfig());
        policy::LinuxConfig c;
        c.thp = thp;
        sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>(c));
        workload::StreamConfig wc;
        wc.footprintBytes = MiB(256);
        wc.accessesPerSec = 6e6;
        wc.workSeconds = 4.0;
        auto &proc = sys.addProcess(
            "rand", std::make_unique<workload::StreamWorkload>(
                        "rand", wc, sys.rng().fork()));
        sys.runUntilAllDone(sec(120));
        return proc.mmuOverheadPct();
    };
    const double base = run(false);
    const double huge = run(true);
    EXPECT_GT(base, 2.0);
    EXPECT_LT(huge, base * 0.5);
}

TEST(EngineSmoke, HugePagesReduceRuntimeForRandomAccess)
{
    setLogQuiet(true);
    auto run = [](bool thp) {
        sim::System sys(smallConfig());
        policy::LinuxConfig c;
        c.thp = thp;
        sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>(c));
        workload::StreamConfig wc;
        wc.footprintBytes = MiB(256);
        wc.accessesPerSec = 6e6;
        wc.workSeconds = 4.0;
        auto &proc = sys.addProcess(
            "rand", std::make_unique<workload::StreamWorkload>(
                        "rand", wc, sys.rng().fork()));
        sys.runUntilAllDone(sec(120));
        return proc.runtime();
    };
    EXPECT_LT(run(true), run(false));
}
