/**
 * @file
 * Cross-policy conservation properties: under randomized mixes of
 * allocating, freeing and churning workloads, no policy may leak or
 * double-free physical memory, and all bookkeeping must reconcile at
 * exit.
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

struct Param
{
    const char *policy;
    std::uint64_t seed;
};

std::unique_ptr<policy::HugePagePolicy>
makePolicy(const std::string &name)
{
    if (name == "linux")
        return std::make_unique<policy::LinuxThpPolicy>();
    if (name == "freebsd")
        return std::make_unique<policy::FreeBsdPolicy>();
    if (name == "ingens")
        return std::make_unique<policy::IngensPolicy>();
    core::HawkEyeConfig c;
    c.usePmu = (name == "hawkeye-pmu");
    return std::make_unique<core::HawkEyePolicy>(c);
}

} // namespace

class Conservation
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{};

TEST_P(Conservation, RandomChurnNeverLeaksMemory)
{
    setLogQuiet(true);
    const auto [policy_name, seed] = GetParam();
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(256);
    cfg.seed = static_cast<std::uint64_t>(seed);
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy_name));
    Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);

    // A churning KV store + a touch-and-free loop + a stream.
    workload::KvConfig kc;
    kc.arenaBytes = MiB(256);
    workload::KvPhase ins;
    ins.type = workload::KvPhase::Type::kInsert;
    ins.count = 4000 + rng.below(4000);
    workload::KvPhase del;
    del.type = workload::KvPhase::Type::kDelete;
    del.fraction = 0.3 + rng.uniform() * 0.6;
    del.clusterRun = 1 + rng.below(64);
    workload::KvPhase ins2 = ins;
    ins2.count /= 2;
    kc.phases = {ins, del, ins2};
    sys.addProcess("kv",
                   std::make_unique<workload::KeyValueStoreWorkload>(
                       "kv", kc, rng.fork()));

    workload::LinearTouchConfig lc;
    lc.bytes = MiB(32 + rng.below(32));
    lc.iterations = 2;
    sys.addProcess("touch",
                   std::make_unique<workload::LinearTouchWorkload>(
                       "touch", lc, rng.fork()));

    workload::StreamConfig wc;
    wc.footprintBytes = MiB(32 + rng.below(64));
    wc.workSeconds = 1.0 + rng.uniform() * 2.0;
    wc.coveragePages = 1 + static_cast<unsigned>(rng.below(512));
    sys.addProcess("stream",
                   std::make_unique<workload::StreamWorkload>(
                       "stream", wc, rng.fork()));

    sys.runUntilAllDone(sec(600));

    for (auto &proc : sys.processes()) {
        EXPECT_TRUE(proc->finished()) << proc->name();
        EXPECT_FALSE(proc->oomKilled()) << proc->name();
        EXPECT_EQ(proc->space().rssPages(), 0u) << proc->name();
        EXPECT_EQ(proc->space().mappedPages(), 0u) << proc->name();
    }
    // Everything returned except the canonical zero page.
    EXPECT_EQ(sys.phys().usedFrames(), 1u);
    EXPECT_EQ(sys.phys().frame(sys.phys().zeroPagePfn()).mapCount,
              0u);
    sys.phys().buddy().checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(
    Policies, Conservation,
    ::testing::Combine(::testing::Values("linux", "freebsd", "ingens",
                                         "hawkeye", "hawkeye-pmu"),
                       ::testing::Values(1, 2, 3)));

TEST(Conservation, FragmentedChurnReconciles)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(256);
    cfg.seed = 99;
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
    sys.fragmentMemoryMovable(1.0, 32);
    const std::uint64_t pinned_used = sys.phys().usedFrames();

    workload::LinearTouchConfig lc;
    lc.bytes = MiB(96);
    lc.iterations = 3;
    sys.addProcess("touch",
                   std::make_unique<workload::LinearTouchWorkload>(
                       "touch", lc, Rng(1)));
    sys.runUntilAllDone(sec(600));
    // Compaction migrates pins around, but their count is conserved.
    EXPECT_EQ(sys.phys().usedFrames(), pinned_used);
    sys.phys().buddy().checkConsistency();
}
